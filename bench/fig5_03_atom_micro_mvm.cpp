//===- fig5_03_atom_micro_mvm.cpp - Fig 5.3 (Intel Atom) -------*- C++ -*-===//
//
// Figure 5.3: micro-BLACs with matrix-vector products on n×n matrices,
// n in [2, 10] (Atom). Expected shape: fully unrolled LGen code up to
// ~5.5× over the best competitor, peaks at n = 4, 8 (aligned rows, no
// leftovers).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  R.run("fig5.3a", "y = A*x, A is nxn (micro)",
        [](int64_t N) { return blacs::mvm(N, N); }, Xs)
      .print(std::cout);
  R.run("fig5.3b", "alpha = x'*A*y, A is nxn (micro)",
        [](int64_t N) { return blacs::bilinear(N, N); }, Xs)
      .print(std::cout);
  return 0;
}

//===- fig5_11_a8_blas.cpp - Fig 5.11 (Cortex-A8) --------------*- C++ -*-===//
//
// Figure 5.11: BLACs that closely match BLAS on Cortex-A8. Expected shape:
// LGen up to ~7× over competitors; on the easily-vectorized y = αx + y the
// auto-vectorizing gcc-fixed and Eigen reach 0.5–0.6 f/c (§5.3.2).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA8);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.11a", "y = alpha*x + y",
        [](int64_t N) { return blacs::axpy(N); },
        {16, 64, 256, 1024, 2048, 3782})
      .print(std::cout);
  R.run("fig5.11b", "y = alpha*A*x + beta*y, A is 4xn",
        [](int64_t N) { return blacs::gemv(4, N); },
        {4, 8, 16, 64, 256, 1024, 1190})
      .print(std::cout);
  R.run("fig5.11c", "y = alpha*A*x + beta*y, A is 30xn",
        [](int64_t N) { return blacs::gemv(30, N); },
        {2, 4, 8, 16, 30, 58, 86, 100})
      .print(std::cout);
  R.run("fig5.11d", "C = alpha*A*B + beta*C, A is nx4, B is 4xn",
        [](int64_t N) { return blacs::gemm(N, 4, N); },
        {2, 4, 8, 14, 20, 32, 50, 86})
      .print(std::cout);
  R.run("fig5.11e", "C = alpha*A*B + beta*C, A is 30xn, B is nx30",
        [](int64_t N) { return blacs::gemm(30, N, 30); },
        {2, 4, 8, 14, 20, 32, 44, 62})
      .print(std::cout);
  return 0;
}

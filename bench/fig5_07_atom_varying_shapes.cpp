//===- fig5_07_atom_varying_shapes.cpp - Fig 5.7 (Intel Atom) --*- C++ -*-===//
//
// Figure 5.7: BLACs on 30×n matrices whose shape varies between vertical
// and horizontal panels (Atom). Expected shape: LGen best everywhere; the
// library competitors approach it as matrices get wider (§5.2.3).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {2, 4, 8, 16, 30, 44, 58, 72, 86, 100};
  R.run("fig5.7a", "y = alpha*A*x + beta*y, A is 30xn",
        [](int64_t N) { return blacs::gemv(30, N); }, Xs)
      .print(std::cout);
  std::vector<int64_t> Xs2 = {2, 4, 8, 14, 20, 26, 32, 44, 62};
  R.run("fig5.7b", "C = alpha*A*B + beta*C, A is 30xn, B is nx30",
        [](int64_t N) { return blacs::gemm(30, N, 30); }, Xs2)
      .print(std::cout);
  R.run("fig5.7c", "C = alpha*(A0+A1)'*B + beta*C, A0, A1, B are nx30",
        [](int64_t N) { return blacs::addTransGemm(30, N, 30); }, Xs2)
      .print(std::cout);
  return 0;
}

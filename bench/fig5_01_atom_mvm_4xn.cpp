//===- fig5_01_atom_mvm_4xn.cpp - Fig 5.1 (Intel Atom) ---------*- C++ -*-===//
//
// Part of the LGen reproduction benchmark suite.
//
//===----------------------------------------------------------------------===//
///
/// Figure 5.1: BLACs containing matrix-vector multiplications, where the
/// matrices have size 4×n, on Intel Atom. Three subplots: (a) y = Ax,
/// (b) y = αAx + βBx, (c) α = xᵀAy. Expected shape: LGen-Full above every
/// competitor (speedups up to ~5×); LGen-MVM ≈1.5× and LGen-Align ≈1.2–2×
/// over base LGen; curves jagged in n mod 4 (the fraction of aligned rows).
///
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();

  std::vector<int64_t> Xs = {2,  4,  6,  8,  12, 16,  24,  40,  64,
                             96, 97, 98, 99, 100, 256, 512, 1024, 1190};

  R.run("fig5.1a", "y = A*x, A is 4xn",
        [](int64_t N) { return blacs::mvm(4, N); }, Xs)
      .print(std::cout);
  R.run("fig5.1b", "y = alpha*A*x + beta*B*x, A and B are 4xn",
        [](int64_t N) { return blacs::twoMvm(4, N); }, Xs)
      .print(std::cout);
  R.run("fig5.1c", "alpha = x'*A*y, A is 4xn",
        [](int64_t N) { return blacs::bilinear(4, N); }, Xs)
      .print(std::cout);
  return 0;
}

//===- table3_1_vecadd_costs.cpp - Table 3.1 -------------------*- C++ -*-===//
//
// Table 3.1: performance of vector addition vs horizontal addition
// (latency / throughput) as encoded in the microarchitecture models. The
// thesis' headline entry is Atom: addps 5/1 vs haddps 8/7, with the
// horizontal add occupying both issue ports.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "cir/Builder.h"

#include <cstdio>

using namespace lgen;
using namespace lgen::cir;

int main() {
  std::printf("== table3.1: vector add vs horizontal add costs ==\n");
  std::printf("%-16s %-12s %-12s %s\n", "uarch", "add (L/T)", "hadd (L/T)",
              "hadd blocks all ports");
  for (machine::UArch U :
       {machine::UArch::Atom, machine::UArch::CortexA8,
        machine::UArch::CortexA9}) {
    machine::Microarch M = machine::Microarch::get(U);
    Kernel K("probe");
    Builder B(K);
    RegId A = B.zero(4), C = B.zero(4);
    RegId Add = B.add(A, C);
    unsigned HLanes = U == machine::UArch::Atom ? 4 : 2;
    RegId HA = B.zero(HLanes), HB = B.zero(HLanes);
    RegId HAdd = B.hadd(HA, HB);
    (void)Add;
    (void)HAdd;
    const Inst &AddI = K.getBody()[2].inst();
    const Inst &HaddI = K.getBody()[5].inst();
    machine::InstCost CA = M.costOf(K, AddI);
    machine::InstCost CH = M.costOf(K, HaddI);
    std::printf("%-16s %u / %-8u %u / %-8u %s\n", machine::uarchName(U),
                CA.Latency, CA.RecipThroughput, CH.Latency,
                CH.RecipThroughput, CH.BlocksAllPorts ? "yes" : "no");
  }
  std::printf("shape: on Atom hadd throughput is 7x worse than add and "
              "serializes both ports (Table 3.1 / section 3.3)\n\n");
  return 0;
}

//===- fig5_16_a9_multiblas.cpp - Fig 5.16 (Cortex-A9) ---------*- C++ -*-===//
//
// Figure 5.16: BLACs that require more than one BLAS call (Cortex-A9).
// Expected shape: ~1.5× over the best competitor on the MVM-based BLACs,
// up to ~3× on C = α(A0+A1)ᵀB + βC; the (a) curves decay past the L1
// capacity (§5.4.3).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA9);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.16a", "y = alpha*A*x + beta*B*x, A and B are 4xn",
        [](int64_t N) { return blacs::twoMvm(4, N); },
        {4, 8, 16, 64, 256, 1024, 1190})
      .print(std::cout);
  R.run("fig5.16b", "alpha = x'*A*y, A is 4xn",
        [](int64_t N) { return blacs::bilinear(4, N); },
        {4, 8, 16, 64, 256, 1024, 1190})
      .print(std::cout);
  R.run("fig5.16c", "C = alpha*(A0+A1)'*B + beta*C, A0, A1, B are 4xn",
        [](int64_t N) { return blacs::addTransGemm(N, 4, N); },
        {2, 4, 8, 14, 20, 32, 50, 86})
      .print(std::cout);
  return 0;
}

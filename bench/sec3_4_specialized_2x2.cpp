//===- sec3_4_specialized_2x2.cpp - §3.4 micro-experiment ------*- C++ -*-===//
//
// The §3.4 motivating measurement: a 2×2×2 matrix multiplication on
// Cortex-A9, traditional padded ν-BLACs (Listing 3.9) vs the specialized
// leftover ν-BLACs (Listing 3.10). The thesis measures 68 vs 23 cycles —
// 0.17 vs 0.52 flops/cycle, a speedup of about 3×.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "ll/Parser.h"

#include <cstdio>

using namespace lgen;

int main() {
  std::printf("== sec3.4: 2x2x2 matrix multiplication on Cortex-A9 ==\n");
  auto P = ll::parseProgramOrDie(
      "Matrix A(2, 2); Matrix B(2, 2); Matrix C(2, 2); C = A*B;");
  machine::Microarch M = machine::Microarch::get(machine::UArch::CortexA9);
  double Cycles[2];
  for (bool Spec : {false, true}) {
    compiler::Options O = compiler::Options::lgenBase(machine::UArch::CortexA9);
    O.SpecializedNuBLACs = Spec;
    compiler::Compiler C(O);
    auto CK = C.compile(P);
    auto T = CK.time(M);
    Cycles[Spec] = T.Cycles;
    std::printf("%-22s cycles=%6.1f  perf=%.2f f/c\n",
                Spec ? "specialized nu-BLACs" : "traditional nu-BLACs",
                T.Cycles, CK.Flops / T.Cycles);
  }
  std::printf("shape: specialized speedup %.2fx (thesis: 68 -> 23 cycles, "
              "~3x)\n\n", Cycles[0] / Cycles[1]);
  return 0;
}

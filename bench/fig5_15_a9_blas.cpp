//===- fig5_15_a9_blas.cpp - Fig 5.15 (Cortex-A9) --------------*- C++ -*-===//
//
// Figure 5.15: BLAS-matching BLACs on Cortex-A9. Expected shape: on
// y = αx + y LGen is capped around 0.6 f/c by the single NEON issue port
// shared between memory and arithmetic (§5.4.2); both compilers
// auto-vectorize the fixed-size axpy decently.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA9);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.15a", "y = alpha*x + y",
        [](int64_t N) { return blacs::axpy(N); },
        {16, 64, 256, 1024, 2048, 3782})
      .print(std::cout);
  R.run("fig5.15b", "y = alpha*A*x + beta*y, A is 4xn",
        [](int64_t N) { return blacs::gemv(4, N); },
        {4, 8, 16, 64, 256, 1024, 1190})
      .print(std::cout);
  R.run("fig5.15c", "C = alpha*A*B + beta*C, A is nx4, B is 4xn",
        [](int64_t N) { return blacs::gemm(N, 4, N); },
        {2, 4, 8, 14, 20, 32, 50, 86})
      .print(std::cout);
  return 0;
}

//===- mediator_throughput.cpp - Mediator + compile service load ---------===//
//
// Chapter 4 evaluation, service era. Two sections:
//
//  1. Scheduling throughput: a batch of simulated experiments runs on
//     simulated devices with 1, 2, 4, ... cores; per-core mutual exclusion
//     bounds single-core throughput, multi-core devices scale.
//
//  2. Service load generator: an in-process compile service is driven over
//     real loopback HTTP by N keep-alive clients submitting thousands of
//     compile+run requests (small BLACs, rotated so the kernel cache is
//     exercised like a real farm), then polling every job to completion.
//     Reports p50/p99 HTTP latency and aggregate req/s, asserts that at
//     least --min-inflight requests were simultaneously in flight inside
//     the queue and that not a single accepted request was lost, and emits
//     a BENCH v1 report (--json PATH) for tools/bench_compare.py.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "mediator/Mediator.h"
#include "service/Http.h"
#include "service/Service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace lgen;
using namespace lgen::json;

namespace {

using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - T0).count();
}

//===----------------------------------------------------------------------===//
// Section 1: Mediator scheduling sweep (the historical bench)
//===----------------------------------------------------------------------===//

void runSchedulingSweep() {
  std::printf("== mediator: job throughput vs device cores ==\n");
  std::printf("%-8s %-12s %-14s\n", "cores", "batch [ms]", "exps/second");
  const unsigned NumExps = 64;
  for (unsigned Cores : {1u, 2u, 4u, 8u}) {
    mediator::Mediator M;
    M.registerDevice("farm", Cores, [](const Value &, unsigned) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      return Value(Object{});
    });
    Array Exps;
    Array Aff;
    for (unsigned C = 0; C != Cores; ++C)
      Aff.push_back(Value(static_cast<int64_t>(C)));
    for (unsigned I = 0; I != NumExps; ++I) {
      Object Dev;
      Dev["hostname"] = "farm";
      Dev["affinity"] = Value(Aff);
      Object Exp;
      Exp["device"] = Value(std::move(Dev));
      Exps.push_back(Value(std::move(Exp)));
    }
    Object Req;
    Req["apiVersion"] = "1.0";
    Req["async"] = false;
    Req["experiments"] = Value(std::move(Exps));
    auto T0 = Clock::now();
    M.handleNewJobRequest(Value(std::move(Req)).serialize());
    double Ms = nsSince(T0) / 1e6;
    std::printf("%-8u %-12.1f %-14.0f\n", Cores, Ms, NumExps / (Ms / 1000.0));
  }
  std::printf("shape: throughput scales with cores while each core stays "
              "mutually exclusive\n\n");
}

//===----------------------------------------------------------------------===//
// Section 2: compile service load generator
//===----------------------------------------------------------------------===//

/// Rotating set of small BLACs — distinct enough to exercise compiles and
/// the shared kernel cache, small enough that compile+run stays cheap.
std::string sourceFor(unsigned I) {
  switch (I % 3) {
  case 0: {
    unsigned N = 4 + 4 * (I / 3 % 4);
    return "Vector x(" + std::to_string(N) + "); Vector y(" +
           std::to_string(N) + "); Scalar a; y = a*x + y;";
  }
  case 1: {
    unsigned R = 4 + 4 * (I / 3 % 2), C = 4 + 4 * (I / 6 % 2);
    return "Matrix A(" + std::to_string(R) + ", " + std::to_string(C) +
           "); Vector x(" + std::to_string(C) + "); Vector y(" +
           std::to_string(R) + "); y = A*x;";
  }
  default: {
    unsigned N = 4 + 4 * (I / 3 % 2);
    std::string S = std::to_string(N);
    return "Matrix A(" + S + ", " + S + "); Matrix B(" + S + ", " + S +
           "); Matrix C(" + S + ", " + S + "); C = A*B;";
  }
  }
}

Value envelope(const std::string &Method, Value Params,
               const std::string &Session) {
  Object E;
  E["v"] = static_cast<int64_t>(1);
  E["method"] = Method;
  E["session"] = Session;
  E["params"] = std::move(Params);
  return Value(std::move(E));
}

struct ClientResult {
  std::vector<double> SubmitNs; ///< Per-submit HTTP round-trip latency.
  std::vector<double> PollNs;   ///< Per-poll HTTP round-trip latency.
  std::vector<double> WarmNs;   ///< Warm-cache submit→FINISHED latency.
  std::vector<std::string> JobIds;
  uint64_t Rejected = 0; ///< 429s absorbed by backoff-and-retry.
  uint64_t Lost = 0;     ///< Jobs that never reached FINISHED.
  uint64_t Errors = 0;   ///< Transport or non-retryable protocol errors.
};

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  double Idx = P / 100.0 * static_cast<double>(V.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, V.size() - 1);
  double Frac = Idx - static_cast<double>(Lo);
  return V[Lo] + (V[Hi] - V[Lo]) * Frac;
}

int runServiceLoad(unsigned Requests, unsigned Clients, unsigned MinInFlight,
                   const std::string &JsonPath) {
  std::printf("== compile service: loopback HTTP load ==\n");
  service::ServiceConfig Cfg;
  Cfg.ConnWorkers = std::min(Clients, 16u);
  Cfg.Queue.Workers = 2;
  Cfg.Queue.BatchMax = 32;
  // High water above the burst: this run measures sustained throughput;
  // the saturation path is covered by ServiceTest and the CI burst.
  Cfg.Queue.HighWater = Requests + 256;
  service::Service Svc(Cfg);
  std::string Err;
  if (!Svc.start(Err)) {
    std::fprintf(stderr, "cannot start service: %s\n", Err.c_str());
    return 1;
  }

  // Sample queue occupancy while the burst is in flight.
  std::atomic<bool> SamplerStop{false};
  std::atomic<size_t> PeakInFlight{0};
  std::thread Sampler([&] {
    while (!SamplerStop) {
      service::CompileQueue::Stats S = Svc.queue().stats();
      size_t InFlight = S.Queued + S.Compiling;
      size_t Peak = PeakInFlight.load();
      while (InFlight > Peak &&
             !PeakInFlight.compare_exchange_weak(Peak, InFlight))
        ;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<ClientResult> Results(Clients);
  auto WallT0 = Clock::now();

  // Phase 1: every client submits its share as fast as the wire allows,
  // backing off on 429 — the whole burst lands in the queue before any
  // poll, so Requests jobs are concurrently in flight.
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C != Clients; ++C)
      Threads.emplace_back([&, C] {
        ClientResult &R = Results[C];
        service::HttpClient Client;
        std::string CErr;
        if (!Client.connect("127.0.0.1", Svc.port(), CErr)) {
          R.Errors += Requests / Clients;
          return;
        }
        std::string Session = "load" + std::to_string(C);
        unsigned Share = Requests / Clients +
                         (C < Requests % Clients ? 1 : 0);
        for (unsigned I = 0; I != Share; ++I) {
          Object P;
          P["source"] = sourceFor(C * 131 + I);
          P["target"] = "atom";
          P["config"] = "LGen";
          P["run"] = true;
          std::string Body =
              envelope("compile.submit", Value(std::move(P)), Session)
                  .serialize();
          for (int Attempt = 0;; ++Attempt) {
            service::HttpResponse Resp;
            auto T0 = Clock::now();
            if (!Client.request("POST", "/rpc", Body, Resp, CErr)) {
              if (!Client.connect("127.0.0.1", Svc.port(), CErr)) {
                ++R.Errors;
                break;
              }
              continue;
            }
            R.SubmitNs.push_back(nsSince(T0));
            if (Resp.Status == 429) {
              ++R.Rejected;
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              continue;
            }
            if (Resp.Status != 200) {
              ++R.Errors;
              break;
            }
            Value V;
            std::string PErr;
            if (!json::parse(Resp.Body, V, PErr)) {
              ++R.Errors;
              break;
            }
            R.JobIds.push_back(V["result"].getString("jobID"));
            break;
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  double SubmitWallNs = nsSince(WallT0);

  // Phase 2: poll every job to completion (request-loss check).
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C != Clients; ++C)
      Threads.emplace_back([&, C] {
        ClientResult &R = Results[C];
        service::HttpClient Client;
        std::string CErr;
        if (!Client.connect("127.0.0.1", Svc.port(), CErr)) {
          R.Lost += R.JobIds.size();
          return;
        }
        std::string Session = "load" + std::to_string(C);
        for (const std::string &JobId : R.JobIds) {
          bool Finished = false;
          for (int Attempt = 0; Attempt != 20000 && !Finished; ++Attempt) {
            Object P;
            P["jobID"] = JobId;
            service::HttpResponse Resp;
            auto T0 = Clock::now();
            if (!Client.request(
                    "POST", "/rpc",
                    envelope("compile.result", Value(std::move(P)), Session)
                        .serialize(),
                    Resp, CErr)) {
              if (!Client.connect("127.0.0.1", Svc.port(), CErr))
                break;
              continue;
            }
            R.PollNs.push_back(nsSince(T0));
            Value V;
            std::string PErr;
            if (Resp.Status != 200 || !json::parse(Resp.Body, V, PErr))
              break;
            std::string State = V["result"].getString("jobState");
            if (State == "FINISHED") {
              Finished = true;
            } else if (State == "NOT_FOUND") {
              break; // lost — counted below
            } else {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          if (!Finished)
            ++R.Lost;
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  double TotalWallNs = nsSince(WallT0);

  // Phase 3: warm-cache round trips. Phases 1+2 compiled every rotated
  // BLAC, so the shared kernel cache now holds them all; resubmitting the
  // same sources measures the dispatch path the sharded cache serves —
  // submit→FINISHED with no autotuning search in the way. A bounded share
  // keeps the phase cheap relative to the burst.
  {
    unsigned WarmPerClient =
        std::max(1u, Requests / 4 / std::max(1u, Clients));
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C != Clients; ++C)
      Threads.emplace_back([&, C, WarmPerClient] {
        ClientResult &R = Results[C];
        service::HttpClient Client;
        std::string CErr;
        if (!Client.connect("127.0.0.1", Svc.port(), CErr))
          return;
        std::string Session = "warm" + std::to_string(C);
        for (unsigned I = 0; I != WarmPerClient; ++I) {
          Object P;
          P["source"] = sourceFor(C * 131 + I); // same keys as phase 1
          P["target"] = "atom";
          P["config"] = "LGen";
          P["run"] = true;
          service::HttpResponse Resp;
          auto T0 = Clock::now();
          if (!Client.request("POST", "/rpc",
                              envelope("compile.submit", Value(std::move(P)),
                                       Session)
                                  .serialize(),
                              Resp, CErr) ||
              Resp.Status != 200) {
            ++R.Errors;
            continue;
          }
          Value V;
          std::string PErr;
          if (!json::parse(Resp.Body, V, PErr)) {
            ++R.Errors;
            continue;
          }
          std::string JobId = V["result"].getString("jobID");
          bool Finished = false;
          for (int Attempt = 0; Attempt != 20000 && !Finished; ++Attempt) {
            Object Q;
            Q["jobID"] = JobId;
            service::HttpResponse PollResp;
            if (!Client.request(
                    "POST", "/rpc",
                    envelope("compile.result", Value(std::move(Q)), Session)
                        .serialize(),
                    PollResp, CErr))
              break;
            Value PV;
            if (PollResp.Status != 200 ||
                !json::parse(PollResp.Body, PV, PErr))
              break;
            std::string State = PV["result"].getString("jobState");
            if (State == "FINISHED")
              Finished = true;
            else if (State == "NOT_FOUND")
              break;
            // Warm jobs finish in microseconds; spin without sleeping so
            // the measured latency is the service's, not the poller's.
          }
          if (Finished)
            R.WarmNs.push_back(nsSince(T0));
          else
            ++R.Lost;
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  SamplerStop = true;
  Sampler.join();
  Svc.stop();

  // Aggregate.
  std::vector<double> SubmitNs, PollNs, WarmNs;
  uint64_t Submitted = 0, Rejected = 0, Lost = 0, Errors = 0;
  for (ClientResult &R : Results) {
    SubmitNs.insert(SubmitNs.end(), R.SubmitNs.begin(), R.SubmitNs.end());
    PollNs.insert(PollNs.end(), R.PollNs.begin(), R.PollNs.end());
    WarmNs.insert(WarmNs.end(), R.WarmNs.begin(), R.WarmNs.end());
    Submitted += R.JobIds.size();
    Rejected += R.Rejected;
    Lost += R.Lost;
    Errors += R.Errors;
  }
  double HttpCalls = static_cast<double>(SubmitNs.size() + PollNs.size());
  double ReqPerSec = HttpCalls / (TotalWallNs / 1e9);
  double SubmitP50 = percentile(SubmitNs, 50), SubmitP99 = percentile(SubmitNs, 99);
  double PollP50 = percentile(PollNs, 50), PollP99 = percentile(PollNs, 99);
  double WarmP50 = percentile(WarmNs, 50), WarmP99 = percentile(WarmNs, 99);

  std::printf("clients            %u\n", Clients);
  std::printf("requests submitted %llu (rejected+retried %llu)\n",
              static_cast<unsigned long long>(Submitted),
              static_cast<unsigned long long>(Rejected));
  std::printf("peak in flight     %zu\n", PeakInFlight.load());
  std::printf("submit latency     p50 %.0f us   p99 %.0f us\n",
              SubmitP50 / 1e3, SubmitP99 / 1e3);
  std::printf("poll latency       p50 %.0f us   p99 %.0f us\n",
              PollP50 / 1e3, PollP99 / 1e3);
  std::printf("warm round trip    p50 %.0f us   p99 %.0f us (%zu jobs)\n",
              WarmP50 / 1e3, WarmP99 / 1e3, WarmNs.size());
  std::printf("http throughput    %.0f req/s (%0.f calls over %.2f s)\n",
              ReqPerSec, HttpCalls, TotalWallNs / 1e9);
  std::printf("submit burst wall  %.2f s\n", SubmitWallNs / 1e9);
  std::printf("lost jobs          %llu, transport errors %llu\n\n",
              static_cast<unsigned long long>(Lost),
              static_cast<unsigned long long>(Errors));

  if (!JsonPath.empty()) {
    bench::BenchReport Report;
    Report.Bench = "service_throughput";
    Report.Target = "atom";
    Report.Host = "loopback"; // latency depends on the whole host, not the
                              // modeled uarch; keep comparisons warn-only
                              // across machines
    Report.Counter = "steady-clock";
    Report.Unit = "ns";
    Report.GitSha = bench::currentGitSha();
    auto Row = [&](const std::string &Kernel, double Ns) {
      bench::BenchResult R;
      R.Kernel = Kernel;
      R.Size = static_cast<int64_t>(Requests);
      R.CyclesMedian = Ns;
      R.CyclesQ1 = Ns;
      R.CyclesQ3 = Ns;
      R.Counters["reqPerSec"] = ReqPerSec;
      R.Counters["peakInFlight"] =
          static_cast<double>(PeakInFlight.load());
      R.Counters["rejected"] = static_cast<double>(Rejected);
      R.Counters["lost"] = static_cast<double>(Lost);
      Report.Results.push_back(std::move(R));
    };
    // All rows are "lower is better" nanoseconds so bench_compare's
    // median-growth gate points the right way (req/s rides in counters).
    Row("submit.latency.p50", SubmitP50);
    Row("submit.latency.p99", SubmitP99);
    Row("poll.latency.p50", PollP50);
    Row("poll.latency.p99", PollP99);
    Row("warm.roundtrip.p50", WarmP50);
    Row("warm.roundtrip.p99", WarmP99);
    Row("ns_per_request", HttpCalls > 0 ? TotalWallNs / HttpCalls : 0);
    std::string WErr;
    if (!Report.writeFile(JsonPath, WErr)) {
      std::fprintf(stderr, "cannot write %s: %s\n", JsonPath.c_str(),
                   WErr.c_str());
      return 1;
    }
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  if (Lost != 0 || Errors != 0) {
    std::fprintf(stderr, "FAIL: %llu lost jobs, %llu errors\n",
                 static_cast<unsigned long long>(Lost),
                 static_cast<unsigned long long>(Errors));
    return 1;
  }
  if (Submitted != Requests) {
    std::fprintf(stderr, "FAIL: submitted %llu of %u requests\n",
                 static_cast<unsigned long long>(Submitted), Requests);
    return 1;
  }
  if (PeakInFlight.load() < MinInFlight) {
    std::fprintf(stderr,
                 "FAIL: peak in-flight %zu below the %u floor — burst did "
                 "not saturate the queue\n",
                 PeakInFlight.load(), MinInFlight);
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Requests = 2000;
  unsigned Clients = 16;
  unsigned MinInFlight = 1000;
  std::string JsonPath;
  bool Sweep = true;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--requests")
      Requests = static_cast<unsigned>(std::atoi(next()));
    else if (Arg == "--clients")
      Clients = std::max(1, std::atoi(next()));
    else if (Arg == "--min-inflight")
      MinInFlight = static_cast<unsigned>(std::atoi(next()));
    else if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--no-sweep")
      Sweep = false;
    else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--clients N] "
                   "[--min-inflight N] [--json PATH] [--no-sweep]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (Sweep)
    runSchedulingSweep();
  return runServiceLoad(Requests, Clients, MinInFlight, JsonPath);
}

//===- mediator_throughput.cpp - Mediator scheduling bench -----*- C++ -*-===//
//
// Chapter 4 evaluation: Mediator's scheduling throughput and scaling. A
// batch of simulated experiments with a fixed busy-work payload runs on
// simulated devices with 1, 2, 4, ... cores; per-core mutual exclusion
// bounds single-core throughput, while multi-core devices scale.
//
//===----------------------------------------------------------------------===//

#include "mediator/Mediator.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace lgen;
using namespace lgen::json;

int main() {
  std::printf("== mediator: job throughput vs device cores ==\n");
  std::printf("%-8s %-12s %-14s\n", "cores", "batch [ms]", "exps/second");
  const unsigned NumExps = 64;
  for (unsigned Cores : {1u, 2u, 4u, 8u}) {
    mediator::Mediator M;
    M.registerDevice("farm", Cores, [](const Value &, unsigned) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      return Value(Object{});
    });
    Array Exps;
    Array Aff;
    for (unsigned C = 0; C != Cores; ++C)
      Aff.push_back(Value(static_cast<int64_t>(C)));
    for (unsigned I = 0; I != NumExps; ++I) {
      Object Dev;
      Dev["hostname"] = "farm";
      Dev["affinity"] = Value(Aff);
      Object Exp;
      Exp["device"] = Value(std::move(Dev));
      Exps.push_back(Value(std::move(Exp)));
    }
    Object Req;
    Req["apiVersion"] = "1.0";
    Req["async"] = false;
    Req["experiments"] = Value(std::move(Exps));
    auto T0 = std::chrono::steady_clock::now();
    M.handleNewJobRequest(Value(std::move(Req)).serialize());
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    std::printf("%-8u %-12.1f %-14.0f\n", Cores, Ms, NumExps / (Ms / 1000.0));
  }
  std::printf("shape: throughput scales with cores while each core stays "
              "mutually exclusive\n\n");
  return 0;
}

//===- table3_2_mvm_opcounts.cpp - Table 3.2 -------------------*- C++ -*-===//
//
// Table 3.2: number of arithmetic operations in the old (eq. 3.7) and new
// (eq. 3.8) matrix-vector multiplication approaches, for x86 SSSE3 and
// ν = 4. The table's formulas (for M, N multiples of ν):
//   old: mul MN/4, add (M/4)(N/4−1), hadd 3MN/16
//   new: mul MN/4, add M(N/4−1),     hadd 3M/4
// We verify them against the *actual generated kernels* by counting C-IR
// opcodes, with unrolling disabled so summations stay symbolic.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "ll/Parser.h"

#include <cstdio>

using namespace lgen;
using namespace lgen::cir;

namespace {

struct OpCounts {
  int64_t Mul = 0, Add = 0, HAdd = 0;
};

/// Counts dynamic executions of each arithmetic opcode.
void countOps(const std::vector<Node> &Body, int64_t Mult, OpCounts &C) {
  for (const Node &N : Body) {
    if (N.isLoop()) {
      countOps(N.loop().Body, Mult * N.loop().tripCount(), C);
      continue;
    }
    switch (N.inst().Op) {
    case Opcode::Mul:
      C.Mul += Mult;
      break;
    case Opcode::Add:
    case Opcode::FMA:
      C.Add += Mult;
      break;
    case Opcode::HAdd:
      C.HAdd += Mult;
      break;
    default:
      break;
    }
  }
}

OpCounts countFor(int64_t M, int64_t N, bool NewMVM) {
  compiler::Options O = compiler::Options::lgenBase(machine::UArch::Atom);
  O.NewMVM = NewMVM;
  compiler::Compiler C(O);
  auto P = ll::parseProgramOrDie(
      "Matrix A(" + std::to_string(M) + ", " + std::to_string(N) +
      "); Vector x(" + std::to_string(N) + "); Vector y(" +
      std::to_string(M) + "); y = A*x;");
  tiling::TilingPlan NoUnroll;
  NoUnroll.FullUnrollTrip = 1;
  Kernel K = C.generateCore(P, NoUnroll);
  OpCounts Counts;
  countOps(K.getBody(), 1, Counts);
  return Counts;
}

} // namespace

int main() {
  std::printf("== table3.2: arithmetic ops, old vs new MVM (SSSE3, nu=4) ==\n");
  std::printf("%-10s %-24s %-24s\n", "M x N", "old (mul/add/hadd)",
              "new (mul/add/hadd)");
  for (auto [M, N] : {std::pair<int64_t, int64_t>{4, 16},
                      {4, 64}, {8, 32}, {16, 16}, {4, 1024}}) {
    OpCounts Old = countFor(M, N, false);
    OpCounts New = countFor(M, N, true);
    std::printf("%-10s %6lld/%6lld/%6lld   %6lld/%6lld/%6lld\n",
                (std::to_string(M) + "x" + std::to_string(N)).c_str(),
                (long long)Old.Mul, (long long)Old.Add, (long long)Old.HAdd,
                (long long)New.Mul, (long long)New.Add, (long long)New.HAdd);
    // Table 3.2 formulas.
    long long EMulO = M * N / 4, EHaddO = 3 * M * N / 16;
    long long EHaddN = 3 * M / 4;
    if (Old.Mul != EMulO || Old.HAdd != EHaddO || New.HAdd != EHaddN)
      std::printf("  !! deviation from Table 3.2 formulas (expected "
                  "mul=%lld haddOld=%lld haddNew=%lld)\n",
                  EMulO, EHaddO, EHaddN);
  }
  std::printf("shape: identical multiply counts; the new approach trades "
              "3MN/16 horizontal adds for 3M/4 (independent of N)\n\n");
  return 0;
}

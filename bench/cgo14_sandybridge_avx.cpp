//===- cgo14_sandybridge_avx.cpp - The CGO'14 desktop setting ------------===//
//
// The original CGO'14 "A Basic Linear Algebra Compiler" evaluates LGen on a
// desktop Core i7 with AVX (ν = 8). This bench runs the flagship BLAC set
// on the Sandy Bridge model: LGen (with the MVH/RR MVM) against the same
// competitor families. Expected shape: LGen ahead on small/odd sizes while
// the library baselines close in at larger n (their home turf).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::SandyBridge);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("cgo14.a", "y = A*x, A is 8xn",
        [](int64_t N) { return blacs::mvm(8, N); },
        {8, 16, 24, 25, 64, 256, 1024})
      .print(std::cout);
  R.run("cgo14.b", "y = alpha*A*x + beta*y, A is 8xn",
        [](int64_t N) { return blacs::gemv(8, N); },
        {8, 16, 24, 25, 64, 256, 1024})
      .print(std::cout);
  R.run("cgo14.c", "C = alpha*A*B + beta*C, A is nx8, B is 8xn",
        [](int64_t N) { return blacs::gemm(N, 8, N); },
        {4, 8, 16, 24, 32, 48, 64})
      .print(std::cout);
  R.run("cgo14.d", "C = A*B (micro)",
        [](int64_t N) { return blacs::mmm(N, N, N); },
        {2, 3, 4, 6, 8, 10, 12, 14, 16})
      .print(std::cout);

  // CGO'14 also compares LGen's own ISAs on the same machine: SSSE3 vs
  // SSE4.1 (dpps) vs AVX, all on the Sandy Bridge model.
  {
    Runner RI(machine::UArch::SandyBridge);
    compiler::Options Avx =
        compiler::Options::lgenBase(machine::UArch::SandyBridge);
    Avx.SearchSamples = 10;
    compiler::Options Ssse3 = Avx;
    Ssse3.ISA = isa::ISAKind::SSSE3;
    compiler::Options Sse41 = Avx;
    Sse41.ISA = isa::ISAKind::SSE41;
    RI.addLGen("LGen (AVX)", Avx);
    RI.addLGen("LGen (SSE4.1)", Sse41);
    RI.addLGen("LGen (SSSE3)", Ssse3);
    RI.run("cgo14.e", "y = A*x, A is 8xn: LGen ISA comparison",
           [](int64_t N) { return blacs::mvm(8, N); },
           {8, 16, 64, 256, 1024})
        .print(std::cout);
  }
  return 0;
}

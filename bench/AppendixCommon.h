//===- AppendixCommon.h - Full per-processor sweeps (Appendix B) ---------===//
//
// The appendix figures (B.1–B.18) run the complete BLAC set of §5.1.1 per
// processor. One helper drives all four appendix binaries; sweeps are
// sampled more coarsely than the main-text figures to keep runtimes sane.
//
//===----------------------------------------------------------------------===//

#ifndef LGEN_BENCH_APPENDIXCOMMON_H
#define LGEN_BENCH_APPENDIXCOMMON_H

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

namespace lgen {
namespace bench {

inline void runAppendixSet(machine::UArch Target, const std::string &Tag) {
  Runner R(Target);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Panel = {4, 8, 16, 17, 64, 256, 1190};
  std::vector<int64_t> Square = {2, 4, 8, 14, 20, 50, 86};
  std::vector<int64_t> Micro = {2, 3, 4, 5, 6, 7, 8, 9, 10};

  // Simple BLACs (Figs B.x.1).
  R.run(Tag + ".simple.1", "y = A*x, A is nx4",
        [](int64_t N) { return blacs::mvm(N, 4); }, Panel)
      .print(std::cout);
  R.run(Tag + ".simple.2", "y = A*x, A is 4xn",
        [](int64_t N) { return blacs::mvm(4, N); }, Panel)
      .print(std::cout);
  R.run(Tag + ".simple.3", "C = A*B, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::mmm(4, N, 4); }, Panel)
      .print(std::cout);
  R.run(Tag + ".simple.4", "C = A*B, A is nx4, B is 4xn",
        [](int64_t N) { return blacs::mmm(N, 4, N); }, Square)
      .print(std::cout);

  // BLACs that closely match BLAS (Figs B.x.2).
  R.run(Tag + ".blas.1", "y = alpha*x + y",
        [](int64_t N) { return blacs::axpy(N); },
        {16, 64, 256, 1024, 3782})
      .print(std::cout);
  R.run(Tag + ".blas.2", "y = alpha*A*x + beta*y, A is nx4",
        [](int64_t N) { return blacs::gemv(N, 4); }, Panel)
      .print(std::cout);
  R.run(Tag + ".blas.3", "y = alpha*A*x + beta*y, A is 4xn",
        [](int64_t N) { return blacs::gemv(4, N); }, Panel)
      .print(std::cout);
  R.run(Tag + ".blas.4", "y = alpha*A*x + beta*y, A is 30xn",
        [](int64_t N) { return blacs::gemv(30, N); },
        {2, 8, 16, 30, 58, 100})
      .print(std::cout);
  R.run(Tag + ".blas.5", "C = alpha*A*B + beta*C, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::gemm(4, N, 4); }, Panel)
      .print(std::cout);
  R.run(Tag + ".blas.6", "C = alpha*A*B + beta*C, A is 30xn, B is nx30",
        [](int64_t N) { return blacs::gemm(30, N, 30); },
        {2, 8, 14, 20, 44, 62})
      .print(std::cout);

  // BLACs that require more than one BLAS call (Figs B.x.3).
  R.run(Tag + ".multi.1", "y = alpha*A*x + beta*B*x, A, B are nx4",
        [](int64_t N) { return blacs::twoMvm(N, 4); }, Panel)
      .print(std::cout);
  R.run(Tag + ".multi.2", "y = alpha*A*x + beta*B*x, A, B are 4xn",
        [](int64_t N) { return blacs::twoMvm(4, N); }, Panel)
      .print(std::cout);
  R.run(Tag + ".multi.3", "alpha = x'*A*y, A is 4xn",
        [](int64_t N) { return blacs::bilinear(4, N); }, Panel)
      .print(std::cout);
  R.run(Tag + ".multi.4", "C = alpha*(A0+A1)'*B + beta*C",
        [](int64_t N) { return blacs::addTransGemm(N, 4, N); }, Square)
      .print(std::cout);

  // Micro-BLACs (Figs B.x.4).
  R.run(Tag + ".micro.1", "y = A*x (micro)",
        [](int64_t N) { return blacs::mvm(N, N); }, Micro)
      .print(std::cout);
  R.run(Tag + ".micro.2", "C = A*B (micro)",
        [](int64_t N) { return blacs::mmm(N, N, N); }, Micro)
      .print(std::cout);
  R.run(Tag + ".micro.3", "alpha = x'*A*y (micro)",
        [](int64_t N) { return blacs::bilinear(N, N); }, Micro)
      .print(std::cout);
}

} // namespace bench
} // namespace lgen

#endif // LGEN_BENCH_APPENDIXCOMMON_H

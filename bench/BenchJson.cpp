//===- BenchJson.cpp - Standardized BENCH_*.json result schema ------------===//

#include "BenchJson.h"

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace lgen;
using namespace lgen::bench;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

json::Value BenchReport::toJson() const {
  json::Array Res;
  for (const BenchResult &R : Results) {
    json::Object E;
    E["kernel"] = R.Kernel;
    E["size"] = R.Size;
    E["supported"] = R.Supported;
    if (!R.Reason.empty())
      E["reason"] = R.Reason;
    json::Object Cycles;
    Cycles["median"] = R.CyclesMedian;
    Cycles["q1"] = R.CyclesQ1;
    Cycles["q3"] = R.CyclesQ3;
    E["cycles"] = json::Value(std::move(Cycles));
    E["flops"] = R.Flops;
    E["flopsPerCycle"] = R.FlopsPerCycle;
    if (!R.Counters.empty()) {
      json::Object C;
      for (const auto &KV : R.Counters)
        C[KV.first] = KV.second;
      E["counters"] = json::Value(std::move(C));
    }
    Res.push_back(json::Value(std::move(E)));
  }
  json::Object O;
  O["version"] = 1;
  O["bench"] = Bench;
  O["target"] = Target;
  O["host"] = Host;
  O["counter"] = Counter;
  O["unit"] = Unit;
  O["gitSha"] = GitSha;
  O["results"] = json::Value(std::move(Res));
  return json::Value(std::move(O));
}

bool BenchReport::fromJson(const json::Value &V, BenchReport &Out,
                           std::string &Err) {
  Out = BenchReport();
  if (!V.isObject()) {
    Err = "bench report must be an object";
    return false;
  }
  if (V.getNumber("version") != 1) {
    Err = "unsupported bench schema version";
    return false;
  }
  Out.Bench = V.getString("bench");
  Out.Target = V.getString("target");
  Out.Host = V.getString("host");
  Out.Counter = V.getString("counter");
  Out.Unit = V.getString("unit");
  Out.GitSha = V.getString("gitSha", "unknown");
  const json::Value &Res = V["results"];
  if (!Res.isArray()) {
    Err = "'results' must be an array";
    return false;
  }
  for (const json::Value &E : Res.asArray()) {
    if (!E.isObject()) {
      Err = "result entries must be objects";
      return false;
    }
    BenchResult R;
    R.Kernel = E.getString("kernel");
    if (R.Kernel.empty()) {
      Err = "result entry missing 'kernel'";
      return false;
    }
    R.Size = static_cast<int64_t>(E.getNumber("size"));
    R.Supported = E.getBool("supported", true);
    R.Reason = E.getString("reason");
    const json::Value &C = E["cycles"];
    if (R.Supported && !C.isObject()) {
      Err = "supported result entry missing 'cycles' object";
      return false;
    }
    R.CyclesMedian = C.getNumber("median");
    R.CyclesQ1 = C.getNumber("q1", R.CyclesMedian);
    R.CyclesQ3 = C.getNumber("q3", R.CyclesMedian);
    R.Flops = E.getNumber("flops");
    R.FlopsPerCycle = E.getNumber("flopsPerCycle");
    const json::Value &Ctr = E["counters"];
    if (Ctr.isObject())
      for (const auto &KV : Ctr.asObject()) {
        if (!KV.second.isNumber()) {
          Err = "counter '" + KV.first + "' must be a number";
          return false;
        }
        R.Counters[KV.first] = KV.second.asNumber();
      }
    Out.Results.push_back(std::move(R));
  }
  return true;
}

bool BenchReport::writeFile(const std::string &Path, std::string &Err) const {
  std::ofstream F(Path);
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  F << toJson().serialize() << "\n";
  if (!F.good()) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Environment probes
//===----------------------------------------------------------------------===//

std::string bench::currentGitSha() {
  if (const char *Sha = std::getenv("LGEN_GIT_SHA"))
    if (*Sha)
      return Sha;
#if !defined(_WIN32)
  if (FILE *P = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char Buf[64] = {};
    size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, P);
    int Rc = ::pclose(P);
    std::string Sha(Buf, N);
    while (!Sha.empty() && (Sha.back() == '\n' || Sha.back() == '\r'))
      Sha.pop_back();
    if (Rc == 0 && Sha.size() == 40)
      return Sha;
  }
#endif
  return "unknown";
}

std::string bench::benchJsonDir() {
  const char *Dir = std::getenv("LGEN_BENCH_JSON_DIR");
  return Dir ? Dir : "";
}

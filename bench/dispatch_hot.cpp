//===- dispatch_hot.cpp - Warm-cache dispatch overhead microbench ---------===//
//
// The steady state of the compile service is cache-hit → execute: the
// kernel was compiled long ago, its .so is dlopen'd with lgen_native_entry
// pre-resolved in the cache entry, and all a request has to do is find it
// and call it. This bench measures exactly that request→kernel-entry
// overhead on a warm sharded KernelCache, for three nested slices:
//
//   lookup.kernel    fingerprint + in-memory LRU hit (shared, no clone)
//   dispatch.native  fingerprint + pre-resolved native handle + zero-copy
//                    argv construction — everything *up to* the entry call
//   dispatch.execute the same, plus the entry call itself (the kernel runs)
//
// Reported medians are ns per dispatch over repeated timing windows and
// exported as BENCH_dispatch.json under the schema-v1 regression gate. The
// bench also self-gates: dispatch.native must stay under a budget
// (LGEN_DISPATCH_BUDGET_NS, default 1000 ns = the sub-microsecond target;
// 0 disables). Hosts without the target ISA or a toolchain emit
// supported:false rows and pass vacuously — the lookup rows still run,
// they need neither.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "compiler/Compiler.h"
#include "compiler/KernelCache.h"
#include "ll/Parser.h"
#include "machine/Executor.h"
#include "runtime/CpuInfo.h"
#include "runtime/NativeKernel.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace lgen;

namespace {

using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - T0).count();
}

struct Case {
  const char *Name;
  const char *Source;
};

const Case Cases[] = {
    {"axpy8", "Vector x(8); Vector y(8); Scalar a; y = a*x + y;"},
    {"mvm4x4", "Matrix A(4, 4); Vector x(4); Vector y(4); y = A*x;"},
    {"mmm4x4",
     "Matrix A(4, 4); Matrix B(4, 4); Matrix C(4, 4); C = A*B;"},
};

/// Median/quartiles over per-window averages: \p WindowNs[i] is the total
/// ns of one window of \p Iters dispatches.
struct Stat {
  double Median, Q1, Q3;
};

Stat stat(std::vector<double> WindowNs, unsigned Iters) {
  for (double &W : WindowNs)
    W /= Iters;
  std::sort(WindowNs.begin(), WindowNs.end());
  size_t N = WindowNs.size();
  return {WindowNs[N / 2], WindowNs[N / 4], WindowNs[(3 * N) / 4]};
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  unsigned Windows = 15, Iters = 4000;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--windows")
      Windows = std::max(3, std::atoi(next()));
    else if (Arg == "--iters")
      Iters = std::max(100, std::atoi(next()));
    else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--windows N] "
                           "[--iters N]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (JsonPath.empty()) {
    std::string Dir = bench::benchJsonDir();
    if (!Dir.empty())
      JsonPath = Dir + "/BENCH_dispatch.json";
  }

  double BudgetNs = 1000.0;
  if (const char *Env = std::getenv("LGEN_DISPATCH_BUDGET_NS"))
    BudgetNs = std::atof(Env);

  compiler::Options Opts =
      compiler::Options::builder(machine::UArch::Atom).full().build();
  Opts.SearchSamples = 2; // warm-up compiles should be quick
  compiler::Compiler C(Opts);
  auto Cache = std::make_shared<compiler::KernelCache>("", /*MaxKernels=*/64,
                                                       /*Shards=*/4);
  C.setKernelCache(Cache);

  bench::BenchReport Report;
  Report.Bench = "dispatch_hot";
  Report.Target = "atom";
  Report.Host = runtime::CpuInfo::host().str();
  Report.Counter = "steady-clock";
  Report.Unit = "ns";
  Report.GitSha = bench::currentGitSha();

  std::printf("== warm-cache dispatch overhead (ns per dispatch) ==\n");
  std::printf("%-10s %-18s %10s %10s %10s\n", "kernel", "slice", "median",
              "q1", "q3");

  bool BudgetBlown = false;
  for (const Case &K : Cases) {
    // Warm the cache: one full compile populates the kernel + plan tiers.
    ll::Program P = ll::parseProgramOrDie(K.Source);
    const std::string Canonical = P.str();
    compiler::CompiledKernel CK = C.compile(P);
    uint64_t Key = compiler::KernelCache::fingerprint(Canonical, Opts);
    std::shared_ptr<const compiler::CompiledKernel> Hit =
        Cache->lookupKernel(Key);
    if (!Hit) {
      std::fprintf(stderr, "FAIL: %s did not land in the cache\n", K.Name);
      return 1;
    }

    auto Row = [&](const std::string &Slice, Stat S, double Flops) {
      bench::BenchResult R;
      R.Kernel = std::string(K.Name) + "." + Slice;
      R.Size = static_cast<int64_t>(Iters);
      R.CyclesMedian = S.Median;
      R.CyclesQ1 = S.Q1;
      R.CyclesQ3 = S.Q3;
      R.Flops = Flops;
      Report.Results.push_back(std::move(R));
      std::printf("%-10s %-18s %10.1f %10.1f %10.1f\n", K.Name,
                  Slice.c_str(), S.Median, S.Q1, S.Q3);
    };

    // Slice 1: fingerprint + sharded LRU hit. The volatile sink keeps the
    // loop from folding away.
    {
      std::vector<double> W(Windows);
      const void *volatile Sink = nullptr;
      for (unsigned R = 0; R != Windows; ++R) {
        auto T0 = Clock::now();
        for (unsigned I = 0; I != Iters; ++I) {
          uint64_t FP =
              compiler::KernelCache::fingerprint(Canonical, Opts);
          Sink = Cache->lookupKernel(FP).get();
        }
        W[R] = nsSince(T0);
      }
      (void)Sink;
      Row("lookup.kernel", stat(W, Iters), CK.Flops);
    }

    // Slices 2+3 need the pre-resolved native handle.
    auto Native = runtime::NativeKernel::acquire(Cache.get(), Key, *Hit);
    if (!Native) {
      bench::BenchResult R;
      R.Kernel = std::string(K.Name) + ".dispatch.native";
      R.Size = static_cast<int64_t>(Iters);
      R.Supported = false;
      R.Reason = Native.error();
      Report.Results.push_back(R);
      R.Kernel = std::string(K.Name) + ".dispatch.execute";
      Report.Results.push_back(std::move(R));
      std::printf("%-10s %-18s skipped: %s\n", K.Name, "dispatch.*",
                  Native.error().c_str());
      continue;
    }
    const runtime::NativeKernel &NK = **Native;

    // Parameter buffers sized for zero-copy eligibility: aligned bases
    // (malloc is 16-byte aligned, enough for SSSE3's ν=4) plus ν elements
    // of tail headroom.
    std::vector<machine::Buffer> Store;
    std::vector<machine::Buffer *> Params;
    for (const runtime::NativeParam &NP : NK.params()) {
      Store.emplace_back(static_cast<size_t>(NP.NumElements) + NK.nu(),
                        1.0f);
      }
    for (machine::Buffer &B : Store)
      Params.push_back(&B);

    // Slice 2: everything up to the entry call — fingerprint, native
    // handle hit, zero-copy argv. This is the "request→kernel-entry
    // overhead" the sub-microsecond target gates.
    Stat NativeStat;
    {
      std::vector<double> W(Windows);
      const void *volatile Sink = nullptr;
      for (unsigned R = 0; R != Windows; ++R) {
        auto T0 = Clock::now();
        for (unsigned I = 0; I != Iters; ++I) {
          uint64_t FP =
              compiler::KernelCache::fingerprint(Canonical, Opts);
          std::shared_ptr<const void> H = Cache->lookupNative(FP);
          const auto *NKHit =
              static_cast<const runtime::NativeKernel *>(H.get());
          runtime::ArgPack Args(*NKHit, Params,
                                runtime::Marshal::ZeroCopy);
          Sink = Args.argv();
        }
        W[R] = nsSince(T0);
      }
      (void)Sink;
      NativeStat = stat(W, Iters);
      Row("dispatch.native", NativeStat, CK.Flops);
    }

    // Slice 3: the full warm dispatch, entry call included.
    {
      std::vector<double> W(Windows);
      for (unsigned R = 0; R != Windows; ++R) {
        auto T0 = Clock::now();
        for (unsigned I = 0; I != Iters; ++I) {
          uint64_t FP =
              compiler::KernelCache::fingerprint(Canonical, Opts);
          std::shared_ptr<const void> H = Cache->lookupNative(FP);
          const auto *NKHit =
              static_cast<const runtime::NativeKernel *>(H.get());
          runtime::ArgPack Args(*NKHit, Params,
                                runtime::Marshal::ZeroCopy);
          NKHit->entry()(Args.argv());
          Args.copyBack();
        }
        W[R] = nsSince(T0);
      }
      Row("dispatch.execute", stat(W, Iters), CK.Flops);
    }

    // Sanity: the fast path really was zero-copy for these buffers.
    runtime::ArgPack Probe(NK, Params, runtime::Marshal::ZeroCopy);
    if (Probe.numDirect() != Params.size())
      std::printf("note: %s marshaled %zu of %zu params by copy "
                  "(allocator alignment)\n",
                  K.Name, Params.size() - Probe.numDirect(), Params.size());

    if (BudgetNs > 0 && NativeStat.Median >= BudgetNs) {
      std::fprintf(stderr,
                   "FAIL: %s dispatch.native median %.1f ns breaches the "
                   "%.0f ns budget\n",
                   K.Name, NativeStat.Median, BudgetNs);
      BudgetBlown = true;
    }
  }

  if (!JsonPath.empty()) {
    std::string WErr;
    if (!Report.writeFile(JsonPath, WErr)) {
      std::fprintf(stderr, "cannot write %s: %s\n", JsonPath.c_str(),
                   WErr.c_str());
      return 1;
    }
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return BudgetBlown ? 1 : 0;
}

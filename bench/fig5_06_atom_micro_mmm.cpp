//===- fig5_06_atom_micro_mmm.cpp - Fig 5.6 (Intel Atom) -------*- C++ -*-===//
//
// Figure 5.6: C = AB micro-BLAC on n×n matrices, n in [2, 10] (Atom).
// Expected shape: LGen-Full to ~1.3 f/c; IPP the runner-up peaking around
// n = 6-8; peaks at n = 4, 8.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.6", "C = A*B, A and B are nxn (micro)",
        [](int64_t N) { return blacs::mmm(N, N, N); },
        {2, 3, 4, 5, 6, 7, 8, 9, 10})
      .print(std::cout);
  return 0;
}

//===- fig5_10_a8_simple.cpp - Fig 5.10 (Cortex-A8) ------------*- C++ -*-===//
//
// Figure 5.10: simple BLACs on Cortex-A8. Expected shape: LGen 2–9× over
// the best competitor — scalar floating point on the A8's non-pipelined
// VFP / high-latency NEON path makes every scalar-mixing competitor slow
// (§5.3.1).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA8);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.10a", "y = A*x, A is nx4",
        [](int64_t N) { return blacs::mvm(N, 4); },
        {4, 8, 16, 64, 256, 692, 695, 1024, 1190})
      .print(std::cout);
  R.run("fig5.10b", "C = A*B, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::mmm(4, N, 4); },
        {2, 4, 8, 16, 64, 238, 474, 946})
      .print(std::cout);
  R.run("fig5.10c", "C = A*B, A is nx4, B is 4xn (rank-4 update)",
        [](int64_t N) { return blacs::mmm(N, 4, N); },
        {2, 4, 8, 14, 20, 32, 50, 86})
      .print(std::cout);
  return 0;
}

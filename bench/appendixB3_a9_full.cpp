//===- appendixB3_a9_full.cpp - Appendix B3 full sweep -------------------*- C++ -*-===//
//
// Appendix B3: the complete experiment set on CortexA9.
//
//===----------------------------------------------------------------------===//

#include "AppendixCommon.h"

int main() {
  lgen::bench::runAppendixSet(lgen::machine::UArch::CortexA9, "B3");
  return 0;
}

//===- runtime_native.cpp - Native measurement through Mediator -----------===//
//
// The end-to-end measurement path of Chapter 5 on the machine at hand:
// experiments flow through Mediator's job interface into the native device
// executor, which compiles each BLAC with the host toolchain and reports
// real measured cycles instead of model estimates. Targets the host cannot
// run come back as clean skips.
//
// Results are printed as a table and written to BENCH_runtime.json so CI
// can archive the numbers alongside the model-based benches.
//
//===----------------------------------------------------------------------===//

#include "mediator/Mediator.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace lgen;
using namespace lgen::json;

namespace {

struct Case {
  const char *Name;
  const char *Target;
  const char *Source;
};

const Case Cases[] = {
    {"axpy_32", "atom",
     "Scalar a; Vector x(32); Vector y(32); y = a*x + y;"},
    {"mvm_16x16", "atom",
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mmm_8x8", "atom",
     "Matrix A(8, 8); Matrix B(8, 8); Matrix C(8, 8); C = A*B;"},
    {"mvm_16x16_avx", "sandybridge",
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mvm_16x16_neon", "a8",
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mvm_16x16_scalar", "arm1176",
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
};

} // namespace

int main() {
  std::printf("== native measurement through the Mediator endpoint ==\n");
  std::printf("host: %s, counter: %s\n", runtime::CpuInfo::host().str().c_str(),
              runtime::cycleCounterName());

  mediator::Mediator M;
  M.registerDevice("host", 1, runtime::nativeDeviceExecutor());

  Array Exps;
  for (const Case &C : Cases) {
    Object Dev;
    Dev["hostname"] = "host";
    Object Exp;
    Exp["device"] = Value(std::move(Dev));
    Exp["source"] = C.Source;
    Exp["target"] = C.Target;
    Exp["searchSamples"] = 2;
    Exp["reps"] = 5;
    Exps.push_back(Value(std::move(Exp)));
  }
  Object Req;
  Req["apiVersion"] = "1.0";
  Req["async"] = false;
  Req["experiments"] = Value(std::move(Exps));

  Value Response;
  std::string Err;
  if (!json::parse(M.handleNewJobRequest(Value(std::move(Req)).serialize()),
                   Response, Err)) {
    std::fprintf(stderr, "error: unparsable Mediator response: %s\n",
                 Err.c_str());
    return 1;
  }
  const Value &Data = Response["data"];
  if (!Data.isArray()) {
    std::fprintf(stderr, "error: Mediator response carries no data: %s\n",
                 Response.serialize().c_str());
    return 1;
  }

  std::printf("%-20s %-14s %-12s %-10s %-8s\n", "kernel", "target", "cycles",
              "f/c", "status");
  Array Results;
  for (size_t I = 0; I != Data.asArray().size(); ++I) {
    const Case &C = Cases[I];
    const Value &R = Data.asArray()[I];
    Object Entry;
    Entry["name"] = C.Name;
    Entry["target"] = C.Target;
    if (R.getBool("supported")) {
      std::printf("%-20s %-14s %-12.1f %-10.3f measured\n", C.Name, C.Target,
                  R.getNumber("cycles"), R.getNumber("flopsPerCycle"));
      Entry["supported"] = true;
      Entry["cycles"] = R.getNumber("cycles");
      Entry["flops"] = R.getNumber("flops");
      Entry["flopsPerCycle"] = R.getNumber("flopsPerCycle");
    } else {
      std::printf("%-20s %-14s %-12s %-10s skipped\n", C.Name, C.Target, "-",
                  "-");
      Entry["supported"] = false;
      Entry["reason"] = R.getString("reason");
    }
    Results.push_back(Value(std::move(Entry)));
  }

  Object Out;
  Out["bench"] = "runtime";
  Out["host"] = runtime::CpuInfo::host().str();
  Out["counter"] = runtime::cycleCounterName();
  Out["results"] = Value(std::move(Results));
  {
    std::ofstream F("BENCH_runtime.json");
    F << Value(std::move(Out)).serialize() << "\n";
  }
  std::printf("shape: host-runnable targets report real cycles; foreign ISAs "
              "skip cleanly\nwrote BENCH_runtime.json\n\n");
  return 0;
}

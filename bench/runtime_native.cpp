//===- runtime_native.cpp - Native measurement through Mediator -----------===//
//
// The end-to-end measurement path of Chapter 5 on the machine at hand:
// experiments flow through Mediator's job interface into the native device
// executor, which compiles each BLAC with the host toolchain and reports
// real measured cycles instead of model estimates. Targets the host cannot
// run come back as clean skips.
//
// Results are printed as a table and written as a schema-v1 BENCH_*.json
// (see BenchJson.h) — to $LGEN_BENCH_JSON_DIR when set, the working
// directory otherwise — so CI can archive and diff the numbers alongside
// the model-based benches.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "mediator/Mediator.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace lgen;
using namespace lgen::json;

namespace {

struct Case {
  const char *Name;
  const char *Target;
  int64_t Size;
  const char *Source;
};

const Case Cases[] = {
    {"axpy", "atom", 32,
     "Scalar a; Vector x(32); Vector y(32); y = a*x + y;"},
    {"mvm", "atom", 16,
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mmm", "atom", 8,
     "Matrix A(8, 8); Matrix B(8, 8); Matrix C(8, 8); C = A*B;"},
    {"mvm_avx", "sandybridge", 16,
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mvm_neon", "a8", 16,
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
    {"mvm_scalar", "arm1176", 16,
     "Matrix A(16, 16); Vector x(16); Vector y(16); y = A*x;"},
};

} // namespace

int main() {
  std::printf("== native measurement through the Mediator endpoint ==\n");
  std::printf("host: %s, counter: %s\n", runtime::CpuInfo::host().str().c_str(),
              runtime::cycleCounterName());

  mediator::Mediator M;
  M.registerDevice("host", 1, runtime::nativeDeviceExecutor());

  Array Exps;
  for (const Case &C : Cases) {
    Object Dev;
    Dev["hostname"] = "host";
    Object Exp;
    Exp["device"] = Value(std::move(Dev));
    Exp["source"] = C.Source;
    Exp["target"] = C.Target;
    Exp["searchSamples"] = 2;
    Exp["reps"] = 5;
    Exps.push_back(Value(std::move(Exp)));
  }
  Object Req;
  Req["apiVersion"] = "1.0";
  Req["async"] = false;
  Req["experiments"] = Value(std::move(Exps));

  Value Response;
  std::string Err;
  if (!json::parse(M.handleNewJobRequest(Value(std::move(Req)).serialize()),
                   Response, Err)) {
    std::fprintf(stderr, "error: unparsable Mediator response: %s\n",
                 Err.c_str());
    return 1;
  }
  const Value &Data = Response["data"];
  if (!Data.isArray()) {
    std::fprintf(stderr, "error: Mediator response carries no data: %s\n",
                 Response.serialize().c_str());
    return 1;
  }

  // All measured cases share one host counter; the report header carries
  // the first measured case's counter/unit labels (they cannot differ
  // within a process).
  bench::BenchReport Report;
  Report.Bench = "runtime_native";
  Report.Target = "host";
  Report.Host = runtime::CpuInfo::host().str();
  Report.Counter = runtime::cycleCounterName();
  Report.Unit = runtime::cycleCounterUnit();
  Report.GitSha = bench::currentGitSha();

  std::printf("%-14s %-14s %-12s %-10s %-8s\n", "kernel", "target", "cycles",
              "f/c", "status");
  for (size_t I = 0; I != Data.asArray().size(); ++I) {
    const Case &C = Cases[I];
    const Value &R = Data.asArray()[I];
    bench::BenchResult Res;
    Res.Kernel = std::string(C.Name) + "_" + C.Target;
    Res.Size = C.Size;
    if (R.getBool("supported")) {
      std::printf("%-14s %-14s %-12.1f %-10.3f measured\n", C.Name, C.Target,
                  R.getNumber("cycles"), R.getNumber("flopsPerCycle"));
      Res.CyclesMedian = R.getNumber("cycles");
      Res.CyclesQ1 = R.getNumber("minCycles", Res.CyclesMedian);
      Res.CyclesQ3 = R.getNumber("maxCycles", Res.CyclesMedian);
      Res.Flops = R.getNumber("flops");
      Res.FlopsPerCycle = R.getNumber("flopsPerCycle");
      const Value &Counters = R["counters"];
      if (Counters.isObject())
        for (const auto &KV : Counters.asObject())
          if (KV.second.isNumber())
            Res.Counters[KV.first] = KV.second.asNumber();
    } else {
      std::printf("%-14s %-14s %-12s %-10s skipped\n", C.Name, C.Target, "-",
                  "-");
      Res.Supported = false;
      Res.Reason = R.getString("reason");
    }
    Report.Results.push_back(std::move(Res));
  }

  std::string Dir = bench::benchJsonDir();
  std::string Path =
      (Dir.empty() ? std::string() : Dir + "/") + "BENCH_runtime_native.json";
  if (!Report.writeFile(Path, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("shape: host-runnable targets report real cycles; foreign ISAs "
              "skip cleanly\nwrote %s\n\n",
              Path.c_str());
  return 0;
}

//===- ablation_autotune.cpp - Search sample-size ablation -----*- C++ -*-===//
//
// §5.5 discussion: random search with a small sample explores only a
// sliver of the scalar tiling space on ARM1176, while the vectorized
// targets have fewer options. This bench sweeps the sample size.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;
using compiler::Options;

static void sampleSweep(machine::UArch Target, const std::string &Title,
                        const std::string &Src) {
  Runner R(Target);
  for (unsigned Samples : {0u, 2u, 10u, 30u}) {
    Options O = Options::lgenBase(Target);
    O.SearchSamples = Samples;
    R.addLGen("LGen s=" + std::to_string(Samples), O);
  }
  R.run("ablate.autotune", Title, [&](int64_t) { return Src; }, {0})
      .print(std::cout);
}

int main() {
  sampleSweep(machine::UArch::ARM1176,
              "C = alpha*A*B + beta*C, 20x20x20 (scalar tiling space)",
              blacs::gemm(20, 20, 20));
  sampleSweep(machine::UArch::Atom,
              "C = alpha*A*B + beta*C, 20x20x20 (vector tiling space)",
              blacs::gemm(20, 20, 20));
  return 0;
}

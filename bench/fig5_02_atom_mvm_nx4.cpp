//===- fig5_02_atom_mvm_nx4.cpp - Fig 5.2 (Intel Atom) ---------*- C++ -*-===//
//
// Figure 5.2: MVM-based BLACs on n×4 vertical panels (Atom). Expected
// shape: the new MVM approach degenerates to the old one (a single tile
// per row), so LGen-MVM ≈ LGen; steep dips at n = 695 and n = 893 where
// ⌊n/4⌋ is prime and no outer tiling is legal (§2.1.2, §5.2.1).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {4,  8,  16,  32,  64,  128, 256,
                             512, 692, 695, 700, 890, 893, 900, 1190};
  R.run("fig5.2a", "y = alpha*A*x + beta*y, A is nx4",
        [](int64_t N) { return blacs::gemv(N, 4); }, Xs)
      .print(std::cout);
  R.run("fig5.2b", "y = alpha*A*x + beta*B*x, A and B are nx4",
        [](int64_t N) { return blacs::twoMvm(N, 4); }, Xs)
      .print(std::cout);
  R.run("fig5.2c", "alpha = x'*A*y, A is nx4",
        [](int64_t N) { return blacs::bilinear(N, 4); }, Xs)
      .print(std::cout);
  return 0;
}

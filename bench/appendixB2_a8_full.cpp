//===- appendixB2_a8_full.cpp - Appendix B2 full sweep -------------------*- C++ -*-===//
//
// Appendix B2: the complete experiment set on CortexA8.
//
//===----------------------------------------------------------------------===//

#include "AppendixCommon.h"

int main() {
  lgen::bench::runAppendixSet(lgen::machine::UArch::CortexA8, "B2");
  return 0;
}

//===- fig5_08_atom_axpy.cpp - Fig 5.8 (Intel Atom) ------------*- C++ -*-===//
//
// Figure 5.8: y = αx + y (Atom) — the alignment-detection showcase. With a
// 3:2 memory-to-arithmetic ratio, aligned moves dominate: the thesis sees
// LGen-Align over 4× above base LGen, icc-fixed the best competitor, and a
// performance cliff past the L1 capacity (n > ~3000).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.8", "y = alpha*x + y",
        [](int64_t N) { return blacs::axpy(N); },
        {8, 32, 128, 512, 1024, 2048, 2702, 3242, 3782})
      .print(std::cout);
  return 0;
}

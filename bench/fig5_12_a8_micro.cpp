//===- fig5_12_a8_micro.cpp - Fig 5.12 (Cortex-A8) -------------*- C++ -*-===//
//
// Figure 5.12: micro-BLACs on n×n matrices (Cortex-A8). Expected shape:
// competitors decent only at n = 4 and 8 (pure vector code); LGen's packed
// leftover handling keeps it high at every size (§5.3.4).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA8);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  R.run("fig5.12a", "y = A*x (micro)",
        [](int64_t N) { return blacs::mvm(N, N); }, Xs)
      .print(std::cout);
  R.run("fig5.12b", "C = A*B (micro)",
        [](int64_t N) { return blacs::mmm(N, N, N); }, Xs)
      .print(std::cout);
  R.run("fig5.12c", "alpha = x'*A*y (micro)",
        [](int64_t N) { return blacs::bilinear(N, N); }, Xs)
      .print(std::cout);
  return 0;
}

//===- fig5_14_a9_simple.cpp - Fig 5.14 (Cortex-A9) ------------*- C++ -*-===//
//
// Figure 5.14: simple BLACs on Cortex-A9. Expected shape: narrower gaps
// than on the A8 (the A9's VFP is pipelined, so scalar competitor code is
// respectable), LGen still ahead ~2×; dips at n = 695, 893 (§5.4.1).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA9);
  R.addLGenVariants();
  R.addCompetitors();
  R.run("fig5.14a", "y = A*x, A is nx4",
        [](int64_t N) { return blacs::mvm(N, 4); },
        {4, 8, 16, 64, 256, 692, 695, 890, 893, 1190})
      .print(std::cout);
  R.run("fig5.14b", "C = A*B, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::mmm(4, N, 4); },
        {2, 4, 8, 16, 64, 238, 474, 946})
      .print(std::cout);
  R.run("fig5.14c", "C = A*B, A is nx4, B is 4xn",
        [](int64_t N) { return blacs::mmm(N, 4, N); },
        {2, 4, 8, 14, 20, 32, 50, 86})
      .print(std::cout);
  return 0;
}

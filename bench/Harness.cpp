//===- Harness.cpp - Benchmark harness for the Chapter 5 plots -----------===//

#include "Harness.h"

#include "ll/Parser.h"
#include "ll/Reference.h"
#include "machine/Executor.h"
#include "mediator/Mediator.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <thread>

using namespace lgen;
using namespace lgen::bench;

//===----------------------------------------------------------------------===//
// Sweep
//===----------------------------------------------------------------------===//

void Sweep::print(std::ostream &OS) const {
  OS << "== " << Id << ": " << Title << " [" << machine::uarchName(Target)
     << "] ==\n";
  OS << "# y-axis: performance [flops/cycle]; x-axis: " << XLabel << "\n";
  OS << XLabel;
  for (const Series &S : SeriesList)
    OS << "\t" << S.Name;
  OS << "\n";
  for (size_t I = 0; I != Xs.size(); ++I) {
    OS << Xs[I];
    for (const Series &S : SeriesList) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3f",
                    I < S.Values.size() ? S.Values[I] : 0.0);
      OS << "\t" << Buf;
    }
    OS << "\n";
  }
  // Shape summary.
  std::string Best = bestCompetitor();
  if (!Best.empty()) {
    for (const Series &S : SeriesList) {
      if (S.Name.rfind("LGen", 0) != 0)
        continue;
      double Sp = speedup(S.Name, Best);
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.2fx", Sp);
      OS << "shape: " << S.Name << " vs best competitor (" << Best
         << "): " << Buf << " geomean\n";
    }
  }
  OS << "\n";
}

double Sweep::valueOf(const std::string &Name, size_t XIdx) const {
  for (const Series &S : SeriesList)
    if (S.Name == Name && XIdx < S.Values.size())
      return S.Values[XIdx];
  return 0.0;
}

double Sweep::speedup(const std::string &A, const std::string &B) const {
  const Series *SA = nullptr, *SB = nullptr;
  for (const Series &S : SeriesList) {
    if (S.Name == A)
      SA = &S;
    if (S.Name == B)
      SB = &S;
  }
  if (!SA || !SB)
    return 0.0;
  double LogSum = 0.0;
  unsigned Count = 0;
  for (size_t I = 0; I != std::min(SA->Values.size(), SB->Values.size());
       ++I) {
    if (SA->Values[I] <= 0 || SB->Values[I] <= 0)
      continue;
    LogSum += std::log(SA->Values[I] / SB->Values[I]);
    ++Count;
  }
  return Count ? std::exp(LogSum / Count) : 0.0;
}

BenchReport Sweep::toBenchReport() const {
  BenchReport B;
  B.Bench = Id;
  B.Target = machine::uarchName(Target);
  // Model cycles come from the port-throughput model, not the machine the
  // harness happens to run on; a host-independent tag keeps baselines
  // portable (bench_compare gates strictly only when "host" matches).
  B.Host = "timing-model";
  B.Counter = "timing-model";
  B.Unit = "model-cycles";
  B.GitSha = currentGitSha();
  for (const Series &S : SeriesList)
    for (size_t I = 0; I != Xs.size(); ++I) {
      BenchResult R;
      R.Kernel = S.Name;
      R.Size = Xs[I];
      R.FlopsPerCycle = I < S.Values.size() ? S.Values[I] : 0.0;
      if (I < S.Cycles.size()) {
        R.CyclesMedian = S.Cycles[I].Median;
        R.CyclesQ1 = S.Cycles[I].Q1;
        R.CyclesQ3 = S.Cycles[I].Q3;
      }
      if (I < S.Flops.size())
        R.Flops = S.Flops[I];
      B.Results.push_back(std::move(R));
    }
  return B;
}

bool Sweep::writeJson(const std::string &Path) const {
  std::string Err;
  if (toBenchReport().writeFile(Path, Err)) {
    std::cerr << "wrote " << Path << "\n";
    return true;
  }
  std::cerr << "warning: " << Err << "\n";
  return false;
}

std::string Sweep::bestCompetitor() const {
  std::string Best;
  double BestScore = -1.0;
  for (const Series &S : SeriesList) {
    if (S.Name.rfind("LGen", 0) == 0)
      continue;
    double LogSum = 0.0;
    unsigned Count = 0;
    for (double V : S.Values)
      if (V > 0) {
        LogSum += std::log(V);
        ++Count;
      }
    double Score = Count ? std::exp(LogSum / Count) : 0.0;
    if (Score > BestScore) {
      BestScore = Score;
      Best = S.Name;
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Measurement (§5.1.4)
//===----------------------------------------------------------------------===//

Measurement bench::measure(const std::function<double()> &Once,
                           unsigned Reps) {
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (unsigned I = 0; I != std::max(1u, Reps); ++I)
    Samples.push_back(Once());
  std::sort(Samples.begin(), Samples.end());
  auto At = [&](double Q) {
    double Pos = Q * (Samples.size() - 1);
    size_t Lo = static_cast<size_t>(Pos);
    size_t Hi = std::min(Lo + 1, Samples.size() - 1);
    double Frac = Pos - Lo;
    return Samples[Lo] * (1 - Frac) + Samples[Hi] * Frac;
  };
  return {At(0.5), At(0.25), At(0.75)};
}

std::vector<int64_t> bench::sweepRange(int64_t Start, int64_t End,
                                       int64_t Step) {
  std::vector<int64_t> Xs;
  for (int64_t X = Start; X <= End; X += Step)
    Xs.push_back(X);
  return Xs;
}

//===----------------------------------------------------------------------===//
// Runner
//===----------------------------------------------------------------------===//

Runner::Runner(machine::UArch Target, std::map<std::string, unsigned> Offsets)
    : Target(Target), Arch(machine::Microarch::get(Target)),
      Offsets(std::move(Offsets)) {}

void Runner::addLGen(const std::string &Label, compiler::Options Opts) {
  SeriesGen G;
  G.Name = Label;
  G.IsLGen = true;
  G.LGenOpts = Opts;
  Gens.push_back(std::move(G));
}

void Runner::addLGenVariants() {
  using compiler::Options;
  // §5.1.5: LGen uses a random search over the tiling space, sample size 10.
  auto Add = [&](const char *Name) {
    Options O = *Options::named(Name, Target);
    O.SearchSamples = 10;
    addLGen(Name, O);
  };
  Add("LGen-Full");
  if (Target == machine::UArch::Atom) {
    Add("LGen-Align");
    Add("LGen-MVM");
  }
  Add("LGen");
}

void Runner::addCompetitors() {
  for (auto &G : baselines::competitorsFor(Target)) {
    SeriesGen SG;
    SG.Name = G->name();
    SG.Baseline = std::move(G);
    Gens.push_back(std::move(SG));
  }
  // The Eigen series must see the offsets the sweep runs with (its runtime
  // peeling decisions, §5.2.4).
  if (!Offsets.empty())
    for (SeriesGen &SG : Gens)
      if (SG.Baseline && SG.Name == "Eigen-like")
        SG.Baseline = baselines::makeEigenLike(Target, Offsets);
}

Runner::PointResult Runner::evalPoint(const std::string &SeriesName,
                                      const std::string &Source,
                                      unsigned Reps) const {
  const SeriesGen *Gen = nullptr;
  for (const SeriesGen &G : Gens)
    if (G.Name == SeriesName)
      Gen = &G;
  assert(Gen && "unknown series");

  ll::Program P = ll::parseProgramOrDie(Source);
  compiler::CompiledKernel CK;
  if (Gen->IsLGen) {
    compiler::Compiler C(Gen->LGenOpts);
    CK = C.compile(P);
  } else {
    CK = Gen->Baseline->compile(P);
  }

  // Alignment offsets by parameter array id (declaration order).
  std::map<cir::ArrayId, int64_t> IdOffsets;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    auto It = Offsets.find(P.Operands[I].Name);
    if (It != Offsets.end())
      IdOffsets[static_cast<cir::ArrayId>(I)] = It->second;
  }

  if (Validate) {
    // §5.1.4: compare against the naive implementation.
    Rng R(0x5eed + P.Operands.size());
    ll::Bindings In;
    for (const ll::Operand &O : P.Operands) {
      ll::MatrixValue V(O.Rows, O.Cols);
      ll::fillRandom(V, R);
      In[O.Name] = V;
    }
    ll::MatrixValue Expected = ll::evaluate(P, In);
    std::vector<machine::Buffer> Storage(P.Operands.size());
    std::vector<machine::Buffer *> Params;
    size_t OutIdx = 0;
    for (size_t I = 0; I != P.Operands.size(); ++I) {
      const ll::Operand &O = P.Operands[I];
      auto It = Offsets.find(O.Name);
      Storage[I] = machine::Buffer(O.numElements(), 0.0f,
                                   It == Offsets.end() ? 0 : It->second);
      Storage[I].Data = In[O.Name].Data;
      if (O.Name == P.OutputName)
        OutIdx = I;
      Params.push_back(&Storage[I]);
    }
    CK.execute(Params);
    ll::MatrixValue Actual(Expected.Rows, Expected.Cols);
    Actual.Data = Storage[OutIdx].Data;
    float Eps = static_cast<float>(
        1e-4 * std::max(1.0, std::sqrt(ll::flopCount(P))));
    if (ll::maxAbsDiff(Expected, Actual) > Eps)
      reportFatalError("bench validation failed for series '" + SeriesName +
                       "' on BLAC: " + Source);
  }

  PointResult PR;
  PR.Cycles = measure([&] { return CK.time(Arch, IdOffsets).Cycles; }, Reps);
  PR.Flops = CK.Flops;
  PR.FlopsPerCycle = PR.Cycles.Median > 0 ? CK.Flops / PR.Cycles.Median : 0.0;
  return PR;
}

Sweep Runner::run(const std::string &Id, const std::string &Title,
                  SourceFn Src, std::vector<int64_t> Xs, unsigned Reps) {
  Sweep S;
  S.Id = Id;
  S.Title = Title;
  S.Target = Target;
  S.Xs = Xs;
  for (const SeriesGen &G : Gens) {
    Series Ser;
    Ser.Name = G.Name;
    Ser.Values.assign(Xs.size(), 0.0);
    Ser.Cycles.assign(Xs.size(), Measurement());
    Ser.Flops.assign(Xs.size(), 0.0);
    S.SeriesList.push_back(std::move(Ser));
  }

  // Run every (series, x) point as one Mediator experiment over a
  // simulated device farm (the thesis' §5.1.4 setup, minus the SSH).
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  struct Point {
    size_t SeriesIdx;
    size_t XIdx;
  };
  std::vector<Point> Points;
  for (size_t SI = 0; SI != Gens.size(); ++SI)
    for (size_t XI = 0; XI != Xs.size(); ++XI)
      Points.push_back({SI, XI});

  mediator::Mediator Med;
  Med.registerDevice(
      "simfarm", Cores, [&](const json::Value &Exp, unsigned) {
        size_t Idx = static_cast<size_t>(Exp.getNumber("pointIndex"));
        const Point &Pt = Points[Idx];
        PointResult PR =
            evalPoint(Gens[Pt.SeriesIdx].Name, Src(Xs[Pt.XIdx]), Reps);
        json::Object R;
        R["pointIndex"] = static_cast<int64_t>(Idx);
        R["flopsPerCycle"] = PR.FlopsPerCycle;
        R["cyclesMedian"] = PR.Cycles.Median;
        R["cyclesQ1"] = PR.Cycles.Q1;
        R["cyclesQ3"] = PR.Cycles.Q3;
        R["flops"] = PR.Flops;
        return json::Value(std::move(R));
      });

  json::Array Exps;
  json::Array Affinity;
  for (unsigned C = 0; C != Cores; ++C)
    Affinity.push_back(json::Value(static_cast<int64_t>(C)));
  for (size_t I = 0; I != Points.size(); ++I) {
    json::Object Dev;
    Dev["hostname"] = "simfarm";
    Dev["affinity"] = json::Value(Affinity);
    json::Object Exp;
    Exp["device"] = json::Value(std::move(Dev));
    Exp["pointIndex"] = static_cast<int64_t>(I);
    Exps.push_back(json::Value(std::move(Exp)));
  }
  json::Object Req;
  Req["apiVersion"] = "1.0";
  Req["async"] = false;
  Req["experiments"] = json::Value(std::move(Exps));

  std::string RespText =
      Med.handleNewJobRequest(json::Value(std::move(Req)).serialize());
  json::Value Resp;
  std::string Err;
  if (!json::parse(RespText, Resp, Err))
    reportFatalError("mediator returned malformed response: " + Err);
  if (!Resp["data"].isArray())
    reportFatalError("mediator job failed: " + RespText);
  for (const json::Value &R : Resp["data"].asArray()) {
    size_t Idx = static_cast<size_t>(R.getNumber("pointIndex"));
    const Point &Pt = Points[Idx];
    Series &Ser = S.SeriesList[Pt.SeriesIdx];
    Ser.Values[Pt.XIdx] = R.getNumber("flopsPerCycle");
    Ser.Cycles[Pt.XIdx] = {R.getNumber("cyclesMedian"),
                           R.getNumber("cyclesQ1"), R.getNumber("cyclesQ3")};
    Ser.Flops[Pt.XIdx] = R.getNumber("flops");
  }

  // CI's perf lane sets LGEN_BENCH_JSON_DIR to collect every sweep it runs
  // as a schema-v1 artifact without touching the bench binaries.
  std::string Dir = benchJsonDir();
  if (!Dir.empty())
    S.writeJson(Dir + "/BENCH_" + Id + ".json");
  return S;
}

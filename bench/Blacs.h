//===- Blacs.h - BLAC source builders shared by the benches ----*- C++ -*-===//
//
// Part of the LGen reproduction benchmark suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BLACs of the thesis evaluation (§5.1.1) as source-string builders:
/// simple BLACs, BLAS-matching BLACs, multi-BLAS BLACs, and micro-BLACs,
/// over panels (4×n / n×4), blocks, and varying-shape (30×n) matrices.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_BENCH_BLACS_H
#define LGEN_BENCH_BLACS_H

#include <cstdint>
#include <string>

namespace lgen {
namespace bench {
namespace blacs {

inline std::string n(int64_t V) { return std::to_string(V); }

// --- Simple BLACs -------------------------------------------------------
inline std::string mvm(int64_t M, int64_t N) {
  return "Matrix A(" + n(M) + ", " + n(N) + "); Vector x(" + n(N) +
         "); Vector y(" + n(M) + "); y = A*x;";
}
inline std::string mmm(int64_t M, int64_t K, int64_t N) {
  return "Matrix A(" + n(M) + ", " + n(K) + "); Matrix B(" + n(K) + ", " +
         n(N) + "); Matrix C(" + n(M) + ", " + n(N) + "); C = A*B;";
}

// --- BLACs that closely match BLAS ---------------------------------------
inline std::string axpy(int64_t N) {
  return "Vector x(" + n(N) + "); Vector y(" + n(N) +
         "); Scalar alpha; y = alpha*x + y;";
}
inline std::string gemv(int64_t M, int64_t N) {
  return "Matrix A(" + n(M) + ", " + n(N) + "); Vector x(" + n(N) +
         "); Vector y(" + n(M) +
         "); Scalar alpha; Scalar beta; y = alpha*(A*x) + beta*y;";
}
inline std::string gemm(int64_t M, int64_t K, int64_t N) {
  return "Matrix A(" + n(M) + ", " + n(K) + "); Matrix B(" + n(K) + ", " +
         n(N) + "); Matrix C(" + n(M) + ", " + n(N) +
         "); Scalar alpha; Scalar beta; C = alpha*(A*B) + beta*C;";
}

// --- BLACs that require more than one BLAS call --------------------------
inline std::string twoMvm(int64_t M, int64_t N) {
  return "Matrix A(" + n(M) + ", " + n(N) + "); Matrix B(" + n(M) + ", " +
         n(N) + "); Vector x(" + n(N) + "); Vector y(" + n(M) +
         "); Scalar alpha; Scalar beta; y = alpha*(A*x) + beta*(B*x);";
}
inline std::string bilinear(int64_t M, int64_t N) {
  // alpha = x' * A * y with A M×N.
  return "Vector x(" + n(M) + "); Matrix A(" + n(M) + ", " + n(N) +
         "); Vector y(" + n(N) + "); Scalar alpha; alpha = x' * A * y;";
}
inline std::string addTransGemm(int64_t M, int64_t K, int64_t N) {
  // C = alpha*(A0 + A1)' * B + beta*C with A0, A1 K×M and B K×N.
  return "Matrix A0(" + n(K) + ", " + n(M) + "); Matrix A1(" + n(K) + ", " +
         n(M) + "); Matrix B(" + n(K) + ", " + n(N) + "); Matrix C(" + n(M) +
         ", " + n(N) +
         "); Scalar alpha; Scalar beta; C = alpha*((A0 + A1)' * B) + beta*C;";
}

} // namespace blacs
} // namespace bench
} // namespace lgen

#endif // LGEN_BENCH_BLACS_H

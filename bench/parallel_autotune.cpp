//===- parallel_autotune.cpp - Parallel search + cache wall-clock bench ---===//
//
// The compile-throughput story of this fork: a SearchSamples=32 autotune of
// a gemm-like BLAC, timed end to end (wall clock, not the timing model) at
// several pool widths, then recompiled to show the kernel-cache tiers.
// The plan choice is deterministic across pool sizes, so the speedup is
// pure search-evaluation parallelism.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "lgen/LGen.h"

#include <chrono>
#include <cstdio>
#include <functional>

using namespace lgen;
using compiler::Options;

namespace {

double wallMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

} // namespace

int main() {
  const std::string Src = bench::blacs::gemm(24, 24, 24);
  const machine::UArch Target = machine::UArch::Atom;
  const unsigned Samples = 32;

  std::printf("SearchSamples=%u autotune of %s\n\n", Samples, Src.c_str());
  std::printf("%-18s %12s %10s\n", "pool", "wall [ms]", "speedup");

  double SerialMs = 0;
  std::string SerialKernel;
  for (unsigned Threads : {1u, 2u, 4u}) {
    Options O = Options::builder(Target)
                    .searchSamples(Samples)
                    .tunerThreads(Threads)
                    .build();
    compiler::Compiler C(O);
    std::string Kernel;
    double Ms = wallMs(
        [&] { Kernel = C.compile(Src).valueOrDie().kernelFor({}).str(); });
    if (Threads == 1) {
      SerialMs = Ms;
      SerialKernel = Kernel;
    }
    std::printf("ThreadPool(%u)%*s %12.1f %9.2fx%s\n", Threads, 5, "", Ms,
                SerialMs / Ms,
                Kernel == SerialKernel ? "" : "  [MISMATCH vs serial!]");
  }

  // Cache tiers: a second compile of the same (source, Options) pair.
  std::printf("\nkernel cache (same source + Options):\n");
  compiler::Compiler C(
      Options::builder(Target).searchSamples(Samples).build());
  C.setKernelCache(std::make_shared<compiler::KernelCache>(""));
  double ColdMs = wallMs([&] { (void)C.compile(Src).valueOrDie(); });
  double WarmMs = wallMs([&] { (void)C.compile(Src).valueOrDie(); });
  compiler::CacheStats S = C.kernelCache()->stats();
  std::printf("  cold: %8.1f ms   (misses=%llu)\n", ColdMs,
              (unsigned long long)S.Misses);
  std::printf("  warm: %8.1f ms   (hits=%llu, memory=%llu)  -> %.0fx\n",
              WarmMs, (unsigned long long)S.hits(),
              (unsigned long long)S.MemoryHits, ColdMs / WarmMs);
  return 0;
}

//===- fig5_17_a9_micro.cpp - Fig 5.17 (Cortex-A9) -------------*- C++ -*-===//
//
// Figure 5.17: micro-BLACs on Cortex-A9. Expected shape: LGen well ahead
// on y = Ax and C = AB at every size; on α = xᵀAy Eigen is comparable up
// to n ≈ 7 and collapses afterwards (§5.4.4).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::CortexA9);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  R.run("fig5.17a", "y = A*x (micro)",
        [](int64_t N) { return blacs::mvm(N, N); }, Xs)
      .print(std::cout);
  R.run("fig5.17b", "C = A*B (micro)",
        [](int64_t N) { return blacs::mmm(N, N, N); }, Xs)
      .print(std::cout);
  R.run("fig5.17c", "alpha = x'*A*y (micro)",
        [](int64_t N) { return blacs::bilinear(N, N); }, Xs)
      .print(std::cout);
  return 0;
}

//===- fig5_18_a9_leftovers.cpp - Fig 5.18 (Cortex-A9) ---------*- C++ -*-===//
//
// Figure 5.18: leftover-heavy C = AB on Cortex-A9 (§5.4.5). Same setup as
// Fig 5.13; values slightly below the A8's because the A9 NEON pipeline
// issues a single instruction per cycle.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  using compiler::Options;
  Runner R(machine::UArch::CortexA9);
  Options Spec = Options::lgenBase(machine::UArch::CortexA9);
  Spec.SpecializedNuBLACs = true;
  R.addLGen("LGen-Full", Spec);
  R.addLGen("LGen", Options::lgenBase(machine::UArch::CortexA9));
  R.addCompetitors();
  R.run("fig5.18", "C = A*B, A is 100xn, B is nxn",
        [](int64_t N) { return blacs::mmm(100, N, N); },
        {2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 14, 15, 18, 22, 23, 24})
      .print(std::cout);
  return 0;
}

//===- ablation_optimizations.cpp - Per-optimization ablation --*- C++ -*-===//
//
// Ablation of the four §3 optimizations (DESIGN.md): each toggle is
// flipped individually on a BLAC where it matters, reporting f/c. Also
// covers the §3.1 ablation the thesis could not run (generic loads/stores
// off ⇒ scalar replacement blocked on leftover tiles, Fig 3.2 vs 3.3).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;
using compiler::Options;

int main() {
  // §3.1 generic memory ops: leftover-heavy MVM on Atom.
  {
    Runner R(machine::UArch::Atom);
    Options On = Options::lgenBase(machine::UArch::Atom);
    Options Off = On;
    Off.UseGenericMemOps = false;
    R.addLGen("LGen generic-ls", On);
    R.addLGen("LGen concrete-ls", Off);
    R.run("ablate.3_1", "y = A*x, A is nx3 (leftover columns everywhere)",
          [](int64_t N) { return blacs::mvm(N, 3); },
          {3, 7, 15, 31, 63, 127})
        .print(std::cout);
  }
  // §3.2 alignment detection: axpy on Atom.
  {
    Runner R(machine::UArch::Atom);
    Options On = Options::lgenBase(machine::UArch::Atom);
    On.AlignmentDetection = true;
    R.addLGen("LGen align-on", On);
    R.addLGen("LGen align-off", Options::lgenBase(machine::UArch::Atom));
    R.run("ablate.3_2", "y = alpha*x + y",
          [](int64_t N) { return blacs::axpy(N); }, {64, 256, 1024, 2048})
        .print(std::cout);
  }
  // §3.3 new MVM: 4xn MVM on Atom.
  {
    Runner R(machine::UArch::Atom);
    Options On = Options::lgenBase(machine::UArch::Atom);
    On.NewMVM = true;
    On.SearchSamples = 10;
    Options Off = Options::lgenBase(machine::UArch::Atom);
    Off.SearchSamples = 10;
    R.addLGen("LGen newmvm-on", On);
    R.addLGen("LGen newmvm-off", Off);
    R.run("ablate.3_3", "y = A*x, A is 4xn",
          [](int64_t N) { return blacs::mvm(4, N); }, {16, 64, 256, 1024})
        .print(std::cout);
  }
  // §3.4 specialized nu-BLACs: leftover MMM on Cortex-A8.
  {
    Runner R(machine::UArch::CortexA8);
    Options On = Options::lgenBase(machine::UArch::CortexA8);
    On.SpecializedNuBLACs = true;
    R.addLGen("LGen specialized-on", On);
    R.addLGen("LGen specialized-off",
              Options::lgenBase(machine::UArch::CortexA8));
    R.run("ablate.3_4", "C = A*B, A is 100xn, B is nxn",
          [](int64_t N) { return blacs::mmm(100, N, N); },
          {2, 3, 5, 6, 7, 10, 11})
        .print(std::cout);
  }
  // Σ-LL loop fusion leverage: fused vs the per-nest temps it removes is
  // internal; approximate by comparing a compound elementwise BLAC against
  // the same computation through the BLAS-style multi-pass baseline.
  {
    Runner R(machine::UArch::Atom);
    R.addLGen("LGen fused", Options::lgenBase(machine::UArch::Atom));
    R.addCompetitors();
    R.run("ablate.fusion", "y = alpha*A*x + beta*y, A is 30xn",
          [](int64_t N) { return blacs::gemv(30, N); }, {8, 30, 58, 100})
        .print(std::cout);
  }
  return 0;
}

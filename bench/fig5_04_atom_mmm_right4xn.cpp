//===- fig5_04_atom_mmm_right4xn.cpp - Fig 5.4 (Intel Atom) ----*- C++ -*-===//
//
// Figure 5.4: MMM-based BLACs where the right operand is 4×n (Atom).
// Expected shape: LGen-Full above all; MKL the best competitor on the
// gemm-like variants; alignment percentage follows n mod 4.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {2, 4, 8, 16, 32, 33, 34, 64, 128, 256, 512, 946};
  R.run("fig5.4a", "C = A*B, A is 4x4, B is 4xn",
        [](int64_t N) { return blacs::mmm(4, 4, N); }, Xs)
      .print(std::cout);
  R.run("fig5.4b", "C = alpha*A*B + beta*C, A is 4x4, B is 4xn",
        [](int64_t N) { return blacs::gemm(4, 4, N); }, Xs)
      .print(std::cout);
  R.run("fig5.4c", "C = alpha*(A0+A1)'*B + beta*C, A0, A1, B are 4xn",
        [](int64_t N) { return blacs::addTransGemm(N, 4, N); },
        {2, 4, 8, 16, 24, 32, 48, 64, 86})
      .print(std::cout);
  return 0;
}

//===- fig5_05_atom_mmm_rightnx4.cpp - Fig 5.5 (Intel Atom) ----*- C++ -*-===//
//
// Figure 5.5: MMM-based BLACs where the right operand has 4 columns
// (Atom). Expected shape: flat LGen-Full curves (every access aligned);
// smaller LGen-Full vs LGen gap than in the MVM figures because MMM has a
// higher compute-to-memory ratio (§5.2.2).
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::Atom);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Xs = {4, 8, 16, 32, 64, 128, 256, 512, 946};
  R.run("fig5.5a", "C = A*B, A is nx4, B is 4x4",
        [](int64_t N) { return blacs::mmm(N, 4, 4); }, Xs)
      .print(std::cout);
  R.run("fig5.5b", "C = alpha*A*B + beta*C, A is nx4, B is 4x4",
        [](int64_t N) { return blacs::gemm(N, 4, 4); }, Xs)
      .print(std::cout);
  return 0;
}

//===- appendixB1_atom_full.cpp - Appendix B1 full sweep -------------------*- C++ -*-===//
//
// Appendix B1: the complete experiment set on Atom.
//
//===----------------------------------------------------------------------===//

#include "AppendixCommon.h"

int main() {
  lgen::bench::runAppendixSet(lgen::machine::UArch::Atom, "B1");
  return 0;
}

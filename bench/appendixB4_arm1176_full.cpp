//===- appendixB4_arm1176_full.cpp - Appendix B4 full sweep -------------------*- C++ -*-===//
//
// Appendix B4: the complete experiment set on ARM1176.
//
//===----------------------------------------------------------------------===//

#include "AppendixCommon.h"

int main() {
  lgen::bench::runAppendixSet(lgen::machine::UArch::ARM1176, "B4");
  return 0;
}

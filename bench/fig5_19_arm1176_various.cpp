//===- fig5_19_arm1176_various.cpp - Fig 5.19 (ARM1176) --------*- C++ -*-===//
//
// Figure 5.19: various BLACs on the scalar ARM1176 (§5.5). All series are
// scalar code; LGen's advantage comes from tiling/unrolling plus the
// scheduler, up to ~4× over ATLAS (the best competitor), except on
// α = xᵀAy. L1 is only 16 KB, so the large-n decay starts early, and the
// small random-search sample (10) over the large scalar tiling space makes
// LGen's own curve noticeably noisy.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  Runner R(machine::UArch::ARM1176);
  R.addLGenVariants();
  R.addCompetitors();
  std::vector<int64_t> Panel = {4, 8, 16, 64, 256, 1024, 1190};
  std::vector<int64_t> Square = {2, 4, 8, 14, 20, 32, 50, 86};
  R.run("fig5.19a", "y = A*x, A is 4xn",
        [](int64_t N) { return blacs::mvm(4, N); }, Panel)
      .print(std::cout);
  R.run("fig5.19b", "C = A*B, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::mmm(4, N, 4); },
        {2, 4, 8, 16, 64, 238, 474, 946})
      .print(std::cout);
  R.run("fig5.19c", "y = alpha*x + y",
        [](int64_t N) { return blacs::axpy(N); },
        {16, 64, 256, 1024, 2048, 3782})
      .print(std::cout);
  R.run("fig5.19d", "y = alpha*A*x + beta*y, A is 4xn",
        [](int64_t N) { return blacs::gemv(4, N); }, Panel)
      .print(std::cout);
  R.run("fig5.19e", "C = alpha*A*B + beta*C, A is 4xn, B is nx4",
        [](int64_t N) { return blacs::gemm(4, N, 4); },
        {2, 4, 8, 16, 64, 238, 474, 946})
      .print(std::cout);
  R.run("fig5.19f", "y = alpha*A*x + beta*B*x, A and B are 4xn",
        [](int64_t N) { return blacs::twoMvm(4, N); }, Panel)
      .print(std::cout);
  R.run("fig5.19g", "alpha = x'*A*y, A is 4xn",
        [](int64_t N) { return blacs::bilinear(4, N); }, Panel)
      .print(std::cout);
  R.run("fig5.19h", "C = alpha*(A0+A1)'*B + beta*C",
        [](int64_t N) { return blacs::addTransGemm(N, 4, N); }, Square)
      .print(std::cout);
  return 0;
}

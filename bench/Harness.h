//===- Harness.h - Benchmark harness for the Chapter 5 plots ---*- C++ -*-===//
//
// Part of the LGen reproduction benchmark suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experimental setup of thesis §5.1 as a reusable harness. A bench
/// binary describes one figure: the target processor, the BLAC as a
/// function of the sweep parameter n, and the series to compare (LGen
/// configurations and the competitor set). The harness:
///
///  * compiles every (series, n) point and validates it against the naive
///    reference (§5.1.4's correctness check);
///  * measures flops/cycle with the target's timing model, through the
///    repetition/median machinery of §5.1.4;
///  * executes the sweep as a Mediator job spread over the cores of a
///    simulated device farm, exactly how the thesis ran its experiments;
///  * prints the series as a table plus a "shape" summary (who wins, by
///    what factor) that EXPERIMENTS.md quotes.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_BENCH_HARNESS_H
#define LGEN_BENCH_HARNESS_H

#include "BenchJson.h"
#include "baselines/Baselines.h"
#include "compiler/Compiler.h"

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lgen {
namespace bench {

/// Median/quartile measurement of §5.1.4. The timing model is
/// deterministic, so by default one repetition suffices; the machinery is
/// exercised with injected jitter in the tests.
struct Measurement {
  double Median = 0;
  double Q1 = 0;
  double Q3 = 0;
};
Measurement measure(const std::function<double()> &Once, unsigned Reps = 1);

struct Series {
  std::string Name;
  /// Headline flops/cycle per sweep point (the thesis plots' y-axis).
  std::vector<double> Values;
  /// Raw model cycles behind each Values entry (median + quartiles) and
  /// the BLAC's useful flop count — what BENCH_*.json archives so
  /// bench_compare.py can diff cycles, not just the derived ratio.
  std::vector<Measurement> Cycles;
  std::vector<double> Flops;
};

struct Sweep {
  std::string Id;
  std::string Title;
  machine::UArch Target = machine::UArch::Atom;
  std::string XLabel = "n";
  std::vector<int64_t> Xs;
  std::vector<Series> SeriesList;

  void print(std::ostream &OS) const;

  /// The sweep as a schema-v1 BenchReport (unit "model-cycles": these are
  /// timing-model estimates, not host measurements — comparators must not
  /// mix them with perf_event numbers).
  BenchReport toBenchReport() const;
  /// Serializes toBenchReport() to \p Path; returns false on I/O failure
  /// with a note on stderr.
  bool writeJson(const std::string &Path) const;

  /// Value of a named series at index \p XIdx (tests/summaries).
  double valueOf(const std::string &Name, size_t XIdx) const;
  /// Geometric-mean speedup of series \p A over series \p B across the
  /// sweep (points where either is zero are skipped).
  double speedup(const std::string &A, const std::string &B) const;
  /// Name of the best non-LGen series by geometric mean.
  std::string bestCompetitor() const;
};

/// {Start, Start+Step, ...} up to and including at most End.
std::vector<int64_t> sweepRange(int64_t Start, int64_t End, int64_t Step);

/// BLAC source as a function of the sweep parameter.
using SourceFn = std::function<std::string(int64_t)>;

class Runner {
public:
  /// \p Offsets misaligns operand buffers by name (Fig 5.9); the Eigen
  /// baseline also receives them as its peeling assumption.
  explicit Runner(machine::UArch Target,
                  std::map<std::string, unsigned> Offsets = {});

  /// Adds an LGen configuration series.
  void addLGen(const std::string &Label, compiler::Options Opts);
  /// Adds the four thesis configurations LGen/-Align/-MVM/-Full (Atom) or
  /// LGen/LGen-Full (others).
  void addLGenVariants();
  /// Adds the §5.1.2 competitor set for the target.
  void addCompetitors();

  /// Runs the sweep, dispatching points through Mediator. When
  /// $LGEN_BENCH_JSON_DIR is set, also writes BENCH_<Id>.json there.
  Sweep run(const std::string &Id, const std::string &Title, SourceFn Src,
            std::vector<int64_t> Xs, unsigned Reps = 1);

  /// Disables per-point validation (for very large sweeps).
  void setValidate(bool V) { Validate = V; }

private:
  /// One measured point: the raw tick statistics plus the derived ratio
  /// that feeds the plots.
  struct PointResult {
    Measurement Cycles;
    double Flops = 0.0;
    double FlopsPerCycle = 0.0;
  };
  PointResult evalPoint(const std::string &SeriesName,
                        const std::string &Source, unsigned Reps) const;

  machine::UArch Target;
  machine::Microarch Arch;
  std::map<std::string, unsigned> Offsets;
  bool Validate = true;
  struct SeriesGen {
    std::string Name;
    compiler::Options LGenOpts;
    bool IsLGen = false;
    std::shared_ptr<baselines::Generator> Baseline;
  };
  std::vector<SeriesGen> Gens;
};

} // namespace bench
} // namespace lgen

#endif // LGEN_BENCH_HARNESS_H

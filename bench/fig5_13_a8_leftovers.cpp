//===- fig5_13_a8_leftovers.cpp - Fig 5.13 (Cortex-A8) ---------*- C++ -*-===//
//
// Figure 5.13: C = AB with a large percentage of leftovers (Cortex-A8) —
// the specialized ν-BLAC showcase (§3.4, §5.3.5). Subplot (a) sweeps every
// M×K×N with dimensions in [1, 4]; subplot (b) is a 100×n×n product.
// Expected shape: specialized ν-BLACs up to ~4× over the traditional
// padding path when n mod 4 ∈ {2, 3}, converging as n grows.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

static void leftoverBench(machine::UArch Target) {
  using compiler::Options;
  Runner R(Target);
  Options Spec = Options::lgenBase(Target);
  Spec.SpecializedNuBLACs = true;
  R.addLGen("LGen-Full", Spec); // Specialized leftover codelets.
  R.addLGen("LGen", Options::lgenBase(Target));
  R.addCompetitors();

  // (a) All M, K, N in [1,4] with MK > 1 and KN > 1, indexed 0..N-1.
  struct Shape {
    int64_t M, K, N;
  };
  static std::vector<Shape> Shapes;
  Shapes.clear();
  for (int64_t M = 1; M <= 4; ++M)
    for (int64_t K = 1; K <= 4; ++K)
      for (int64_t N = 1; N <= 4; ++N)
        if (M * K > 1 && K * N > 1)
          Shapes.push_back({M, K, N});
  std::vector<int64_t> Idx;
  for (size_t I = 0; I != Shapes.size(); ++I)
    Idx.push_back(static_cast<int64_t>(I));
  Sweep A = R.run("fig.a", "C = A(MxK)*B(KxN), M,K,N in [1,4]",
                  [](int64_t I) {
                    const Shape &S = Shapes[I];
                    return blacs::mmm(S.M, S.K, S.N);
                  },
                  Idx);
  A.XLabel = "shape#";
  A.print(std::cout);

  // (b) 100 x n x n.
  R.run("fig.b", "C = A*B, A is 100xn, B is nxn",
        [](int64_t N) { return blacs::mmm(100, N, N); },
        {2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 14, 15, 18, 22, 23, 24})
      .print(std::cout);
}

int main() {
  std::cout << "== fig5.13: leftover-heavy C = AB on Cortex-A8 ==\n";
  leftoverBench(machine::UArch::CortexA8);
  return 0;
}

//===- gbench_compile_pipeline.cpp - Host-side compiler benchmarks -------===//
//
// google-benchmark measurements of the *compiler itself* on the host:
// parse → Σ-LL → C-IR → optimize throughput, the alignment analysis, and
// the timing simulator. These are the costs a user of the library pays.
//
//===----------------------------------------------------------------------===//

#include "absint/AlignmentDetection.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"

#include <benchmark/benchmark.h>

using namespace lgen;

static const char *GemvSrc =
    "Matrix A(16, 64); Vector x(64); Vector y(16); Scalar alpha;"
    " Scalar beta; y = alpha*(A*x) + beta*y;";

static void BM_CompileGemv(benchmark::State &State) {
  auto P = ll::parseProgramOrDie(GemvSrc);
  compiler::Compiler C(compiler::Options::lgenBase(machine::UArch::Atom));
  for (auto _ : State)
    benchmark::DoNotOptimize(C.compile(P));
}
BENCHMARK(BM_CompileGemv);

static void BM_CompileGemvFull(benchmark::State &State) {
  auto P = ll::parseProgramOrDie(GemvSrc);
  compiler::Compiler C(compiler::Options::lgenFull(machine::UArch::Atom));
  for (auto _ : State)
    benchmark::DoNotOptimize(C.compile(P));
}
BENCHMARK(BM_CompileGemvFull);

static void BM_Parse(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(ll::parseProgramOrDie(GemvSrc));
}
BENCHMARK(BM_Parse);

static void BM_AlignmentAnalysis(benchmark::State &State) {
  auto P = ll::parseProgramOrDie(GemvSrc);
  compiler::Compiler C(compiler::Options::lgenBase(machine::UArch::Atom));
  tiling::TilingPlan Plan;
  cir::Kernel K = C.generateCore(P, Plan);
  for (auto _ : State)
    benchmark::DoNotOptimize(absint::detectAlignment(
        K, 4, absint::AlignmentAssumption::allAligned(K)));
}
BENCHMARK(BM_AlignmentAnalysis);

static void BM_TimingSimulation(benchmark::State &State) {
  auto P = ll::parseProgramOrDie(GemvSrc);
  compiler::Compiler C(compiler::Options::lgenBase(machine::UArch::Atom));
  auto CK = C.compile(P);
  machine::Microarch M = machine::Microarch::get(machine::UArch::Atom);
  for (auto _ : State)
    benchmark::DoNotOptimize(CK.time(M));
}
BENCHMARK(BM_TimingSimulation);

BENCHMARK_MAIN();

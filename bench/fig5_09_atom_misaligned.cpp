//===- fig5_09_atom_misaligned.cpp - Fig 5.9 (Intel Atom) ------*- C++ -*-===//
//
// Figure 5.9: y = αAx + βy with A 30×n and all arrays allocated at an
// aligned address plus an offset of 0 / 4 / 8 bytes (§5.2.4). Expected
// shape: at offset 0 LGen-Full far ahead; at offsets 4 and 8 the
// Eigen-like peeling matches or beats LGen on even n (100% unaligned for
// LGen, peeled-aligned for Eigen), while odd n gives LGen its 25%-aligned
// peaks.
//
//===----------------------------------------------------------------------===//

#include "Blacs.h"
#include "Harness.h"

#include <iostream>

using namespace lgen;
using namespace lgen::bench;

int main() {
  std::vector<int64_t> Xs = {4, 8, 16, 17, 30, 44, 45, 58, 72, 86, 99, 100};
  for (unsigned OffsetElems : {0u, 1u, 2u}) {
    std::map<std::string, unsigned> Offsets = {
        {"A", OffsetElems}, {"x", OffsetElems}, {"y", OffsetElems}};
    Runner R(machine::UArch::Atom, Offsets);
    R.addLGenVariants();
    R.addCompetitors();
    R.run("fig5.9." + std::string(1, char('a' + OffsetElems)),
          "y = alpha*A*x + beta*y, A is 30xn, offset = " +
              std::to_string(OffsetElems * 4) + " bytes",
          [](int64_t N) { return blacs::gemv(30, N); }, Xs)
        .print(std::cout);
  }
  return 0;
}

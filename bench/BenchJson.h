//===- BenchJson.h - Standardized BENCH_*.json result schema ---*- C++ -*-===//
//
// Part of the LGen reproduction benchmark suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one schema every bench artifact uses, so tools/bench_compare.py can
/// diff any two runs without knowing which binary produced them. Version 1:
///
/// \code{.json}
/// {
///   "version": 1,
///   "bench":   "fig5_08",                 // bench/sweep id
///   "target":  "atom",                    // uarch the kernels target
///   "host":    "...",                     // runtime::CpuInfo::host().str()
///   "counter": "timing-model",            // what produced the tick values
///   "unit":    "model-cycles",            // model-cycles | cycles | ns
///   "gitSha":  "abc123... | unknown",
///   "results": [
///     {"kernel": "LGen-Full", "size": 16,
///      "supported": true, "reason": "",
///      "cycles": {"median": 410.0, "q1": 410.0, "q3": 410.0},
///      "flops": 512.0, "flopsPerCycle": 1.25,
///      "counters": {"instructions": 230.0, ...}}, ...]
/// }
/// \endcode
///
/// "cycles" always names the tick triple whatever the unit — the field is
/// positional, the "unit" header says what it denominates. Comparators must
/// refuse (or warn-only) when the units or hosts of two files differ:
/// model cycles vs. perf_event cycles vs. steady-clock ns are not one axis.
///
/// The git sha comes from $LGEN_GIT_SHA when set (CI exports it), else from
/// `git rev-parse HEAD`, else "unknown" — bench binaries run from build
/// trees, tarballs, and containers, and a missing sha must not fail a run.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_BENCH_BENCHJSON_H
#define LGEN_BENCH_BENCHJSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lgen {

namespace json {
class Value;
} // namespace json

namespace bench {

/// One measured (kernel, size) point.
struct BenchResult {
  std::string Kernel; ///< Series / kernel id ("LGen-Full", "mvm_16x16").
  int64_t Size = 0;   ///< Sweep parameter (problem size).
  bool Supported = true;
  std::string Reason; ///< Skip explanation when !Supported.
  double CyclesMedian = 0.0;
  double CyclesQ1 = 0.0;
  double CyclesQ3 = 0.0;
  double Flops = 0.0;
  double FlopsPerCycle = 0.0;
  /// Per-invocation hardware counter readings; empty for model-based
  /// benches and perf-restricted hosts (absent, never zero).
  std::map<std::string, double> Counters;
};

/// One bench run: header + results, serializable to/from schema v1.
struct BenchReport {
  std::string Bench;
  std::string Target;
  std::string Host;
  std::string Counter;
  std::string Unit;
  std::string GitSha;
  std::vector<BenchResult> Results;

  json::Value toJson() const;
  /// Validates schema v1; returns false and sets \p Err on violations.
  static bool fromJson(const json::Value &V, BenchReport &Out,
                       std::string &Err);

  /// Serializes to \p Path. Returns false (and sets \p Err) when the file
  /// cannot be written.
  bool writeFile(const std::string &Path, std::string &Err) const;
};

/// $LGEN_GIT_SHA, else `git rev-parse HEAD`, else "unknown".
std::string currentGitSha();

/// $LGEN_BENCH_JSON_DIR — when non-empty, harness sweeps auto-write
/// BENCH_<id>.json files there.
std::string benchJsonDir();

} // namespace bench
} // namespace lgen

#endif // LGEN_BENCH_BENCHJSON_H

//===- graphics_transforms.cpp - Graphics-domain scenario ------*- C++ -*-===//
//
// Part of the LGen reproduction examples.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graphics use case from the thesis introduction: tiny fixed-size
/// kernels executed millions of times. Two kernels on a Cortex-A9 model:
///
///   * composing two 4×4 homogeneous transforms (C = A·B) — a perfect
///     ν-sized micro-BLAC;
///   * transforming a normal by a 3×3 matrix (y = M·n) — leftovers
///     everywhere, the case the specialized ν-BLACs of §3.4 exist for.
///
/// The example prints the per-kernel cycle estimates with the specialized
/// leftover codelets off and on.
///
//===----------------------------------------------------------------------===//

#include "codegen/CUnparser.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "machine/Executor.h"

#include <cstdio>

using namespace lgen;

namespace {

void show(const char *Label, const compiler::CompiledKernel &CK,
          const machine::Microarch &M) {
  machine::TimingResult T = CK.time(M);
  std::printf("  %-34s %6.1f cycles  %.2f f/c\n", Label, T.Cycles,
              CK.Flops / T.Cycles);
}

} // namespace

int main() {
  const machine::UArch Target = machine::UArch::CortexA9;
  machine::Microarch M = machine::Microarch::get(Target);

  const std::string ComposeSrc =
      "Matrix A(4, 4); Matrix B(4, 4); Matrix C(4, 4); C = A*B;";
  const std::string NormalSrc =
      "Matrix N(3, 3); Vector v(3); Vector w(3); w = N*v;";

  std::printf("4x4 transform composition (C = A*B):\n");
  for (bool Spec : {false, true}) {
    compiler::Compiler C(
        compiler::Options::builder(Target).specializedNuBLACs(Spec).build());
    show(Spec ? "specialized nu-BLACs" : "traditional nu-BLACs",
         C.compile(ComposeSrc).valueOrDie(), M);
  }
  std::printf("  (full 4x4 tiles: both paths emit the same code)\n\n");

  std::printf("3x3 normal transform (w = N*v):\n");
  compiler::CompiledKernel SpecKernel;
  for (bool Spec : {false, true}) {
    compiler::Compiler C(
        compiler::Options::builder(Target).specializedNuBLACs(Spec).build());
    compiler::CompiledKernel CK = C.compile(NormalSrc).valueOrDie();
    show(Spec ? "specialized nu-BLACs" : "traditional nu-BLACs", CK, M);
    if (Spec)
      SpecKernel = std::move(CK);
  }

  // Use the kernel: rotate a few normals 90 degrees about z.
  machine::Buffer N(9, 0.0f), V(3), W(3);
  N[0 * 3 + 1] = -1.0f;
  N[1 * 3 + 0] = 1.0f;
  N[2 * 3 + 2] = 1.0f;
  const float Normals[2][3] = {{1, 0, 0}, {0.6f, 0.8f, 0}};
  std::printf("\nrotating normals about z:\n");
  for (const float *In : Normals) {
    V[0] = In[0];
    V[1] = In[1];
    V[2] = In[2];
    SpecKernel.execute({&N, &V, &W});
    std::printf("  (%.2f, %.2f, %.2f) -> (%.2f, %.2f, %.2f)\n", V[0], V[1],
                V[2], W[0], W[1], W[2]);
  }

  std::printf("\ngenerated NEON kernel for w = N*v (specialized):\n%s",
              codegen::unparseCompiled(SpecKernel).c_str());
  return 0;
}

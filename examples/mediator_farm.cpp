//===- mediator_farm.cpp - Driving Mediator through its JSON API ----------===//
//
// Part of the LGen reproduction examples.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mediator as a user sees it (thesis Ch. 4 / Appendix A): a client posts
/// a new-job request in JSON naming devices and experiments, then either
/// blocks for the results (synchronous, Fig. 4.2) or polls with the job id
/// (asynchronous, Fig. 4.3). The registered device executor stands in for
/// the SSH-reachable board: here it compiles and times a BLAC named in the
/// experiment's execCommands.
///
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "mediator/Mediator.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

using namespace lgen;
using namespace lgen::json;

int main() {
  mediator::Mediator Med;

  // A "BeagleBone" whose executor compiles for the Cortex-A8 model and
  // reports the cycle measurement (the role of measure.h, §4.5).
  Med.registerDevice("beaglebone.lab", 1, [](const Value &Exp, unsigned) {
    std::string Blac = Exp["execCommands"].asArray()[0].asString();
    compiler::Compiler C(
        compiler::Options::builder(machine::UArch::CortexA8).full().build());
    auto Compiled = C.compile(Blac);
    if (!Compiled) // surfaces as an InstructionExecutionError response
      throw std::runtime_error(Compiled.error());
    auto CK = std::move(*Compiled);
    auto T = CK.time(machine::Microarch::get(machine::UArch::CortexA8));
    Object R;
    R["cycles"] = T.Cycles;
    R["flopsPerCycle"] = CK.Flops / T.Cycles;
    return Value(std::move(R));
  });

  // --- Synchronous job (Fig. 4.2) ---------------------------------------
  const char *SyncReq = R"({
    "apiVersion": "1.0",
    "async": "False",
    "experiments": [
      {"device": {"hostname": "beaglebone.lab"},
       "execCommands": ["Matrix A(4, 16); Vector x(16); Vector y(4); y = A*x;"],
       "repetitions": 15}
    ]})";
  std::printf("-- synchronous request --\n%s\n", SyncReq);
  std::string SyncResp = Med.handleNewJobRequest(SyncReq);
  std::printf("response: %s\n\n", SyncResp.c_str());

  // --- Asynchronous job with polling (Fig. 4.3) --------------------------
  const char *AsyncReq = R"({
    "apiVersion": "1.0",
    "async": "True",
    "experiments": [
      {"device": {"hostname": "beaglebone.lab"},
       "execCommands": ["Vector x(64); Vector y(64); Scalar a; y = a*x + y;"]},
      {"device": {"hostname": "beaglebone.lab"},
       "execCommands": ["Matrix A(8, 8); Matrix B(8, 8); Matrix C(8, 8); C = A*B;"]}
    ]})";
  std::printf("-- asynchronous request --\n");
  std::string Submitted = Med.handleNewJobRequest(AsyncReq);
  std::printf("submitted: %s\n", Submitted.c_str());
  Value SubmittedV;
  std::string Err;
  json::parse(Submitted, SubmittedV, Err);
  std::string JobId = SubmittedV.getString("jobID");

  Object Poll;
  Poll["apiVersion"] = "1.0";
  Poll["jobID"] = JobId;
  std::string PollReq = Value(Poll).serialize();
  for (int Attempt = 0;; ++Attempt) {
    std::string PollResp = Med.handleJobResultsRequest(PollReq);
    Value V;
    json::parse(PollResp, V, Err);
    std::printf("poll %d: jobState=%s\n", Attempt,
                V.getString("jobState").c_str());
    if (V.getString("jobState") == "FINISHED") {
      std::printf("results: %s\n", V["data"].serialize().c_str());
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}

//===- quickstart.cpp - LGen in five minutes -------------------*- C++ -*-===//
//
// Part of the LGen reproduction examples.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic workflow: describe a fixed-size BLAC in the LL input language,
/// compile it for a target processor, look at the generated C kernel, run
/// it on real data (through the functional interpreter that stands in for
/// the target hardware), and read the estimated performance.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "codegen/CUnparser.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "ll/Reference.h"
#include "machine/Executor.h"

#include <cstdio>

using namespace lgen;

int main() {
  // 1. A BLAC: y = alpha*A*x + beta*y with every size fixed at compile
  //    time (the gemv shape of thesis eq. 2.1).
  const std::string Source =
      "Matrix A(8, 12); Vector x(12); Vector y(8);"
      " Scalar alpha; Scalar beta;"
      " y = alpha*(A*x) + beta*y;";
  ll::Program P = ll::parseProgramOrDie(Source);
  std::printf("BLAC: %s\n", P.str().c_str());
  std::printf("flops per invocation: %.0f\n\n", ll::flopCount(P));

  // 2. Compile with the full optimization set for Intel Atom (SSSE3):
  //    alignment detection, the MVH/RR matrix-vector approach, and a
  //    10-sample random search over tilings.
  compiler::Options Opts = compiler::Options::builder(machine::UArch::Atom)
                               .full()
                               .searchSamples(10)
                               .build();
  compiler::Compiler C(Opts);
  compiler::CompiledKernel CK = C.compile(P);

  // 3. The generated C kernel (what LGen would hand to icc on a real
  //    Atom). Alignment versioning gives one sub-kernel per argument
  //    alignment combination plus a runtime dispatch.
  std::printf("generated %u code version(s); C source (first 40 lines):\n",
              CK.HasVersions ? CK.Versioned.numVersions() : 1);
  std::string Code = codegen::unparseCompiled(CK);
  int Lines = 0;
  for (size_t I = 0; I < Code.size() && Lines < 40; ++I) {
    std::putchar(Code[I]);
    if (Code[I] == '\n')
      ++Lines;
  }
  std::printf("  ... (%zu characters total)\n\n", Code.size());

  // 4. Run it: one buffer per operand, in declaration order.
  machine::Buffer A(8 * 12), X(12), Y(8), Alpha(1), Beta(1);
  Rng R(42);
  for (auto *B : {&A, &X, &Y})
    for (float &V : B->Data)
      V = static_cast<float>(R.nextDouble());
  Alpha[0] = 2.0f;
  Beta[0] = -1.0f;
  std::vector<float> YBefore = Y.Data;
  CK.execute({&A, &X, &Y, &Alpha, &Beta});
  std::printf("y[0..3] = %.4f %.4f %.4f %.4f\n", Y[0], Y[1], Y[2], Y[3]);

  // Cross-check against the naive reference evaluator.
  ll::Bindings In;
  In["A"] = ll::MatrixValue(8, 12);
  In["A"].Data = A.Data;
  In["x"] = ll::MatrixValue(12, 1);
  In["x"].Data = X.Data;
  In["y"] = ll::MatrixValue(8, 1);
  In["y"].Data = YBefore;
  In["alpha"] = ll::MatrixValue(1, 1);
  In["alpha"].Data = Alpha.Data;
  In["beta"] = ll::MatrixValue(1, 1);
  In["beta"].Data = Beta.Data;
  ll::MatrixValue Expected = ll::evaluate(P, In);
  ll::MatrixValue Actual(8, 1);
  Actual.Data = Y.Data;
  std::printf("max |kernel - reference| = %g\n\n",
              ll::maxAbsDiff(Expected, Actual));

  // 5. Estimated performance on the Atom model vs the peak of Table 2.2.
  machine::Microarch M = machine::Microarch::get(machine::UArch::Atom);
  machine::TimingResult T = CK.time(M);
  std::printf("estimated: %.0f cycles, %.2f flops/cycle (peak %.0f)\n",
              T.Cycles, CK.Flops / T.Cycles, M.PeakFlopsPerCycle);
  return 0;
}

//===- autotune_explore.cpp - Inside the autotuning loop -------*- C++ -*-===//
//
// Part of the LGen reproduction examples.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A look inside LGen's feedback loop (Fig. 2.1): for one BLAC, enumerate
/// a handful of explicit tiling plans, generate the kernel for each, and
/// print size and estimated cycles — then let the random search (§5.1.5)
/// pick with increasing sample sizes.
///
//===----------------------------------------------------------------------===//

#include "cir/Passes.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"

#include <cstdio>

using namespace lgen;

int main() {
  const machine::UArch Target = machine::UArch::ARM1176;
  machine::Microarch M = machine::Microarch::get(Target);
  auto P = ll::parseProgramOrDie(
      "Matrix A(16, 16); Matrix B(16, 16); Matrix C(16, 16); C = A*B;");

  compiler::Compiler C(compiler::Options::builder(Target).build());

  std::printf("explicit plans for 16x16x16 C = A*B on %s:\n",
              machine::uarchName(Target));
  std::printf("%-28s %-8s %-10s %s\n", "plan", "insts", "cycles", "f/c");
  for (int64_t UI : {1, 2, 4})
    for (int64_t UK : {1, 2, 4}) {
      tiling::TilingPlan Plan;
      // Scalar MMM lowering discovers five loops: the (i, j) zero-init
      // sweep, then the (k, i, j) accumulation nest.
      Plan.UnrollFactors = {UI, UI, UK, UI, UI};
      Plan.FullUnrollTrip = 2;
      cir::Kernel K = C.generateCore(P, Plan);
      C.finalizeKernel(K);
      auto T = machine::simulate(K, M);
      auto St = cir::computeStats(K);
      std::printf("unroll i=%lld j=%lld k=%lld%*s %-8u %-10.0f %.3f\n",
                  (long long)UI, (long long)UI, (long long)UK, 8, "",
                  St.NumInsts, T.Cycles, 2.0 * 16 * 16 * 16 / T.Cycles);
    }

  std::printf("\nrandom search (seeded, deterministic):\n");
  for (unsigned Samples : {0u, 2u, 10u, 40u}) {
    compiler::Compiler CS(
        compiler::Options::builder(Target).searchSamples(Samples).build());
    auto CK = CS.compile(P);
    auto T = CK.time(M);
    std::printf("  samples=%-3u -> %.0f cycles, %.3f f/c\n", Samples,
                T.Cycles, CK.Flops / T.Cycles);
  }
  return 0;
}

//===- kalman_update.cpp - Control-domain scenario -------------*- C++ -*-===//
//
// Part of the LGen reproduction examples.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control/estimation use case from the thesis introduction: embedded
/// controllers run small, fixed-size linear algebra at every tick. Here a
/// steady-state Kalman-filter measurement update for a 6-state, 3-sensor
/// system runs on a Cortex-A8 model:
///
///   innov = z + (-1)·H·x        (3×1)
///   x'    = x + K·innov         (6×1)
///
/// expressed as two BLACs compiled once and executed every tick. The
/// example compares the LGen kernels against the Eigen-like and naive
/// baselines the same firmware could have used.
///
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "machine/Executor.h"

#include <cmath>
#include <cstdio>

using namespace lgen;

int main() {
  const machine::UArch Target = machine::UArch::CortexA8;
  machine::Microarch M = machine::Microarch::get(Target);

  // innov = 1*z + minusone*(H*x): gemv-shaped, H is 3x6.
  const std::string InnovSrc =
      "Matrix H(3, 6); Vector x(6); Vector z(3);"
      " Scalar one; Scalar minusone;"
      " z = minusone*(H*x) + one*z;";
  // xnew = 1*(K*innov) + 1*x: K is 6x3.
  const std::string UpdateSrc =
      "Matrix K(6, 3); Vector innov(3); Vector x(6); Scalar one;"
      " x = one*(K*innov) + one*x;";

  compiler::Options Opts =
      compiler::Options::builder(Target).full().searchSamples(10).build();
  compiler::Compiler C(Opts);
  compiler::CompiledKernel Innov = C.compile(InnovSrc).valueOrDie();
  compiler::CompiledKernel Update = C.compile(UpdateSrc).valueOrDie();

  // A tracking loop: constant-velocity model, noisy position measurements.
  machine::Buffer H(3 * 6, 0.0f), Xs(6, 0.0f), Z(3, 0.0f), K(6 * 3, 0.0f);
  machine::Buffer One(1), MinusOne(1);
  One[0] = 1.0f;
  MinusOne[0] = -1.0f;
  // H picks the position components.
  for (int I = 0; I != 3; ++I)
    H[I * 6 + I] = 1.0f;
  // A plausible steady-state gain.
  for (int I = 0; I != 3; ++I) {
    K[I * 3 + I] = 0.6f;       // Position rows.
    K[(I + 3) * 3 + I] = 0.3f; // Velocity rows.
  }

  Rng Noise(2026);
  std::printf("tick   true-x   est-x    est-vx\n");
  double TrueX = 0.0, TrueV = 0.7;
  for (int Tick = 0; Tick != 8; ++Tick) {
    TrueX += TrueV;
    // Predict (x += v, inline for brevity).
    for (int I = 0; I != 3; ++I)
      Xs[I] += Xs[I + 3];
    // Measure with noise.
    Z[0] = static_cast<float>(TrueX + 0.1 * (Noise.nextDouble() - 0.5));
    Z[1] = Z[2] = 0.0f;
    // innov = z - H*x (kernel writes into Z).
    Innov.execute({&H, &Xs, &Z, &One, &MinusOne});
    // x += K*innov.
    Update.execute({&K, &Z, &Xs, &One});
    std::printf("%4d %8.3f %8.3f %8.3f\n", Tick, TrueX, Xs[0], Xs[3]);
  }

  // Per-tick cost on the Cortex-A8 model, against the alternatives.
  double LGenCycles = Innov.time(M).Cycles + Update.time(M).Cycles;
  std::printf("\nper-tick update cost (Cortex-A8 model):\n");
  std::printf("  %-28s %8.1f cycles\n", "LGen-Full", LGenCycles);
  for (auto &G : baselines::competitorsFor(Target)) {
    double Cycles = G->compile(ll::parseProgramOrDie(InnovSrc)).time(M).Cycles +
                    G->compile(ll::parseProgramOrDie(UpdateSrc)).time(M).Cycles;
    std::printf("  %-28s %8.1f cycles (%.2fx LGen)\n", G->name().c_str(),
                Cycles, Cycles / LGenCycles);
  }
  return 0;
}

# Empty dependencies file for mediator_farm.
# This may be replaced when dependencies are built.

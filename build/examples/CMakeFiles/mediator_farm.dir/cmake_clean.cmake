file(REMOVE_RECURSE
  "CMakeFiles/mediator_farm.dir/mediator_farm.cpp.o"
  "CMakeFiles/mediator_farm.dir/mediator_farm.cpp.o.d"
  "mediator_farm"
  "mediator_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

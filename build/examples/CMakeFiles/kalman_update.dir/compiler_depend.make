# Empty compiler generated dependencies file for kalman_update.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kalman_update.dir/kalman_update.cpp.o"
  "CMakeFiles/kalman_update.dir/kalman_update.cpp.o.d"
  "kalman_update"
  "kalman_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kalman_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

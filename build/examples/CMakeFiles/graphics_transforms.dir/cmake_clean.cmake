file(REMOVE_RECURSE
  "CMakeFiles/graphics_transforms.dir/graphics_transforms.cpp.o"
  "CMakeFiles/graphics_transforms.dir/graphics_transforms.cpp.o.d"
  "graphics_transforms"
  "graphics_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphics_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for graphics_transforms.
# This may be replaced when dependencies are built.

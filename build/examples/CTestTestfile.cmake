# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kalman_update "/root/repo/build/examples/kalman_update")
set_tests_properties(example_kalman_update PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graphics_transforms "/root/repo/build/examples/graphics_transforms")
set_tests_properties(example_graphics_transforms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mediator_farm "/root/repo/build/examples/mediator_farm")
set_tests_properties(example_mediator_farm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_explore "/root/repo/build/examples/autotune_explore")
set_tests_properties(example_autotune_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")

# Empty dependencies file for lgen_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AbsIntTest.cpp" "tests/CMakeFiles/lgen_tests.dir/AbsIntTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/AbsIntTest.cpp.o.d"
  "/root/repo/tests/BaselineTest.cpp" "tests/CMakeFiles/lgen_tests.dir/BaselineTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/BaselineTest.cpp.o.d"
  "/root/repo/tests/CIRTest.cpp" "tests/CMakeFiles/lgen_tests.dir/CIRTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/CIRTest.cpp.o.d"
  "/root/repo/tests/CodegenTest.cpp" "tests/CMakeFiles/lgen_tests.dir/CodegenTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/CodegenTest.cpp.o.d"
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/lgen_tests.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/EndToEndTest.cpp.o.d"
  "/root/repo/tests/ExtensionsTest.cpp" "tests/CMakeFiles/lgen_tests.dir/ExtensionsTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/ExtensionsTest.cpp.o.d"
  "/root/repo/tests/FuzzTest.cpp" "tests/CMakeFiles/lgen_tests.dir/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/FuzzTest.cpp.o.d"
  "/root/repo/tests/HarnessTest.cpp" "tests/CMakeFiles/lgen_tests.dir/HarnessTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/HarnessTest.cpp.o.d"
  "/root/repo/tests/LLTest.cpp" "tests/CMakeFiles/lgen_tests.dir/LLTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/LLTest.cpp.o.d"
  "/root/repo/tests/MachineTest.cpp" "tests/CMakeFiles/lgen_tests.dir/MachineTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/MachineTest.cpp.o.d"
  "/root/repo/tests/MediatorTest.cpp" "tests/CMakeFiles/lgen_tests.dir/MediatorTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/MediatorTest.cpp.o.d"
  "/root/repo/tests/NuBLACTest.cpp" "tests/CMakeFiles/lgen_tests.dir/NuBLACTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/NuBLACTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/lgen_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/SllTilingTest.cpp" "tests/CMakeFiles/lgen_tests.dir/SllTilingTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/SllTilingTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/lgen_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/lgen_tests.dir/SupportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lgen.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/lgen_bench_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

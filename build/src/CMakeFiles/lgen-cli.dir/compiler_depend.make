# Empty compiler generated dependencies file for lgen-cli.
# This may be replaced when dependencies are built.

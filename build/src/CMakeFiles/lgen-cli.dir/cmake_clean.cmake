file(REMOVE_RECURSE
  "CMakeFiles/lgen-cli.dir/tools/lgen-cli.cpp.o"
  "CMakeFiles/lgen-cli.dir/tools/lgen-cli.cpp.o.d"
  "lgen-cli"
  "lgen-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgen-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

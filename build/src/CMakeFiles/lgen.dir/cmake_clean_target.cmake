file(REMOVE_RECURSE
  "liblgen.a"
)

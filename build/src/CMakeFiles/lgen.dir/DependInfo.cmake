
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/absint/AlignmentDetection.cpp" "src/CMakeFiles/lgen.dir/absint/AlignmentDetection.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/absint/AlignmentDetection.cpp.o.d"
  "/root/repo/src/absint/Congruence.cpp" "src/CMakeFiles/lgen.dir/absint/Congruence.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/absint/Congruence.cpp.o.d"
  "/root/repo/src/absint/Engine.cpp" "src/CMakeFiles/lgen.dir/absint/Engine.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/absint/Engine.cpp.o.d"
  "/root/repo/src/absint/Interval.cpp" "src/CMakeFiles/lgen.dir/absint/Interval.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/absint/Interval.cpp.o.d"
  "/root/repo/src/absint/ReducedProduct.cpp" "src/CMakeFiles/lgen.dir/absint/ReducedProduct.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/absint/ReducedProduct.cpp.o.d"
  "/root/repo/src/baselines/Baselines.cpp" "src/CMakeFiles/lgen.dir/baselines/Baselines.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/baselines/Baselines.cpp.o.d"
  "/root/repo/src/baselines/BlasLike.cpp" "src/CMakeFiles/lgen.dir/baselines/BlasLike.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/baselines/BlasLike.cpp.o.d"
  "/root/repo/src/baselines/EigenLike.cpp" "src/CMakeFiles/lgen.dir/baselines/EigenLike.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/baselines/EigenLike.cpp.o.d"
  "/root/repo/src/baselines/NaiveScalar.cpp" "src/CMakeFiles/lgen.dir/baselines/NaiveScalar.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/baselines/NaiveScalar.cpp.o.d"
  "/root/repo/src/cir/Builder.cpp" "src/CMakeFiles/lgen.dir/cir/Builder.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/cir/Builder.cpp.o.d"
  "/root/repo/src/cir/CIR.cpp" "src/CMakeFiles/lgen.dir/cir/CIR.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/cir/CIR.cpp.o.d"
  "/root/repo/src/cir/Passes.cpp" "src/CMakeFiles/lgen.dir/cir/Passes.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/cir/Passes.cpp.o.d"
  "/root/repo/src/cir/ScalarReplacement.cpp" "src/CMakeFiles/lgen.dir/cir/ScalarReplacement.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/cir/ScalarReplacement.cpp.o.d"
  "/root/repo/src/codegen/CUnparser.cpp" "src/CMakeFiles/lgen.dir/codegen/CUnparser.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/codegen/CUnparser.cpp.o.d"
  "/root/repo/src/compiler/Autotuner.cpp" "src/CMakeFiles/lgen.dir/compiler/Autotuner.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/compiler/Autotuner.cpp.o.d"
  "/root/repo/src/compiler/Compiler.cpp" "src/CMakeFiles/lgen.dir/compiler/Compiler.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/compiler/Compiler.cpp.o.d"
  "/root/repo/src/isa/ISA.cpp" "src/CMakeFiles/lgen.dir/isa/ISA.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/ISA.cpp.o.d"
  "/root/repo/src/isa/LoaderStorer.cpp" "src/CMakeFiles/lgen.dir/isa/LoaderStorer.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/LoaderStorer.cpp.o.d"
  "/root/repo/src/isa/MemMapLowering.cpp" "src/CMakeFiles/lgen.dir/isa/MemMapLowering.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/MemMapLowering.cpp.o.d"
  "/root/repo/src/isa/NuBLACs.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACs.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACs.cpp.o.d"
  "/root/repo/src/isa/NuBLACsAVX.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACsAVX.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACsAVX.cpp.o.d"
  "/root/repo/src/isa/NuBLACsNEON.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACsNEON.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACsNEON.cpp.o.d"
  "/root/repo/src/isa/NuBLACsSSE41.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACsSSE41.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACsSSE41.cpp.o.d"
  "/root/repo/src/isa/NuBLACsSSSE3.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACsSSSE3.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACsSSSE3.cpp.o.d"
  "/root/repo/src/isa/NuBLACsScalar.cpp" "src/CMakeFiles/lgen.dir/isa/NuBLACsScalar.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/isa/NuBLACsScalar.cpp.o.d"
  "/root/repo/src/ll/AST.cpp" "src/CMakeFiles/lgen.dir/ll/AST.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/ll/AST.cpp.o.d"
  "/root/repo/src/ll/Parser.cpp" "src/CMakeFiles/lgen.dir/ll/Parser.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/ll/Parser.cpp.o.d"
  "/root/repo/src/ll/Reference.cpp" "src/CMakeFiles/lgen.dir/ll/Reference.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/ll/Reference.cpp.o.d"
  "/root/repo/src/machine/Executor.cpp" "src/CMakeFiles/lgen.dir/machine/Executor.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/machine/Executor.cpp.o.d"
  "/root/repo/src/machine/Microarch.cpp" "src/CMakeFiles/lgen.dir/machine/Microarch.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/machine/Microarch.cpp.o.d"
  "/root/repo/src/machine/Scheduler.cpp" "src/CMakeFiles/lgen.dir/machine/Scheduler.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/machine/Scheduler.cpp.o.d"
  "/root/repo/src/machine/Timing.cpp" "src/CMakeFiles/lgen.dir/machine/Timing.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/machine/Timing.cpp.o.d"
  "/root/repo/src/mediator/Json.cpp" "src/CMakeFiles/lgen.dir/mediator/Json.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/mediator/Json.cpp.o.d"
  "/root/repo/src/mediator/Measure.cpp" "src/CMakeFiles/lgen.dir/mediator/Measure.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/mediator/Measure.cpp.o.d"
  "/root/repo/src/mediator/Mediator.cpp" "src/CMakeFiles/lgen.dir/mediator/Mediator.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/mediator/Mediator.cpp.o.d"
  "/root/repo/src/sll/Lowering.cpp" "src/CMakeFiles/lgen.dir/sll/Lowering.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/sll/Lowering.cpp.o.d"
  "/root/repo/src/sll/SigmaLL.cpp" "src/CMakeFiles/lgen.dir/sll/SigmaLL.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/sll/SigmaLL.cpp.o.d"
  "/root/repo/src/sll/Translate.cpp" "src/CMakeFiles/lgen.dir/sll/Translate.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/sll/Translate.cpp.o.d"
  "/root/repo/src/support/Support.cpp" "src/CMakeFiles/lgen.dir/support/Support.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/support/Support.cpp.o.d"
  "/root/repo/src/tiling/Tiling.cpp" "src/CMakeFiles/lgen.dir/tiling/Tiling.cpp.o" "gcc" "src/CMakeFiles/lgen.dir/tiling/Tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig5_18_a9_leftovers.dir/fig5_18_a9_leftovers.cpp.o"
  "CMakeFiles/fig5_18_a9_leftovers.dir/fig5_18_a9_leftovers.cpp.o.d"
  "fig5_18_a9_leftovers"
  "fig5_18_a9_leftovers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_18_a9_leftovers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

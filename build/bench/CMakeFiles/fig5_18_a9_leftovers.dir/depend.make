# Empty dependencies file for fig5_18_a9_leftovers.
# This may be replaced when dependencies are built.

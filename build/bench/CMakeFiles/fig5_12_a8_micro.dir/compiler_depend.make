# Empty compiler generated dependencies file for fig5_12_a8_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_12_a8_micro.dir/fig5_12_a8_micro.cpp.o"
  "CMakeFiles/fig5_12_a8_micro.dir/fig5_12_a8_micro.cpp.o.d"
  "fig5_12_a8_micro"
  "fig5_12_a8_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_12_a8_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

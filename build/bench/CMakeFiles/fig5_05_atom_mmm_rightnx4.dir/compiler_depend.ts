# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_05_atom_mmm_rightnx4.

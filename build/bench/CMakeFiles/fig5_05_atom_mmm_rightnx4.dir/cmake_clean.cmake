file(REMOVE_RECURSE
  "CMakeFiles/fig5_05_atom_mmm_rightnx4.dir/fig5_05_atom_mmm_rightnx4.cpp.o"
  "CMakeFiles/fig5_05_atom_mmm_rightnx4.dir/fig5_05_atom_mmm_rightnx4.cpp.o.d"
  "fig5_05_atom_mmm_rightnx4"
  "fig5_05_atom_mmm_rightnx4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_05_atom_mmm_rightnx4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

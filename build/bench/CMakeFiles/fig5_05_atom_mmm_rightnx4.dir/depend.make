# Empty dependencies file for fig5_05_atom_mmm_rightnx4.
# This may be replaced when dependencies are built.

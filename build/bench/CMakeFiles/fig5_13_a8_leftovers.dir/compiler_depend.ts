# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_13_a8_leftovers.

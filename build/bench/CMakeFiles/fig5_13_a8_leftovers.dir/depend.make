# Empty dependencies file for fig5_13_a8_leftovers.
# This may be replaced when dependencies are built.

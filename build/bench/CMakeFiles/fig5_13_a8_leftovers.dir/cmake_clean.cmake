file(REMOVE_RECURSE
  "CMakeFiles/fig5_13_a8_leftovers.dir/fig5_13_a8_leftovers.cpp.o"
  "CMakeFiles/fig5_13_a8_leftovers.dir/fig5_13_a8_leftovers.cpp.o.d"
  "fig5_13_a8_leftovers"
  "fig5_13_a8_leftovers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_13_a8_leftovers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

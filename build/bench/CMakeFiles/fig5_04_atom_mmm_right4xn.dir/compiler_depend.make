# Empty compiler generated dependencies file for fig5_04_atom_mmm_right4xn.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_04_atom_mmm_right4xn.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_04_atom_mmm_right4xn.dir/fig5_04_atom_mmm_right4xn.cpp.o"
  "CMakeFiles/fig5_04_atom_mmm_right4xn.dir/fig5_04_atom_mmm_right4xn.cpp.o.d"
  "fig5_04_atom_mmm_right4xn"
  "fig5_04_atom_mmm_right4xn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_04_atom_mmm_right4xn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

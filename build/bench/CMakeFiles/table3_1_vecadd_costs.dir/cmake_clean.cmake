file(REMOVE_RECURSE
  "CMakeFiles/table3_1_vecadd_costs.dir/table3_1_vecadd_costs.cpp.o"
  "CMakeFiles/table3_1_vecadd_costs.dir/table3_1_vecadd_costs.cpp.o.d"
  "table3_1_vecadd_costs"
  "table3_1_vecadd_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_1_vecadd_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

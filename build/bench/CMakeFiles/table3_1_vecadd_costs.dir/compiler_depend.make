# Empty compiler generated dependencies file for table3_1_vecadd_costs.
# This may be replaced when dependencies are built.

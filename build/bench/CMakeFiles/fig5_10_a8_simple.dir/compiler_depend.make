# Empty compiler generated dependencies file for fig5_10_a8_simple.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_10_a8_simple.dir/fig5_10_a8_simple.cpp.o"
  "CMakeFiles/fig5_10_a8_simple.dir/fig5_10_a8_simple.cpp.o.d"
  "fig5_10_a8_simple"
  "fig5_10_a8_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_10_a8_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

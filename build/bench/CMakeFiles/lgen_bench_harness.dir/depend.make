# Empty dependencies file for lgen_bench_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lgen_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/lgen_bench_harness.dir/Harness.cpp.o.d"
  "liblgen_bench_harness.a"
  "liblgen_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgen_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

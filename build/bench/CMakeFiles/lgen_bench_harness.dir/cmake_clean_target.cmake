file(REMOVE_RECURSE
  "liblgen_bench_harness.a"
)

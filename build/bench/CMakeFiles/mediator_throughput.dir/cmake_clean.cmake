file(REMOVE_RECURSE
  "CMakeFiles/mediator_throughput.dir/mediator_throughput.cpp.o"
  "CMakeFiles/mediator_throughput.dir/mediator_throughput.cpp.o.d"
  "mediator_throughput"
  "mediator_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mediator_throughput.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig5_19_arm1176_various.
# This may be replaced when dependencies are built.

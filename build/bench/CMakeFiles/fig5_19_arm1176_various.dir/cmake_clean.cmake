file(REMOVE_RECURSE
  "CMakeFiles/fig5_19_arm1176_various.dir/fig5_19_arm1176_various.cpp.o"
  "CMakeFiles/fig5_19_arm1176_various.dir/fig5_19_arm1176_various.cpp.o.d"
  "fig5_19_arm1176_various"
  "fig5_19_arm1176_various.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_19_arm1176_various.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

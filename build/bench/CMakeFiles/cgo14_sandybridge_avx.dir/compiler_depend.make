# Empty compiler generated dependencies file for cgo14_sandybridge_avx.
# This may be replaced when dependencies are built.

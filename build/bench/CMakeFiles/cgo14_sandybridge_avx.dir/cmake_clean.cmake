file(REMOVE_RECURSE
  "CMakeFiles/cgo14_sandybridge_avx.dir/cgo14_sandybridge_avx.cpp.o"
  "CMakeFiles/cgo14_sandybridge_avx.dir/cgo14_sandybridge_avx.cpp.o.d"
  "cgo14_sandybridge_avx"
  "cgo14_sandybridge_avx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgo14_sandybridge_avx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cgo14_sandybridge_avx.

# Empty compiler generated dependencies file for fig5_01_atom_mvm_4xn.
# This may be replaced when dependencies are built.

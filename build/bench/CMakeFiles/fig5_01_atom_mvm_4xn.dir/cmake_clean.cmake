file(REMOVE_RECURSE
  "CMakeFiles/fig5_01_atom_mvm_4xn.dir/fig5_01_atom_mvm_4xn.cpp.o"
  "CMakeFiles/fig5_01_atom_mvm_4xn.dir/fig5_01_atom_mvm_4xn.cpp.o.d"
  "fig5_01_atom_mvm_4xn"
  "fig5_01_atom_mvm_4xn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_01_atom_mvm_4xn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_17_a9_micro.dir/fig5_17_a9_micro.cpp.o"
  "CMakeFiles/fig5_17_a9_micro.dir/fig5_17_a9_micro.cpp.o.d"
  "fig5_17_a9_micro"
  "fig5_17_a9_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_17_a9_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

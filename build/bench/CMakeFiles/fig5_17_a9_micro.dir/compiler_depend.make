# Empty compiler generated dependencies file for fig5_17_a9_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/appendixB2_a8_full.dir/appendixB2_a8_full.cpp.o"
  "CMakeFiles/appendixB2_a8_full.dir/appendixB2_a8_full.cpp.o.d"
  "appendixB2_a8_full"
  "appendixB2_a8_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixB2_a8_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for appendixB2_a8_full.
# This may be replaced when dependencies are built.

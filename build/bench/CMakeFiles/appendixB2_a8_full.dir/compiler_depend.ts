# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for appendixB2_a8_full.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_08_atom_axpy.dir/fig5_08_atom_axpy.cpp.o"
  "CMakeFiles/fig5_08_atom_axpy.dir/fig5_08_atom_axpy.cpp.o.d"
  "fig5_08_atom_axpy"
  "fig5_08_atom_axpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_08_atom_axpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

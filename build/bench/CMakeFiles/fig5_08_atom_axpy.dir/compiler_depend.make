# Empty compiler generated dependencies file for fig5_08_atom_axpy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_07_atom_varying_shapes.dir/fig5_07_atom_varying_shapes.cpp.o"
  "CMakeFiles/fig5_07_atom_varying_shapes.dir/fig5_07_atom_varying_shapes.cpp.o.d"
  "fig5_07_atom_varying_shapes"
  "fig5_07_atom_varying_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_07_atom_varying_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

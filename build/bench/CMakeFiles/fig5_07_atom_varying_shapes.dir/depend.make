# Empty dependencies file for fig5_07_atom_varying_shapes.
# This may be replaced when dependencies are built.

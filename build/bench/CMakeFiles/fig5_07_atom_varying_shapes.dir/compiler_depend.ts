# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_07_atom_varying_shapes.

# Empty dependencies file for fig5_03_atom_micro_mvm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_03_atom_micro_mvm.dir/fig5_03_atom_micro_mvm.cpp.o"
  "CMakeFiles/fig5_03_atom_micro_mvm.dir/fig5_03_atom_micro_mvm.cpp.o.d"
  "fig5_03_atom_micro_mvm"
  "fig5_03_atom_micro_mvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_03_atom_micro_mvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_11_a8_blas.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_11_a8_blas.dir/fig5_11_a8_blas.cpp.o"
  "CMakeFiles/fig5_11_a8_blas.dir/fig5_11_a8_blas.cpp.o.d"
  "fig5_11_a8_blas"
  "fig5_11_a8_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_11_a8_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

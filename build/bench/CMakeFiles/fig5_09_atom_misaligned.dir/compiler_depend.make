# Empty compiler generated dependencies file for fig5_09_atom_misaligned.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_09_atom_misaligned.dir/fig5_09_atom_misaligned.cpp.o"
  "CMakeFiles/fig5_09_atom_misaligned.dir/fig5_09_atom_misaligned.cpp.o.d"
  "fig5_09_atom_misaligned"
  "fig5_09_atom_misaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_09_atom_misaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

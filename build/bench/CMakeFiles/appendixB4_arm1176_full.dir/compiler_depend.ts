# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for appendixB4_arm1176_full.

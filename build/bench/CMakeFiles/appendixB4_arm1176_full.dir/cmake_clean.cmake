file(REMOVE_RECURSE
  "CMakeFiles/appendixB4_arm1176_full.dir/appendixB4_arm1176_full.cpp.o"
  "CMakeFiles/appendixB4_arm1176_full.dir/appendixB4_arm1176_full.cpp.o.d"
  "appendixB4_arm1176_full"
  "appendixB4_arm1176_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixB4_arm1176_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

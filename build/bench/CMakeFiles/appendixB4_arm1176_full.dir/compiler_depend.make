# Empty compiler generated dependencies file for appendixB4_arm1176_full.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig5_06_atom_micro_mmm.
# This may be replaced when dependencies are built.

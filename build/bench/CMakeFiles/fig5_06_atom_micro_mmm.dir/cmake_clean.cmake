file(REMOVE_RECURSE
  "CMakeFiles/fig5_06_atom_micro_mmm.dir/fig5_06_atom_micro_mmm.cpp.o"
  "CMakeFiles/fig5_06_atom_micro_mmm.dir/fig5_06_atom_micro_mmm.cpp.o.d"
  "fig5_06_atom_micro_mmm"
  "fig5_06_atom_micro_mmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_06_atom_micro_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_14_a9_simple.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_14_a9_simple.dir/fig5_14_a9_simple.cpp.o"
  "CMakeFiles/fig5_14_a9_simple.dir/fig5_14_a9_simple.cpp.o.d"
  "fig5_14_a9_simple"
  "fig5_14_a9_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_14_a9_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

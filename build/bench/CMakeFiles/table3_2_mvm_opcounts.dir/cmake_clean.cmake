file(REMOVE_RECURSE
  "CMakeFiles/table3_2_mvm_opcounts.dir/table3_2_mvm_opcounts.cpp.o"
  "CMakeFiles/table3_2_mvm_opcounts.dir/table3_2_mvm_opcounts.cpp.o.d"
  "table3_2_mvm_opcounts"
  "table3_2_mvm_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_2_mvm_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

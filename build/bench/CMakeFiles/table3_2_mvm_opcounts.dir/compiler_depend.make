# Empty compiler generated dependencies file for table3_2_mvm_opcounts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/appendixB3_a9_full.dir/appendixB3_a9_full.cpp.o"
  "CMakeFiles/appendixB3_a9_full.dir/appendixB3_a9_full.cpp.o.d"
  "appendixB3_a9_full"
  "appendixB3_a9_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixB3_a9_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for appendixB3_a9_full.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for appendixB3_a9_full.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_15_a9_blas.dir/fig5_15_a9_blas.cpp.o"
  "CMakeFiles/fig5_15_a9_blas.dir/fig5_15_a9_blas.cpp.o.d"
  "fig5_15_a9_blas"
  "fig5_15_a9_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_15_a9_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

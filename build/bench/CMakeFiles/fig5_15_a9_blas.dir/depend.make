# Empty dependencies file for fig5_15_a9_blas.
# This may be replaced when dependencies are built.

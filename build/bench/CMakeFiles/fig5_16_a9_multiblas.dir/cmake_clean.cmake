file(REMOVE_RECURSE
  "CMakeFiles/fig5_16_a9_multiblas.dir/fig5_16_a9_multiblas.cpp.o"
  "CMakeFiles/fig5_16_a9_multiblas.dir/fig5_16_a9_multiblas.cpp.o.d"
  "fig5_16_a9_multiblas"
  "fig5_16_a9_multiblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_16_a9_multiblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

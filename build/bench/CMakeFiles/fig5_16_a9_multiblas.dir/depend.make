# Empty dependencies file for fig5_16_a9_multiblas.
# This may be replaced when dependencies are built.

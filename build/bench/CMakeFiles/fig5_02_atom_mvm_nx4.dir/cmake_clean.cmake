file(REMOVE_RECURSE
  "CMakeFiles/fig5_02_atom_mvm_nx4.dir/fig5_02_atom_mvm_nx4.cpp.o"
  "CMakeFiles/fig5_02_atom_mvm_nx4.dir/fig5_02_atom_mvm_nx4.cpp.o.d"
  "fig5_02_atom_mvm_nx4"
  "fig5_02_atom_mvm_nx4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_02_atom_mvm_nx4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_02_atom_mvm_nx4.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sec3_4_specialized_2x2.
# This may be replaced when dependencies are built.

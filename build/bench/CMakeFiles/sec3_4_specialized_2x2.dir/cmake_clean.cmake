file(REMOVE_RECURSE
  "CMakeFiles/sec3_4_specialized_2x2.dir/sec3_4_specialized_2x2.cpp.o"
  "CMakeFiles/sec3_4_specialized_2x2.dir/sec3_4_specialized_2x2.cpp.o.d"
  "sec3_4_specialized_2x2"
  "sec3_4_specialized_2x2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_4_specialized_2x2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec3_4_specialized_2x2.

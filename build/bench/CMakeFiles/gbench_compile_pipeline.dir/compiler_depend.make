# Empty compiler generated dependencies file for gbench_compile_pipeline.
# This may be replaced when dependencies are built.

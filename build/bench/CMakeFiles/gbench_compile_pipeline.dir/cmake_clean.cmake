file(REMOVE_RECURSE
  "CMakeFiles/gbench_compile_pipeline.dir/gbench_compile_pipeline.cpp.o"
  "CMakeFiles/gbench_compile_pipeline.dir/gbench_compile_pipeline.cpp.o.d"
  "gbench_compile_pipeline"
  "gbench_compile_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_compile_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

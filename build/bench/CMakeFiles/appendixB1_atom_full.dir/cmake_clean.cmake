file(REMOVE_RECURSE
  "CMakeFiles/appendixB1_atom_full.dir/appendixB1_atom_full.cpp.o"
  "CMakeFiles/appendixB1_atom_full.dir/appendixB1_atom_full.cpp.o.d"
  "appendixB1_atom_full"
  "appendixB1_atom_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixB1_atom_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

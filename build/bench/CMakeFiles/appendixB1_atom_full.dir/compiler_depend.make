# Empty compiler generated dependencies file for appendixB1_atom_full.
# This may be replaced when dependencies are built.

//===- CUnparser.cpp - C-IR → C code unparser ------------------*- C++ -*-===//

#include "codegen/CUnparser.h"

#include <sstream>

using namespace lgen;
using namespace lgen::codegen;
using namespace lgen::cir;

namespace {

class Unparser {
public:
  Unparser(const Kernel &K, isa::ISAKind ISA) : K(K), ISA(ISA) {}

  void run(std::ostringstream &OS, int Indent) {
    std::vector<bool> Accessed(K.getNumArrays(), false);
    K.forEachInst([&](const Inst &I) {
      if (isMemoryOpcode(I.Op))
        Accessed[I.Address.Array] = true;
    });
    for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id) {
      const ArrayInfo &A = K.getArray(Id);
      if (A.isParam() || !Accessed[Id])
        continue;
      pad(OS, Indent);
      // 64, not the vector width: temporaries must satisfy aligned moves
      // for every ISA the kernel may be compiled for natively (AVX needs
      // 32; 64 also keeps each temp on its own cache line).
      OS << "float " << A.Name << "[" << A.NumElements
         << "] __attribute__((aligned(64))) = {0};\n";
    }
    emitBody(OS, K.getBody(), Indent);
  }

private:
  void pad(std::ostringstream &OS, int Indent) {
    for (int I = 0; I != Indent; ++I)
      OS << "  ";
  }

  std::string reg(RegId R) const { return "v" + std::to_string(R); }

  std::string vecType(unsigned Lanes) const {
    if (Lanes == 1)
      return "float";
    if (ISA == isa::ISAKind::NEON)
      return Lanes == 2 ? "float32x2_t" : "float32x4_t";
    return Lanes == 8 ? "__m256" : "__m128";
  }

  /// SSE/AVX intrinsic prefix for the register width.
  static std::string mmPrefix(unsigned Lanes) {
    return Lanes == 8 ? "_mm256_" : "_mm_";
  }

  std::string addr(const Addr &A) const {
    std::ostringstream OS;
    OS << K.getArray(A.Array).Name << " + " << A.Offset.getConstant();
    for (const auto &[Id, Coeff] : A.Offset.getTerms())
      OS << " + " << Coeff << "*i" << Id;
    return OS.str();
  }

  /// Defines `TYPE vN = expr;`.
  void def(std::ostringstream &OS, int Indent, const Inst &I,
           const std::string &Expr) {
    pad(OS, Indent);
    OS << vecType(K.lanesOf(I.Dest)) << " " << reg(I.Dest) << " = " << Expr
       << ";\n";
  }

  void emitInst(std::ostringstream &OS, const Inst &I, int Indent) {
    bool Neon = ISA == isa::ISAKind::NEON;
    unsigned L = I.Dest != NoReg ? K.lanesOf(I.Dest)
                                 : (I.A != NoReg ? K.lanesOf(I.A) : 1);
    bool Scalar = L == 1;
    std::string Q = Neon ? (L == 2 ? "_f32" : "q_f32") : "_ps";
    std::string MM = mmPrefix(L);
    auto Bin = [&](const char *SseOp, const char *NeonOp, const char *COp) {
      if (Scalar)
        return reg(I.A) + " " + COp + " " + reg(I.B);
      if (Neon)
        return std::string("v") + NeonOp + Q + "(" + reg(I.A) + ", " +
               reg(I.B) + ")";
      return MM + SseOp + "_ps(" + reg(I.A) + ", " + reg(I.B) + ")";
    };
    switch (I.Op) {
    case Opcode::FConst:
      def(OS, Indent, I,
          Scalar ? std::to_string(I.Imm) + "f"
                 : (Neon ? "vdup" + std::string(L == 2 ? "_n_f32(" : "q_n_f32(")
                       + std::to_string(I.Imm) + "f)"
                         : MM + "set1_ps(" + std::to_string(I.Imm) + "f)"));
      return;
    case Opcode::Mov:
      def(OS, Indent, I, reg(I.A));
      return;
    case Opcode::Add:
      def(OS, Indent, I, Bin("add", "add", "+"));
      return;
    case Opcode::Sub:
      def(OS, Indent, I, Bin("sub", "sub", "-"));
      return;
    case Opcode::Mul:
      def(OS, Indent, I, Bin("mul", "mul", "*"));
      return;
    case Opcode::Div:
      def(OS, Indent, I, Bin("div", "div", "/"));
      return;
    case Opcode::Neg:
      def(OS, Indent, I,
          Scalar ? "-" + reg(I.A)
                 : (Neon ? "vneg" + Q + "(" + reg(I.A) + ")"
                         : MM + "sub_ps(" + MM + "setzero_ps(), " +
                               reg(I.A) + ")"));
      return;
    case Opcode::FMA:
      if (Scalar)
        def(OS, Indent, I, reg(I.A) + " * " + reg(I.B) + " + " + reg(I.C));
      else if (Neon)
        def(OS, Indent, I, "vmla" + Q + "(" + reg(I.C) + ", " + reg(I.A) +
                               ", " + reg(I.B) + ")");
      else
        def(OS, Indent, I, MM + "add_ps(" + MM + "mul_ps(" + reg(I.A) +
                               ", " + reg(I.B) + "), " + reg(I.C) + ")");
      return;
    case Opcode::HAdd:
      def(OS, Indent, I,
          Neon ? "vpadd_f32(" + reg(I.A) + ", " + reg(I.B) + ")"
               : MM + "hadd_ps(" + reg(I.A) + ", " + reg(I.B) + ")");
      return;
    case Opcode::DotPS:
      def(OS, Indent, I,
          "_mm_dp_ps(" + reg(I.A) + ", " + reg(I.B) + ", 0xF1)");
      return;
    case Opcode::MulLane:
      def(OS, Indent, I, "LGEN_MUL_LANE" + std::to_string(L) + "(" +
                             reg(I.A) + ", " + reg(I.B) + ", " +
                             std::to_string(I.Lane) + ")");
      return;
    case Opcode::FMALane:
      def(OS, Indent, I, "LGEN_FMA_LANE" + std::to_string(L) + "(" +
                             reg(I.C) + ", " + reg(I.A) + ", " + reg(I.B) +
                             ", " + std::to_string(I.Lane) + ")");
      return;
    case Opcode::Broadcast:
      def(OS, Indent, I, "LGEN_BROADCAST" + std::to_string(L) + "(" +
                             reg(I.A) + ", " + std::to_string(I.Lane) + ")");
      return;
    case Opcode::Shuffle: {
      std::ostringstream E;
      E << "LGEN_SHUFFLE" << L << "(" << reg(I.A) << ", " << reg(I.B);
      for (unsigned J = 0; J != L; ++J)
        E << ", " << unsigned(I.Pattern[J]);
      E << ")";
      def(OS, Indent, I, E.str());
      return;
    }
    case Opcode::Insert:
      def(OS, Indent, I, "LGEN_INSERT" + std::to_string(L) + "(" + reg(I.A) +
                             ", " + reg(I.B) + ", " +
                             std::to_string(I.Lane) + ")");
      return;
    case Opcode::Extract:
      def(OS, Indent, I, "LGEN_EXTRACT" +
                             std::to_string(K.lanesOf(I.A)) + "(" + reg(I.A) +
                             ", " + std::to_string(I.Lane) + ")");
      return;
    case Opcode::GetLow:
      def(OS, Indent, I,
          Neon ? "vget_low_f32(" + reg(I.A) + ")"
               : (K.lanesOf(I.A) == 8
                      ? "_mm256_castps256_ps128(" + reg(I.A) + ")"
                      : "LGEN_GETLOW(" + reg(I.A) + ")"));
      return;
    case Opcode::GetHigh:
      def(OS, Indent, I,
          Neon ? "vget_high_f32(" + reg(I.A) + ")"
               : (K.lanesOf(I.A) == 8
                      ? "_mm256_extractf128_ps(" + reg(I.A) + ", 1)"
                      : "LGEN_GETHIGH(" + reg(I.A) + ")"));
      return;
    case Opcode::Combine:
      def(OS, Indent, I,
          Neon ? "vcombine_f32(" + reg(I.A) + ", " + reg(I.B) + ")"
               : (L == 8 ? "_mm256_set_m128(" + reg(I.B) + ", " + reg(I.A) +
                               ")"
                         : "LGEN_COMBINE(" + reg(I.A) + ", " + reg(I.B) +
                               ")"));
      return;
    case Opcode::Zero:
      def(OS, Indent, I,
          Scalar ? "0.0f"
                 : (Neon ? "vdup" + std::string(L == 2 ? "_n_f32(0)" : "q_n_f32(0)")
                         : MM + "setzero_ps()"));
      return;
    case Opcode::Load:
      if (Scalar)
        def(OS, Indent, I, "*(" + addr(I.Address) + ")");
      else if (Neon)
        def(OS, Indent, I, "vld1" + Q + "(" + addr(I.Address) + ")");
      else
        def(OS, Indent, I,
            MM + std::string(I.Aligned ? "load_ps(" : "loadu_ps(") +
                addr(I.Address) + ")");
      return;
    case Opcode::Store:
      pad(OS, Indent);
      if (Scalar)
        OS << "*(" << addr(I.Address) << ") = " << reg(I.A) << ";\n";
      else if (Neon)
        OS << "vst1" << Q << "(" << addr(I.Address) << ", " << reg(I.A)
           << ");\n";
      else
        OS << MM << (I.Aligned ? "store_ps(" : "storeu_ps(")
           << addr(I.Address) << ", " << reg(I.A) << ");\n";
      return;
    case Opcode::LoadBroadcast:
      def(OS, Indent, I,
          Neon ? std::string(L == 2 ? "vld1_dup_f32(" : "vld1q_dup_f32(") +
                     addr(I.Address) + ")"
               : (L == 8 ? "_mm256_broadcast_ss(" + addr(I.Address) + ")"
                         : "_mm_load1_ps(" + addr(I.Address) + ")"));
      return;
    case Opcode::LoadLane:
      def(OS, Indent, I, "LGEN_LOAD_LANE" + std::to_string(L) + "(" +
                             reg(I.A) + ", " + addr(I.Address) + ", " +
                             std::to_string(I.Lane) + ")");
      return;
    case Opcode::StoreLane:
      pad(OS, Indent);
      OS << "LGEN_STORE_LANE" << L << "(" << addr(I.Address) << ", "
         << reg(I.A) << ", " << I.Lane << ");\n";
      return;
    case Opcode::GLoad:
    case Opcode::GStore:
      // Generic accesses are lowered before unparsing (§3.1); reaching one
      // here is a pipeline ordering bug.
      LGEN_UNREACHABLE("generic memory access survived to unparsing");
    }
    LGEN_UNREACHABLE("unknown opcode");
  }

  void emitBody(std::ostringstream &OS, const std::vector<Node> &Body,
                int Indent) {
    for (const Node &N : Body) {
      if (N.isInst()) {
        emitInst(OS, N.inst(), Indent);
        continue;
      }
      const Loop &L = N.loop();
      pad(OS, Indent);
      OS << "for (long i" << L.Id << " = " << L.Start << "; i" << L.Id
         << " < " << L.End << "; i" << L.Id << " += " << L.Step << ") {\n";
      emitBody(OS, L.Body, Indent + 1);
      pad(OS, Indent);
      OS << "}\n";
    }
  }

  const Kernel &K;
  isa::ISAKind ISA;
};

std::string signature(const Kernel &K, const std::string &Name) {
  std::ostringstream OS;
  OS << "static __attribute__((noinline)) void " << Name << "(";
  bool First = true;
  for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id) {
    const ArrayInfo &A = K.getArray(Id);
    if (!A.isParam())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << (A.Kind == ArrayKind::Input ? "const float *" : "float *")
       << A.Name;
  }
  OS << ")";
  return OS.str();
}

const char *ssePreamble() {
  return R"(#include <immintrin.h>
#include <stdint.h>

/* Lane helpers over SSE registers. */
#define LGEN_SHUFFLE4(a, b, p0, p1, p2, p3)                                  \
  __builtin_shufflevector(a, b, p0, p1, p2, p3)
#define LGEN_BROADCAST4(a, lane) __builtin_shufflevector(a, a, lane, lane, lane, lane)
#define LGEN_EXTRACT4(a, lane) ((a)[lane])
#define LGEN_INSERT4(a, s, lane) ({ __m128 t_ = (a); t_[lane] = (s); t_; })
#define LGEN_LOAD_LANE4(a, p, lane) ({ __m128 t_ = (a); t_[lane] = *(p); t_; })
#define LGEN_STORE_LANE4(p, a, lane) (*(p) = (a)[lane])
)";
}

const char *avxPreamble() {
  return R"(#include <immintrin.h>
#include <stdint.h>

/* Lane helpers over SSE/AVX registers. */
#define LGEN_SHUFFLE4(a, b, p0, p1, p2, p3)                                  \
  __builtin_shufflevector(a, b, p0, p1, p2, p3)
#define LGEN_SHUFFLE8(a, b, p0, p1, p2, p3, p4, p5, p6, p7)                  \
  __builtin_shufflevector(a, b, p0, p1, p2, p3, p4, p5, p6, p7)
#define LGEN_BROADCAST4(a, lane) __builtin_shufflevector(a, a, lane, lane, lane, lane)
#define LGEN_BROADCAST8(a, lane)                                             \
  __builtin_shufflevector(a, a, lane, lane, lane, lane, lane, lane, lane, lane)
#define LGEN_EXTRACT4(a, lane) ((a)[lane])
#define LGEN_EXTRACT8(a, lane) ((a)[lane])
#define LGEN_INSERT4(a, s, lane) ({ __m128 t_ = (a); t_[lane] = (s); t_; })
#define LGEN_INSERT8(a, s, lane) ({ __m256 t_ = (a); t_[lane] = (s); t_; })
#define LGEN_LOAD_LANE4(a, p, lane) ({ __m128 t_ = (a); t_[lane] = *(p); t_; })
#define LGEN_LOAD_LANE8(a, p, lane) ({ __m256 t_ = (a); t_[lane] = *(p); t_; })
#define LGEN_STORE_LANE4(p, a, lane) (*(p) = (a)[lane])
#define LGEN_STORE_LANE8(p, a, lane) (*(p) = (a)[lane])
)";
}

const char *neonPreamble() {
  return R"(#include <arm_neon.h>
#include <stdint.h>

/* Lane helpers over NEON registers. */
#define LGEN_MUL_LANE4(a, b, lane) vmulq_lane_f32(a, LGEN_HALF(b, lane), (lane) & 1)
#define LGEN_MUL_LANE2(a, b, lane) vmul_lane_f32(a, LGEN_HALF2(b, lane), (lane) & 1)
#define LGEN_FMA_LANE4(c, a, b, lane) vmlaq_lane_f32(c, a, LGEN_HALF(b, lane), (lane) & 1)
#define LGEN_FMA_LANE2(c, a, b, lane) vmla_lane_f32(c, a, LGEN_HALF2(b, lane), (lane) & 1)
#define LGEN_HALF(b, lane) ((lane) < 2 ? vget_low_f32(b) : vget_high_f32(b))
#define LGEN_HALF2(b, lane) (b)
#define LGEN_SHUFFLE4(a, b, p0, p1, p2, p3)                                  \
  __builtin_shufflevector(a, b, p0, p1, p2, p3)
#define LGEN_SHUFFLE2(a, b, p0, p1) __builtin_shufflevector(a, b, p0, p1)
#define LGEN_BROADCAST4(a, lane) vdupq_n_f32(vgetq_lane_f32(a, lane))
#define LGEN_BROADCAST2(a, lane) vdup_n_f32(vget_lane_f32(a, lane))
#define LGEN_EXTRACT4(a, lane) vgetq_lane_f32(a, lane)
#define LGEN_EXTRACT2(a, lane) vget_lane_f32(a, lane)
#define LGEN_INSERT4(a, s, lane) vsetq_lane_f32(s, a, lane)
#define LGEN_INSERT2(a, s, lane) vset_lane_f32(s, a, lane)
#define LGEN_LOAD_LANE4(a, p, lane) vld1q_lane_f32(p, a, lane)
#define LGEN_LOAD_LANE2(a, p, lane) vld1_lane_f32(p, a, lane)
#define LGEN_STORE_LANE4(p, a, lane) vst1q_lane_f32(p, a, lane)
#define LGEN_STORE_LANE2(p, a, lane) vst1_lane_f32(p, a, lane)
)";
}

} // namespace

std::string codegen::unparseKernel(const Kernel &K, isa::ISAKind ISA) {
  std::ostringstream OS;
  OS << signature(K, K.getName()) << " {\n";
  Unparser U(K, ISA);
  U.run(OS, 1);
  OS << "}\n";
  return OS.str();
}

std::string codegen::unparseCompiled(const compiler::CompiledKernel &CK) {
  std::ostringstream OS;
  isa::ISAKind ISA =
      CK.Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar : CK.Opts.ISA;
  OS << "/*\n * " << CK.Blac.str() << "\n * generated by the LGen"
     << " reproduction for " << machine::uarchName(CK.Opts.Target)
     << " (" << isa::isaName(ISA) << ")\n */\n";
  if (ISA == isa::ISAKind::SSSE3 || ISA == isa::ISAKind::SSE41)
    OS << ssePreamble() << "\n";
  else if (ISA == isa::ISAKind::AVX)
    OS << avxPreamble() << "\n";
  else if (ISA == isa::ISAKind::NEON)
    OS << neonPreamble() << "\n";
  else
    OS << "#include <stdint.h>\n\n";

  if (!CK.HasVersions) {
    OS << unparseKernel(CK.Plain, ISA);
    return OS.str();
  }

  // Listing 3.3: one sub-kernel per alignment combination plus a fallback,
  // dispatched by runtime checks on the argument addresses.
  const absint::VersionedKernel &V = CK.Versioned;
  for (size_t I = 0; I != V.Versions.size(); ++I) {
    Kernel Renamed = V.Versions[I].clone();
    Renamed.setName(CK.Plain.getName().empty()
                        ? "kernel_v" + std::to_string(I)
                        : V.Versions[I].getName() + "_v" + std::to_string(I));
    OS << unparseKernel(Renamed, ISA) << "\n";
  }
  Kernel Fallback = V.Fallback.clone();
  Fallback.setName(Fallback.getName() + "_unaligned");
  OS << unparseKernel(Fallback, ISA) << "\n";

  OS << signature(V.Fallback, V.Fallback.getName()) << " {\n";
  if (V.VersionedArrays.empty()) {
    // No array participates in versioning (e.g. every parameter is a
    // scalar), so there is exactly one combination and select() always
    // picks version 0: call it unconditionally — an empty check chain
    // would unparse as `if ()`.
    OS << "  " << V.Versions[0].getName() << "_v0(";
    bool First = true;
    for (ArrayId Id = 0; Id != V.Fallback.getNumArrays(); ++Id) {
      if (!V.Fallback.getArray(Id).isParam())
        continue;
      if (!First)
        OS << ", ";
      First = false;
      OS << V.Fallback.getArray(Id).Name;
    }
    OS << ");\n}\n";
    return OS.str();
  }
  for (size_t I = 0; I != V.Versions.size(); ++I) {
    OS << (I == 0 ? "  if (" : "  else if (");
    for (size_t J = 0; J != V.VersionedArrays.size(); ++J) {
      if (J)
        OS << "\n      && ";
      const ArrayInfo &A = V.Fallback.getArray(V.VersionedArrays[J]);
      OS << "((uintptr_t)" << A.Name << ") % (" << V.Nu
         << " * sizeof(float)) == " << V.Combos[I][J] << " * sizeof(float)";
    }
    OS << ") {\n    " << V.Versions[I].getName() << "_v" << I << "(";
    bool First = true;
    for (ArrayId Id = 0; Id != V.Fallback.getNumArrays(); ++Id) {
      if (!V.Fallback.getArray(Id).isParam())
        continue;
      if (!First)
        OS << ", ";
      First = false;
      OS << V.Fallback.getArray(Id).Name;
    }
    OS << ");\n  }\n";
  }
  OS << "  else {\n    " << V.Fallback.getName() << "_unaligned(";
  bool First = true;
  for (ArrayId Id = 0; Id != V.Fallback.getNumArrays(); ++Id) {
    if (!V.Fallback.getArray(Id).isParam())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << V.Fallback.getArray(Id).Name;
  }
  OS << ");\n  }\n}\n";
  return OS.str();
}

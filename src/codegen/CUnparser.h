//===- CUnparser.h - C-IR → C code unparser --------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final stage of the LGen pipeline (Fig. 2.1): unparsing optimized
/// C-IR into a C kernel. Vector instructions map to SSE/NEON intrinsics
/// (lane-level accesses go through a small set of helper macros emitted in
/// the file preamble); alignment-versioned kernels unparse to the
/// if/else-if cascade of runtime alignment checks shown in Listing 3.3.
///
/// The generated source is what LGen would hand to icc/gcc/clang on a real
/// target; in this reproduction it is a reviewable artifact (examples print
/// it) while execution goes through the functional interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_CODEGEN_CUNPARSER_H
#define LGEN_CODEGEN_CUNPARSER_H

#include "compiler/Compiler.h"

#include <string>

namespace lgen {
namespace codegen {

/// Unparses a single (non-versioned) kernel to a C function definition.
std::string unparseKernel(const cir::Kernel &K, isa::ISAKind ISA);

/// Unparses a full compiled BLAC: preamble (includes + helper macros), the
/// kernel function — with the §3.2.4 alignment dispatch when versioned —
/// and a doc comment describing the computation.
std::string unparseCompiled(const compiler::CompiledKernel &CK);

} // namespace codegen
} // namespace lgen

#endif // LGEN_CODEGEN_CUNPARSER_H

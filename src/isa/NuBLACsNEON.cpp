//===- NuBLACsNEON.cpp - NEON ν-BLACs for Cortex-A8/A9 ---------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NEON ν-BLACs (ν = 4) used for Cortex-A8 and Cortex-A9. The codelets
/// exploit the NEON features the thesis highlights (§2.2.2): fused
/// multiply-accumulate, multiply-by-lane (avoiding explicit broadcasts in
/// matrix multiplication), and pairwise adds on doubleword registers for
/// reductions.
///
/// Two leftover strategies coexist, reproducing §3.4:
///  * the *traditional* path pads tiles to ν with zero-filled generic loads
///    and always emits the full quadword ν×ν computation (Listing 3.9's
///    shape once compiled);
///  * the *specialized* ν-BLACs handle sub-ν tiles directly, emit no zero
///    loads or dead products, and use the twice-as-fast doubleword
///    instructions whenever the tile fits (Listing 3.10).
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace {

constexpr unsigned NuNEON = 4;

class NEONNuBLACs : public NuBLACs {
public:
  NEONNuBLACs() : NuBLACs(isa::traits(ISAKind::NEON)) {}

  void emitAdd(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
               unsigned C, bool Specialized) override {
    if (C == 1 && R > 1) { // Column-vector addition ν-BLAC.
      unsigned Lanes = (Specialized && R <= 2) ? 2 : NuNEON;
      RegId VA = loadTileCol(B, A, 0, R, Lanes);
      RegId VB = loadTileCol(B, Rhs, 0, R, Lanes);
      storeTileCol(B, B.add(VA, VB), Out, 0, R);
      return;
    }
    unsigned Lanes = laneWidth(C, Specialized);
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, Lanes);
    std::vector<RegId> BRows = loadTileRows(B, Rhs, R, C, Lanes);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.add(ARows[I], BRows[I]), Out, I, C);
  }

  void emitScalarMul(Builder &B, TileRef Alpha, TileRef A, TileRef Out,
                     unsigned R, unsigned C, bool Specialized) override {
    // vmul_lane: multiply by a scalar kept in lane 0 of a doubleword
    // register — no broadcast needed (§2.2.2).
    RegId S = loadVec(B, Alpha, 1, 2);
    if (C == 1 && R > 1) { // Column-vector scaling ν-BLAC.
      unsigned Lanes = (Specialized && R <= 2) ? 2 : NuNEON;
      RegId VA = loadTileCol(B, A, 0, R, Lanes);
      storeTileCol(B, B.mulLane(VA, S, 0), Out, 0, R);
      return;
    }
    unsigned Lanes = laneWidth(C, Specialized);
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, Lanes);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.mulLane(ARows[I], S, 0), Out, I, C);
  }

  void emitMatMul(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
                  unsigned K, unsigned C, bool Acc, bool Specialized) override {
    if (Specialized && (R < NuNEON || K < NuNEON || C < NuNEON)) {
      emitMatMulSpecialized(B, A, Rhs, Out, R, K, C, Acc);
      return;
    }
    // Traditional quadword path (Listing 3.9's source shape): pad all
    // operands to ν and run the full ν×ν×ν computation with vmla_lane.
    std::vector<RegId> BRows(NuNEON);
    for (unsigned J = 0; J != NuNEON; ++J)
      BRows[J] = J < K ? loadTileRow(B, Rhs, J, C, NuNEON) : B.zero(NuNEON);
    for (unsigned I = 0; I != NuNEON; ++I) {
      RegId ARow =
          I < R ? loadTileRow(B, A, I, K, NuNEON) : B.zero(NuNEON);
      RegId AccReg = NoReg;
      if (Acc && I < R)
        AccReg = loadTileRow(B, Out, I, C, NuNEON);
      for (unsigned J = 0; J != NuNEON; ++J) {
        if (AccReg == NoReg)
          AccReg = B.mulLane(BRows[J], ARow, J);
        else
          AccReg = B.fmaLane(BRows[J], ARow, J, AccReg);
      }
      if (I < R)
        storeTileRow(B, AccReg, Out, I, C);
    }
  }

  void emitTranspose(Builder &B, TileRef A, TileRef Out, unsigned R,
                     unsigned C, bool Specialized) override {
    if (R == 1 || C == 1) { // Degenerate vector transpose: one register.
      unsigned Lanes = (Specialized && R <= 2 && C <= 2) ? 2 : NuNEON;
      if (R == 1) {
        RegId V = loadTileRow(B, A, 0, C, Lanes);
        storeTileCol(B, V, Out, 0, C);
      } else {
        RegId V = loadTileCol(B, A, 0, R, Lanes);
        storeTileRow(B, V, Out, 0, R);
      }
      return;
    }
    if (Specialized && R <= 2 && C <= 2) {
      // Doubleword transpose: two vtrn-style shuffles.
      std::vector<RegId> Rows = loadTileRows(B, A, R, C, 2);
      if (R == 1 || C == 1) {
        // Degenerate: a row becomes a column or vice versa.
        for (unsigned I = 0; I != R; ++I)
          storeTileCol(B, Rows[I], Out, I, C);
        return;
      }
      RegId C0 = B.shuffle(Rows[0], Rows[1], {0, 2}); // vtrn low lanes
      RegId C1 = B.shuffle(Rows[0], Rows[1], {1, 3}); // vtrn high lanes
      storeTileRow(B, C0, Out, 0, R);
      storeTileRow(B, C1, Out, 1, R);
      return;
    }
    std::vector<RegId> Rows(NuNEON);
    for (unsigned I = 0; I != NuNEON; ++I)
      Rows[I] = I < R ? loadTileRow(B, A, I, C, NuNEON) : B.zero(NuNEON);
    // vtrn + vswp sequence, expressed as two shuffle levels.
    RegId T0 = B.shuffle(Rows[0], Rows[1], {0, 4, 2, 6});
    RegId T1 = B.shuffle(Rows[0], Rows[1], {1, 5, 3, 7});
    RegId T2 = B.shuffle(Rows[2], Rows[3], {0, 4, 2, 6});
    RegId T3 = B.shuffle(Rows[2], Rows[3], {1, 5, 3, 7});
    RegId C0 = B.shuffle(T0, T2, {0, 1, 4, 5});
    RegId C1 = B.shuffle(T1, T3, {0, 1, 4, 5});
    RegId C2 = B.shuffle(T0, T2, {2, 3, 6, 7});
    RegId C3 = B.shuffle(T1, T3, {2, 3, 6, 7});
    RegId Cols[4] = {C0, C1, C2, C3};
    for (unsigned J = 0; J != C; ++J)
      storeTileRow(B, Cols[J], Out, J, R);
  }

  void emitMVH(Builder &B, TileRef A, TileRef X, TileRef Out, unsigned R,
               unsigned C, bool Acc, bool Specialized) override {
    unsigned Lanes = laneWidth(C, Specialized);
    RegId XV = loadVec(B, X, C, Lanes);
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, Lanes);
    for (unsigned I = 0; I != R; ++I) {
      RegId V;
      if (Acc) // vmla: fused multiply-accumulate into the output row.
        V = B.fma(ARows[I], XV, loadTileRow(B, Out, I, C, Lanes));
      else
        V = B.mul(ARows[I], XV);
      storeTileRow(B, V, Out, I, C);
    }
  }

  void emitRR(Builder &B, TileRef A, TileRef Out, unsigned R, unsigned C,
              bool Acc, bool Specialized) override {
    RegId AccVec = Acc ? loadAcc(B, Out, R) : NoReg;
    if (Specialized && (R < NuNEON || C < NuNEON)) {
      unsigned Lanes = laneWidth(C, Specialized);
      std::vector<RegId> Rows = loadTileRows(B, A, R, C, Lanes);
      reduceRowsAndStore(B, Rows, AccVec, Out, R);
      return;
    }
    std::vector<RegId> Rows(NuNEON);
    for (unsigned I = 0; I != NuNEON; ++I)
      Rows[I] = I < R ? loadTileRow(B, A, I, C, NuNEON) : B.zero(NuNEON);
    reduceRowsAndStore(B, Rows, AccVec, Out, R);
  }

  void emitMVM(Builder &B, TileRef A, TileRef X, TileRef Y, unsigned R,
               unsigned C, bool Acc, bool Specialized) override {
    if (Specialized && (R < NuNEON || C < NuNEON)) {
      unsigned Lanes = laneWidth(C, Specialized);
      RegId XV = loadVec(B, X, C, Lanes);
      std::vector<RegId> Prods;
      for (unsigned I = 0; I != R; ++I)
        Prods.push_back(B.mul(loadTileRow(B, A, I, C, Lanes), XV));
      reduceRowsAndStore(B, Prods, Acc ? loadAcc(B, Y, R) : NoReg, Y, R);
      return;
    }
    RegId XV = loadVec(B, X, C, NuNEON);
    std::vector<RegId> Prods(NuNEON);
    for (unsigned I = 0; I != NuNEON; ++I) {
      RegId Row = I < R ? loadTileRow(B, A, I, C, NuNEON) : B.zero(NuNEON);
      Prods[I] = B.mul(Row, XV);
    }
    reduceRowsAndStore(B, Prods, Acc ? loadAcc(B, Y, R) : NoReg, Y, R);
  }

private:
  /// Doubleword registers when the specialized codelets can use them.
  static unsigned laneWidth(unsigned C, bool Specialized) {
    return (Specialized && C <= 2) ? 2 : NuNEON;
  }

  static RegId loadAcc(Builder &B, TileRef Y, unsigned R) {
    return loadVec(B, Y, R, R <= 2 ? 2 : NuNEON);
  }

  /// Specialized leftover matrix multiplication (Listing 3.10): loads only
  /// real data, emits only the K real products, and uses doubleword
  /// instructions when the output rows fit in 2 lanes.
  void emitMatMulSpecialized(Builder &B, TileRef A, TileRef Rhs, TileRef Out,
                             unsigned R, unsigned K, unsigned C, bool Acc) {
    unsigned OutLanes = C <= 2 ? 2 : NuNEON;
    unsigned ALanes = K <= 2 ? 2 : NuNEON;
    std::vector<RegId> BRows;
    for (unsigned J = 0; J != K; ++J)
      BRows.push_back(loadTileRow(B, Rhs, J, C, OutLanes));
    for (unsigned I = 0; I != R; ++I) {
      RegId ARow = loadTileRow(B, A, I, K, ALanes);
      RegId AccReg = Acc ? loadTileRow(B, Out, I, C, OutLanes) : NoReg;
      for (unsigned J = 0; J != K; ++J) {
        if (AccReg == NoReg)
          AccReg = B.mulLane(BRows[J], ARow, J);
        else
          AccReg = B.fmaLane(BRows[J], ARow, J, AccReg);
      }
      storeTileRow(B, AccReg, Out, I, C);
    }
  }

  /// Sums each row register into one lane and stores the first R sums into
  /// the R×1 tile \p Out, optionally adding \p AccVec first. Uses the
  /// doubleword pairwise-add (vpadd) reduction.
  void reduceRowsAndStore(Builder &B, const std::vector<RegId> &Rows,
                          RegId AccVec, TileRef Out, unsigned R) {
    // Per-row halves summed into 2-lane registers.
    std::vector<RegId> Halves;
    for (RegId Row : Rows) {
      if (B.kernel().lanesOf(Row) == 2)
        Halves.push_back(Row);
      else
        Halves.push_back(B.add(B.getLow(Row), B.getHigh(Row)));
    }
    // vpadd pairs: one 2-lane register holds two row sums.
    std::vector<RegId> Pairs;
    for (unsigned I = 0; I < Halves.size(); I += 2) {
      RegId Second = I + 1 < Halves.size() ? Halves[I + 1] : Halves[I];
      Pairs.push_back(B.hadd(Halves[I], Second));
    }
    RegId Sums;
    if (Pairs.size() == 1)
      Sums = Pairs[0];
    else
      Sums = B.combine(Pairs[0], Pairs[1]);
    if (AccVec != NoReg) {
      // Widen or match the accumulator width.
      unsigned SL = B.kernel().lanesOf(Sums);
      unsigned AL = B.kernel().lanesOf(AccVec);
      if (SL == AL)
        Sums = B.add(Sums, AccVec);
      else if (SL == 4 && AL == 2)
        Sums = B.add(Sums, B.combine(AccVec, B.zero(2)));
      else
        Sums = B.add(B.combine(Sums, B.zero(2)), AccVec);
    }
    storeVec(B, Sums, Out, R);
  }
};

} // namespace

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeNEONNuBLACs() {
  return std::make_unique<NEONNuBLACs>();
}
} // namespace isa
} // namespace lgen

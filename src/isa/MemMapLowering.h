//===- MemMapLowering.h - Lower generic loads/stores (§3.1) ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering of the generic load/store C-IR instructions into concrete
/// memory and shuffle instructions, performed "only one step before
/// unparsing the C-IR code into C code" (§3.1). Until this pass runs,
/// every transformation — scalar replacement in particular — sees only the
/// ISA-independent memory maps; afterwards the kernel contains exactly the
/// instructions the cost models and the C unparser understand.
///
/// Lowering rules:
///  * full contiguous map            → one vector load/store (aligned or
///                                     unaligned per the §3.2 analysis);
///  * single-lane map (or ν == 1)    → one scalar/lane access;
///  * partial or strided map         → per-lane accesses into a zeroed
///                                     register (loads) or out of the
///                                     source register (stores), matching
///                                     the vld1q_lane/vst1q_lane and
///                                     load_ss/insert sequences of
///                                     Figs. 3.2 and 3.4.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ISA_MEMMAPLOWERING_H
#define LGEN_ISA_MEMMAPLOWERING_H

#include "cir/CIR.h"

namespace lgen {
namespace isa {

/// Rewrites every GLoad/GStore of \p K into concrete instructions.
/// Returns the number of generic accesses lowered.
unsigned lowerGenericMemOps(cir::Kernel &K);

} // namespace isa
} // namespace lgen

#endif // LGEN_ISA_MEMMAPLOWERING_H

//===- MemMapLowering.cpp - Lower generic loads/stores (§3.1) ------------===//

#include "isa/MemMapLowering.h"

#include "cir/Passes.h"
#include "support/Trace.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace {

Addr offsetAddr(const Addr &Base, int64_t Delta) {
  Addr A = Base;
  A.Offset = A.Offset + AffineExpr(Delta);
  return A;
}

void lowerLoad(Kernel &K, const Inst &I, std::vector<Node> &Out) {
  unsigned Lanes = K.lanesOf(I.Dest);
  const MemMap &M = I.Map;

  if (Lanes == 1) {
    Inst L;
    L.Op = Opcode::Load;
    L.Dest = I.Dest;
    L.Address = M.LaneOffsets[0] == MemMap::None
                    ? I.Address // Degenerate: never emitted in practice.
                    : offsetAddr(I.Address, M.LaneOffsets[0]);
    Out.push_back(Node(std::move(L)));
    return;
  }

  if (M.isFullContiguous()) {
    Inst L;
    L.Op = Opcode::Load;
    L.Dest = I.Dest;
    L.Address = I.Address;
    L.Aligned = I.Aligned;
    Out.push_back(Node(std::move(L)));
    return;
  }

  // Partial or strided map: zero the register, then fill active lanes one
  // by one (vld1q_lane_f32 / _mm_load_ss + insert sequences).
  RegId Cur = K.newReg(Lanes);
  Inst Z;
  Z.Op = Opcode::Zero;
  Z.Dest = Cur;
  Out.push_back(Node(std::move(Z)));

  std::vector<unsigned> Active;
  for (unsigned J = 0; J != Lanes; ++J)
    if (M.LaneOffsets[J] != MemMap::None)
      Active.push_back(J);
  assert(!Active.empty() && "generic load with no active lanes");

  for (unsigned Idx = 0; Idx != Active.size(); ++Idx) {
    unsigned J = Active[Idx];
    Inst L;
    L.Op = Opcode::LoadLane;
    L.A = Cur;
    L.Lane = J;
    L.Address = offsetAddr(I.Address, M.LaneOffsets[J]);
    bool Last = Idx + 1 == Active.size();
    L.Dest = Last ? I.Dest : K.newReg(Lanes);
    Cur = L.Dest;
    Out.push_back(Node(std::move(L)));
  }
}

void lowerStore(Kernel &K, const Inst &I, std::vector<Node> &Out) {
  unsigned Lanes = K.lanesOf(I.A);
  const MemMap &M = I.Map;

  if (Lanes == 1) {
    Inst S;
    S.Op = Opcode::Store;
    S.A = I.A;
    S.Address = M.LaneOffsets[0] == MemMap::None
                    ? I.Address
                    : offsetAddr(I.Address, M.LaneOffsets[0]);
    Out.push_back(Node(std::move(S)));
    return;
  }

  if (M.isFullContiguous()) {
    Inst S;
    S.Op = Opcode::Store;
    S.A = I.A;
    S.Address = I.Address;
    S.Aligned = I.Aligned;
    Out.push_back(Node(std::move(S)));
    return;
  }

  for (unsigned J = 0; J != Lanes; ++J) {
    if (M.LaneOffsets[J] == MemMap::None)
      continue;
    Inst S;
    S.Op = Opcode::StoreLane;
    S.A = I.A;
    S.Lane = J;
    S.Address = offsetAddr(I.Address, M.LaneOffsets[J]);
    Out.push_back(Node(std::move(S)));
  }
}

unsigned lowerBody(Kernel &K, std::vector<Node> &Body) {
  unsigned Lowered = 0;
  std::vector<Node> Result;
  Result.reserve(Body.size());
  for (Node &N : Body) {
    if (N.isLoop()) {
      Lowered += lowerBody(K, N.loop().Body);
      Result.push_back(std::move(N));
      continue;
    }
    const Inst &I = N.inst();
    if (I.Op == Opcode::GLoad) {
      lowerLoad(K, I, Result);
      ++Lowered;
    } else if (I.Op == Opcode::GStore) {
      lowerStore(K, I, Result);
      ++Lowered;
    } else {
      Result.push_back(std::move(N));
    }
  }
  Body = std::move(Result);
  return Lowered;
}

} // namespace

unsigned isa::lowerGenericMemOps(Kernel &K) {
  support::Trace *T = support::Trace::active();
  bool Traced = T && !support::Trace::muted();
  cir::KernelStats Before;
  if (Traced)
    Before = cir::computeStats(K);

  unsigned Lowered = lowerBody(K, K.getBody());

  if (Traced) {
    // §3.1's claim made observable: lowering memory maps *after* scalar
    // replacement means the shuffle/lane traffic a concrete lowering would
    // have forced was already forwarded away. The delta of lane accesses
    // materialized here is what the generic instructions still had to pay.
    cir::KernelStats After = cir::computeStats(K);
    T->addCounter("isa.memmap.lowered", Lowered);
    uint64_t LaneBefore = Before.NumLoads + Before.NumStores;
    uint64_t LaneAfter = After.NumLoads + After.NumStores;
    T->addCounter("isa.memmap.laneAccesses",
                  LaneAfter > LaneBefore ? LaneAfter - LaneBefore : 0);
  }
  return Lowered;
}

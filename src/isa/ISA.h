//===- ISA.h - Virtual vector ISA descriptions -----------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptions of the vector instruction sets targeted by the reproduction:
/// SSSE3 (Intel Atom, thesis §2.2.1), NEON (Cortex-A8/A9, §2.2.2–2.2.3),
/// and plain scalar code (ARM1176, §2.2.4). A virtual ISA determines the
/// vector length ν, which C-IR opcodes the ν-BLACs may emit, and how
/// generic memory accesses are lowered.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ISA_ISA_H
#define LGEN_ISA_ISA_H

#include "cir/CIR.h"

namespace lgen {
namespace isa {

enum class ISAKind {
  Scalar, ///< No SIMD extension (ARM1176 / ARMv6).
  SSSE3,  ///< 128-bit SSE family subset available on Intel Atom.
  SSE41,  ///< SSSE3 plus the SSE4.1 dot-product instruction (dpps).
  NEON,   ///< ARMv7 NEON with 64-bit (doubleword) and 128-bit registers.
  AVX,    ///< 256-bit AVX (ν = 8) — the CGO'14 LGen desktop target.
};

const char *isaName(ISAKind Kind);

struct ISATraits {
  ISAKind Kind = ISAKind::Scalar;
  /// Vector register length in floats.
  unsigned Nu = 1;
  /// 4-lane horizontal add (_mm_hadd_ps). SSE-family only; on NEON the
  /// 2-lane form (vpadd) is available instead.
  bool HasQuadHAdd = false;
  /// SSE4.1 dpps.
  bool HasDotProduct = false;
  /// Pairwise add on doubleword registers (NEON vpadd).
  bool HasPairwiseAdd = false;
  /// Fused multiply-accumulate (NEON vmla).
  bool HasFMA = false;
  /// Multiply by a scalar drawn from a lane of another vector
  /// (NEON vmul_lane / vmla_lane) — avoids explicit broadcasts (§2.2.2).
  bool HasMulByLane = false;
  /// Doubleword (ν/2-lane) data-processing operations exist and run twice
  /// as fast as quadword ones (§2.2.2) — exploited by the specialized
  /// ν-BLACs of §3.4.
  bool HasDoubleword = false;
  /// Number of architectural ν-wide vector registers.
  unsigned NumVecRegs = 16;
};

ISATraits traits(ISAKind Kind);

/// A reference to an R×C tile inside a row-major matrix: element (r, c)
/// lives at Base.Offset + r*RowStride + c of Base.Array.
struct TileRef {
  cir::Addr Base;
  int64_t RowStride = 0;

  cir::Addr at(int64_t Row, int64_t Col) const {
    cir::Addr A = Base;
    A.Offset = A.Offset + cir::AffineExpr(Row * RowStride + Col);
    return A;
  }
};

} // namespace isa
} // namespace lgen

#endif // LGEN_ISA_ISA_H

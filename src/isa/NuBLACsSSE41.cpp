//===- NuBLACsSSE41.cpp - SSE4.1 ν-BLACs (dpps variants) -------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSE4.1 ν-BLAC library of the original CGO'14 LGen (which supports
/// "SSE3, SSE4.1 or AVX"). It shares the SSSE3 codelets for everything
/// except the reduction-flavored operations, where the dpps dot-product
/// instruction replaces the horizontal-add trees: one dpps yields a whole
/// row·vector product, traded against its long latency — whether that wins
/// depends on the microarchitecture, which is exactly the kind of choice
/// LGen's autotuner is meant to settle.
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeSSSE3NuBLACs();
} // namespace isa
} // namespace lgen

namespace {

constexpr unsigned NuSSE = 4;

/// Delegates everything to the SSSE3 library except the dpps-based
/// reductions.
class SSE41NuBLACs : public NuBLACs {
public:
  SSE41NuBLACs()
      : NuBLACs(isa::traits(ISAKind::SSE41)), Base(makeSSSE3NuBLACs()) {}

  void emitAdd(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
               unsigned C, bool Spec) override {
    Base->emitAdd(B, A, Rhs, Out, R, C, Spec);
  }
  void emitScalarMul(Builder &B, TileRef Alpha, TileRef A, TileRef Out,
                     unsigned R, unsigned C, bool Spec) override {
    Base->emitScalarMul(B, Alpha, A, Out, R, C, Spec);
  }
  void emitMatMul(Builder &B, TileRef A, TileRef Rhs, TileRef Out,
                  unsigned R, unsigned K, unsigned C, bool Acc,
                  bool Spec) override {
    Base->emitMatMul(B, A, Rhs, Out, R, K, C, Acc, Spec);
  }
  void emitTranspose(Builder &B, TileRef A, TileRef Out, unsigned R,
                     unsigned C, bool Spec) override {
    Base->emitTranspose(B, A, Out, R, C, Spec);
  }
  void emitMVH(Builder &B, TileRef A, TileRef X, TileRef Out, unsigned R,
               unsigned C, bool Acc, bool Spec) override {
    Base->emitMVH(B, A, X, Out, R, C, Acc, Spec);
  }

  void emitRR(Builder &B, TileRef A, TileRef Out, unsigned R, unsigned C,
              bool Acc, bool) override {
    // Row sums as dot products with a vector of ones.
    RegId Ones = B.fconst(NuSSE, 1.0);
    RegId Sums = rowReduce(B, A, R, C, Ones);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Out, R, NuSSE));
    storeVec(B, Sums, Out, R);
  }

  void emitMVM(Builder &B, TileRef A, TileRef X, TileRef Y, unsigned R,
               unsigned C, bool Acc, bool) override {
    // y[i] = dpps(row_i, x): one instruction per row, no hadd tree.
    RegId XV = loadVec(B, X, C, NuSSE);
    RegId Sums = rowReduce(B, A, R, C, XV);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Y, R, NuSSE));
    storeVec(B, Sums, Y, R);
  }

private:
  /// Returns a register whose lane i holds dot(row_i(A), V) for i < R,
  /// assembled from per-row dpps results by insertion.
  RegId rowReduce(Builder &B, TileRef A, unsigned R, unsigned C, RegId V) {
    RegId Acc = B.zero(NuSSE);
    for (unsigned I = 0; I != R; ++I) {
      RegId Row = loadTileRow(B, A, I, C, NuSSE);
      RegId Dot = B.dotps(Row, V);
      // insertps moves the dot (lane 0) into lane I.
      Acc = I == 0 ? Dot : B.insert(Acc, B.extract(Dot, 0), I);
    }
    return Acc;
  }

  std::unique_ptr<NuBLACs> Base;
};

} // namespace

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeSSE41NuBLACs() {
  return std::make_unique<SSE41NuBLACs>();
}
} // namespace isa
} // namespace lgen

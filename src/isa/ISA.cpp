//===- ISA.cpp - Virtual vector ISA descriptions ---------------*- C++ -*-===//

#include "isa/ISA.h"

using namespace lgen;
using namespace lgen::isa;

const char *isa::isaName(ISAKind Kind) {
  switch (Kind) {
  case ISAKind::Scalar:
    return "scalar";
  case ISAKind::SSSE3:
    return "ssse3";
  case ISAKind::SSE41:
    return "sse41";
  case ISAKind::NEON:
    return "neon";
  case ISAKind::AVX:
    return "avx";
  }
  LGEN_UNREACHABLE("unknown ISA kind");
}

ISATraits isa::traits(ISAKind Kind) {
  ISATraits T;
  T.Kind = Kind;
  switch (Kind) {
  case ISAKind::Scalar:
    T.Nu = 1;
    T.NumVecRegs = 16; // VFP single-precision register file (s0..s31 pairs).
    break;
  case ISAKind::SSSE3:
    T.Nu = 4;
    T.HasQuadHAdd = true;
    T.NumVecRegs = 16; // XMM0..XMM15 (x86-64).
    break;
  case ISAKind::SSE41:
    T.Nu = 4;
    T.HasQuadHAdd = true;
    T.HasDotProduct = true;
    T.NumVecRegs = 16;
    break;
  case ISAKind::NEON:
    T.Nu = 4;
    T.HasPairwiseAdd = true;
    T.HasFMA = true;
    T.HasMulByLane = true;
    T.HasDoubleword = true;
    T.NumVecRegs = 16; // q0..q15.
    break;
  case ISAKind::AVX:
    T.Nu = 8;
    T.HasQuadHAdd = true; // Per-128-bit-lane hadd (_mm256_hadd_ps).
    T.NumVecRegs = 16;    // YMM0..YMM15.
    break;
  }
  return T;
}

//===- NuBLACsAVX.cpp - AVX ν-BLACs (ν = 8) --------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AVX ν-BLACs (ν = 8), the desktop target of the original CGO'14 LGen
/// paper that the thesis extends. Structure mirrors the SSSE3 library with
/// 256-bit registers: matrix multiplication broadcasts left-operand
/// elements (_mm256_broadcast_ss) against right-operand rows; reductions
/// split YMM registers into 128-bit halves (GetLow/GetHigh ≙
/// _mm256_extractf128_ps) and finish with the 4-lane horizontal-add tree;
/// the 8-lane HAdd keeps AVX's per-128-bit-lane semantics and is only used
/// where that is what is wanted.
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace {

constexpr unsigned NuAVX = 8;

class AVXNuBLACs : public NuBLACs {
public:
  AVXNuBLACs() : NuBLACs(isa::traits(ISAKind::AVX)) {}

  void emitAdd(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
               unsigned C, bool) override {
    if (C == 1 && R > 1) {
      RegId VA = loadTileCol(B, A, 0, R, NuAVX);
      RegId VB = loadTileCol(B, Rhs, 0, R, NuAVX);
      storeTileCol(B, B.add(VA, VB), Out, 0, R);
      return;
    }
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuAVX);
    std::vector<RegId> BRows = loadTileRows(B, Rhs, R, C, NuAVX);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.add(ARows[I], BRows[I]), Out, I, C);
  }

  void emitScalarMul(Builder &B, TileRef Alpha, TileRef A, TileRef Out,
                     unsigned R, unsigned C, bool) override {
    RegId S = B.loadBroadcast(NuAVX, Alpha.at(0, 0)); // _mm256_broadcast_ss.
    if (C == 1 && R > 1) {
      RegId VA = loadTileCol(B, A, 0, R, NuAVX);
      storeTileCol(B, B.mul(S, VA), Out, 0, R);
      return;
    }
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuAVX);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.mul(S, ARows[I]), Out, I, C);
  }

  void emitMatMul(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
                  unsigned K, unsigned C, bool Acc, bool) override {
    // Broadcast-and-accumulate, padded to ν as on SSSE3; dead rows are
    // cleaned up downstream, zero products remain (§3.4's observation).
    std::vector<RegId> BRows(NuAVX);
    for (unsigned J = 0; J != NuAVX; ++J)
      BRows[J] = J < K ? loadTileRow(B, Rhs, J, C, NuAVX) : B.zero(NuAVX);
    for (unsigned I = 0; I != NuAVX; ++I) {
      RegId AccReg = NoReg;
      if (Acc && I < R)
        AccReg = loadTileRow(B, Out, I, C, NuAVX);
      for (unsigned J = 0; J != NuAVX; ++J) {
        RegId AElem = (I < R && J < K)
                          ? B.loadBroadcast(NuAVX, A.at(I, J))
                          : B.zero(NuAVX);
        RegId Prod = B.mul(AElem, BRows[J]);
        AccReg = AccReg == NoReg ? Prod : B.add(AccReg, Prod);
      }
      if (I < R)
        storeTileRow(B, AccReg, Out, I, C);
    }
  }

  void emitTranspose(Builder &B, TileRef A, TileRef Out, unsigned R,
                     unsigned C, bool) override {
    if (R == 1 || C == 1) {
      if (R == 1) {
        RegId V = loadTileRow(B, A, 0, C, NuAVX);
        storeTileCol(B, V, Out, 0, C);
      } else {
        RegId V = loadTileCol(B, A, 0, R, NuAVX);
        storeTileRow(B, V, Out, 0, R);
      }
      return;
    }
    // Column gathers (strided generic loads) written out as rows: the
    // lane-level cost after lowering approximates an 8×8 in-register
    // transpose's shuffle network.
    for (unsigned J = 0; J != C; ++J) {
      RegId Col = loadTileCol(B, A, J, R, NuAVX);
      storeTileRow(B, Col, Out, J, R);
    }
  }

  void emitMVH(Builder &B, TileRef A, TileRef X, TileRef Out, unsigned R,
               unsigned C, bool Acc, bool) override {
    RegId XV = loadVec(B, X, C, NuAVX);
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuAVX);
    for (unsigned I = 0; I != R; ++I) {
      RegId Prod = B.mul(ARows[I], XV);
      if (Acc)
        Prod = B.add(Prod, loadTileRow(B, Out, I, C, NuAVX));
      storeTileRow(B, Prod, Out, I, C);
    }
  }

  void emitRR(Builder &B, TileRef A, TileRef Out, unsigned R, unsigned C,
              bool Acc, bool) override {
    std::vector<RegId> Rows(NuAVX);
    for (unsigned I = 0; I != NuAVX; ++I)
      Rows[I] = I < R ? loadTileRow(B, A, I, C, NuAVX) : B.zero(NuAVX);
    RegId Sums = reduceRowsToVector(B, Rows);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Out, R, NuAVX));
    storeVec(B, Sums, Out, R);
  }

  void emitMVM(Builder &B, TileRef A, TileRef X, TileRef Y, unsigned R,
               unsigned C, bool Acc, bool) override {
    RegId XV = loadVec(B, X, C, NuAVX);
    std::vector<RegId> Prods(NuAVX);
    for (unsigned I = 0; I != NuAVX; ++I) {
      RegId Row = I < R ? loadTileRow(B, A, I, C, NuAVX) : B.zero(NuAVX);
      Prods[I] = B.mul(Row, XV);
    }
    RegId Sums = reduceRowsToVector(B, Prods);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Y, R, NuAVX));
    storeVec(B, Sums, Y, R);
  }

private:
  /// Reduces 8 row registers (8 lanes each) to one register holding the 8
  /// row sums: fold YMM halves (extractf128 + add), then two 4-lane hadd
  /// trees, recombined.
  RegId reduceRowsToVector(Builder &B, const std::vector<RegId> &Rows) {
    std::vector<RegId> Halves; // 4-lane per-row partials.
    for (RegId Row : Rows)
      Halves.push_back(B.add(B.getLow(Row), B.getHigh(Row)));
    auto Tree = [&](unsigned Base) {
      RegId H0 = B.hadd(Halves[Base + 0], Halves[Base + 1]);
      RegId H1 = B.hadd(Halves[Base + 2], Halves[Base + 3]);
      return B.hadd(H0, H1);
    };
    RegId Lo = Tree(0);
    RegId Hi = Tree(4);
    return B.combine(Lo, Hi);
  }
};

} // namespace

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeAVXNuBLACs() {
  return std::make_unique<AVXNuBLACs>();
}
} // namespace isa
} // namespace lgen

//===- NuBLACsScalar.cpp - Scalar "ν-BLACs" for ARM1176 --------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codelets for processors without a SIMD extension (ARM1176, §2.2.4 and
/// §5.5). The tile operations are emitted as fully unrolled scalar code;
/// the tile sizes chosen by the tiling layer then directly control the
/// unrolling factors, and the quality of the result depends on scheduling
/// and register allocation — exactly the situation the thesis describes
/// for this processor.
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace {

class ScalarNuBLACs : public NuBLACs {
public:
  ScalarNuBLACs() : NuBLACs(isa::traits(ISAKind::Scalar)) {}

  void emitAdd(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
               unsigned C, bool) override {
    for (unsigned I = 0; I != R; ++I)
      for (unsigned J = 0; J != C; ++J) {
        RegId X = loadElem(B, A, I, J);
        RegId Y = loadElem(B, Rhs, I, J);
        storeElem(B, B.add(X, Y), Out, I, J);
      }
  }

  void emitScalarMul(Builder &B, TileRef Alpha, TileRef A, TileRef Out,
                     unsigned R, unsigned C, bool) override {
    RegId S = loadElem(B, Alpha, 0, 0);
    for (unsigned I = 0; I != R; ++I)
      for (unsigned J = 0; J != C; ++J)
        storeElem(B, B.mul(S, loadElem(B, A, I, J)), Out, I, J);
  }

  void emitMatMul(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
                  unsigned K, unsigned C, bool Acc, bool) override {
    // Row-of-A reuse: load each A element once per row sweep.
    for (unsigned I = 0; I != R; ++I) {
      std::vector<RegId> ARow;
      for (unsigned P = 0; P != K; ++P)
        ARow.push_back(loadElem(B, A, I, P));
      for (unsigned J = 0; J != C; ++J) {
        RegId AccReg = Acc ? loadElem(B, Out, I, J) : NoReg;
        for (unsigned P = 0; P != K; ++P) {
          RegId BElem = loadElem(B, Rhs, P, J);
          if (AccReg == NoReg)
            AccReg = B.mul(ARow[P], BElem);
          else if (Traits.HasFMA)
            AccReg = B.fma(ARow[P], BElem, AccReg);
          else
            AccReg = B.add(AccReg, B.mul(ARow[P], BElem));
        }
        storeElem(B, AccReg, Out, I, J);
      }
    }
  }

  void emitTranspose(Builder &B, TileRef A, TileRef Out, unsigned R,
                     unsigned C, bool) override {
    for (unsigned I = 0; I != R; ++I)
      for (unsigned J = 0; J != C; ++J)
        storeElem(B, loadElem(B, A, I, J), Out, J, I);
  }

  void emitMVH(Builder &B, TileRef A, TileRef X, TileRef Out, unsigned R,
               unsigned C, bool Acc, bool) override {
    std::vector<RegId> XElems;
    for (unsigned J = 0; J != C; ++J)
      XElems.push_back(loadElem(B, X, J, 0));
    for (unsigned I = 0; I != R; ++I)
      for (unsigned J = 0; J != C; ++J) {
        RegId Prod = B.mul(loadElem(B, A, I, J), XElems[J]);
        if (Acc)
          Prod = B.add(Prod, loadElem(B, Out, I, J));
        storeElem(B, Prod, Out, I, J);
      }
  }

  void emitRR(Builder &B, TileRef A, TileRef Out, unsigned R, unsigned C,
              bool Acc, bool) override {
    for (unsigned I = 0; I != R; ++I) {
      RegId Sum = Acc ? loadElem(B, Out, I, 0) : loadElem(B, A, I, 0);
      for (unsigned J = Acc ? 0u : 1u; J != C; ++J)
        Sum = B.add(Sum, loadElem(B, A, I, J));
      storeElem(B, Sum, Out, I, 0);
    }
  }

  void emitMVM(Builder &B, TileRef A, TileRef X, TileRef Y, unsigned R,
               unsigned C, bool Acc, bool) override {
    std::vector<RegId> XElems;
    for (unsigned J = 0; J != C; ++J)
      XElems.push_back(loadElem(B, X, J, 0));
    for (unsigned I = 0; I != R; ++I) {
      RegId AccReg = Acc ? loadElem(B, Y, I, 0) : NoReg;
      for (unsigned J = 0; J != C; ++J) {
        RegId AElem = loadElem(B, A, I, J);
        if (AccReg == NoReg)
          AccReg = B.mul(AElem, XElems[J]);
        else if (Traits.HasFMA)
          AccReg = B.fma(AElem, XElems[J], AccReg);
        else
          AccReg = B.add(AccReg, B.mul(AElem, XElems[J]));
      }
      storeElem(B, AccReg, Y, I, 0);
    }
  }

private:
  static RegId loadElem(Builder &B, TileRef T, unsigned Row, unsigned Col) {
    return B.gload(1, T.at(Row, Col), MemMap::contiguous(1));
  }
  static void storeElem(Builder &B, RegId V, TileRef T, unsigned Row,
                        unsigned Col) {
    B.gstore(V, T.at(Row, Col), MemMap::contiguous(1));
  }
};

} // namespace

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeScalarNuBLACs() {
  return std::make_unique<ScalarNuBLACs>();
}
} // namespace isa
} // namespace lgen

//===- LoaderStorer.cpp - Tile packing/unpacking codelets ------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Loader and Storer codelets (thesis §2.1.4): moving (possibly
/// leftover) tiles between matrices in memory and ν-sized register
/// operands of the ν-BLACs. Implemented entirely with the generic
/// load/store instructions of §3.1 — a horizontal tile row is a contiguous
/// memory map, a vertical tile column a strided one, and leftover lanes
/// are zero-filled on load and skipped on store.
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

NuBLACs::~NuBLACs() = default;

RegId isa::loadTileRow(Builder &B, TileRef T, unsigned Row, unsigned C,
                       unsigned Lanes) {
  assert(C <= Lanes && "tile row wider than the register");
  if (Lanes == 1) {
    MemMap M = MemMap::contiguous(1);
    return B.gload(1, T.at(Row, 0), M);
  }
  return B.gload(Lanes, T.at(Row, 0), MemMap::contiguous(Lanes, C));
}

std::vector<RegId> isa::loadTileRows(Builder &B, TileRef T, unsigned R,
                                     unsigned C, unsigned Lanes) {
  std::vector<RegId> Rows;
  Rows.reserve(R);
  for (unsigned I = 0; I != R; ++I)
    Rows.push_back(loadTileRow(B, T, I, C, Lanes));
  return Rows;
}

void isa::storeTileRow(Builder &B, RegId V, TileRef T, unsigned Row,
                       unsigned C) {
  unsigned Lanes = B.kernel().lanesOf(V);
  assert(C <= Lanes && "storing more columns than lanes");
  B.gstore(V, T.at(Row, 0), MemMap::contiguous(Lanes, C));
}

RegId isa::loadTileCol(Builder &B, TileRef T, unsigned Col, unsigned R,
                       unsigned Lanes) {
  assert(R <= Lanes && "tile column taller than the register");
  if (T.RowStride == 1)
    return B.gload(Lanes, T.at(0, Col), MemMap::contiguous(Lanes, R));
  return B.gload(Lanes, T.at(0, Col),
                 MemMap::strided(Lanes, T.RowStride, R));
}

void isa::storeTileCol(Builder &B, RegId V, TileRef T, unsigned Col,
                       unsigned R) {
  unsigned Lanes = B.kernel().lanesOf(V);
  assert(R <= Lanes && "storing more rows than lanes");
  if (T.RowStride == 1) {
    B.gstore(V, T.at(0, Col), MemMap::contiguous(Lanes, R));
    return;
  }
  B.gstore(V, T.at(0, Col), MemMap::strided(Lanes, T.RowStride, R));
}

RegId isa::loadVec(Builder &B, TileRef T, unsigned K, unsigned Lanes) {
  return loadTileCol(B, T, 0, K, Lanes);
}

void isa::storeVec(Builder &B, RegId V, TileRef T, unsigned K) {
  storeTileCol(B, V, T, 0, K);
}

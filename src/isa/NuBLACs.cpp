//===- NuBLACs.cpp - ν-BLAC library factory --------------------*- C++ -*-===//

#include "isa/NuBLACs.h"

namespace lgen {
namespace isa {
// Defined in the per-ISA translation units.
std::unique_ptr<NuBLACs> makeScalarNuBLACs();
std::unique_ptr<NuBLACs> makeSSSE3NuBLACs();
std::unique_ptr<NuBLACs> makeNEONNuBLACs();
std::unique_ptr<NuBLACs> makeAVXNuBLACs();
std::unique_ptr<NuBLACs> makeSSE41NuBLACs();
} // namespace isa
} // namespace lgen

using namespace lgen;
using namespace lgen::isa;

std::unique_ptr<NuBLACs> isa::makeNuBLACs(ISAKind Kind) {
  switch (Kind) {
  case ISAKind::Scalar:
    return makeScalarNuBLACs();
  case ISAKind::SSSE3:
    return makeSSSE3NuBLACs();
  case ISAKind::SSE41:
    return makeSSE41NuBLACs();
  case ISAKind::NEON:
    return makeNEONNuBLACs();
  case ISAKind::AVX:
    return makeAVXNuBLACs();
  }
  LGEN_UNREACHABLE("unknown ISA kind");
}

//===- NuBLACsSSSE3.cpp - SSSE3 ν-BLACs for Intel Atom ---------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSSE3 ν-BLACs (ν = 4) used for Intel Atom, following the C-IR
/// listings of the thesis: Listing 3.4 (Ax with multiplies and a horizontal
/// add tree), Listing 3.5 (x+y), Listing 3.6 (the MVH codelet A ⊙ x),
/// Listing 3.7 (the row reduction ⊕A), Listing 3.8 (A+B), and the
/// broadcast-based matrix-multiplication codelet of §5.2.2. Leftover tiles
/// are padded to ν in registers by the Loader (zero-filled generic loads);
/// SSSE3 has no specialized leftover codelets, so the \c Specialized flag
/// is ignored.
///
//===----------------------------------------------------------------------===//

#include "isa/NuBLACs.h"

using namespace lgen;
using namespace lgen::isa;
using namespace lgen::cir;

namespace {

constexpr unsigned NuSSE = 4;

class SSSE3NuBLACs : public NuBLACs {
public:
  SSSE3NuBLACs() : NuBLACs(isa::traits(ISAKind::SSSE3)) {}

  void emitAdd(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
               unsigned C, bool) override {
    // ν×1 tiles (the column-vector addition ν-BLAC of Table 2.1).
    if (C == 1 && R > 1) {
      RegId VA = loadTileCol(B, A, 0, R, NuSSE);
      RegId VB = loadTileCol(B, Rhs, 0, R, NuSSE);
      storeTileCol(B, B.add(VA, VB), Out, 0, R);
      return;
    }
    // Listing 3.8 (blac_nu4_madd).
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuSSE);
    std::vector<RegId> BRows = loadTileRows(B, Rhs, R, C, NuSSE);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.add(ARows[I], BRows[I]), Out, I, C);
  }

  void emitScalarMul(Builder &B, TileRef Alpha, TileRef A, TileRef Out,
                     unsigned R, unsigned C, bool) override {
    RegId S = B.loadBroadcast(NuSSE, Alpha.at(0, 0)); // _mm_load1_ps.
    if (C == 1 && R > 1) { // Column-vector scaling ν-BLAC.
      RegId VA = loadTileCol(B, A, 0, R, NuSSE);
      storeTileCol(B, B.mul(S, VA), Out, 0, R);
      return;
    }
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuSSE);
    for (unsigned I = 0; I != R; ++I)
      storeTileRow(B, B.mul(S, ARows[I]), Out, I, C);
  }

  void emitMatMul(Builder &B, TileRef A, TileRef Rhs, TileRef Out, unsigned R,
                  unsigned K, unsigned C, bool Acc, bool) override {
    // §5.2.2: row i of the result accumulates A[i][j] (broadcast with
    // _mm_load1_ps) times row j of the right operand. The traditional
    // leftover handling pads every tile to ν, so the codelet always runs
    // the full ν×ν×ν computation; operations on padding become dead or
    // zero-valued and only partially disappear downstream (§3.4).
    std::vector<RegId> BRows(NuSSE);
    for (unsigned J = 0; J != NuSSE; ++J)
      BRows[J] = J < K ? loadTileRow(B, Rhs, J, C, NuSSE) : B.zero(NuSSE);
    for (unsigned I = 0; I != NuSSE; ++I) {
      RegId AccReg = NoReg;
      if (Acc && I < R)
        AccReg = loadTileRow(B, Out, I, C, NuSSE);
      for (unsigned J = 0; J != NuSSE; ++J) {
        RegId AElem = (I < R && J < K)
                          ? B.loadBroadcast(NuSSE, A.at(I, J))
                          : B.zero(NuSSE);
        RegId Prod = B.mul(AElem, BRows[J]);
        AccReg = AccReg == NoReg ? Prod : B.add(AccReg, Prod);
      }
      if (I < R)
        storeTileRow(B, AccReg, Out, I, C);
    }
  }

  void emitTranspose(Builder &B, TileRef A, TileRef Out, unsigned R,
                     unsigned C, bool) override {
    // Degenerate vector transposes move one tile register.
    if (R == 1 || C == 1) {
      if (R == 1) { // Row tile becomes a column tile.
        RegId V = loadTileRow(B, A, 0, C, NuSSE);
        storeTileCol(B, V, Out, 0, C);
      } else {
        RegId V = loadTileCol(B, A, 0, R, NuSSE);
        storeTileRow(B, V, Out, 0, R);
      }
      return;
    }
    // The classic 8-shuffle 4×4 transpose (_MM_TRANSPOSE4_PS).
    std::vector<RegId> Rows(NuSSE);
    for (unsigned I = 0; I != NuSSE; ++I)
      Rows[I] = I < R ? loadTileRow(B, A, I, C, NuSSE) : B.zero(NuSSE);
    RegId T0 = B.shuffle(Rows[0], Rows[1], {0, 4, 1, 5}); // unpacklo
    RegId T1 = B.shuffle(Rows[0], Rows[1], {2, 6, 3, 7}); // unpackhi
    RegId T2 = B.shuffle(Rows[2], Rows[3], {0, 4, 1, 5});
    RegId T3 = B.shuffle(Rows[2], Rows[3], {2, 6, 3, 7});
    RegId C0 = B.shuffle(T0, T2, {0, 1, 4, 5}); // movelh
    RegId C1 = B.shuffle(T0, T2, {2, 3, 6, 7}); // movehl
    RegId C2 = B.shuffle(T1, T3, {0, 1, 4, 5});
    RegId C3 = B.shuffle(T1, T3, {2, 3, 6, 7});
    RegId Cols[4] = {C0, C1, C2, C3};
    for (unsigned J = 0; J != C; ++J)
      storeTileRow(B, Cols[J], Out, J, R);
  }

  void emitMVH(Builder &B, TileRef A, TileRef X, TileRef Out, unsigned R,
               unsigned C, bool Acc, bool) override {
    // Listing 3.6 (blac_nu4_pmul), plus the accumulating form used by the
    // inner summation of equation (3.8).
    RegId XV = loadVec(B, X, C, NuSSE);
    std::vector<RegId> ARows = loadTileRows(B, A, R, C, NuSSE);
    for (unsigned I = 0; I != R; ++I) {
      RegId Prod = B.mul(ARows[I], XV);
      if (Acc)
        Prod = B.add(Prod, loadTileRow(B, Out, I, C, NuSSE));
      storeTileRow(B, Prod, Out, I, C);
    }
  }

  void emitRR(Builder &B, TileRef A, TileRef Out, unsigned R, unsigned C,
              bool Acc, bool) override {
    // Listing 3.7 (blac_nu4_hred): a horizontal add tree.
    std::vector<RegId> Rows(NuSSE);
    for (unsigned I = 0; I != NuSSE; ++I)
      Rows[I] = I < R ? loadTileRow(B, A, I, C, NuSSE) : B.zero(NuSSE);
    RegId Sums = haddTree(B, Rows);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Out, R, NuSSE));
    storeVec(B, Sums, Out, R);
  }

  void emitMVM(Builder &B, TileRef A, TileRef X, TileRef Y, unsigned R,
               unsigned C, bool Acc, bool) override {
    // Listing 3.4 (blac_nu4_mvm): per-row multiply, then the expensive
    // horizontal add tree — the inefficiency the new MVH+RR approach of
    // §3.3 removes from the inner loop.
    RegId XV = loadVec(B, X, C, NuSSE);
    std::vector<RegId> Prods(NuSSE);
    for (unsigned I = 0; I != NuSSE; ++I) {
      RegId Row = I < R ? loadTileRow(B, A, I, C, NuSSE) : B.zero(NuSSE);
      Prods[I] = B.mul(Row, XV);
    }
    RegId Sums = haddTree(B, Prods);
    if (Acc)
      Sums = B.add(Sums, loadVec(B, Y, R, NuSSE));
    storeVec(B, Sums, Y, R);
  }

private:
  /// hadd(hadd(a,b), hadd(c,d)) == [Σa, Σb, Σc, Σd].
  static RegId haddTree(Builder &B, const std::vector<RegId> &Rows) {
    RegId H0 = B.hadd(Rows[0], Rows[1]);
    RegId H1 = B.hadd(Rows[2], Rows[3]);
    return B.hadd(H0, H1);
  }
};

} // namespace

namespace lgen {
namespace isa {
std::unique_ptr<NuBLACs> makeSSSE3NuBLACs() {
  return std::make_unique<SSSE3NuBLACs>();
}
} // namespace isa
} // namespace lgen

//===- NuBLACs.h - ν-BLAC codelet libraries --------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ν-BLAC codelets (thesis §2.1.4, Table 2.1): handwritten C-IR
/// generators for the basic linear algebra operations on ν-sized tiles, one
/// library per vector ISA. Each codelet follows the load-compute-store
/// discipline; loading and storing of (possibly leftover) tiles goes
/// through the generic memory instructions of §3.1, which subsume the
/// Loader and Storer wrappers.
///
/// Beyond the 18 classic ν-BLACs the libraries implement the MVH and RR
/// codelets of the new matrix-vector multiplication approach (§3.3,
/// Listings 3.6/3.7) and — on NEON — the specialized leftover ν-BLACs of
/// §3.4 that operate on sub-ν tiles directly with doubleword instructions.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ISA_NUBLACS_H
#define LGEN_ISA_NUBLACS_H

#include "cir/Builder.h"
#include "isa/ISA.h"

#include <memory>
#include <vector>

namespace lgen {
namespace isa {

/// Code generator interface for the ν-BLACs of one ISA. All emitters work
/// on logical R×C tiles with 1 ≤ R, C ≤ ν addressed through TileRefs.
/// When \p Specialized is true and the ISA provides specialized leftover
/// codelets (§3.4), sub-ν tiles are handled without padding; otherwise
/// tiles are zero-padded to ν in registers (the traditional path).
class NuBLACs {
public:
  explicit NuBLACs(ISATraits Traits) : Traits(Traits) {}
  virtual ~NuBLACs();

  const ISATraits &traits() const { return Traits; }
  unsigned nu() const { return Traits.Nu; }

  /// Out = A + B over an R×C tile (the 3 addition ν-BLACs, Listing 3.8).
  virtual void emitAdd(cir::Builder &B, TileRef A, TileRef Rhs, TileRef Out,
                       unsigned R, unsigned C, bool Specialized) = 0;

  /// Out = alpha * A over an R×C tile (the scalar-multiplication ν-BLACs).
  /// \p Alpha is a 1×1 tile.
  virtual void emitScalarMul(cir::Builder &B, TileRef Alpha, TileRef A,
                             TileRef Out, unsigned R, unsigned C,
                             bool Specialized) = 0;

  /// Out (+)= A * B over an R×K×C tile product (the matrix-multiplication
  /// ν-BLACs). When \p Acc is set the codelet accumulates into Out.
  virtual void emitMatMul(cir::Builder &B, TileRef A, TileRef Rhs,
                          TileRef Out, unsigned R, unsigned K, unsigned C,
                          bool Acc, bool Specialized) = 0;

  /// Out = A^T over an R×C tile (the transposition ν-BLACs).
  virtual void emitTranspose(cir::Builder &B, TileRef A, TileRef Out,
                             unsigned R, unsigned C, bool Specialized) = 0;

  /// Out (+)= A ⊙ x, the matrix-vector Hadamard product of §3.3
  /// (Listing 3.6): Out[r][c] (+)= A[r][c] * x[c]. \p X is a C×1 tile.
  virtual void emitMVH(cir::Builder &B, TileRef A, TileRef X, TileRef Out,
                       unsigned R, unsigned C, bool Acc, bool Specialized) = 0;

  /// Out (+)= ⊕A, the row reduction of §3.3 (Listing 3.7):
  /// Out[r] (+)= sum_c A[r][c]. \p Out is an R×1 tile.
  virtual void emitRR(cir::Builder &B, TileRef A, TileRef Out, unsigned R,
                      unsigned C, bool Acc, bool Specialized) = 0;

  /// Y (+)= A * x, the classic matrix-vector ν-BLAC (Listing 3.4).
  /// \p X is a C×1 tile and \p Y an R×1 tile.
  virtual void emitMVM(cir::Builder &B, TileRef A, TileRef X, TileRef Y,
                       unsigned R, unsigned C, bool Acc, bool Specialized) = 0;

protected:
  ISATraits Traits;
};

/// Creates the ν-BLAC library for \p Kind.
std::unique_ptr<NuBLACs> makeNuBLACs(ISAKind Kind);

//===----------------------------------------------------------------------===//
// Loader / Storer helpers (§2.1.4)
//===----------------------------------------------------------------------===//

/// Loads row \p Row of an R×C tile into a \p Lanes-wide register; columns
/// beyond C are zero-filled (the Loader's packing of leftover tiles).
cir::RegId loadTileRow(cir::Builder &B, TileRef T, unsigned Row, unsigned C,
                       unsigned Lanes);

/// Loads all R rows of the tile (each zero-padded to \p Lanes).
std::vector<cir::RegId> loadTileRows(cir::Builder &B, TileRef T, unsigned R,
                                     unsigned C, unsigned Lanes);

/// Stores the first \p C lanes of \p V into row \p Row of the tile (the
/// Storer's unpacking of leftover tiles).
void storeTileRow(cir::Builder &B, cir::RegId V, TileRef T, unsigned Row,
                  unsigned C);

/// Loads column \p Col (R elements, stride RowStride) zero-padded to
/// \p Lanes — a vertical memory map (§3.1).
cir::RegId loadTileCol(cir::Builder &B, TileRef T, unsigned Col, unsigned R,
                       unsigned Lanes);

/// Stores the first \p R lanes of \p V into column \p Col of the tile.
void storeTileCol(cir::Builder &B, cir::RegId V, TileRef T, unsigned Col,
                  unsigned R);

/// Loads the contiguous K-element (column-)vector tile at \p T zero-padded
/// to \p Lanes.
cir::RegId loadVec(cir::Builder &B, TileRef T, unsigned K, unsigned Lanes);

/// Stores the first \p K lanes of \p V to the contiguous vector tile.
void storeVec(cir::Builder &B, cir::RegId V, TileRef T, unsigned K);

} // namespace isa
} // namespace lgen

#endif // LGEN_ISA_NUBLACS_H

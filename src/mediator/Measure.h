//===- Measure.h - Performance-measuring modules (§4.5) --------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance-measuring module interface of thesis §4.5
/// (Listing 4.1): Mediator ships one module per microarchitecture so
/// experiment code can count cycles without knowing how the counter is
/// read (RDTSC on x86, the cycle-count register on Cortex-A8/ARM1176, perf
/// on Cortex-A9). Here the per-device backends become pluggable
/// \c CycleSource implementations: the host TSC where available, a
/// steady-clock fallback, and a deterministic fake for tests.
///
/// Both halves of Listing 4.1 are provided: the bracketing
/// measurementStart/Stop API whose samples Mediator collects, and the
/// explicit startTsc/stopTsc API with overhead calibration.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MEDIATOR_MEASURE_H
#define LGEN_MEDIATOR_MEASURE_H

#include <cstdint>
#include <memory>
#include <vector>

namespace lgen {
namespace mediator {

/// A source of monotonically increasing cycle (or pseudo-cycle) counts.
class CycleSource {
public:
  virtual ~CycleSource();
  virtual uint64_t read() = 0;
};

/// Reads the host's time-stamp counter on x86-64; elsewhere falls back to
/// the steady clock (nanoseconds).
std::unique_ptr<CycleSource> makeHostCycleSource();

/// Deterministic source for tests: advances by a fixed step per read.
std::unique_ptr<CycleSource> makeFakeCycleSource(uint64_t Step);

/// The Listing 4.1 module, in both flavors.
class Measurement {
public:
  explicit Measurement(std::unique_ptr<CycleSource> Source);
  ~Measurement();

  /// measurement_init(): starts a measuring session.
  void init();
  /// measurement_start(): begins one sample.
  void start();
  /// measurement_stop(): ends the sample, recording its cycles.
  void stop();
  /// measurement_finish(): ends the session; samples stay readable.
  void finish();

  /// The recorded samples (what Mediator would return in the response).
  const std::vector<uint64_t> &samples() const { return Samples; }

  /// init_tsc(): calibrates the start/stop overhead.
  void initTsc();
  /// start_tsc(): returns the value to pass to stopTsc.
  uint64_t startTsc();
  /// stop_tsc(): cycles since \p Start, overhead-corrected.
  uint64_t stopTsc(uint64_t Start);
  /// get_tsc_overhead(): the calibrated start/stop overhead.
  uint64_t tscOverhead() const { return Overhead; }

private:
  std::unique_ptr<CycleSource> Source;
  std::vector<uint64_t> Samples;
  uint64_t Current = 0;
  uint64_t Overhead = 0;
  bool InSession = false;
  bool InSample = false;
};

} // namespace mediator
} // namespace lgen

#endif // LGEN_MEDIATOR_MEASURE_H

//===- Measure.cpp - Performance-measuring modules (§4.5) ------*- C++ -*-===//

#include "mediator/Measure.h"

#include "support/Support.h"

#include <algorithm>
#include <chrono>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

using namespace lgen;
using namespace lgen::mediator;

CycleSource::~CycleSource() = default;

namespace {

#if defined(__x86_64__)
class TscSource : public CycleSource {
public:
  uint64_t read() override { return __rdtsc(); }
};
#endif

class SteadyClockSource : public CycleSource {
public:
  uint64_t read() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

class FakeSource : public CycleSource {
public:
  explicit FakeSource(uint64_t Step) : Step(Step) {}
  uint64_t read() override { return Now += Step; }

private:
  uint64_t Step;
  uint64_t Now = 0;
};

} // namespace

std::unique_ptr<CycleSource> mediator::makeHostCycleSource() {
#if defined(__x86_64__)
  return std::make_unique<TscSource>();
#else
  return std::make_unique<SteadyClockSource>();
#endif
}

std::unique_ptr<CycleSource> mediator::makeFakeCycleSource(uint64_t Step) {
  return std::make_unique<FakeSource>(Step);
}

Measurement::Measurement(std::unique_ptr<CycleSource> Source)
    : Source(std::move(Source)) {
  assert(this->Source && "measurement needs a cycle source");
}

Measurement::~Measurement() = default;

void Measurement::init() {
  Samples.clear();
  InSession = true;
  InSample = false;
  initTsc();
}

void Measurement::start() {
  assert(InSession && "measurement_start before measurement_init");
  assert(!InSample && "nested measurement_start");
  InSample = true;
  Current = Source->read();
}

void Measurement::stop() {
  uint64_t End = Source->read();
  assert(InSample && "measurement_stop without measurement_start");
  InSample = false;
  uint64_t Elapsed = End - Current;
  Samples.push_back(Elapsed > Overhead ? Elapsed - Overhead : 0);
}

void Measurement::finish() {
  assert(InSession && "measurement_finish before measurement_init");
  assert(!InSample && "measurement_finish inside a sample");
  InSession = false;
}

void Measurement::initTsc() {
  // Calibrate the empty start/stop bracket, keeping the minimum of a few
  // trials (the classic TSC-overhead measurement).
  uint64_t Best = UINT64_MAX;
  for (int Trial = 0; Trial != 8; ++Trial) {
    uint64_t S = Source->read();
    uint64_t E = Source->read();
    Best = std::min(Best, E - S);
  }
  Overhead = Best == UINT64_MAX ? 0 : Best;
}

uint64_t Measurement::startTsc() { return Source->read(); }

uint64_t Measurement::stopTsc(uint64_t Start) {
  uint64_t Elapsed = Source->read() - Start;
  return Elapsed > Overhead ? Elapsed - Overhead : 0;
}

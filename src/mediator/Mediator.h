//===- Mediator.h - Experiment-execution middleware (Ch. 4) ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mediator (thesis Chapter 4): a middleware that coordinates the execution
/// of performance experiments on multiple devices by multiple users. This
/// reimplementation keeps the architecture of Fig. 4.1 — a listener entry
/// point, one FIFO queue plus one worker thread per (device, core), a
/// results cache with expiry — and the JSON request/response contract of
/// Appendix A, with two substitutions: requests arrive as strings through a
/// function call rather than HTTP, and "devices" are in-process simulated
/// targets reached through a registered executor rather than SSH.
///
/// Guarantees preserved from the thesis (§4.2–§4.3):
///  * at most one experiment runs at any moment per core per device;
///  * experiments with several admissible cores go to the least-loaded one;
///  * experiments on different cores/devices run concurrently;
///  * synchronous requests block until the results are ready; asynchronous
///    requests return a job id that clients poll (Figs. 4.2/4.3);
///  * cached results expire after a configurable time.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MEDIATOR_MEDIATOR_H
#define LGEN_MEDIATOR_MEDIATOR_H

#include "mediator/Json.h"
#include "support/Support.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lgen {
namespace mediator {

/// Mediator API error codes (Table A.5).
enum class ErrorCode {
  BadRequest = 400,
  SSHAuthenticationError = 401,
  InstructionExecutionError = 405,
  SSHError = 406,
  InstructionTimeoutError = 408,
  InternalError = 500,
};

const char *errorReason(ErrorCode Code);

/// Builds the error object of Table A.2/A.5.
json::Value makeError(ErrorCode Code, const std::string &Message);

/// Executes one experiment on a simulated device core and returns the
/// per-experiment results object (the "results" property of Table A.2).
/// Throwing std::runtime_error reports an InstructionExecutionError.
using DeviceExecutor =
    std::function<json::Value(const json::Value &Experiment, unsigned Core)>;

struct MediatorConfig {
  /// Results older than this are purged from the cache (§4.3).
  std::chrono::milliseconds ResultsExpiry = std::chrono::minutes(5);
};

class Mediator {
public:
  explicit Mediator(MediatorConfig Config = MediatorConfig());
  ~Mediator();

  Mediator(const Mediator &) = delete;
  Mediator &operator=(const Mediator &) = delete;

  /// Registers a device with \p NumCores cores; experiments naming
  /// \p Hostname are dispatched to \p Exec.
  void registerDevice(const std::string &Hostname, unsigned NumCores,
                      DeviceExecutor Exec);

  /// Entry point for a *new job request* (Table A.1). Returns the HTTP
  /// body Mediator would send: a job-results response for synchronous
  /// requests, a job-status response (SUBMITTED) for asynchronous ones,
  /// or an error response for malformed input.
  std::string handleNewJobRequest(const std::string &RequestJson);

  /// Entry point for a *job results request* (Table A.3); returns a
  /// job-status response (Table A.4) with jobState PENDING/FINISHED/
  /// NOT_FOUND.
  std::string handleJobResultsRequest(const std::string &RequestJson);

  /// Current number of queued-or-running experiments on a core (tests).
  size_t coreLoad(const std::string &Hostname, unsigned Core) const;

  /// Blocks until every queue is idle (tests and shutdown).
  void drain();

private:
  struct CoreWorker;
  struct DeviceState;
  struct JobRecord;

  std::string submitJob(const json::Value &Request, bool Async);
  void purgeExpired();

  MediatorConfig Config;
  mutable std::mutex Mutex;
  std::condition_variable JobDone;
  std::map<std::string, std::unique_ptr<DeviceState>> Devices;
  std::map<std::string, std::shared_ptr<JobRecord>> Jobs;
  Rng IdRng;
  bool ShuttingDown = false;
};

} // namespace mediator
} // namespace lgen

#endif // LGEN_MEDIATOR_MEDIATOR_H

//===- Mediator.h - Experiment-execution middleware (Ch. 4) ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mediator (thesis Chapter 4): a middleware that coordinates the execution
/// of performance experiments on multiple devices by multiple users. This
/// reimplementation keeps the architecture of Fig. 4.1 — a listener entry
/// point, one FIFO queue plus one worker thread per (device, core), a
/// results cache with expiry — and the JSON request/response contract of
/// Appendix A. "Devices" are in-process targets reached through a
/// registered executor rather than SSH; requests arrive either through
/// \c handle() (in-process) or over HTTP through the compile service
/// (`src/service/`), which fronts the same dispatch.
///
/// Since protocol v1 the entry point is *routed*: \c handle() takes a
/// versioned envelope `{"v":1, "method":..., "params":...}` (see
/// Protocol.h) and routes internally to the job.submit / job.results
/// handlers. The historical per-endpoint string methods
/// \c handleNewJobRequest / \c handleJobResultsRequest survive as thin
/// deprecated shims over the router, byte-compatible with their old
/// responses.
///
/// Guarantees preserved from the thesis (§4.2–§4.3):
///  * at most one experiment runs at any moment per core per device;
///  * experiments with several admissible cores go to the least-loaded one;
///  * experiments on different cores/devices run concurrently;
///  * synchronous requests block until the results are ready; asynchronous
///    requests return a job id that clients poll (Figs. 4.2/4.3);
///  * cached results expire after a configurable time.
///
/// Service-era addition: jobs are scoped to the envelope's session — a
/// job.results request only sees jobs its own session submitted. The shims
/// run in the "" session, so legacy callers share one namespace exactly as
/// before.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MEDIATOR_MEDIATOR_H
#define LGEN_MEDIATOR_MEDIATOR_H

#include "mediator/Protocol.h"
#include "support/Json.h"
#include "support/Support.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lgen {
namespace mediator {

/// Executes one experiment on a simulated device core and returns the
/// per-experiment results object (the "results" property of Table A.2).
/// Throwing std::runtime_error reports an InstructionExecutionError.
using DeviceExecutor =
    std::function<json::Value(const json::Value &Experiment, unsigned Core)>;

struct MediatorConfig {
  /// Results older than this are purged from the cache (§4.3).
  std::chrono::milliseconds ResultsExpiry = std::chrono::minutes(5);
};

class Mediator {
public:
  explicit Mediator(MediatorConfig Config = MediatorConfig());
  ~Mediator();

  Mediator(const Mediator &) = delete;
  Mediator &operator=(const Mediator &) = delete;

  /// Registers a device with \p NumCores cores; experiments naming
  /// \p Hostname are dispatched to \p Exec.
  void registerDevice(const std::string &Hostname, unsigned NumCores,
                      DeviceExecutor Exec);

  /// The routed protocol-v1 entry point: parses the envelope, routes on
  /// its method, and returns the response envelope. Never throws — every
  /// failure becomes an error response.
  ///
  /// Methods served: "job.submit" (params = {experiments, async?}) and
  /// "job.results" (params = {jobID}); anything else answers
  /// MethodNotFound.
  std::string handle(const std::string &RequestJson);

  /// Same, over parsed values — the service front end calls this to avoid
  /// a re-serialize round trip.
  json::Value handle(const json::Value &Request);

  /// Deprecated pre-v1 entry point for a *new job request* (Table A.1):
  /// a thin shim over handle(job.submit) that unwraps the envelope back
  /// into the historical response bodies ({"apiVersion":"1.0", ...}).
  /// New code should send a job.submit envelope through handle().
  std::string handleNewJobRequest(const std::string &RequestJson);

  /// Deprecated pre-v1 entry point for a *job results request*
  /// (Table A.3); shim over handle(job.results). New code should send a
  /// job.results envelope through handle().
  std::string handleJobResultsRequest(const std::string &RequestJson);

  /// Current number of queued-or-running experiments on a core (tests).
  size_t coreLoad(const std::string &Hostname, unsigned Core) const;

  /// Blocks until every queue is idle (tests and shutdown).
  void drain();

private:
  struct CoreWorker;
  struct DeviceState;
  struct JobRecord;

  /// Routes a parsed envelope to its handler; throws ApiError on any
  /// rejection (unknown method, bad params, unknown device, ...).
  json::Value route(const Envelope &E);
  json::Value jobSubmit(const Envelope &E);
  json::Value jobResults(const Envelope &E);
  json::Value submitJob(const json::Value &Request, bool Async,
                        const std::string &Session);
  void purgeExpired();

  MediatorConfig Config;
  mutable std::mutex Mutex;
  std::condition_variable JobDone;
  std::map<std::string, std::unique_ptr<DeviceState>> Devices;
  std::map<std::string, std::shared_ptr<JobRecord>> Jobs;
  Rng IdRng;
  bool ShuttingDown = false;
};

} // namespace mediator
} // namespace lgen

#endif // LGEN_MEDIATOR_MEDIATOR_H

//===- Protocol.cpp - Mediator protocol v1: envelope + errors -------------===//

#include "mediator/Protocol.h"

#include "support/Support.h"

using namespace lgen;
using namespace lgen::mediator;
using json::Object;
using json::Value;

//===----------------------------------------------------------------------===//
// Error table
//===----------------------------------------------------------------------===//

namespace {

// The single source of truth for every error consumer: wire name, HTTP
// status answered by the service, and whether the client should retry.
const ErrorInfo ErrorTable[] = {
    {ErrorCode::BadRequest, "BadRequest", 400, false},
    {ErrorCode::SSHAuthenticationError, "SSHAuthenticationError", 401, false},
    {ErrorCode::MethodNotFound, "MethodNotFound", 404, false},
    {ErrorCode::InstructionExecutionError, "InstructionExecutionError", 405,
     false},
    {ErrorCode::SSHError, "SSHError", 406, false},
    {ErrorCode::InstructionTimeoutError, "InstructionTimeoutError", 408, true},
    {ErrorCode::TooManyRequests, "TooManyRequests", 429, true},
    {ErrorCode::InternalError, "InternalError", 500, false},
    {ErrorCode::UnsupportedVersion, "UnsupportedVersion", 505, false},
};

} // namespace

const ErrorInfo &mediator::errorInfo(ErrorCode Code) {
  for (const ErrorInfo &I : ErrorTable)
    if (I.Code == Code)
      return I;
  LGEN_UNREACHABLE("unknown error code");
}

const char *mediator::errorName(ErrorCode Code) {
  return errorInfo(Code).Name;
}

const char *mediator::errorReason(ErrorCode Code) {
  return errorInfo(Code).Name;
}

int mediator::errorHttpStatus(ErrorCode Code) {
  return errorInfo(Code).HttpStatus;
}

bool mediator::errorRetryable(ErrorCode Code) {
  return errorInfo(Code).Retryable;
}

bool mediator::errorFromCode(int64_t Code, ErrorCode &Out) {
  for (const ErrorInfo &I : ErrorTable)
    if (static_cast<int64_t>(I.Code) == Code) {
      Out = I.Code;
      return true;
    }
  return false;
}

Value mediator::makeError(ErrorCode Code, const std::string &Message) {
  const ErrorInfo &I = errorInfo(Code);
  Object E;
  E["code"] = static_cast<int64_t>(Code);
  E["name"] = I.Name;
  E["reason"] = I.Name; // deprecated alias, pre-v1 clients read this
  E["message"] = Message;
  E["retryable"] = I.Retryable;
  return Value(std::move(E));
}

//===----------------------------------------------------------------------===//
// Envelope
//===----------------------------------------------------------------------===//

bool mediator::parseEnvelope(const Value &Request, Envelope &Out,
                             ErrorCode &Code, std::string &Message) {
  Out = Envelope();
  if (!Request.isObject()) {
    Code = ErrorCode::BadRequest;
    Message = "request must be a JSON object envelope";
    return false;
  }
  // Recover the id first so even rejections can echo it.
  Out.Id = Request.getString("id");
  Out.Session = Request.getString("session");

  const Value &V = Request["v"];
  if (!V.isNumber()) {
    Code = ErrorCode::BadRequest;
    Message = "envelope is missing the numeric protocol version 'v'";
    return false;
  }
  Out.V = static_cast<int64_t>(V.asNumber());
  if (Out.V != ProtocolVersion) {
    Code = ErrorCode::UnsupportedVersion;
    Message = "protocol version " + std::to_string(Out.V) +
              " is not supported (this server speaks v" +
              std::to_string(ProtocolVersion) + ")";
    return false;
  }
  Out.Method = Request.getString("method");
  if (Out.Method.empty()) {
    Code = ErrorCode::BadRequest;
    Message = "envelope is missing 'method'";
    return false;
  }
  Out.Params = Request["params"];
  return true;
}

Value mediator::makeResultResponse(const Envelope &E, Value Result) {
  Object R;
  R["v"] = ProtocolVersion;
  if (!E.Id.empty())
    R["id"] = E.Id;
  R["result"] = std::move(Result);
  return Value(std::move(R));
}

Value mediator::makeErrorResponse(const Envelope *E, ErrorCode Code,
                                  const std::string &Message) {
  Object R;
  R["v"] = ProtocolVersion;
  if (E && !E->Id.empty())
    R["id"] = E->Id;
  R["error"] = makeError(Code, Message);
  return Value(std::move(R));
}

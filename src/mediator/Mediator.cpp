//===- Mediator.cpp - Experiment-execution middleware (Ch. 4) -------------===//

#include "mediator/Mediator.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

using namespace lgen;
using namespace lgen::mediator;
using json::Array;
using json::Object;
using json::Value;

//===----------------------------------------------------------------------===//
// Internal state
//===----------------------------------------------------------------------===//

namespace {

struct Task {
  std::string JobId;
  size_t ExpIndex = 0;
  Value Experiment;
};

} // namespace

struct Mediator::JobRecord {
  std::string Id;
  std::string Session; ///< Only this session's job.results sees the job.
  size_t Total = 0;
  size_t Done = 0;
  std::vector<Value> Results;
  bool Finished = false;
  std::chrono::steady_clock::time_point FinishTime;
};

struct Mediator::CoreWorker {
  std::deque<Task> Queue;
  bool Busy = false;
  std::condition_variable WakeUp;
  std::thread Thread;
};

struct Mediator::DeviceState {
  std::string Hostname;
  DeviceExecutor Exec;
  std::vector<std::unique_ptr<CoreWorker>> Cores;
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Mediator::Mediator(MediatorConfig Config)
    : Config(Config), IdRng(0xfeedfacecafef00dULL) {}

Mediator::~Mediator() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    for (auto &[Name, Dev] : Devices)
      for (auto &Core : Dev->Cores)
        Core->WakeUp.notify_all();
  }
  for (auto &[Name, Dev] : Devices)
    for (auto &Core : Dev->Cores)
      if (Core->Thread.joinable())
        Core->Thread.join();
}

void Mediator::registerDevice(const std::string &Hostname, unsigned NumCores,
                              DeviceExecutor Exec) {
  assert(NumCores > 0 && "device needs at least one core");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Dev = std::make_unique<DeviceState>();
  Dev->Hostname = Hostname;
  Dev->Exec = std::move(Exec);
  DeviceState *DevPtr = Dev.get();
  for (unsigned C = 0; C != NumCores; ++C) {
    auto Core = std::make_unique<CoreWorker>();
    CoreWorker *CorePtr = Core.get();
    // One worker thread per core guarantees mutual exclusion per core
    // (§4.3); the thread owns the pop-execute-record cycle.
    Core->Thread = std::thread([this, DevPtr, CorePtr, C] {
      std::unique_lock<std::mutex> Lock(Mutex);
      while (true) {
        CorePtr->WakeUp.wait(Lock, [&] {
          return ShuttingDown || !CorePtr->Queue.empty();
        });
        if (ShuttingDown)
          return;
        Task T = std::move(CorePtr->Queue.front());
        CorePtr->Queue.pop_front();
        CorePtr->Busy = true;
        DeviceExecutor Exec = DevPtr->Exec;
        Lock.unlock();

        Value Result;
        try {
          Result = Exec(T.Experiment, C);
        } catch (const std::exception &Ex) {
          Object R;
          R["error"] =
              makeError(ErrorCode::InstructionExecutionError, Ex.what());
          Result = Value(std::move(R));
        }
        if (Result.isObject()) {
          Object &RO = Result.asObject();
          if (!RO.count("deviceHostname"))
            RO["deviceHostname"] = DevPtr->Hostname;
        }

        Lock.lock();
        CorePtr->Busy = false;
        auto It = Jobs.find(T.JobId);
        if (It != Jobs.end()) {
          JobRecord &J = *It->second;
          J.Results[T.ExpIndex] = std::move(Result);
          if (++J.Done == J.Total) {
            J.Finished = true;
            J.FinishTime = std::chrono::steady_clock::now();
            JobDone.notify_all();
          }
        }
      }
    });
    Dev->Cores.push_back(std::move(Core));
  }
  Devices[Hostname] = std::move(Dev);
}

//===----------------------------------------------------------------------===//
// Routed dispatch (protocol v1)
//===----------------------------------------------------------------------===//

std::string Mediator::handle(const std::string &RequestJson) {
  Value Request;
  std::string Err;
  if (!json::parse(RequestJson, Request, Err))
    return makeErrorResponse(nullptr, ErrorCode::BadRequest,
                             "malformed JSON request: " + Err)
        .serialize();
  return handle(Request).serialize();
}

Value Mediator::handle(const Value &Request) {
  Envelope E;
  ErrorCode Code;
  std::string Message;
  if (!parseEnvelope(Request, E, Code, Message))
    return makeErrorResponse(&E, Code, Message);
  try {
    return makeResultResponse(E, route(E));
  } catch (const ApiError &AE) {
    return makeErrorResponse(&E, AE.code(), AE.what());
  } catch (const std::exception &Ex) {
    return makeErrorResponse(&E, ErrorCode::InternalError, Ex.what());
  }
}

Value Mediator::route(const Envelope &E) {
  if (E.Method == "job.submit")
    return jobSubmit(E);
  if (E.Method == "job.results")
    return jobResults(E);
  throw ApiError(ErrorCode::MethodNotFound,
                 "unknown method '" + E.Method + "'");
}

Value Mediator::jobSubmit(const Envelope &E) {
  const Value &Params = E.Params;
  if (!Params.isObject())
    throw ApiError(ErrorCode::BadRequest,
                   "job.submit params must be an object");
  const Value &Experiments = Params["experiments"];
  if (!Experiments.isArray() || Experiments.asArray().empty())
    throw ApiError(ErrorCode::BadRequest,
                   "request must contain a non-empty 'experiments' array");
  // Preliminary checks (Fig. 4.3): device names and affinities.
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const Value &Exp : Experiments.asArray()) {
      std::string Host = Exp["device"].getString("hostname");
      auto It = Devices.find(Host);
      if (It == Devices.end())
        throw ApiError(ErrorCode::SSHError, "unknown device '" + Host + "'");
      const Value &Affinity = Exp["device"]["affinity"];
      if (Affinity.isArray())
        for (const Value &A : Affinity.asArray())
          if (!A.isNumber() || A.asNumber() < 0 ||
              A.asNumber() >= It->second->Cores.size())
            throw ApiError(ErrorCode::BadRequest,
                           "invalid cpu affinity for device '" + Host + "'");
    }
  }
  // Table A.1: async defaults to "True".
  bool Async = Params.getBool("async", true);
  return submitJob(Params, Async, E.Session);
}

Value Mediator::submitJob(const Value &Request, bool Async,
                          const std::string &Session) {
  const Array &Experiments = Request["experiments"].asArray();
  std::shared_ptr<JobRecord> Job;
  std::string JobId;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    purgeExpired();
    std::ostringstream IdStream;
    for (int I = 0; I != 4; ++I) {
      IdStream << std::hex << IdRng.next();
    }
    JobId = IdStream.str();
    Job = std::make_shared<JobRecord>();
    Job->Id = JobId;
    Job->Session = Session;
    Job->Total = Experiments.size();
    Job->Results.resize(Experiments.size());
    Jobs[JobId] = Job;

    for (size_t I = 0; I != Experiments.size(); ++I) {
      const Value &Exp = Experiments[I];
      DeviceState &Dev = *Devices.at(Exp["device"].getString("hostname"));
      // Admissible cores: the affinity list, or {0} by default (Table A.1).
      std::vector<unsigned> Cores;
      const Value &Affinity = Exp["device"]["affinity"];
      if (Affinity.isArray() && !Affinity.asArray().empty())
        for (const Value &A : Affinity.asArray())
          Cores.push_back(static_cast<unsigned>(A.asNumber()));
      else
        Cores.push_back(0);
      // Load balancing (§4.3): the admissible core with the least pending
      // work.
      unsigned Best = Cores[0];
      size_t BestLoad = SIZE_MAX;
      for (unsigned C : Cores) {
        CoreWorker &W = *Dev.Cores[C];
        size_t Load = W.Queue.size() + (W.Busy ? 1 : 0);
        if (Load < BestLoad) {
          BestLoad = Load;
          Best = C;
        }
      }
      Dev.Cores[Best]->Queue.push_back(Task{JobId, I, Exp});
      Dev.Cores[Best]->WakeUp.notify_one();
    }

    if (Async) {
      Object R;
      R["jobID"] = JobId;
      R["jobState"] = "SUBMITTED";
      return Value(std::move(R));
    }

    // Synchronous processing (Fig. 4.2): keep the "connection" open until
    // the job finishes.
    JobDone.wait(Lock, [&] { return Job->Finished; });
    Object R;
    R["data"] = Value(Array(Job->Results.begin(), Job->Results.end()));
    Jobs.erase(JobId);
    return Value(std::move(R));
  }
}

Value Mediator::jobResults(const Envelope &E) {
  if (!E.Params.isObject())
    throw ApiError(ErrorCode::BadRequest,
                   "job.results params must be an object");
  std::string JobId = E.Params.getString("jobID");
  if (JobId.empty())
    throw ApiError(ErrorCode::BadRequest, "missing 'jobID'");

  std::lock_guard<std::mutex> Lock(Mutex);
  purgeExpired();
  Object R;
  R["jobID"] = JobId;
  auto It = Jobs.find(JobId);
  // A job belonging to another session is indistinguishable from a
  // nonexistent one — session isolation must not leak job existence.
  if (It == Jobs.end() || It->second->Session != E.Session) {
    R["jobState"] = "NOT_FOUND";
    return Value(std::move(R));
  }
  JobRecord &J = *It->second;
  if (!J.Finished) {
    R["jobState"] = "PENDING";
    return Value(std::move(R));
  }
  R["jobState"] = "FINISHED";
  R["data"] = Value(Array(J.Results.begin(), J.Results.end()));
  return Value(std::move(R));
}

//===----------------------------------------------------------------------===//
// Deprecated per-endpoint shims
//===----------------------------------------------------------------------===//

namespace {

/// The historical response body: the routed handler's result object with
/// the pre-v1 "apiVersion" stamp re-added.
std::string legacyBody(Value Result) {
  Result.asObject()["apiVersion"] = "1.0";
  return Result.serialize();
}

std::string legacyError(ErrorCode Code, const std::string &Message) {
  Object R;
  R["apiVersion"] = "1.0";
  R["error"] = makeError(Code, Message);
  return Value(std::move(R)).serialize();
}

} // namespace

std::string Mediator::handleNewJobRequest(const std::string &RequestJson) {
  Value Request;
  std::string Err;
  if (!json::parse(RequestJson, Request, Err) || !Request.isObject())
    return legacyError(ErrorCode::BadRequest,
                       "malformed JSON request: " + Err);
  Envelope E;
  E.V = ProtocolVersion;
  E.Method = "job.submit";
  E.Params = Request;
  try {
    return legacyBody(route(E));
  } catch (const ApiError &AE) {
    return legacyError(AE.code(), AE.what());
  } catch (const std::exception &Ex) {
    return legacyError(ErrorCode::InternalError, Ex.what());
  }
}

std::string
Mediator::handleJobResultsRequest(const std::string &RequestJson) {
  Value Request;
  std::string Err;
  if (!json::parse(RequestJson, Request, Err) || !Request.isObject())
    return legacyError(ErrorCode::BadRequest,
                       "malformed JSON request: " + Err);
  Envelope E;
  E.V = ProtocolVersion;
  E.Method = "job.results";
  E.Params = Request;
  try {
    return legacyBody(route(E));
  } catch (const ApiError &AE) {
    return legacyError(AE.code(), AE.what());
  } catch (const std::exception &Ex) {
    return legacyError(ErrorCode::InternalError, Ex.what());
  }
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

size_t Mediator::coreLoad(const std::string &Hostname, unsigned Core) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Devices.find(Hostname);
  if (It == Devices.end() || Core >= It->second->Cores.size())
    return 0;
  const CoreWorker &W = *It->second->Cores[Core];
  return W.Queue.size() + (W.Busy ? 1 : 0);
}

void Mediator::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock, [&] {
    for (const auto &[Name, Dev] : Devices)
      for (const auto &Core : Dev->Cores)
        if (Core->Busy || !Core->Queue.empty())
          return false;
    return true;
  });
}

void Mediator::purgeExpired() {
  auto Now = std::chrono::steady_clock::now();
  for (auto It = Jobs.begin(); It != Jobs.end();) {
    if (It->second->Finished &&
        Now - It->second->FinishTime > Config.ResultsExpiry)
      It = Jobs.erase(It);
    else
      ++It;
  }
}

//===- Protocol.h - Mediator protocol v1: envelope + errors ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned request/response protocol shared by the in-process
/// Mediator API and the compile service's HTTP front end. Every request is
/// a JSON *envelope*:
///
/// \code{.json}
/// {"v": 1, "method": "job.submit", "id": "c-42", "session": "alice",
///  "params": { ... }}
/// \endcode
///
///  * \c v        — protocol version; this library speaks exactly 1.
///  * \c method   — dotted method name routed by the receiver
///                  (job.submit, job.results, compile.submit, ...).
///  * \c id       — optional client correlation id, echoed verbatim.
///  * \c session  — optional session scope; jobs are visible only to the
///                  session that submitted them ("" is the shared legacy
///                  session the deprecated per-endpoint shims use).
///  * \c params   — method parameters (object; may be absent).
///
/// Responses mirror the envelope:
///
/// \code{.json}
/// {"v": 1, "id": "c-42", "result": { ... }}
/// {"v": 1, "id": "c-42",
///  "error": {"code": 429, "name": "TooManyRequests",
///            "message": "...", "retryable": true}}
/// \endcode
///
/// The error model is one table (\c errorInfo): every \c ErrorCode maps to
/// a stable name, an HTTP status (what the service front end answers), and
/// a retryable bit (true when the client should back off and resend —
/// admission-control rejections and timeouts; false for malformed input
/// and execution failures). \c makeError is the only constructor of error
/// objects anywhere in the code base.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MEDIATOR_PROTOCOL_H
#define LGEN_MEDIATOR_PROTOCOL_H

#include "support/Json.h"

#include <stdexcept>
#include <string>

namespace lgen {
namespace mediator {

/// The protocol version this library implements.
constexpr int64_t ProtocolVersion = 1;

/// Mediator API error codes. The thesis codes (Table A.5) plus the
/// service-era additions; values double as the HTTP status the compile
/// service maps each error to (see errorInfo).
enum class ErrorCode {
  BadRequest = 400,
  SSHAuthenticationError = 401,
  MethodNotFound = 404,
  InstructionExecutionError = 405,
  SSHError = 406,
  InstructionTimeoutError = 408,
  TooManyRequests = 429,
  InternalError = 500,
  UnsupportedVersion = 505,
};

/// One row of the error table: everything every consumer needs, in one
/// place — the envelope emitter, the deprecated shims, and the HTTP status
/// mapping all read this.
struct ErrorInfo {
  ErrorCode Code;
  const char *Name; ///< Stable wire name ("TooManyRequests").
  int HttpStatus;   ///< Status the service front end answers with.
  bool Retryable;   ///< Client should back off and resend.
};

/// The table row for \p Code.
const ErrorInfo &errorInfo(ErrorCode Code);

/// Stable wire name of \p Code ("BadRequest", "TooManyRequests", ...).
const char *errorName(ErrorCode Code);

/// Deprecated alias of errorName — the pre-protocol-v1 field was called
/// "reason"; emitted alongside "name" for old clients.
const char *errorReason(ErrorCode Code);

/// HTTP status the service answers for \p Code.
int errorHttpStatus(ErrorCode Code);

/// True when a client should back off and retry the identical request.
bool errorRetryable(ErrorCode Code);

/// Reverse lookup from a numeric wire code; false when \p Code is not in
/// the table.
bool errorFromCode(int64_t Code, ErrorCode &Out);

/// Builds the one error object of the protocol:
/// {code, name, reason (deprecated alias), message, retryable}.
json::Value makeError(ErrorCode Code, const std::string &Message);

/// Thrown by request handlers; the envelope layer turns it into an error
/// response. Carrying the code in an exception keeps handler signatures
/// returning plain result values.
class ApiError : public std::runtime_error {
public:
  ApiError(ErrorCode Code, const std::string &Message)
      : std::runtime_error(Message), Code(Code) {}
  ErrorCode code() const { return Code; }

private:
  ErrorCode Code;
};

/// A parsed request envelope.
struct Envelope {
  int64_t V = 0;
  std::string Method;
  std::string Id;      ///< "" when the client sent none.
  std::string Session; ///< "" = legacy shared session.
  json::Value Params;  ///< Null when absent.
};

/// Parses \p Request into \p Out. On failure returns false with \p Code /
/// \p Message describing the rejection (BadRequest for structural
/// problems, UnsupportedVersion for a v this library does not speak); Out
/// still carries whatever id could be recovered, so the error response can
/// echo it.
bool parseEnvelope(const json::Value &Request, Envelope &Out, ErrorCode &Code,
                   std::string &Message);

/// Builds {"v":1, "id":..., "result": Result}; id omitted when empty.
json::Value makeResultResponse(const Envelope &E, json::Value Result);

/// Builds {"v":1, "id":..., "error": makeError(Code, Message)}. \p E may
/// be null when not even an envelope could be parsed.
json::Value makeErrorResponse(const Envelope *E, ErrorCode Code,
                              const std::string &Message);

} // namespace mediator
} // namespace lgen

#endif // LGEN_MEDIATOR_PROTOCOL_H

//===- Json.h - Compatibility forward to support/Json.h --------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deprecated location. The JSON layer started life inside Mediator and
/// was promoted to support/Json.h when BenchJson, Trace export, Metrics
/// snapshots, KernelCache persistence, and the compile service all grew
/// their own users. Include "support/Json.h" directly in new code; this
/// header stays so existing includes keep compiling.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MEDIATOR_JSON_H
#define LGEN_MEDIATOR_JSON_H

#include "support/Json.h"

#endif // LGEN_MEDIATOR_JSON_H

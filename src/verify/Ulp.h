//===- Ulp.h - ULP-based float comparison for verification -----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Units-in-the-last-place comparison between a compiled kernel's output
/// and the naive reference evaluation. Absolute-ε thresholds (the thesis'
/// §5.1.4 methodology, epsilonFor in the tests) are kept as a floor for
/// catastrophic cancellation near zero; the ULP distance adds a
/// scale-aware criterion for large-magnitude outputs, where an absolute
/// threshold degenerates into "anything goes". The tolerances per
/// operation are recorded in DESIGN.md ("ULP tolerances").
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_VERIFY_ULP_H
#define LGEN_VERIFY_ULP_H

#include "ll/Reference.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace lgen {
namespace verify {

/// Distance between two floats in units in the last place: the number of
/// representable floats strictly between them (0 for equality, including
/// -0 vs +0). NaNs and infinity/finite mismatches map to INT64_MAX.
inline int64_t ulpDistance(float A, float B) {
  if (std::isnan(A) || std::isnan(B))
    return std::numeric_limits<int64_t>::max();
  if (std::isinf(A) || std::isinf(B))
    return A == B ? 0 : std::numeric_limits<int64_t>::max();
  // Map the float ordering onto a monotone integer ordering: reinterpret
  // the bits and flip negative values so that adjacent floats differ by 1.
  auto Ordered = [](float F) {
    int32_t I;
    std::memcpy(&I, &F, sizeof(F));
    return I < 0 ? int64_t(std::numeric_limits<int32_t>::min()) - I
                 : int64_t(I);
  };
  int64_t D = Ordered(A) - Ordered(B);
  return D < 0 ? -D : D;
}

/// Worst element-wise deviation between two equally-shaped matrices.
struct UlpReport {
  int64_t MaxUlps = 0;    ///< Largest per-element ULP distance.
  float MaxAbsDiff = 0.0; ///< Largest per-element absolute difference.
  size_t WorstIndex = 0;  ///< Row-major index of the worst ULP element.
  float Expected = 0.0;   ///< Reference value at WorstIndex.
  float Actual = 0.0;     ///< Kernel value at WorstIndex.
};

inline UlpReport compareValues(const ll::MatrixValue &Expected,
                               const ll::MatrixValue &Actual) {
  assert(Expected.Rows == Actual.Rows && Expected.Cols == Actual.Cols &&
         "shape mismatch in comparison");
  UlpReport Rep;
  for (size_t I = 0; I != Expected.Data.size(); ++I) {
    int64_t U = ulpDistance(Expected.Data[I], Actual.Data[I]);
    float D = std::fabs(Expected.Data[I] - Actual.Data[I]);
    if (D > Rep.MaxAbsDiff)
      Rep.MaxAbsDiff = D;
    if (U > Rep.MaxUlps) {
      Rep.MaxUlps = U;
      Rep.WorstIndex = I;
      Rep.Expected = Expected.Data[I];
      Rep.Actual = Actual.Data[I];
    }
  }
  return Rep;
}

/// Longest floating-point reduction chain the BLAC evaluates: the upper
/// bound on how far reassociation (vectorized partial sums, peeled
/// accumulation, HAdd trees) can legally move the result from the naive
/// left-to-right reference. Inner product dimensions and addition chains
/// both contribute.
int64_t maxReductionLength(const ll::Program &P);

/// The verification tolerance: a result passes if its absolute deviation
/// stays below the §5.1.4-style ε floor OR its ULP distance stays below
/// BaseUlps · maxReductionLength. Both knobs are documented in DESIGN.md.
struct Tolerance {
  float AbsFloor = 0.0;
  int64_t MaxUlps = 0;

  bool accepts(const UlpReport &Rep) const {
    return Rep.MaxAbsDiff <= AbsFloor || Rep.MaxUlps <= MaxUlps;
  }
};

/// Derives the tolerance for \p P. \p BaseUlps is the per-reduction-step
/// ULP allowance (default 16, see DESIGN.md).
Tolerance toleranceFor(const ll::Program &P, unsigned BaseUlps = 16);

} // namespace verify
} // namespace lgen

#endif // LGEN_VERIFY_ULP_H

//===- DiffCheck.h - Plan-space differential checking ----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential verification across the autotuner's whole search space.
/// The thesis validates only the kernel the search ultimately picks
/// (§5.1.4); a miscompile in any *losing* plan goes undetected until a
/// later search happens to pick it. The plan-space checker compiles a BLAC
/// under every tiling plan the autotuner enumerates — and under every
/// subset of the §3 optimizations (MVM split, alignment detection,
/// specialized ν-BLACs) — executes each variant through machine::Executor,
/// and compares every result against the ll::Reference evaluation under
/// the ULP tolerance model of Ulp.h.
///
/// Alignment-versioned kernels are additionally executed with misaligned
/// parameter bases, exercising the runtime dispatch of Listing 3.3 and the
/// executor's alignment faults.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_VERIFY_DIFFCHECK_H
#define LGEN_VERIFY_DIFFCHECK_H

#include "compiler/Compiler.h"
#include "verify/Ulp.h"

#include <string>
#include <vector>

namespace lgen {
namespace verify {

/// Which execution backends the checker runs each compiled variant on.
/// Simulated is the deterministic default. Native additionally compiles
/// every variant with the host toolchain and runs it for real, comparing
/// native output against the reference *and* against the simulated output
/// (the cross-check needs both backends, so Native implies Simulated; Both
/// is the explicit spelling of the same sweep). Hosts that cannot run a
/// target ISA, or lack a C compiler, record clean skips — never failures.
enum class ExecBackend { Simulated, Native, Both };

struct PlanSpaceOptions {
  /// Targets to sweep; the default covers an SSE-style (Atom/SSSE3) and a
  /// NEON-style (Cortex-A8) machine.
  std::vector<machine::UArch> Targets = {machine::UArch::Atom,
                                         machine::UArch::CortexA8};
  /// true: check every plan the autotuner enumerates (plus edge plans);
  /// false: only the winning plan, the thesis' original methodology.
  bool AllPlans = true;
  /// Sweep every subset of {NewMVM, AlignmentDetection, SpecializedNuBLACs}
  /// plus the §3.1 generic-memory-ops ablation; false checks only the base
  /// and full configurations.
  bool SweepOptSubsets = true;
  /// Random tiling plans drawn per configuration (SearchSamples).
  unsigned SearchSamples = 4;
  /// Seed for both the plan search and the input data.
  uint64_t Seed = 1;
  /// Independent random input sets executed per compiled variant.
  unsigned InputSets = 2;
  /// Per-reduction-step ULP allowance (see DESIGN.md).
  unsigned BaseUlps = 16;
  /// Also execute with misaligned parameter bases (element offset 1).
  bool Misaligned = true;
  /// Run the Σ-LL/C-IR invariant checkers on every variant as it compiles.
  bool VerifyIR = true;
  /// Fault-injection mode forwarded to the compiler (testing the tester).
  std::string Inject;
  /// Execution backend(s); see ExecBackend.
  ExecBackend Exec = ExecBackend::Simulated;
};

/// One detected divergence between a compiled variant and the reference.
struct Mismatch {
  std::string Target;  ///< Microarchitecture name.
  std::string Config;  ///< Optimization-subset description.
  std::string Plan;    ///< TilingPlan::str() of the failing plan.
  unsigned InputSet = 0;
  bool Misaligned = false;
  /// Which comparison diverged: "sim" (executor vs reference), "native"
  /// (host run vs reference), or "native-vs-sim" (the two backends
  /// disagreeing with each other).
  std::string Backend = "sim";
  UlpReport Report;    ///< Worst deviation observed.
  std::string Detail;  ///< Human-readable one-line description.
};

struct DiffResult {
  unsigned ConfigsChecked = 0;
  unsigned PlansChecked = 0;
  unsigned ExecutionsChecked = 0;
  /// Native runs actually compared (each counts one native-vs-reference
  /// plus one native-vs-sim comparison).
  unsigned NativeChecked = 0;
  /// Compiled variants whose native run was skipped because the host
  /// cannot run them (missing ISA or toolchain) — a clean skip, not a
  /// failure; NativeSkipReason keeps the first explanation for reporting.
  unsigned NativeSkips = 0;
  std::string NativeSkipReason;
  std::vector<Mismatch> Mismatches;

  bool ok() const { return Mismatches.empty(); }
  /// Multi-line report of every mismatch (empty string when ok).
  std::string str() const;
};

/// Runs the full differential sweep over \p P.
DiffResult checkProgram(const ll::Program &P, const PlanSpaceOptions &Opts);

/// Convenience: parses \p Source first; a parse failure is reported as a
/// single pseudo-mismatch (generated sources are expected to be valid).
DiffResult checkSource(const std::string &Source,
                       const PlanSpaceOptions &Opts);

} // namespace verify
} // namespace lgen

#endif // LGEN_VERIFY_DIFFCHECK_H

//===- Reduce.h - Delta-debugging reducer for failing BLACs ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a BLAC that fails some predicate (typically "the plan-space
/// differential checker finds a mismatch", see DiffCheck.h) to a minimal
/// failing reproducer, delta-debugging style: repeatedly propose smaller
/// candidate programs, keep the smallest one that still fails, stop when no
/// proposal fails anymore.
///
/// Three families of proposals are tried, largest reduction first:
///  * hoist — replace an operator node by one of its children;
///  * collapse — replace a whole subexpression by a fresh input operand of
///    the same shape (always shape-correct, guarantees progress);
///  * dim-shrink — remap every dimension value through a shrinking map
///    (d → ⌈d/2⌉, d → min(d,2), d → 1), which preserves all LL shape
///    equalities.
///
/// Candidates are validated by rendering to LL source and re-parsing, so
/// the parser's product classification (SMul vs Mul) and dimension
/// inference re-run from scratch — the reducer can never hand the pipeline
/// an expression tree the front end would not itself have produced.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_VERIFY_REDUCE_H
#define LGEN_VERIFY_REDUCE_H

#include "ll/AST.h"

#include <functional>
#include <string>

namespace lgen {
namespace verify {

/// Returns true when the given program still exhibits the failure being
/// chased. Must be deterministic for the reduction to converge.
using FailurePredicate = std::function<bool(const ll::Program &)>;

struct ReduceResult {
  ll::Program Reduced;       ///< Smallest failing program found.
  unsigned Steps = 0;        ///< Accepted shrinking steps.
  unsigned CandidatesTried = 0;
};

/// Number of operator nodes (non-Ref) in the right-hand side; the size
/// metric the reducer minimizes.
int64_t countOperators(const ll::Program &P);

/// Re-parseable LL source for \p P.
std::string programSource(const ll::Program &P);

/// Greedily shrinks \p P while \p Fails holds. \p P itself must fail.
/// \p MaxCandidates bounds total predicate evaluations (each may involve a
/// full differential sweep, so the bound is load-bearing).
ReduceResult reduce(const ll::Program &P, const FailurePredicate &Fails,
                    unsigned MaxCandidates = 500);

} // namespace verify
} // namespace lgen

#endif // LGEN_VERIFY_REDUCE_H

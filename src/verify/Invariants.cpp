//===- Invariants.cpp - Σ-LL and C-IR invariant checkers ------------------===//

#include "verify/Invariants.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace lgen;
using namespace lgen::verify;

namespace {

/// Diagnostics accumulator with a cap: a broken pass tends to violate the
/// same invariant thousands of times, and the first few tell the story.
class Diags {
public:
  static constexpr size_t Cap = 32;

  void add(const std::string &Msg) {
    if (Msgs.size() < Cap)
      Msgs.push_back(Msg);
    else if (Msgs.size() == Cap)
      Msgs.push_back("... further violations suppressed");
    ++Count;
  }
  bool capped() const { return Count > Cap; }
  std::vector<std::string> take() { return std::move(Msgs); }

private:
  std::vector<std::string> Msgs;
  size_t Count = 0;
};

//===----------------------------------------------------------------------===//
// Σ-LL checks
//===----------------------------------------------------------------------===//

/// Enumerating every summation-index valuation is exact and cheap for LGen
/// kernels (fixed-size BLACs ⇒ tiny trip products); beyond this budget the
/// enumeration-based checks are skipped rather than approximated.
constexpr int64_t MaxSigmaEnumeration = 1 << 22;

struct SigmaChecker {
  const sll::SProgram &P;
  Diags &D;
  /// Active valuation of summation indices (id → value).
  std::map<unsigned, int64_t> Vals;
  /// Per-matrix scatter coverage, for Output/InOut matrices.
  std::map<unsigned, std::vector<char>> Written;

  SigmaChecker(const sll::SProgram &P, Diags &D) : P(P), D(D) {
    for (unsigned M = 0; M != P.Mats.size(); ++M)
      if (P.Mats[M].Role == sll::MatRole::Output ||
          P.Mats[M].Role == sll::MatRole::InOut)
        Written[M] = std::vector<char>(P.Mats[M].numElements(), 0);
  }

  /// (op, valuation) pairs the enumeration would visit.
  int64_t enumerationSize(const sll::Nest &N, int64_t Mult) const {
    for (const sll::SumIdx &S : N.Sums)
      Mult *= std::max<int64_t>(1, S.tripCount());
    int64_t Total = 0;
    for (const sll::NestItem &It : N.Items) {
      if (It.Op)
        Total += Mult;
      else if (It.Child)
        Total += enumerationSize(*It.Child, Mult);
      if (Total > MaxSigmaEnumeration)
        return Total;
    }
    return Total;
  }

  void checkAccessShape(const sll::TileAccess &A, const char *What,
                        const char *Op) {
    if (A.Mat >= P.Mats.size()) {
      std::ostringstream OS;
      OS << "sll: " << Op << " " << What << " references matrix #" << A.Mat
         << " but only " << P.Mats.size() << " exist";
      D.add(OS.str());
      return;
    }
    if (A.TileRows < 1 || A.TileCols < 1)
      D.add(std::string("sll: ") + Op + " " + What +
            " has an empty tile extent");
  }

  /// Operator arity and tile-shape agreement, independent of index values.
  void checkOpShapes(const sll::TileOp &Op) {
    const char *Name = sll::opKindName(Op.Kind);
    checkAccessShape(Op.Out, "output", Name);
    for (const sll::TileAccess &A : Op.In)
      checkAccessShape(A, "input", Name);

    auto Arity = [&](size_t Want) {
      if (Op.In.size() != Want) {
        std::ostringstream OS;
        OS << "sll: " << Name << " expects " << Want << " input(s), has "
           << Op.In.size();
        D.add(OS.str());
        return false;
      }
      return true;
    };
    auto Shape = [&](const sll::TileAccess &A, unsigned R, unsigned C,
                     const char *What) {
      if (A.TileRows != R || A.TileCols != C) {
        std::ostringstream OS;
        OS << "sll: " << Name << " " << What << " tile is " << A.TileRows
           << "x" << A.TileCols << ", expected " << R << "x" << C;
        D.add(OS.str());
      }
    };

    const sll::TileAccess &Out = Op.Out;
    switch (Op.Kind) {
    case sll::OpKind::ZeroTile:
      Arity(0);
      break;
    case sll::OpKind::Copy:
      if (Arity(1))
        Shape(Op.In[0], Out.TileRows, Out.TileCols, "input");
      break;
    case sll::OpKind::Add:
      if (Arity(2)) {
        Shape(Op.In[0], Out.TileRows, Out.TileCols, "left input");
        Shape(Op.In[1], Out.TileRows, Out.TileCols, "right input");
      }
      break;
    case sll::OpKind::SMul:
      if (Arity(2)) {
        Shape(Op.In[0], 1, 1, "scalar input");
        Shape(Op.In[1], Out.TileRows, Out.TileCols, "matrix input");
      }
      break;
    case sll::OpKind::MatMul:
    case sll::OpKind::MatMulAcc:
      if (Arity(2)) {
        if (Op.In[0].TileRows != Out.TileRows ||
            Op.In[1].TileCols != Out.TileCols ||
            Op.In[0].TileCols != Op.In[1].TileRows) {
          std::ostringstream OS;
          OS << "sll: " << Name << " dimensions disagree: "
             << Op.In[0].TileRows << "x" << Op.In[0].TileCols << " * "
             << Op.In[1].TileRows << "x" << Op.In[1].TileCols << " -> "
             << Out.TileRows << "x" << Out.TileCols;
          D.add(OS.str());
        }
      }
      break;
    case sll::OpKind::Trans:
      if (Arity(1))
        Shape(Op.In[0], Out.TileCols, Out.TileRows, "input");
      break;
    case sll::OpKind::MVH:
    case sll::OpKind::MVHAcc:
      if (Arity(2)) {
        Shape(Op.In[0], Out.TileRows, Out.TileCols, "matrix input");
        Shape(Op.In[1], Out.TileCols, 1, "vector input");
      }
      break;
    case sll::OpKind::RR:
    case sll::OpKind::RRAcc:
      if (Arity(1) && (Op.In[0].TileRows != Out.TileRows || Out.TileCols != 1)) {
        std::ostringstream OS;
        OS << "sll: " << Name << " reduces " << Op.In[0].TileRows << "x"
           << Op.In[0].TileCols << " into " << Out.TileRows << "x"
           << Out.TileCols << ", expected " << Op.In[0].TileRows << "x1";
        D.add(OS.str());
      }
      break;
    case sll::OpKind::MVM:
    case sll::OpKind::MVMAcc:
      if (Arity(2)) {
        if (Op.In[0].TileRows != Out.TileRows || Out.TileCols != 1 ||
            Op.In[0].TileCols != Op.In[1].TileRows ||
            Op.In[1].TileCols != 1) {
          std::ostringstream OS;
          OS << "sll: " << Name << " dimensions disagree: "
             << Op.In[0].TileRows << "x" << Op.In[0].TileCols << " * "
             << Op.In[1].TileRows << "x" << Op.In[1].TileCols << " -> "
             << Out.TileRows << "x" << Out.TileCols;
          D.add(OS.str());
        }
      }
      break;
    }
  }

  /// Evaluates \p E under the current valuation; reports indices that are
  /// not in scope. Returns false on a scoping violation.
  bool evalAffine(const cir::AffineExpr &E, int64_t &Out, const char *Op) {
    int64_t V = E.getConstant();
    for (const auto &[Id, Coeff] : E.getTerms()) {
      auto It = Vals.find(Id);
      if (It == Vals.end()) {
        std::ostringstream OS;
        OS << "sll: " << Op << " access references summation index s" << Id
           << " which is not in scope";
        D.add(OS.str());
        return false;
      }
      V += Coeff * It->second;
    }
    Out = V;
    return true;
  }

  void checkAccessBounds(const sll::TileAccess &A, const sll::TileOp &Op,
                         bool IsOut) {
    if (A.Mat >= P.Mats.size())
      return; // Already reported by checkOpShapes.
    const char *Name = sll::opKindName(Op.Kind);
    int64_t Row = 0, Col = 0;
    if (!evalAffine(A.Row, Row, Name) || !evalAffine(A.Col, Col, Name))
      return;
    const sll::MatInfo &M = P.Mats[A.Mat];
    if (Row < 0 || Col < 0 || Row + A.TileRows > M.Rows ||
        Col + A.TileCols > M.Cols) {
      std::ostringstream OS;
      OS << "sll: " << Name << (IsOut ? " scatter" : " gather") << " of "
         << A.TileRows << "x" << A.TileCols << " tile at (" << Row << ", "
         << Col << ") exceeds " << M.Name << " (" << M.Rows << "x" << M.Cols
         << ")";
      D.add(OS.str());
      return;
    }
    if (IsOut) {
      auto It = Written.find(A.Mat);
      if (It != Written.end())
        for (unsigned R = 0; R != A.TileRows; ++R)
          for (unsigned C = 0; C != A.TileCols; ++C)
            It->second[(Row + R) * M.Cols + (Col + C)] = 1;
    }
  }

  void visitOp(const sll::TileOp &Op) {
    for (const sll::TileAccess &A : Op.In)
      checkAccessBounds(A, Op, /*IsOut=*/false);
    checkAccessBounds(Op.Out, Op, /*IsOut=*/true);
  }

  /// Enumerates the valuations of \p N's summations recursively.
  void visitNest(const sll::Nest &N, size_t SumIdx) {
    if (D.capped())
      return;
    if (SumIdx == N.Sums.size()) {
      for (const sll::NestItem &It : N.Items) {
        if (It.Op)
          visitOp(*It.Op);
        else if (It.Child)
          visitNest(*It.Child, 0);
      }
      return;
    }
    const sll::SumIdx &S = N.Sums[SumIdx];
    if (S.tripCount() <= 0) {
      std::ostringstream OS;
      OS << "sll: summation s" << S.Id << " has empty range (extent "
         << S.Extent << ", step " << S.Step << ")";
      D.add(OS.str());
      return;
    }
    for (int64_t V = 0; V < S.Extent; V += S.Step) {
      Vals[S.Id] = V;
      visitNest(N, SumIdx + 1);
    }
    Vals.erase(S.Id);
  }

  void collectOps(const sll::Nest &N) {
    for (const sll::NestItem &It : N.Items) {
      if (It.Op)
        checkOpShapes(*It.Op);
      else if (It.Child)
        collectOps(*It.Child);
    }
  }

  void run() {
    collectOps(P.Root);
    if (enumerationSize(P.Root, 1) > MaxSigmaEnumeration)
      return; // Coverage/bounds enumeration intractable; shape checks only.
    visitNest(P.Root, 0);
    for (const auto &[Mat, Bits] : Written) {
      size_t Missing =
          std::count(Bits.begin(), Bits.end(), static_cast<char>(0));
      if (Missing == 0)
        continue;
      const sll::MatInfo &M = P.Mats[Mat];
      // An InOut output that is never written at all is the identity
      // kernel (out = out): every untouched element keeps its input
      // value, which is exactly the result. Partial coverage is still a
      // dropped-leftover bug.
      if (M.Role == sll::MatRole::InOut &&
          Missing == static_cast<size_t>(M.numElements()))
        continue;
      std::ostringstream OS;
      OS << "sll: output " << M.Name << " has " << Missing << " of "
         << M.numElements()
         << " element(s) never scattered (incomplete index coverage)";
      D.add(OS.str());
    }
  }
};

//===----------------------------------------------------------------------===//
// C-IR checks
//===----------------------------------------------------------------------===//

struct CIRChecker {
  const cir::Kernel &K;
  const CIRCheckOptions &Opts;
  Diags &D;
  std::set<cir::RegId> Defined;
  std::vector<const cir::Loop *> ActiveLoops;

  CIRChecker(const cir::Kernel &K, const CIRCheckOptions &Opts, Diags &D)
      : K(K), Opts(Opts), D(D) {}

  std::string where(const cir::Inst &I) const {
    return std::string(cir::opcodeName(I.Op)) + " in kernel '" + K.getName() +
           "'";
  }

  /// Range of \p E over all iterations of the active loops.
  void affineRange(const cir::AffineExpr &E, int64_t &Min, int64_t &Max) {
    Min = Max = E.getConstant();
    for (const auto &[Id, Coeff] : E.getTerms()) {
      const cir::Loop *L = nullptr;
      for (const cir::Loop *A : ActiveLoops)
        if (A->Id == Id)
          L = A;
      if (!L || L->tripCount() <= 0)
        continue; // Scoping violations are reported separately.
      int64_t First = Coeff * L->Start;
      int64_t Last = Coeff * (L->Start + (L->tripCount() - 1) * L->Step);
      Min += std::min(First, Last);
      Max += std::max(First, Last);
    }
  }

  void checkFootprint(const cir::Inst &I) {
    if (I.Address.Array >= K.getNumArrays())
      return; // Reported by checkStructure.
    const cir::ArrayInfo &A = K.getArray(I.Address.Array);
    // Element extent of the access relative to its base address.
    int64_t ExtMin = 0, ExtMax = 0;
    switch (I.Op) {
    case cir::Opcode::Load:
      ExtMax = K.lanesOf(I.Dest) - 1;
      break;
    case cir::Opcode::Store:
      ExtMax = K.lanesOf(I.A) - 1;
      break;
    case cir::Opcode::GLoad:
    case cir::Opcode::GStore: {
      bool Any = false;
      for (int64_t O : I.Map.LaneOffsets) {
        if (O == cir::MemMap::None)
          continue;
        ExtMin = Any ? std::min(ExtMin, O) : O;
        ExtMax = Any ? std::max(ExtMax, O) : O;
        Any = true;
      }
      if (!Any)
        return; // A fully-masked access touches no memory.
      break;
    }
    default:
      break; // LoadBroadcast/LoadLane/StoreLane touch one element.
    }
    int64_t Min = 0, Max = 0;
    affineRange(I.Address.Offset, Min, Max);
    Min += ExtMin;
    Max += ExtMax;
    if (Min < 0 || Max >= A.NumElements) {
      std::ostringstream OS;
      OS << "cir: " << where(I) << " touches elements [" << Min << ", " << Max
         << "] of array " << A.Name << "[" << A.NumElements << "]";
      D.add(OS.str());
    }
  }

  void checkAlignmentClaim(const cir::Inst &I) {
    if (!I.Aligned || Opts.Nu <= 1)
      return;
    unsigned Lanes = 0;
    switch (I.Op) {
    case cir::Opcode::Load:
      Lanes = K.lanesOf(I.Dest);
      break;
    case cir::Opcode::Store:
      Lanes = K.lanesOf(I.A);
      break;
    case cir::Opcode::GLoad:
      Lanes = I.Map.isFullContiguous() ? K.lanesOf(I.Dest) : 1;
      break;
    case cir::Opcode::GStore:
      Lanes = I.Map.isFullContiguous() ? K.lanesOf(I.A) : 1;
      break;
    default:
      return;
    }
    if (Lanes <= 1 || I.Address.Array >= K.getNumArrays())
      return;
    const cir::ArrayInfo &A = K.getArray(I.Address.Array);
    int64_t Base = 0;
    if (A.isParam()) {
      auto It = Opts.BaseOffsets.find(I.Address.Array);
      if (It == Opts.BaseOffsets.end()) {
        std::ostringstream OS;
        OS << "cir: " << where(I) << " claims alignment on parameter array "
           << A.Name << " whose base alignment is unknown";
        D.add(OS.str());
        return;
      }
      Base = It->second;
    } // Temporaries are allocated aligned (base offset 0).

    // The address is Base + Constant + Σ c·i with i ∈ {Start, Start+Step,
    // ...}; it is ≡ 0 (mod Lanes) for every iteration iff the value at the
    // loop starts is, and every per-iteration increment c·Step is.
    int64_t AtStart = Base + I.Address.Offset.getConstant();
    bool Ok = true;
    for (const auto &[Id, Coeff] : I.Address.Offset.getTerms()) {
      const cir::Loop *L = nullptr;
      for (const cir::Loop *Act : ActiveLoops)
        if (Act->Id == Id)
          L = Act;
      if (!L)
        return; // Scoping violation, reported separately.
      AtStart += Coeff * L->Start;
      if (L->tripCount() > 1 && floorMod(Coeff * L->Step, Lanes) != 0)
        Ok = false;
    }
    if (floorMod(AtStart, Lanes) != 0)
      Ok = false;
    if (!Ok) {
      std::ostringstream OS;
      OS << "cir: " << where(I) << " claims " << Lanes
         << "-lane alignment on array " << A.Name
         << " but the address is not provably 0 mod " << Lanes << " ("
         << I.Address.Offset.str() << " + base " << Base << ")";
      D.add(OS.str());
    }
  }

  void checkStructure(const cir::Inst &I) {
    I.forEachUse([&](cir::RegId R) {
      if (R >= K.getNumRegs()) {
        D.add("cir: " + where(I) + " uses out-of-range register r" +
              std::to_string(R));
        return;
      }
      if (!Defined.count(R))
        D.add("cir: " + where(I) + " uses r" + std::to_string(R) +
              " before its definition");
    });
    if (I.Dest != cir::NoReg) {
      if (I.Dest >= K.getNumRegs())
        D.add("cir: " + where(I) + " defines out-of-range register r" +
              std::to_string(I.Dest));
      else if (!Defined.insert(I.Dest).second)
        D.add("cir: " + where(I) + " defines r" + std::to_string(I.Dest) +
              " more than once (single-assignment violation)");
    }
    if (cir::isMemoryOpcode(I.Op)) {
      if (I.Address.Array >= K.getNumArrays()) {
        D.add("cir: " + where(I) + " accesses unknown array #" +
              std::to_string(I.Address.Array));
        return;
      }
      if (I.isStore() &&
          K.getArray(I.Address.Array).Kind == cir::ArrayKind::Input)
        D.add("cir: " + where(I) + " stores to const input array " +
              K.getArray(I.Address.Array).Name);
      for (const auto &[Id, Coeff] : I.Address.Offset.getTerms()) {
        (void)Coeff;
        bool InScope = false;
        for (const cir::Loop *L : ActiveLoops)
          if (L->Id == Id)
            InScope = true;
        if (!InScope)
          D.add("cir: " + where(I) + " addresses via loop index i" +
                std::to_string(Id) + " which is not in scope");
      }
    }
    if (I.Op == cir::Opcode::GLoad || I.Op == cir::Opcode::GStore) {
      cir::RegId R = I.Op == cir::Opcode::GLoad ? I.Dest : I.A;
      if (R < K.getNumRegs() && I.Map.numLanes() != K.lanesOf(R))
        D.add("cir: " + where(I) + " memory map has " +
              std::to_string(I.Map.numLanes()) + " lane(s) but register has " +
              std::to_string(K.lanesOf(R)));
    }
  }

  void visitBody(const std::vector<cir::Node> &Body) {
    for (const cir::Node &N : Body) {
      if (D.capped())
        return;
      if (N.isLoop()) {
        const cir::Loop &L = N.loop();
        if (L.Step <= 0)
          D.add("cir: loop i" + std::to_string(L.Id) + " in kernel '" +
                K.getName() + "' has non-positive step");
        ActiveLoops.push_back(&L);
        visitBody(L.Body);
        ActiveLoops.pop_back();
        continue;
      }
      const cir::Inst &I = N.inst();
      checkStructure(I);
      if (cir::isMemoryOpcode(I.Op)) {
        checkFootprint(I);
        checkAlignmentClaim(I);
      }
    }
  }

  void run() { visitBody(K.getBody()); }
};

} // namespace

std::vector<std::string> verify::checkSigmaLL(const sll::SProgram &P) {
  Diags D;
  SigmaChecker C(P, D);
  C.run();
  return D.take();
}

std::vector<std::string> verify::checkCIR(const cir::Kernel &K,
                                          const CIRCheckOptions &Opts) {
  Diags D;
  CIRChecker C(K, Opts, D);
  C.run();
  return D.take();
}

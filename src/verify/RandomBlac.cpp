//===- RandomBlac.cpp - Random BLAC generation for testing ----------------===//

#include "verify/RandomBlac.h"

#include <cstdlib>

using namespace lgen;
using namespace lgen::verify;

std::vector<int64_t> verify::parseShapeSpec(const std::string &Spec,
                                            std::string &Err) {
  std::vector<int64_t> Dims;
  auto Bad = [&](const std::string &Why) {
    Err = "bad shape spec \"" + Spec + "\": " + Why;
    return std::vector<int64_t>();
  };
  if (Spec.empty())
    return Bad("empty");
  size_t Range = Spec.find("..");
  if (Range != std::string::npos) {
    char *End = nullptr;
    int64_t Lo = std::strtoll(Spec.c_str(), &End, 10);
    if (End != Spec.c_str() + Range)
      return Bad("malformed lower bound");
    int64_t Hi = std::strtoll(Spec.c_str() + Range + 2, &End, 10);
    if (*End != '\0')
      return Bad("malformed upper bound");
    if (Lo < 1 || Hi < Lo || Hi > 256)
      return Bad("bounds must satisfy 1 <= LO <= HI <= 256");
    for (int64_t D = Lo; D <= Hi; ++D)
      Dims.push_back(D);
    return Dims;
  }
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    char *End = nullptr;
    int64_t D = std::strtoll(Spec.c_str() + Pos, &End, 10);
    if (End == Spec.c_str() + Pos || D < 1 || D > 256)
      return Bad("malformed dimension");
    Dims.push_back(D);
    Pos = End - Spec.c_str();
    if (Pos < Spec.size()) {
      if (Spec[Pos] != ',')
        return Bad("expected ','");
      ++Pos;
    }
  }
  if (Dims.empty())
    return Bad("empty");
  return Dims;
}

RandomBlac::RandomBlac(Rng &R, GrammarOptions O) : R(R), Opt(std::move(O)) {
  assert(!Opt.Dims.empty() && "dimension pool must not be empty");
}

int64_t RandomBlac::dim() {
  return Opt.Dims[R.nextBelow(Opt.Dims.size())];
}

int64_t RandomBlac::dimDegenerate() {
  // Degenerate shapes collapse one side to 1 regardless of the pool.
  return R.nextBelow(100) < Opt.DegeneratePercent ? 1 : dim();
}

std::string RandomBlac::declareOperand(int64_t Rows, int64_t Cols) {
  std::string Name = "m" + std::to_string(Counter++);
  if (Rows == 1 && Cols == 1)
    Decls += "Scalar " + Name + "; ";
  else if (Cols == 1)
    Decls += "Vector " + Name + "(" + std::to_string(Rows) + "); ";
  else
    Decls += "Matrix " + Name + "(" + std::to_string(Rows) + ", " +
             std::to_string(Cols) + "); ";
  Declared.push_back({Name, Rows, Cols});
  return Name;
}

std::string RandomBlac::freshOrAliasedRef(int64_t Rows, int64_t Cols) {
  if (R.nextBelow(100) < Opt.AliasPercent) {
    std::vector<const Decl *> Matching;
    for (const Decl &D : Declared)
      if (D.Rows == Rows && D.Cols == Cols)
        Matching.push_back(&D);
    if (!Matching.empty())
      return Matching[R.nextBelow(Matching.size())]->Name;
  }
  return declareOperand(Rows, Cols);
}

std::string RandomBlac::expr(int64_t Rows, int64_t Cols, int Depth) {
  if (Depth >= Opt.MaxDepth ||
      R.nextBelow(100) < Opt.LeafPercent)
    return freshOrAliasedRef(Rows, Cols);
  switch (R.nextBelow(4)) {
  case 0: // Addition.
    return "(" + expr(Rows, Cols, Depth + 1) + " + " +
           expr(Rows, Cols, Depth + 1) + ")";
  case 1: // Scalar scaling.
    return "(" + freshOrAliasedRef(1, 1) + " * " +
           expr(Rows, Cols, Depth + 1) + ")";
  case 2: { // Product with a random inner dimension; 1×1 targets become
            // dot-like products (1×k)·(k×1). A factor whose shape collapses
            // to 1×1 must be a plain scalar leaf: the parser classifies
            // scalar-vs-matrix products syntactically and cannot tell a
            // compound 1×1 expression (e.g. a dot product plus a scalar)
            // from a matrix factor.
    int64_t K = dimDegenerate();
    std::string L = Rows == 1 && K == 1 ? freshOrAliasedRef(1, 1)
                                        : expr(Rows, K, Depth + 1);
    std::string Rhs = K == 1 && Cols == 1 ? freshOrAliasedRef(1, 1)
                                          : expr(K, Cols, Depth + 1);
    return "(" + L + " * " + Rhs + ")";
  }
  default: // Transposition. Either of a compound subexpression (nested
           // transposes, including the double-transpose identity) or of
           // whatever the recursion produces for the flipped shape.
    if (R.nextBelow(100) < Opt.NestedTransPercent)
      return "(" + expr(Rows, Cols, Depth + 1) + "')'";
    return expr(Cols, Rows, Depth + 1) + "'";
  }
}

std::string RandomBlac::build() {
  Decls.clear();
  Declared.clear();

  int64_t Rows = dimDegenerate(), Cols = dimDegenerate();
  if (!Opt.AllowScalarOutput)
    while (Rows == 1 && Cols == 1)
      Rows = dim();
  std::string Body = expr(Rows, Cols, /*Depth=*/0);

  // Optionally fold the output into the right-hand side (in/out kernel).
  bool OutputIsInput = Opt.AllowOutputAsInput && R.nextBelow(100) < 25;
  if (OutputIsInput) {
    if (R.nextBelow(2))
      Body = "(" + Body + " + " + freshOrAliasedRef(1, 1) + " * out)";
    else
      Body = "(" + Body + " + out)";
  }

  std::string OutDecl;
  if (Rows == 1 && Cols == 1)
    OutDecl = "Scalar out; ";
  else if (Cols == 1)
    OutDecl = "Vector out(" + std::to_string(Rows) + "); ";
  else
    OutDecl = "Matrix out(" + std::to_string(Rows) + ", " +
              std::to_string(Cols) + "); ";
  return Decls + OutDecl + "out = " + Body + ";";
}

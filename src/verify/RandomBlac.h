//===- RandomBlac.h - Random BLAC generation for testing -------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic generation of random BLACs over the full LL
/// operator grammar, promoted out of the fuzz test into a library so the
/// differential verification tooling (DiffCheck.h, lgen-verify) and the
/// test suite draw from one grammar. Compared to the original fuzz
/// generator the grammar adds:
///  * scalar outputs (1×1 results of dot-like expressions);
///  * nested transposes (transposition of compound subexpressions and
///    explicit double transposition);
///  * aliased operands (one declared matrix referenced several times, e.g.
///    A + A', and optionally the output operand appearing as an addend of
///    the right-hand side, producing in/out kernels);
///  * degenerate 1×n and n×1 shapes forced with a configurable bias, not
///    just when the dimension pool happens to produce 1.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_VERIFY_RANDOMBLAC_H
#define LGEN_VERIFY_RANDOMBLAC_H

#include "support/Support.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lgen {
namespace verify {

/// Knobs of the random BLAC grammar. The defaults reproduce a superset of
/// the historical fuzz-test distribution.
struct GrammarOptions {
  /// Dimension pool; every matrix dimension is drawn from this set.
  std::vector<int64_t> Dims = {1, 2, 3, 4, 5, 7, 8, 9, 12};
  /// Maximum expression tree depth before forcing a leaf.
  int MaxDepth = 3;
  /// Percent chance to emit a leaf before reaching MaxDepth.
  unsigned LeafPercent = 30;
  /// Percent chance a leaf reuses an already-declared operand of the same
  /// shape instead of declaring a fresh one (operand aliasing).
  unsigned AliasPercent = 30;
  /// Percent chance a transpose wraps a compound subexpression (including
  /// an immediate second transpose) rather than distributing into it.
  unsigned NestedTransPercent = 50;
  /// Percent chance a generated shape is forced degenerate (1×n or n×1).
  unsigned DegeneratePercent = 15;
  /// Allow 1×1 (scalar) outputs.
  bool AllowScalarOutput = true;
  /// Allow the output operand to appear as an addend of the right-hand
  /// side (y = ... + beta*y), making the kernel in/out.
  bool AllowOutputAsInput = true;
};

/// Parses a dimension-set spec: either a range "LO..HI" or a comma list
/// "1,2,4,8". Returns the empty vector and fills \p Err on malformed input.
std::vector<int64_t> parseShapeSpec(const std::string &Spec,
                                    std::string &Err);

/// Builds random LL programs (declarations + a single equation) that are
/// guaranteed to parse and pass dimension inference. Deterministic given
/// the RNG state; driving the RNG from a per-trial seed makes every
/// generated program reproducible from that seed alone.
class RandomBlac {
public:
  explicit RandomBlac(Rng &R, GrammarOptions O = {});

  /// Generates one BLAC and returns its source text.
  std::string build();

private:
  struct Decl {
    std::string Name;
    int64_t Rows, Cols;
  };

  int64_t dim();
  int64_t dimDegenerate();
  std::string freshOrAliasedRef(int64_t Rows, int64_t Cols);
  std::string declareOperand(int64_t Rows, int64_t Cols);
  std::string expr(int64_t Rows, int64_t Cols, int Depth);

  Rng &R;
  GrammarOptions Opt;
  std::string Decls;
  std::vector<Decl> Declared;
  unsigned Counter = 0;
};

} // namespace verify
} // namespace lgen

#endif // LGEN_VERIFY_RANDOMBLAC_H

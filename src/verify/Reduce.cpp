//===- Reduce.cpp - Delta-debugging reducer for failing BLACs -------------===//

#include "verify/Reduce.h"

#include "ll/Parser.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace lgen;
using namespace lgen::verify;

namespace {

int64_t countOps(const ll::Expr &E) {
  int64_t N = E.getKind() == ll::ExprKind::Ref ? 0 : 1;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    N += countOps(E.child(I));
  return N;
}

using Path = std::vector<unsigned>;

void collectPaths(const ll::Expr &E, Path &Cur, std::vector<Path> &Out) {
  Out.push_back(Cur);
  for (unsigned I = 0; I != E.numChildren(); ++I) {
    Cur.push_back(I);
    collectPaths(E.child(I), Cur, Out);
    Cur.pop_back();
  }
}

const ll::Expr &nodeAt(const ll::Program &P, const Path &Pt) {
  const ll::Expr *E = P.Rhs.get();
  for (unsigned I : Pt)
    E = &E->child(I);
  return *E;
}

void replaceAt(ll::Program &P, const Path &Pt, ll::ExprPtr New) {
  if (Pt.empty()) {
    P.Rhs = std::move(New);
    return;
  }
  ll::Expr *Parent = P.Rhs.get();
  for (size_t I = 0; I + 1 != Pt.size(); ++I)
    Parent = &Parent->child(Pt[I]);
  Parent->swapChild(Pt.back(), std::move(New));
}

void collectRefs(const ll::Expr &E, std::set<std::string> &Names) {
  if (E.getKind() == ll::ExprKind::Ref)
    Names.insert(E.getRefName());
  for (unsigned I = 0; I != E.numChildren(); ++I)
    collectRefs(E.child(I), Names);
}

ll::Operand makeOperand(std::string Name, int64_t Rows, int64_t Cols) {
  ll::Operand O;
  O.Name = std::move(Name);
  O.Rows = Rows;
  O.Cols = Cols;
  if (Rows == 1 && Cols == 1)
    O.Kind = ll::OperandKind::Scalar;
  else if (Cols == 1)
    O.Kind = ll::OperandKind::Vector;
  else
    O.Kind = ll::OperandKind::Matrix; // 1×n rendered as Matrix(1, n).
  return O;
}

std::string freshName(const ll::Program &P) {
  for (unsigned I = 0;; ++I) {
    std::string Name = "r" + std::to_string(I);
    if (!P.findOperand(Name))
      return Name;
  }
}

/// Drops declarations no longer mentioned by the equation and retargets the
/// output declaration to the (possibly changed) root shape. Returns false
/// when the mutated tree cannot represent a program (e.g. a null RHS).
bool tidy(ll::Program &P) {
  if (!P.Rhs)
    return false;
  std::set<std::string> Live;
  collectRefs(*P.Rhs, Live);
  Live.insert(P.OutputName);
  auto It = std::remove_if(P.Operands.begin(), P.Operands.end(),
                           [&](const ll::Operand &O) {
                             return Live.find(O.Name) == Live.end();
                           });
  P.Operands.erase(It, P.Operands.end());
  // If the root shape changed, the output declaration must follow. Cloned
  // subtrees keep the dims inferred on the original program, so the root's
  // annotation is trustworthy. When the output also feeds the RHS the
  // remap may be inconsistent; re-parsing rejects those candidates.
  for (ll::Operand &O : P.Operands) {
    if (O.Name != P.OutputName)
      continue;
    if (O.Rows != P.Rhs->rows() || O.Cols != P.Rhs->cols()) {
      ll::Operand New = makeOperand(O.Name, P.Rhs->rows(), P.Rhs->cols());
      O = New;
    }
  }
  return true;
}

/// Renders, re-parses, and re-infers \p Cand. The round trip is the
/// validity oracle: anything the front end rejects is not a candidate.
bool revalidate(const ll::Program &Cand, ll::Program &Out) {
  std::string Err;
  return ll::parseProgram(Cand.str(), Out, Err);
}

/// Applies \p Map to every dimension of every operand. Dimension *values*
/// are remapped, so equalities between dims (and hence LL shape rules)
/// survive.
ll::Program remapDims(const ll::Program &P,
                      const std::function<int64_t(int64_t)> &Map) {
  ll::Program Cand = P.clone();
  for (ll::Operand &O : Cand.Operands) {
    ll::Operand New = makeOperand(O.Name, Map(O.Rows), Map(O.Cols));
    O = New;
  }
  // The cloned tree still carries the original dims; re-infer so tidy()
  // sees the remapped root shape instead of "retargeting" the output
  // declaration back to the stale one. Inference failure (the map broke a
  // shape rule) yields an unchanged clone, which dedup discards.
  std::string Err;
  if (!ll::inferDims(Cand, Err))
    return P.clone();
  return Cand;
}

struct Candidate {
  ll::Program Prog;
  int64_t Ops;
  double Elems; // tie-break: total operand elements, favors smaller dims
};

std::vector<Candidate> proposals(const ll::Program &P) {
  std::vector<Candidate> Out;
  auto consider = [&](ll::Program Cand) {
    if (!tidy(Cand))
      return;
    ll::Program Valid;
    if (!revalidate(Cand, Valid))
      return;
    double Elems = 0;
    for (const ll::Operand &O : Valid.Operands)
      Elems += double(O.numElements());
    int64_t Ops = countOps(*Valid.Rhs);
    Out.push_back({std::move(Valid), Ops, Elems});
  };

  std::vector<Path> Paths;
  Path Cur;
  collectPaths(*P.Rhs, Cur, Paths);

  for (const Path &Pt : Paths) {
    const ll::Expr &N = nodeAt(P, Pt);
    if (N.getKind() == ll::ExprKind::Ref)
      continue;
    // Hoist each child over its parent operator.
    for (unsigned I = 0; I != N.numChildren(); ++I) {
      ll::Program Cand = P.clone();
      ll::ExprPtr Child = nodeAt(Cand, Pt).child(I).clone();
      replaceAt(Cand, Pt, std::move(Child));
      consider(std::move(Cand));
    }
    // Collapse the whole subtree to a fresh input of the same shape —
    // skip the root, where this would leave a computation-free program.
    if (!Pt.empty()) {
      ll::Program Cand = P.clone();
      std::string Name = freshName(Cand);
      Cand.Operands.push_back(makeOperand(Name, N.rows(), N.cols()));
      replaceAt(Cand, Pt, ll::Expr::ref(Name));
      consider(std::move(Cand));
    }
  }

  consider(remapDims(P, [](int64_t) { return int64_t(1); }));
  consider(remapDims(P, [](int64_t D) { return std::min<int64_t>(D, 2); }));
  consider(remapDims(P, [](int64_t D) { return (D + 1) / 2; }));

  std::sort(Out.begin(), Out.end(), [](const Candidate &A, const Candidate &B) {
    return A.Ops != B.Ops ? A.Ops < B.Ops : A.Elems < B.Elems;
  });
  return Out;
}

double totalElems(const ll::Program &P) {
  double E = 0;
  for (const ll::Operand &O : P.Operands)
    E += double(O.numElements());
  return E;
}

} // namespace

int64_t verify::countOperators(const ll::Program &P) {
  return P.Rhs ? countOps(*P.Rhs) : 0;
}

std::string verify::programSource(const ll::Program &P) { return P.str(); }

ReduceResult verify::reduce(const ll::Program &P, const FailurePredicate &Fails,
                            unsigned MaxCandidates) {
  ReduceResult R;
  R.Reduced = P.clone();
  std::set<std::string> Seen;
  Seen.insert(R.Reduced.str());

  bool Progress = true;
  while (Progress && R.CandidatesTried < MaxCandidates) {
    Progress = false;
    for (Candidate &C : proposals(R.Reduced)) {
      // Only strictly-smaller candidates: guarantees termination.
      if (C.Ops > countOperators(R.Reduced) ||
          (C.Ops == countOperators(R.Reduced) &&
           C.Elems >= totalElems(R.Reduced)))
        continue;
      if (!Seen.insert(C.Prog.str()).second)
        continue;
      if (R.CandidatesTried >= MaxCandidates)
        break;
      ++R.CandidatesTried;
      if (!Fails(C.Prog))
        continue;
      R.Reduced = std::move(C.Prog);
      ++R.Steps;
      Progress = true;
      break; // restart from the new, smaller program
    }
  }
  return R;
}

//===- DiffCheck.cpp - Plan-space differential checking -------------------===//

#include "verify/DiffCheck.h"

#include "ll/Parser.h"
#include "machine/Executor.h"
#include "runtime/CpuInfo.h"
#include "runtime/NativeKernel.h"

#include <memory>
#include <sstream>
#include <stdexcept>

using namespace lgen;
using namespace lgen::verify;

namespace {

/// One optimization subset of the sweep.
struct OptConfig {
  std::string Name;
  bool NewMVM = false;
  bool Align = false;
  bool Spec = false;
  bool GenericMemOps = true;
};

std::vector<OptConfig> optConfigs(bool SweepSubsets) {
  std::vector<OptConfig> Cfgs;
  if (!SweepSubsets) {
    Cfgs.push_back({"base", false, false, false, true});
    Cfgs.push_back({"mvm+align+spec", true, true, true, true});
    return Cfgs;
  }
  for (unsigned Mask = 0; Mask != 8; ++Mask) {
    OptConfig C;
    C.NewMVM = Mask & 1;
    C.Align = Mask & 2;
    C.Spec = Mask & 4;
    std::string Name;
    if (C.NewMVM)
      Name += "+mvm";
    if (C.Align)
      Name += "+align";
    if (C.Spec)
      Name += "+spec";
    C.Name = Name.empty() ? "base" : Name.substr(1);
    Cfgs.push_back(C);
  }
  // The §3.1 ablation: concrete memory instructions from the start.
  Cfgs.push_back({"no-generic-memops", false, false, false, false});
  return Cfgs;
}

/// Random bindings for every declared operand (the DiffCheck twin of the
/// test suite's randomBindings; kept here so the library has no test-code
/// dependency).
ll::Bindings randomBindings(const ll::Program &P, Rng &R) {
  ll::Bindings B;
  for (const ll::Operand &O : P.Operands) {
    ll::MatrixValue V(O.Rows, O.Cols);
    ll::fillRandom(V, R);
    B[O.Name] = V;
  }
  return B;
}

/// Executes \p CK over \p Inputs with the given per-operand base
/// misalignment and returns the output operand's value.
ll::MatrixValue runKernel(const compiler::CompiledKernel &CK,
                          const ll::Bindings &Inputs, unsigned AlignOffset) {
  const ll::Program &P = CK.Blac;
  std::vector<machine::Buffer> Storage(P.Operands.size());
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    const ll::Operand &O = P.Operands[I];
    unsigned Offset = O.numElements() > 1 ? AlignOffset : 0;
    Storage[I] = machine::Buffer(O.numElements(), 0.0f, Offset);
    auto BIt = Inputs.find(O.Name);
    if (BIt != Inputs.end())
      Storage[I].Data = BIt->second.Data;
    if (O.Name == P.OutputName)
      OutIdx = I;
    Params.push_back(&Storage[I]);
  }
  CK.execute(Params);
  ll::MatrixValue Out(P.Operands[OutIdx].Rows, P.Operands[OutIdx].Cols);
  Out.Data = Storage[OutIdx].Data;
  return Out;
}

/// The native twin of runKernel: identical buffer marshaling, but the
/// kernel runs as host machine code through the loaded shared object.
ll::MatrixValue runNative(const runtime::NativeKernel &NK,
                          const compiler::CompiledKernel &CK,
                          const ll::Bindings &Inputs, unsigned AlignOffset) {
  const ll::Program &P = CK.Blac;
  std::vector<machine::Buffer> Storage(P.Operands.size());
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    const ll::Operand &O = P.Operands[I];
    unsigned Offset = O.numElements() > 1 ? AlignOffset : 0;
    Storage[I] = machine::Buffer(O.numElements(), 0.0f, Offset);
    auto BIt = Inputs.find(O.Name);
    if (BIt != Inputs.end())
      Storage[I].Data = BIt->second.Data;
    if (O.Name == P.OutputName)
      OutIdx = I;
    Params.push_back(&Storage[I]);
  }
  NK.execute(Params);
  ll::MatrixValue Out(P.Operands[OutIdx].Rows, P.Operands[OutIdx].Cols);
  Out.Data = Storage[OutIdx].Data;
  return Out;
}

/// True when a native load failure means "this host cannot run the target"
/// (missing ISA or missing toolchain) rather than a genuine defect.
bool isCleanNativeSkip(const compiler::CompiledKernel &CK) {
  isa::ISAKind ISA = CK.Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar
                                                : CK.Opts.ISA;
  return !runtime::CpuInfo::host().supports(ISA) ||
         !runtime::ToolchainDriver::host().available();
}

} // namespace

std::string DiffResult::str() const {
  if (ok())
    return "";
  // A genuine miscompile usually fails under many plans and inputs at
  // once; a capped listing identifies it just as well.
  constexpr size_t MaxShown = 12;
  std::ostringstream OS;
  for (size_t I = 0; I != Mismatches.size() && I != MaxShown; ++I) {
    const Mismatch &M = Mismatches[I];
    OS << "mismatch on " << M.Target << " [" << M.Config << "] plan "
       << M.Plan << " inputs #" << M.InputSet
       << (M.Misaligned ? " (misaligned bases)" : "") << " <" << M.Backend
       << ">: " << M.Detail << "\n";
  }
  if (Mismatches.size() > MaxShown)
    OS << "... and " << (Mismatches.size() - MaxShown)
       << " further mismatches\n";
  return OS.str();
}

DiffResult verify::checkProgram(const ll::Program &P,
                                const PlanSpaceOptions &Opts) {
  DiffResult Result;
  Tolerance Tol = toleranceFor(P, Opts.BaseUlps);

  // Reference evaluations and input sets are shared across every target,
  // configuration, and plan: the reference is compile-strategy-agnostic.
  std::vector<ll::Bindings> InputSets;
  std::vector<ll::MatrixValue> Expected;
  for (unsigned S = 0; S != std::max(1u, Opts.InputSets); ++S) {
    // Spread per-set seeds across the high bits: the xorshift state forces
    // bit 0, so seeds differing only in low bits would collide.
    Rng R((Opts.Seed + 1) * 0x9e3779b97f4a7c15ULL ^
          (uint64_t(S + 1) << 32));
    InputSets.push_back(randomBindings(P, R));
    Expected.push_back(ll::evaluate(P, InputSets.back()));
  }

  for (machine::UArch Target : Opts.Targets) {
    for (const OptConfig &Cfg : optConfigs(Opts.SweepOptSubsets)) {
      compiler::Options O = compiler::Options::builder(Target)
                                .newMVM(Cfg.NewMVM)
                                .alignmentDetection(Cfg.Align)
                                .specializedNuBLACs(Cfg.Spec)
                                .genericMemOps(Cfg.GenericMemOps)
                                .searchSamples(Opts.SearchSamples)
                                .searchSeed(Opts.Seed)
                                .verifyIR(Opts.VerifyIR)
                                .injectFault(Opts.Inject)
                                .build();
      compiler::Compiler C(O);
      ++Result.ConfigsChecked;

      std::vector<tiling::TilingPlan> Plans;
      try {
        if (Opts.AllPlans)
          Plans = compiler::enumeratePlans(C, P);
        else
          Plans.push_back(compiler::choosePlan(C, P));
      } catch (const std::exception &E) {
        Mismatch M;
        M.Target = machine::uarchName(Target);
        M.Config = Cfg.Name;
        M.Plan = "<plan enumeration>";
        M.Detail = E.what();
        Result.Mismatches.push_back(std::move(M));
        continue;
      }

      for (const tiling::TilingPlan &Plan : Plans) {
        ++Result.PlansChecked;
        compiler::CompiledKernel CK;
        try {
          CK = C.compileWithPlan(P, Plan);
        } catch (const std::exception &E) {
          // IR invariant violations (Options::VerifyIR) and internal
          // pipeline errors surface here as first-class findings.
          Mismatch M;
          M.Target = machine::uarchName(Target);
          M.Config = Cfg.Name;
          M.Plan = Plan.str();
          M.Detail = E.what();
          Result.Mismatches.push_back(std::move(M));
          continue;
        }

        // One native load per compiled variant (the .so is cached by
        // fingerprint, so repeated input sets reuse it). A host that
        // cannot run the target records a clean skip; a toolchain or
        // loader rejection of generated code is a finding.
        std::unique_ptr<runtime::NativeKernel> NK;
        if (Opts.Exec != ExecBackend::Simulated) {
          lgen::Expected<runtime::NativeKernel> Loaded =
              runtime::NativeKernel::load(CK);
          if (Loaded) {
            NK = std::make_unique<runtime::NativeKernel>(std::move(*Loaded));
          } else if (isCleanNativeSkip(CK)) {
            ++Result.NativeSkips;
            if (Result.NativeSkipReason.empty())
              Result.NativeSkipReason = Loaded.error();
          } else {
            Mismatch M;
            M.Target = machine::uarchName(Target);
            M.Config = Cfg.Name;
            M.Plan = Plan.str();
            M.Backend = "native";
            M.Detail = Loaded.error();
            Result.Mismatches.push_back(std::move(M));
          }
        }

        auto Report = [&](const UlpReport &Rep, const char *Backend,
                          unsigned S, bool Mis) {
          if (Tol.accepts(Rep))
            return;
          Mismatch M;
          M.Target = machine::uarchName(Target);
          M.Config = Cfg.Name;
          M.Plan = Plan.str();
          M.InputSet = S;
          M.Misaligned = Mis;
          M.Backend = Backend;
          M.Report = Rep;
          std::ostringstream OS;
          OS << "element " << Rep.WorstIndex << ": expected " << Rep.Expected
             << ", got " << Rep.Actual << " (" << Rep.MaxUlps
             << " ulps, |diff| " << Rep.MaxAbsDiff << ", tolerance "
             << Tol.MaxUlps << " ulps / " << Tol.AbsFloor << " abs)";
          M.Detail = OS.str();
          Result.Mismatches.push_back(std::move(M));
        };

        for (unsigned S = 0; S != InputSets.size(); ++S) {
          for (unsigned Mis = 0; Mis != (Opts.Misaligned ? 2u : 1u); ++Mis) {
            ll::MatrixValue Actual = runKernel(CK, InputSets[S], Mis);
            ++Result.ExecutionsChecked;
            Report(compareValues(Expected[S], Actual), "sim", S, Mis != 0);
            if (!NK)
              continue;
            ll::MatrixValue Native = runNative(*NK, CK, InputSets[S], Mis);
            ++Result.NativeChecked;
            Report(compareValues(Expected[S], Native), "native", S,
                   Mis != 0);
            // The two backends must also agree with *each other* within
            // the same tolerance (they may legally round differently, but
            // not diverge further than two tolerable results can).
            Report(compareValues(Actual, Native), "native-vs-sim", S,
                   Mis != 0);
          }
        }
      }
    }
  }
  return Result;
}

DiffResult verify::checkSource(const std::string &Source,
                               const PlanSpaceOptions &Opts) {
  ll::Program P;
  std::string Err;
  if (!ll::parseProgram(Source, P, Err)) {
    DiffResult R;
    Mismatch M;
    M.Plan = "<parse>";
    M.Detail = "parse error: " + Err;
    R.Mismatches.push_back(std::move(M));
    return R;
  }
  return checkProgram(P, Opts);
}

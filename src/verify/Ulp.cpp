//===- Ulp.cpp - ULP-based float comparison for verification --------------===//

#include "verify/Ulp.h"

#include "ll/AST.h"

#include <algorithm>

using namespace lgen;
using namespace lgen::verify;

namespace {

int64_t reductionOf(const ll::Expr &E) {
  int64_t Longest = 1;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    Longest = std::max(Longest, reductionOf(E.child(I)));
  switch (E.getKind()) {
  case ll::ExprKind::Mul:
    // m×k · k×n sums k products per element; the vectorized kernel splits
    // the sum into lane partials plus a horizontal-add tree.
    return std::max(Longest, E.child(0).cols());
  case ll::ExprKind::RR:
    return std::max(Longest, E.child(0).cols());
  case ll::ExprKind::Add:
    // Chained additions reassociate across fused tiles; count the chain.
    return Longest + 1;
  default:
    return Longest;
  }
}

} // namespace

int64_t verify::maxReductionLength(const ll::Program &P) {
  return P.Rhs ? reductionOf(*P.Rhs) : 1;
}

Tolerance verify::toleranceFor(const ll::Program &P, unsigned BaseUlps) {
  Tolerance T;
  // The ε floor mirrors the historical test-suite threshold (TestUtil.h's
  // epsilonFor): 1e-4 · √flops absorbs cancellation near zero, where ULP
  // distances are meaningless.
  double F = ll::flopCount(P);
  T.AbsFloor = static_cast<float>(1e-4 * std::max(1.0, std::sqrt(F)));
  T.MaxUlps = static_cast<int64_t>(BaseUlps) * maxReductionLength(P);
  return T;
}

//===- Invariants.h - Σ-LL and C-IR invariant checkers ---------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariant checkers run between compiler passes when
/// Options::VerifyIR is set (or LGEN_VERIFY_IR=1 in the environment).
/// Unlike cir::Kernel::verify(), which asserts, these return diagnostics so
/// the verification tooling can report every violation of a broken pass at
/// once and attach them to a reduced reproducer.
///
/// Σ-LL well-formedness (checkSigmaLL):
///  * gather/scatter accesses stay inside their matrices for every value of
///    the enclosing summation indices (exact enumeration — trip products of
///    LGen kernels are small — with an affine min/max fallback);
///  * every element of each Output/InOut matrix is scattered at least once
///    (index coverage: a tiling that drops the leftover region is caught
///    here, before it silently computes a partial result);
///  * tile shapes agree with the operator (MatMul inner dimensions, MVH
///    vector length, RR result width, ...).
///
/// C-IR well-formedness (checkCIR):
///  * def-before-use and single assignment of registers, loop-index scoping
///    (the diagnostic twin of Kernel::verify's asserts);
///  * the memory footprint of every access, widened over all loop
///    iterations, stays inside the bounds of the accessed array;
///  * every access claiming `Aligned` is provably ≡ 0 (mod lanes) for all
///    iterations, given the assumed base alignments — the static
///    counterpart of the executor's runtime alignment fault.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_VERIFY_INVARIANTS_H
#define LGEN_VERIFY_INVARIANTS_H

#include "cir/CIR.h"
#include "sll/SigmaLL.h"

#include <map>
#include <string>
#include <vector>

namespace lgen {
namespace verify {

/// Checks Σ-LL well-formedness. Returns one message per violation, empty
/// when the program is well-formed.
std::vector<std::string> checkSigmaLL(const sll::SProgram &P);

struct CIRCheckOptions {
  /// Vector length for alignment-claim checking; 0 disables that check.
  unsigned Nu = 0;
  /// Assumed base alignment (element offset from a ν boundary) per
  /// parameter array. Arrays absent from the map have *unknown* base
  /// alignment: an Aligned claim on them is reported. Kernel-local
  /// temporaries are always allocated aligned and need no entry.
  std::map<cir::ArrayId, int64_t> BaseOffsets;
};

/// Checks C-IR well-formedness of \p K. Returns one message per violation.
std::vector<std::string> checkCIR(const cir::Kernel &K,
                                  const CIRCheckOptions &Opts = {});

} // namespace verify
} // namespace lgen

#endif // LGEN_VERIFY_INVARIANTS_H

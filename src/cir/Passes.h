//===- Passes.h - C-IR optimization passes ---------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C-IR level optimizations of LGen (§2.1.4, §3.1): loop unrolling,
/// scalar replacement, copy propagation, and dead code elimination. LGen
/// applies these between the Σ-LL lowering and the unparsing to C.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_CIR_PASSES_H
#define LGEN_CIR_PASSES_H

#include "cir/CIR.h"

namespace lgen {
namespace cir {

/// Fully unrolls every loop whose trip count is at most \p MaxTrip
/// (recursively, innermost included). Loop indices are substituted by
/// constants; registers defined in unrolled bodies are renamed to keep the
/// kernel in single-assignment form.
void unrollLoops(Kernel &K, int64_t MaxTrip);

/// Unrolls loop \p Id by \p Factor (the trip count must be divisible by
/// \p Factor). The loop is kept with Step multiplied by Factor.
void unrollLoopBy(Kernel &K, LoopId Id, int64_t Factor);

/// Partially unrolls every loop by the largest divisor of its trip count
/// not exceeding \p MaxFactor (a compiler's -funroll-loops).
void unrollAllLoopsBy(Kernel &K, int64_t MaxFactor);

/// Scalar replacement (§2.1.4, §3.1): replaces a store to a local array
/// followed by a load with an identical memory footprint by a register
/// move, eliminating the memory round-trip. Thanks to the generic
/// load/store instructions, footprints match structurally even when the
/// eventual lowerings of the store and the load differ (Fig. 3.4).
/// Returns the number of forwarded store/load pairs.
unsigned scalarReplacement(Kernel &K);

/// Replaces uses of Mov results with the Mov source (transitively).
void copyPropagation(Kernel &K);

/// Removes instructions whose results are unused, stores to local arrays
/// that are never read, and loops whose bodies became empty.
void deadCodeElim(Kernel &K);

/// Convenience: copyPropagation + deadCodeElim until fixpoint.
void cleanup(Kernel &K);

/// Statistics over a kernel, used by tests and the ablation benches.
struct KernelStats {
  unsigned NumInsts = 0;
  unsigned NumLoads = 0;
  unsigned NumStores = 0;
  unsigned NumShuffles = 0;
  unsigned NumArith = 0;
  unsigned NumLoops = 0;
};

KernelStats computeStats(const Kernel &K);

} // namespace cir
} // namespace lgen

#endif // LGEN_CIR_PASSES_H

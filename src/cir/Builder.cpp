//===- Builder.cpp - Convenience builder for C-IR kernels ------*- C++ -*-===//

#include "cir/Builder.h"

using namespace lgen;
using namespace lgen::cir;

LoopId Builder::forLoop(int64_t Start, int64_t End, int64_t Step,
                        const std::function<void(LoopId)> &Body) {
  auto L = std::make_unique<Loop>();
  L->Id = K.newLoopId();
  L->Start = Start;
  L->End = End;
  L->Step = Step;
  Loop *Raw = L.get();
  InsertStack.back()->push_back(Node(std::move(L)));
  InsertStack.push_back(&Raw->Body);
  Body(Raw->Id);
  InsertStack.pop_back();
  return Raw->Id;
}

RegId Builder::emit(Inst I, unsigned DestLanes) {
  I.Dest = K.newReg(DestLanes);
  RegId R = I.Dest;
  InsertStack.back()->push_back(Node(std::move(I)));
  return R;
}

void Builder::append(Inst I) { InsertStack.back()->push_back(Node(std::move(I))); }

RegId Builder::fconst(unsigned Lanes, double Value) {
  Inst I;
  I.Op = Opcode::FConst;
  I.Imm = Value;
  return emit(std::move(I), Lanes);
}

RegId Builder::mov(RegId A) {
  Inst I;
  I.Op = Opcode::Mov;
  I.A = A;
  return emit(std::move(I), K.lanesOf(A));
}

static Inst binary(Opcode Op, RegId A, RegId B) {
  Inst I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  return I;
}

RegId Builder::add(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  return emit(binary(Opcode::Add, A, B), K.lanesOf(A));
}

RegId Builder::sub(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  return emit(binary(Opcode::Sub, A, B), K.lanesOf(A));
}

RegId Builder::mul(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  return emit(binary(Opcode::Mul, A, B), K.lanesOf(A));
}

RegId Builder::div(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  return emit(binary(Opcode::Div, A, B), K.lanesOf(A));
}

RegId Builder::neg(RegId A) {
  Inst I;
  I.Op = Opcode::Neg;
  I.A = A;
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::fma(RegId A, RegId B, RegId C) {
  assert(K.lanesOf(A) == K.lanesOf(B) && K.lanesOf(A) == K.lanesOf(C) &&
         "lane mismatch");
  Inst I;
  I.Op = Opcode::FMA;
  I.A = A;
  I.B = B;
  I.C = C;
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::hadd(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  assert((K.lanesOf(A) == 8 || K.lanesOf(A) == 4 || K.lanesOf(A) == 2) &&
         "hadd only defined for 2, 4, or 8 lanes");
  return emit(binary(Opcode::HAdd, A, B), K.lanesOf(A));
}

RegId Builder::dotps(RegId A, RegId B) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  assert(K.lanesOf(A) == 4 && "dpps is a 128-bit instruction");
  return emit(binary(Opcode::DotPS, A, B), K.lanesOf(A));
}

RegId Builder::mulLane(RegId A, RegId B, unsigned Lane) {
  assert(Lane < K.lanesOf(B) && "lane out of range");
  Inst I = binary(Opcode::MulLane, A, B);
  I.Lane = Lane;
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::fmaLane(RegId A, RegId B, unsigned Lane, RegId C) {
  assert(Lane < K.lanesOf(B) && "lane out of range");
  assert(K.lanesOf(A) == K.lanesOf(C) && "lane mismatch");
  Inst I;
  I.Op = Opcode::FMALane;
  I.A = A;
  I.B = B;
  I.C = C;
  I.Lane = Lane;
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::broadcast(RegId A, unsigned Lane, unsigned DestLanes) {
  assert(Lane < K.lanesOf(A) && "lane out of range");
  Inst I;
  I.Op = Opcode::Broadcast;
  I.A = A;
  I.Lane = Lane;
  return emit(std::move(I), DestLanes);
}

RegId Builder::shuffle(RegId A, RegId B, const std::vector<uint8_t> &Pattern) {
  assert(K.lanesOf(A) == K.lanesOf(B) && "lane mismatch");
  assert(Pattern.size() == K.lanesOf(A) && "pattern size mismatch");
  Inst I = binary(Opcode::Shuffle, A, B);
  for (unsigned J = 0; J != Pattern.size(); ++J) {
    assert(Pattern[J] < 2 * K.lanesOf(A) && "pattern index out of range");
    I.Pattern[J] = Pattern[J];
  }
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::insert(RegId A, RegId ScalarB, unsigned Lane) {
  assert(K.lanesOf(ScalarB) == 1 && "insert takes a scalar source");
  assert(Lane < K.lanesOf(A) && "lane out of range");
  Inst I = binary(Opcode::Insert, A, ScalarB);
  I.Lane = Lane;
  return emit(std::move(I), K.lanesOf(A));
}

RegId Builder::extract(RegId A, unsigned Lane) {
  assert(Lane < K.lanesOf(A) && "lane out of range");
  Inst I;
  I.Op = Opcode::Extract;
  I.A = A;
  I.Lane = Lane;
  return emit(std::move(I), 1);
}

RegId Builder::getLow(RegId A) {
  assert(K.lanesOf(A) % 2 == 0 && "getLow needs an even lane count");
  Inst I;
  I.Op = Opcode::GetLow;
  I.A = A;
  return emit(std::move(I), K.lanesOf(A) / 2);
}

RegId Builder::getHigh(RegId A) {
  assert(K.lanesOf(A) % 2 == 0 && "getHigh needs an even lane count");
  Inst I;
  I.Op = Opcode::GetHigh;
  I.A = A;
  return emit(std::move(I), K.lanesOf(A) / 2);
}

RegId Builder::combine(RegId Lo, RegId Hi) {
  assert(K.lanesOf(Lo) == K.lanesOf(Hi) && "combine needs equal halves");
  Inst I = binary(Opcode::Combine, Lo, Hi);
  return emit(std::move(I), 2 * K.lanesOf(Lo));
}

RegId Builder::zero(unsigned Lanes) {
  Inst I;
  I.Op = Opcode::Zero;
  return emit(std::move(I), Lanes);
}

RegId Builder::load(unsigned Lanes, Addr Address, bool Aligned) {
  Inst I;
  I.Op = Opcode::Load;
  I.Address = std::move(Address);
  I.Aligned = Aligned;
  return emit(std::move(I), Lanes);
}

void Builder::store(RegId A, Addr Address, bool Aligned) {
  Inst I;
  I.Op = Opcode::Store;
  I.A = A;
  I.Address = std::move(Address);
  I.Aligned = Aligned;
  append(std::move(I));
}

RegId Builder::loadBroadcast(unsigned Lanes, Addr Address) {
  Inst I;
  I.Op = Opcode::LoadBroadcast;
  I.Address = std::move(Address);
  return emit(std::move(I), Lanes);
}

RegId Builder::loadLane(RegId Base, unsigned Lane, Addr Address) {
  assert(Lane < K.lanesOf(Base) && "lane out of range");
  Inst I;
  I.Op = Opcode::LoadLane;
  I.A = Base;
  I.Lane = Lane;
  I.Address = std::move(Address);
  return emit(std::move(I), K.lanesOf(Base));
}

void Builder::storeLane(RegId A, unsigned Lane, Addr Address) {
  assert(Lane < K.lanesOf(A) && "lane out of range");
  Inst I;
  I.Op = Opcode::StoreLane;
  I.A = A;
  I.Lane = Lane;
  I.Address = std::move(Address);
  append(std::move(I));
}

RegId Builder::gload(unsigned Lanes, Addr Address, MemMap Map) {
  assert(Map.numLanes() == Lanes && "map lane count mismatch");
  Inst I;
  I.Op = Opcode::GLoad;
  I.Address = std::move(Address);
  I.Map = std::move(Map);
  return emit(std::move(I), Lanes);
}

void Builder::gstore(RegId A, Addr Address, MemMap Map) {
  assert(Map.numLanes() == K.lanesOf(A) && "map lane count mismatch");
  Inst I;
  I.Op = Opcode::GStore;
  I.A = A;
  I.Address = std::move(Address);
  I.Map = std::move(Map);
  append(std::move(I));
}

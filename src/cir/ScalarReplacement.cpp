//===- ScalarReplacement.cpp - store/load forwarding -----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar replacement (thesis §2.1.4 and §3.1). The ν-BLAC, Loader, and
/// Storer codelets all follow a load-compute-store discipline, chaining
/// through kernel-local arrays. This pass turns a store to a local array
/// followed by a load with the *same memory footprint* into a register move
/// and also forwards redundant loads. Because the footprint of a generic
/// load/store is its memory map — not the concrete instructions it will
/// later lower to — a store and a load with deliberately different
/// implementations (Fig. 3.4) still match.
///
/// Forwarding a partial-map access by a plain move relies on the chain
/// invariant that padding lanes of values produced by Loaders and ν-BLACs
/// are zero; the Loader zero-fills, and every lane-wise ν-BLAC operation
/// maps zero padding to zero padding.
///
//===----------------------------------------------------------------------===//

#include "cir/Passes.h"

#include "support/Trace.h"

#include <map>
#include <vector>

using namespace lgen;
using namespace lgen::cir;

namespace {

/// Canonical footprint of a forwardable memory access.
struct Footprint {
  Addr Address;
  MemMap Map;

  bool operator==(const Footprint &Other) const {
    return Address == Other.Address && Map == Other.Map;
  }
};

/// Returns the footprint of \p I if it is a forwardable access (generic
/// load/store, contiguous load/store, or a scalar access), otherwise
/// nullopt.
std::optional<Footprint> footprintOf(const Kernel &K, const Inst &I) {
  switch (I.Op) {
  case Opcode::GLoad:
  case Opcode::GStore:
    return Footprint{I.Address, I.Map};
  case Opcode::Load:
    return Footprint{I.Address, MemMap::contiguous(K.lanesOf(I.Dest))};
  case Opcode::Store:
    return Footprint{I.Address, MemMap::contiguous(K.lanesOf(I.A))};
  case Opcode::LoadBroadcast: {
    // Broadcast loads forward onto identical broadcast loads: the "map"
    // of every lane reading offset 0 never matches a store's footprint,
    // so this only enables load-load reuse (e.g. the hoisted alpha).
    MemMap M;
    M.LaneOffsets.assign(K.lanesOf(I.Dest), 0);
    return Footprint{I.Address, M};
  }
  default:
    return std::nullopt;
  }
}

/// Conservative may-overlap test between two footprints on the same array.
bool mayOverlap(const Footprint &A, const Footprint &B) {
  if (A.Address.Array != B.Address.Array)
    return false;
  const AffineExpr &EA = A.Address.Offset;
  const AffineExpr &EB = B.Address.Offset;
  // Identical loop terms cancel; different terms stay conservative.
  if (EA.getTerms() != EB.getTerms())
    return true;
  auto Range = [](const Footprint &F) {
    int64_t Lo = std::numeric_limits<int64_t>::max();
    int64_t Hi = std::numeric_limits<int64_t>::min();
    for (int64_t O : F.Map.LaneOffsets) {
      if (O == MemMap::None)
        continue;
      Lo = std::min(Lo, O);
      Hi = std::max(Hi, O);
    }
    return std::pair<int64_t, int64_t>{Lo, Hi};
  };
  auto [ALo, AHi] = Range(A);
  auto [BLo, BHi] = Range(B);
  int64_t ABase = EA.getConstant(), BBase = EB.getConstant();
  return ABase + ALo <= BBase + BHi && BBase + BLo <= ABase + AHi;
}

struct AvailableValue {
  Footprint FP;
  RegId Value; ///< Register holding the memory contents.
};

class BlockReplacer {
public:
  BlockReplacer(Kernel &K) : K(K) {}

  unsigned run(std::vector<Node> &Body) {
    unsigned Forwarded = 0;
    for (Node &N : Body) {
      if (N.isLoop()) {
        // A loop boundary invalidates everything: the loop body may write
        // any address depending on its index.
        Avail.clear();
        Forwarded += run(N.loop().Body);
        Avail.clear();
        continue;
      }
      Forwarded += visit(N.inst());
    }
    return Forwarded;
  }

private:
  unsigned visit(Inst &I) {
    if (I.isStore()) {
      auto FP = footprintOf(K, I);
      if (!FP) {
        // StoreLane etc.: conservatively invalidate the whole array.
        invalidateArray(I.Address.Array);
        return 0;
      }
      invalidateOverlapping(*FP);
      Avail.push_back({*FP, I.A});
      return 0;
    }
    if (I.isLoad()) {
      auto FP = footprintOf(K, I);
      if (!FP)
        return 0;
      for (const AvailableValue &AV : Avail) {
        if (!(AV.FP == *FP))
          continue;
        if (K.lanesOf(AV.Value) != K.lanesOf(I.Dest))
          continue;
        // Forward: turn the load into a move of the stored/loaded value.
        Inst Mov;
        Mov.Op = Opcode::Mov;
        Mov.Dest = I.Dest;
        Mov.A = AV.Value;
        I = Mov;
        return 1;
      }
      Avail.push_back({*FP, I.Dest});
      return 0;
    }
    return 0;
  }

  void invalidateOverlapping(const Footprint &FP) {
    std::vector<AvailableValue> Kept;
    for (AvailableValue &AV : Avail)
      if (!mayOverlap(AV.FP, FP))
        Kept.push_back(std::move(AV));
    Avail = std::move(Kept);
  }

  void invalidateArray(ArrayId Array) {
    std::vector<AvailableValue> Kept;
    for (AvailableValue &AV : Avail)
      if (AV.FP.Address.Array != Array)
        Kept.push_back(std::move(AV));
    Avail = std::move(Kept);
  }

  Kernel &K;
  std::vector<AvailableValue> Avail;
};

} // namespace

unsigned cir::scalarReplacement(Kernel &K) {
  BlockReplacer R(K);
  unsigned Forwarded = R.run(K.getBody());
  support::traceCounter("cir.scalarrepl.forwarded", Forwarded);
  // Forwarding introduces Mov chains and may leave dead stores behind.
  cleanup(K);
  return Forwarded;
}

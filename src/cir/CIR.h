//===- CIR.h - The C-like intermediate representation of LGen -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C-IR is the lowest abstraction level of the LGen pipeline (thesis §2.1.4).
/// A kernel is a tree of loops with straight-line instruction lists in
/// between; all addressing is affine in the enclosing loop indices, which is
/// exactly the "format of generated code with respect to memory accesses" of
/// Listing 3.1 and what makes the alignment analysis of §3.2 applicable.
///
/// The instruction set models the vector subsets of SSSE3 and NEON that the
/// ν-BLACs use, plus the *generic* load/store instructions of §3.1, which
/// carry a memory map (lane ↔ element-offset association) and are lowered to
/// concrete instructions only immediately before unparsing.
///
/// Registers are single-assignment: every register has exactly one defining
/// instruction. Loop-carried values never live in registers — following the
/// load-compute-store discipline of the ν-BLAC/Loader/Storer codelets, they
/// travel through local arrays and are forwarded into registers by scalar
/// replacement after unrolling.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_CIR_CIR_H
#define LGEN_CIR_CIR_H

#include "support/Support.h"

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lgen {
namespace cir {

using RegId = unsigned;
using LoopId = unsigned;
using ArrayId = unsigned;

constexpr RegId NoReg = ~0u;

/// Maximum number of vector lanes supported by any virtual ISA (AVX-width).
constexpr unsigned MaxLanes = 8;

/// A register is either a scalar float or a vector of \c Lanes floats.
struct RegInfo {
  unsigned Lanes = 1;
  std::string Name; ///< Optional, for readable unparsed code.
};

/// An affine expression c0 + sum(ci * loop_i) over enclosing loop indices.
/// Offsets are measured in *elements* (floats), not bytes.
class AffineExpr {
public:
  AffineExpr() = default;
  /*implicit*/ AffineExpr(int64_t Constant) : Constant(Constant) {}

  static AffineExpr loopIndex(LoopId Id, int64_t Coeff = 1) {
    AffineExpr E;
    if (Coeff != 0)
      E.Terms.push_back({Id, Coeff});
    return E;
  }

  int64_t getConstant() const { return Constant; }
  const std::vector<std::pair<LoopId, int64_t>> &getTerms() const {
    return Terms;
  }

  bool isConstant() const { return Terms.empty(); }

  /// Coefficient of loop \p Id (zero if absent).
  int64_t getCoeff(LoopId Id) const;

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator*(int64_t Factor) const;
  bool operator==(const AffineExpr &Other) const {
    return Constant == Other.Constant && Terms == Other.Terms;
  }

  /// Substitutes loop \p Id with the constant \p Value.
  AffineExpr substitute(LoopId Id, int64_t Value) const;

  /// Substitutes loop \p Id with (loop Id) + \p Delta, i.e. shifts the index.
  AffineExpr shiftIndex(LoopId Id, int64_t Delta) const;

  /// Evaluates given concrete loop index values; \p IndexOf returns the
  /// current value of a loop index.
  template <typename Fn> int64_t evaluate(Fn IndexOf) const {
    int64_t V = Constant;
    for (const auto &[Id, Coeff] : Terms)
      V += Coeff * IndexOf(Id);
    return V;
  }

  std::string str() const;

private:
  void addTerm(LoopId Id, int64_t Coeff);

  int64_t Constant = 0;
  /// Sorted by LoopId; coefficients are nonzero.
  std::vector<std::pair<LoopId, int64_t>> Terms;
};

/// A memory address: base array plus affine element offset.
struct Addr {
  ArrayId Array = 0;
  AffineExpr Offset;

  bool operator==(const Addr &Other) const {
    return Array == Other.Array && Offset == Other.Offset;
  }
};

/// Memory map of a generic load/store (§3.1): for each vector lane, the
/// element offset relative to the instruction's base address, or \c None.
/// For a generic load a \c None lane is filled with zero; for a generic
/// store a \c None lane is skipped. Offsets may be strided (e.g. {0, N, 2N}
/// for a vertical segment of a row-major matrix with row stride N).
struct MemMap {
  static constexpr int64_t None = std::numeric_limits<int64_t>::min();

  std::vector<int64_t> LaneOffsets;

  static MemMap contiguous(unsigned Lanes, unsigned Active = ~0u);
  static MemMap strided(unsigned Lanes, int64_t Stride, unsigned Active = ~0u);

  unsigned numLanes() const { return LaneOffsets.size(); }

  /// Number of lanes actually touching memory.
  unsigned numActiveLanes() const;

  /// True if the active lanes are exactly lanes [0, k) with offsets
  /// [0, k), i.e. a plain (possibly partial) contiguous access.
  bool isContiguousPrefix() const;

  /// True if all lanes are active with offsets 0..L-1.
  bool isFullContiguous() const;

  /// True if active lanes form offsets {0, s, 2s, ...} for some stride
  /// s > 1; returns the stride via \p StrideOut.
  bool isStrided(int64_t &StrideOut) const;

  bool operator==(const MemMap &Other) const {
    return LaneOffsets == Other.LaneOffsets;
  }

  std::string str() const;
};

/// C-IR opcodes. Element-wise arithmetic applies to both scalar (1 lane)
/// and vector registers.
enum class Opcode {
  FConst,        ///< Dest = Imm broadcast to every lane.
  Mov,           ///< Dest = A.
  Add,           ///< Dest = A + B, element-wise.
  Sub,           ///< Dest = A - B.
  Mul,           ///< Dest = A * B.
  Div,           ///< Dest = A / B.
  Neg,           ///< Dest = -A.
  FMA,           ///< Dest = A * B + C (NEON vmla).
  HAdd,          ///< SSE horizontal add: 4-lane [a0+a1,a2+a3,b0+b1,b2+b3].
  DotPS,         ///< SSE4.1 dpps: Dest[0] = Σ_j A[j]*B[j], other lanes 0.
  MulLane,       ///< Dest[i] = A[i] * B[Lane] (NEON vmul_lane).
  FMALane,       ///< Dest[i] = C[i] + A[i] * B[Lane] (NEON vmla_lane).
  Broadcast,     ///< Dest[i] = A[Lane].
  Shuffle,       ///< Dest[i] = Pattern[i] < L ? A[Pattern[i]] : B[Pat[i]-L].
  Insert,        ///< Dest = A with lane Lane replaced by scalar B.
  Extract,       ///< Scalar Dest = A[Lane].
  GetLow,        ///< Dest (L/2 lanes) = low half of A (NEON vget_low).
  GetHigh,       ///< Dest (L/2 lanes) = high half of A (NEON vget_high).
  Combine,       ///< Dest (2L lanes) = A in low half, B in high half.
  Zero,          ///< Dest = 0 in every lane.
  Load,          ///< Dest loaded contiguously from Address (Aligned flag).
  Store,         ///< A stored contiguously to Address (Aligned flag).
  LoadBroadcast, ///< Dest[i] = mem[Address] (_mm_load1_ps / vld1q_dup_f32).
  LoadLane,      ///< Dest = A with lane Lane loaded from mem[Address].
  StoreLane,     ///< mem[Address] = A[Lane].
  GLoad,         ///< Generic load with memory map (§3.1).
  GStore,        ///< Generic store with memory map (§3.1).
};

const char *opcodeName(Opcode Op);

/// Returns true for opcodes that read or write memory.
bool isMemoryOpcode(Opcode Op);

/// A single C-IR instruction. Fields beyond the register operands are only
/// meaningful for the opcodes that use them.
struct Inst {
  Opcode Op;
  RegId Dest = NoReg;
  RegId A = NoReg;
  RegId B = NoReg;
  RegId C = NoReg;
  double Imm = 0.0;
  Addr Address;
  MemMap Map;
  unsigned Lane = 0;
  std::array<uint8_t, MaxLanes> Pattern = {};
  bool Aligned = false;

  bool isLoad() const {
    return Op == Opcode::Load || Op == Opcode::LoadBroadcast ||
           Op == Opcode::LoadLane || Op == Opcode::GLoad;
  }
  bool isStore() const {
    return Op == Opcode::Store || Op == Opcode::StoreLane ||
           Op == Opcode::GStore;
  }

  /// Visits every register operand read by this instruction.
  template <typename Fn> void forEachUse(Fn F) const {
    if (A != NoReg)
      F(A);
    if (B != NoReg)
      F(B);
    if (C != NoReg)
      F(C);
  }
};

struct Loop;

/// A node in a kernel body: either a straight-line instruction or a loop.
class Node {
public:
  /*implicit*/ Node(Inst I) : TheInst(std::move(I)) {}
  /*implicit*/ Node(std::unique_ptr<Loop> L) : TheLoop(std::move(L)) {}
  Node(Node &&) = default;
  Node &operator=(Node &&) = default;

  bool isInst() const { return TheInst.has_value(); }
  bool isLoop() const { return TheLoop != nullptr; }

  Inst &inst() {
    assert(isInst() && "node is not an instruction");
    return *TheInst;
  }
  const Inst &inst() const {
    assert(isInst() && "node is not an instruction");
    return *TheInst;
  }
  Loop &loop() {
    assert(isLoop() && "node is not a loop");
    return *TheLoop;
  }
  const Loop &loop() const {
    assert(isLoop() && "node is not a loop");
    return *TheLoop;
  }

  Node clone() const;

private:
  std::optional<Inst> TheInst;
  std::unique_ptr<Loop> TheLoop;
};

/// A counted loop `for (i = Start; i < End; i += Step)`. Bounds are compile
/// time constants, as in all LGen-generated code (Listing 3.1).
struct Loop {
  LoopId Id = 0;
  int64_t Start = 0;
  int64_t End = 0;
  int64_t Step = 1;
  std::vector<Node> Body;

  /// Trip count of the loop (number of executed iterations).
  int64_t tripCount() const {
    if (End <= Start || Step <= 0)
      return 0;
    return ceilDiv(End - Start, Step);
  }

  std::unique_ptr<Loop> clone() const;
};

/// Role of an array within a kernel.
enum class ArrayKind {
  Input,  ///< const float* kernel parameter.
  Output, ///< float* kernel parameter.
  InOut,  ///< float* parameter that is both read and written.
  Temp,   ///< Kernel-local scratch array.
};

struct ArrayInfo {
  std::string Name;
  int64_t NumElements = 0;
  ArrayKind Kind = ArrayKind::Temp;

  bool isParam() const { return Kind != ArrayKind::Temp; }
};

/// A complete C-IR kernel: parameter/temp arrays, a register file, and a
/// body of loops and instructions.
class Kernel {
public:
  explicit Kernel(std::string Name = "kernel") : Name(std::move(Name)) {}
  Kernel(Kernel &&) = default;
  Kernel &operator=(Kernel &&) = default;

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  ArrayId addArray(std::string ArrName, int64_t NumElements, ArrayKind Kind);
  const ArrayInfo &getArray(ArrayId Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }
  ArrayInfo &getArray(ArrayId Id) {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }
  unsigned getNumArrays() const { return Arrays.size(); }
  const std::vector<ArrayInfo> &getArrays() const { return Arrays; }

  RegId newReg(unsigned Lanes, std::string RegName = "");
  const RegInfo &getReg(RegId Id) const {
    assert(Id < Regs.size() && "register id out of range");
    return Regs[Id];
  }
  unsigned getNumRegs() const { return Regs.size(); }
  unsigned lanesOf(RegId Id) const { return getReg(Id).Lanes; }

  LoopId newLoopId() { return NextLoop++; }
  unsigned getNumLoopIds() const { return NextLoop; }

  std::vector<Node> &getBody() { return Body; }
  const std::vector<Node> &getBody() const { return Body; }

  /// Deep copy (used by the alignment-versioning machinery of §3.2.4).
  Kernel clone() const;

  /// Human-readable dump of the whole kernel.
  std::string str() const;

  /// Walks every instruction in the kernel in syntactic order.
  template <typename Fn> void forEachInst(Fn F) {
    forEachInstIn(Body, F);
  }
  template <typename Fn> void forEachInst(Fn F) const {
    forEachInstIn(Body, F);
  }

  /// Runs basic structural sanity checks (register types, operand lane
  /// agreement, single assignment). Aborts on violation.
  void verify() const;

private:
  template <typename Body, typename Fn>
  static void forEachInstIn(Body &&B, Fn &F) {
    for (auto &N : B) {
      if (N.isInst())
        F(N.inst());
      else
        forEachInstIn(N.loop().Body, F);
    }
  }

  std::string Name;
  std::vector<ArrayInfo> Arrays;
  std::vector<RegInfo> Regs;
  std::vector<Node> Body;
  LoopId NextLoop = 0;
};

} // namespace cir
} // namespace lgen

#endif // LGEN_CIR_CIR_H

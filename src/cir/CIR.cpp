//===- CIR.cpp - C-IR data structure implementation ------------*- C++ -*-===//

#include "cir/CIR.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace lgen;
using namespace lgen::cir;

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

int64_t AffineExpr::getCoeff(LoopId Id) const {
  for (const auto &[L, C] : Terms)
    if (L == Id)
      return C;
  return 0;
}

void AffineExpr::addTerm(LoopId Id, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Id,
      [](const std::pair<LoopId, int64_t> &T, LoopId I) { return T.first < I; });
  if (It != Terms.end() && It->first == Id) {
    It->second += Coeff;
    if (It->second == 0)
      Terms.erase(It);
    return;
  }
  Terms.insert(It, {Id, Coeff});
}

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  AffineExpr Result = *this;
  Result.Constant += Other.Constant;
  for (const auto &[Id, Coeff] : Other.Terms)
    Result.addTerm(Id, Coeff);
  return Result;
}

AffineExpr AffineExpr::operator*(int64_t Factor) const {
  AffineExpr Result;
  if (Factor == 0)
    return Result;
  Result.Constant = Constant * Factor;
  Result.Terms = Terms;
  for (auto &[Id, Coeff] : Result.Terms)
    Coeff *= Factor;
  return Result;
}

AffineExpr AffineExpr::substitute(LoopId Id, int64_t Value) const {
  AffineExpr Result;
  Result.Constant = Constant;
  for (const auto &[L, C] : Terms) {
    if (L == Id)
      Result.Constant += C * Value;
    else
      Result.Terms.push_back({L, C});
  }
  return Result;
}

AffineExpr AffineExpr::shiftIndex(LoopId Id, int64_t Delta) const {
  AffineExpr Result = *this;
  Result.Constant += getCoeff(Id) * Delta;
  return Result;
}

std::string AffineExpr::str() const {
  std::ostringstream OS;
  OS << Constant;
  for (const auto &[Id, Coeff] : Terms)
    OS << " + " << Coeff << "*i" << Id;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// MemMap
//===----------------------------------------------------------------------===//

MemMap MemMap::contiguous(unsigned Lanes, unsigned Active) {
  if (Active == ~0u)
    Active = Lanes;
  assert(Active <= Lanes && "more active lanes than lanes");
  MemMap M;
  M.LaneOffsets.resize(Lanes, None);
  for (unsigned I = 0; I != Active; ++I)
    M.LaneOffsets[I] = I;
  return M;
}

MemMap MemMap::strided(unsigned Lanes, int64_t Stride, unsigned Active) {
  if (Active == ~0u)
    Active = Lanes;
  assert(Active <= Lanes && "more active lanes than lanes");
  MemMap M;
  M.LaneOffsets.resize(Lanes, None);
  for (unsigned I = 0; I != Active; ++I)
    M.LaneOffsets[I] = static_cast<int64_t>(I) * Stride;
  return M;
}

unsigned MemMap::numActiveLanes() const {
  unsigned N = 0;
  for (int64_t O : LaneOffsets)
    if (O != None)
      ++N;
  return N;
}

bool MemMap::isContiguousPrefix() const {
  unsigned Active = numActiveLanes();
  if (Active == 0)
    return false;
  for (unsigned I = 0; I != LaneOffsets.size(); ++I) {
    if (I < Active) {
      if (LaneOffsets[I] != static_cast<int64_t>(I))
        return false;
    } else if (LaneOffsets[I] != None) {
      return false;
    }
  }
  return true;
}

bool MemMap::isFullContiguous() const {
  return isContiguousPrefix() && numActiveLanes() == LaneOffsets.size();
}

bool MemMap::isStrided(int64_t &StrideOut) const {
  unsigned Active = numActiveLanes();
  if (Active < 2)
    return false;
  // Active lanes must be a prefix.
  for (unsigned I = 0; I != Active; ++I)
    if (LaneOffsets[I] == None)
      return false;
  for (unsigned I = Active; I != LaneOffsets.size(); ++I)
    if (LaneOffsets[I] != None)
      return false;
  int64_t Stride = LaneOffsets[1] - LaneOffsets[0];
  if (Stride <= 1 || LaneOffsets[0] != 0)
    return false;
  for (unsigned I = 1; I != Active; ++I)
    if (LaneOffsets[I] - LaneOffsets[I - 1] != Stride)
      return false;
  StrideOut = Stride;
  return true;
}

std::string MemMap::str() const {
  std::ostringstream OS;
  OS << "{";
  for (unsigned I = 0; I != LaneOffsets.size(); ++I) {
    if (I)
      OS << ",";
    if (LaneOffsets[I] == None)
      OS << "_";
    else
      OS << LaneOffsets[I];
  }
  OS << "}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Opcode helpers
//===----------------------------------------------------------------------===//

const char *cir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::FConst:
    return "fconst";
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Neg:
    return "neg";
  case Opcode::FMA:
    return "fma";
  case Opcode::HAdd:
    return "hadd";
  case Opcode::DotPS:
    return "dpps";
  case Opcode::MulLane:
    return "mullane";
  case Opcode::FMALane:
    return "fmalane";
  case Opcode::Broadcast:
    return "broadcast";
  case Opcode::Shuffle:
    return "shuffle";
  case Opcode::Insert:
    return "insert";
  case Opcode::Extract:
    return "extract";
  case Opcode::GetLow:
    return "getlow";
  case Opcode::GetHigh:
    return "gethigh";
  case Opcode::Combine:
    return "combine";
  case Opcode::Zero:
    return "zero";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::LoadBroadcast:
    return "loadbcast";
  case Opcode::LoadLane:
    return "loadlane";
  case Opcode::StoreLane:
    return "storelane";
  case Opcode::GLoad:
    return "gload";
  case Opcode::GStore:
    return "gstore";
  }
  LGEN_UNREACHABLE("unknown opcode");
}

bool cir::isMemoryOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::LoadBroadcast:
  case Opcode::LoadLane:
  case Opcode::StoreLane:
  case Opcode::GLoad:
  case Opcode::GStore:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Node / Loop cloning
//===----------------------------------------------------------------------===//

Node Node::clone() const {
  if (isInst())
    return Node(*TheInst);
  return Node(TheLoop->clone());
}

std::unique_ptr<Loop> Loop::clone() const {
  auto L = std::make_unique<Loop>();
  L->Id = Id;
  L->Start = Start;
  L->End = End;
  L->Step = Step;
  L->Body.reserve(Body.size());
  for (const Node &N : Body)
    L->Body.push_back(N.clone());
  return L;
}

//===----------------------------------------------------------------------===//
// Kernel
//===----------------------------------------------------------------------===//

ArrayId Kernel::addArray(std::string ArrName, int64_t NumElements,
                         ArrayKind Kind) {
  assert(NumElements > 0 && "array must have at least one element");
  Arrays.push_back({std::move(ArrName), NumElements, Kind});
  return Arrays.size() - 1;
}

RegId Kernel::newReg(unsigned Lanes, std::string RegName) {
  assert(Lanes >= 1 && Lanes <= MaxLanes && "unsupported lane count");
  Regs.push_back({Lanes, std::move(RegName)});
  return Regs.size() - 1;
}

Kernel Kernel::clone() const {
  Kernel K(Name);
  K.Arrays = Arrays;
  K.Regs = Regs;
  K.NextLoop = NextLoop;
  K.Body.reserve(Body.size());
  for (const Node &N : Body)
    K.Body.push_back(N.clone());
  return K;
}

namespace {

void printInst(std::ostringstream &OS, const Inst &I, int Indent) {
  for (int J = 0; J != Indent; ++J)
    OS << "  ";
  OS << opcodeName(I.Op);
  if (I.Dest != NoReg)
    OS << " r" << I.Dest << " <-";
  auto PrintReg = [&](RegId R) {
    if (R != NoReg)
      OS << " r" << R;
  };
  PrintReg(I.A);
  PrintReg(I.B);
  PrintReg(I.C);
  if (I.Op == Opcode::FConst)
    OS << " " << I.Imm;
  if (isMemoryOpcode(I.Op))
    OS << " [arr" << I.Address.Array << " + " << I.Address.Offset.str() << "]"
       << (I.Aligned ? " aligned" : "");
  if (I.Op == Opcode::GLoad || I.Op == Opcode::GStore)
    OS << " map" << I.Map.str();
  if (I.Op == Opcode::MulLane || I.Op == Opcode::FMALane ||
      I.Op == Opcode::Broadcast || I.Op == Opcode::Insert ||
      I.Op == Opcode::Extract || I.Op == Opcode::LoadLane ||
      I.Op == Opcode::StoreLane)
    OS << " lane=" << I.Lane;
  OS << "\n";
}

void printBody(std::ostringstream &OS, const std::vector<Node> &Body,
               int Indent) {
  for (const Node &N : Body) {
    if (N.isInst()) {
      printInst(OS, N.inst(), Indent);
      continue;
    }
    const Loop &L = N.loop();
    for (int J = 0; J != Indent; ++J)
      OS << "  ";
    OS << "for i" << L.Id << " = " << L.Start << " .. " << L.End
       << " step " << L.Step << " {\n";
    printBody(OS, L.Body, Indent + 1);
    for (int J = 0; J != Indent; ++J)
      OS << "  ";
    OS << "}\n";
  }
}

} // namespace

std::string Kernel::str() const {
  std::ostringstream OS;
  OS << "kernel " << Name << "(";
  bool First = true;
  for (const ArrayInfo &A : Arrays) {
    if (!A.isParam())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << (A.Kind == ArrayKind::Input ? "const " : "") << "float " << A.Name
       << "[" << A.NumElements << "]";
  }
  OS << ") {\n";
  for (const ArrayInfo &A : Arrays)
    if (!A.isParam())
      OS << "  float " << A.Name << "[" << A.NumElements << "];\n";
  printBody(OS, Body, 1);
  OS << "}\n";
  return OS.str();
}

namespace {

void verifyBody(const Kernel &K, const std::vector<Node> &Body,
                std::set<RegId> &Defined, std::vector<LoopId> &ActiveLoops) {
  for (const Node &N : Body) {
    if (N.isLoop()) {
      const Loop &L = N.loop();
      assert(L.Step > 0 && "loop step must be positive");
      ActiveLoops.push_back(L.Id);
      verifyBody(K, L.Body, Defined, ActiveLoops);
      ActiveLoops.pop_back();
      continue;
    }
    const Inst &I = N.inst();
    I.forEachUse([&](RegId R) {
      assert(R < K.getNumRegs() && "use of undefined register id");
      assert(Defined.count(R) && "use before definition");
      (void)R;
    });
    if (I.Dest != NoReg) {
      assert(I.Dest < K.getNumRegs() && "definition of out-of-range register");
      [[maybe_unused]] bool Inserted = Defined.insert(I.Dest).second;
      assert(Inserted && "register defined more than once (SSA violation)");
    }
    if (isMemoryOpcode(I.Op)) {
      assert(I.Address.Array < K.getNumArrays() && "access of unknown array");
      for (const auto &[LoopIdx, Coeff] : I.Address.Offset.getTerms()) {
        (void)Coeff;
        [[maybe_unused]] bool Found =
            std::find(ActiveLoops.begin(), ActiveLoops.end(), LoopIdx) !=
            ActiveLoops.end();
        assert(Found && "address references a loop index not in scope");
      }
    }
    if (I.Op == Opcode::GLoad || I.Op == Opcode::GStore) {
      RegId R = I.Op == Opcode::GLoad ? I.Dest : I.A;
      assert(I.Map.numLanes() == K.lanesOf(R) &&
             "memory map lane count disagrees with register width");
      (void)R;
    }
  }
}

} // namespace

void Kernel::verify() const {
  std::set<RegId> Defined;
  std::vector<LoopId> ActiveLoops;
  verifyBody(*this, Body, Defined, ActiveLoops);
}

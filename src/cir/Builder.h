//===- Builder.h - Convenience builder for C-IR kernels --------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small IRBuilder-style helper that the ν-BLAC codelets, the Σ-LL
/// lowering, and the baseline generators use to emit C-IR. It maintains an
/// insertion-point stack so loop bodies can be populated with plain
/// callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_CIR_BUILDER_H
#define LGEN_CIR_BUILDER_H

#include "cir/CIR.h"

#include <functional>

namespace lgen {
namespace cir {

class Builder {
public:
  explicit Builder(Kernel &K) : K(K) { InsertStack.push_back(&K.getBody()); }

  Kernel &kernel() { return K; }

  //===--------------------------------------------------------------------===//
  // Structure
  //===--------------------------------------------------------------------===//

  /// Emits `for (i = Start; i < End; i += Step)` and runs \p Body with the
  /// new loop's id to populate it. Returns the loop id.
  LoopId forLoop(int64_t Start, int64_t End, int64_t Step,
                 const std::function<void(LoopId)> &Body);

  //===--------------------------------------------------------------------===//
  // Arithmetic
  //===--------------------------------------------------------------------===//

  RegId fconst(unsigned Lanes, double Value);
  RegId mov(RegId A);
  RegId add(RegId A, RegId B);
  RegId sub(RegId A, RegId B);
  RegId mul(RegId A, RegId B);
  RegId div(RegId A, RegId B);
  RegId neg(RegId A);
  /// Dest = A * B + C.
  RegId fma(RegId A, RegId B, RegId C);
  RegId hadd(RegId A, RegId B);
  /// SSE4.1 dot product: Dest[0] = Σ A[j]·B[j], other lanes zero.
  RegId dotps(RegId A, RegId B);
  RegId mulLane(RegId A, RegId B, unsigned Lane);
  /// Dest = C + A * B[Lane].
  RegId fmaLane(RegId A, RegId B, unsigned Lane, RegId C);
  RegId broadcast(RegId A, unsigned Lane, unsigned DestLanes);
  RegId shuffle(RegId A, RegId B, const std::vector<uint8_t> &Pattern);
  RegId insert(RegId A, RegId ScalarB, unsigned Lane);
  RegId extract(RegId A, unsigned Lane);
  RegId getLow(RegId A);
  RegId getHigh(RegId A);
  RegId combine(RegId Lo, RegId Hi);
  RegId zero(unsigned Lanes);

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  RegId load(unsigned Lanes, Addr Address, bool Aligned = false);
  void store(RegId A, Addr Address, bool Aligned = false);
  RegId loadBroadcast(unsigned Lanes, Addr Address);
  RegId loadLane(RegId Base, unsigned Lane, Addr Address);
  void storeLane(RegId A, unsigned Lane, Addr Address);
  /// Generic load (§3.1): lanes with MemMap::None are zero-filled.
  RegId gload(unsigned Lanes, Addr Address, MemMap Map);
  /// Generic store (§3.1): lanes with MemMap::None are skipped.
  void gstore(RegId A, Addr Address, MemMap Map);

  /// Raw instruction append, for the rare shapes without a helper.
  void append(Inst I);

private:
  RegId emit(Inst I, unsigned DestLanes);

  Kernel &K;
  std::vector<std::vector<Node> *> InsertStack;
};

} // namespace cir
} // namespace lgen

#endif // LGEN_CIR_BUILDER_H

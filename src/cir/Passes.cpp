//===- Passes.cpp - C-IR optimization passes -------------------*- C++ -*-===//

#include "cir/Passes.h"

#include "support/Trace.h"

#include <map>
#include <set>

using namespace lgen;
using namespace lgen::cir;

//===----------------------------------------------------------------------===//
// Loop unrolling
//===----------------------------------------------------------------------===//

namespace {

/// Substitutes loop \p Id with constant \p Value in every address of
/// \p Body (recursively).
void substituteIndex(std::vector<Node> &Body, LoopId Id, int64_t Value) {
  for (Node &N : Body) {
    if (N.isLoop()) {
      substituteIndex(N.loop().Body, Id, Value);
      continue;
    }
    Inst &I = N.inst();
    if (isMemoryOpcode(I.Op))
      I.Address.Offset = I.Address.Offset.substitute(Id, Value);
  }
}

/// Clones \p Body renaming every register defined inside it; uses of
/// registers defined outside are preserved. Nested loops get fresh ids.
std::vector<Node> cloneRenamed(Kernel &K, const std::vector<Node> &Body,
                               std::map<RegId, RegId> &RegMap) {
  std::vector<Node> Result;
  Result.reserve(Body.size());
  for (const Node &N : Body) {
    if (N.isLoop()) {
      const Loop &L = N.loop();
      auto NewLoop = std::make_unique<Loop>();
      // Keep the same loop id: nested loops of distinct clones never end up
      // as siblings referencing each other's indices, and address terms must
      // keep referring to the (cloned) enclosing loop.
      NewLoop->Id = L.Id;
      NewLoop->Start = L.Start;
      NewLoop->End = L.End;
      NewLoop->Step = L.Step;
      NewLoop->Body = cloneRenamed(K, L.Body, RegMap);
      Result.push_back(Node(std::move(NewLoop)));
      continue;
    }
    Inst I = N.inst();
    auto Remap = [&](RegId R) {
      auto It = RegMap.find(R);
      return It == RegMap.end() ? R : It->second;
    };
    if (I.A != NoReg)
      I.A = Remap(I.A);
    if (I.B != NoReg)
      I.B = Remap(I.B);
    if (I.C != NoReg)
      I.C = Remap(I.C);
    if (I.Dest != NoReg) {
      RegId NewReg = K.newReg(K.lanesOf(I.Dest));
      RegMap[I.Dest] = NewReg;
      I.Dest = NewReg;
    }
    Result.push_back(Node(std::move(I)));
  }
  return Result;
}

void unrollInBody(Kernel &K, std::vector<Node> &Body, int64_t MaxTrip) {
  std::vector<Node> Result;
  for (Node &N : Body) {
    if (!N.isLoop()) {
      Result.push_back(std::move(N));
      continue;
    }
    Loop &L = N.loop();
    unrollInBody(K, L.Body, MaxTrip);
    if (L.tripCount() > MaxTrip) {
      Result.push_back(std::move(N));
      continue;
    }
    support::traceCounter("cir.unroll.full");
    for (int64_t V = L.Start; V < L.End; V += L.Step) {
      std::map<RegId, RegId> RegMap;
      std::vector<Node> Iter = cloneRenamed(K, L.Body, RegMap);
      substituteIndex(Iter, L.Id, V);
      for (Node &M : Iter)
        Result.push_back(std::move(M));
    }
  }
  Body = std::move(Result);
}

/// Partially unrolls \p L in place by \p Factor.
void partialUnrollLoop(Kernel &K, Loop &L, int64_t Factor);

bool unrollByInBody(Kernel &K, std::vector<Node> &Body, LoopId Id,
                    int64_t Factor) {
  for (Node &N : Body) {
    if (!N.isLoop())
      continue;
    Loop &L = N.loop();
    if (L.Id != Id) {
      if (unrollByInBody(K, L.Body, Id, Factor))
        return true;
      continue;
    }
    partialUnrollLoop(K, L, Factor);
    return true;
  }
  return false;
}

void partialUnrollLoop(Kernel &K, Loop &L, int64_t Factor) {
  {
    assert(L.tripCount() % Factor == 0 &&
           "partial unroll factor must divide the trip count");
    LoopId Id = L.Id;
    std::vector<Node> NewBody;
    for (int64_t T = 0; T != Factor; ++T) {
      std::map<RegId, RegId> RegMap;
      std::vector<Node> Copy = cloneRenamed(K, L.Body, RegMap);
      // Shift index: occurrences of i become i + T*Step.
      if (T != 0)
        for (Node &M : Copy) {
          if (M.isInst()) {
            Inst &I = M.inst();
            if (isMemoryOpcode(I.Op))
              I.Address.Offset = I.Address.Offset.shiftIndex(Id, T * L.Step);
          } else {
            // Nested loops: shift addresses recursively.
            struct Shifter {
              LoopId Id;
              int64_t Delta;
              void run(std::vector<Node> &B) {
                for (Node &X : B) {
                  if (X.isLoop()) {
                    run(X.loop().Body);
                    continue;
                  }
                  Inst &I = X.inst();
                  if (isMemoryOpcode(I.Op))
                    I.Address.Offset = I.Address.Offset.shiftIndex(Id, Delta);
                }
              }
            } S{Id, T * L.Step};
            S.run(M.loop().Body);
          }
        }
      for (Node &M : Copy)
        NewBody.push_back(std::move(M));
    }
    L.Step *= Factor;
    L.Body = std::move(NewBody);
  }
}

} // namespace

void cir::unrollLoops(Kernel &K, int64_t MaxTrip) {
  unrollInBody(K, K.getBody(), MaxTrip);
}

void cir::unrollLoopBy(Kernel &K, LoopId Id, int64_t Factor) {
  if (Factor <= 1)
    return;
  support::traceCounter("cir.unroll.partial");
  [[maybe_unused]] bool Found = unrollByInBody(K, K.getBody(), Id, Factor);
  assert(Found && "loop id not found for partial unrolling");
}

namespace {

void unrollAllInBody(Kernel &K, std::vector<Node> &Body, int64_t MaxFactor) {
  for (Node &N : Body) {
    if (!N.isLoop())
      continue;
    Loop &L = N.loop();
    // Innermost first: unrolling the outer loop afterwards clones the
    // already-unrolled inner bodies.
    unrollAllInBody(K, L.Body, MaxFactor);
    int64_t Trip = L.tripCount();
    int64_t Factor = 1;
    for (int64_t F = 2; F <= MaxFactor && F <= Trip; ++F)
      if (Trip % F == 0)
        Factor = F;
    if (Factor > 1)
      partialUnrollLoop(K, L, Factor);
  }
}

} // namespace

void cir::unrollAllLoopsBy(Kernel &K, int64_t MaxFactor) {
  if (MaxFactor <= 1)
    return;
  unrollAllInBody(K, K.getBody(), MaxFactor);
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

void cir::copyPropagation(Kernel &K) {
  std::map<RegId, RegId> CopyOf;
  K.forEachInst([&](Inst &I) {
    auto Resolve = [&](RegId R) {
      while (true) {
        auto It = CopyOf.find(R);
        if (It == CopyOf.end())
          return R;
        R = It->second;
      }
    };
    if (I.A != NoReg)
      I.A = Resolve(I.A);
    if (I.B != NoReg)
      I.B = Resolve(I.B);
    if (I.C != NoReg)
      I.C = Resolve(I.C);
    if (I.Op == Opcode::Mov)
      CopyOf[I.Dest] = I.A;
  });
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

namespace {

void collectLoadedArrays(const Kernel &K, std::set<ArrayId> &Loaded) {
  K.forEachInst([&](const Inst &I) {
    if (I.isLoad())
      Loaded.insert(I.Address.Array);
  });
}

/// Removes dead instructions in \p Body; returns true if anything changed.
bool dceOnce(Kernel &K, std::vector<Node> &Body) {
  // Compute the set of live registers: operands of stores and of any
  // instruction whose own result is (transitively) live. In SSA with
  // syntactic def-before-use this converges walking instructions backwards
  // repeatedly; a simple fixpoint over the full kernel is plenty fast here.
  std::set<ArrayId> LoadedArrays;
  collectLoadedArrays(K, LoadedArrays);
  auto StoreIsLive = [&](const Inst &I) {
    if (!I.isStore())
      return false;
    const ArrayInfo &A = K.getArray(I.Address.Array);
    return A.isParam() || LoadedArrays.count(I.Address.Array) != 0;
  };

  std::set<RegId> Live;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    K.forEachInst([&](const Inst &I) {
      bool ResultLive = I.Dest != NoReg && Live.count(I.Dest) != 0;
      if (!ResultLive && !StoreIsLive(I))
        return;
      I.forEachUse([&](RegId R) {
        if (Live.insert(R).second)
          Changed = true;
      });
    });
  }

  // Remove instructions that neither define a live register nor are live
  // stores, and loops that became empty.
  struct Pruner {
    Kernel &K;
    const std::set<RegId> &Live;
    decltype(StoreIsLive) &IsLiveStore;
    bool Removed = false;
    void run(std::vector<Node> &B) {
      std::vector<Node> Kept;
      for (Node &N : B) {
        if (N.isLoop()) {
          run(N.loop().Body);
          if (!N.loop().Body.empty())
            Kept.push_back(std::move(N));
          else
            Removed = true;
          continue;
        }
        const Inst &I = N.inst();
        bool Keep = (I.Dest != NoReg && Live.count(I.Dest)) || IsLiveStore(I);
        if (Keep)
          Kept.push_back(std::move(N));
        else
          Removed = true;
      }
      B = std::move(Kept);
    }
  } P{K, Live, StoreIsLive};
  P.run(Body);
  return P.Removed;
}

} // namespace

void cir::deadCodeElim(Kernel &K) {
  // Removing a dead load can make a store to a temp array dead in the next
  // round, so iterate to a fixpoint.
  while (dceOnce(K, K.getBody()))
    ;
}

void cir::cleanup(Kernel &K) {
  // Pass-delta counters: only computed when a trace sink is installed and
  // the calling thread is not inside a muted autotuner evaluation, so the
  // untraced path never pays for the extra stats walks.
  support::Trace *T = support::Trace::active();
  bool Traced = T && !support::Trace::muted();
  KernelStats Before;
  if (Traced)
    Before = computeStats(K);

  copyPropagation(K);
  deadCodeElim(K);

  if (Traced) {
    KernelStats After = computeStats(K);
    auto Delta = [](unsigned B, unsigned A) -> uint64_t {
      return B > A ? B - A : 0;
    };
    T->addCounter("cir.cleanup.removedInsts",
                  Delta(Before.NumInsts, After.NumInsts));
    T->addCounter("cir.cleanup.removedShuffles",
                  Delta(Before.NumShuffles, After.NumShuffles));
    T->addCounter("cir.cleanup.removedLoads",
                  Delta(Before.NumLoads, After.NumLoads));
    T->addCounter("cir.cleanup.removedStores",
                  Delta(Before.NumStores, After.NumStores));
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

KernelStats cir::computeStats(const Kernel &K) {
  KernelStats S;
  struct Walker {
    KernelStats &S;
    void run(const std::vector<Node> &B) {
      for (const Node &N : B) {
        if (N.isLoop()) {
          ++S.NumLoops;
          run(N.loop().Body);
          continue;
        }
        const Inst &I = N.inst();
        ++S.NumInsts;
        if (I.isLoad())
          ++S.NumLoads;
        else if (I.isStore())
          ++S.NumStores;
        else if (I.Op == Opcode::Shuffle || I.Op == Opcode::Insert ||
                 I.Op == Opcode::Extract || I.Op == Opcode::Broadcast)
          ++S.NumShuffles;
        else if (I.Op != Opcode::Mov && I.Op != Opcode::FConst &&
                 I.Op != Opcode::Zero)
          ++S.NumArith;
      }
    }
  } W{S};
  W.run(K.getBody());
  return S;
}

//===- KernelCache.h - Persistent content-addressed kernel cache -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-tier cache of autotuned compilation results, keyed by an FNV-1a
/// fingerprint of (LL source, codegen-relevant Options, ISA, µarch):
///
///  * an in-memory LRU of finished \c CompiledKernel objects — a hit skips
///    the whole pipeline;
///  * a persisted tier of *tuned tiling plans* (JSON on disk, reusing the
///    Mediator JSON implementation) — a hit skips the autotuning search,
///    the dominant compile cost, and regenerates the kernel
///    deterministically from the stored plan.
///
/// Tuning knobs that cannot change the generated code (thread count, cache
/// location) are deliberately excluded from the fingerprint, so a kernel
/// tuned with 8 worker threads is a hit for a serial compile of the same
/// BLAC. Hit/miss/eviction activity is reported into the process-wide
/// \c support::Metrics registry (`kernelcache.*`) — the single source of
/// truth behind \c stats() and `lgen-cli --cache-stats`.
///
/// All methods are thread-safe; `Compiler::compileBatch` workers share one
/// instance.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_COMPILER_KERNELCACHE_H
#define LGEN_COMPILER_KERNELCACHE_H

#include "compiler/Compiler.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lgen {
namespace compiler {

/// Cache activity counters. Since PR 5 these are process-cumulative —
/// every KernelCache instance reports into the same `kernelcache.*`
/// counters in \c support::Metrics::global(), and \c KernelCache::stats()
/// reads them back from a snapshot.
struct CacheStats {
  /// Full-kernel hits served from the in-memory LRU.
  uint64_t MemoryHits = 0;
  /// Tuned-plan hits served from the persisted tier.
  uint64_t PlanHits = 0;
  uint64_t Misses = 0;
  /// Kernels dropped from the LRU because the capacity was reached.
  uint64_t Evictions = 0;
  /// Entries written (kernel + plan count as one store).
  uint64_t Stores = 0;

  uint64_t hits() const { return MemoryHits + PlanHits; }
};

class KernelCache {
public:
  /// \p Dir is where the plan tier persists (empty = in-memory only);
  /// \p MaxKernels bounds the in-memory LRU.
  explicit KernelCache(std::string Dir = defaultDir(),
                       size_t MaxKernels = 64);
  ~KernelCache();

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// FNV-1a fingerprint of (LL source, Options, ISA, µarch). \p Source
  /// should be the canonical program form (ll::Program::str()) so textual
  /// variants of the same BLAC collide intentionally.
  static uint64_t fingerprint(const std::string &Source, const Options &O);

  /// Full-kernel lookup in the LRU tier; null on miss (which is *not*
  /// counted — the miss is counted once, by lookupPlan).
  std::shared_ptr<const CompiledKernel> lookupKernel(uint64_t Key);

  /// Tuned-plan lookup in the persisted tier.
  bool lookupPlan(uint64_t Key, tiling::TilingPlan &PlanOut);

  /// Records the tuned plan (persisted) and, when \p Kernel is non-null,
  /// the finished kernel (LRU tier) for \p Key.
  void store(uint64_t Key, const tiling::TilingPlan &Plan,
             const std::string &Source, const Options &O,
             std::shared_ptr<const CompiledKernel> Kernel);

  /// Records only the finished kernel — the plan-hit path, where the
  /// persisted tier is already up to date.
  void storeKernel(uint64_t Key, std::shared_ptr<const CompiledKernel> Kernel);

  /// Process-wide cache activity, read from the Metrics registry (all
  /// instances share the counters).
  static CacheStats stats();
  size_t numKernels() const;
  size_t numPlans() const;
  const std::string &directory() const { return Dir; }

  /// Writes the plan tier to <Dir>/lgen-cache.json if dirty.
  void flush();

  /// $LGEN_CACHE_DIR, or empty (in-memory only) when unset.
  static std::string defaultDir();

private:
  struct LruEntry {
    uint64_t Key;
    std::shared_ptr<const CompiledKernel> Kernel;
  };
  struct PlanEntry {
    tiling::TilingPlan Plan;
    std::string Source;
    std::string Target;
    std::string ISA;
  };

  void loadDisk();
  void saveDiskLocked();
  /// Parses a persisted plan file into \p Out, skipping malformed entries
  /// (bad hex keys, missing plans, insane factors). Returns false when
  /// \p Text is not a plan file at all (unparseable / wrong shape).
  static bool parsePlanFile(const std::string &Text,
                            std::map<uint64_t, PlanEntry> &Out);
  void storeKernelLocked(uint64_t Key,
                         std::shared_ptr<const CompiledKernel> Kernel);
  std::string diskPath() const;

  std::string Dir;
  size_t MaxKernels;

  mutable std::mutex Mutex;
  std::list<LruEntry> Lru; // front = most recently used
  std::map<uint64_t, std::list<LruEntry>::iterator> LruIndex;
  std::map<uint64_t, PlanEntry> Plans;
  bool Dirty = false;
};

} // namespace compiler
} // namespace lgen

#endif // LGEN_COMPILER_KERNELCACHE_H

//===- KernelCache.h - Persistent content-addressed kernel cache -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-tier cache of autotuned compilation results, keyed by an FNV-1a
/// fingerprint of (LL source, codegen-relevant Options, ISA, µarch):
///
///  * an in-memory LRU of finished \c CompiledKernel objects — a hit skips
///    the whole pipeline;
///  * a persisted tier of *tuned tiling plans* (JSON on disk, reusing the
///    Mediator JSON implementation) — a hit skips the autotuning search,
///    the dominant compile cost, and regenerates the kernel
///    deterministically from the stored plan.
///
/// The in-memory tiers are lock-striped: the key space is split across N
/// shards (N chosen from the LRU capacity, or explicit), each with its own
/// mutex, open-addressed fingerprint→slot index, intrusive LRU list and
/// plan table. Service workers hitting distinct kernels therefore never
/// contend on a shared lock, and a warm lookup is a hash probe plus two
/// link swaps — no \c std::map walk, no allocation. The persisted tier is
/// unchanged on disk (one merged lgen-cache.json) and is serialized by a
/// dedicated persistence mutex so no shard lock is ever held across I/O.
///
/// Kernel slots can additionally carry a *pre-resolved native handle*: a
/// type-erased shared_ptr to the loaded runtime::NativeKernel whose .so is
/// already dlopen'd and whose `lgen_native_entry` is already resolved. A
/// warm dispatch therefore never touches the toolchain or dlsym. The
/// handle is type-erased (shared_ptr<const void>) so the compiler library
/// does not depend on the runtime library; eviction drops the handle
/// together with the kernel, and in-flight executions stay safe because
/// they hold their own shared_ptr reference.
///
/// Tuning knobs that cannot change the generated code (thread count, cache
/// location) are deliberately excluded from the fingerprint, so a kernel
/// tuned with 8 worker threads is a hit for a serial compile of the same
/// BLAC. Hit/miss/eviction activity is reported twice: into the
/// process-wide \c support::Metrics registry (`kernelcache.*`, behind the
/// static \c stats()) and into per-instance counters (behind
/// \c instanceStats()), so a tool that constructs several caches can still
/// attribute activity to one of them.
///
/// All methods are thread-safe; `Compiler::compileBatch` workers and the
/// compile service's connection workers share one instance.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_COMPILER_KERNELCACHE_H
#define LGEN_COMPILER_KERNELCACHE_H

#include "compiler/Compiler.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lgen {
namespace compiler {

/// Cache activity counters. Available at two scopes: \c KernelCache::stats()
/// reads the process-cumulative `kernelcache.*` counters from
/// \c support::Metrics::global() (every instance reports into them), while
/// \c KernelCache::instanceStats() reads counters owned by one instance.
struct CacheStats {
  /// Full-kernel hits served from the in-memory LRU.
  uint64_t MemoryHits = 0;
  /// Tuned-plan hits served from the persisted tier.
  uint64_t PlanHits = 0;
  /// Pre-resolved native-handle hits (subset of warm dispatches; a native
  /// hit does not imply a MemoryHit — the tiers are queried independently).
  uint64_t NativeHits = 0;
  uint64_t Misses = 0;
  /// Kernels dropped from the LRU because the capacity was reached.
  uint64_t Evictions = 0;
  /// Entries written (kernel + plan count as one store).
  uint64_t Stores = 0;

  uint64_t hits() const { return MemoryHits + PlanHits; }
};

class KernelCache {
public:
  /// \p Dir is where the plan tier persists (empty = in-memory only);
  /// \p MaxKernels bounds the in-memory LRU across all shards. \p Shards
  /// picks the stripe count (rounded up to a power of two, capped at 64);
  /// 0 selects automatically: one stripe per ~16 kernels of capacity,
  /// between 1 and 16, so small caches keep strict global LRU order and
  /// big service caches spread contention.
  explicit KernelCache(std::string Dir = defaultDir(), size_t MaxKernels = 64,
                       unsigned Shards = 0);
  ~KernelCache();

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// FNV-1a fingerprint of (LL source, Options, ISA, µarch). \p Source
  /// should be the canonical program form (ll::Program::str()) so textual
  /// variants of the same BLAC collide intentionally.
  static uint64_t fingerprint(const std::string &Source, const Options &O);

  /// Full-kernel lookup in the LRU tier; null on miss (which is *not*
  /// counted — the miss is counted once, by lookupPlan).
  std::shared_ptr<const CompiledKernel> lookupKernel(uint64_t Key);

  /// Tuned-plan lookup in the persisted tier.
  bool lookupPlan(uint64_t Key, tiling::TilingPlan &PlanOut);

  /// Records the tuned plan (persisted) and, when \p Kernel is non-null,
  /// the finished kernel (LRU tier) for \p Key.
  void store(uint64_t Key, const tiling::TilingPlan &Plan,
             const std::string &Source, const Options &O,
             std::shared_ptr<const CompiledKernel> Kernel);

  /// Records only the finished kernel — the plan-hit path, where the
  /// persisted tier is already up to date.
  void storeKernel(uint64_t Key, std::shared_ptr<const CompiledKernel> Kernel);

  /// Pre-resolved native handle for \p Key: a type-erased
  /// runtime::NativeKernel whose .so stays dlopen'd with lgen_native_entry
  /// resolved. Null on miss. A hit refreshes the slot's LRU position.
  std::shared_ptr<const void> lookupNative(uint64_t Key);

  /// Attaches \p Handle to \p Key's kernel slot (creating the slot if the
  /// kernel was never stored — the handle alone serves dispatch). Counts
  /// against MaxKernels like any other slot.
  void storeNative(uint64_t Key, std::shared_ptr<const void> Handle);

  /// Process-wide cache activity, read from the Metrics registry (all
  /// instances merge into the same counters).
  static CacheStats stats();
  /// This instance's activity only.
  CacheStats instanceStats() const;
  size_t numKernels() const;
  size_t numPlans() const;
  unsigned numShards() const { return NumShards; }
  size_t maxKernels() const { return MaxTotalKernels; }
  const std::string &directory() const { return Dir; }

  /// Writes the plan tier to <Dir>/lgen-cache.json if dirty.
  void flush();

  /// $LGEN_CACHE_DIR, or empty (in-memory only) when unset.
  static std::string defaultDir();

private:
  struct PlanEntry {
    tiling::TilingPlan Plan;
    std::string Source;
    std::string Target;
    std::string ISA;
  };

  static constexpr uint32_t NoSlot = 0xffffffffu;

  /// Open-addressed linear-probe map from 64-bit fingerprint to a slot
  /// number. Fibonacci hashing spreads the FNV keys (and the small integer
  /// keys tests use) across the table; erase leaves a tombstone so probe
  /// chains stay intact, and growth rebuilds without them.
  class FpIndex {
  public:
    FpIndex() { Cells.resize(size_t(1) << LogCap); }

    uint32_t find(uint64_t Key) const;
    void set(uint64_t Key, uint32_t Slot);
    void erase(uint64_t Key);
    size_t size() const { return Live; }

  private:
    enum : uint8_t { Empty = 0, Full = 1, Tombstone = 2 };
    struct Cell {
      uint64_t Key = 0;
      uint32_t Slot = 0;
      uint8_t State = Empty;
    };

    size_t probeStart(uint64_t Key) const {
      // Fibonacci hashing: the top LogCap bits of Key * φ⁻¹·2⁶⁴.
      return size_t((Key * 0x9e3779b97f4a7c15ULL) >> (64 - LogCap));
    }
    void grow();

    std::vector<Cell> Cells;
    unsigned LogCap = 4;
    size_t Live = 0;     // Full cells
    size_t Occupied = 0; // Full + tombstone cells
  };

  /// One kernel-tier entry. Slots are recycled through a free list; LRU
  /// order is kept by intrusive Prev/Next links (indices into Slots).
  struct KernelSlot {
    uint64_t Key = 0;
    std::shared_ptr<const CompiledKernel> Kernel;
    std::shared_ptr<const void> Native;
    uint32_t Prev = NoSlot;
    uint32_t Next = NoSlot;
  };

  struct Shard {
    mutable std::mutex Mutex;

    FpIndex KernelIndex;
    std::vector<KernelSlot> Slots;
    std::vector<uint32_t> FreeSlots;
    uint32_t LruHead = NoSlot;
    uint32_t LruTail = NoSlot;
    size_t NumKernels = 0;

    FpIndex PlanIndex;
    std::vector<PlanEntry> PlanSlots; // append-only; index I keyed by PlanKeys
    std::vector<uint64_t> PlanKeys;   // parallel to PlanSlots
  };

  Shard &shardFor(uint64_t Key) {
    return Shards[NumShards == 1
                      ? 0
                      : size_t((Key * 0x9e3779b97f4a7c15ULL) >>
                               (64 - ShardBits))];
  }

  // LRU helpers; the shard's mutex must be held.
  static void lruUnlink(Shard &S, uint32_t I);
  static void lruPushFront(Shard &S, uint32_t I);
  /// Finds or creates \p Key's slot, refreshes its LRU position and evicts
  /// past the per-shard cap. Returns NoSlot when the kernel tier is
  /// disabled (MaxKernels == 0).
  uint32_t upsertSlotLocked(Shard &S, uint64_t Key);

  void loadDisk();
  /// Snapshots the plan tier shard by shard (never holding more than one
  /// shard lock, never across I/O) and writes the merged JSON file.
  void persist();
  /// Parses a persisted plan file into \p Out, skipping malformed entries
  /// (bad hex keys, missing plans, insane factors). Returns false when
  /// \p Text is not a plan file at all (unparseable / wrong shape).
  static bool parsePlanFile(const std::string &Text,
                            std::map<uint64_t, PlanEntry> &Out);
  std::string diskPath() const;

  std::string Dir;
  size_t MaxTotalKernels;
  size_t ShardCap; // per-shard kernel bound
  unsigned NumShards;
  unsigned ShardBits;
  std::vector<Shard> Shards;

  /// Serializes disk writes; shard locks are never held while this is.
  std::mutex PersistMutex;
  std::atomic<bool> Dirty{false};

  // Per-instance mirrors of the kernelcache.* metrics (relaxed: these are
  // statistics, not synchronization).
  std::atomic<uint64_t> IMemoryHits{0};
  std::atomic<uint64_t> IPlanHits{0};
  std::atomic<uint64_t> INativeHits{0};
  std::atomic<uint64_t> IMisses{0};
  std::atomic<uint64_t> IEvictions{0};
  std::atomic<uint64_t> IStores{0};
};

} // namespace compiler
} // namespace lgen

#endif // LGEN_COMPILER_KERNELCACHE_H

//===- KernelCache.cpp - Persistent content-addressed kernel cache --------===//

#include "compiler/KernelCache.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

using namespace lgen;
using namespace lgen::compiler;

//===----------------------------------------------------------------------===//
// Fingerprinting
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

void fnv1a(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
}

void fnv1a(uint64_t &H, const std::string &S) {
  fnv1a(H, S.data(), S.size());
  // Separator byte so adjacent fields cannot alias across a boundary.
  unsigned char Sep = 0;
  fnv1a(H, &Sep, 1);
}

void fnv1a(uint64_t &H, uint64_t V) { fnv1a(H, &V, sizeof(V)); }

std::string hexKey(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}

/// Strict inverse of hexKey: exactly 1–16 hex digits. strtoull alone would
/// happily accept "12garbage" or negative numbers, silently corrupting keys
/// from a damaged cache file.
bool parseHexKey(const std::string &S, uint64_t &Key) {
  if (S.empty() || S.size() > 16)
    return false;
  for (char C : S)
    if (!std::isxdigit(static_cast<unsigned char>(C)))
      return false;
  Key = std::strtoull(S.c_str(), nullptr, 16);
  return true;
}

/// Unroll factors and trip counts read from disk bound how much code the
/// unroller clones; a corrupt or hostile cache file must not be able to
/// drive code size to infinity.
constexpr int64_t MaxSaneFactor = 1024;
constexpr size_t MaxSaneDims = 64;

int64_t clampFactor(double V) {
  int64_t F = static_cast<int64_t>(V);
  if (F < 1)
    return 1;
  return F > MaxSaneFactor ? MaxSaneFactor : F;
}

} // namespace

uint64_t KernelCache::fingerprint(const std::string &Source,
                                  const Options &O) {
  // Tripwire for the audit below: adding a field to Options changes its
  // size, which must force whoever adds it to decide whether the field is
  // codegen-relevant (hash it) or tuner infrastructure (exclude it), then
  // update this constant. Gated to one ABI so padding differences on other
  // platforms do not fire it spuriously.
#if defined(__x86_64__) && defined(__linux__) && defined(__GNUC__)
  static_assert(sizeof(Options) == 136,
                "Options changed: update KernelCache::fingerprint and the "
                "Fingerprint.SensitiveToEveryCodegenField test");
#endif
  uint64_t H = FnvOffsetBasis;
  fnv1a(H, Source);
  // Every Options field that can change the generated code participates.
  // TunerThreads and CacheDir are excluded on purpose: the parallel search
  // is deterministic, so they affect only how fast the result appears.
  fnv1a(H, std::string(isa::isaName(O.ISA)));
  fnv1a(H, std::string(machine::uarchName(O.Target)));
  fnv1a(H, static_cast<uint64_t>(O.Vectorize));
  fnv1a(H, static_cast<uint64_t>(O.UseGenericMemOps));
  fnv1a(H, static_cast<uint64_t>(O.AlignmentDetection));
  fnv1a(H, static_cast<uint64_t>(O.NewMVM));
  fnv1a(H, static_cast<uint64_t>(O.SpecializedNuBLACs));
  fnv1a(H, static_cast<uint64_t>(O.LoopFusion));
  fnv1a(H, static_cast<uint64_t>(O.MaxAlignCombos));
  fnv1a(H, static_cast<uint64_t>(O.SearchSamples));
  fnv1a(H, O.SearchSeed);
  fnv1a(H, static_cast<uint64_t>(O.MaxUnrollFactor));
  fnv1a(H, static_cast<uint64_t>(O.GuidedSearch));
  fnv1a(H, static_cast<uint64_t>(O.Objective));
  // InjectFault mutates the generated code, so a cached clean kernel must
  // not satisfy an injected compile (or vice versa). VerifyIR is excluded
  // like TunerThreads: checking never changes what is generated.
  fnv1a(H, O.InjectFault);
  // Backend participates for the same reason Objective and the search
  // knobs do: the cache stores the *winning plan*, and model-scored and
  // natively-measured searches pick different winners — a plan cached
  // under one backend must not silently satisfy a compile under the
  // other. MeasureReps and MeasureWarmup stay excluded: they tweak the
  // (inherently nondeterministic) measurement protocol without defining a
  // different search, and hashing them would fragment the cache for
  // identical generated code.
  fnv1a(H, static_cast<uint64_t>(O.Backend));
  return H;
}

//===----------------------------------------------------------------------===//
// Construction and persistence
//===----------------------------------------------------------------------===//

std::string KernelCache::defaultDir() {
  const char *Env = std::getenv("LGEN_CACHE_DIR");
  return Env ? Env : "";
}

KernelCache::KernelCache(std::string Dir, size_t MaxKernels)
    : Dir(std::move(Dir)), MaxKernels(MaxKernels) {
  loadDisk();
}

KernelCache::~KernelCache() { flush(); }

std::string KernelCache::diskPath() const {
  return Dir + "/lgen-cache.json";
}

bool KernelCache::parsePlanFile(const std::string &Text,
                                std::map<uint64_t, PlanEntry> &Out) {
  json::Value Root;
  std::string Err;
  if (!json::parse(Text, Root, Err) || !Root.isObject())
    return false; // Corrupt or truncated file: treat everything as a miss.
  const json::Value &Entries = Root["entries"];
  if (!Entries.isArray())
    return false;
  for (const json::Value &E : Entries.asArray()) {
    if (!E.isObject())
      continue;
    uint64_t Key;
    if (!parseHexKey(E.getString("key"), Key))
      continue;
    const json::Value &Plan = E["plan"];
    if (!Plan.isObject())
      continue;
    PlanEntry PE;
    PE.Source = E.getString("source");
    PE.Target = E.getString("target");
    PE.ISA = E.getString("isa");
    PE.Plan.ExchangeLoops = Plan.getBool("exchange");
    PE.Plan.FullUnrollTrip = clampFactor(Plan.getNumber("fullUnrollTrip", 4));
    const json::Value &Unroll = Plan["unroll"];
    if (Unroll.isArray())
      for (const json::Value &F : Unroll.asArray()) {
        if (PE.Plan.UnrollFactors.size() == MaxSaneDims)
          break;
        PE.Plan.UnrollFactors.push_back(clampFactor(F.asNumber()));
      }
    Out.insert_or_assign(Key, std::move(PE));
  }
  return true;
}

void KernelCache::loadDisk() {
  if (Dir.empty())
    return;
  std::ifstream In(diskPath());
  if (!In)
    return;
  std::stringstream Buf;
  Buf << In.rdbuf();
  parsePlanFile(Buf.str(), Plans);
}

void KernelCache::saveDiskLocked() {
  if (Dir.empty() || !Dirty)
    return;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);

  // Merge-on-save: another process (or another Compiler instance in this
  // one) may have persisted plans since we loaded. Re-read the file and
  // fold in entries we do not have, so concurrent writers union their
  // plans instead of the last one clobbering the rest. Our own entries
  // win conflicts — they are at least as fresh.
  {
    std::ifstream In(diskPath());
    if (In) {
      std::stringstream Buf;
      Buf << In.rdbuf();
      std::map<uint64_t, PlanEntry> OnDisk;
      if (parsePlanFile(Buf.str(), OnDisk))
        for (auto &[Key, PE] : OnDisk)
          Plans.emplace(Key, std::move(PE)); // no overwrite of our entries
    }
  }

  json::Array Entries;
  for (const auto &[Key, PE] : Plans) {
    json::Array Unroll;
    for (int64_t F : PE.Plan.UnrollFactors)
      Unroll.push_back(F);
    json::Object Plan{{"unroll", std::move(Unroll)},
                      {"exchange", PE.Plan.ExchangeLoops},
                      {"fullUnrollTrip", PE.Plan.FullUnrollTrip}};
    Entries.push_back(json::Object{{"key", hexKey(Key)},
                                   {"source", PE.Source},
                                   {"target", PE.Target},
                                   {"isa", PE.ISA},
                                   {"plan", std::move(Plan)}});
  }
  json::Value Root =
      json::Object{{"version", 1}, {"entries", std::move(Entries)}};

  // Write-to-temp + atomic rename: readers (and crash recovery) only ever
  // see either the old complete file or the new complete file, never a
  // torn prefix. The temp name is unique per instance; concurrent
  // processes each rename their own temp file and the merge above makes
  // the operation commutative.
#if defined(_WIN32)
  uint64_t Pid = 0;
#else
  uint64_t Pid = static_cast<uint64_t>(::getpid());
#endif
  std::string Tmp = diskPath() + ".tmp." + hexKey(Pid) + "." +
                    hexKey(reinterpret_cast<uintptr_t>(this));
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return;
    Out << Root.serialize();
    Out.flush();
    if (!Out)
      return;
  }
  std::filesystem::rename(Tmp, diskPath(), EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return;
  }
  Dirty = false;
}

void KernelCache::flush() {
  std::lock_guard<std::mutex> Lock(Mutex);
  saveDiskLocked();
}

//===----------------------------------------------------------------------===//
// Lookup and store
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompiledKernel> KernelCache::lookupKernel(uint64_t Key) {
  static support::Metrics::Counter &MemoryHits =
      support::Metrics::global().counter("kernelcache.hit.memory");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = LruIndex.find(Key);
  if (It == LruIndex.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second); // move to front
  MemoryHits.add();
  return It->second->Kernel;
}

bool KernelCache::lookupPlan(uint64_t Key, tiling::TilingPlan &PlanOut) {
  static support::Metrics::Counter &PlanHits =
      support::Metrics::global().counter("kernelcache.hit.plan");
  static support::Metrics::Counter &Misses =
      support::Metrics::global().counter("kernelcache.miss");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Plans.find(Key);
  if (It == Plans.end()) {
    Misses.add();
    return false;
  }
  PlanOut = It->second.Plan;
  PlanHits.add();
  return true;
}

void KernelCache::storeKernelLocked(
    uint64_t Key, std::shared_ptr<const CompiledKernel> Kernel) {
  if (!Kernel || MaxKernels == 0)
    return;
  auto It = LruIndex.find(Key);
  if (It != LruIndex.end()) {
    It->second->Kernel = std::move(Kernel);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  static support::Metrics::Counter &Evictions =
      support::Metrics::global().counter("kernelcache.eviction");
  Lru.push_front(LruEntry{Key, std::move(Kernel)});
  LruIndex[Key] = Lru.begin();
  while (Lru.size() > MaxKernels) {
    LruIndex.erase(Lru.back().Key);
    Lru.pop_back();
    Evictions.add();
  }
}

void KernelCache::store(uint64_t Key, const tiling::TilingPlan &Plan,
                        const std::string &Source, const Options &O,
                        std::shared_ptr<const CompiledKernel> Kernel) {
  static support::Metrics::Counter &Stores =
      support::Metrics::global().counter("kernelcache.store");
  std::lock_guard<std::mutex> Lock(Mutex);
  Stores.add();

  PlanEntry PE;
  PE.Plan = Plan;
  PE.Source = Source;
  PE.Target = machine::uarchName(O.Target);
  PE.ISA = isa::isaName(O.ISA);
  Plans[Key] = std::move(PE);
  Dirty = true;

  storeKernelLocked(Key, std::move(Kernel));
  saveDiskLocked();
}

void KernelCache::storeKernel(uint64_t Key,
                              std::shared_ptr<const CompiledKernel> Kernel) {
  std::lock_guard<std::mutex> Lock(Mutex);
  storeKernelLocked(Key, std::move(Kernel));
}

CacheStats KernelCache::stats() {
  support::Metrics::Snapshot S = support::Metrics::global().snapshot();
  CacheStats St;
  St.MemoryHits = S.counter("kernelcache.hit.memory");
  St.PlanHits = S.counter("kernelcache.hit.plan");
  St.Misses = S.counter("kernelcache.miss");
  St.Evictions = S.counter("kernelcache.eviction");
  St.Stores = S.counter("kernelcache.store");
  return St;
}

size_t KernelCache::numKernels() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}

size_t KernelCache::numPlans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Plans.size();
}

//===- KernelCache.cpp - Persistent content-addressed kernel cache --------===//

#include "compiler/KernelCache.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

using namespace lgen;
using namespace lgen::compiler;

//===----------------------------------------------------------------------===//
// Fingerprinting
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

void fnv1a(uint64_t &H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
}

void fnv1a(uint64_t &H, const std::string &S) {
  fnv1a(H, S.data(), S.size());
  // Separator byte so adjacent fields cannot alias across a boundary.
  unsigned char Sep = 0;
  fnv1a(H, &Sep, 1);
}

void fnv1a(uint64_t &H, uint64_t V) { fnv1a(H, &V, sizeof(V)); }

std::string hexKey(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}

/// Strict inverse of hexKey: exactly 1–16 hex digits. strtoull alone would
/// happily accept "12garbage" or negative numbers, silently corrupting keys
/// from a damaged cache file.
bool parseHexKey(const std::string &S, uint64_t &Key) {
  if (S.empty() || S.size() > 16)
    return false;
  for (char C : S)
    if (!std::isxdigit(static_cast<unsigned char>(C)))
      return false;
  Key = std::strtoull(S.c_str(), nullptr, 16);
  return true;
}

/// Unroll factors and trip counts read from disk bound how much code the
/// unroller clones; a corrupt or hostile cache file must not be able to
/// drive code size to infinity.
constexpr int64_t MaxSaneFactor = 1024;
constexpr size_t MaxSaneDims = 64;

int64_t clampFactor(double V) {
  int64_t F = static_cast<int64_t>(V);
  if (F < 1)
    return 1;
  return F > MaxSaneFactor ? MaxSaneFactor : F;
}

unsigned roundUpPow2(unsigned V) {
  unsigned P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

unsigned log2Pow2(unsigned V) {
  unsigned L = 0;
  while ((1u << L) < V)
    ++L;
  return L;
}

} // namespace

uint64_t KernelCache::fingerprint(const std::string &Source,
                                  const Options &O) {
  // Tripwire for the audit below: adding a field to Options changes its
  // size, which must force whoever adds it to decide whether the field is
  // codegen-relevant (hash it) or tuner infrastructure (exclude it), then
  // update this constant. Gated to one ABI so padding differences on other
  // platforms do not fire it spuriously.
#if defined(__x86_64__) && defined(__linux__) && defined(__GNUC__)
  static_assert(sizeof(Options) == 136,
                "Options changed: update KernelCache::fingerprint and the "
                "Fingerprint.SensitiveToEveryCodegenField test");
#endif
  uint64_t H = FnvOffsetBasis;
  fnv1a(H, Source);
  // Every Options field that can change the generated code participates.
  // TunerThreads and CacheDir are excluded on purpose: the parallel search
  // is deterministic, so they affect only how fast the result appears.
  fnv1a(H, std::string(isa::isaName(O.ISA)));
  fnv1a(H, std::string(machine::uarchName(O.Target)));
  fnv1a(H, static_cast<uint64_t>(O.Vectorize));
  fnv1a(H, static_cast<uint64_t>(O.UseGenericMemOps));
  fnv1a(H, static_cast<uint64_t>(O.AlignmentDetection));
  fnv1a(H, static_cast<uint64_t>(O.NewMVM));
  fnv1a(H, static_cast<uint64_t>(O.SpecializedNuBLACs));
  fnv1a(H, static_cast<uint64_t>(O.LoopFusion));
  fnv1a(H, static_cast<uint64_t>(O.MaxAlignCombos));
  fnv1a(H, static_cast<uint64_t>(O.SearchSamples));
  fnv1a(H, O.SearchSeed);
  fnv1a(H, static_cast<uint64_t>(O.MaxUnrollFactor));
  fnv1a(H, static_cast<uint64_t>(O.GuidedSearch));
  fnv1a(H, static_cast<uint64_t>(O.Objective));
  // InjectFault mutates the generated code, so a cached clean kernel must
  // not satisfy an injected compile (or vice versa). VerifyIR is excluded
  // like TunerThreads: checking never changes what is generated.
  fnv1a(H, O.InjectFault);
  // Backend participates for the same reason Objective and the search
  // knobs do: the cache stores the *winning plan*, and model-scored and
  // natively-measured searches pick different winners — a plan cached
  // under one backend must not silently satisfy a compile under the
  // other. MeasureReps and MeasureWarmup stay excluded: they tweak the
  // (inherently nondeterministic) measurement protocol without defining a
  // different search, and hashing them would fragment the cache for
  // identical generated code.
  fnv1a(H, static_cast<uint64_t>(O.Backend));
  return H;
}

//===----------------------------------------------------------------------===//
// Fingerprint index
//===----------------------------------------------------------------------===//

uint32_t KernelCache::FpIndex::find(uint64_t Key) const {
  size_t Mask = Cells.size() - 1;
  for (size_t I = probeStart(Key);; I = (I + 1) & Mask) {
    const Cell &C = Cells[I];
    if (C.State == Empty)
      return NoSlot;
    if (C.State == Full && C.Key == Key)
      return C.Slot;
  }
}

void KernelCache::FpIndex::set(uint64_t Key, uint32_t Slot) {
  // Keep the load factor (including tombstones, which lengthen probe
  // chains just like live cells) under 3/4.
  if ((Occupied + 1) * 4 >= Cells.size() * 3)
    grow();
  size_t Mask = Cells.size() - 1;
  size_t FirstTomb = size_t(-1);
  for (size_t I = probeStart(Key);; I = (I + 1) & Mask) {
    Cell &C = Cells[I];
    if (C.State == Full && C.Key == Key) {
      C.Slot = Slot;
      return;
    }
    if (C.State == Tombstone && FirstTomb == size_t(-1))
      FirstTomb = I;
    if (C.State == Empty) {
      size_t Dst = FirstTomb != size_t(-1) ? FirstTomb : I;
      if (Dst == I)
        ++Occupied;
      Cells[Dst] = Cell{Key, Slot, Full};
      ++Live;
      return;
    }
  }
}

void KernelCache::FpIndex::erase(uint64_t Key) {
  size_t Mask = Cells.size() - 1;
  for (size_t I = probeStart(Key);; I = (I + 1) & Mask) {
    Cell &C = Cells[I];
    if (C.State == Empty)
      return;
    if (C.State == Full && C.Key == Key) {
      C.State = Tombstone;
      --Live;
      return;
    }
  }
}

void KernelCache::FpIndex::grow() {
  std::vector<Cell> Old = std::move(Cells);
  ++LogCap;
  Cells.assign(size_t(1) << LogCap, Cell{});
  Occupied = Live; // tombstones are dropped by the rebuild
  size_t Mask = Cells.size() - 1;
  for (const Cell &C : Old) {
    if (C.State != Full)
      continue;
    for (size_t I = probeStart(C.Key);; I = (I + 1) & Mask) {
      if (Cells[I].State == Empty) {
        Cells[I] = C;
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Construction and persistence
//===----------------------------------------------------------------------===//

std::string KernelCache::defaultDir() {
  const char *Env = std::getenv("LGEN_CACHE_DIR");
  return Env ? Env : "";
}

KernelCache::KernelCache(std::string Dir, size_t MaxKernels, unsigned Shards)
    : Dir(std::move(Dir)), MaxTotalKernels(MaxKernels) {
  if (Shards == 0) {
    // One stripe per ~16 kernels of capacity: a MaxKernels=2 test cache
    // stays single-shard (strict global LRU, exact eviction order), the
    // service's 256-kernel cache gets 16 stripes.
    size_t Auto = MaxKernels / 16;
    Shards = Auto < 1 ? 1 : (Auto > 16 ? 16 : unsigned(Auto));
  }
  NumShards = roundUpPow2(Shards > 64 ? 64 : Shards);
  ShardBits = log2Pow2(NumShards);
  ShardCap = MaxKernels == 0
                 ? 0
                 : (MaxKernels + NumShards - 1) / NumShards; // >= 1
  this->Shards = std::vector<Shard>(NumShards);
  loadDisk();
}

KernelCache::~KernelCache() { flush(); }

std::string KernelCache::diskPath() const {
  return Dir + "/lgen-cache.json";
}

bool KernelCache::parsePlanFile(const std::string &Text,
                                std::map<uint64_t, PlanEntry> &Out) {
  json::Value Root;
  std::string Err;
  if (!json::parse(Text, Root, Err) || !Root.isObject())
    return false; // Corrupt or truncated file: treat everything as a miss.
  const json::Value &Entries = Root["entries"];
  if (!Entries.isArray())
    return false;
  for (const json::Value &E : Entries.asArray()) {
    if (!E.isObject())
      continue;
    uint64_t Key;
    if (!parseHexKey(E.getString("key"), Key))
      continue;
    const json::Value &Plan = E["plan"];
    if (!Plan.isObject())
      continue;
    PlanEntry PE;
    PE.Source = E.getString("source");
    PE.Target = E.getString("target");
    PE.ISA = E.getString("isa");
    PE.Plan.ExchangeLoops = Plan.getBool("exchange");
    PE.Plan.FullUnrollTrip = clampFactor(Plan.getNumber("fullUnrollTrip", 4));
    const json::Value &Unroll = Plan["unroll"];
    if (Unroll.isArray())
      for (const json::Value &F : Unroll.asArray()) {
        if (PE.Plan.UnrollFactors.size() == MaxSaneDims)
          break;
        PE.Plan.UnrollFactors.push_back(clampFactor(F.asNumber()));
      }
    Out.insert_or_assign(Key, std::move(PE));
  }
  return true;
}

void KernelCache::loadDisk() {
  if (Dir.empty())
    return;
  std::ifstream In(diskPath());
  if (!In)
    return;
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::map<uint64_t, PlanEntry> OnDisk;
  if (!parsePlanFile(Buf.str(), OnDisk))
    return;
  // Construction-time only: no other thread can see the shards yet.
  for (auto &[Key, PE] : OnDisk) {
    Shard &S = shardFor(Key);
    S.PlanIndex.set(Key, uint32_t(S.PlanSlots.size()));
    S.PlanKeys.push_back(Key);
    S.PlanSlots.push_back(std::move(PE));
  }
}

void KernelCache::persist() {
  if (Dir.empty())
    return;
  // Claim the dirty flag before snapshotting: a store that lands after the
  // snapshot re-raises it and the next persist picks that plan up.
  if (!Dirty.exchange(false))
    return;

  // Snapshot the plan tier one shard at a time — no shard lock is ever
  // held together with another, with PersistMutex, or across file I/O.
  std::map<uint64_t, PlanEntry> Ours;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (size_t I = 0; I != S.PlanKeys.size(); ++I)
      Ours.insert_or_assign(S.PlanKeys[I], S.PlanSlots[I]);
  }

  std::lock_guard<std::mutex> PersistLock(PersistMutex);
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);

  // The read-merge-write below must be atomic against OTHER writers too —
  // PersistMutex only serializes this instance. Without the advisory file
  // lock, two instances (or processes) can both read the file, each merge
  // only its own plans, and the second rename silently drops the first
  // writer's new entries (a lost update the CacheStressTest disk test
  // catches). flock on a sidecar .lock file serializes the critical
  // section; the data file itself is still replaced by atomic rename, so
  // lock-less readers keep working and a crashed holder auto-releases.
#if !defined(_WIN32)
  struct FileLock {
    int Fd;
    explicit FileLock(const std::string &Path)
        : Fd(::open(Path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {
      if (Fd >= 0)
        ::flock(Fd, LOCK_EX);
    }
    ~FileLock() {
      if (Fd >= 0) {
        ::flock(Fd, LOCK_UN);
        ::close(Fd);
      }
    }
  } DiskLock(diskPath() + ".lock");
#endif

  // Merge-on-save: another process (or another cache instance in this
  // one) may have persisted plans since we loaded. Re-read the file and
  // fold in entries we do not have, so concurrent writers union their
  // plans instead of the last one clobbering the rest. Our own entries
  // win conflicts — they are at least as fresh.
  {
    std::ifstream In(diskPath());
    if (In) {
      std::stringstream Buf;
      Buf << In.rdbuf();
      std::map<uint64_t, PlanEntry> OnDisk;
      if (parsePlanFile(Buf.str(), OnDisk))
        for (auto &[Key, PE] : OnDisk)
          Ours.emplace(Key, std::move(PE)); // no overwrite of our entries
    }
  }

  json::Array Entries;
  for (const auto &[Key, PE] : Ours) {
    json::Array Unroll;
    for (int64_t F : PE.Plan.UnrollFactors)
      Unroll.push_back(F);
    json::Object Plan{{"unroll", std::move(Unroll)},
                      {"exchange", PE.Plan.ExchangeLoops},
                      {"fullUnrollTrip", PE.Plan.FullUnrollTrip}};
    Entries.push_back(json::Object{{"key", hexKey(Key)},
                                   {"source", PE.Source},
                                   {"target", PE.Target},
                                   {"isa", PE.ISA},
                                   {"plan", std::move(Plan)}});
  }
  json::Value Root =
      json::Object{{"version", 1}, {"entries", std::move(Entries)}};

  // Write-to-temp + atomic rename: readers (and crash recovery) only ever
  // see either the old complete file or the new complete file, never a
  // torn prefix. The temp name is unique per instance; concurrent
  // processes each rename their own temp file and the merge above makes
  // the operation commutative.
#if defined(_WIN32)
  uint64_t Pid = 0;
#else
  uint64_t Pid = static_cast<uint64_t>(::getpid());
#endif
  std::string Tmp = diskPath() + ".tmp." + hexKey(Pid) + "." +
                    hexKey(reinterpret_cast<uintptr_t>(this));
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out) {
      Dirty = true; // retry on the next flush
      return;
    }
    Out << Root.serialize();
    Out.flush();
    if (!Out) {
      Dirty = true;
      return;
    }
  }
  std::filesystem::rename(Tmp, diskPath(), EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    Dirty = true;
    return;
  }
}

void KernelCache::flush() { persist(); }

//===----------------------------------------------------------------------===//
// LRU maintenance
//===----------------------------------------------------------------------===//

void KernelCache::lruUnlink(Shard &S, uint32_t I) {
  KernelSlot &E = S.Slots[I];
  if (E.Prev != NoSlot)
    S.Slots[E.Prev].Next = E.Next;
  else
    S.LruHead = E.Next;
  if (E.Next != NoSlot)
    S.Slots[E.Next].Prev = E.Prev;
  else
    S.LruTail = E.Prev;
  E.Prev = E.Next = NoSlot;
}

void KernelCache::lruPushFront(Shard &S, uint32_t I) {
  KernelSlot &E = S.Slots[I];
  E.Prev = NoSlot;
  E.Next = S.LruHead;
  if (S.LruHead != NoSlot)
    S.Slots[S.LruHead].Prev = I;
  S.LruHead = I;
  if (S.LruTail == NoSlot)
    S.LruTail = I;
}

uint32_t KernelCache::upsertSlotLocked(Shard &S, uint64_t Key) {
  if (ShardCap == 0)
    return NoSlot;
  uint32_t I = S.KernelIndex.find(Key);
  if (I != NoSlot) {
    lruUnlink(S, I);
    lruPushFront(S, I);
    return I;
  }
  if (!S.FreeSlots.empty()) {
    I = S.FreeSlots.back();
    S.FreeSlots.pop_back();
  } else {
    I = uint32_t(S.Slots.size());
    S.Slots.emplace_back();
  }
  S.Slots[I].Key = Key;
  S.KernelIndex.set(Key, I);
  lruPushFront(S, I);
  ++S.NumKernels;

  static support::Metrics::Counter &Evictions =
      support::Metrics::global().counter("kernelcache.eviction");
  while (S.NumKernels > ShardCap) {
    uint32_t Victim = S.LruTail;
    lruUnlink(S, Victim);
    KernelSlot &V = S.Slots[Victim];
    S.KernelIndex.erase(V.Key);
    // Dropping the refs here only *releases* the kernel and its dlopen'd
    // native handle; an in-flight execution still owns its shared_ptr, so
    // the .so is not unloaded under running code.
    V.Kernel.reset();
    V.Native.reset();
    V.Key = 0;
    S.FreeSlots.push_back(Victim);
    --S.NumKernels;
    Evictions.add();
    IEvictions.fetch_add(1, std::memory_order_relaxed);
  }
  return I;
}

//===----------------------------------------------------------------------===//
// Lookup and store
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompiledKernel> KernelCache::lookupKernel(uint64_t Key) {
  static support::Metrics::Counter &MemoryHits =
      support::Metrics::global().counter("kernelcache.hit.memory");
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint32_t I = S.KernelIndex.find(Key);
  if (I == NoSlot || !S.Slots[I].Kernel)
    return nullptr; // includes native-handle-only slots
  lruUnlink(S, I);
  lruPushFront(S, I);
  MemoryHits.add();
  IMemoryHits.fetch_add(1, std::memory_order_relaxed);
  return S.Slots[I].Kernel;
}

bool KernelCache::lookupPlan(uint64_t Key, tiling::TilingPlan &PlanOut) {
  static support::Metrics::Counter &PlanHits =
      support::Metrics::global().counter("kernelcache.hit.plan");
  static support::Metrics::Counter &Misses =
      support::Metrics::global().counter("kernelcache.miss");
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint32_t I = S.PlanIndex.find(Key);
  if (I == NoSlot) {
    Misses.add();
    IMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  PlanOut = S.PlanSlots[I].Plan;
  PlanHits.add();
  IPlanHits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const void> KernelCache::lookupNative(uint64_t Key) {
  static support::Metrics::Counter &NativeHits =
      support::Metrics::global().counter("kernelcache.hit.native");
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint32_t I = S.KernelIndex.find(Key);
  if (I == NoSlot || !S.Slots[I].Native)
    return nullptr;
  lruUnlink(S, I);
  lruPushFront(S, I);
  NativeHits.add();
  INativeHits.fetch_add(1, std::memory_order_relaxed);
  return S.Slots[I].Native;
}

void KernelCache::storeNative(uint64_t Key,
                              std::shared_ptr<const void> Handle) {
  if (!Handle || MaxTotalKernels == 0)
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint32_t I = upsertSlotLocked(S, Key);
  if (I != NoSlot)
    S.Slots[I].Native = std::move(Handle);
}

void KernelCache::store(uint64_t Key, const tiling::TilingPlan &Plan,
                        const std::string &Source, const Options &O,
                        std::shared_ptr<const CompiledKernel> Kernel) {
  static support::Metrics::Counter &Stores =
      support::Metrics::global().counter("kernelcache.store");
  Stores.add();
  IStores.fetch_add(1, std::memory_order_relaxed);

  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    uint32_t I = S.PlanIndex.find(Key);
    if (I != NoSlot) {
      PlanEntry &PE = S.PlanSlots[I];
      PE.Plan = Plan;
      PE.Source = Source;
      PE.Target = machine::uarchName(O.Target);
      PE.ISA = isa::isaName(O.ISA);
    } else {
      PlanEntry PE;
      PE.Plan = Plan;
      PE.Source = Source;
      PE.Target = machine::uarchName(O.Target);
      PE.ISA = isa::isaName(O.ISA);
      S.PlanIndex.set(Key, uint32_t(S.PlanSlots.size()));
      S.PlanKeys.push_back(Key);
      S.PlanSlots.push_back(std::move(PE));
    }
    Dirty = true;

    if (Kernel) {
      uint32_t KI = upsertSlotLocked(S, Key);
      if (KI != NoSlot)
        S.Slots[KI].Kernel = std::move(Kernel);
    }
  }
  // Persist outside the shard lock: durability on every store, like the
  // pre-sharding cache, but lookups on this shard proceed during the I/O.
  persist();
}

void KernelCache::storeKernel(uint64_t Key,
                              std::shared_ptr<const CompiledKernel> Kernel) {
  if (!Kernel || MaxTotalKernels == 0)
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint32_t I = upsertSlotLocked(S, Key);
  if (I != NoSlot)
    S.Slots[I].Kernel = std::move(Kernel);
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

CacheStats KernelCache::stats() {
  support::Metrics::Snapshot S = support::Metrics::global().snapshot();
  CacheStats St;
  St.MemoryHits = S.counter("kernelcache.hit.memory");
  St.PlanHits = S.counter("kernelcache.hit.plan");
  St.NativeHits = S.counter("kernelcache.hit.native");
  St.Misses = S.counter("kernelcache.miss");
  St.Evictions = S.counter("kernelcache.eviction");
  St.Stores = S.counter("kernelcache.store");
  return St;
}

CacheStats KernelCache::instanceStats() const {
  CacheStats St;
  St.MemoryHits = IMemoryHits.load(std::memory_order_relaxed);
  St.PlanHits = IPlanHits.load(std::memory_order_relaxed);
  St.NativeHits = INativeHits.load(std::memory_order_relaxed);
  St.Misses = IMisses.load(std::memory_order_relaxed);
  St.Evictions = IEvictions.load(std::memory_order_relaxed);
  St.Stores = IStores.load(std::memory_order_relaxed);
  return St;
}

size_t KernelCache::numKernels() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    N += S.NumKernels;
  }
  return N;
}

size_t KernelCache::numPlans() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    N += S.PlanKeys.size();
  }
  return N;
}

//===- Autotuner.cpp - Random-search autotuning (§2.1.1, §5.1.5) ---------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LGen's feedback loop: generate several code variants, measure each, keep
/// the best. The thesis measures on real boards through Mediator; here the
/// measurement backend is the microarchitecture timing model, which keeps
/// the search deterministic. The search itself is the same random sampling
/// over tiling/unrolling choices with a configurable sample size (§5.1.5
/// uses 10; §5.5 discusses how a small sample size explores only a sliver
/// of the much larger scalar-tiling space on ARM1176).
///
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"

#include "absint/AlignmentDetection.h"
#include "ll/Reference.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"
#include "runtime/NativeKernel.h"
#include "support/ThreadPool.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <functional>
#include <limits>
#include <set>

using namespace lgen;
using namespace lgen::compiler;

namespace {

/// Objective value of the finished kernel for \p Plan, assuming aligned
/// parameter buffers (the measurement setup of §5.1.5).
double evaluatePlan(const Compiler &C, const ll::Program &P,
                    const tiling::TilingPlan &Plan,
                    const machine::Microarch &M) {
  // Search evaluations run the full pipeline on throwaway variants; mute
  // their counters/snapshots so the trace describes only the final build.
  // The span stays visible — evaluation time is the bulk of compile time.
  support::TraceMuteScope Mute;
  support::TraceSpan Span("autotune.evaluate-plan");
  cir::Kernel K = C.generateCore(P, Plan);
  if (C.options().AlignmentDetection && C.options().effectiveNu() > 1)
    absint::detectAlignment(K, C.options().effectiveNu(),
                            absint::AlignmentAssumption::allAligned(K));
  C.finalizeKernel(K);
  machine::TimingResult T = machine::simulate(K, M);
  switch (C.options().Objective) {
  case TuneObjective::Cycles:
    return T.Cycles;
  case TuneObjective::Energy:
    return T.EnergyNJ;
  case TuneObjective::EDP:
    return T.edp();
  }
  LGEN_UNREACHABLE("unknown tuning objective");
}

//===----------------------------------------------------------------------===//
// Native measurement backend (TuneBackend::Native)
//===----------------------------------------------------------------------===//

/// Aligned random parameter buffers for native plan measurement, with a
/// pristine copy so every plan is timed over identical inputs (serial
/// measurements would otherwise see the previous plan's outputs).
struct NativeInputs {
  std::vector<machine::Buffer> Storage;
  std::vector<std::vector<float>> Pristine;

  explicit NativeInputs(const ll::Program &P) {
    Rng R(0x5eedULL + P.Operands.size());
    for (const ll::Operand &O : P.Operands) {
      machine::Buffer B(O.numElements(), 0.0f, 0);
      for (float &V : B.Data)
        V = static_cast<float>(R.next() % 1000) / 250.0f - 2.0f;
      Pristine.push_back(B.Data);
      Storage.push_back(std::move(B));
    }
  }

  void restore() {
    for (size_t I = 0; I != Storage.size(); ++I)
      Storage[I].Data = Pristine[I];
  }

  std::vector<machine::Buffer *> params() {
    std::vector<machine::Buffer *> Ptrs;
    for (machine::Buffer &B : Storage)
      Ptrs.push_back(&B);
    return Ptrs;
  }
};

/// Whether native tuning can run here at all; on false \p Reason explains
/// the fallback to the model.
bool nativeBackendUsable(const Compiler &C, std::string &Reason) {
  isa::ISAKind ISA = C.options().effectiveNu() == 1 ? isa::ISAKind::Scalar
                                                    : C.options().ISA;
  if (!runtime::CpuInfo::host().supports(ISA)) {
    Reason = "host CPU lacks " + std::string(isa::isaName(ISA));
    return false;
  }
  if (!runtime::ToolchainDriver::host().available()) {
    Reason = runtime::ToolchainDriver::host().error();
    return false;
  }
  return true;
}

/// Runs the same per-plan pipeline as evaluatePlan, then compiles and
/// loads the result as a shared object instead of handing it to the model.
Expected<runtime::NativeKernel>
loadPlanNative(const Compiler &C, const ll::Program &P,
               const tiling::TilingPlan &Plan) {
  support::TraceMuteScope Mute;
  support::TraceSpan Span("autotune.native.build");
  cir::Kernel K = C.generateCore(P, Plan);
  if (C.options().AlignmentDetection && C.options().effectiveNu() > 1)
    absint::detectAlignment(K, C.options().effectiveNu(),
                            absint::AlignmentAssumption::allAligned(K));
  C.finalizeKernel(K);
  CompiledKernel CK;
  CK.Blac = P.clone();
  CK.Opts = C.options();
  CK.Flops = ll::flopCount(P);
  CK.Plain = std::move(K);
  return runtime::NativeKernel::load(CK);
}

runtime::MeasureOptions tuneMeasureOptions(const Compiler &C) {
  runtime::MeasureOptions MO;
  MO.Reps = C.options().MeasureReps;
  MO.Warmup = C.options().MeasureWarmup;
  return MO;
}

/// Serial build + load + measure of one plan (the guided search path). A
/// plan whose kernel cannot be built or loaded scores infinity: it loses
/// to every measurable plan instead of aborting the search.
double evaluatePlanNative(const Compiler &C, const ll::Program &P,
                          const tiling::TilingPlan &Plan, NativeInputs &In) {
  Expected<runtime::NativeKernel> NK = loadPlanNative(C, P, Plan);
  if (!NK) {
    support::traceCounter("autotuner.native.plan-failures");
    support::metricCounter("autotuner.native.plan-failures").add();
    return std::numeric_limits<double>::infinity();
  }
  In.restore();
  support::TraceMuteScope Mute;
  std::vector<machine::Buffer *> Params = In.params();
  return runtime::measure(*NK, Params, tuneMeasureOptions(C)).MedianCycles;
}

/// Coordinate-descent over the per-loop unroll factors, starting from the
/// default plan. Each round tries every legal factor for every loop and
/// keeps improvements; stops when a round changes nothing or the
/// evaluation budget runs out. Stays serial: every evaluation depends on
/// the Best found so far, so there is no schedule-independent way to fan
/// it out (the random search below is the parallel path).
tiling::TilingPlan
guidedSearch(const Compiler &C, const std::vector<tiling::LoopDesc> &Loops,
             const std::function<double(const tiling::TilingPlan &)> &Eval,
             unsigned Budget) {
  support::Trace *T = support::Trace::active();
  std::vector<support::TracePlanEval> Evals;
  tiling::TilingPlan Best = tiling::defaultPlan(Loops);
  double BestScore = Eval(Best);
  unsigned NumEvals = 1;
  if (T)
    Evals.push_back({0, Best.str(), BestScore, false});
  unsigned BestEval = 0;
  bool Improved = true;
  while (Improved && NumEvals < Budget) {
    Improved = false;
    for (size_t L = 0; L != Loops.size() && NumEvals < Budget; ++L) {
      for (int64_t F : tiling::legalUnrollFactors(
               Loops[L].TripCount, C.options().MaxUnrollFactor)) {
        if (F == Best.factorFor(L))
          continue;
        tiling::TilingPlan Candidate = Best;
        if (Candidate.UnrollFactors.size() <= L)
          Candidate.UnrollFactors.resize(Loops.size(), 1);
        Candidate.UnrollFactors[L] = F;
        double Score = Eval(Candidate);
        if (T)
          Evals.push_back({NumEvals, Candidate.str(), Score, false});
        if (Score < BestScore) {
          BestScore = Score;
          Best = Candidate;
          BestEval = NumEvals;
          Improved = true;
        }
        ++NumEvals;
        if (NumEvals >= Budget)
          break;
      }
    }
  }
  if (T) {
    Evals[BestEval].Chosen = true;
    T->recordPlanSearch(std::move(Evals));
    T->addCounter("autotuner.plans.evaluated", NumEvals);
    T->addCounter("autotuner.plans.pruned", NumEvals - 1);
  }
  support::metricCounter("autotuner.plans.evaluated").add(NumEvals);
  return Best;
}

/// Discovers the tile loops of \p P with a muted neutral pipeline run.
std::vector<tiling::LoopDesc> discoverLoops(const Compiler &C,
                                            const ll::Program &P) {
  support::TraceMuteScope Mute;
  std::vector<tiling::LoopDesc> Loops;
  tiling::TilingPlan Neutral;
  Neutral.FullUnrollTrip = 1;
  C.generateCore(P, Neutral, &Loops);
  return Loops;
}

/// The candidate set of the random search: the default plan followed by the
/// SearchSamples seeded draws. Drawn up front (the RNG stream is sequential
/// state) so the set is independent of the evaluation schedule.
std::vector<tiling::TilingPlan>
drawSearchPlans(const Compiler &C, const std::vector<tiling::LoopDesc> &Loops) {
  std::vector<tiling::TilingPlan> Plans;
  Plans.reserve(C.options().SearchSamples + 1);
  Plans.push_back(tiling::defaultPlan(Loops));
  Rng Rng(C.options().SearchSeed);
  for (unsigned S = 0; S != C.options().SearchSamples; ++S)
    Plans.push_back(
        tiling::randomPlan(Loops, Rng, C.options().MaxUnrollFactor));
  return Plans;
}

} // namespace

std::vector<tiling::TilingPlan>
compiler::enumeratePlans(const Compiler &C, const ll::Program &P) {
  std::vector<tiling::LoopDesc> Loops = discoverLoops(C, P);
  std::vector<tiling::TilingPlan> Plans = drawSearchPlans(C, Loops);

  // Edge plans a small random sample rarely draws but a later search (or a
  // different seed) legitimately can: no unrolling at all, the exchanged
  // loop order, and the maximal legal unrolling of every loop.
  tiling::TilingPlan NoUnroll;
  NoUnroll.FullUnrollTrip = 1;
  Plans.push_back(NoUnroll);

  tiling::TilingPlan Exchanged = tiling::defaultPlan(Loops);
  Exchanged.ExchangeLoops = true;
  Plans.push_back(Exchanged);

  tiling::TilingPlan Max;
  for (const tiling::LoopDesc &L : Loops)
    Max.UnrollFactors.push_back(
        tiling::legalUnrollFactors(L.TripCount, C.options().MaxUnrollFactor)
            .back());
  Max.FullUnrollTrip = 16;
  Plans.push_back(Max);

  // Deduplicate on the rendered form, keeping first occurrences (so the
  // default plan stays in front).
  std::vector<tiling::TilingPlan> Unique;
  std::set<std::string> Seen;
  for (tiling::TilingPlan &Plan : Plans)
    if (Seen.insert(Plan.str()).second)
      Unique.push_back(std::move(Plan));
  return Unique;
}

tiling::TilingPlan compiler::choosePlan(const Compiler &C,
                                        const ll::Program &P) {
  support::TraceSpan AutotuneSpan("autotune");
  std::vector<tiling::LoopDesc> Loops = discoverLoops(C, P);
  if (C.options().SearchSamples == 0)
    return tiling::defaultPlan(Loops);

  machine::Microarch M = machine::Microarch::get(C.options().Target);

  // Native scoring always minimizes measured cycles — a real counter has
  // no energy channel — so Objective only shapes the model backend.
  bool Native = C.options().Backend == TuneBackend::Native;
  std::string NativeReason;
  if (Native && !nativeBackendUsable(C, NativeReason)) {
    support::traceCounter("autotuner.native.fallback");
    support::metricCounter("autotuner.native.fallback").add();
    Native = false;
  }

  if (C.options().GuidedSearch) {
    std::unique_ptr<NativeInputs> In;
    std::function<double(const tiling::TilingPlan &)> Eval;
    if (Native) {
      In = std::make_unique<NativeInputs>(P);
      Eval = [&C, &P, &In](const tiling::TilingPlan &Plan) {
        return evaluatePlanNative(C, P, Plan, *In);
      };
    } else {
      Eval = [&C, &P, M](const tiling::TilingPlan &Plan) {
        return evaluatePlan(C, P, Plan, M);
      };
    }
    return guidedSearch(C, Loops, Eval, C.options().SearchSamples);
  }

  // Fan the evaluations — the expensive part — across the pool into
  // per-plan slots. The serial reduction below takes the best score with
  // ties going to the earliest plan, which is exactly the strictly-less
  // update rule of the serial loop, so any pool size picks the same plan.
  std::vector<tiling::TilingPlan> Plans = drawSearchPlans(C, Loops);

  std::vector<double> Scores(Plans.size(),
                             std::numeric_limits<double>::infinity());
  if (Native) {
    // Two phases: codegen + toolchain + dlopen fan out over the pool (the
    // .so cache and scratch directory are thread-safe), but the timed runs
    // happen strictly one at a time afterwards so plans never contend with
    // each other's measurements for the core.
    std::vector<std::unique_ptr<runtime::NativeKernel>> Kernels(Plans.size());
    C.threadPool().parallelFor(Plans.size(), [&](size_t I) {
      Expected<runtime::NativeKernel> NK = loadPlanNative(C, P, Plans[I]);
      if (NK)
        Kernels[I] =
            std::make_unique<runtime::NativeKernel>(std::move(*NK));
    });
    NativeInputs In(P);
    std::vector<machine::Buffer *> Params = In.params();
    runtime::MeasureOptions MO = tuneMeasureOptions(C);
    for (size_t I = 0; I != Plans.size(); ++I) {
      if (!Kernels[I]) {
        support::traceCounter("autotuner.native.plan-failures");
        support::metricCounter("autotuner.native.plan-failures").add();
        continue; // stays at infinity: the plan just loses
      }
      In.restore();
      support::TraceMuteScope Mute;
      Scores[I] = runtime::measure(*Kernels[I], Params, MO).MedianCycles;
    }
  } else {
    C.threadPool().parallelFor(Plans.size(), [&](size_t I) {
      Scores[I] = evaluatePlan(C, P, Plans[I], M);
    });
  }

  size_t BestIdx = 0;
  for (size_t I = 1; I != Plans.size(); ++I)
    if (Scores[I] < Scores[BestIdx])
      BestIdx = I;

  if (support::Trace *T = support::Trace::active()) {
    std::vector<support::TracePlanEval> Evals;
    Evals.reserve(Plans.size());
    for (size_t I = 0; I != Plans.size(); ++I)
      Evals.push_back({static_cast<unsigned>(I), Plans[I].str(), Scores[I],
                       I == BestIdx});
    T->recordPlanSearch(std::move(Evals));
    T->addCounter("autotuner.plans.evaluated", Plans.size());
    T->addCounter("autotuner.plans.pruned", Plans.size() - 1);
  }
  support::metricCounter("autotuner.plans.evaluated").add(Plans.size());
  return Plans[BestIdx];
}

//===- Compiler.h - The LGen compiler driver -------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end LGen pipeline (thesis Fig. 2.1): LL parsing and tiling,
/// Σ-LL construction with loop fusion/exchange, ν-BLAC expansion to C-IR,
/// loop unrolling, scalar replacement, the §3.x optimizations, lowering of
/// generic memory accesses, instruction scheduling, and — when enabled —
/// autotuning by random search with the microarchitecture timing model as
/// the measurement backend (the role Mediator + real boards played in the
/// thesis).
///
/// The optimization toggles correspond exactly to the configurations the
/// evaluation compares: \c LGen (base), \c LGen-Align, \c LGen-MVM, and
/// \c LGen-Full.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_COMPILER_COMPILER_H
#define LGEN_COMPILER_COMPILER_H

#include "absint/AlignmentDetection.h"
#include "cir/CIR.h"
#include "isa/ISA.h"
#include "ll/AST.h"
#include "machine/Executor.h"
#include "machine/Microarch.h"
#include "machine/Timing.h"
#include "support/Expected.h"
#include "tiling/Tiling.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lgen {

namespace support {
class ThreadPool;
} // namespace support

namespace compiler {

class KernelCache;

/// What the autotuner minimizes. Cycles reproduces the thesis; Energy and
/// EDP implement the §6 future-work extension ("introduction of
/// energy-related metrics in the autotuning feedback loop").
enum class TuneObjective { Cycles, Energy, EDP };

/// How the autotuner scores candidate plans: the microarchitecture timing
/// model (deterministic, always available), or real measured cycles on the
/// host (the thesis' Mediator-plus-boards loop, §5.1.5). Native tuning
/// falls back to the model when the host lacks the target ISA or a C
/// toolchain.
enum class TuneBackend { Model, Native };

struct Options {
  isa::ISAKind ISA = isa::ISAKind::SSSE3;
  machine::UArch Target = machine::UArch::Atom;
  /// Master vectorization switch; off (or a scalar ISA) emits scalar code.
  bool Vectorize = true;
  /// §3.1 — generic memory instructions. Disabling lowers memory maps to
  /// concrete instructions *before* scalar replacement, reproducing the
  /// pre-optimization behavior where leftover shuffle/lane traffic blocks
  /// store-load forwarding (Fig. 3.2).
  bool UseGenericMemOps = true;
  /// §3.2 — alignment detection + versioning.
  bool AlignmentDetection = false;
  /// §3.3 — MVH/RR-based matrix-vector multiplication.
  bool NewMVM = false;
  /// §3.4 — specialized leftover ν-BLACs.
  bool SpecializedNuBLACs = false;
  /// Σ-LL loop fusion (§2.1.3). Always on in LGen; exposed for the
  /// ablation of how much scalar replacement depends on it (Figs 2.3/2.4).
  bool LoopFusion = true;
  /// Cap on alignment version combinations (ν^a grows fast, §3.2.4).
  unsigned MaxAlignCombos = 256;
  /// Autotuning: number of random tiling plans to evaluate (thesis §5.1.5
  /// uses a random search with sample size 10); 0 uses the default plan.
  unsigned SearchSamples = 0;
  uint64_t SearchSeed = 1;
  int64_t MaxUnrollFactor = 8;
  /// Hill-climb over per-loop factors instead of sampling blindly — the §6
  /// suggestion of heuristics to direct the search; SearchSamples bounds
  /// the number of evaluations.
  bool GuidedSearch = false;
  TuneObjective Objective = TuneObjective::Cycles;
  /// Measurement backend for the plan search. It changes which plan wins
  /// (never how a given plan compiles), and since the persistent cache
  /// stores winning plans it participates in cache fingerprints — exactly
  /// like Objective and the search knobs.
  TuneBackend Backend = TuneBackend::Model;
  /// Native-backend measurement protocol (§5.1.5): timed repetitions per
  /// plan (median reported) and untimed warm-up runs. Protocol-only
  /// tweaks to an inherently nondeterministic measurement, excluded from
  /// fingerprints.
  unsigned MeasureReps = 7;
  unsigned MeasureWarmup = 2;
  /// Lanes of parallelism for the autotuning search and compileBatch
  /// (caller included): 1 = serial, 0 = hardware concurrency. Does not
  /// affect the generated code — the parallel search is deterministic —
  /// and is therefore excluded from cache fingerprints.
  unsigned TunerThreads = 1;
  /// Directory for the persistent kernel cache; empty keeps the cache
  /// in-memory only. Also excluded from fingerprints.
  std::string CacheDir;
  /// Run the verify:: invariant checkers (Σ-LL well-formedness, C-IR
  /// structure/footprint/alignment claims) between passes; any violation
  /// throws. Defaults from LGEN_VERIFY_IR=1 in the environment. Validation
  /// only — never changes the generated code, so it is excluded from cache
  /// fingerprints.
  bool VerifyIR = false;
  /// Fault-injection mode for testing the verification tooling itself:
  /// "" (off), "flip-add" (first addition becomes a subtraction), or
  /// "drop-store" (first store is deleted). Defaults from
  /// LGEN_VERIFY_INJECT. Changes the generated code, so it participates in
  /// cache fingerprints.
  std::string InjectFault;

  /// Configuration named "LGen" in the plots: target defaults, every §3
  /// optimization off.
  static Options lgenBase(machine::UArch U);
  /// Configuration named "LGen-Full": every optimization applicable to the
  /// target enabled.
  static Options lgenFull(machine::UArch U);

  class Builder;
  /// Entry point of the fluent construction API:
  /// `Options::builder(UArch::Atom).vectorize().searchSamples(10).build()`.
  static Builder builder(machine::UArch U);
  /// Looks up a thesis configuration by plot name: "LGen", "LGen-Align",
  /// "LGen-MVM", or "LGen-Full" (case-sensitive).
  static Expected<Options> named(const std::string &Name, machine::UArch U);

  /// The vector length the configuration effectively compiles with.
  unsigned effectiveNu() const;
};

/// Fluent builder over \c Options. Starts from lgenBase(U) — every §3
/// optimization off — and toggles from there; boolean setters default to
/// `true` so `.alignmentDetection()` reads as "enable". `build()` returns
/// the finished value, so a builder chain is a single expression.
class Options::Builder {
public:
  explicit Builder(machine::UArch U) : O(Options::lgenBase(U)) {}

  /// Applies the target's full optimization set (the "LGen-Full" plot
  /// configuration) on top of whatever is set so far.
  Builder &full();

  Builder &isa(isa::ISAKind Kind);
  Builder &vectorize(bool V = true);
  Builder &genericMemOps(bool V = true);
  Builder &alignmentDetection(bool V = true);
  Builder &newMVM(bool V = true);
  Builder &specializedNuBLACs(bool V = true);
  Builder &loopFusion(bool V = true);
  Builder &maxAlignCombos(unsigned N);
  Builder &searchSamples(unsigned N);
  Builder &searchSeed(uint64_t Seed);
  Builder &maxUnrollFactor(int64_t F);
  Builder &guidedSearch(bool V = true);
  Builder &objective(TuneObjective Obj);
  Builder &tuneBackend(TuneBackend B);
  Builder &measureReps(unsigned N);
  Builder &measureWarmup(unsigned N);
  Builder &tunerThreads(unsigned N);
  Builder &cacheDir(std::string Dir);
  Builder &verifyIR(bool V = true);
  Builder &injectFault(std::string Mode);

  Options build() const { return O; }

private:
  Options O;
};

/// A compiled BLAC kernel: either a single C-IR kernel or an
/// alignment-versioned family with a runtime dispatch (Listing 3.3).
class CompiledKernel {
public:
  ll::Program Blac;
  Options Opts;
  double Flops = 0.0;
  bool HasVersions = false;
  absint::VersionedKernel Versioned;
  cir::Kernel Plain;
  /// Cycles charged for the runtime alignment checks of the dispatch.
  double DispatchOverheadCycles = 0.0;

  /// The code version executed for parameter buffers with the given base
  /// alignments (element offset mod ν per parameter array id).
  const cir::Kernel &
  kernelFor(const std::map<cir::ArrayId, int64_t> &Offsets) const;

  /// Runs the kernel over \p Params (one buffer per kernel parameter, in
  /// LL declaration order), dispatching on the buffers' alignments.
  void execute(const std::vector<machine::Buffer *> &Params) const;

  /// Estimated cycles per invocation on \p M for the given alignments.
  machine::TimingResult
  time(const machine::Microarch &M,
       const std::map<cir::ArrayId, int64_t> &Offsets = {}) const;

  /// flops/cycle, the metric of every plot in Chapter 5.
  double
  flopsPerCycle(const machine::Microarch &M,
                const std::map<cir::ArrayId, int64_t> &Offsets = {}) const;

  /// Deep copy (kernels are move-only; the cache hands out clones).
  CompiledKernel clone() const;
};

class Compiler {
public:
  explicit Compiler(Options Opts);
  ~Compiler();

  Compiler(const Compiler &) = delete;
  Compiler &operator=(const Compiler &) = delete;

  const Options &options() const { return Opts; }

  /// Compiles \p P, autotuning over tiling plans when SearchSamples > 0.
  /// The search fans out over threadPool() and consults kernelCache() when
  /// one is attached; both leave the result bit-identical to a serial,
  /// uncached compile.
  CompiledKernel compile(const ll::Program &P) const;

  /// Parse + compile. Parse and shape errors come back as the error state
  /// of the Expected rather than aborting.
  Expected<CompiledKernel> compile(const std::string &Source) const;

  /// Compiles N BLACs concurrently over the shared pool and cache. Results
  /// are positional: Out[i] is the kernel (or error) for Sources[i].
  std::vector<Expected<CompiledKernel>>
  compileBatch(const std::vector<std::string> &Sources) const;

  /// The no-clone warm path: the cached kernel for \p P, shared, or null
  /// on a cache miss (or when no cache is attached). Unlike compile(),
  /// a hit allocates nothing and never copies the kernel — dispatch-layer
  /// callers that only execute (and must not mutate) use this.
  std::shared_ptr<const CompiledKernel> lookupCached(const ll::Program &P) const;

  /// The pool the autotuner and compileBatch fan out on. Owned by default
  /// (sized by Options::TunerThreads); setThreadPool shares one across
  /// compilers.
  support::ThreadPool &threadPool() const;
  void setThreadPool(std::shared_ptr<support::ThreadPool> Pool);

  /// The kernel cache, if any (Options::CacheDir != "" creates an owned
  /// one; setKernelCache attaches a shared instance, enabling in-memory
  /// caching even without a directory).
  KernelCache *kernelCache() const { return Cache.get(); }
  void setKernelCache(std::shared_ptr<KernelCache> C) { Cache = std::move(C); }

  /// Generates the kernel for one explicit tiling plan, stopping after
  /// scalar replacement (generic memory accesses still intact). Exposed
  /// for tests and the autotuner.
  cir::Kernel
  generateCore(const ll::Program &P, const tiling::TilingPlan &Plan,
               std::vector<tiling::LoopDesc> *LoopsOut = nullptr) const;

  /// Lowers generic accesses, schedules, and verifies \p K in place.
  void finalizeKernel(cir::Kernel &K) const;

  /// Runs the full back end for one explicit tiling plan, bypassing the
  /// autotuner and the cache: the building block of the plan-space
  /// differential checker (verify::checkProgram), which must compile the
  /// *losing* plans too.
  CompiledKernel compileWithPlan(const ll::Program &P,
                                 const tiling::TilingPlan &Plan) const {
    return buildKernel(P, Plan);
  }

private:
  CompiledKernel buildKernel(const ll::Program &P,
                             const tiling::TilingPlan &Plan) const;
  void applyFaultInjection(cir::Kernel &K) const;

  Options Opts;
  mutable std::shared_ptr<support::ThreadPool> Pool;
  mutable std::mutex PoolMutex;
  std::shared_ptr<KernelCache> Cache;
};

/// Random-search autotuner (Autotuner.cpp): evaluates SearchSamples random
/// plans plus the default plan with the timing model and returns the best.
/// Evaluations run in parallel over C.threadPool(); the reduction is
/// deterministic (best score, ties to the earliest plan), so the choice
/// matches the serial search exactly.
tiling::TilingPlan choosePlan(const Compiler &C, const ll::Program &P);

/// The full candidate set a search with C.options() would consider — the
/// default plan plus the SearchSamples seeded random draws — extended with
/// edge plans the random search rarely hits (no unrolling at all, exchanged
/// loops, maximal legal unrolling). Differential verification compiles a
/// BLAC under *every* one of these, not just the winner choosePlan returns.
std::vector<tiling::TilingPlan> enumeratePlans(const Compiler &C,
                                               const ll::Program &P);

} // namespace compiler
} // namespace lgen

#endif // LGEN_COMPILER_COMPILER_H

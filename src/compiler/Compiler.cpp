//===- Compiler.cpp - The LGen compiler driver -----------------*- C++ -*-===//

#include "compiler/Compiler.h"

#include "cir/Passes.h"
#include "isa/MemMapLowering.h"
#include "isa/NuBLACs.h"
#include "ll/Parser.h"
#include "machine/Scheduler.h"
#include "sll/Lowering.h"
#include "sll/Translate.h"

using namespace lgen;
using namespace lgen::compiler;

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

namespace {

isa::ISAKind isaForTarget(machine::UArch U) {
  switch (U) {
  case machine::UArch::Atom:
    return isa::ISAKind::SSSE3;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    return isa::ISAKind::NEON;
  case machine::UArch::ARM1176:
    return isa::ISAKind::Scalar;
  case machine::UArch::SandyBridge:
    return isa::ISAKind::AVX;
  }
  LGEN_UNREACHABLE("unknown microarchitecture");
}

} // namespace

Options Options::lgenBase(machine::UArch U) {
  Options O;
  O.Target = U;
  O.ISA = isaForTarget(U);
  O.Vectorize = O.ISA != isa::ISAKind::Scalar;
  return O;
}

Options Options::lgenFull(machine::UArch U) {
  Options O = lgenBase(U);
  switch (U) {
  case machine::UArch::Atom:
    // §5.2: alignment detection + new MVM apply on Atom.
    O.AlignmentDetection = true;
    O.NewMVM = true;
    break;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    // §5.3/§5.4: specialized ν-BLACs apply on the NEON processors.
    O.SpecializedNuBLACs = true;
    break;
  case machine::UArch::ARM1176:
    // §5.5: all §3 optimizations target vector code generation.
    break;
  case machine::UArch::SandyBridge:
    // CGO'14 desktop target: unaligned moves are cheap, so alignment
    // detection buys little; the MVH/RR split still pays (hadd 5/2).
    O.NewMVM = true;
    break;
  }
  return O;
}

unsigned Options::effectiveNu() const {
  if (!Vectorize)
    return 1;
  return isa::traits(ISA).Nu;
}

//===----------------------------------------------------------------------===//
// CompiledKernel
//===----------------------------------------------------------------------===//

const cir::Kernel &CompiledKernel::kernelFor(
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  if (!HasVersions)
    return Plain;
  return Versioned.select(Offsets);
}

void CompiledKernel::execute(
    const std::vector<machine::Buffer *> &Params) const {
  std::map<cir::ArrayId, int64_t> Offsets;
  for (size_t I = 0; I != Params.size(); ++I)
    Offsets[static_cast<cir::ArrayId>(I)] = Params[I]->AlignOffset;
  machine::execute(kernelFor(Offsets), Params);
}

machine::TimingResult CompiledKernel::time(
    const machine::Microarch &M,
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  return machine::simulate(kernelFor(Offsets), M, DispatchOverheadCycles);
}

double CompiledKernel::flopsPerCycle(
    const machine::Microarch &M,
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  machine::TimingResult R = time(M, Offsets);
  return R.Cycles > 0 ? Flops / R.Cycles : 0.0;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

cir::Kernel
Compiler::generateCore(const ll::Program &P, const tiling::TilingPlan &Plan,
                       std::vector<tiling::LoopDesc> *LoopsOut) const {
  unsigned Nu = Opts.effectiveNu();
  isa::ISAKind Kind = Nu == 1 ? isa::ISAKind::Scalar : Opts.ISA;
  std::unique_ptr<isa::NuBLACs> NB = isa::makeNuBLACs(Kind);

  // LL → Σ-LL (tiling decisions + Σ rules), then the Σ-LL transformations.
  sll::TranslateOptions TO;
  TO.Nu = Nu;
  TO.NewMVM = Opts.NewMVM;
  sll::SProgram SP = sll::translate(P, TO);
  if (Opts.LoopFusion)
    sll::fuseNests(SP);
  if (Plan.ExchangeLoops)
    sll::exchangeLoops(SP, /*Reverse=*/true);

  // Σ-LL → C-IR with the ν-BLAC library.
  sll::LoweredKernel LK =
      sll::lowerToCIR(SP, *NB, Opts.SpecializedNuBLACs, P.OutputName + "_kernel");
  if (LoopsOut)
    *LoopsOut = LK.Loops;

  // Outer tiling: partial unrolls per plan (clamped to a legal divisor),
  // then full unrolling of small loops. Deepest loops first: unrolling an
  // outer loop clones its (already-unrolled) inner loops, so the reverse
  // order would leave all but the first clone untouched.
  for (size_t I = LK.LoopIds.size(); I-- > 0;) {
    int64_t Want = Plan.factorFor(I);
    if (Want <= 1)
      continue;
    std::vector<int64_t> Legal =
        tiling::legalUnrollFactors(LK.Loops[I].TripCount, Want);
    cir::unrollLoopBy(LK.K, LK.LoopIds[I], Legal.back());
  }
  cir::unrollLoops(LK.K, Plan.FullUnrollTrip);

  if (!Opts.UseGenericMemOps) {
    // Ablation of §3.1: concrete memory instructions reach scalar
    // replacement, so partial-tile accesses are not forwarded.
    isa::lowerGenericMemOps(LK.K);
  }
  cir::scalarReplacement(LK.K);
  return std::move(LK.K);
}

void Compiler::finalizeKernel(cir::Kernel &K) const {
  isa::lowerGenericMemOps(K);
  cir::cleanup(K);
  machine::scheduleKernel(K, machine::Microarch::get(Opts.Target));
  K.verify();
}

CompiledKernel Compiler::compile(const ll::Program &P) const {
  tiling::TilingPlan Plan = choosePlan(*this, P);

  CompiledKernel CK;
  CK.Blac = P.clone();
  CK.Opts = Opts;
  CK.Flops = ll::flopCount(P);

  cir::Kernel Core = generateCore(P, Plan);
  unsigned Nu = Opts.effectiveNu();
  if (Opts.AlignmentDetection && Nu > 1) {
    CK.Versioned =
        absint::makeAlignmentVersions(Core, Nu, Opts.MaxAlignCombos);
    for (cir::Kernel &V : CK.Versioned.Versions)
      finalizeKernel(V);
    finalizeKernel(CK.Versioned.Fallback);
    CK.HasVersions = true;
    // Listing 3.3: a chain of modulo checks selects the version at runtime.
    CK.DispatchOverheadCycles =
        2.0 + 2.0 * CK.Versioned.VersionedArrays.size();
  } else {
    CK.Plain = std::move(Core);
    finalizeKernel(CK.Plain);
  }
  return CK;
}

CompiledKernel Compiler::compile(const std::string &Source) const {
  return compile(ll::parseProgramOrDie(Source));
}

//===- Compiler.cpp - The LGen compiler driver -----------------*- C++ -*-===//

#include "compiler/Compiler.h"

#include "cir/Passes.h"
#include "compiler/KernelCache.h"
#include "isa/MemMapLowering.h"
#include "isa/NuBLACs.h"
#include "ll/Parser.h"
#include "machine/Scheduler.h"
#include "sll/Lowering.h"
#include "sll/Translate.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "verify/Invariants.h"

#include <cstdlib>
#include <stdexcept>

using namespace lgen;
using namespace lgen::compiler;

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

namespace {

isa::ISAKind isaForTarget(machine::UArch U) {
  switch (U) {
  case machine::UArch::Atom:
    return isa::ISAKind::SSSE3;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    return isa::ISAKind::NEON;
  case machine::UArch::ARM1176:
    return isa::ISAKind::Scalar;
  case machine::UArch::SandyBridge:
    return isa::ISAKind::AVX;
  }
  LGEN_UNREACHABLE("unknown microarchitecture");
}

} // namespace

Options Options::lgenBase(machine::UArch U) {
  Options O;
  O.Target = U;
  O.ISA = isaForTarget(U);
  O.Vectorize = O.ISA != isa::ISAKind::Scalar;
  // Verification knobs default from the environment so a whole test run
  // (or CI lane) can be switched over without touching call sites.
  if (const char *E = std::getenv("LGEN_VERIFY_IR"))
    O.VerifyIR = *E && std::string(E) != "0";
  if (const char *E = std::getenv("LGEN_VERIFY_INJECT"))
    O.InjectFault = E;
  return O;
}

Options Options::lgenFull(machine::UArch U) {
  Options O = lgenBase(U);
  switch (U) {
  case machine::UArch::Atom:
    // §5.2: alignment detection + new MVM apply on Atom.
    O.AlignmentDetection = true;
    O.NewMVM = true;
    break;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    // §5.3/§5.4: specialized ν-BLACs apply on the NEON processors.
    O.SpecializedNuBLACs = true;
    break;
  case machine::UArch::ARM1176:
    // §5.5: all §3 optimizations target vector code generation.
    break;
  case machine::UArch::SandyBridge:
    // CGO'14 desktop target: unaligned moves are cheap, so alignment
    // detection buys little; the MVH/RR split still pays (hadd 5/2).
    O.NewMVM = true;
    break;
  }
  return O;
}

unsigned Options::effectiveNu() const {
  if (!Vectorize)
    return 1;
  return isa::traits(ISA).Nu;
}

//===----------------------------------------------------------------------===//
// Options::Builder
//===----------------------------------------------------------------------===//

Options::Builder Options::builder(machine::UArch U) { return Builder(U); }

Expected<Options> Options::named(const std::string &Name, machine::UArch U) {
  // The four configurations of the Chapter 5 plots. "-Align" and "-MVM"
  // are the Atom ablations; on other targets they fall back to the toggles
  // they name, which is what the plots for those machines compare.
  if (Name == "LGen")
    return lgenBase(U);
  if (Name == "LGen-Full")
    return lgenFull(U);
  if (Name == "LGen-Align")
    return builder(U).alignmentDetection().build();
  if (Name == "LGen-MVM")
    return builder(U).newMVM().build();
  return Err("unknown configuration \"" + Name +
             "\" (expected LGen, LGen-Align, LGen-MVM, or LGen-Full)");
}

Options::Builder &Options::Builder::full() {
  Options Named = Options::lgenFull(O.Target);
  O.AlignmentDetection = Named.AlignmentDetection;
  O.NewMVM = Named.NewMVM;
  O.SpecializedNuBLACs = Named.SpecializedNuBLACs;
  return *this;
}

Options::Builder &Options::Builder::isa(isa::ISAKind Kind) {
  O.ISA = Kind;
  O.Vectorize = Kind != isa::ISAKind::Scalar;
  return *this;
}

Options::Builder &Options::Builder::vectorize(bool V) {
  O.Vectorize = V;
  return *this;
}

Options::Builder &Options::Builder::genericMemOps(bool V) {
  O.UseGenericMemOps = V;
  return *this;
}

Options::Builder &Options::Builder::alignmentDetection(bool V) {
  O.AlignmentDetection = V;
  return *this;
}

Options::Builder &Options::Builder::newMVM(bool V) {
  O.NewMVM = V;
  return *this;
}

Options::Builder &Options::Builder::specializedNuBLACs(bool V) {
  O.SpecializedNuBLACs = V;
  return *this;
}

Options::Builder &Options::Builder::loopFusion(bool V) {
  O.LoopFusion = V;
  return *this;
}

Options::Builder &Options::Builder::maxAlignCombos(unsigned N) {
  O.MaxAlignCombos = N;
  return *this;
}

Options::Builder &Options::Builder::searchSamples(unsigned N) {
  O.SearchSamples = N;
  return *this;
}

Options::Builder &Options::Builder::searchSeed(uint64_t Seed) {
  O.SearchSeed = Seed;
  return *this;
}

Options::Builder &Options::Builder::maxUnrollFactor(int64_t F) {
  O.MaxUnrollFactor = F;
  return *this;
}

Options::Builder &Options::Builder::guidedSearch(bool V) {
  O.GuidedSearch = V;
  return *this;
}

Options::Builder &Options::Builder::objective(TuneObjective Obj) {
  O.Objective = Obj;
  return *this;
}

Options::Builder &Options::Builder::tuneBackend(TuneBackend B) {
  O.Backend = B;
  return *this;
}

Options::Builder &Options::Builder::measureReps(unsigned N) {
  O.MeasureReps = N;
  return *this;
}

Options::Builder &Options::Builder::measureWarmup(unsigned N) {
  O.MeasureWarmup = N;
  return *this;
}

Options::Builder &Options::Builder::tunerThreads(unsigned N) {
  O.TunerThreads = N;
  return *this;
}

Options::Builder &Options::Builder::cacheDir(std::string Dir) {
  O.CacheDir = std::move(Dir);
  return *this;
}

Options::Builder &Options::Builder::verifyIR(bool V) {
  O.VerifyIR = V;
  return *this;
}

Options::Builder &Options::Builder::injectFault(std::string Mode) {
  O.InjectFault = std::move(Mode);
  return *this;
}

//===----------------------------------------------------------------------===//
// CompiledKernel
//===----------------------------------------------------------------------===//

const cir::Kernel &CompiledKernel::kernelFor(
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  if (!HasVersions)
    return Plain;
  return Versioned.select(Offsets);
}

void CompiledKernel::execute(
    const std::vector<machine::Buffer *> &Params) const {
  std::map<cir::ArrayId, int64_t> Offsets;
  for (size_t I = 0; I != Params.size(); ++I)
    Offsets[static_cast<cir::ArrayId>(I)] = Params[I]->AlignOffset;
  machine::execute(kernelFor(Offsets), Params);
}

machine::TimingResult CompiledKernel::time(
    const machine::Microarch &M,
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  return machine::simulate(kernelFor(Offsets), M, DispatchOverheadCycles);
}

double CompiledKernel::flopsPerCycle(
    const machine::Microarch &M,
    const std::map<cir::ArrayId, int64_t> &Offsets) const {
  machine::TimingResult R = time(M, Offsets);
  return R.Cycles > 0 ? Flops / R.Cycles : 0.0;
}

CompiledKernel CompiledKernel::clone() const {
  CompiledKernel CK;
  CK.Blac = Blac.clone();
  CK.Opts = Opts;
  CK.Flops = Flops;
  CK.HasVersions = HasVersions;
  CK.DispatchOverheadCycles = DispatchOverheadCycles;
  CK.Plain = Plain.clone();
  CK.Versioned.Nu = Versioned.Nu;
  CK.Versioned.VersionedArrays = Versioned.VersionedArrays;
  CK.Versioned.Combos = Versioned.Combos;
  CK.Versioned.Versions.reserve(Versioned.Versions.size());
  for (const cir::Kernel &V : Versioned.Versions)
    CK.Versioned.Versions.push_back(V.clone());
  CK.Versioned.Fallback = Versioned.Fallback.clone();
  return CK;
}

//===----------------------------------------------------------------------===//
// Compiler infrastructure: thread pool and kernel cache
//===----------------------------------------------------------------------===//

Compiler::Compiler(Options Opts) : Opts(std::move(Opts)) {
  if (!this->Opts.CacheDir.empty())
    Cache = std::make_shared<KernelCache>(this->Opts.CacheDir);
}

Compiler::~Compiler() = default;

support::ThreadPool &Compiler::threadPool() const {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!Pool)
    Pool = std::make_shared<support::ThreadPool>(
        Opts.TunerThreads == 0 ? 0 : Opts.TunerThreads);
  return *Pool;
}

void Compiler::setThreadPool(std::shared_ptr<support::ThreadPool> P) {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  Pool = std::move(P);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

namespace {

/// Throws when a verify:: checker returned diagnostics. Exceptions (rather
/// than reportFatalError) keep violations recoverable: the differential
/// checker records them as findings and the CLI reports them with the
/// failing BLAC attached.
void throwOnViolations(const char *Stage,
                       const std::vector<std::string> &Diags) {
  if (Diags.empty())
    return;
  std::string Msg = "IR invariant violation after " + std::string(Stage) + ":";
  for (const std::string &D : Diags)
    Msg += "\n  " + D;
  throw std::runtime_error(Msg);
}

/// Deletes the first store instruction in \p Body ("drop-store" fault).
bool dropFirstStore(std::vector<cir::Node> &Body) {
  for (auto It = Body.begin(); It != Body.end(); ++It) {
    if (It->isInst()) {
      if (It->inst().isStore()) {
        Body.erase(It);
        return true;
      }
    } else if (dropFirstStore(It->loop().Body)) {
      return true;
    }
  }
  return false;
}

/// Turns the first addition into a subtraction ("flip-add" fault); falls
/// back to demoting an FMA to a plain multiply when the kernel has no Add.
void flipFirstAdd(cir::Kernel &K) {
  bool Done = false;
  K.forEachInst([&](cir::Inst &I) {
    if (!Done && I.Op == cir::Opcode::Add) {
      I.Op = cir::Opcode::Sub;
      Done = true;
    }
  });
  if (Done)
    return;
  K.forEachInst([&](cir::Inst &I) {
    if (!Done && I.Op == cir::Opcode::FMA) {
      I.Op = cir::Opcode::Mul;
      Done = true;
    }
  });
}

} // namespace

void Compiler::applyFaultInjection(cir::Kernel &K) const {
  if (Opts.InjectFault.empty())
    return;
  if (Opts.InjectFault == "flip-add")
    flipFirstAdd(K);
  else if (Opts.InjectFault == "drop-store")
    dropFirstStore(K.getBody());
  else
    reportFatalError("unknown fault injection mode '" + Opts.InjectFault +
                     "' (expected flip-add or drop-store)");
}

cir::Kernel
Compiler::generateCore(const ll::Program &P, const tiling::TilingPlan &Plan,
                       std::vector<tiling::LoopDesc> *LoopsOut) const {
  support::TraceSpan CoreSpan("generate-core");
  support::Trace *T = support::Trace::active();
  bool Traced = T && !support::Trace::muted();
  if (Traced && T->wantsSnapshot("ll"))
    T->snapshot("ll", P.OutputName, P.str());

  unsigned Nu = Opts.effectiveNu();
  isa::ISAKind Kind = Nu == 1 ? isa::ISAKind::Scalar : Opts.ISA;
  std::unique_ptr<isa::NuBLACs> NB = isa::makeNuBLACs(Kind);

  // LL → Σ-LL (tiling decisions + Σ rules), then the Σ-LL transformations.
  sll::TranslateOptions TO;
  TO.Nu = Nu;
  TO.NewMVM = Opts.NewMVM;
  sll::SProgram SP = [&] {
    support::TraceSpan Span("sll.translate");
    return sll::translate(P, TO);
  }();
  if (Traced && T->wantsSnapshot("sll"))
    T->snapshot("sll", P.OutputName, SP.str());
  if (Opts.VerifyIR)
    throwOnViolations("sll.translate", verify::checkSigmaLL(SP));
  if (Opts.LoopFusion) {
    support::TraceSpan Span("sll.fuse");
    unsigned Merges = sll::fuseNests(SP);
    if (Traced)
      T->addCounter("sll.fuse.merges", Merges);
  }
  if (Plan.ExchangeLoops) {
    sll::exchangeLoops(SP, /*Reverse=*/true);
    if (Traced)
      T->addCounter("sll.exchange.applied");
  }
  if (Traced && T->wantsSnapshot("sll-opt"))
    T->snapshot("sll-opt", P.OutputName, SP.str());
  if (Opts.VerifyIR && (Opts.LoopFusion || Plan.ExchangeLoops))
    throwOnViolations("sll.fuse/exchange", verify::checkSigmaLL(SP));

  // Σ-LL → C-IR with the ν-BLAC library.
  sll::LoweredKernel LK = [&] {
    support::TraceSpan Span("sll.lower");
    return sll::lowerToCIR(SP, *NB, Opts.SpecializedNuBLACs,
                           P.OutputName + "_kernel");
  }();
  if (LoopsOut)
    *LoopsOut = LK.Loops;
  if (Traced && T->wantsSnapshot("cir"))
    T->snapshot("cir", LK.K.getName(), LK.K.str());

  // Outer tiling: partial unrolls per plan (clamped to a legal divisor),
  // then full unrolling of small loops. Deepest loops first: unrolling an
  // outer loop clones its (already-unrolled) inner loops, so the reverse
  // order would leave all but the first clone untouched.
  {
    support::TraceSpan Span("cir.unroll");
    for (size_t I = LK.LoopIds.size(); I-- > 0;) {
      int64_t Want = Plan.factorFor(I);
      if (Want <= 1)
        continue;
      std::vector<int64_t> Legal =
          tiling::legalUnrollFactors(LK.Loops[I].TripCount, Want);
      cir::unrollLoopBy(LK.K, LK.LoopIds[I], Legal.back());
    }
    cir::unrollLoops(LK.K, Plan.FullUnrollTrip);
  }

  if (!Opts.UseGenericMemOps) {
    // Ablation of §3.1: concrete memory instructions reach scalar
    // replacement, so partial-tile accesses are not forwarded.
    isa::lowerGenericMemOps(LK.K);
  }
  {
    support::TraceSpan Span("cir.scalar-replacement");
    cir::scalarReplacement(LK.K);
  }
  if (Opts.VerifyIR)
    throwOnViolations("cir.scalar-replacement", verify::checkCIR(LK.K));
  return std::move(LK.K);
}

void Compiler::finalizeKernel(cir::Kernel &K) const {
  support::TraceSpan FinalizeSpan("finalize");
  {
    support::TraceSpan Span("isa.memmap-lowering");
    isa::lowerGenericMemOps(K);
  }
  cir::cleanup(K);
  applyFaultInjection(K);
  {
    support::TraceSpan Span("machine.schedule");
    machine::scheduleKernel(K, machine::Microarch::get(Opts.Target));
  }
  K.verify();
  if (Opts.VerifyIR)
    throwOnViolations("machine.schedule", verify::checkCIR(K));
  support::Trace *T = support::Trace::active();
  if (T && !support::Trace::muted() && T->wantsSnapshot("cir-final"))
    T->snapshot("cir-final", K.getName(), K.str());
}

CompiledKernel Compiler::buildKernel(const ll::Program &P,
                                     const tiling::TilingPlan &Plan) const {
  CompiledKernel CK;
  CK.Blac = P.clone();
  CK.Opts = Opts;
  CK.Flops = ll::flopCount(P);

  cir::Kernel Core = generateCore(P, Plan);
  unsigned Nu = Opts.effectiveNu();
  if (Opts.AlignmentDetection && Nu > 1) {
    support::TraceSpan Span("alignment-versioning");
    CK.Versioned =
        absint::makeAlignmentVersions(Core, Nu, Opts.MaxAlignCombos);
    for (cir::Kernel &V : CK.Versioned.Versions)
      finalizeKernel(V);
    finalizeKernel(CK.Versioned.Fallback);
    if (Opts.VerifyIR) {
      // Re-check every version's Aligned claims against the base-offset
      // combination it was specialized for; the fallback assumes nothing,
      // so its parameter accesses must carry no claims at all.
      for (size_t I = 0; I != CK.Versioned.Versions.size(); ++I) {
        verify::CIRCheckOptions CO;
        CO.Nu = Nu;
        for (size_t A = 0; A != CK.Versioned.VersionedArrays.size(); ++A)
          CO.BaseOffsets[CK.Versioned.VersionedArrays[A]] =
              CK.Versioned.Combos[I][A];
        throwOnViolations("alignment-versioning",
                          verify::checkCIR(CK.Versioned.Versions[I], CO));
      }
      verify::CIRCheckOptions Fallback;
      Fallback.Nu = Nu;
      throwOnViolations("alignment-versioning (fallback)",
                        verify::checkCIR(CK.Versioned.Fallback, Fallback));
    }
    support::traceCounter("absint.versions", CK.Versioned.Versions.size());
    CK.HasVersions = true;
    // Listing 3.3: a chain of modulo checks selects the version at runtime.
    CK.DispatchOverheadCycles =
        2.0 + 2.0 * CK.Versioned.VersionedArrays.size();
  } else {
    CK.Plain = std::move(Core);
    finalizeKernel(CK.Plain);
  }
  return CK;
}

CompiledKernel Compiler::compile(const ll::Program &P) const {
  support::TraceSpan CompileSpan("compile");
  // Cache hit/miss accounting lives inside KernelCache itself (the
  // `kernelcache.*` Metrics counters); only the no-cache bypass is counted
  // here, since the cache never sees those compiles.
  if (!Cache) {
    static support::Metrics::Counter &Bypassed =
        support::Metrics::global().counter("kernelcache.bypassed");
    CompiledKernel CK = buildKernel(P, choosePlan(*this, P));
    Bypassed.add();
    return CK;
  }

  uint64_t Key = KernelCache::fingerprint(P.str(), Opts);
  if (std::shared_ptr<const CompiledKernel> Hit = Cache->lookupKernel(Key))
    return Hit->clone();

  tiling::TilingPlan Plan;
  bool PlanHit = Cache->lookupPlan(Key, Plan);
  if (!PlanHit)
    Plan = choosePlan(*this, P);

  CompiledKernel CK = buildKernel(P, Plan);
  auto Cached = std::make_shared<CompiledKernel>(CK.clone());
  if (PlanHit)
    Cache->storeKernel(Key, std::move(Cached));
  else
    Cache->store(Key, Plan, P.str(), Opts, std::move(Cached));
  return CK;
}

std::shared_ptr<const CompiledKernel>
Compiler::lookupCached(const ll::Program &P) const {
  if (!Cache)
    return nullptr;
  return Cache->lookupKernel(KernelCache::fingerprint(P.str(), Opts));
}

Expected<CompiledKernel> Compiler::compile(const std::string &Source) const {
  ll::Program P;
  std::string Err;
  if (!ll::parseProgram(Source, P, Err))
    return lgen::Err(Err);
  return compile(P);
}

std::vector<Expected<CompiledKernel>>
Compiler::compileBatch(const std::vector<std::string> &Sources) const {
  support::TraceSpan BatchSpan("compile-batch");
  std::vector<Expected<CompiledKernel>> Results;
  Results.reserve(Sources.size());
  for (size_t I = 0; I != Sources.size(); ++I)
    Results.push_back(lgen::Err("not compiled"));

  // One task per BLAC; the autotuner inside each task detects it is on a
  // pool worker and searches serially, so the batch parallelizes across
  // BLACs without oversubscribing or deadlocking the pool. Results land in
  // positional slots, keeping the output order deterministic.
  threadPool().parallelFor(Sources.size(), [&](size_t I) {
    Results[I] = compile(Sources[I]);
  });
  return Results;
}

//===- LGen.h - Single public umbrella header for the compiler -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header a client of the compile API needs. Typical use:
///
/// \code
///   #include "lgen/LGen.h"
///
///   using namespace lgen;
///   compiler::Options O = compiler::Options::builder(machine::UArch::Atom)
///                             .alignmentDetection()
///                             .searchSamples(10)
///                             .tunerThreads(4)
///                             .build();
///   compiler::Compiler C(O);
///   Expected<compiler::CompiledKernel> K =
///       C.compile("Matrix A(4,16); Vector x(16); Vector y(4); y = A*x;");
///   if (!K)
///     report(K.error());
/// \endcode
///
/// Batch compilation shares the thread pool and the kernel cache:
///
/// \code
///   auto Kernels = C.compileBatch(Sources);   // N BLACs tune concurrently
///   compiler::CacheStats S = C.kernelCache()->stats();
/// \endcode
///
/// Native execution (compile the emitted C with the host toolchain, run
/// and measure it for real):
///
/// \code
///   Expected<runtime::NativeKernel> NK = runtime::NativeKernel::load(*K);
///   runtime::MeasureResult M = runtime::measure(*NK, Buffers);
///   double FPC = K->Flops / M.MedianCycles;
/// \endcode
///
/// This pulls in the full public surface: the LL frontend, Options and its
/// builder, the compiler with autotuning, the kernel cache, the thread
/// pool, the timing model, the C unparser, and the native execution and
/// measurement runtime.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_LGEN_H
#define LGEN_LGEN_H

#include "codegen/CUnparser.h"
#include "compiler/Compiler.h"
#include "compiler/KernelCache.h"
#include "ll/Parser.h"
#include "machine/Microarch.h"
#include "machine/Timing.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"
#include "runtime/NativeKernel.h"
#include "support/Expected.h"
#include "support/ThreadPool.h"

#endif // LGEN_LGEN_H

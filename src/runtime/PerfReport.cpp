//===- PerfReport.cpp - Per-kernel performance reports --------------------===//

#include "runtime/PerfReport.h"

#include "compiler/Compiler.h"
#include "machine/Microarch.h"

#include <cstdio>
#include <sstream>

using namespace lgen;
using namespace lgen::runtime;

//===----------------------------------------------------------------------===//
// Static operation counting
//===----------------------------------------------------------------------===//

namespace {

/// Flops one execution of \p I issues. Lane counts come from the register
/// file: a 4-lane Add is 4 additions whether or not every lane carries
/// useful data.
uint64_t flopsOf(const cir::Kernel &K, const cir::Inst &I) {
  using cir::Opcode;
  auto Lanes = [&](cir::RegId R) -> uint64_t { return K.lanesOf(R); };
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Neg:
  case Opcode::MulLane:
    return Lanes(I.Dest);
  case Opcode::FMA:
  case Opcode::FMALane:
    return 2 * Lanes(I.Dest); // one mul + one add per lane
  case Opcode::HAdd:
    return Lanes(I.Dest); // one addition per output lane
  case Opcode::DotPS:
    // L multiplies + (L-1) adds for the horizontal reduction.
    return 2 * Lanes(I.A) - 1;
  default:
    return 0;
  }
}

bool isArith(cir::Opcode Op) {
  using cir::Opcode;
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Neg:
  case Opcode::FMA:
  case Opcode::HAdd:
  case Opcode::DotPS:
  case Opcode::MulLane:
  case Opcode::FMALane:
    return true;
  default:
    return false;
  }
}

bool isShuffleLike(cir::Opcode Op) {
  using cir::Opcode;
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Broadcast:
  case Opcode::Shuffle:
  case Opcode::Insert:
  case Opcode::Extract:
  case Opcode::GetLow:
  case Opcode::GetHigh:
  case Opcode::Combine:
    return true;
  default:
    return false;
  }
}

/// Bytes a load/store actively touches: lanes that reach memory × 4.
uint64_t bytesOf(const cir::Kernel &K, const cir::Inst &I) {
  using cir::Opcode;
  switch (I.Op) {
  case Opcode::Load:
    return 4ull * K.lanesOf(I.Dest);
  case Opcode::Store:
    return 4ull * K.lanesOf(I.A);
  case Opcode::LoadBroadcast: // reads one element, fills every lane
  case Opcode::LoadLane:
  case Opcode::StoreLane:
    return 4;
  case Opcode::GLoad:
  case Opcode::GStore:
    return 4ull * I.Map.numActiveLanes();
  default:
    return 0;
  }
}

void countIn(const cir::Kernel &K, const std::vector<cir::Node> &Body,
             uint64_t Mult, StaticOpCounts &C) {
  for (const cir::Node &N : Body) {
    if (N.isLoop()) {
      const cir::Loop &L = N.loop();
      countIn(K, L.Body, Mult * static_cast<uint64_t>(L.tripCount()), C);
      continue;
    }
    const cir::Inst &I = N.inst();
    if (isArith(I.Op)) {
      uint64_t Lanes = K.lanesOf(I.Dest);
      if (Lanes > 1) {
        C.VectorArithInsts += Mult;
        C.VectorFlops += Mult * flopsOf(K, I);
      } else {
        C.ScalarArithInsts += Mult;
        C.ScalarFlops += Mult * flopsOf(K, I);
      }
    } else if (isShuffleLike(I.Op)) {
      C.ShuffleInsts += Mult;
    } else if (I.isLoad()) {
      C.Loads += Mult;
      C.LoadedBytes += Mult * bytesOf(K, I);
    } else if (I.isStore()) {
      C.Stores += Mult;
      C.StoredBytes += Mult * bytesOf(K, I);
    }
  }
}

} // namespace

StaticOpCounts runtime::countOps(const cir::Kernel &K) {
  StaticOpCounts C;
  countIn(K, K.getBody(), 1, C);
  return C;
}

//===----------------------------------------------------------------------===//
// Report construction
//===----------------------------------------------------------------------===//

PerfReport runtime::makeReport(const compiler::CompiledKernel &CK,
                               const MeasureResult &M) {
  PerfReport R;
  const cir::Kernel &K = CK.kernelFor({});
  R.KernelName = K.getName();
  R.Target = machine::uarchName(CK.Opts.Target);
  R.Static = countOps(K);
  R.UsefulFlops = CK.Flops;
  if (R.Static.totalBytes() > 0)
    R.OperationalIntensity = R.UsefulFlops / R.Static.totalBytes();

  R.MedianTicks = M.MedianCycles;
  R.Counter = M.Counter;
  R.Unit = M.Unit;
  R.HwCounters = M.HwCounters;
  R.PeakFlopsPerCycle =
      machine::Microarch::get(CK.Opts.Target).PeakFlopsPerCycle;

  bool HaveCycles = M.Unit == "cycles" && M.MedianCycles > 0;
  if (HaveCycles)
    R.AchievedFlopsPerCycle = R.UsefulFlops / M.MedianCycles;

  // The documented triage heuristic (see the file comment / DESIGN.md):
  // ≥ 50% of peak is compute-bound by any reading; below that, blame
  // memory when under a flop per byte, the pipeline otherwise.
  if (!HaveCycles)
    R.Boundedness = "unclassified (no cycle counter)";
  else if (R.PeakFlopsPerCycle > 0 &&
           R.AchievedFlopsPerCycle >= 0.5 * R.PeakFlopsPerCycle)
    R.Boundedness = "compute-bound";
  else if (R.OperationalIntensity < 1.0)
    R.Boundedness = "memory-bound";
  else
    R.Boundedness = "compute-bound (under-utilized)";
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string PerfReport::str() const {
  std::ostringstream OS;
  char Buf[256];
  OS << "== perf report: " << KernelName << " (" << Target << ") ==\n";

  std::snprintf(Buf, sizeof(Buf),
                "static:   %llu useful flops; executed %llu (%llu vector + "
                "%llu scalar)\n",
                (unsigned long long)UsefulFlops,
                (unsigned long long)Static.totalFlops(),
                (unsigned long long)Static.VectorFlops,
                (unsigned long long)Static.ScalarFlops);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "memory:   %llu loads / %llu stores, %llu bytes touched "
                "(%.3f useful f/B)\n",
                (unsigned long long)Static.Loads,
                (unsigned long long)Static.Stores,
                (unsigned long long)Static.totalBytes(),
                OperationalIntensity);
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf), "measured: %.1f %s/invocation (%s)\n",
                MedianTicks, Unit.c_str(), Counter.c_str());
  OS << Buf;
  if (!HwCounters.empty()) {
    OS << "counters:";
    for (const HwCounterReading &C : HwCounters) {
      std::snprintf(Buf, sizeof(Buf), " %s=%.1f", C.Name.c_str(), C.Value);
      OS << Buf;
      if (C.RunningRatio < 0.999) {
        std::snprintf(Buf, sizeof(Buf), " (~%.0f%% sampled)",
                      100.0 * C.RunningRatio);
        OS << Buf;
      }
    }
    OS << "\n";
  } else {
    OS << "counters: none (perf_event unavailable; " << Counter
       << " fallback)\n";
  }
  if (Unit == "cycles" && MedianTicks > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "achieved: %.3f f/c of %.2f f/c peak (%.1f%%)\n",
                  AchievedFlopsPerCycle, PeakFlopsPerCycle,
                  PeakFlopsPerCycle > 0
                      ? 100.0 * AchievedFlopsPerCycle / PeakFlopsPerCycle
                      : 0.0);
    OS << Buf;
  } else {
    OS << "achieved: n/a (" << Unit << "-based measurement; peak is "
       << PeakFlopsPerCycle << " f/c)\n";
  }
  OS << "verdict:  " << Boundedness << "\n";
  return OS.str();
}

//===- NativeKernel.cpp - Compile-and-load kernel execution ---------------===//

#include "runtime/NativeKernel.h"

#include "codegen/CUnparser.h"
#include "compiler/KernelCache.h"
#include "ll/Reference.h"
#include "runtime/CpuInfo.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#if defined(_WIN32)
#include <malloc.h>
#endif

using namespace lgen;
using namespace lgen::runtime;

namespace {

/// The dispatch function of the compiled artifact: the plain kernel, or the
/// versioned family's runtime-dispatch entry (which unparseCompiled emits
/// under the fallback kernel's original name).
const cir::Kernel &dispatchKernel(const compiler::CompiledKernel &CK) {
  return CK.HasVersions ? CK.Versioned.Fallback : CK.Plain;
}

/// The exported C shim: the kernel functions themselves are emitted static
/// (they are an implementation detail of the translation unit), so the shim
/// is the shared object's only visible symbol. It unpacks an argv-style
/// float* array into the kernel's typed parameter list.
std::string shimSource(const cir::Kernel &K) {
  std::ostringstream OS;
  OS << "\n__attribute__((visibility(\"default\"))) void "
     << "lgen_native_entry(float *const *lgen_args) {\n  " << K.getName()
     << "(";
  bool First = true;
  unsigned Idx = 0;
  for (cir::ArrayId Id = 0; Id != K.getNumArrays(); ++Id) {
    const cir::ArrayInfo &A = K.getArray(Id);
    if (!A.isParam())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    if (A.Kind == cir::ArrayKind::Input)
      OS << "(const float *)lgen_args[" << Idx << "]";
    else
      OS << "lgen_args[" << Idx << "]";
    ++Idx;
  }
  OS << ");\n}\n";
  return OS.str();
}

/// Rounds \p Bytes up to a multiple of 64 (the allocation alignment).
size_t roundUp64(size_t Bytes) { return (Bytes + 63) & ~size_t(63); }

/// 64-byte-aligned allocation through the platform allocator; MSVC has no
/// std::aligned_alloc, so Windows gets the same gate as the rest of the
/// runtime (ToolchainDriver, SharedLibrary).
void *alignedAlloc(size_t Bytes) {
#if defined(_WIN32)
  return ::_aligned_malloc(Bytes, 64);
#else
  return std::aligned_alloc(64, Bytes);
#endif
}

void alignedFree(void *Mem) {
#if defined(_WIN32)
  ::_aligned_free(Mem);
#else
  std::free(Mem);
#endif
}

} // namespace

Expected<NativeKernel>
NativeKernel::load(const compiler::CompiledKernel &CK) {
  return load(CK, ToolchainDriver::host());
}

Expected<NativeKernel> NativeKernel::load(const compiler::CompiledKernel &CK,
                                          ToolchainDriver &TD) {
  isa::ISAKind ISA = CK.Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar
                                                : CK.Opts.ISA;
  if (!CpuInfo::host().supports(ISA))
    return Err("target ISA " + std::string(isa::isaName(ISA)) +
               " is not supported on this host (" + CpuInfo::host().str() +
               ")");

  NativeKernel NK;
  const cir::Kernel &Dispatch = dispatchKernel(CK);
  for (cir::ArrayId Id = 0; Id != Dispatch.getNumArrays(); ++Id) {
    const cir::ArrayInfo &A = Dispatch.getArray(Id);
    if (!A.isParam())
      continue;
    NativeParam P;
    P.Name = A.Name;
    P.NumElements = A.NumElements;
    P.Writable = A.Kind != cir::ArrayKind::Input;
    NK.Params.push_back(std::move(P));
  }
  NK.Nu = CK.Opts.effectiveNu();
  NK.Flops = CK.Flops;
  NK.Source = codegen::unparseCompiled(CK) + shimSource(Dispatch);

  Expected<std::string> So = TD.compileSharedObject(NK.Source, ISA);
  if (!So)
    return Err(So.error());
  Expected<SharedLibrary> Lib = SharedLibrary::open(*So);
  if (!Lib)
    return Err(Lib.error());
  NK.Library = std::move(*Lib);
  NK.Entry = reinterpret_cast<EntryFn>(
      NK.Library.symbol("lgen_native_entry"));
  if (!NK.Entry)
    return Err("shared object " + *So +
               " does not export lgen_native_entry");
  return NK;
}

Expected<std::shared_ptr<const NativeKernel>>
NativeKernel::acquire(compiler::KernelCache *Cache, uint64_t Key,
                      const compiler::CompiledKernel &CK) {
  if (Cache)
    if (std::shared_ptr<const void> Handle = Cache->lookupNative(Key))
      return std::static_pointer_cast<const NativeKernel>(Handle);
  Expected<NativeKernel> NK = load(CK);
  if (!NK)
    return Err(NK.error());
  auto Handle = std::make_shared<const NativeKernel>(std::move(*NK));
  if (Cache)
    Cache->storeNative(Key, Handle);
  return Handle;
}

void NativeKernel::execute(
    const std::vector<machine::Buffer *> &Params) const {
  static support::Metrics::Counter &ZeroCopyParams =
      support::Metrics::global().counter("runtime.native.zerocopy.params");
  static support::Metrics::Counter &CopiedParams =
      support::Metrics::global().counter("runtime.native.copied.params");
  ArgPack Args(*this, Params, Marshal::ZeroCopy);
  support::traceCounter("runtime.native.executions");
  ZeroCopyParams.add(Args.numDirect());
  CopiedParams.add(Params.size() - Args.numDirect());
  Entry(Args.argv());
  Args.copyBack();
}

//===----------------------------------------------------------------------===//
// ArgPack
//===----------------------------------------------------------------------===//

bool ArgPack::directEligible(const NativeParam &P, unsigned Nu,
                             const machine::Buffer &B) {
  // Only aligned-base buffers qualify: a versioned kernel resolves its
  // alignment dispatch from the pointer value, and a buffer advertising
  // AlignOffset k expects k elements of valid storage *before* the
  // pointer — headroom only the copy path provides.
  if (B.AlignOffset != 0)
    return false;
  uintptr_t Addr = reinterpret_cast<uintptr_t>(B.Data.data());
  if (Addr == 0 || Addr % sizeof(float) != 0)
    return false;
  // The storage must really be ν-aligned so the dispatch selects the
  // aligned version the buffer advertises.
  if ((Addr / sizeof(float)) % Nu != 0)
    return false;
  // ν elements of tail headroom: aligned full-vector stores to a partial
  // trailing tile must stay inside the caller's allocation (the copy path
  // gets this from its own tail pad). Scalar kernels touch exactly
  // NumElements.
  size_t Need = static_cast<size_t>(P.NumElements) + (Nu > 1 ? Nu : 0);
  return B.Data.size() >= Need;
}

ArgPack::ArgPack(const NativeKernel &NK,
                 const std::vector<machine::Buffer *> &Params, Marshal Mode)
    : NK(NK), Buffers(Params) {
  assert(Params.size() == NK.params().size() &&
         "parameter count mismatch (one buffer per LL operand)");
  Allocations.reserve(Params.size());
  Argv.reserve(Params.size());
  Direct.assign(Params.size(), false);
  for (size_t I = 0; I != Params.size(); ++I) {
    const NativeParam &P = NK.params()[I];
    if (Mode == Marshal::ZeroCopy &&
        directEligible(P, NK.nu(), *Params[I])) {
      Direct[I] = true;
      ++NumDirect;
      Argv.push_back(Params[I]->Data.data());
      continue;
    }
    unsigned Offset = Params[I]->AlignOffset;
    // Base allocation is 64-byte aligned; the parameter pointer sits Offset
    // elements past it, giving the same address-mod-ν the simulated Buffer
    // advertises (and the versioned dispatch checks at runtime). A ν-element
    // tail pad absorbs aligned full-vector accesses to partially-used
    // trailing tiles.
    size_t Elems = static_cast<size_t>(P.NumElements) + Offset + NK.nu();
    size_t Bytes = roundUp64(Elems * sizeof(float));
    void *Mem = alignedAlloc(Bytes);
    if (!Mem)
      reportFatalError("out of memory marshaling native kernel arguments");
    std::memset(Mem, 0, Bytes);
    Allocations.push_back(Mem);
    AllocBytes.push_back(Bytes);
    Argv.push_back(static_cast<float *>(Mem) + Offset);
  }
  reset();
}

ArgPack::~ArgPack() {
  for (void *Mem : Allocations)
    alignedFree(Mem);
}

void ArgPack::reset() {
  for (size_t I = 0; I != Buffers.size(); ++I) {
    if (Direct[I])
      continue; // the kernel works in the user's storage
    size_t N = std::min(Buffers[I]->Data.size(),
                        static_cast<size_t>(NK.params()[I].NumElements));
    std::memcpy(Argv[I], Buffers[I]->Data.data(), N * sizeof(float));
  }
}

void ArgPack::copyBack() {
  for (size_t I = 0; I != Buffers.size(); ++I) {
    if (Direct[I])
      continue; // results are already in place
    size_t N = std::min(Buffers[I]->Data.size(),
                        static_cast<size_t>(NK.params()[I].NumElements));
    std::memcpy(Buffers[I]->Data.data(), Argv[I], N * sizeof(float));
  }
}

size_t ArgPack::footprintBytes() const {
  size_t Total = 0;
  for (size_t I = 0; I != Buffers.size(); ++I)
    Total += static_cast<size_t>(NK.params()[I].NumElements) * sizeof(float);
  return Total;
}

//===- Measure.h - Native cycle measurement protocol -----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measuring loaded kernels the way the thesis measures on real boards
/// (§5.1.5): a few warm-up invocations, k timed repetitions, and the median
/// as the reported value. Warm-cache measurements auto-scale an inner
/// repetition loop until one sample spans enough counter ticks to be
/// meaningful; cold-cache measurements evict the parameter working set
/// between repetitions and time single invocations.
///
/// Cycle counts come from the best counter the host offers, probed once
/// per measuring thread in order: the perf_event hardware cycle counter
/// (often unavailable inside containers; opened per thread because a
/// pid=0 perf fd counts only its opener thread), the x86 time-stamp
/// counter, and finally the steady clock (nanoseconds standing in for
/// cycles). The chosen source is named in every result so reports never
/// silently mix units.
///
/// Measurements are serialized process-wide: the autotuner may *compile*
/// candidate plans in parallel, but timed runs take a global lock so they
/// never contend with each other for the core.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_MEASURE_H
#define LGEN_RUNTIME_MEASURE_H

#include "mediator/Mediator.h"
#include "runtime/NativeKernel.h"
#include "runtime/PerfCounters.h"

#include <string>
#include <vector>

namespace lgen {
namespace runtime {

struct MeasureOptions {
  /// Untimed invocations before sampling (warms caches, branch predictors,
  /// and the lazily-bound PLT entry of the shim).
  unsigned Warmup = 2;
  /// Timed repetitions; the median is the reported value (§5.1.5).
  unsigned Reps = 7;
  /// Evict the parameter working set between repetitions and time single
  /// invocations (the §5.1.4 cold-cache variant); default measures warm.
  bool ColdCache = false;
  /// Warm-cache only: the inner repetition count doubles until one sample
  /// spans at least this many counter ticks.
  uint64_t MinSampleTicks = 10000;
};

struct MeasureResult {
  /// Median ticks per single kernel invocation, in \c Unit units.
  double MedianCycles = 0.0;
  double MinCycles = 0.0;
  double MaxCycles = 0.0;
  /// Invocations per timed sample (1 for cold-cache runs).
  unsigned InnerIters = 1;
  /// Per-repetition ticks-per-invocation, in measurement order.
  std::vector<double> Samples;
  /// Which counter produced the numbers: "perf_event", "rdtsc", or
  /// "steady_clock_ns".
  std::string Counter;
  /// What the numbers count: "cycles" for perf_event/rdtsc, "ns" for the
  /// steady-clock fallback. Reports must carry this through instead of
  /// labeling everything "cycles".
  std::string Unit = "cycles";
  /// Per-invocation hardware counter readings (instructions, cache misses,
  /// ...) from a separate instrumented pass after the timed repetitions —
  /// counting never perturbs the timed samples. Empty when the host grants
  /// no perf_event access; an unsupported event is absent, never zero.
  std::vector<HwCounterReading> HwCounters;
};

/// Runs the §5.1.5 protocol over \p NK with \p Params (the
/// CompiledKernel::execute buffer contract). On return \p Params holds the
/// result of exactly one kernel invocation over the original inputs, so a
/// measured run is also a valid execution.
MeasureResult measure(const NativeKernel &NK,
                      const std::vector<machine::Buffer *> &Params,
                      const MeasureOptions &Opts = MeasureOptions());

/// The cycle counter measure() would use on the calling thread (probed
/// once per thread).
const char *cycleCounterName();

/// The unit of that counter's ticks: "cycles" (perf_event, rdtsc) or "ns"
/// (steady-clock fallback).
const char *cycleCounterUnit();

/// A Mediator device executor backed by real native measurement, making
/// Mediator's measure endpoint return host cycles instead of model
/// estimates. The experiment object names the BLAC and configuration:
///
///   { "source": "<LL program>",          (required)
///     "target": "atom|a8|a9|arm1176|sandybridge",  (default "atom")
///     "config": "LGen|LGen-Align|LGen-MVM|LGen-Full", (default "LGen-Full")
///     "searchSamples": N,                (default 0)
///     "reps": k, "warmup": w }           (default the MeasureOptions ones)
///
/// The result object carries {supported:true, cycles, flops,
/// flopsPerCycle, counter} — or {supported:false, reason} when the host
/// lacks the ISA or a toolchain, which is a clean skip, not an error.
/// Malformed experiments (missing/unparsable source) throw, which Mediator
/// reports as an InstructionExecutionError.
mediator::DeviceExecutor nativeDeviceExecutor();

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_MEASURE_H

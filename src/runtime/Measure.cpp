//===- Measure.cpp - Native cycle measurement protocol --------------------===//

#include "runtime/Measure.h"

#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "runtime/CpuInfo.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace lgen;
using namespace lgen::runtime;

//===----------------------------------------------------------------------===//
// Cycle counters
//===----------------------------------------------------------------------===//

namespace {

class CycleCounter {
public:
  virtual ~CycleCounter() = default;
  virtual uint64_t read() = 0;
  virtual const char *name() const = 0;
  /// What a tick is: "cycles" unless the counter is a wall clock.
  virtual const char *unit() const { return "cycles"; }
};

class SteadyCounter : public CycleCounter {
public:
  uint64_t read() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  const char *name() const override { return "steady_clock_ns"; }
  const char *unit() const override { return "ns"; }
};

#if defined(__x86_64__)
class TscCounter : public CycleCounter {
public:
  uint64_t read() override {
    uint32_t Lo, Hi;
    __asm__ volatile("rdtsc" : "=a"(Lo), "=d"(Hi));
    return (static_cast<uint64_t>(Hi) << 32) | Lo;
  }
  const char *name() const override { return "rdtsc"; }
};
#endif

#if defined(__linux__)
/// The hardware cycle counter through perf_event_open. Construction probes
/// whether the kernel grants access (containers and locked-down hosts
/// commonly deny it); a failed probe leaves ok() false and the chain falls
/// through to the next counter.
class PerfCounter : public CycleCounter {
public:
  PerfCounter() {
    struct perf_event_attr Attr;
    std::memset(&Attr, 0, sizeof(Attr));
    Attr.type = PERF_TYPE_HARDWARE;
    Attr.size = sizeof(Attr);
    Attr.config = PERF_COUNT_HW_CPU_CYCLES;
    Attr.disabled = 0;
    Attr.exclude_kernel = 1;
    Attr.exclude_hv = 1;
    Fd = static_cast<int>(
        ::syscall(SYS_perf_event_open, &Attr, 0, -1, -1, 0));
    if (Fd >= 0) {
      // A counter that opens but cannot be read (or reads zero forever,
      // as some paravirtualized PMUs do) is useless; verify one read.
      uint64_t Probe = 0;
      if (::read(Fd, &Probe, sizeof(Probe)) != sizeof(Probe)) {
        ::close(Fd);
        Fd = -1;
      }
    }
  }
  ~PerfCounter() override {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool ok() const { return Fd >= 0; }
  uint64_t read() override {
    uint64_t Value = 0;
    if (::read(Fd, &Value, sizeof(Value)) != sizeof(Value))
      return 0;
    return Value;
  }
  const char *name() const override { return "perf_event"; }

private:
  int Fd = -1;
};
#endif

/// Probes the counter chain per thread: perf_event -> rdtsc -> steady_clock.
/// perf_event fds opened with pid=0 count only the thread that opened them,
/// and measure() runs on whichever thread calls it (the autotuner's pool
/// workers, Mediator's device-executor workers, the main thread) — a
/// process-global counter opened on one thread would read as frozen from
/// every other, so each measuring thread opens its own.
CycleCounter &hostCounter() {
  thread_local std::unique_ptr<CycleCounter> Counter = [] {
    std::unique_ptr<CycleCounter> C;
#if defined(__linux__)
    auto Perf = std::make_unique<PerfCounter>();
    if (Perf->ok())
      C = std::move(Perf);
#endif
#if defined(__x86_64__)
    if (!C)
      C = std::make_unique<TscCounter>();
#endif
    if (!C)
      C = std::make_unique<SteadyCounter>();
    return C;
  }();
  return *Counter;
}

/// Timed runs never overlap, even when callers (the autotuner's pool
/// workers) issue them from several threads.
std::mutex &measureMutex() {
  static std::mutex M;
  return M;
}

/// Pushes the marshaled parameter data out of the cache hierarchy for the
/// cold-cache variant: clflush on x86, a large streaming write elsewhere.
/// Flushes each backing allocation in full — base through padded size —
/// because the kernel also touches the ν-element tail pad and the
/// versioned dispatch reads near the aligned base, not just the
/// NumElements window behind the parameter pointer.
void evictWorkingSet(const ArgPack &Args) {
#if defined(__x86_64__)
  for (size_t I = 0; I != Args.numAllocations(); ++I) {
    const char *P = static_cast<const char *>(Args.allocationBase(I));
    size_t Bytes = Args.allocationBytes(I);
    for (size_t Off = 0; Off < Bytes; Off += 64)
      __asm__ volatile("clflush (%0)" ::"r"(P + Off) : "memory");
  }
  __asm__ volatile("mfence" ::: "memory");
#else
  (void)Args;
  static std::vector<char> Evictor(16 * 1024 * 1024);
  for (size_t I = 0; I < Evictor.size(); I += 64)
    Evictor[I] = static_cast<char>(I);
#endif
}

double median(std::vector<double> Samples) {
  std::sort(Samples.begin(), Samples.end());
  size_t N = Samples.size();
  return N % 2 ? Samples[N / 2]
               : (Samples[N / 2 - 1] + Samples[N / 2]) / 2.0;
}

} // namespace

const char *runtime::cycleCounterName() { return hostCounter().name(); }

const char *runtime::cycleCounterUnit() { return hostCounter().unit(); }

//===----------------------------------------------------------------------===//
// measure
//===----------------------------------------------------------------------===//

MeasureResult runtime::measure(const NativeKernel &NK,
                               const std::vector<machine::Buffer *> &Params,
                               const MeasureOptions &Opts) {
  std::lock_guard<std::mutex> Lock(measureMutex());
  support::TraceSpan Span("runtime.measure");

  ArgPack Args(NK, Params);
  CycleCounter &Counter = hostCounter();
  NativeKernel::EntryFn Entry = NK.entry();

  MeasureResult Result;
  Result.Counter = Counter.name();
  Result.Unit = Counter.unit();

  for (unsigned I = 0; I != Opts.Warmup; ++I)
    Entry(Args.argv());

  unsigned Inner = 1;
  if (!Opts.ColdCache) {
    // Double the inner repetition count until one sample spans enough
    // ticks that counter granularity and read overhead are noise.
    for (;;) {
      uint64_t T0 = Counter.read();
      for (unsigned I = 0; I != Inner; ++I)
        Entry(Args.argv());
      uint64_t Elapsed = Counter.read() - T0;
      if (Elapsed >= Opts.MinSampleTicks || Inner >= (1u << 20))
        break;
      Inner *= 2;
    }
  }
  Result.InnerIters = Inner;

  unsigned Reps = std::max(1u, Opts.Reps);
  Result.Samples.reserve(Reps);
  for (unsigned R = 0; R != Reps; ++R) {
    Args.reset();
    if (Opts.ColdCache)
      evictWorkingSet(Args);
    uint64_t T0 = Counter.read();
    for (unsigned I = 0; I != Inner; ++I)
      Entry(Args.argv());
    uint64_t Elapsed = Counter.read() - T0;
    Result.Samples.push_back(static_cast<double>(Elapsed) / Inner);
  }
  support::traceCounter("runtime.measure.samples", Reps);

  Result.MedianCycles = median(Result.Samples);
  Result.MinCycles =
      *std::min_element(Result.Samples.begin(), Result.Samples.end());
  Result.MaxCycles =
      *std::max_element(Result.Samples.begin(), Result.Samples.end());

  // Hardware counters come from one separate instrumented pass *after* the
  // timed repetitions: enabling the group costs ioctls per event, which
  // must never land inside a timed window. Thread-affine for the same
  // reason as the cycle counter — the fds count only their opener.
  PerfCounterGroup &Group = PerfCounterGroup::forThread();
  if (Group.any()) {
    Args.reset();
    if (Opts.ColdCache)
      evictWorkingSet(Args);
    Group.start();
    for (unsigned I = 0; I != Inner; ++I)
      Entry(Args.argv());
    Group.stop();
    for (HwCounterReading R : Group.read()) {
      R.Value /= Inner;
      Result.HwCounters.push_back(std::move(R));
    }
  }
  if (!Result.HwCounters.empty())
    support::traceCounter("runtime.measure.hwcounters",
                          Result.HwCounters.size());

  // Leave the caller's buffers holding the result of exactly one
  // invocation over the original inputs.
  Args.reset();
  Entry(Args.argv());
  Args.copyBack();
  return Result;
}

//===----------------------------------------------------------------------===//
// Mediator device executor
//===----------------------------------------------------------------------===//

namespace {

machine::UArch uarchFromName(const std::string &Name) {
  if (Name == "atom" || Name.empty())
    return machine::UArch::Atom;
  if (Name == "a8")
    return machine::UArch::CortexA8;
  if (Name == "a9")
    return machine::UArch::CortexA9;
  if (Name == "arm1176")
    return machine::UArch::ARM1176;
  if (Name == "sandybridge")
    return machine::UArch::SandyBridge;
  throw std::runtime_error("unknown target '" + Name + "'");
}

json::Value unsupported(const std::string &Reason) {
  json::Object R;
  R["supported"] = false;
  R["reason"] = Reason;
  return json::Value(std::move(R));
}

} // namespace

mediator::DeviceExecutor runtime::nativeDeviceExecutor() {
  return [](const json::Value &Exp, unsigned /*Core*/) -> json::Value {
    std::string Source = Exp.getString("source");
    if (Source.empty())
      throw std::runtime_error("experiment has no 'source' property");

    machine::UArch Target = uarchFromName(Exp.getString("target"));
    std::string Config = Exp.getString("config", "LGen-Full");
    Expected<compiler::Options> Opts = compiler::Options::named(Config, Target);
    if (!Opts)
      throw std::runtime_error(Opts.error());
    Opts->SearchSamples =
        static_cast<unsigned>(Exp.getNumber("searchSamples", 0));

    compiler::Compiler C(*Opts);
    Expected<compiler::CompiledKernel> CK = C.compile(Source);
    if (!CK)
      throw std::runtime_error(CK.error());

    if (!ToolchainDriver::host().available())
      return unsupported(ToolchainDriver::host().error());
    Expected<NativeKernel> NK = NativeKernel::load(*CK);
    if (!NK) {
      isa::ISAKind ISA = CK->Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar
                                                     : CK->Opts.ISA;
      if (!CpuInfo::host().supports(ISA))
        return unsupported(NK.error()); // missing ISA: clean skip
      throw std::runtime_error(NK.error());
    }

    ll::Program P = ll::parseProgramOrDie(Source);
    std::vector<machine::Buffer> Storage;
    std::vector<machine::Buffer *> Buffers;
    Storage.reserve(P.Operands.size());
    Rng R(0x5eed);
    for (const ll::Operand &O : P.Operands) {
      Storage.emplace_back(O.numElements(), 0.0f, 0);
      for (float &V : Storage.back().Data)
        V = static_cast<float>(R.next() % 1000) / 250.0f - 2.0f;
    }
    for (machine::Buffer &B : Storage)
      Buffers.push_back(&B);

    MeasureOptions MO;
    MO.Reps = static_cast<unsigned>(Exp.getNumber("reps", MO.Reps));
    MO.Warmup = static_cast<unsigned>(Exp.getNumber("warmup", MO.Warmup));
    MeasureResult M = measure(*NK, Buffers, MO);

    json::Object Res;
    Res["supported"] = true;
    Res["cycles"] = M.MedianCycles;
    Res["minCycles"] = M.MinCycles;
    Res["maxCycles"] = M.MaxCycles;
    Res["flops"] = CK->Flops;
    Res["flopsPerCycle"] =
        M.MedianCycles > 0 ? CK->Flops / M.MedianCycles : 0.0;
    Res["counter"] = M.Counter;
    Res["unit"] = M.Unit;
    Res["innerIters"] = static_cast<int64_t>(M.InnerIters);
    if (!M.HwCounters.empty()) {
      json::Object Counters;
      for (const HwCounterReading &R : M.HwCounters)
        Counters[R.Name] = R.Value;
      Res["counters"] = std::move(Counters);
    }
    return json::Value(std::move(Res));
  };
}

//===- PerfReport.h - Per-kernel performance reports -----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Combines the two sides of kernel performance into one report, the way
/// Chapter 5's plots do: a *static* side counted from the C-IR (how many
/// floating-point operations, vector vs. scalar, how many bytes move) and
/// a *measured* side from measure() (cycles plus the hardware counters of
/// PerfCounters.h). The headline number is achieved flops/cycle against
/// the target's ν-peak — the y-axis of every thesis plot.
///
/// Two FLOP notions appear and must not be confused:
///
///  * *useful* flops — the mathematical operation count of the BLAC
///    (ll::flopCount, stored as CompiledKernel::Flops). This is the
///    numerator of achieved f/c, as in the thesis.
///  * *executed* flops — what the generated code actually issues, counted
///    from the C-IR with loop trip-count weighting. Padding lanes,
///    horizontal reductions, and dot-product microcode make this larger;
///    the gap is the vectorization overhead.
///
/// The memory- vs. compute-bound verdict is a deliberately simple
/// documented heuristic (DESIGN.md "Perf reports"): utilization ≥ 50% of
/// peak ⇒ compute-bound; otherwise operational intensity below 1 flop/byte
/// ⇒ memory-bound, else compute-bound (under-utilized). It is a triage
/// label, not a roofline analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_PERFREPORT_H
#define LGEN_RUNTIME_PERFREPORT_H

#include "runtime/Measure.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lgen {

namespace cir {
class Kernel;
} // namespace cir
namespace compiler {
class CompiledKernel;
} // namespace compiler

namespace runtime {

/// Trip-count-weighted operation counts of one C-IR kernel: what one
/// invocation executes, statically. (cir::computeStats counts syntactic
/// instructions; this multiplies through the loop nest.)
struct StaticOpCounts {
  /// Flops issued by multi-lane arithmetic (each lane counts, including
  /// padding lanes — this is *executed*, not useful, work).
  uint64_t VectorFlops = 0;
  /// Flops issued by scalar (1-lane) arithmetic.
  uint64_t ScalarFlops = 0;
  /// Multi-lane / scalar arithmetic instructions executed.
  uint64_t VectorArithInsts = 0;
  uint64_t ScalarArithInsts = 0;
  /// Data-movement instructions executed (shuffles, broadcasts, lane
  /// inserts/extracts, half extraction/combination).
  uint64_t ShuffleInsts = 0;
  /// Memory instructions executed and bytes they actively touch
  /// (active lanes × sizeof(float); masked-out lanes don't count).
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t LoadedBytes = 0;
  uint64_t StoredBytes = 0;

  uint64_t totalFlops() const { return VectorFlops + ScalarFlops; }
  uint64_t totalBytes() const { return LoadedBytes + StoredBytes; }
};

/// Counts what one invocation of \p K executes. Walks the loop tree
/// multiplying by trip counts — forEachInst would count a loop body once
/// regardless of its trip count.
StaticOpCounts countOps(const cir::Kernel &K);

/// One kernel's static + measured performance picture.
struct PerfReport {
  std::string KernelName;
  std::string Target;
  StaticOpCounts Static;
  /// The BLAC's mathematical operation count (CompiledKernel::Flops).
  double UsefulFlops = 0.0;
  /// Useful flops per byte moved, from the static counts.
  double OperationalIntensity = 0.0;

  /// Median ticks per invocation and what produced/denominates them.
  double MedianTicks = 0.0;
  std::string Counter;
  std::string Unit;
  std::vector<HwCounterReading> HwCounters;

  /// UsefulFlops / MedianTicks — only meaningful (non-zero) when Unit is
  /// "cycles"; a steady-clock fallback measures ns, and f/ns is not f/c.
  double AchievedFlopsPerCycle = 0.0;
  /// ν-peak of the target microarchitecture (Tables 2.2–2.5).
  double PeakFlopsPerCycle = 0.0;

  /// "compute-bound", "memory-bound", "compute-bound (under-utilized)",
  /// or "unclassified (no cycle counter)".
  std::string Boundedness;

  /// Multi-line human-readable report for --profile output.
  std::string str() const;
};

/// Builds the report for \p CK from measurement \p M. Static counts come
/// from the all-aligned code version (the version a zero-offset invocation
/// dispatches to).
PerfReport makeReport(const compiler::CompiledKernel &CK,
                      const MeasureResult &M);

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_PERFREPORT_H

//===- ToolchainDriver.cpp - Host C toolchain driver ----------------------===//

#include "runtime/ToolchainDriver.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if !defined(_WIN32)
#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace lgen;
using namespace lgen::runtime;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Scratch directory
//===----------------------------------------------------------------------===//

namespace {

/// Owns the per-process scratch directory; the destructor of the
/// function-local static removes it on normal exit. A stale directory left
/// by a crashed process that happened to have the same pid is reclaimed
/// (pids are unique among live processes, so it cannot belong to a running
/// instance).
struct ScratchDirHolder {
  std::string Path;
  std::string Error;

  ScratchDirHolder() {
    const char *Tmp = std::getenv("TMPDIR");
    fs::path Base = Tmp && *Tmp ? fs::path(Tmp) : fs::temp_directory_path();
#if defined(_WIN32)
    unsigned long Pid = 0;
#else
    unsigned long Pid = static_cast<unsigned long>(::getpid());
#endif
    fs::path Dir = Base / ("lgen-runtime-" + std::to_string(Pid));
    std::error_code EC;
    fs::remove_all(Dir, EC); // reclaim a stale same-pid leftover
    if (!fs::create_directories(Dir, EC) && EC) {
      Error = "cannot create runtime scratch directory " + Dir.string() +
              ": " + EC.message();
      return;
    }
    Path = Dir.string();
  }

  ~ScratchDirHolder() {
    if (Path.empty())
      return;
    std::error_code EC;
    fs::remove_all(Path, EC); // best effort; never throw during teardown
  }
};

ScratchDirHolder &scratchHolder() {
  static ScratchDirHolder Holder;
  return Holder;
}

constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t fnv1a(const std::string &S, uint64_t H = FnvOffsetBasis) {
  for (unsigned char C : S) {
    H ^= C;
    H *= FnvPrime;
  }
  return H;
}

std::string hexKey(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}

/// Shell-quotes \p S with single quotes (POSIX-safe for any content).
std::string shellQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += "'";
  return Out;
}

std::string readFileOr(const std::string &Path, const std::string &Fallback) {
  std::ifstream In(Path);
  if (!In)
    return Fallback;
  std::ostringstream OS;
  OS << In.rdbuf();
  std::string Text = OS.str();
  return Text.empty() ? Fallback : Text;
}

/// Searches $PATH for an executable named \p Name.
std::string findOnPath(const std::string &Name) {
#if defined(_WIN32)
  return "";
#else
  if (Name.find('/') != std::string::npos)
    return ::access(Name.c_str(), X_OK) == 0 ? Name : "";
  const char *PathEnv = std::getenv("PATH");
  if (!PathEnv)
    return "";
  std::string Paths = PathEnv;
  size_t Pos = 0;
  while (Pos <= Paths.size()) {
    size_t Colon = Paths.find(':', Pos);
    std::string Dir = Paths.substr(
        Pos, Colon == std::string::npos ? std::string::npos : Colon - Pos);
    if (!Dir.empty()) {
      std::string Candidate = Dir + "/" + Name;
      if (::access(Candidate.c_str(), X_OK) == 0)
        return Candidate;
    }
    if (Colon == std::string::npos)
      break;
    Pos = Colon + 1;
  }
  return "";
#endif
}

} // namespace

Expected<std::string> runtime::scratchDir() {
  ScratchDirHolder &H = scratchHolder();
  if (H.Path.empty())
    return Err(H.Error.empty() ? "runtime scratch directory unavailable"
                               : H.Error);
  return H.Path;
}

//===----------------------------------------------------------------------===//
// SharedLibrary
//===----------------------------------------------------------------------===//

SharedLibrary::~SharedLibrary() {
#if !defined(_WIN32)
  if (Handle)
    ::dlclose(Handle);
#endif
}

SharedLibrary::SharedLibrary(SharedLibrary &&Other) noexcept
    : Handle(Other.Handle), Path(std::move(Other.Path)) {
  Other.Handle = nullptr;
}

SharedLibrary &SharedLibrary::operator=(SharedLibrary &&Other) noexcept {
  if (this != &Other) {
#if !defined(_WIN32)
    if (Handle)
      ::dlclose(Handle);
#endif
    Handle = Other.Handle;
    Path = std::move(Other.Path);
    Other.Handle = nullptr;
  }
  return *this;
}

Expected<SharedLibrary> SharedLibrary::open(const std::string &Path) {
#if defined(_WIN32)
  return Err("native kernel loading is not supported on this platform");
#else
  support::TraceSpan Span("runtime.dlopen");
  void *Handle = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Reason = ::dlerror();
    return Err("dlopen(" + Path + ") failed: " +
               (Reason ? Reason : "unknown error"));
  }
  SharedLibrary Lib;
  Lib.Handle = Handle;
  Lib.Path = Path;
  return Lib;
#endif
}

void *SharedLibrary::symbol(const char *Name) const {
#if defined(_WIN32)
  (void)Name;
  return nullptr;
#else
  return Handle ? ::dlsym(Handle, Name) : nullptr;
#endif
}

//===----------------------------------------------------------------------===//
// ToolchainDriver
//===----------------------------------------------------------------------===//

ToolchainDriver::ToolchainDriver(std::string CompilerPath) {
  if (!CompilerPath.empty()) {
    Compiler = std::move(CompilerPath);
    return;
  }
  std::vector<std::string> Candidates;
  if (const char *Env = std::getenv("LGEN_CC"))
    if (*Env)
      Candidates.push_back(Env);
  Candidates.insert(Candidates.end(), {"cc", "gcc", "clang"});
  for (const std::string &Name : Candidates) {
    std::string Found = findOnPath(Name);
    if (!Found.empty()) {
      Compiler = Found;
      return;
    }
  }
  DiscoveryError = "no C compiler found (tried $LGEN_CC, cc, gcc, clang on "
                   "$PATH); native execution is unavailable";
}

std::string ToolchainDriver::isaFlags(isa::ISAKind ISA) {
  switch (ISA) {
  case isa::ISAKind::Scalar:
    return "";
  case isa::ISAKind::SSSE3:
    return "-mssse3";
  case isa::ISAKind::SSE41:
    return "-msse4.1";
  case isa::ISAKind::AVX:
    return "-mavx";
  case isa::ISAKind::NEON:
#if defined(__aarch64__)
    return ""; // Advanced SIMD is in the AArch64 baseline.
#else
    return "-mfpu=neon";
#endif
  }
  LGEN_UNREACHABLE("unknown ISA kind");
}

Expected<std::string>
ToolchainDriver::compileSharedObject(const std::string &CSource,
                                     isa::ISAKind ISA) {
#if defined(_WIN32)
  (void)CSource;
  (void)ISA;
  return Err("native kernel compilation is not supported on this platform");
#else
  if (!available())
    return Err(DiscoveryError);

  Expected<std::string> Scratch = scratchDir();
  if (!Scratch)
    return Err(Scratch.error());

  // -ffp-contract=off keeps scalar a*b+c sequences double-rounded, matching
  // the functional interpreter's unfused FMA semantics, so native results
  // stay within the documented ULP model of the simulated ones.
  std::string Flags = "-O2 -fPIC -shared -ffp-contract=off";
  std::string Isa = isaFlags(ISA);
  if (!Isa.empty())
    Flags += " " + Isa;

  uint64_t Key = fnv1a(Flags, fnv1a(CSource));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = SoCache.find(Key);
    if (It != SoCache.end()) {
      support::traceCounter("runtime.socache.hit");
      support::metricCounter("runtime.socache.hit").add();
      return It->second;
    }
  }
  support::traceCounter("runtime.socache.miss");
  support::metricCounter("runtime.socache.miss").add();

  std::string Stem = *Scratch + "/k" + hexKey(Key);
  std::string SoPath = Stem + ".so";
  std::error_code EC;
  if (fs::exists(SoPath, EC)) {
    // Another thread (or an earlier driver instance in this process)
    // already published it; adopt without recompiling.
    std::lock_guard<std::mutex> Lock(Mutex);
    SoCache.emplace(Key, SoPath);
    return SoPath;
  }

  // Unique inputs/outputs per attempt so concurrent compilations of the
  // same kernel never collide; the finished .so is published atomically.
  std::string Tag;
  {
    static std::atomic<uint64_t> Counter{0};
    Tag = "." + std::to_string(Counter.fetch_add(1));
  }
  std::string CPath = Stem + Tag + ".c";
  std::string TmpSo = Stem + Tag + ".so.tmp";
  std::string LogPath = Stem + Tag + ".log";
  {
    std::ofstream Out(CPath, std::ios::trunc);
    if (!Out)
      return Err("cannot write kernel source to " + CPath);
    Out << CSource;
  }

  std::string Cmd = shellQuote(Compiler) + " " + Flags + " -x c " +
                    shellQuote(CPath) + " -o " + shellQuote(TmpSo) + " 2> " +
                    shellQuote(LogPath);
  int Rc;
  {
    support::TraceSpan Span("runtime.toolchain.compile");
    support::traceCounter("runtime.toolchain.invocations");
    support::metricCounter("runtime.toolchain.invocations").add();
    Rc = std::system(Cmd.c_str());
  }
  bool Ok = Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
  if (!Ok || !fs::exists(TmpSo, EC)) {
    std::string Diag = readFileOr(LogPath, "(no diagnostics captured)");
    fs::remove(CPath, EC);
    fs::remove(TmpSo, EC);
    fs::remove(LogPath, EC);
    support::traceCounter("runtime.toolchain.failures");
    support::metricCounter("runtime.toolchain.failures").add();
    return Err("toolchain failure: '" + Compiler + "' " +
               (Ok ? "reported success but produced no output"
                   : "exited with status " +
                         std::to_string(Rc == -1 || !WIFEXITED(Rc)
                                            ? Rc
                                            : WEXITSTATUS(Rc))) +
               " for " + CPath + ":\n" + Diag);
  }

  // Crash-safe publish (the KernelCache pattern): the complete .so appears
  // under its final name in one atomic rename.
  fs::rename(TmpSo, SoPath, EC);
  if (EC)
    return Err("cannot publish " + SoPath + ": " + EC.message());
  fs::remove(LogPath, EC);

  std::lock_guard<std::mutex> Lock(Mutex);
  SoCache.emplace(Key, SoPath);
  return SoPath;
#endif
}

ToolchainDriver &ToolchainDriver::host() {
  static ToolchainDriver Driver;
  return Driver;
}

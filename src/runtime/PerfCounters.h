//===- PerfCounters.h - Hardware performance-counter groups ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware event counting for measured kernels, on top of Linux
/// perf_event_open: instructions retired, L1d read misses, last-level
/// cache misses, branch misses, and task-clock. Together with the cycle
/// counter in Measure.cpp these are the inputs to \c runtime::PerfReport.
///
/// Each event is opened as its own fd (not a kernel counter group): the
/// PMU on any given host exposes an arbitrary subset of these events, and
/// a grouped open is all-or-nothing. An event that cannot be opened — or
/// opens but fails a probe read, as paravirtualized PMUs do — is simply
/// *absent* from every reading, never reported as zero.
///
/// When more events are requested than the PMU has counters, the kernel
/// time-multiplexes them. Every fd is opened with
/// PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING and readings are scaled by
/// enabled/running, the standard estimate for the full-window count; the
/// achieved ratio is reported alongside so callers can judge the
/// extrapolation.
///
/// Groups are thread-affine, like the cycle counter (PR 4 discipline): a
/// perf fd opened with pid=0 counts only the thread that opened it, and
/// measure() runs on autotuner pool workers and Mediator device threads,
/// so each measuring thread probes and owns its own group via
/// \c forThread().
///
/// On non-Linux builds (and Linux hosts with perf_event_paranoid locked
/// down) the group opens no events: any() is false and readings are
/// empty, which callers must treat as "no counter data", not zeros.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_PERFCOUNTERS_H
#define LGEN_RUNTIME_PERFCOUNTERS_H

#include <string>
#include <vector>

namespace lgen {
namespace runtime {

/// One scaled counter reading from a start()/stop() window.
struct HwCounterReading {
  /// Event name: "instructions", "l1d-read-misses", "llc-misses",
  /// "branch-misses", "task-clock-ns".
  std::string Name;
  /// Count over the window, scaled by Enabled/Running when the kernel
  /// multiplexed the event ("task-clock-ns" is nanoseconds, not a count).
  double Value = 0.0;
  /// Fraction of the window the event was actually counting (1.0 = never
  /// multiplexed out). Values well below 1 mean Value is an extrapolation.
  double RunningRatio = 1.0;
};

class PerfCounterGroup {
public:
  /// Probes and opens every supported event for the calling thread.
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup &) = delete;
  PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

  /// True when at least one event opened.
  bool any() const { return !Events.empty(); }
  /// Names of the events that opened, in reading order.
  std::vector<std::string> names() const;

  /// Resets and enables every event. Must be called (and the subsequent
  /// read()) from the owning thread.
  void start();
  /// Disables every event, freezing the counts for read().
  void stop();
  /// Scaled counts for the last start()/stop() window. Events whose read
  /// failed or that never ran during the window are omitted.
  std::vector<HwCounterReading> read() const;

  /// The group owned by the calling thread, probed on first use.
  static PerfCounterGroup &forThread();

private:
  struct Event {
    std::string Name;
    int Fd = -1;
  };
  std::vector<Event> Events;
};

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_PERFCOUNTERS_H

//===- ToolchainDriver.h - Host C toolchain driver -------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiling emitted kernels on the host: discovers a C compiler
/// ($LGEN_CC, then cc/gcc/clang on $PATH), turns a generated C translation
/// unit into a shared object inside the per-process scratch directory, and
/// loads it with dlopen behind a RAII handle.
///
/// Artifact hygiene (see DESIGN.md "Runtime scratch artifacts"): every
/// .c/.so/.log this subsystem writes lives under one per-process unique
/// directory beneath $TMPDIR, created lazily and removed on normal process
/// exit. Shared objects are cached by an FNV-1a fingerprint of
/// (source, compile flags) and published with the same write-to-temp +
/// atomic-rename pattern the KernelCache uses, so concurrent compilations
/// of the same kernel — and concurrent lgen processes, which each own a
/// distinct scratch directory — never observe half-written files.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_TOOLCHAINDRIVER_H
#define LGEN_RUNTIME_TOOLCHAINDRIVER_H

#include "isa/ISA.h"
#include "support/Expected.h"

#include <mutex>
#include <string>
#include <unordered_map>

namespace lgen {
namespace runtime {

/// The per-process scratch directory for runtime artifacts:
/// $TMPDIR/lgen-runtime-<pid>. Created on first use, removed (recursively)
/// on normal exit. The error state reports an unwritable $TMPDIR.
Expected<std::string> scratchDir();

/// A dlopen'ed shared object with RAII unloading. Move-only; the handle is
/// closed when the last owner goes away.
class SharedLibrary {
public:
  SharedLibrary() = default;
  ~SharedLibrary();
  SharedLibrary(SharedLibrary &&Other) noexcept;
  SharedLibrary &operator=(SharedLibrary &&Other) noexcept;
  SharedLibrary(const SharedLibrary &) = delete;
  SharedLibrary &operator=(const SharedLibrary &) = delete;

  /// dlopen(\p Path, RTLD_NOW | RTLD_LOCAL); the error state carries the
  /// dlerror() text.
  static Expected<SharedLibrary> open(const std::string &Path);

  /// dlsym, or null when the symbol is absent.
  void *symbol(const char *Name) const;

  bool loaded() const { return Handle != nullptr; }
  const std::string &path() const { return Path; }

private:
  void *Handle = nullptr;
  std::string Path;
};

/// Discovers and drives the host C compiler. All methods are thread-safe;
/// the autotuner's parallel plan compilation shares one instance.
class ToolchainDriver {
public:
  /// Uses \p CompilerPath verbatim (tests point this at fake or broken
  /// compilers); empty discovers one.
  explicit ToolchainDriver(std::string CompilerPath = "");

  /// True when a compiler was found; error() explains a failed discovery.
  bool available() const { return !Compiler.empty(); }
  const std::string &error() const { return DiscoveryError; }
  const std::string &compilerPath() const { return Compiler; }

  /// Compiles \p CSource into a shared object for \p ISA and returns its
  /// path inside the scratch directory. Results are cached by an FNV-1a
  /// fingerprint of (source, flags): recompiling the same kernel is a file
  /// reuse, counted under the runtime.socache.hit trace counter. On
  /// toolchain failure the error carries the compiler's diagnostics.
  Expected<std::string> compileSharedObject(const std::string &CSource,
                                            isa::ISAKind ISA);

  /// The -m feature flags \p ISA needs (empty for scalar, or on targets
  /// where the baseline already includes it).
  static std::string isaFlags(isa::ISAKind ISA);

  /// The process-wide driver instance (discovered once, shared .so cache).
  static ToolchainDriver &host();

private:
  std::string Compiler;
  std::string DiscoveryError;

  std::mutex Mutex;
  std::unordered_map<uint64_t, std::string> SoCache; // fingerprint -> path
};

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_TOOLCHAINDRIVER_H

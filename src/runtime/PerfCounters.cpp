//===- PerfCounters.cpp - Hardware performance-counter groups -------------===//

#include "runtime/PerfCounters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

using namespace lgen;
using namespace lgen::runtime;

#if defined(__linux__)

namespace {

/// The events a group tries to open, in reporting order. L1d misses need
/// the HW_CACHE config encoding (cache-id | op << 8 | result << 16).
struct EventSpec {
  const char *Name;
  uint32_t Type;
  uint64_t Config;
};

const EventSpec Specs[] = {
    {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {"l1d-read-misses", PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {"llc-misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {"branch-misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {"task-clock-ns", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

/// read() layout with PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING on a single
/// (ungrouped) fd.
struct ReadFormat {
  uint64_t Value;
  uint64_t Enabled;
  uint64_t Running;
};

int openEvent(const EventSpec &S) {
  struct perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = S.Type;
  Attr.size = sizeof(Attr);
  Attr.config = S.Config;
  Attr.disabled = 1;
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  Attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  int Fd =
      static_cast<int>(::syscall(SYS_perf_event_open, &Attr, 0, -1, -1, 0));
  if (Fd < 0)
    return -1;
  // Same probe discipline as the cycle counter: an event that opens but
  // cannot be read is dropped here, not discovered mid-measurement.
  ReadFormat Probe;
  if (::read(Fd, &Probe, sizeof(Probe)) != sizeof(Probe)) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

PerfCounterGroup::PerfCounterGroup() {
  for (const EventSpec &S : Specs) {
    int Fd = openEvent(S);
    if (Fd >= 0)
      Events.push_back({S.Name, Fd});
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (Event &E : Events)
    ::close(E.Fd);
}

void PerfCounterGroup::start() {
  for (Event &E : Events) {
    ::ioctl(E.Fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(E.Fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounterGroup::stop() {
  for (Event &E : Events)
    ::ioctl(E.Fd, PERF_EVENT_IOC_DISABLE, 0);
}

std::vector<HwCounterReading> PerfCounterGroup::read() const {
  std::vector<HwCounterReading> Out;
  Out.reserve(Events.size());
  for (const Event &E : Events) {
    ReadFormat R;
    if (::read(E.Fd, &R, sizeof(R)) != sizeof(R))
      continue; // absent, never zero
    if (R.Running == 0)
      continue; // multiplexed out for the whole window: no estimate
    HwCounterReading Reading;
    Reading.Name = E.Name;
    Reading.RunningRatio =
        R.Enabled ? static_cast<double>(R.Running) / R.Enabled : 1.0;
    Reading.Value = static_cast<double>(R.Value) *
                    (static_cast<double>(R.Enabled) / R.Running);
    Out.push_back(std::move(Reading));
  }
  return Out;
}

#else // !__linux__

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::start() {}
void PerfCounterGroup::stop() {}
std::vector<HwCounterReading> PerfCounterGroup::read() const { return {}; }

#endif

std::vector<std::string> PerfCounterGroup::names() const {
  std::vector<std::string> N;
  N.reserve(Events.size());
  for (const Event &E : Events)
    N.push_back(E.Name);
  return N;
}

PerfCounterGroup &PerfCounterGroup::forThread() {
  thread_local PerfCounterGroup G;
  return G;
}

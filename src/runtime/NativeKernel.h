//===- NativeKernel.h - Compile-and-load kernel execution ------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executing emitted kernels on the host for real: a \c NativeKernel takes
/// a \c CompiledKernel, unparses it to C (including the §3.2.4 alignment
/// dispatch for versioned kernels), appends an exported shim entry point,
/// compiles the translation unit into a shared object through
/// \c ToolchainDriver, and dlopens it. Execution marshals arguments exactly
/// like \c CompiledKernel::execute over the simulated interpreter: one
/// buffer per LL operand in declaration order, with each parameter pointer
/// placed \c AlignOffset elements past a ν-aligned base so misaligned-base
/// experiments (§5.2.4) and the runtime alignment dispatch behave as on
/// real silicon.
///
/// Loading fails — with an \c Expected error, never a crash — when the
/// host CPU lacks the target ISA (\c CpuInfo), the toolchain is missing or
/// rejects the kernel, or the produced object cannot be loaded.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_NATIVEKERNEL_H
#define LGEN_RUNTIME_NATIVEKERNEL_H

#include "compiler/Compiler.h"
#include "machine/Executor.h"
#include "runtime/ToolchainDriver.h"

#include <memory>
#include <string>
#include <vector>

namespace lgen {
namespace compiler {
class KernelCache;
} // namespace compiler
namespace runtime {

/// One kernel parameter as seen by the native entry point.
struct NativeParam {
  std::string Name;
  int64_t NumElements = 0;
  bool Writable = false; ///< Output or InOut (float*), else const float*.
};

class NativeKernel {
public:
  /// The exported shim signature: one float* per parameter, in declaration
  /// order, packed into an argv-style array.
  using EntryFn = void (*)(float *const *);

  /// Unparses, compiles, and loads \p CK. \p TD defaults to the shared
  /// host driver (which caches shared objects by kernel fingerprint).
  static Expected<NativeKernel> load(const compiler::CompiledKernel &CK);
  static Expected<NativeKernel> load(const compiler::CompiledKernel &CK,
                                     ToolchainDriver &TD);

  /// The warm-dispatch path: returns \p Key's pre-resolved handle from
  /// \p Cache (the .so already dlopen'd, lgen_native_entry already
  /// resolved — no toolchain, no dlsym), or loads \p CK and registers the
  /// handle for the next dispatch. \p Cache may be null (always loads).
  /// The returned shared_ptr keeps the .so mapped even if the cache entry
  /// is evicted mid-execution.
  static Expected<std::shared_ptr<const NativeKernel>>
  acquire(compiler::KernelCache *Cache, uint64_t Key,
          const compiler::CompiledKernel &CK);

  /// Runs the kernel over \p Params (one buffer per LL operand, in
  /// declaration order — the \c CompiledKernel::execute contract).
  /// Buffers whose storage already satisfies the kernel's selected
  /// alignment version are passed to the entry point directly (zero-copy);
  /// the rest are copied into freshly allocated storage whose base honors
  /// the buffer's AlignOffset, and copied back after the run.
  void execute(const std::vector<machine::Buffer *> &Params) const;

  const std::vector<NativeParam> &params() const { return Params; }
  EntryFn entry() const { return Entry; }
  unsigned nu() const { return Nu; }
  double flops() const { return Flops; }
  const std::string &soPath() const { return Library.path(); }

  /// The generated C translation unit (kernel + shim) — what the toolchain
  /// actually compiled; exposed for diagnostics and tests.
  const std::string &source() const { return Source; }

private:
  SharedLibrary Library;
  EntryFn Entry = nullptr;
  std::vector<NativeParam> Params;
  unsigned Nu = 1;
  double Flops = 0.0;
  std::string Source;
};

/// Marshaling policy for ArgPack. Copy always stages parameters in owned
/// allocations (the measurement loop needs that: reset() must restore
/// pristine inputs between reps, and the cold-cache evictor needs owned
/// allocations to flush). ZeroCopy passes a buffer's own storage when it
/// already satisfies the selected alignment version — see
/// ArgPack::directEligible for the exact rules.
enum class Marshal { Copy, ZeroCopy };

/// Argument pack for repeated native invocations (the measurement loop)
/// and for the dispatch fast path: marshals a parameter set once, hands
/// out the argv array, and copies results back on request. Allocation
/// bases are 64-byte aligned, so an element offset of 0 is aligned for
/// every ν and an offset of k places the pointer exactly k*sizeof(float)
/// past a ν-aligned boundary. Under Marshal::ZeroCopy, eligible buffers
/// skip the allocation entirely and reset()/copyBack() leave them alone —
/// the kernel already wrote through the user's storage.
class ArgPack {
public:
  ArgPack(const NativeKernel &NK,
          const std::vector<machine::Buffer *> &Params,
          Marshal Mode = Marshal::Copy);
  ~ArgPack();
  ArgPack(const ArgPack &) = delete;
  ArgPack &operator=(const ArgPack &) = delete;

  float *const *argv() const { return Argv.data(); }

  /// True when \p B's own storage can be handed to the kernel directly:
  /// the buffer advertises an aligned base (AlignOffset 0), its storage
  /// really is ν-aligned (so the runtime alignment dispatch selects the
  /// aligned version it advertises), and it carries ν elements of tail
  /// headroom so the kernel's aligned full-vector stores to a partial
  /// trailing tile stay inside the allocation. Misaligned-base buffers
  /// are never eligible: versioned kernels may round down to the aligned
  /// base, and only the copy path allocates headroom before the pointer.
  static bool directEligible(const NativeParam &P, unsigned Nu,
                             const machine::Buffer &B);

  /// Parameters passed through without a staging copy.
  size_t numDirect() const { return NumDirect; }

  /// Re-copies the original buffer contents into the marshaled storage
  /// (repeated measurement over identical inputs). Direct parameters are
  /// untouched — the kernel reads and writes the user's storage.
  void reset();
  /// Copies every staged parameter back into the buffers given at
  /// construction; direct parameters already hold the results.
  void copyBack();

  /// Total bytes of marshaled parameter data (cold-cache eviction sizing).
  size_t footprintBytes() const;

  /// The backing allocations themselves (base pointer and full padded
  /// size). The cold-cache evictor must flush entire allocations — the
  /// kernel's aligned full-vector accesses touch the ν-element tail pad,
  /// and the versioned dispatch reads near the aligned base — not just the
  /// NumElements window behind each parameter pointer.
  size_t numAllocations() const { return Allocations.size(); }
  const void *allocationBase(size_t I) const { return Allocations[I]; }
  size_t allocationBytes(size_t I) const { return AllocBytes[I]; }

private:
  const NativeKernel &NK;
  std::vector<machine::Buffer *> Buffers;
  std::vector<void *> Allocations;
  std::vector<size_t> AllocBytes;
  std::vector<float *> Argv;
  std::vector<bool> Direct; // per parameter: true = zero-copy pass-through
  size_t NumDirect = 0;
};

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_NATIVEKERNEL_H

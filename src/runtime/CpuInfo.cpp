//===- CpuInfo.cpp - Host CPU feature detection ---------------------------===//

#include "runtime/CpuInfo.h"

#include <sstream>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif
#if defined(__arm__) && defined(__linux__)
#include <sys/auxv.h>
// HWCAP_NEON lives in <asm/hwcap.h>; define the bit directly so the probe
// compiles against older libcs too.
#ifndef HWCAP_NEON
#define HWCAP_NEON (1 << 12)
#endif
#endif

using namespace lgen;
using namespace lgen::runtime;

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XCR0 via xgetbv: the OS must have enabled xmm+ymm state saving (bits 1
/// and 2) for AVX instructions to be executable, independent of the cpuid
/// feature bit.
uint64_t readXcr0() {
  uint32_t Eax, Edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" // xgetbv
                   : "=a"(Eax), "=d"(Edx)
                   : "c"(0));
  return (static_cast<uint64_t>(Edx) << 32) | Eax;
}

CpuInfo detect() {
  CpuInfo Info;
  unsigned Eax, Ebx, Ecx, Edx;
  if (!__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx))
    return Info;
  Info.HasSSSE3 = Ecx & bit_SSSE3;
  Info.HasSSE41 = Ecx & bit_SSE4_1;
  bool OsXsave = Ecx & bit_OSXSAVE;
  bool AvxBit = Ecx & bit_AVX;
  if (AvxBit && OsXsave)
    Info.HasAVX = (readXcr0() & 0x6) == 0x6;
  return Info;
}

#elif defined(__aarch64__)

CpuInfo detect() {
  CpuInfo Info;
  Info.HasNEON = true; // Advanced SIMD is mandatory in AArch64.
  return Info;
}

#elif defined(__arm__) && defined(__linux__)

CpuInfo detect() {
  CpuInfo Info;
  Info.HasNEON = getauxval(AT_HWCAP) & HWCAP_NEON;
  return Info;
}

#else

CpuInfo detect() { return CpuInfo(); }

#endif

} // namespace

bool CpuInfo::supports(isa::ISAKind Kind) const {
  switch (Kind) {
  case isa::ISAKind::Scalar:
    return true;
  case isa::ISAKind::SSSE3:
    return HasSSSE3;
  case isa::ISAKind::SSE41:
    return HasSSE41;
  case isa::ISAKind::AVX:
    return HasAVX;
  case isa::ISAKind::NEON:
    return HasNEON;
  }
  LGEN_UNREACHABLE("unknown ISA kind");
}

std::string CpuInfo::str() const {
  std::ostringstream OS;
#if defined(__x86_64__)
  OS << "x86-64:";
#elif defined(__i386__)
  OS << "x86:";
#elif defined(__aarch64__)
  OS << "aarch64:";
#elif defined(__arm__)
  OS << "arm:";
#else
  OS << "unknown-arch:";
#endif
  if (HasSSSE3)
    OS << " ssse3";
  if (HasSSE41)
    OS << " sse4.1";
  if (HasAVX)
    OS << " avx";
  if (HasNEON)
    OS << " neon";
  if (!HasSSSE3 && !HasSSE41 && !HasAVX && !HasNEON)
    OS << " scalar-only";
  return OS.str();
}

const CpuInfo &CpuInfo::host() {
  static const CpuInfo Info = detect();
  return Info;
}

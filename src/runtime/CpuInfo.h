//===- CpuInfo.h - Host CPU feature detection ------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detection of the SIMD extensions the *host* machine can actually
/// execute. The compiler targets fixed virtual ISAs (SSSE3, SSE4.1, AVX,
/// NEON, scalar); the native execution runtime must know which of those the
/// current processor supports before it compiles and loads a kernel, so
/// that targets the host lacks degrade to an explicit "unsupported" result
/// rather than a SIGILL.
///
/// On x86-64 the answer comes from cpuid (including the OSXSAVE/XCR0 check
/// AVX requires); on AArch64 Advanced SIMD is architecturally mandatory; on
/// 32-bit ARM Linux it comes from the ELF hwcaps. Everywhere else every
/// vector ISA reports unsupported and only scalar kernels run.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_RUNTIME_CPUINFO_H
#define LGEN_RUNTIME_CPUINFO_H

#include "isa/ISA.h"

#include <string>

namespace lgen {
namespace runtime {

/// Host-processor capability summary, computed once per process.
struct CpuInfo {
  bool HasSSSE3 = false;
  bool HasSSE41 = false;
  bool HasAVX = false;  ///< cpuid AVX bit *and* OS ymm-state support.
  bool HasNEON = false; ///< Advanced SIMD (mandatory on AArch64).

  /// True when kernels emitted for \p Kind can execute on this host.
  /// Scalar is always runnable.
  bool supports(isa::ISAKind Kind) const;

  /// Human-readable feature list, e.g. "x86-64: ssse3 sse4.1 avx".
  std::string str() const;

  /// The detected capabilities of the machine this process runs on.
  static const CpuInfo &host();
};

} // namespace runtime
} // namespace lgen

#endif // LGEN_RUNTIME_CPUINFO_H

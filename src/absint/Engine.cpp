//===- Engine.cpp - Fixpoint engine over C-IR loop nests -------*- C++ -*-===//

#include "absint/Engine.h"

using namespace lgen;
using namespace lgen::absint;
using cir::AffineExpr;
using cir::Kernel;
using cir::LoopId;
using cir::Node;

AbsVal Environment::evaluate(const AffineExpr &E, const AbsVal &Base) const {
  AbsVal Result = Base.add(AbsVal::constant(E.getConstant()));
  for (const auto &[Id, Coeff] : E.getTerms())
    Result = Result.add(get(Id).mul(AbsVal::constant(Coeff)));
  return Result;
}

AbsVal absint::analyzeLoopIndex(int64_t Start, int64_t End, int64_t Step) {
  assert(Step > 0 && "loops step forward");
  if (Start >= End)
    return AbsVal::bottom(); // The body never executes.

  // Guard of the (implicit) assume statement on the true branch: i < End.
  const AbsVal Guard(Interval::make(Bound::NegInf, End - 1), Congruence::top());
  const AbsVal StepVal = AbsVal::constant(Step);

  AbsVal Env = AbsVal::constant(Start).reduce();
  // Widening threshold: generous enough that short loops converge exactly
  // without it, small enough that long loops finish instantly. Precision is
  // restored by the guard meet plus the reduction (the congruence component
  // tightens the widened bound back to the last reachable index).
  constexpr int WideningThreshold = 64;
  for (int Iter = 0;; ++Iter) {
    AbsVal Next = Env.join(Env.add(StepVal).meet(Guard));
    if (Iter >= WideningThreshold)
      Next = Next.widen(Env).meet(Guard).reduce();
    if (Next == Env)
      return Env;
    Env = Next;
  }
}

namespace {

void analyzeBody(const std::vector<Node> &Body, Environment &Env) {
  for (const Node &N : Body) {
    if (!N.isLoop())
      continue;
    const cir::Loop &L = N.loop();
    Env.bind(L.Id, analyzeLoopIndex(L.Start, L.End, L.Step));
    analyzeBody(L.Body, Env);
  }
}

} // namespace

Environment absint::analyzeKernel(const Kernel &K) {
  Environment Env;
  analyzeBody(K.getBody(), Env);
  return Env;
}

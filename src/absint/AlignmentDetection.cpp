//===- AlignmentDetection.cpp - Aligned-access detection (§3.2) ----------===//

#include "absint/AlignmentDetection.h"

using namespace lgen;
using namespace lgen::absint;
using namespace lgen::cir;

AlignmentAssumption AlignmentAssumption::allAligned(const Kernel &K) {
  AlignmentAssumption A;
  for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id)
    if (K.getArray(Id).isParam())
      A.BaseOffsets[Id] = 0;
  return A;
}

namespace {

/// True for accesses whose lowering differs between aligned and unaligned
/// forms: full-width contiguous vector loads/stores.
bool isAlignmentSensitive(const Kernel &K, const Inst &I) {
  switch (I.Op) {
  case Opcode::Load:
    return K.lanesOf(I.Dest) > 1;
  case Opcode::Store:
    return K.lanesOf(I.A) > 1;
  case Opcode::GLoad:
  case Opcode::GStore:
    // Partial or strided maps lower to lane accesses regardless of
    // alignment; only the full contiguous form can use an aligned move.
    return I.Map.isFullContiguous() && I.Map.numLanes() > 1;
  default:
    return false;
  }
}

/// Abstract value of the base address of \p Id under \p Assumption, in
/// elements modulo ν.
AbsVal baseAbstractValue(const Kernel &K, ArrayId Id, unsigned Nu,
                         const AlignmentAssumption &Assumption) {
  const ArrayInfo &A = K.getArray(Id);
  if (!A.isParam()) {
    // Local temporaries are always allocated on an aligned boundary.
    return AbsVal(Interval::top(), Congruence::make(0, Nu));
  }
  auto It = Assumption.BaseOffsets.find(Id);
  if (It == Assumption.BaseOffsets.end())
    return AbsVal::top();
  return AbsVal(Interval::top(), Congruence::make(It->second, Nu));
}

} // namespace

unsigned absint::detectAlignment(Kernel &K, unsigned Nu,
                                 const AlignmentAssumption &Assumption) {
  assert(Nu >= 1 && "vector length must be positive");
  Environment Env = analyzeKernel(K);
  unsigned NumAligned = 0;
  K.forEachInst([&](Inst &I) {
    if (!isMemoryOpcode(I.Op))
      return;
    if (!isAlignmentSensitive(K, I)) {
      I.Aligned = false;
      return;
    }
    AbsVal Base = baseAbstractValue(K, I.Address.Array, Nu, Assumption);
    AbsVal AddrVal = Env.evaluate(I.Address.Offset, Base);
    // Criterion of §3.2.2: the congruence component of the address must be
    // ⊑ 0 + νZ. A bottom value means the access is unreachable; marking it
    // aligned is vacuously sound.
    bool IsAligned =
        AddrVal.isBottom() || AddrVal.congruence().isMultipleOf(Nu);
    I.Aligned = IsAligned;
    if (IsAligned)
      ++NumAligned;
  });
  return NumAligned;
}

unsigned absint::countAlignmentSensitiveAccesses(const Kernel &K) {
  unsigned N = 0;
  K.forEachInst([&](const Inst &I) {
    if (isAlignmentSensitive(K, I))
      ++N;
  });
  return N;
}

const Kernel &
VersionedKernel::select(const std::map<ArrayId, int64_t> &Offsets) const {
  for (unsigned V = 0; V != Versions.size(); ++V) {
    bool Match = true;
    for (unsigned J = 0; J != VersionedArrays.size(); ++J) {
      auto It = Offsets.find(VersionedArrays[J]);
      int64_t Actual = It == Offsets.end() ? 0 : floorMod(It->second, Nu);
      if (Actual != Combos[V][J]) {
        Match = false;
        break;
      }
    }
    if (Match)
      return Versions[V];
  }
  return Fallback;
}

VersionedKernel absint::makeAlignmentVersions(const Kernel &K, unsigned Nu,
                                              unsigned MaxCombos) {
  VersionedKernel VK;
  VK.Nu = Nu;

  // Arrays participating in versioning: multi-element parameters.
  for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id) {
    const ArrayInfo &A = K.getArray(Id);
    if (A.isParam() && A.NumElements > 1)
      VK.VersionedArrays.push_back(Id);
  }
  // Keep the combination count within budget, dropping trailing arrays
  // (they fall back to "arbitrary alignment" in every version).
  uint64_t NumCombos = 1;
  unsigned Kept = 0;
  for (; Kept != VK.VersionedArrays.size(); ++Kept) {
    if (NumCombos * Nu > MaxCombos)
      break;
    NumCombos *= Nu;
  }
  VK.VersionedArrays.resize(Kept);

  // Fallback: no assumptions at all.
  VK.Fallback = K.clone();
  detectAlignment(VK.Fallback, Nu, AlignmentAssumption());

  // One version per offset combination.
  std::vector<int64_t> Combo(Kept, 0);
  for (uint64_t C = 0; C != NumCombos; ++C) {
    uint64_t Rest = C;
    AlignmentAssumption Assumption;
    for (unsigned J = 0; J != Kept; ++J) {
      Combo[J] = Rest % Nu;
      Rest /= Nu;
      Assumption.BaseOffsets[VK.VersionedArrays[J]] = Combo[J];
    }
    Kernel Version = K.clone();
    detectAlignment(Version, Nu, Assumption);
    VK.Combos.push_back(Combo);
    VK.Versions.push_back(std::move(Version));
  }
  return VK;
}

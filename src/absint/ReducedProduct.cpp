//===- ReducedProduct.cpp - Reduced product Interval × Congruence --------===//

#include "absint/ReducedProduct.h"

#include "support/Support.h"

#include <sstream>

using namespace lgen;
using namespace lgen::absint;

int64_t absint::roundUpToClass(const Congruence &Con, int64_t A) {
  assert(!Con.isBottom() && "R undefined on bottom");
  int64_t M = Con.modulus();
  if (M == 0)
    return Con.remainder();
  return A + floorMod(Con.remainder() - A, M);
}

int64_t absint::roundDownToClass(const Congruence &Con, int64_t A) {
  assert(!Con.isBottom() && "L undefined on bottom");
  int64_t M = Con.modulus();
  if (M == 0)
    return Con.remainder();
  return A - floorMod(A - Con.remainder(), M);
}

AbsVal AbsVal::reduce() const {
  // Case analysis follows the reduction function of thesis §2.3.4,
  // evaluated top-down.
  if (I.isBottom() || C.isBottom())
    return bottom();

  // con = c + 0Z (a constant congruence class).
  if (C.isConstant()) {
    int64_t V = C.remainder();
    if (!I.contains(V))
      return bottom();
    return AbsVal(Interval::constant(V), C);
  }

  bool FiniteLo = I.hasFiniteLower();
  bool FiniteHi = I.hasFiniteUpper();

  if (FiniteLo && FiniteHi) {
    int64_t R = roundUpToClass(C, I.lower());
    int64_t L = roundDownToClass(C, I.upper());
    if (R > L)
      return bottom();
    if (R == L)
      return AbsVal(Interval::constant(R), Congruence::constant(R));
    return AbsVal(Interval::make(R, L), C);
  }
  if (FiniteLo) {
    int64_t R = roundUpToClass(C, I.lower());
    return AbsVal(Interval::make(R, Bound::PosInf), C);
  }
  if (FiniteHi) {
    int64_t L = roundDownToClass(C, I.upper());
    return AbsVal(Interval::make(Bound::NegInf, L), C);
  }
  return *this;
}

std::string AbsVal::str() const {
  if (isBottom())
    return "(⊥I, ⊥C)";
  std::ostringstream OS;
  OS << "(" << I.str() << ", " << C.str() << ")";
  return OS.str();
}

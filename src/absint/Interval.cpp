//===- Interval.cpp - The Interval abstract domain -------------*- C++ -*-===//

#include "absint/Interval.h"

#include "support/Support.h"

#include <algorithm>
#include <sstream>

using namespace lgen;
using namespace lgen::absint;

namespace {

bool isInf(int64_t B) { return B == Bound::NegInf || B == Bound::PosInf; }

/// Saturating addition that treats the sentinels as infinities.
int64_t addBound(int64_t A, int64_t B) {
  if (A == Bound::NegInf || B == Bound::NegInf) {
    assert(A != Bound::PosInf && B != Bound::PosInf &&
           "adding opposite infinities");
    return Bound::NegInf;
  }
  if (A == Bound::PosInf || B == Bound::PosInf)
    return Bound::PosInf;
  // Finite values in LGen kernels are tiny; plain addition cannot overflow.
  return A + B;
}

/// Saturating multiplication with infinity semantics (0 * ±∞ = 0, matching
/// the interval-arithmetic convention that keeps mul an overapproximation).
int64_t mulBound(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  bool Negative = (A < 0) != (B < 0);
  if (isInf(A) || isInf(B))
    return Negative ? Bound::NegInf : Bound::PosInf;
  return A * B;
}

} // namespace

Interval Interval::make(int64_t Lo, int64_t Hi) {
  if (Lo > Hi)
    return bottom();
  Interval I;
  I.Bottom = false;
  I.Lo = Lo;
  I.Hi = Hi;
  return I;
}

bool Interval::leq(const Interval &Other) const {
  if (Bottom)
    return true;
  if (Other.Bottom)
    return false;
  return Lo >= Other.Lo && Hi <= Other.Hi;
}

Interval Interval::join(const Interval &Other) const {
  if (Bottom)
    return Other;
  if (Other.Bottom)
    return *this;
  return make(std::min(Lo, Other.Lo), std::max(Hi, Other.Hi));
}

Interval Interval::meet(const Interval &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  return make(std::max(Lo, Other.Lo), std::min(Hi, Other.Hi));
}

Interval Interval::add(const Interval &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  return make(addBound(Lo, Other.Lo), addBound(Hi, Other.Hi));
}

Interval Interval::mul(const Interval &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  int64_t Products[4] = {mulBound(Lo, Other.Lo), mulBound(Lo, Other.Hi),
                         mulBound(Hi, Other.Lo), mulBound(Hi, Other.Hi)};
  int64_t NewLo = *std::min_element(Products, Products + 4);
  int64_t NewHi = *std::max_element(Products, Products + 4);
  return make(NewLo, NewHi);
}

Interval Interval::widen(const Interval &Previous) const {
  if (Previous.Bottom)
    return *this;
  if (Bottom)
    return Previous;
  int64_t NewLo = Lo < Previous.Lo ? Bound::NegInf : Previous.Lo;
  int64_t NewHi = Hi > Previous.Hi ? Bound::PosInf : Previous.Hi;
  return make(NewLo, NewHi);
}

std::string Interval::str() const {
  if (Bottom)
    return "⊥I";
  std::ostringstream OS;
  OS << "[";
  if (Lo == Bound::NegInf)
    OS << "-inf";
  else
    OS << Lo;
  OS << ", ";
  if (Hi == Bound::PosInf)
    OS << "+inf";
  else
    OS << Hi;
  OS << "]";
  return OS.str();
}

//===- AlignmentDetection.h - Aligned-access detection (§3.2) --*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment detection (thesis §3.2): an abstract interpretation over the
/// reduced product of the Interval and Congruence domains decides, for each
/// vector memory access, whether the accessed address is provably a multiple
/// of the vector length ν (in elements, i.e. N/l in the thesis' byte-level
/// notation). Provably aligned accesses are marked so the lowering emits
/// aligned instructions.
///
/// Arbitrary argument alignment (§3.2.4) is handled by versioning: one copy
/// of the kernel per combination of parameter-array alignments (ν^a
/// combinations) plus one all-unaligned fallback, selected at runtime by
/// alignment checks (Listing 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ABSINT_ALIGNMENTDETECTION_H
#define LGEN_ABSINT_ALIGNMENTDETECTION_H

#include "absint/Engine.h"
#include "cir/CIR.h"

#include <map>
#include <vector>

namespace lgen {
namespace absint {

/// Assumed base alignment of each array, as the element offset of the base
/// address from the previous ν-aligned boundary (0 == aligned). Arrays not
/// present are treated as arbitrarily aligned. Kernel-local temporaries are
/// always allocated aligned and need no entry.
struct AlignmentAssumption {
  std::map<cir::ArrayId, int64_t> BaseOffsets;

  /// Every parameter array of \p K assumed aligned.
  static AlignmentAssumption allAligned(const cir::Kernel &K);
};

/// Runs the analysis on \p K and sets the \c Aligned flag of every access
/// whose address is provably ≡ 0 (mod \p Nu) under \p Assumption; clears it
/// otherwise. Returns the number of alignment-sensitive accesses that were
/// marked aligned.
unsigned detectAlignment(cir::Kernel &K, unsigned Nu,
                         const AlignmentAssumption &Assumption);

/// Counts alignment-sensitive accesses (full-width contiguous vector
/// loads/stores, generic or concrete) in \p K.
unsigned countAlignmentSensitiveAccesses(const cir::Kernel &K);

/// A kernel versioned by parameter alignment (§3.2.4, Listing 3.3).
struct VersionedKernel {
  unsigned Nu = 1;
  /// Parameter arrays that participate in versioning, in dispatch order.
  std::vector<cir::ArrayId> VersionedArrays;
  /// One version per combination; Combos[i] holds the required base offsets
  /// (same order as VersionedArrays) of Versions[i].
  std::vector<std::vector<int64_t>> Combos;
  std::vector<cir::Kernel> Versions;
  /// The all-unaligned fallback version.
  cir::Kernel Fallback;

  /// Total number of generated code versions ((ν)^a + 1 in the thesis).
  unsigned numVersions() const { return Versions.size() + 1; }

  /// Selects the version matching the concrete base offsets (element offset
  /// mod ν per array id); returns the fallback when no combination matches.
  const cir::Kernel &
  select(const std::map<cir::ArrayId, int64_t> &Offsets) const;
};

/// Builds the alignment-versioned form of \p K. Only parameter arrays with
/// more than one element participate (scalars are alignment-insensitive).
/// If the combination count ν^a would exceed \p MaxCombos, arrays are
/// dropped from versioning (treated as arbitrary) until it fits — the same
/// code-size pragmatics the thesis discusses in §5.2.4.
VersionedKernel makeAlignmentVersions(const cir::Kernel &K, unsigned Nu,
                                      unsigned MaxCombos = 1024);

} // namespace absint
} // namespace lgen

#endif // LGEN_ABSINT_ALIGNMENTDETECTION_H

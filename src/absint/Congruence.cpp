//===- Congruence.cpp - The Congruence abstract domain ---------*- C++ -*-===//

#include "absint/Congruence.h"

#include "support/Support.h"

#include <sstream>

using namespace lgen;
using namespace lgen::absint;

namespace {

/// Extended Euclid: returns g = gcd(A, B) and Bezout coefficients X, Y with
/// A*X + B*Y == g.
int64_t extGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = A >= 0 ? 1 : -1;
    Y = 0;
    return A >= 0 ? A : -A;
  }
  int64_t X1, Y1;
  int64_t G = extGcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

} // namespace

Congruence Congruence::make(int64_t C, int64_t M) {
  Congruence Result;
  Result.Bottom = false;
  if (M < 0)
    M = -M;
  Result.M = M;
  Result.C = M == 0 ? C : floorMod(C, M);
  return Result;
}

bool Congruence::leq(const Congruence &Other) const {
  if (Bottom)
    return true;
  if (Other.Bottom)
    return false;
  // m2 | c1 - c2 and m2 | m1. With m2 == 0 this degenerates to equality of
  // constants (0 divides only 0).
  int64_t Diff = C - Other.C;
  if (Other.M == 0)
    return Diff == 0 && M == 0;
  return Diff % Other.M == 0 && M % Other.M == 0;
}

Congruence Congruence::join(const Congruence &Other) const {
  if (Bottom)
    return Other;
  if (Other.Bottom)
    return *this;
  return make(C, gcd64(gcd64(M, Other.M), C - Other.C));
}

Congruence Congruence::meet(const Congruence &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  // Solve x ≡ C (mod M), x ≡ Other.C (mod Other.M) by CRT.
  if (M == 0)
    return Other.contains(C) ? *this : bottom();
  if (Other.M == 0)
    return contains(Other.C) ? Other : bottom();
  int64_t X, Y;
  int64_t G = extGcd(M, Other.M, X, Y);
  int64_t Diff = Other.C - C;
  if (Diff % G != 0)
    return bottom();
  int64_t L = lcm64(M, Other.M);
  // M*X + Other.M*Y == G, so M * (X * Diff/G) ≡ Diff (mod Other.M); adding
  // that multiple of M to C lands in both classes.
  int64_t Solution = floorMod(C + M * floorMod(X * (Diff / G), Other.M / G), L);
  assert(floorMod(Solution - C, M) == 0 &&
         floorMod(Solution - Other.C, Other.M) == 0 && "CRT solution invalid");
  return make(Solution, L);
}

Congruence Congruence::add(const Congruence &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  return make(C + Other.C, gcd64(M, Other.M));
}

Congruence Congruence::mul(const Congruence &Other) const {
  if (Bottom || Other.Bottom)
    return bottom();
  int64_t NewM = gcd64(gcd64(C * Other.M, M * Other.C), M * Other.M);
  return make(C * Other.C, NewM);
}

bool Congruence::contains(int64_t V) const {
  if (Bottom)
    return false;
  if (M == 0)
    return V == C;
  return floorMod(V - C, M) == 0;
}

std::string Congruence::str() const {
  if (Bottom)
    return "⊥C";
  std::ostringstream OS;
  OS << C << " + " << M << "Z";
  return OS.str();
}

//===- Congruence.h - The Congruence abstract domain -----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Congruence abstract domain of thesis §2.3.4 (Granger): a set of
/// integers is approximated by a congruence class c + mZ. m == 0 denotes
/// the singleton {c}; m == 1 denotes the top element. Classes are kept
/// normalized (0 ≤ c < m for m > 0). Operator definitions follow Table 2.8.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ABSINT_CONGRUENCE_H
#define LGEN_ABSINT_CONGRUENCE_H

#include <cstdint>
#include <string>

namespace lgen {
namespace absint {

class Congruence {
public:
  /// Constructs the bottom element.
  Congruence() = default;

  static Congruence bottom() { return Congruence(); }
  static Congruence top() { return make(0, 1); }
  static Congruence constant(int64_t C) { return make(C, 0); }
  /// The class c + mZ (normalized).
  static Congruence make(int64_t C, int64_t M);

  bool isBottom() const { return Bottom; }
  bool isTop() const { return !Bottom && M == 1; }
  bool isConstant() const { return !Bottom && M == 0; }

  int64_t remainder() const { return C; }
  int64_t modulus() const { return M; }

  /// Partial order ⊑C (Table 2.8): c1+m1Z ⊑ c2+m2Z ⟺ m2 | c1−c2 ∧ m2 | m1.
  bool leq(const Congruence &Other) const;
  /// ⊔C: c1 + gcd(m1, m2, c1−c2)Z.
  Congruence join(const Congruence &Other) const;
  /// ⊓C: bottom when gcd(m1,m2) ∤ c1−c2, else the CRT solution + lcm Z.
  Congruence meet(const Congruence &Other) const;
  /// +C: (c1+c2) + gcd(m1, m2)Z.
  Congruence add(const Congruence &Other) const;
  /// ∗C: c1c2 + gcd(c1m2, m1c2, m1m2)Z.
  Congruence mul(const Congruence &Other) const;

  bool contains(int64_t V) const;

  /// True if every member of this class is divisible by \p N — the
  /// alignment criterion of §3.2.2 (this ⊑ 0 + NZ).
  bool isMultipleOf(int64_t N) const {
    return leq(Congruence::make(0, N));
  }

  bool operator==(const Congruence &Other) const {
    if (Bottom || Other.Bottom)
      return Bottom == Other.Bottom;
    return C == Other.C && M == Other.M;
  }

  std::string str() const;

private:
  bool Bottom = true;
  int64_t C = 0;
  int64_t M = 0;
};

} // namespace absint
} // namespace lgen

#endif // LGEN_ABSINT_CONGRUENCE_H

//===- Interval.h - The Interval abstract domain ---------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Interval abstract domain of thesis §2.3.4 (Cousot & Cousot): a set of
/// integers is approximated by an interval [Lo, Hi] with bounds drawn from
/// Z ∪ {−∞, +∞}. Operator definitions follow Table 2.7.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ABSINT_INTERVAL_H
#define LGEN_ABSINT_INTERVAL_H

#include <cstdint>
#include <string>

namespace lgen {
namespace absint {

/// An integer bound that may be −∞ or +∞. Sentinel values of int64_t are
/// reserved for the infinities; all finite program quantities (loop bounds,
/// array offsets) are far below them.
struct Bound {
  static constexpr int64_t NegInf = INT64_MIN;
  static constexpr int64_t PosInf = INT64_MAX;
};

class Interval {
public:
  /// Constructs the bottom interval.
  Interval() = default;

  static Interval bottom() { return Interval(); }
  static Interval top() { return make(Bound::NegInf, Bound::PosInf); }
  static Interval constant(int64_t V) { return make(V, V); }
  /// [Lo, Hi]; returns bottom when Lo > Hi.
  static Interval make(int64_t Lo, int64_t Hi);

  bool isBottom() const { return Bottom; }
  bool isTop() const {
    return !Bottom && Lo == Bound::NegInf && Hi == Bound::PosInf;
  }
  bool isConstant() const { return !Bottom && Lo == Hi; }

  int64_t lower() const { return Lo; }
  int64_t upper() const { return Hi; }
  bool hasFiniteLower() const { return !Bottom && Lo != Bound::NegInf; }
  bool hasFiniteUpper() const { return !Bottom && Hi != Bound::PosInf; }

  /// Partial order ⊑ (Table 2.7): [a1,a2] ⊑ [b1,b2] ⟺ a1 ≥ b1 ∧ a2 ≤ b2.
  bool leq(const Interval &Other) const;
  /// Least upper bound ⊔.
  Interval join(const Interval &Other) const;
  /// Greatest lower bound ⊓.
  Interval meet(const Interval &Other) const;
  /// Abstract addition.
  Interval add(const Interval &Other) const;
  /// Abstract multiplication.
  Interval mul(const Interval &Other) const;
  /// Standard widening: unstable bounds jump to the infinities. Used by the
  /// fixpoint engine to guarantee fast termination on long-running loops;
  /// precision is recovered by meeting with the loop guard afterwards.
  Interval widen(const Interval &Previous) const;

  bool contains(int64_t V) const { return !Bottom && Lo <= V && V <= Hi; }

  bool operator==(const Interval &Other) const {
    if (Bottom || Other.Bottom)
      return Bottom == Other.Bottom;
    return Lo == Other.Lo && Hi == Other.Hi;
  }

  std::string str() const;

private:
  bool Bottom = true;
  int64_t Lo = 0;
  int64_t Hi = 0;
};

} // namespace absint
} // namespace lgen

#endif // LGEN_ABSINT_INTERVAL_H

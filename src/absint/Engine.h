//===- Engine.h - Fixpoint engine over C-IR loop nests ---------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpretation engine of thesis §3.2.2. LGen-generated code
/// has the shape of Listing 3.1: perfectly structured counted loops whose
/// indices are the only variables participating in address computations, so
/// the analysis tracks one abstract value per loop index and every memory
/// address is an affine expression evaluated in that environment.
///
/// For each loop `for (i = Start; i < End; i += Step)` the engine iterates
///
///   env⁰(i) = α(Start)
///   envᵏ⁺¹(i) = red( envᵏ(i) ⊔ ((envᵏ(i) + α(Step)) ⊓ [−∞, End−1]) )
///
/// to a fixpoint, exactly the statement/assume semantics spelled out in the
/// proof of Theorem 3.5, with interval widening kicking in after a bounded
/// number of iterations (the meet with the loop guard and the reduction
/// recover the precise bounds afterwards).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ABSINT_ENGINE_H
#define LGEN_ABSINT_ENGINE_H

#include "absint/ReducedProduct.h"
#include "cir/CIR.h"

#include <map>

namespace lgen {
namespace absint {

/// Abstract environment: one value per loop index in scope.
class Environment {
public:
  void bind(cir::LoopId Id, AbsVal V) { Values[Id] = V; }

  const AbsVal &get(cir::LoopId Id) const {
    auto It = Values.find(Id);
    assert(It != Values.end() && "loop index not in abstract environment");
    return It->second;
  }

  /// Evaluates an affine address expression in this environment, optionally
  /// adding the abstract value \p Base of the array base address.
  AbsVal evaluate(const cir::AffineExpr &E, const AbsVal &Base) const;

private:
  std::map<cir::LoopId, AbsVal> Values;
};

/// Computes the fixpoint abstract value of a single loop index.
AbsVal analyzeLoopIndex(int64_t Start, int64_t End, int64_t Step);

/// Computes the abstract environment covering every loop in \p K.
/// Since loop indices of LGen kernels never depend on each other, the
/// environment is the same at every program point inside a loop's body.
Environment analyzeKernel(const cir::Kernel &K);

} // namespace absint
} // namespace lgen

#endif // LGEN_ABSINT_ENGINE_H

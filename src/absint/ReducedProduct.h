//===- ReducedProduct.h - Reduced product Interval × Congruence -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reduced product of the Interval and Congruence domains (thesis
/// §2.3.3–2.3.4), the abstract domain used by the alignment detection of
/// §3.2. The reduction function lets the two components sharpen each other;
/// in particular it detects loops that are taken only once (Listing 3.2),
/// which is what makes the analysis complete on LGen-generated code
/// (Theorem 3.5).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_ABSINT_REDUCEDPRODUCT_H
#define LGEN_ABSINT_REDUCEDPRODUCT_H

#include "absint/Congruence.h"
#include "absint/Interval.h"

namespace lgen {
namespace absint {

/// R(c + mZ, a): the smallest n ≥ a with n ∈ c + mZ (thesis §2.3.4).
int64_t roundUpToClass(const Congruence &Con, int64_t A);
/// L(c + mZ, a): the greatest n ≤ a with n ∈ c + mZ.
int64_t roundDownToClass(const Congruence &Con, int64_t A);

/// An element of the reduced product domain. All operators apply pointwise
/// and then reduce.
class AbsVal {
public:
  AbsVal() = default;
  AbsVal(Interval I, Congruence C) : I(I), C(C) {}

  static AbsVal bottom() { return AbsVal(); }
  static AbsVal top() { return AbsVal(Interval::top(), Congruence::top()); }
  static AbsVal constant(int64_t V) {
    return AbsVal(Interval::constant(V), Congruence::constant(V));
  }

  const Interval &interval() const { return I; }
  const Congruence &congruence() const { return C; }

  bool isBottom() const { return I.isBottom() || C.isBottom(); }

  /// The reduction function red of §2.3.4: refines each component with
  /// information from the other without changing the concretization.
  AbsVal reduce() const;

  bool leq(const AbsVal &Other) const {
    return I.leq(Other.I) && C.leq(Other.C);
  }
  AbsVal join(const AbsVal &Other) const {
    return AbsVal(I.join(Other.I), C.join(Other.C)).reduce();
  }
  AbsVal meet(const AbsVal &Other) const {
    return AbsVal(I.meet(Other.I), C.meet(Other.C)).reduce();
  }
  AbsVal add(const AbsVal &Other) const {
    return AbsVal(I.add(Other.I), C.add(Other.C)).reduce();
  }
  AbsVal mul(const AbsVal &Other) const {
    return AbsVal(I.mul(Other.I), C.mul(Other.C)).reduce();
  }
  /// Widening applies to the Interval component only; the Congruence lattice
  /// has no infinite ascending chains on the moduli that arise here.
  AbsVal widen(const AbsVal &Previous) const {
    return AbsVal(I.widen(Previous.I), C);
  }

  bool contains(int64_t V) const { return I.contains(V) && C.contains(V); }

  bool operator==(const AbsVal &Other) const {
    if (isBottom() || Other.isBottom())
      return isBottom() == Other.isBottom();
    return I == Other.I && C == Other.C;
  }

  std::string str() const;

private:
  Interval I;
  Congruence C;
};

} // namespace absint
} // namespace lgen

#endif // LGEN_ABSINT_REDUCEDPRODUCT_H

//===- Trace.cpp - Structured pipeline tracing and diagnostics ------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Support.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

using namespace lgen;
using namespace lgen::support;

std::atomic<Trace *> Trace::ActiveTrace{nullptr};

namespace {

/// Per-thread stack of open span ids (for parent links) and the per-thread
/// mute depth. RAII usage keeps both strictly LIFO per thread.
thread_local std::vector<uint64_t> SpanStack;
thread_local unsigned MuteDepth = 0;

double steadyUs() {
  using namespace std::chrono;
  return duration<double, std::micro>(steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

Trace::Trace() : EpochUs(steadyUs()) {}

double Trace::nowUs() const { return steadyUs() - EpochUs; }

uint64_t Trace::threadIndexLocked() {
  uint64_t Tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  auto It = ThreadIndex.find(Tid);
  if (It != ThreadIndex.end())
    return It->second;
  uint64_t Idx = ThreadIndex.size();
  ThreadIndex.emplace(Tid, Idx);
  return Idx;
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

uint64_t Trace::beginSpan(const char *Name) {
  double Start = nowUs();
  std::lock_guard<std::mutex> Lock(Mutex);
  TraceSpanRecord R;
  R.Id = NextSpanId++;
  R.Parent = SpanStack.empty() ? 0 : SpanStack.back();
  R.Name = Name;
  R.Thread = threadIndexLocked();
  R.StartUs = Start;
  OpenSpanIndex[R.Id] = Spans.size();
  Spans.push_back(std::move(R));
  SpanStack.push_back(Spans.back().Id);
  return Spans.back().Id;
}

void Trace::endSpan(uint64_t Id) {
  double End = nowUs();
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = OpenSpanIndex.find(Id);
  if (It == OpenSpanIndex.end())
    return; // Already closed (or never opened on this trace): ignore.
  TraceSpanRecord &R = Spans[It->second];
  R.DurUs = End - R.StartUs;
  OpenSpanIndex.erase(It);
  // RAII guarantees LIFO per thread; tolerate out-of-order closes anyway.
  auto SIt = std::find(SpanStack.rbegin(), SpanStack.rend(), Id);
  if (SIt != SpanStack.rend())
    SpanStack.erase(std::next(SIt).base());
}

//===----------------------------------------------------------------------===//
// Counters, plan log, snapshots, mute
//===----------------------------------------------------------------------===//

bool Trace::muted() { return MuteDepth != 0; }

TraceMuteScope::TraceMuteScope() { ++MuteDepth; }
TraceMuteScope::~TraceMuteScope() { --MuteDepth; }

void Trace::addCounter(const char *Name, uint64_t Delta) {
  if (muted())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

void Trace::recordPlanSearch(std::vector<TracePlanEval> Evals) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (TracePlanEval &P : Evals)
    Plans.push_back(std::move(P));
}

void Trace::setSnapshotStages(std::string StageOrAll) {
  std::lock_guard<std::mutex> Lock(Mutex);
  SnapshotStages = std::move(StageOrAll);
}

bool Trace::wantsSnapshot(const char *Stage) const {
  if (muted())
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  return SnapshotStages == "all" || SnapshotStages == Stage;
}

void Trace::snapshot(const char *Stage, std::string Kernel, std::string Text) {
  if (muted())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Snapshots.push_back({Stage, std::move(Kernel), std::move(Text)});
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

std::vector<TraceSpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans;
}

std::map<std::string, uint64_t> Trace::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

uint64_t Trace::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

std::vector<TracePlanEval> Trace::planEvals() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Plans;
}

std::vector<TraceSnapshot> Trace::snapshots() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Snapshots;
}

size_t Trace::openSpans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return OpenSpanIndex.size();
}

//===----------------------------------------------------------------------===//
// JSON export / import
//===----------------------------------------------------------------------===//

json::Value Trace::toJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);

  json::Array SpanArr;
  for (const TraceSpanRecord &R : Spans)
    SpanArr.push_back(json::Object{{"id", static_cast<int64_t>(R.Id)},
                                   {"parent", static_cast<int64_t>(R.Parent)},
                                   {"name", R.Name},
                                   {"thread", static_cast<int64_t>(R.Thread)},
                                   {"start_us", R.StartUs},
                                   {"dur_us", R.DurUs}});

  json::Object CounterObj;
  for (const auto &[Name, V] : Counters)
    CounterObj[Name] = static_cast<int64_t>(V);

  json::Array PlanArr;
  for (const TracePlanEval &P : Plans)
    PlanArr.push_back(json::Object{{"index", static_cast<int64_t>(P.Index)},
                                   {"plan", P.Plan},
                                   {"cost", P.Cost},
                                   {"chosen", P.Chosen}});

  json::Array SnapArr;
  for (const TraceSnapshot &S : Snapshots)
    SnapArr.push_back(json::Object{
        {"stage", S.Stage}, {"kernel", S.Kernel}, {"text", S.Text}});

  return json::Object{{"version", 1},
                      {"spans", std::move(SpanArr)},
                      {"counters", std::move(CounterObj)},
                      {"plans", std::move(PlanArr)},
                      {"snapshots", std::move(SnapArr)}};
}

json::Value Trace::toChromeJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);

  json::Array Events;
  double EndUs = 0.0;
  for (const TraceSpanRecord &R : Spans) {
    // Chrome "X" (complete) events; still-open spans get zero duration
    // rather than being dropped, so a crash mid-pipeline stays visible.
    double Dur = R.DurUs >= 0 ? R.DurUs : 0.0;
    Events.push_back(json::Object{{"ph", "X"},
                                  {"name", R.Name},
                                  {"cat", "lgen"},
                                  {"pid", 1},
                                  {"tid", static_cast<int64_t>(R.Thread)},
                                  {"ts", R.StartUs},
                                  {"dur", Dur}});
    EndUs = std::max(EndUs, R.StartUs + Dur);
  }
  // Counters are cumulative totals, not a time series; one "C" sample at
  // the end of the timeline shows the final value per counter track.
  for (const auto &[Name, V] : Counters)
    Events.push_back(json::Object{
        {"ph", "C"},
        {"name", Name},
        {"cat", "lgen"},
        {"pid", 1},
        {"ts", EndUs},
        {"args", json::Object{{"value", static_cast<int64_t>(V)}}}});

  return json::Object{{"traceEvents", std::move(Events)},
                      {"displayTimeUnit", "ms"}};
}

bool Trace::fromJson(const json::Value &V, Trace &Out, std::string &Err) {
  if (!V.isObject()) {
    Err = "trace must be a JSON object";
    return false;
  }
  if (V.getNumber("version", 0) != 1) {
    Err = "unsupported trace version";
    return false;
  }
  const json::Value &SpanArr = V["spans"];
  const json::Value &CounterObj = V["counters"];
  const json::Value &PlanArr = V["plans"];
  const json::Value &SnapArr = V["snapshots"];
  if (!SpanArr.isArray() || !CounterObj.isObject() || !PlanArr.isArray() ||
      !SnapArr.isArray()) {
    Err = "trace is missing one of spans/counters/plans/snapshots";
    return false;
  }

  std::lock_guard<std::mutex> Lock(Out.Mutex);
  Out.Spans.clear();
  Out.Counters.clear();
  Out.Plans.clear();
  Out.Snapshots.clear();
  Out.OpenSpanIndex.clear();
  Out.NextSpanId = 1;

  for (const json::Value &E : SpanArr.asArray()) {
    if (!E.isObject() || !E["name"].isString()) {
      Err = "malformed span entry";
      return false;
    }
    TraceSpanRecord R;
    R.Id = static_cast<uint64_t>(E.getNumber("id"));
    R.Parent = static_cast<uint64_t>(E.getNumber("parent"));
    R.Name = E.getString("name");
    R.Thread = static_cast<uint64_t>(E.getNumber("thread"));
    R.StartUs = E.getNumber("start_us");
    R.DurUs = E.getNumber("dur_us", -1.0);
    Out.NextSpanId = std::max(Out.NextSpanId, R.Id + 1);
    Out.Spans.push_back(std::move(R));
  }
  for (const auto &[Name, C] : CounterObj.asObject()) {
    if (!C.isNumber()) {
      Err = "counter \"" + Name + "\" is not a number";
      return false;
    }
    Out.Counters[Name] = static_cast<uint64_t>(C.asNumber());
  }
  for (const json::Value &E : PlanArr.asArray()) {
    if (!E.isObject() || !E["plan"].isString() || !E["cost"].isNumber()) {
      Err = "malformed plan entry";
      return false;
    }
    TracePlanEval P;
    P.Index = static_cast<unsigned>(E.getNumber("index"));
    P.Plan = E.getString("plan");
    P.Cost = E.getNumber("cost");
    P.Chosen = E.getBool("chosen");
    Out.Plans.push_back(std::move(P));
  }
  for (const json::Value &E : SnapArr.asArray()) {
    if (!E.isObject() || !E["stage"].isString()) {
      Err = "malformed snapshot entry";
      return false;
    }
    Out.Snapshots.push_back(
        {E.getString("stage"), E.getString("kernel"), E.getString("text")});
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Human-readable summary
//===----------------------------------------------------------------------===//

std::string Trace::summary() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::ostringstream OS;

  struct Agg {
    uint64_t Count = 0;
    double TotalUs = 0.0;
  };
  std::map<std::string, Agg> ByName;
  for (const TraceSpanRecord &R : Spans) {
    Agg &A = ByName[R.Name];
    ++A.Count;
    if (R.DurUs >= 0)
      A.TotalUs += R.DurUs;
  }
  std::vector<std::pair<std::string, Agg>> Sorted(ByName.begin(),
                                                  ByName.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    return A.second.TotalUs > B.second.TotalUs;
  });

  OS << "== trace summary ==\n";
  if (!Sorted.empty()) {
    OS << "spans (aggregated by name):\n";
    char Buf[160];
    for (const auto &[Name, A] : Sorted) {
      std::snprintf(Buf, sizeof(Buf), "  %-28s %6llu x %12.1f us total\n",
                    Name.c_str(), (unsigned long long)A.Count, A.TotalUs);
      OS << Buf;
    }
  }
  if (!Counters.empty()) {
    OS << "counters:\n";
    for (const auto &[Name, V] : Counters)
      OS << "  " << Name << " = " << V << "\n";
  }
  if (!Plans.empty()) {
    const TracePlanEval *Best = nullptr;
    for (const TracePlanEval &P : Plans)
      if (P.Chosen)
        Best = &P;
    OS << "autotuner: " << Plans.size() << " plan(s) evaluated";
    if (Best) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.1f", Best->Cost);
      OS << "; chosen #" << Best->Index << " (" << Best->Plan
         << ", cost " << Buf << ")";
    }
    OS << "\n";
  }
  if (!Snapshots.empty())
    OS << "snapshots: " << Snapshots.size() << " IR dump(s) captured\n";
  return OS.str();
}

//===- Json.cpp - Minimal JSON value, parser, serializer -------*- C++ -*-===//

#include "support/Json.h"

#include "support/Support.h"

#include <cctype>
#include <cmath>
#include <sstream>

using namespace lgen;
using namespace lgen::json;

namespace {
const Value NullValue;
const Array EmptyArray;
const Object EmptyObject;
} // namespace

bool Value::asBool() const {
  assert(isBool() && "not a boolean");
  return BoolVal;
}

double Value::asNumber() const {
  assert(isNumber() && "not a number");
  return NumVal;
}

const std::string &Value::asString() const {
  assert(isString() && "not a string");
  return StrVal;
}

const Array &Value::asArray() const {
  assert(isArray() && "not an array");
  return *ArrVal;
}

Array &Value::asArray() {
  assert(isArray() && "not an array");
  return *ArrVal;
}

const Object &Value::asObject() const {
  assert(isObject() && "not an object");
  return *ObjVal;
}

Object &Value::asObject() {
  assert(isObject() && "not an object");
  return *ObjVal;
}

const Value &Value::operator[](const std::string &Key) const {
  if (!isObject())
    return NullValue;
  auto It = ObjVal->find(Key);
  return It == ObjVal->end() ? NullValue : It->second;
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value &V = (*this)[Key];
  return V.isString() ? V.asString() : Default;
}

double Value::getNumber(const std::string &Key, double Default) const {
  const Value &V = (*this)[Key];
  return V.isNumber() ? V.asNumber() : Default;
}

bool Value::getBool(const std::string &Key, bool Default) const {
  const Value &V = (*this)[Key];
  if (V.isBool())
    return V.asBool();
  // Mediator requests encode booleans as the strings "True"/"False"
  // (Appendix A).
  if (V.isString())
    return V.asString() == "True" || V.asString() == "true";
  return Default;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void serializeString(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void serializeValue(std::ostringstream &OS, const Value &V) {
  switch (V.kind()) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Bool:
    OS << (V.asBool() ? "true" : "false");
    return;
  case Kind::Number: {
    double N = V.asNumber();
    if (std::floor(N) == N && std::fabs(N) < 1e15)
      OS << static_cast<long long>(N);
    else
      OS << N;
    return;
  }
  case Kind::String:
    serializeString(OS, V.asString());
    return;
  case Kind::Array: {
    OS << '[';
    bool First = true;
    for (const Value &E : V.asArray()) {
      if (!First)
        OS << ',';
      First = false;
      serializeValue(OS, E);
    }
    OS << ']';
    return;
  }
  case Kind::Object: {
    OS << '{';
    bool First = true;
    for (const auto &[K, E] : V.asObject()) {
      if (!First)
        OS << ',';
      First = false;
      serializeString(OS, K);
      OS << ':';
      serializeValue(OS, E);
    }
    OS << '}';
    return;
  }
  }
  LGEN_UNREACHABLE("unknown JSON kind");
}

} // namespace

std::string Value::serialize() const {
  std::ostringstream OS;
  serializeValue(OS, *this);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Err) : Src(Text), Err(Err) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Src.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Message) {
    Err = Message + " (at offset " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Src.size() &&
           std::isspace(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Src.size())
      return fail("unexpected end of input");
    char C = Src[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n') {
      if (Src.compare(Pos, 4, "null") != 0)
        return fail("invalid keyword");
      Pos += 4;
      Out = Value();
      return true;
    }
    return parseNumber(Out);
  }

  bool parseKeyword(Value &Out) {
    if (Src.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = Value(true);
      return true;
    }
    if (Src.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = Value(false);
      return true;
    }
    return fail("invalid keyword");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Src.size() && (Src[Pos] == '-' || Src[Pos] == '+'))
      ++Pos;
    bool AnyDigit = false;
    auto TakeDigits = [&] {
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        ++Pos;
        AnyDigit = true;
      }
    };
    TakeDigits();
    if (Pos < Src.size() && Src[Pos] == '.') {
      ++Pos;
      TakeDigits();
    }
    if (Pos < Src.size() && (Src[Pos] == 'e' || Src[Pos] == 'E')) {
      ++Pos;
      if (Pos < Src.size() && (Src[Pos] == '-' || Src[Pos] == '+'))
        ++Pos;
      TakeDigits();
    }
    if (!AnyDigit)
      return fail("invalid number");
    Out = Value(std::stod(Src.substr(Start, Pos - Start)));
    return true;
  }

  bool parseString(std::string &Out) {
    assert(Src[Pos] == '"' && "string must start with a quote");
    ++Pos;
    Out.clear();
    while (Pos < Src.size() && Src[Pos] != '"') {
      char C = Src[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Src.size())
        return fail("unterminated escape");
      char E = Src[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Src.size())
          return fail("truncated unicode escape");
        unsigned Code = std::stoul(Src.substr(Pos, 4), nullptr, 16);
        Pos += 4;
        // ASCII subset only; everything Mediator emits fits.
        Out += static_cast<char>(Code & 0x7F);
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    if (Pos >= Src.size())
      return fail("unterminated string");
    ++Pos; // Closing quote.
    return true;
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Array A;
    skipWs();
    if (Pos < Src.size() && Src[Pos] == ']') {
      ++Pos;
      Out = Value(std::move(A));
      return true;
    }
    while (true) {
      Value V;
      skipWs();
      if (!parseValue(V))
        return false;
      A.push_back(std::move(V));
      skipWs();
      if (Pos >= Src.size())
        return fail("unterminated array");
      if (Src[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Src[Pos] == ']') {
        ++Pos;
        Out = Value(std::move(A));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Object O;
    skipWs();
    if (Pos < Src.size() && Src[Pos] == '}') {
      ++Pos;
      Out = Value(std::move(O));
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Src.size() || Src[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Src.size() || Src[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      O[Key] = std::move(V);
      skipWs();
      if (Pos >= Src.size())
        return fail("unterminated object");
      if (Src[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Src[Pos] == '}') {
        ++Pos;
        Out = Value(std::move(O));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string &Src;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string &Err) {
  Parser P(Text, Err);
  return P.run(Out);
}

//===- Metrics.h - Process-wide performance-metrics registry ---*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry for the runtime statistics every subsystem used to keep in
/// its own ad-hoc struct: kernel-cache hits and evictions, thread-pool
/// occupancy, autotuner plans evaluated, toolchain invocations, native
/// measurements. Three instrument kinds:
///
///  * *counters* — monotonically increasing uint64 (cache hits, plans
///    evaluated);
///  * *gauges* — instantaneous int64 values (active pool workers);
///  * *histograms* — fixed-bucket distributions with sum and count
///    (parallelFor sizes, measured cycles).
///
/// Instruments are registered once by name and the returned reference stays
/// valid for the process lifetime, so hot paths cache it in a function-local
/// static and pay exactly one relaxed atomic RMW per event — no lock, no
/// string hashing. Registration and snapshotting take a mutex; they are
/// cold.
///
/// \c snapshot() captures every instrument into plain maps, and the
/// snapshot exports to JSON (schema below) for `lgen-cli --metrics[=FILE]`
/// and the Mediator. Unlike \c support::Trace — which records *one traced
/// compilation* behind an opt-in sink — Metrics is always on and
/// process-cumulative; the two deliberately answer different questions
/// ("where did this compile spend its time" vs "what has this process done
/// so far").
///
/// Snapshot JSON schema (version 1, validated by MetricsTest round-trip):
///
/// \code{.json}
/// {
///   "version": 1,
///   "counters":   {"kernelcache.hit.memory": 3, ...},
///   "gauges":     {"threadpool.workers.active": 0, ...},
///   "histograms": {"threadpool.parallelfor.size":
///                    {"bounds": [1, 2, 4], "counts": [0, 1, 2, 0],
///                     "sum": 11, "count": 3}, ...}
/// }
/// \endcode
///
/// counts has one more entry than bounds: the final bucket holds
/// observations above the last bound. An observation lands in the first
/// bucket whose bound is >= the value.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_METRICS_H
#define LGEN_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lgen {

namespace json {
class Value;
} // namespace json

namespace support {

class Metrics {
public:
  /// Monotonic event counter. add() is one relaxed fetch_add.
  class Counter {
  public:
    void add(uint64_t Delta = 1) {
      V.fetch_add(Delta, std::memory_order_relaxed);
    }
    uint64_t value() const { return V.load(std::memory_order_relaxed); }

  private:
    friend class Metrics;
    std::atomic<uint64_t> V{0};
  };

  /// Instantaneous value; set() and add() are single relaxed operations.
  class Gauge {
  public:
    void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
    void add(int64_t Delta) { V.fetch_add(Delta, std::memory_order_relaxed); }
    int64_t value() const { return V.load(std::memory_order_relaxed); }

  private:
    friend class Metrics;
    std::atomic<int64_t> V{0};
  };

  /// Fixed-bucket histogram. observe() is two relaxed RMWs plus one on the
  /// matched bucket; bucket bounds are fixed at registration so the hot
  /// path never allocates. A value lands in the first bucket whose upper
  /// bound is >= the value; values above the last bound land in the
  /// overflow bucket.
  class Histogram {
  public:
    void observe(uint64_t X) {
      size_t B = 0;
      while (B != Bounds.size() && X > Bounds[B])
        ++B;
      Buckets[B].fetch_add(1, std::memory_order_relaxed);
      Sum.fetch_add(X, std::memory_order_relaxed);
      Count.fetch_add(1, std::memory_order_relaxed);
    }

    const std::vector<uint64_t> &bounds() const { return Bounds; }
    uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
    uint64_t count() const { return Count.load(std::memory_order_relaxed); }
    uint64_t bucketCount(size_t I) const {
      return Buckets[I].load(std::memory_order_relaxed);
    }

  private:
    friend class Metrics;
    explicit Histogram(std::vector<uint64_t> BucketBounds)
        : Bounds(std::move(BucketBounds)),
          Buckets(new std::atomic<uint64_t>[Bounds.size() + 1]) {
      for (size_t I = 0; I != Bounds.size() + 1; ++I)
        Buckets[I].store(0, std::memory_order_relaxed);
    }

    std::vector<uint64_t> Bounds; // ascending upper bounds
    std::unique_ptr<std::atomic<uint64_t>[]> Buckets; // Bounds.size() + 1
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Count{0};
  };

  struct HistogramSnapshot {
    std::vector<uint64_t> Bounds;
    std::vector<uint64_t> Counts; // Bounds.size() + 1 entries
    uint64_t Sum = 0;
    uint64_t Count = 0;

    bool operator==(const HistogramSnapshot &O) const {
      return Bounds == O.Bounds && Counts == O.Counts && Sum == O.Sum &&
             Count == O.Count;
    }
  };

  /// Point-in-time copy of every registered instrument.
  struct Snapshot {
    std::map<std::string, uint64_t> Counters;
    std::map<std::string, int64_t> Gauges;
    std::map<std::string, HistogramSnapshot> Histograms;

    json::Value toJson() const;
    /// Rebuilds a snapshot from its JSON form; false + \p Err on schema
    /// violations. toJson(fromJson(x)) == x.
    static bool fromJson(const json::Value &V, Snapshot &Out,
                         std::string &Err);
    /// Human-readable listing (counters, gauges, histogram summaries),
    /// optionally restricted to names starting with \p Prefix.
    std::string str(const std::string &Prefix = "") const;

    uint64_t counter(const std::string &Name) const {
      auto It = Counters.find(Name);
      return It == Counters.end() ? 0 : It->second;
    }
  };

  Metrics() = default;
  Metrics(const Metrics &) = delete;
  Metrics &operator=(const Metrics &) = delete;

  /// Registers (or finds) an instrument by name. The reference stays valid
  /// forever — cache it in a function-local static on hot paths. Asking
  /// for an existing name with a different instrument kind aborts, as does
  /// re-registering a histogram with different bounds: silent aliasing
  /// would corrupt both users' numbers.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name,
                       std::vector<uint64_t> BucketBounds);

  Snapshot snapshot() const;

  /// Zeroes every instrument, keeping registrations (and thus every cached
  /// reference) valid. Tests use this for isolation; production code never
  /// should — counters are defined to be process-cumulative.
  void reset();

  /// The process-wide registry every subsystem reports into.
  static Metrics &global();

private:
  mutable std::mutex Mutex; // registration and snapshot only
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Shorthands for instrumentation sites:
///   metricCounter("kernelcache.hit.memory").add();
/// Each call site resolves the name once (function-local static in the
/// caller is even cheaper, but these keep one-off sites readable).
inline Metrics::Counter &metricCounter(const std::string &Name) {
  return Metrics::global().counter(Name);
}
inline Metrics::Gauge &metricGauge(const std::string &Name) {
  return Metrics::global().gauge(Name);
}

} // namespace support
} // namespace lgen

#endif // LGEN_SUPPORT_METRICS_H

//===- Trace.h - Structured pipeline tracing and diagnostics ---*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the compile pipeline: a structured-event sink that
/// records
///
///  * *spans* — named wall-clock intervals (RAII-scoped, nesting tracked
///    per thread), answering "where does compile time go";
///  * *counters* — per-stage facts (Σ-LL tile ops emitted, fusion merges,
///    ν-BLAC expansions, scalar-replacement forwards, generic memory
///    accesses lowered, cleanup deltas, cache hits/misses);
///  * *plan evaluations* — every tiling plan the autotuner measured, with
///    its cost and whether it won;
///  * *IR snapshots* — textual dumps of LL / Σ-LL / C-IR at stage
///    boundaries, gated by a stage filter so they cost nothing unless
///    requested.
///
/// Tracing is opt-in and zero-cost when off: every instrumentation site
/// guards on \c Trace::active(), a single relaxed atomic pointer load, and
/// no strings are formatted unless a sink is installed. The hot paths
/// (gbench_compile_pipeline, parallel_autotune) therefore run unchanged.
///
/// The autotuner search evaluates the pipeline many times; counters and
/// snapshots from those throwaway runs would drown the facts about the
/// kernel actually built. \c TraceMuteScope (thread-local) suppresses
/// counters and snapshots — but not spans, which deliberately keep showing
/// search time — while a search evaluation runs, so counter values describe
/// exactly one final pipeline execution per compiled kernel.
///
/// The JSON export schema (validated by tools/validate_trace.py and
/// round-trip tested through mediator's JSON implementation) is:
///
/// \code{.json}
/// {
///   "version": 1,
///   "spans":     [{"id": 1, "parent": 0, "name": "compile", "thread": 0,
///                  "start_us": 0.0, "dur_us": 1234.5}, ...],
///   "counters":  {"sll.lower.nublacs": 9, ...},
///   "plans":     [{"index": 0, "plan": "unroll=[4,2] exchange=0 full=4",
///                  "cost": 410.0, "chosen": true}, ...],
///   "snapshots": [{"stage": "sll", "kernel": "y", "text": "..."}, ...]
/// }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_TRACE_H
#define LGEN_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace lgen {

namespace json {
class Value;
} // namespace json

namespace support {

/// One span: a named wall-clock interval. Parent links reconstruct the
/// nesting (0 = top level); spans begun on pool workers while no span is
/// open on that worker report parent 0.
struct TraceSpanRecord {
  uint64_t Id = 0;
  uint64_t Parent = 0;
  std::string Name;
  /// Small per-trace thread index (0 = the first thread seen).
  uint64_t Thread = 0;
  double StartUs = 0.0;
  /// Negative while the span is still open.
  double DurUs = -1.0;
};

/// One autotuner measurement: plan description, objective value, winner bit.
struct TracePlanEval {
  unsigned Index = 0;
  std::string Plan;
  double Cost = 0.0;
  bool Chosen = false;
};

/// One IR dump at a stage boundary.
struct TraceSnapshot {
  std::string Stage;  ///< "ll", "sll", "sll-opt", "cir", or "cir-final".
  std::string Kernel; ///< Output operand / kernel label.
  std::string Text;
};

class Trace {
public:
  Trace();

  Trace(const Trace &) = delete;
  Trace &operator=(const Trace &) = delete;

  /// The installed sink, or null when tracing is off. A relaxed load: this
  /// is the only cost instrumentation sites pay when disabled.
  static Trace *active() { return ActiveTrace.load(std::memory_order_relaxed); }

  /// Installs \p T as the process-wide sink (null uninstalls). The caller
  /// keeps ownership and must out-live the traced work.
  static void setActive(Trace *T) {
    ActiveTrace.store(T, std::memory_order_release);
  }

  //===--------------------------------------------------------------------===//
  // Spans
  //===--------------------------------------------------------------------===//

  /// Opens a span; returns its id. Prefer the RAII \c TraceSpan wrapper,
  /// which guarantees the span closes when the scope unwinds (exceptions
  /// included).
  uint64_t beginSpan(const char *Name);
  void endSpan(uint64_t Id);

  //===--------------------------------------------------------------------===//
  // Counters, plan log, snapshots
  //===--------------------------------------------------------------------===//

  /// Adds \p Delta to counter \p Name. Ignored inside a TraceMuteScope.
  void addCounter(const char *Name, uint64_t Delta = 1);

  /// Records one completed plan search: every evaluated plan plus which
  /// one won, appended in a single critical section so concurrent searches
  /// (compileBatch workers) never interleave their logs. Each search's
  /// indices restart at 0; the default plan is always index 0, so the
  /// number of index-0 entries equals the number of searches.
  void recordPlanSearch(std::vector<TracePlanEval> Evals);

  /// Restricts snapshots to one stage name, or "all". Default: none (even
  /// with tracing on, IR text is only materialized on request).
  void setSnapshotStages(std::string StageOrAll);
  /// True if a snapshot for \p Stage would be kept — check *before*
  /// stringifying IR, so disabled snapshots cost nothing.
  bool wantsSnapshot(const char *Stage) const;
  void snapshot(const char *Stage, std::string Kernel, std::string Text);

  /// True while the calling thread is inside a TraceMuteScope.
  static bool muted();

  //===--------------------------------------------------------------------===//
  // Export and inspection
  //===--------------------------------------------------------------------===//

  /// The full trace as a JSON value (schema in the file comment).
  json::Value toJson() const;

  /// Rebuilds a trace from its JSON form. Returns false (and sets \p Err)
  /// on schema violations. toJson(fromJson(x)) == x, which is what makes
  /// the schema a stable interchange format for external tooling.
  static bool fromJson(const json::Value &V, Trace &Out, std::string &Err);

  /// The trace in the Chrome trace-event format, loadable directly by
  /// Perfetto / chrome://tracing: {"traceEvents": [...]} with spans as
  /// complete ("X") events and counters as counter ("C") events stamped at
  /// the end of the timeline. Lossy relative to toJson() — parent links,
  /// plan evaluations, and IR snapshots have no Chrome representation.
  json::Value toChromeJson() const;

  /// Human-readable summary: spans aggregated by name, counters, and the
  /// plan search outcome.
  std::string summary() const;

  std::vector<TraceSpanRecord> spans() const;
  std::map<std::string, uint64_t> counters() const;
  uint64_t counter(const std::string &Name) const;
  std::vector<TracePlanEval> planEvals() const;
  std::vector<TraceSnapshot> snapshots() const;
  /// Number of spans still open (0 after well-nested instrumentation).
  size_t openSpans() const;

private:
  friend class TraceMuteScope;

  double nowUs() const;
  uint64_t threadIndexLocked();

  static std::atomic<Trace *> ActiveTrace;

  mutable std::mutex Mutex;
  std::vector<TraceSpanRecord> Spans;
  std::map<uint64_t, size_t> OpenSpanIndex; // id -> index into Spans
  std::map<std::string, uint64_t> Counters;
  std::vector<TracePlanEval> Plans;
  std::vector<TraceSnapshot> Snapshots;
  std::string SnapshotStages; // "" = none, "all" = everything, else one stage
  std::map<uint64_t, uint64_t> ThreadIndex; // hashed thread id -> small index
  uint64_t NextSpanId = 1;
  double EpochUs = 0.0;
};

/// RAII span. A no-op (single atomic load) when tracing is off; closes the
/// span on scope exit even when unwinding through an exception.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) : T(Trace::active()) {
    if (T)
      Id = T->beginSpan(Name);
  }
  ~TraceSpan() {
    if (T)
      T->endSpan(Id);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  Trace *T;
  uint64_t Id = 0;
};

/// Suppresses counters and snapshots (not spans) on the constructing thread
/// for its lifetime. The autotuner wraps search evaluations in this so
/// counters describe only the final kernel build.
class TraceMuteScope {
public:
  TraceMuteScope();
  ~TraceMuteScope();
  TraceMuteScope(const TraceMuteScope &) = delete;
  TraceMuteScope &operator=(const TraceMuteScope &) = delete;
};

/// Counter shorthand for instrumentation sites: one relaxed load when
/// tracing is off.
inline void traceCounter(const char *Name, uint64_t Delta = 1) {
  if (Trace *T = Trace::active())
    T->addCounter(Name, Delta);
}

} // namespace support
} // namespace lgen

#endif // LGEN_SUPPORT_TRACE_H

//===- ThreadPool.cpp - Reusable worker pool for parallel search ----------===//

#include "support/ThreadPool.h"

#include "support/Metrics.h"

namespace lgen {
namespace support {

namespace {
thread_local bool InParallelRegion = false;

/// The pool has no queue — parallelFor hands every attached thread a share
/// of one index range — so "occupancy" is the number of threads currently
/// claiming indices, and "depth" is the size of the range being drained.
Metrics::Gauge &activeWorkersGauge() {
  static Metrics::Gauge &G =
      Metrics::global().gauge("threadpool.workers.active");
  return G;
}
} // namespace

bool ThreadPool::insideParallelRegion() { return InParallelRegion; }

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  NumWorkers = Threads - 1;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runShare(Job &J) {
  InParallelRegion = true;
  activeWorkersGauge().add(1);
  for (;;) {
    size_t I = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= J.N)
      break;
    try {
      (*J.Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(J.ErrorMutex);
      if (!J.Error)
        J.Error = std::current_exception();
    }
  }
  activeWorkersGauge().add(-1);
  InParallelRegion = false;
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [&] {
        return ShuttingDown || (Current && Generation != SeenGeneration);
      });
      if (ShuttingDown)
        return;
      J = Current;
      SeenGeneration = Generation;
      ++J->AttachedWorkers;
    }
    runShare(*J);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --J->AttachedWorkers;
    }
    // The job lives on the submitting thread's stack; it only returns (and
    // destroys the job) once AttachedWorkers drops to zero, so notifying
    // under the mutex above keeps this wakeup from being lost.
    WorkDone.notify_all();
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  static Metrics::Counter &Invocations =
      Metrics::global().counter("threadpool.parallelfor.invocations");
  static Metrics::Counter &Tasks =
      Metrics::global().counter("threadpool.parallelfor.tasks");
  static Metrics::Histogram &SizeHist = Metrics::global().histogram(
      "threadpool.parallelfor.size", {1, 2, 4, 8, 16, 32, 64, 128});
  Invocations.add();
  Tasks.add(N);
  SizeHist.observe(N);
  // Serial paths: no workers, a single element, or a nested region (a
  // parallelFor from inside a worker would wait on threads that are all
  // busy running *this* loop).
  if (NumWorkers == 0 || N == 1 || InParallelRegion) {
    static Metrics::Counter &Serial =
        Metrics::global().counter("threadpool.parallelfor.serial");
    Serial.add();
    bool WasInside = InParallelRegion;
    InParallelRegion = true;
    std::exception_ptr Error;
    for (size_t I = 0; I != N; ++I) {
      try {
        Fn(I);
      } catch (...) {
        if (!Error)
          Error = std::current_exception();
      }
    }
    InParallelRegion = WasInside;
    if (Error)
      std::rethrow_exception(Error);
    return;
  }

  Job J;
  J.N = N;
  J.Fn = &Fn;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = &J;
    ++Generation;
  }
  WorkReady.notify_all();
  runShare(J);

  // The caller's share only ends once every index was claimed; wait for
  // workers still executing theirs, and stop new ones from attaching.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Current = nullptr;
    WorkDone.wait(Lock, [&] { return J.AttachedWorkers == 0; });
  }
  if (J.Error)
    std::rethrow_exception(J.Error);
}

} // namespace support
} // namespace lgen

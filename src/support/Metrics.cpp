//===- Metrics.cpp - Process-wide performance-metrics registry ------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace lgen;
using namespace lgen::support;

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

namespace {

[[noreturn]] void kindClash(const std::string &Name, const char *Wanted) {
  std::fprintf(stderr,
               "lgen: metric \"%s\" already registered as a different "
               "instrument kind (wanted %s)\n",
               Name.c_str(), Wanted);
  std::abort();
}

} // namespace

Metrics::Counter &Metrics::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return *It->second;
  if (Gauges.count(Name) || Histograms.count(Name))
    kindClash(Name, "counter");
  return *Counters.emplace(Name, std::unique_ptr<Counter>(new Counter()))
              .first->second;
}

Metrics::Gauge &Metrics::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  if (It != Gauges.end())
    return *It->second;
  if (Counters.count(Name) || Histograms.count(Name))
    kindClash(Name, "gauge");
  return *Gauges.emplace(Name, std::unique_ptr<Gauge>(new Gauge()))
              .first->second;
}

Metrics::Histogram &Metrics::histogram(const std::string &Name,
                                       std::vector<uint64_t> BucketBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Histograms.find(Name);
  if (It != Histograms.end()) {
    if (It->second->Bounds != BucketBounds) {
      std::fprintf(stderr,
                   "lgen: histogram \"%s\" re-registered with different "
                   "bucket bounds\n",
                   Name.c_str());
      std::abort();
    }
    return *It->second;
  }
  if (Counters.count(Name) || Gauges.count(Name))
    kindClash(Name, "histogram");
  return *Histograms
              .emplace(Name, std::unique_ptr<Histogram>(
                                 new Histogram(std::move(BucketBounds))))
              .first->second;
}

//===----------------------------------------------------------------------===//
// Snapshot / reset / global
//===----------------------------------------------------------------------===//

Metrics::Snapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Snapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot HS;
    HS.Bounds = H->Bounds;
    HS.Counts.reserve(H->Bounds.size() + 1);
    for (size_t I = 0; I != H->Bounds.size() + 1; ++I)
      HS.Counts.push_back(H->bucketCount(I));
    HS.Sum = H->sum();
    HS.Count = H->count();
    S.Histograms[Name] = std::move(HS);
  }
  return S;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->V.store(0, std::memory_order_relaxed);
  for (auto &[Name, G] : Gauges)
    G->V.store(0, std::memory_order_relaxed);
  for (auto &[Name, H] : Histograms) {
    for (size_t I = 0; I != H->Bounds.size() + 1; ++I)
      H->Buckets[I].store(0, std::memory_order_relaxed);
    H->Sum.store(0, std::memory_order_relaxed);
    H->Count.store(0, std::memory_order_relaxed);
  }
}

Metrics &Metrics::global() {
  // Leaked intentionally: instrumentation sites hold references into the
  // registry from static destructors and detached threads.
  static Metrics *G = new Metrics();
  return *G;
}

//===----------------------------------------------------------------------===//
// JSON export / import
//===----------------------------------------------------------------------===//

json::Value Metrics::Snapshot::toJson() const {
  json::Object CounterObj;
  for (const auto &[Name, V] : Counters)
    CounterObj[Name] = static_cast<int64_t>(V);

  json::Object GaugeObj;
  for (const auto &[Name, V] : Gauges)
    GaugeObj[Name] = V;

  json::Object HistObj;
  for (const auto &[Name, H] : Histograms) {
    json::Array Bounds, Cnts;
    for (uint64_t B : H.Bounds)
      Bounds.push_back(static_cast<int64_t>(B));
    for (uint64_t C : H.Counts)
      Cnts.push_back(static_cast<int64_t>(C));
    HistObj[Name] = json::Object{{"bounds", std::move(Bounds)},
                                 {"counts", std::move(Cnts)},
                                 {"sum", static_cast<int64_t>(H.Sum)},
                                 {"count", static_cast<int64_t>(H.Count)}};
  }

  return json::Object{{"version", 1},
                      {"counters", std::move(CounterObj)},
                      {"gauges", std::move(GaugeObj)},
                      {"histograms", std::move(HistObj)}};
}

bool Metrics::Snapshot::fromJson(const json::Value &V, Snapshot &Out,
                                 std::string &Err) {
  if (!V.isObject()) {
    Err = "metrics snapshot must be a JSON object";
    return false;
  }
  if (V.getNumber("version", 0) != 1) {
    Err = "unsupported metrics snapshot version";
    return false;
  }
  const json::Value &CounterObj = V["counters"];
  const json::Value &GaugeObj = V["gauges"];
  const json::Value &HistObj = V["histograms"];
  if (!CounterObj.isObject() || !GaugeObj.isObject() || !HistObj.isObject()) {
    Err = "metrics snapshot is missing counters/gauges/histograms";
    return false;
  }

  Out.Counters.clear();
  Out.Gauges.clear();
  Out.Histograms.clear();

  for (const auto &[Name, C] : CounterObj.asObject()) {
    if (!C.isNumber()) {
      Err = "counter \"" + Name + "\" is not a number";
      return false;
    }
    Out.Counters[Name] = static_cast<uint64_t>(C.asNumber());
  }
  for (const auto &[Name, G] : GaugeObj.asObject()) {
    if (!G.isNumber()) {
      Err = "gauge \"" + Name + "\" is not a number";
      return false;
    }
    Out.Gauges[Name] = static_cast<int64_t>(G.asNumber());
  }
  for (const auto &[Name, H] : HistObj.asObject()) {
    if (!H.isObject() || !H["bounds"].isArray() || !H["counts"].isArray()) {
      Err = "histogram \"" + Name + "\" is malformed";
      return false;
    }
    HistogramSnapshot HS;
    for (const json::Value &B : H["bounds"].asArray()) {
      if (!B.isNumber()) {
        Err = "histogram \"" + Name + "\" has a non-numeric bound";
        return false;
      }
      HS.Bounds.push_back(static_cast<uint64_t>(B.asNumber()));
    }
    for (const json::Value &C : H["counts"].asArray()) {
      if (!C.isNumber()) {
        Err = "histogram \"" + Name + "\" has a non-numeric bucket count";
        return false;
      }
      HS.Counts.push_back(static_cast<uint64_t>(C.asNumber()));
    }
    if (HS.Counts.size() != HS.Bounds.size() + 1) {
      Err = "histogram \"" + Name + "\" needs bounds+1 bucket counts";
      return false;
    }
    HS.Sum = static_cast<uint64_t>(H.getNumber("sum"));
    HS.Count = static_cast<uint64_t>(H.getNumber("count"));
    Out.Histograms[Name] = std::move(HS);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Human-readable listing
//===----------------------------------------------------------------------===//

std::string Metrics::Snapshot::str(const std::string &Prefix) const {
  auto Matches = [&](const std::string &Name) {
    return Prefix.empty() || Name.rfind(Prefix, 0) == 0;
  };
  std::ostringstream OS;
  OS << "== metrics ==\n";
  for (const auto &[Name, V] : Counters)
    if (Matches(Name))
      OS << "  " << Name << " = " << V << "\n";
  for (const auto &[Name, V] : Gauges)
    if (Matches(Name))
      OS << "  " << Name << " = " << V << " (gauge)\n";
  for (const auto &[Name, H] : Histograms) {
    if (!Matches(Name))
      continue;
    OS << "  " << Name << ": count=" << H.Count << " sum=" << H.Sum;
    if (H.Count)
      OS << " mean=" << static_cast<double>(H.Sum) / H.Count;
    OS << "\n";
  }
  return OS.str();
}

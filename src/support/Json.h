//===- Json.h - Minimal JSON value, parser, serializer ---------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON implementation every subsystem shares: values, a
/// recursive-descent parser, and a serializer. Originally written for
/// Mediator's RESTful interface (thesis §4.4, Appendix A), it now also
/// backs BENCH_*.json reports, Trace export, Metrics snapshots,
/// KernelCache persistence, and the compile-service protocol — one parser
/// instead of per-subsystem hand-rolled emitters. Supports the JSON subset
/// those APIs use (objects, arrays, strings with standard escapes,
/// numbers, booleans, null).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_JSON_H
#define LGEN_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lgen {
namespace json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
public:
  Value() : K(Kind::Null) {}
  /*implicit*/ Value(bool B) : K(Kind::Bool), BoolVal(B) {}
  /*implicit*/ Value(double N) : K(Kind::Number), NumVal(N) {}
  /*implicit*/ Value(int N) : K(Kind::Number), NumVal(N) {}
  /*implicit*/ Value(int64_t N)
      : K(Kind::Number), NumVal(static_cast<double>(N)) {}
  /*implicit*/ Value(const char *S) : K(Kind::String), StrVal(S) {}
  /*implicit*/ Value(std::string S) : K(Kind::String), StrVal(std::move(S)) {}
  /*implicit*/ Value(Array A)
      : K(Kind::Array), ArrVal(std::make_shared<Array>(std::move(A))) {}
  /*implicit*/ Value(Object O)
      : K(Kind::Object), ObjVal(std::make_shared<Object>(std::move(O))) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const;
  double asNumber() const;
  const std::string &asString() const;
  const Array &asArray() const;
  Array &asArray();
  const Object &asObject() const;
  Object &asObject();

  /// Object member access; returns a shared null for missing keys.
  const Value &operator[](const std::string &Key) const;

  /// Convenience getters with defaults, in the style Mediator's request
  /// parsing needs (Appendix A's optional properties).
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  double getNumber(const std::string &Key, double Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

  std::string serialize() const;

private:
  Kind K;
  bool BoolVal = false;
  double NumVal = 0;
  std::string StrVal;
  std::shared_ptr<Array> ArrVal;
  std::shared_ptr<Object> ObjVal;
};

/// Parses \p Text; returns false and sets \p Err on malformed input.
bool parse(const std::string &Text, Value &Out, std::string &Err);

} // namespace json
} // namespace lgen

#endif // LGEN_SUPPORT_JSON_H

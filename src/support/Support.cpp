//===- Support.cpp - Shared utilities --------------------------*- C++ -*-===//

#include "support/Support.h"

#include "support/Expected.h"

#include <cstdio>
#include <cstdlib>

using namespace lgen;

void lgen::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "lgen fatal error: %s\n", Message.c_str());
  std::abort();
}

void lgen::expectedDieImpl(const std::string &Message) {
  reportFatalError(Message);
}

void lgen::unreachableImpl(const char *Message, const char *File, int Line) {
  std::fprintf(stderr, "lgen unreachable at %s:%d: %s\n", File, Line, Message);
  std::abort();
}

int64_t lgen::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t lgen::lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  return (A / gcd64(A, B)) * B;
}

int64_t lgen::floorMod(int64_t A, int64_t M) {
  assert(M != 0 && "floorMod by zero");
  if (M < 0)
    M = -M;
  int64_t R = A % M;
  return R < 0 ? R + M : R;
}

bool lgen::isPrime(int64_t N) {
  if (N < 2)
    return false;
  for (int64_t D = 2; D * D <= N; ++D)
    if (N % D == 0)
      return false;
  return true;
}

std::string lgen::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

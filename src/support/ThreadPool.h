//===- ThreadPool.h - Reusable worker pool for parallel search -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool, the compiler-side counterpart of the
/// Mediator per-core worker queues (thesis Ch. 4). The autotuner fans plan
/// evaluations across it and `Compiler::compileBatch` fans whole BLACs.
///
/// The central primitive is \c parallelFor(N, Fn): the calling thread and
/// every worker pull indices from a shared atomic counter until the range
/// is exhausted. Because the caller participates, a pool is useful even
/// with one worker, and a \c parallelFor issued *from inside* a worker
/// (nested parallelism, e.g. autotuning inside compileBatch) degrades to a
/// serial loop on that worker instead of deadlocking on the pool's own
/// threads.
///
/// Determinism contract: \c parallelFor only changes *when* Fn(I) runs,
/// never for which I — callers that write results to slot I of a
/// pre-sized vector and reduce serially afterwards get bit-identical
/// results for any pool size, which is what keeps the parallel autotuner's
/// plan choice equal to the serial search's.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_THREADPOOL_H
#define LGEN_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lgen {
namespace support {

class ThreadPool {
public:
  /// Creates a pool with \p Threads total lanes of parallelism (the caller
  /// counts as one): ThreadPool(1) spawns no workers and runs everything
  /// serially on the calling thread; ThreadPool(4) spawns three workers.
  /// Threads == 0 uses the hardware concurrency.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total lanes of parallelism, including the calling thread.
  unsigned concurrency() const { return NumWorkers + 1; }

  /// Runs Fn(0..N-1), spreading indices over the workers and the calling
  /// thread; returns when all N calls finished. Exceptions from Fn are
  /// rethrown on the caller (first one wins). Safe to call from within a
  /// pool task, where it runs serially inline.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// True while the current thread is executing inside a parallelFor —
  /// used to detect nested parallelism.
  static bool insideParallelRegion();

private:
  struct Job {
    std::atomic<size_t> Next{0};
    size_t N = 0;
    const std::function<void(size_t)> *Fn = nullptr;
    /// Workers currently running a share of this job (guarded by the pool
    /// mutex); the job outlives runShare only while this is non-zero.
    unsigned AttachedWorkers = 0;
    std::exception_ptr Error;
    std::mutex ErrorMutex;
  };

  void workerLoop();
  static void runShare(Job &J);

  unsigned NumWorkers = 0;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  Job *Current = nullptr; // job workers should help with, if any
  uint64_t Generation = 0;
  bool ShuttingDown = false;
};

} // namespace support
} // namespace lgen

#endif // LGEN_SUPPORT_THREADPOOL_H

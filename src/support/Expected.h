//===- Expected.h - Value-or-error result type -----------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c Expected<T> carries either a value or a human-readable error string.
/// The compile API returns it for everything that can fail on user input
/// (LL parse errors, shape errors, bad named configurations), so callers
/// handle failures without abort-on-error helpers or out-parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_EXPECTED_H
#define LGEN_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>

namespace lgen {

/// Tag type carrying an error message into an Expected.
struct Err {
  std::string Message;
  explicit Err(std::string Message) : Message(std::move(Message)) {}
};

template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : HasValue(true), Value(std::move(Value)) {}
  /*implicit*/ Expected(Err E) : HasValue(false), ErrMessage(std::move(E.Message)) {}

  bool hasValue() const { return HasValue; }
  explicit operator bool() const { return HasValue; }

  T &operator*() {
    assert(HasValue && "accessing value of failed Expected");
    return Value;
  }
  const T &operator*() const {
    assert(HasValue && "accessing value of failed Expected");
    return Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// The error message; only valid when !hasValue().
  const std::string &error() const {
    assert(!HasValue && "accessing error of successful Expected");
    return ErrMessage;
  }

  /// Moves the value out, or aborts with the error — for tests and
  /// examples with known-good inputs: `C.compile(Src).valueOrDie()`.
  T valueOrDie() &&;

private:
  bool HasValue;
  // Default-initialized (not list-initialized) so aggregate T's with
  // explicit member constructors don't trip -Wexplicit conversions; the
  // value is never read in the error state.
  T Value;
  std::string ErrMessage;
};

[[noreturn]] void expectedDieImpl(const std::string &Message);

template <typename T> T Expected<T>::valueOrDie() && {
  if (!HasValue)
    expectedDieImpl(ErrMessage);
  return std::move(Value);
}

} // namespace lgen

#endif // LGEN_SUPPORT_EXPECTED_H

//===- Support.h - Shared utilities for the LGen reproduction -*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small support utilities shared by every LGen subsystem: fatal error
/// reporting, number-theory helpers used by the Congruence domain, a
/// deterministic RNG for the autotuner, and string helpers.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SUPPORT_SUPPORT_H
#define LGEN_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lgen {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the code that must never be reached.
[[noreturn]] void unreachableImpl(const char *Message, const char *File,
                                  int Line);

#define LGEN_UNREACHABLE(MSG) ::lgen::unreachableImpl(MSG, __FILE__, __LINE__)

/// Greatest common divisor on int64 values. gcd(0, 0) == 0 by convention,
/// matching the Congruence-domain algebra of Table 2.8 in the thesis.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple on int64 values; lcm(x, 0) == 0.
int64_t lcm64(int64_t A, int64_t B);

/// Mathematical modulo with a non-negative result for positive \p M.
int64_t floorMod(int64_t A, int64_t M);

/// Ceiling division for non-negative operands.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv requires a positive divisor");
  return (A + B - 1) / B;
}

/// Returns true if \p N is prime. Used to reproduce the thesis' tiling
/// restriction discussion (dips at n = 695, 893 where floor(n/4) is prime).
bool isPrime(int64_t N);

/// Deterministic xorshift-based RNG. The autotuner's random search must be
/// reproducible across runs, so we never seed from the clock.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed | 1) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

/// Joins the string representations of \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

} // namespace lgen

#endif // LGEN_SUPPORT_SUPPORT_H

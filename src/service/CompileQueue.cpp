//===- CompileQueue.cpp - Async compile queue with batching ---------------===//

#include "service/CompileQueue.h"

#include "compiler/Compiler.h"
#include "compiler/KernelCache.h"
#include "machine/Executor.h"
#include "machine/Microarch.h"
#include "support/Metrics.h"

#include <algorithm>
#include <sstream>

using namespace lgen;
using namespace lgen::service;
using mediator::ApiError;
using mediator::ErrorCode;
using json::Object;
using json::Value;

namespace {

machine::UArch uarchFromString(const std::string &Name) {
  if (Name == "atom")
    return machine::UArch::Atom;
  if (Name == "a8")
    return machine::UArch::CortexA8;
  if (Name == "a9")
    return machine::UArch::CortexA9;
  if (Name == "arm1176")
    return machine::UArch::ARM1176;
  if (Name == "sandybridge")
    return machine::UArch::SandyBridge;
  throw ApiError(ErrorCode::BadRequest,
                 "unknown target '" + Name +
                     "' (expected atom|a8|a9|arm1176|sandybridge)");
}

support::Metrics::Counter &submittedCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.queue.submitted");
  return C;
}
support::Metrics::Counter &rejectedCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.queue.rejected");
  return C;
}
support::Metrics::Counter &completedCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.queue.completed");
  return C;
}
support::Metrics::Gauge &depthGauge() {
  static support::Metrics::Gauge &G =
      support::Metrics::global().gauge("service.queue.depth");
  return G;
}
support::Metrics::Histogram &batchSizeHist() {
  static support::Metrics::Histogram &H = support::Metrics::global().histogram(
      "service.compile.batch.size", {1, 2, 4, 8, 16, 32, 64});
  return H;
}
support::Metrics::Histogram &latencyHist() {
  static support::Metrics::Histogram &H = support::Metrics::global().histogram(
      "service.compile.latency.us",
      {100, 1000, 10000, 100000, 1000000, 10000000});
  return H;
}

} // namespace

struct CompileQueue::Job {
  enum class State { Queued, Compiling, Finished };
  std::string Id;
  std::string Session;
  State St = State::Queued;
  Value Result;
  std::chrono::steady_clock::time_point SubmitTime;
  std::chrono::steady_clock::time_point FinishTime;
};

struct CompileQueue::PendingItem {
  std::string JobId;
  BatchKey Key;
  std::string Source;
};

CompileQueue::CompileQueue(CompileQueueConfig C)
    : Config(std::move(C)), IdRng(0xc0117eceb10b5ULL) {
  if (Config.Workers == 0)
    Config.Workers = 1;
  if (Config.BatchMax == 0)
    Config.BatchMax = 1;
  SharedCache =
      std::make_shared<compiler::KernelCache>(Config.CacheDir,
                                              /*MaxKernels=*/256);
  // Register every instrument up front so a /metrics scrape sees the full
  // set (zeros included) even before the first submit or rejection.
  submittedCounter();
  rejectedCounter();
  completedCounter();
  depthGauge().set(0);
  batchSizeHist();
  latencyHist();
  Workers.reserve(Config.Workers);
  for (unsigned I = 0; I != Config.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileQueue::~CompileQueue() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  QueueReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

//===----------------------------------------------------------------------===//
// Submission and results
//===----------------------------------------------------------------------===//

Value CompileQueue::submit(const std::string &Session, const Value &Params) {
  if (!Params.isObject())
    throw ApiError(ErrorCode::BadRequest,
                   "compile.submit params must be an object");
  std::string Source = Params.getString("source");
  if (Source.empty())
    throw ApiError(ErrorCode::BadRequest,
                   "compile.submit needs a non-empty 'source'");
  BatchKey Key;
  Key.Target = Params.getString("target", "atom");
  Key.Config = Params.getString("config", "LGen-Full");
  Key.SearchSamples =
      static_cast<unsigned>(Params.getNumber("searchSamples", 0));
  Key.Run = Params.getBool("run", false);

  // Validate target and config eagerly so the client gets a BadRequest at
  // submit time, not an execution error out of the queue.
  machine::UArch U = uarchFromString(Key.Target);
  Expected<compiler::Options> Opts = compiler::Options::named(Key.Config, U);
  if (!Opts)
    throw ApiError(ErrorCode::BadRequest, Opts.error());

  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    throw ApiError(ErrorCode::InternalError, "service is shutting down");
  purgeExpiredLocked();
  // Admission control: shed load once the queue crosses the high-water
  // mark. The error is retryable — clients back off and resend.
  if (Pending.size() >= Config.HighWater) {
    ++RejectedCount;
    rejectedCounter().add();
    throw ApiError(ErrorCode::TooManyRequests,
                   "compile queue at high-water mark (" +
                       std::to_string(Pending.size()) +
                       " queued); retry later");
  }
  std::ostringstream IdStream;
  IdStream << std::hex << ++IdCounter << "-" << IdRng.next();
  auto J = std::make_shared<Job>();
  J->Id = IdStream.str();
  J->Session = Session;
  J->SubmitTime = std::chrono::steady_clock::now();
  Jobs[J->Id] = J;
  Pending.push_back(PendingItem{J->Id, Key, std::move(Source)});
  ++SubmittedCount;
  submittedCounter().add();
  depthGauge().set(static_cast<int64_t>(Pending.size()));
  QueueReady.notify_one();

  Object R;
  R["jobID"] = J->Id;
  R["jobState"] = "QUEUED";
  return Value(std::move(R));
}

Value CompileQueue::result(const std::string &Session, const Value &Params) {
  if (!Params.isObject())
    throw ApiError(ErrorCode::BadRequest,
                   "compile.result params must be an object");
  std::string JobId = Params.getString("jobID");
  if (JobId.empty())
    throw ApiError(ErrorCode::BadRequest, "missing 'jobID'");

  std::lock_guard<std::mutex> Lock(Mutex);
  purgeExpiredLocked();
  Object R;
  R["jobID"] = JobId;
  auto It = Jobs.find(JobId);
  // Session isolation: other sessions' jobs are indistinguishable from
  // nonexistent ones.
  if (It == Jobs.end() || It->second->Session != Session) {
    R["jobState"] = "NOT_FOUND";
    return Value(std::move(R));
  }
  switch (It->second->St) {
  case Job::State::Queued:
    R["jobState"] = "QUEUED";
    break;
  case Job::State::Compiling:
    R["jobState"] = "COMPILING";
    break;
  case Job::State::Finished:
    R["jobState"] = "FINISHED";
    R["result"] = It->second->Result;
    break;
  }
  return Value(std::move(R));
}

Value CompileQueue::jobs(const std::string &Session) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Array List;
  for (const auto &[Id, J] : Jobs) {
    if (J->Session != Session)
      continue;
    Object E;
    E["jobID"] = Id;
    E["jobState"] = J->St == Job::State::Queued      ? "QUEUED"
                    : J->St == Job::State::Compiling ? "COMPILING"
                                                     : "FINISHED";
    List.push_back(Value(std::move(E)));
  }
  Object R;
  R["jobs"] = Value(std::move(List));
  return Value(std::move(R));
}

CompileQueue::Stats CompileQueue::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S;
  S.Queued = Pending.size();
  S.Compiling = CompilingCount;
  for (const auto &[Id, J] : Jobs)
    if (J->St == Job::State::Finished)
      ++S.Finished;
  S.HighWater = Config.HighWater;
  S.Workers = Config.Workers;
  S.WorkersBusy = BusyWorkers;
  S.Submitted = SubmittedCount;
  S.Rejected = RejectedCount;
  return S;
}

void CompileQueue::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock,
               [&] { return Pending.empty() && CompilingCount == 0; });
}

void CompileQueue::flushCache() {
  if (SharedCache)
    SharedCache->flush();
}

void CompileQueue::purgeExpiredLocked() {
  auto Now = std::chrono::steady_clock::now();
  for (auto It = Jobs.begin(); It != Jobs.end();) {
    if (It->second->St == Job::State::Finished &&
        Now - It->second->FinishTime > Config.ResultsExpiry)
      It = Jobs.erase(It);
    else
      ++It;
  }
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void CompileQueue::workerLoop() {
  for (;;) {
    std::vector<PendingItem> Batch;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      QueueReady.wait(Lock,
                      [&] { return ShuttingDown || !Pending.empty(); });
      if (ShuttingDown)
        return;
      // Coalesce: the front request plus every queued request sharing its
      // batch key, up to BatchMax. Reordering across keys is fine — jobs
      // are independent — and bounded by BatchMax so no key starves.
      Batch.push_back(std::move(Pending.front()));
      Pending.pop_front();
      // By value: the push_backs below reallocate Batch, and a reference
      // into it would dangle mid-comparison (caught by TSan as a
      // use-after-free under the coalescing load test).
      const BatchKey Key = Batch.front().Key;
      for (auto It = Pending.begin();
           It != Pending.end() && Batch.size() < Config.BatchMax;) {
        if (It->Key == Key) {
          Batch.push_back(std::move(*It));
          It = Pending.erase(It);
        } else {
          ++It;
        }
      }
      for (const PendingItem &P : Batch)
        Jobs.at(P.JobId)->St = Job::State::Compiling;
      CompilingCount += Batch.size();
      ++BusyWorkers;
      depthGauge().set(static_cast<int64_t>(Pending.size()));
    }
    batchSizeHist().observe(Batch.size());

    std::vector<std::string> Sources;
    Sources.reserve(Batch.size());
    for (const PendingItem &P : Batch)
      Sources.push_back(P.Source);

    std::vector<Value> Results;
    try {
      Results = Config.CompileFn
                    ? Config.CompileFn(Batch.front().Key, Sources)
                    : compileBatch(Batch.front().Key, Sources);
    } catch (const std::exception &Ex) {
      Object E;
      E["error"] = mediator::makeError(ErrorCode::InternalError, Ex.what());
      Results.assign(Sources.size(), Value(std::move(E)));
    }
    if (Results.size() != Sources.size()) {
      Object E;
      E["error"] = mediator::makeError(
          ErrorCode::InternalError,
          "compile step returned " + std::to_string(Results.size()) +
              " results for " + std::to_string(Sources.size()) + " sources");
      Results.assign(Sources.size(), Value(std::move(E)));
    }

    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto Now = std::chrono::steady_clock::now();
      for (size_t I = 0; I != Batch.size(); ++I) {
        auto It = Jobs.find(Batch[I].JobId);
        if (It == Jobs.end())
          continue; // expired mid-compile
        It->second->Result = std::move(Results[I]);
        It->second->St = Job::State::Finished;
        It->second->FinishTime = Now;
        latencyHist().observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Now - It->second->SubmitTime)
                .count()));
      }
      completedCounter().add(Batch.size());
      CompilingCount -= Batch.size();
      --BusyWorkers;
    }
    JobDone.notify_all();
  }
}

std::vector<Value>
CompileQueue::compileBatch(const BatchKey &Key,
                           const std::vector<std::string> &Sources) {
  std::shared_ptr<compiler::Compiler> C;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Compilers.find(Key);
    if (It != Compilers.end()) {
      C = It->second;
    } else {
      machine::UArch U = uarchFromString(Key.Target);
      compiler::Options Opts =
          compiler::Options::named(Key.Config, U).valueOrDie();
      Opts.SearchSamples = Key.SearchSamples;
      Opts.TunerThreads = 1; // parallelism comes from queue workers
      C = std::make_shared<compiler::Compiler>(Opts);
      C->setKernelCache(SharedCache);
      Compilers[Key] = C;
    }
  }

  machine::UArch U = uarchFromString(Key.Target);
  const machine::Microarch &M = machine::Microarch::get(U);
  std::vector<Expected<compiler::CompiledKernel>> Compiled =
      C->compileBatch(Sources);

  std::vector<Value> Out;
  Out.reserve(Compiled.size());
  for (Expected<compiler::CompiledKernel> &CK : Compiled) {
    Object R;
    if (!CK) {
      R["error"] = mediator::makeError(ErrorCode::InstructionExecutionError,
                                       CK.error());
      Out.push_back(Value(std::move(R)));
      continue;
    }
    machine::TimingResult T = CK->time(M);
    R["supported"] = true;
    R["target"] = Key.Target;
    R["config"] = Key.Config;
    R["flops"] = CK->Flops;
    R["cycles"] = T.Cycles;
    R["flopsPerCycle"] = T.Cycles > 0 ? CK->Flops / T.Cycles : 0.0;
    R["unit"] = "model-cycles";
    if (Key.Run) {
      // Execute on the simulated machine over deterministic inputs — one
      // request is a full compile+run round trip.
      std::vector<machine::Buffer> Storage;
      std::vector<machine::Buffer *> Buffers;
      Storage.reserve(CK->Blac.Operands.size());
      Rng InputRng(0x5eed);
      for (const ll::Operand &O : CK->Blac.Operands) {
        Storage.emplace_back(static_cast<size_t>(O.numElements()), 0.0f, 0);
        for (float &V : Storage.back().Data)
          V = static_cast<float>(InputRng.next() % 1000) / 250.0f - 2.0f;
      }
      for (machine::Buffer &B : Storage)
        Buffers.push_back(&B);
      CK->execute(Buffers);
      double Checksum = 0.0;
      for (const machine::Buffer &B : Storage)
        for (float V : B.Data)
          Checksum += V;
      R["ran"] = true;
      R["checksum"] = Checksum;
    }
    Out.push_back(Value(std::move(R)));
  }
  return Out;
}

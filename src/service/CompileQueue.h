//===- CompileQueue.h - Async compile queue with batching ------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous heart of the compile service: compile requests enter a
/// FIFO queue, worker threads drain it in *batches* — consecutive requests
/// that share a compiler configuration (target, named config, search
/// samples, run flag) coalesce into one \c Compiler::compileBatch call, so
/// a burst of requests for the same target amortizes pool fan-out and hits
/// one shared kernel cache. Per-session state tracks every submitted job;
/// a session only sees its own jobs.
///
/// Admission control: once the number of *queued* (not yet compiling)
/// requests crosses \c HighWater, submits are rejected with
/// \c ErrorCode::TooManyRequests — a structured, retryable:true error the
/// protocol's error table maps to HTTP 429. Load is shed at the door
/// instead of letting the queue grow without bound; clients back off and
/// resend (the load generator demonstrates the retry loop).
///
/// Compile results are JSON objects (protocol v1, method compile.result):
/// flops, model-timed cycles, flops/cycle — and, for run:true requests,
/// the kernel is also *executed* on the simulated machine over
/// deterministic inputs with an output checksum in the result, making one
/// request a full compile+run round trip.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SERVICE_COMPILEQUEUE_H
#define LGEN_SERVICE_COMPILEQUEUE_H

#include "mediator/Protocol.h"
#include "support/Json.h"
#include "support/Support.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace lgen {

namespace compiler {
class Compiler;
class KernelCache;
} // namespace compiler

namespace service {

/// What one batch shares: requests coalesce only when every field that
/// feeds Options construction matches.
struct BatchKey {
  std::string Target;      ///< "atom", "a8", ... (uarch name).
  std::string Config;      ///< "LGen", "LGen-Full", ... (named config).
  unsigned SearchSamples = 0;
  bool Run = false;

  bool operator==(const BatchKey &O) const {
    return Target == O.Target && Config == O.Config &&
           SearchSamples == O.SearchSamples && Run == O.Run;
  }
  bool operator<(const BatchKey &O) const {
    return std::tie(Target, Config, SearchSamples, Run) <
           std::tie(O.Target, O.Config, O.SearchSamples, O.Run);
  }
};

struct CompileQueueConfig {
  /// Compile worker threads draining the queue.
  unsigned Workers = 2;
  /// Maximum requests coalesced into one compileBatch call.
  unsigned BatchMax = 32;
  /// Admission-control high-water mark on *queued* requests; submits
  /// beyond it are rejected with TooManyRequests (retryable).
  size_t HighWater = 4096;
  /// Finished results older than this are purged.
  std::chrono::milliseconds ResultsExpiry = std::chrono::minutes(10);
  /// Directory for the shared persistent kernel cache ("" = in-memory).
  std::string CacheDir;
  /// Test hook: replaces the real compile step. Receives the batch key
  /// and sources; must return one result object per source. Production
  /// leaves it null.
  std::function<std::vector<json::Value>(const BatchKey &,
                                         const std::vector<std::string> &)>
      CompileFn;
};

class CompileQueue {
public:
  explicit CompileQueue(CompileQueueConfig Config = CompileQueueConfig());
  ~CompileQueue();

  CompileQueue(const CompileQueue &) = delete;
  CompileQueue &operator=(const CompileQueue &) = delete;

  /// compile.submit: params = {source, target?, config?, searchSamples?,
  /// run?}. Returns {jobID, jobState:"QUEUED"}; throws ApiError on
  /// malformed params (BadRequest), unknown target/config (BadRequest),
  /// or a saturated queue (TooManyRequests, retryable).
  json::Value submit(const std::string &Session, const json::Value &Params);

  /// compile.result: params = {jobID}. Returns {jobID, jobState} with
  /// jobState QUEUED/COMPILING/FINISHED/NOT_FOUND and, when finished, the
  /// per-request "result" object. Jobs of other sessions read NOT_FOUND.
  json::Value result(const std::string &Session, const json::Value &Params);

  /// compile.jobs: every job the session submitted (id + state), newest
  /// last.
  json::Value jobs(const std::string &Session) const;

  /// Point-in-time occupancy for /healthz and admission decisions.
  struct Stats {
    size_t Queued = 0;    ///< Waiting in the queue.
    size_t Compiling = 0; ///< Popped by a worker, still compiling.
    size_t Finished = 0;  ///< Results held (not yet expired).
    size_t HighWater = 0;
    unsigned Workers = 0;
    unsigned WorkersBusy = 0;
    uint64_t Submitted = 0; ///< Accepted since start.
    uint64_t Rejected = 0;  ///< Shed by admission control since start.
  };
  Stats stats() const;

  /// Blocks until every queued request finished (tests / bench epilogue).
  void drain();

  /// Persists the shared kernel cache's tuned plans (no-op for an
  /// in-memory cache). The daemon's shutdown path pairs this with drain()
  /// so a SIGINT mid-batch does not discard plans tuned on real measured
  /// cycles.
  void flushCache();

  /// The kernel cache every batch compiler shares.
  const std::shared_ptr<compiler::KernelCache> &sharedCache() const {
    return SharedCache;
  }

private:
  struct Job;
  struct PendingItem;

  void workerLoop();
  std::vector<json::Value> compileBatch(const BatchKey &Key,
                                        const std::vector<std::string> &Srcs);
  void purgeExpiredLocked();

  CompileQueueConfig Config;
  mutable std::mutex Mutex;
  std::condition_variable QueueReady; ///< Work arrived (workers wait).
  std::condition_variable JobDone;    ///< Results landed (drain waits).
  std::deque<PendingItem> Pending;
  std::map<std::string, std::shared_ptr<Job>> Jobs;
  std::map<BatchKey, std::shared_ptr<compiler::Compiler>> Compilers;
  std::shared_ptr<compiler::KernelCache> SharedCache;
  std::vector<std::thread> Workers;
  Rng IdRng;
  uint64_t IdCounter = 0;
  uint64_t SubmittedCount = 0;
  uint64_t RejectedCount = 0;
  unsigned BusyWorkers = 0;
  size_t CompilingCount = 0;
  bool ShuttingDown = false;
};

} // namespace service
} // namespace lgen

#endif // LGEN_SERVICE_COMPILEQUEUE_H

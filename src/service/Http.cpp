//===- Http.cpp - Minimal HTTP/1.1 transport for the service --------------===//

#include "service/Http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lgen;
using namespace lgen::service;

namespace {

std::string toLower(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return S;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

/// recv() mapped onto the HttpRead states; appends to \p Buf.
HttpRead recvSome(int Fd, std::string &Buf) {
  char Chunk[16 * 1024];
  ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
  if (N > 0) {
    Buf.append(Chunk, static_cast<size_t>(N));
    return HttpRead::Ok;
  }
  if (N == 0)
    return HttpRead::Closed;
  if (errno == EAGAIN || errno == EWOULDBLOCK)
    return HttpRead::Timeout;
  if (errno == EINTR)
    return HttpRead::Ok; // retry on the next loop iteration
  return HttpRead::Closed;
}

bool sendAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off != Len) {
#ifdef MSG_NOSIGNAL
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
#else
    ssize_t N = ::send(Fd, Data + Off, Len - Off, 0);
#endif
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Parses the head (request line + headers) in [0, HeadEnd) of \p Buf.
bool parseHead(const std::string &Head, HttpRequest &Out) {
  size_t LineEnd = Head.find("\r\n");
  if (LineEnd == std::string::npos)
    return false;
  const std::string RequestLine = Head.substr(0, LineEnd);
  size_t Sp1 = RequestLine.find(' ');
  size_t Sp2 = RequestLine.rfind(' ');
  if (Sp1 == std::string::npos || Sp2 == Sp1)
    return false;
  Out.Method = RequestLine.substr(0, Sp1);
  Out.Path = trim(RequestLine.substr(Sp1 + 1, Sp2 - Sp1 - 1));
  Out.Version = RequestLine.substr(Sp2 + 1);
  if (Out.Method.empty() || Out.Path.empty() ||
      Out.Version.compare(0, 5, "HTTP/") != 0)
    return false;

  size_t Pos = LineEnd + 2;
  while (Pos < Head.size()) {
    size_t End = Head.find("\r\n", Pos);
    if (End == std::string::npos)
      End = Head.size();
    const std::string Line = Head.substr(Pos, End - Pos);
    Pos = End + 2;
    if (Line.empty())
      break;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return false;
    Out.Headers[toLower(trim(Line.substr(0, Colon)))] =
        trim(Line.substr(Colon + 1));
  }

  // Keep-alive: HTTP/1.1 default on, HTTP/1.0 default off.
  std::string Conn = toLower(Out.Headers.count("connection")
                                 ? Out.Headers.at("connection")
                                 : "");
  if (Out.Version == "HTTP/1.0")
    Out.KeepAlive = Conn == "keep-alive";
  else
    Out.KeepAlive = Conn != "close";
  return true;
}

/// Parses a client-side response head.
bool parseResponseHead(const std::string &Head, HttpResponse &Out) {
  size_t LineEnd = Head.find("\r\n");
  if (LineEnd == std::string::npos)
    return false;
  const std::string StatusLine = Head.substr(0, LineEnd);
  size_t Sp1 = StatusLine.find(' ');
  if (Sp1 == std::string::npos ||
      StatusLine.compare(0, 5, "HTTP/") != 0)
    return false;
  Out.Status = std::atoi(StatusLine.c_str() + Sp1 + 1);
  if (Out.Status < 100 || Out.Status > 999)
    return false;
  size_t Pos = LineEnd + 2;
  while (Pos < Head.size()) {
    size_t End = Head.find("\r\n", Pos);
    if (End == std::string::npos)
      End = Head.size();
    const std::string Line = Head.substr(Pos, End - Pos);
    Pos = End + 2;
    if (Line.empty())
      break;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return false;
    Out.Headers[toLower(trim(Line.substr(0, Colon)))] =
        trim(Line.substr(Colon + 1));
  }
  return true;
}

bool contentLengthOf(const std::map<std::string, std::string> &Headers,
                     size_t &Out) {
  auto It = Headers.find("content-length");
  if (It == Headers.end()) {
    Out = 0;
    return true;
  }
  const std::string &S = It->second;
  if (S.empty() ||
      !std::all_of(S.begin(), S.end(),
                   [](unsigned char C) { return std::isdigit(C); }))
    return false;
  Out = static_cast<size_t>(std::strtoull(S.c_str(), nullptr, 10));
  return true;
}

} // namespace

HttpRead service::readHttpRequest(int Fd, HttpRequest &Out, std::string &Carry,
                                  size_t MaxHeaderBytes,
                                  size_t MaxBodyBytes) {
  Out = HttpRequest();
  std::string &Buf = Carry;
  // Slow-client allowance: SO_RCVTIMEO fires per recv() call, so a request
  // split across many TCP segments with pauses between them used to get a
  // spurious 408 on the first pause that crossed the window — even though
  // the client was still making forward progress. Forgive a timeout
  // whenever bytes arrived since the *previous* timeout; only a connection
  // that delivered nothing for a full consecutive window times out. Idle
  // keep-alive connections (empty buffer, no request in flight) still time
  // out on the first silent window.
  size_t SizeAtLastTimeout = std::string::npos;
  auto TimedOutForGood = [&](void) -> bool {
    if (Buf.empty() || Buf.size() == SizeAtLastTimeout)
      return true;
    SizeAtLastTimeout = Buf.size();
    return false;
  };
  // Accumulate until the blank line ending the head.
  size_t HeadEnd;
  while ((HeadEnd = Buf.find("\r\n\r\n")) == std::string::npos) {
    if (Buf.size() > MaxHeaderBytes)
      return HttpRead::TooLarge;
    // A clean close *between* requests is Closed, not Malformed.
    HttpRead R = recvSome(Fd, Buf);
    if (R == HttpRead::Closed)
      return Buf.empty() ? HttpRead::Closed : HttpRead::Malformed;
    if (R == HttpRead::Timeout && !TimedOutForGood())
      continue;
    if (R != HttpRead::Ok)
      return R;
  }
  if (HeadEnd > MaxHeaderBytes)
    return HttpRead::TooLarge;
  if (!parseHead(Buf.substr(0, HeadEnd + 2), Out))
    return HttpRead::Malformed;

  size_t BodyLen;
  if (!contentLengthOf(Out.Headers, BodyLen))
    return HttpRead::Malformed;
  if (BodyLen > MaxBodyBytes)
    return HttpRead::TooLarge;
  size_t BodyStart = HeadEnd + 4;
  while (Buf.size() - BodyStart < BodyLen) {
    HttpRead R = recvSome(Fd, Buf);
    if (R == HttpRead::Closed)
      return HttpRead::Malformed; // died mid-body
    if (R == HttpRead::Timeout && !TimedOutForGood())
      continue;
    if (R != HttpRead::Ok)
      return R;
  }
  Out.Body = Buf.substr(BodyStart, BodyLen);
  // Keep any pipelined bytes for the next request on this connection.
  Buf.erase(0, BodyStart + BodyLen);
  return HttpRead::Ok;
}

const char *service::httpStatusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 401:
    return "Unauthorized";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 406:
    return "Not Acceptable";
  case 408:
    return "Request Timeout";
  case 413:
    return "Payload Too Large";
  case 429:
    return "Too Many Requests";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  case 505:
    return "HTTP Version Not Supported";
  default:
    return "Unknown";
  }
}

bool service::writeHttpResponse(int Fd, int Status, const std::string &Body,
                                const std::string &ContentType,
                                bool KeepAlive) {
  std::string Head = "HTTP/1.1 " + std::to_string(Status) + " " +
                     httpStatusText(Status) + "\r\n";
  Head += "Content-Type: " + ContentType + "\r\n";
  Head += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  Head += KeepAlive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  Head += "\r\n";
  return sendAll(Fd, Head.data(), Head.size()) &&
         sendAll(Fd, Body.data(), Body.size());
}

//===----------------------------------------------------------------------===//
// HttpClient
//===----------------------------------------------------------------------===//

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Carry.clear();
}

bool HttpClient::connect(const std::string &NewHost, uint16_t NewPort,
                         std::string &Err) {
  close();
  Host = NewHost;
  Port = NewPort;

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int RC = ::getaddrinfo(Host.c_str(), std::to_string(Port).c_str(), &Hints,
                         &Res);
  if (RC != 0) {
    Err = "cannot resolve " + Host + ": " + gai_strerror(RC);
    return false;
  }
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    int S = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (S < 0)
      continue;
    if (::connect(S, AI->ai_addr, AI->ai_addrlen) == 0) {
      Fd = S;
      break;
    }
    ::close(S);
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    Err = "cannot connect to " + Host + ":" + std::to_string(Port) + ": " +
          std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool HttpClient::request(const std::string &Method, const std::string &Path,
                         const std::string &Body, HttpResponse &Out,
                         std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Head = Method + " " + Path + " HTTP/1.1\r\n";
  Head += "Host: " + Host + ":" + std::to_string(Port) + "\r\n";
  if (!Body.empty() || Method == "POST")
    Head += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  Head += "Content-Type: application/json\r\n\r\n";
  if (!sendAll(Fd, Head.data(), Head.size()) ||
      !sendAll(Fd, Body.data(), Body.size())) {
    Err = "send failed: " + std::string(std::strerror(errno));
    close();
    return false;
  }

  Out = HttpResponse();
  std::string &Buf = Carry;
  size_t HeadEnd;
  while ((HeadEnd = Buf.find("\r\n\r\n")) == std::string::npos) {
    HttpRead R = recvSome(Fd, Buf);
    if (R != HttpRead::Ok) {
      Err = "connection lost while reading response head";
      close();
      return false;
    }
  }
  if (!parseResponseHead(Buf.substr(0, HeadEnd + 2), Out)) {
    Err = "malformed response head";
    close();
    return false;
  }
  size_t BodyLen;
  if (!contentLengthOf(Out.Headers, BodyLen)) {
    Err = "malformed Content-Length";
    close();
    return false;
  }
  size_t BodyStart = HeadEnd + 4;
  while (Buf.size() - BodyStart < BodyLen) {
    HttpRead R = recvSome(Fd, Buf);
    if (R != HttpRead::Ok) {
      Err = "connection lost while reading response body";
      close();
      return false;
    }
  }
  Out.Body = Buf.substr(BodyStart, BodyLen);
  Buf.erase(0, BodyStart + BodyLen);

  auto Conn = Out.Headers.find("connection");
  if (Conn != Out.Headers.end() && toLower(Conn->second) == "close")
    close();
  return true;
}

//===- Http.h - Minimal HTTP/1.1 transport for the service -----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket-level half of the compile service: a blocking HTTP/1.1
/// request reader / response writer used by the server's connection
/// workers, and a small keep-alive client used by the load-generator bench
/// and the tests. Only the subset the service protocol needs is
/// implemented — request line, headers, Content-Length bodies, keep-alive
/// — with hard caps on header and body size so a misbehaving peer cannot
/// balloon a worker's memory.
///
/// Everything operates on plain file descriptors; ownership stays with the
/// caller except in \c HttpClient, which closes its socket on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SERVICE_HTTP_H
#define LGEN_SERVICE_HTTP_H

#include <cstdint>
#include <map>
#include <string>

namespace lgen {
namespace service {

/// One parsed request. Header names are lower-cased on parse; values keep
/// their bytes (leading/trailing blanks trimmed).
struct HttpRequest {
  std::string Method;  ///< "GET", "POST", ...
  std::string Path;    ///< Request target, e.g. "/rpc".
  std::string Version; ///< "HTTP/1.1".
  std::map<std::string, std::string> Headers;
  std::string Body;
  /// False when the client asked for Connection: close (or spoke
  /// HTTP/1.0 without keep-alive).
  bool KeepAlive = true;
};

enum class HttpRead {
  Ok,        ///< A full request was parsed.
  Closed,    ///< Peer closed (or had closed) the connection cleanly.
  Timeout,   ///< The socket's receive timeout expired mid-request.
  TooLarge,  ///< Header or body exceeded its cap.
  Malformed, ///< Unparseable request.
};

/// Reads one request from \p Fd. \p Carry holds bytes read beyond the
/// previous request on a keep-alive connection; pass the same string for
/// every read on one connection. Caps: \p MaxHeaderBytes on the head,
/// \p MaxBodyBytes on Content-Length.
HttpRead readHttpRequest(int Fd, HttpRequest &Out, std::string &Carry,
                         size_t MaxHeaderBytes = 64 * 1024,
                         size_t MaxBodyBytes = 8 * 1024 * 1024);

/// Writes a complete response with Content-Length framing. Returns false
/// when the peer went away mid-write.
bool writeHttpResponse(int Fd, int Status, const std::string &Body,
                       const std::string &ContentType = "application/json",
                       bool KeepAlive = true);

/// Reason phrase for the statuses the service emits; "Unknown" otherwise.
const char *httpStatusText(int Status);

/// A parsed client-side response.
struct HttpResponse {
  int Status = 0;
  std::map<std::string, std::string> Headers;
  std::string Body;
};

/// Blocking keep-alive client for driving the service: the load generator
/// opens one per client thread and reuses the connection across thousands
/// of requests. Not thread-safe; one connection per thread.
class HttpClient {
public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient &) = delete;
  HttpClient &operator=(const HttpClient &) = delete;

  /// Connects to \p Host:\p Port (numeric or resolvable name). Returns
  /// false and sets \p Err on failure. Reconnecting an open client closes
  /// the old connection first.
  bool connect(const std::string &Host, uint16_t Port, std::string &Err);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends one request and reads the response. On transport failure
  /// (server closed the keep-alive connection, timeout) returns false and
  /// closes; callers retry by reconnecting.
  bool request(const std::string &Method, const std::string &Path,
               const std::string &Body, HttpResponse &Out, std::string &Err);

private:
  int Fd = -1;
  std::string Host;
  uint16_t Port = 0;
  std::string Carry;
};

} // namespace service
} // namespace lgen

#endif // LGEN_SERVICE_HTTP_H

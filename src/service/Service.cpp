//===- Service.cpp - Threaded HTTP front end for the Mediator -------------===//

#include "service/Service.h"

#include "mediator/Mediator.h"
#include "service/Http.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace lgen;
using namespace lgen::service;
using mediator::ApiError;
using mediator::Envelope;
using mediator::ErrorCode;
using json::Object;
using json::Value;

namespace {

support::Metrics::Counter &acceptedCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.conn.accepted");
  return C;
}
support::Metrics::Counter &shedCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.conn.shed");
  return C;
}
support::Metrics::Counter &requestCounter() {
  static support::Metrics::Counter &C =
      support::Metrics::global().counter("service.http.requests");
  return C;
}
support::Metrics::Gauge &activeGauge() {
  static support::Metrics::Gauge &G =
      support::Metrics::global().gauge("service.conn.active");
  return G;
}

/// Serialized error body for responses produced outside the envelope layer
/// (transport-level failures, sheds, unknown paths).
std::string plainErrorBody(ErrorCode Code, const std::string &Message) {
  Object O;
  O["error"] = mediator::makeError(Code, Message);
  return Value(std::move(O)).serialize();
}

/// The HTTP status a protocol response maps to: 200 for results, the error
/// table's status for errors.
int statusOfResponse(const Value &Response) {
  if (!Response.isObject())
    return 200;
  const Value &Err = Response["error"];
  if (!Err.isObject())
    return 200;
  ErrorCode Code;
  if (!mediator::errorFromCode(
          static_cast<int64_t>(Err.getNumber("code", 500)), Code))
    return 500;
  return mediator::errorHttpStatus(Code);
}

} // namespace

Service::Service(ServiceConfig C, mediator::Mediator *M)
    : Config(std::move(C)), Med(M), Queue(Config.Queue) {
  if (Config.ConnWorkers == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Config.ConnWorkers = HW ? HW : 4;
  }
  // Pre-register the connection instruments so /metrics always carries
  // them, even before any traffic.
  acceptedCounter();
  shedCounter();
  requestCounter();
  activeGauge().set(0);
}

Service::~Service() { stop(); }

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

bool Service::start(std::string &Err) {
  if (Running) {
    Err = "service already running";
    return false;
  }
  Stopping = false;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "cannot parse host address '" + Config.Host + "' (IPv4 only)";
    ::close(Fd);
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "bind " + Config.Host + ":" + std::to_string(Config.Port) + ": " +
          std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 512) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) ==
      0)
    BoundPort = ntohs(Bound.sin_port);

  ListenFd = Fd;
  Pool = std::make_unique<support::ThreadPool>(Config.ConnWorkers);
  Running = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  // Every pool lane (workers + the runner itself) becomes a connection
  // worker; parallelFor returns only at shutdown, when all lanes exit.
  RunnerThread = std::thread([this] {
    Pool->parallelFor(Pool->concurrency(),
                      [this](size_t) { connectionLoop(); });
  });
  return true;
}

void Service::stop() {
  if (!Running)
    return;
  Stopping = true;
  // Unblock accept(). Claim the fd atomically so the accept loop never
  // sees a half-closed descriptor number.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
  ConnReady.notify_all();
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (RunnerThread.joinable())
    RunnerThread.join();
  Pool.reset();
  // Connections still queued never reached a worker; close them.
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (int Fd : ConnQueue)
    ::close(Fd);
  ConnQueue.clear();
  Running = false;
}

void Service::drain() {
  Queue.drain();
  Queue.flushCache();
}

//===----------------------------------------------------------------------===//
// Accept + connection workers
//===----------------------------------------------------------------------===//

void Service::acceptLoop() {
  for (;;) {
    int LFd = ListenFd.load();
    if (LFd < 0)
      return; // stop() already claimed the listener
    int Fd = ::accept(LFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener closed (shutdown) or fatal
    }
    if (Stopping) {
      ::close(Fd);
      return;
    }
    timeval TV{};
    TV.tv_sec = Config.RecvTimeoutMs / 1000;
    TV.tv_usec = (Config.RecvTimeoutMs % 1000) * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

    bool Shed = false;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (ConnQueue.size() >= Config.ConnQueueMax) {
        Shed = true;
        ++ShedCount;
      } else {
        ConnQueue.push_back(Fd);
        ++AcceptedCount;
      }
    }
    if (Shed) {
      // Accept-side backpressure: answer 429 immediately and close rather
      // than letting the connection wait unbounded for a worker.
      shedCounter().add();
      writeHttpResponse(Fd, 429,
                        plainErrorBody(ErrorCode::TooManyRequests,
                                       "connection queue full; retry later"),
                        "application/json", /*KeepAlive=*/false);
      ::close(Fd);
    } else {
      acceptedCounter().add();
      ConnReady.notify_one();
    }
  }
}

void Service::connectionLoop() {
  for (;;) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(ConnMutex);
      ConnReady.wait(Lock,
                     [&] { return Stopping || !ConnQueue.empty(); });
      if (ConnQueue.empty())
        return; // Stopping and drained
      Fd = ConnQueue.front();
      ConnQueue.pop_front();
      ++ActiveConns;
      activeGauge().set(static_cast<int64_t>(ActiveConns));
    }
    serveConnection(Fd);
    ::close(Fd);
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      --ActiveConns;
      activeGauge().set(static_cast<int64_t>(ActiveConns));
    }
  }
}

void Service::serveConnection(int Fd) {
  std::string Carry;
  while (!Stopping) {
    HttpRequest Req;
    HttpRead R = readHttpRequest(Fd, Req, Carry);
    if (R == HttpRead::Closed)
      return;
    if (R == HttpRead::Timeout) {
      // Idle keep-alive connections just go away; a stalled mid-request
      // read already consumed bytes, so answer 408 first.
      if (!Carry.empty())
        writeHttpResponse(Fd, 408,
                          plainErrorBody(ErrorCode::InstructionTimeoutError,
                                         "timed out reading request"),
                          "application/json", false);
      return;
    }
    if (R == HttpRead::TooLarge) {
      writeHttpResponse(Fd, 413,
                        plainErrorBody(ErrorCode::BadRequest,
                                       "request exceeds size limits"),
                        "application/json", false);
      return;
    }
    if (R != HttpRead::Ok) {
      writeHttpResponse(Fd, 400,
                        plainErrorBody(ErrorCode::BadRequest,
                                       "malformed HTTP request"),
                        "application/json", false);
      return;
    }

    requestCounter().add();
    int Status = 200;
    std::string Body;
    if (Req.Path == "/rpc") {
      if (Req.Method != "POST") {
        Status = 405;
        Body = plainErrorBody(ErrorCode::InstructionExecutionError,
                              "/rpc takes POST");
      } else {
        Value Request;
        std::string ParseErr;
        if (!json::parse(Req.Body, Request, ParseErr)) {
          Status = 400;
          Body = mediator::makeErrorResponse(nullptr, ErrorCode::BadRequest,
                                             "malformed JSON: " + ParseErr)
                     .serialize();
        } else {
          Body = handleRpc(Request, &Status).serialize();
        }
      }
    } else if (Req.Path == "/healthz") {
      if (Req.Method != "GET") {
        Status = 405;
        Body = plainErrorBody(ErrorCode::InstructionExecutionError,
                              "/healthz takes GET");
      } else {
        Body = health().serialize();
      }
    } else if (Req.Path == "/metrics") {
      if (Req.Method != "GET") {
        Status = 405;
        Body = plainErrorBody(ErrorCode::InstructionExecutionError,
                              "/metrics takes GET");
      } else {
        Body = support::Metrics::global().snapshot().toJson().serialize();
      }
    } else {
      Status = 404;
      Body = plainErrorBody(ErrorCode::MethodNotFound,
                            "no route '" + Req.Path + "'");
    }

    if (!writeHttpResponse(Fd, Status, Body, "application/json",
                           Req.KeepAlive))
      return;
    if (!Req.KeepAlive)
      return;
  }
}

//===----------------------------------------------------------------------===//
// Protocol dispatch
//===----------------------------------------------------------------------===//

Value Service::handleRpc(const Value &Request, int *HttpStatus) {
  Envelope E;
  ErrorCode Code;
  std::string Message;
  Value Response;
  if (!mediator::parseEnvelope(Request, E, Code, Message)) {
    Response = mediator::makeErrorResponse(&E, Code, Message);
  } else if (E.Method.compare(0, 4, "job.") == 0) {
    // The Mediator speaks the same envelope; forward verbatim.
    if (Med)
      Response = Med->handle(Request);
    else
      Response = mediator::makeErrorResponse(
          &E, ErrorCode::MethodNotFound,
          "no mediator attached; job.* methods unavailable");
  } else {
    try {
      Response = mediator::makeResultResponse(E, dispatch(E));
    } catch (const ApiError &Ex) {
      Response = mediator::makeErrorResponse(&E, Ex.code(), Ex.what());
    } catch (const std::exception &Ex) {
      Response = mediator::makeErrorResponse(&E, ErrorCode::InternalError,
                                             Ex.what());
    }
  }
  if (HttpStatus)
    *HttpStatus = statusOfResponse(Response);
  return Response;
}

Value Service::dispatch(const Envelope &E) {
  if (E.Method == "compile.submit")
    return Queue.submit(E.Session, E.Params);
  if (E.Method == "compile.result")
    return Queue.result(E.Session, E.Params);
  if (E.Method == "compile.jobs")
    return Queue.jobs(E.Session);
  if (E.Method == "service.health")
    return health();
  if (E.Method == "service.metrics")
    return support::Metrics::global().snapshot().toJson();
  throw ApiError(ErrorCode::MethodNotFound,
                 "unknown method '" + E.Method + "'");
}

Value Service::health() const {
  CompileQueue::Stats S = Queue.stats();
  Object Q;
  Q["queued"] = static_cast<double>(S.Queued);
  Q["compiling"] = static_cast<double>(S.Compiling);
  Q["finished"] = static_cast<double>(S.Finished);
  Q["highWater"] = static_cast<double>(S.HighWater);
  Q["workers"] = static_cast<double>(S.Workers);
  Q["workersBusy"] = static_cast<double>(S.WorkersBusy);
  Q["submitted"] = static_cast<double>(S.Submitted);
  Q["rejected"] = static_cast<double>(S.Rejected);

  Object Conns;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conns["active"] = static_cast<double>(ActiveConns);
    Conns["queued"] = static_cast<double>(ConnQueue.size());
    Conns["accepted"] = static_cast<double>(AcceptedCount);
    Conns["shed"] = static_cast<double>(ShedCount);
  }
  Conns["workers"] = static_cast<double>(Config.ConnWorkers);

  Object H;
  H["status"] = Stopping            ? "stopping"
                : S.Queued >= S.HighWater ? "saturated"
                                          : "ok";
  H["queue"] = Value(std::move(Q));
  H["connections"] = Value(std::move(Conns));
  return Value(std::move(H));
}

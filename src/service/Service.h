//===- Service.h - Threaded HTTP front end for the Mediator ----*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service: a multi-threaded TCP/HTTP front end over the
/// Mediator protocol v1. One blocking-accept listener thread hands
/// accepted connections to a bounded queue; connection workers — lanes of
/// a \c support::ThreadPool — pop connections and speak keep-alive
/// HTTP/1.1 over them. Three routes:
///
///   POST /rpc      protocol-v1 envelope (job.*, compile.*, service.*)
///   GET  /healthz  queue depth, worker occupancy, admission state
///   GET  /metrics  support::Metrics snapshot of the whole process
///
/// compile.* methods run through the \c CompileQueue (async, batched,
/// admission-controlled); job.* methods are forwarded to an attached
/// \c mediator::Mediator; service.* methods answer from in-process
/// snapshots. HTTP status codes come from the protocol's single error
/// table (errorHttpStatus) — a saturated queue answers 429 with
/// retryable:true, a request that times out on the wire answers 408.
///
/// Backpressure exists at two doors: the connection queue (accept-side; a
/// full queue sheds the connection with an immediate 429 and close) and
/// the compile queue's high-water mark (request-side; the envelope carries
/// the structured retryable error).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SERVICE_SERVICE_H
#define LGEN_SERVICE_SERVICE_H

#include "service/CompileQueue.h"
#include "support/Json.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace lgen {

namespace support {
class ThreadPool;
}
namespace mediator {
class Mediator;
}

namespace service {

struct ServiceConfig {
  /// Address to bind; the default only accepts local connections.
  std::string Host = "127.0.0.1";
  /// 0 binds an ephemeral port — read the real one back via port().
  uint16_t Port = 0;
  /// Connection-worker lanes (a ThreadPool; each lane serves one
  /// connection at a time). 0 = hardware concurrency.
  unsigned ConnWorkers = 8;
  /// Accepted connections waiting for a worker beyond this are shed with
  /// an immediate 429 and close.
  size_t ConnQueueMax = 1024;
  /// Per-socket receive timeout; an idle keep-alive connection is closed,
  /// a connection that stalls mid-request gets a 408.
  int RecvTimeoutMs = 10000;
  /// The async compile queue behind compile.*.
  CompileQueueConfig Queue;
};

class Service {
public:
  /// \p Med (optional, unowned, must outlive the service) serves the
  /// job.* methods; without one they answer MethodNotFound.
  explicit Service(ServiceConfig Config = ServiceConfig(),
                   mediator::Mediator *Med = nullptr);
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Binds, listens, and starts the accept + worker threads. False with
  /// \p Err when the address cannot be bound.
  bool start(std::string &Err);

  /// Stops accepting, closes queued and in-flight connections, joins all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  /// Orderly-shutdown epilogue: waits for every queued compile to finish,
  /// then persists the shared kernel cache. Call after stop() (no new
  /// submits can arrive) so a SIGINT mid-batch does not discard tuned
  /// plans.
  void drain();

  bool running() const { return Running; }

  /// The bound port (useful with Port = 0).
  uint16_t port() const { return BoundPort; }

  CompileQueue &queue() { return Queue; }

  /// Dispatches one protocol-v1 request exactly as POST /rpc would,
  /// without sockets — the unit tests drive this. \p HttpStatus (optional)
  /// receives the status the HTTP layer would answer.
  json::Value handleRpc(const json::Value &Request,
                        int *HttpStatus = nullptr);

  /// The /healthz document.
  json::Value health() const;

private:
  void acceptLoop();
  void connectionLoop();
  void serveConnection(int Fd);
  json::Value dispatch(const mediator::Envelope &E);

  ServiceConfig Config;
  mediator::Mediator *Med;
  CompileQueue Queue;

  /// Atomic: stop() clears it from another thread while acceptLoop is
  /// blocked in (or about to call) accept() on it.
  std::atomic<int> ListenFd{-1};
  uint16_t BoundPort = 0;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};

  std::unique_ptr<support::ThreadPool> Pool;
  std::thread AcceptThread;
  std::thread RunnerThread; ///< Hosts Pool->parallelFor over the lanes.

  mutable std::mutex ConnMutex;
  std::condition_variable ConnReady;
  std::deque<int> ConnQueue;
  size_t ActiveConns = 0;
  uint64_t AcceptedCount = 0;
  uint64_t ShedCount = 0;
};

} // namespace service
} // namespace lgen

#endif // LGEN_SERVICE_SERVICE_H

//===- Reference.h - Naive reference evaluation of BLACs -------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A straightforward evaluator for LL programs, used the way the thesis
/// uses naive implementations (§5.1.4): "the correctness of all the
/// experiments ... was validated by comparing their calculated results with
/// the corresponding results of equivalent naive implementations". It is
/// also the semantic ground truth for every ν-BLAC and end-to-end test.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_LL_REFERENCE_H
#define LGEN_LL_REFERENCE_H

#include "ll/AST.h"

#include <map>
#include <vector>

namespace lgen {
namespace ll {

/// Row-major matrix value used by the reference evaluator.
struct MatrixValue {
  int64_t Rows = 0;
  int64_t Cols = 0;
  std::vector<float> Data;

  MatrixValue() = default;
  MatrixValue(int64_t Rows, int64_t Cols)
      : Rows(Rows), Cols(Cols),
        Data(static_cast<size_t>(Rows * Cols), 0.0f) {}

  float &at(int64_t R, int64_t C) { return Data[R * Cols + C]; }
  float at(int64_t R, int64_t C) const { return Data[R * Cols + C]; }
};

/// Operand name → value binding.
using Bindings = std::map<std::string, MatrixValue>;

/// Evaluates \p P over \p Inputs (which must bind every operand mentioned
/// in the right-hand side, including the output when it is read) and
/// returns the output value.
MatrixValue evaluate(const Program &P, const Bindings &Inputs);

/// Fills \p M with a deterministic pseudo-random pattern from \p Rng,
/// values in [-1, 1).
void fillRandom(MatrixValue &M, Rng &Rng);

/// Maximum absolute element difference.
float maxAbsDiff(const MatrixValue &A, const MatrixValue &B);

} // namespace ll
} // namespace lgen

#endif // LGEN_LL_REFERENCE_H

//===- Parser.cpp - Parser for the LL input DSL ----------------*- C++ -*-===//

#include "ll/Parser.h"

#include <cctype>

using namespace lgen;
using namespace lgen::ll;

namespace {

enum class TokKind {
  Unknown,
  Ident,
  Number,
  LParen,
  RParen,
  Comma,
  Semi,
  Equals,
  Plus,
  Star,
  Tick,
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t Value = 0;
  size_t Pos = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  Token next() {
    while (Pos < Src.size() && std::isspace(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
    Token T;
    T.Pos = Pos;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      T.Kind = TokKind::Ident;
      T.Text = Src.substr(Start, Pos - Start);
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      T.Kind = TokKind::Number;
      T.Text = Src.substr(Start, Pos - Start);
      T.Value = std::stoll(T.Text);
      return T;
    }
    ++Pos;
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      T.Kind = TokKind::RParen;
      return T;
    case ',':
      T.Kind = TokKind::Comma;
      return T;
    case ';':
      T.Kind = TokKind::Semi;
      return T;
    case '=':
      T.Kind = TokKind::Equals;
      return T;
    case '+':
      T.Kind = TokKind::Plus;
      return T;
    case '*':
      T.Kind = TokKind::Star;
      return T;
    case '\'':
      T.Kind = TokKind::Tick;
      return T;
    default:
      T.Kind = TokKind::Unknown;
      T.Text = std::string(1, C);
      T.Pos = Pos - 1;
      return T;
    }
  }

private:
  const std::string &Src;
  size_t Pos = 0;
};

class Parser {
public:
  Parser(const std::string &Source, Program &P, std::string &Err)
      : Lex(Source), P(P), Err(Err) {
    advance();
  }

  bool run() {
    while (Cur.Kind == TokKind::Ident &&
           (Cur.Text == "Matrix" || Cur.Text == "Vector" ||
            Cur.Text == "RowVector" || Cur.Text == "Scalar")) {
      if (!parseDecl())
        return false;
    }
    return parseEquation();
  }

private:
  void advance() { Cur = Lex.next(); }

  bool fail(const std::string &Message) {
    Err = Message + " (at offset " + std::to_string(Cur.Pos) + ")";
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (Cur.Kind != K)
      return fail(std::string("expected ") + What);
    advance();
    return true;
  }

  bool parseDecl() {
    std::string Keyword = Cur.Text;
    advance();
    if (Cur.Kind != TokKind::Ident)
      return fail("expected operand name after '" + Keyword + "'");
    Operand O;
    O.Name = Cur.Text;
    advance();
    if (Keyword == "Scalar") {
      O.Kind = OperandKind::Scalar;
      O.Rows = O.Cols = 1;
    } else if (Keyword == "Vector" || Keyword == "RowVector") {
      O.Kind = OperandKind::Vector;
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (Cur.Kind != TokKind::Number)
        return fail("expected vector length");
      int64_t N = Cur.Value;
      advance();
      if (!expect(TokKind::RParen, "')'"))
        return false;
      if (Keyword == "Vector") {
        O.Rows = N;
        O.Cols = 1;
      } else {
        O.Rows = 1;
        O.Cols = N;
      }
    } else { // Matrix
      O.Kind = OperandKind::Matrix;
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (Cur.Kind != TokKind::Number)
        return fail("expected row count");
      O.Rows = Cur.Value;
      advance();
      if (!expect(TokKind::Comma, "','"))
        return false;
      if (Cur.Kind != TokKind::Number)
        return fail("expected column count");
      O.Cols = Cur.Value;
      advance();
      if (!expect(TokKind::RParen, "')'"))
        return false;
    }
    if (O.Rows <= 0 || O.Cols <= 0)
      return fail("operand '" + O.Name + "' has a non-positive dimension");
    if (P.findOperand(O.Name))
      return fail("operand '" + O.Name + "' declared twice");
    P.Operands.push_back(std::move(O));
    return expect(TokKind::Semi, "';' after declaration");
  }

  bool parseEquation() {
    if (Cur.Kind != TokKind::Ident)
      return fail("expected output operand name");
    P.OutputName = Cur.Text;
    advance();
    if (!expect(TokKind::Equals, "'='"))
      return false;
    ExprPtr Rhs = parseSum();
    if (!Rhs)
      return false;
    if (Cur.Kind == TokKind::Semi)
      advance();
    if (Cur.Kind != TokKind::Eof)
      return fail("trailing input after equation");
    P.Rhs = std::move(Rhs);
    return true;
  }

  ExprPtr parseSum() {
    ExprPtr L = parseProduct();
    if (!L)
      return nullptr;
    while (Cur.Kind == TokKind::Plus) {
      advance();
      ExprPtr R = parseProduct();
      if (!R)
        return nullptr;
      L = Expr::add(std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseProduct() {
    ExprPtr L = parsePostfix();
    if (!L)
      return nullptr;
    while (Cur.Kind == TokKind::Star) {
      advance();
      ExprPtr R = parsePostfix();
      if (!R)
        return nullptr;
      L = combineProduct(std::move(L), std::move(R));
      if (!L)
        return nullptr;
    }
    return L;
  }

  /// Classifies a product as scalar or matrix multiplication based on the
  /// declared operand shapes (scalarness is syntactically visible).
  ExprPtr combineProduct(ExprPtr L, ExprPtr R) {
    if (isScalarExpr(*L))
      return Expr::smul(std::move(L), std::move(R));
    if (isScalarExpr(*R))
      return Expr::smul(std::move(R), std::move(L));
    return Expr::mul(std::move(L), std::move(R));
  }

  /// Conservative scalar-shape check before dimension inference runs: a
  /// node is scalar if it is a declared Scalar, a transpose of a scalar,
  /// or a product/sum of scalars. Unknown names resolve later; treat them
  /// as non-scalar here and let inference flag genuine errors.
  bool isScalarExpr(const Expr &E) {
    switch (E.getKind()) {
    case ExprKind::Ref: {
      const Operand *O = P.findOperand(E.getRefName());
      return O && O->isScalar();
    }
    case ExprKind::Trans:
      return isScalarExpr(E.child(0));
    case ExprKind::Add:
    case ExprKind::SMul:
      return isScalarExpr(E.child(E.numChildren() - 1)) &&
             isScalarExpr(E.child(0));
    case ExprKind::Mul:
      // x' * y style dot products have matrix kids but need inference to
      // see the 1×1 shape; the parser cannot decide. Treated as non-scalar.
      return false;
    default:
      return false;
    }
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parseAtom();
    if (!E)
      return nullptr;
    while (Cur.Kind == TokKind::Tick) {
      advance();
      E = Expr::trans(std::move(E));
    }
    return E;
  }

  ExprPtr parseAtom() {
    if (Cur.Kind == TokKind::LParen) {
      advance();
      ExprPtr E = parseSum();
      if (!E)
        return nullptr;
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (Cur.Kind == TokKind::Ident) {
      ExprPtr E = Expr::ref(Cur.Text);
      advance();
      return E;
    }
    fail("expected operand or '('");
    return nullptr;
  }

  Lexer Lex;
  Token Cur;
  Program &P;
  std::string &Err;
};

} // namespace

bool ll::parseProgram(const std::string &Source, Program &P,
                      std::string &Err) {
  P = Program();
  Parser Ps(Source, P, Err);
  if (!Ps.run())
    return false;
  return inferDims(P, Err);
}

Program ll::parseProgramOrDie(const std::string &Source) {
  Program P;
  std::string Err;
  if (!parseProgram(Source, P, Err))
    reportFatalError("failed to parse BLAC '" + Source + "': " + Err);
  return P;
}

//===- Parser.h - Parser for the LL input DSL ------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text frontend for BLACs. Input consists of operand declarations followed
/// by a single equation:
///
/// \code
///   Matrix A(10, 20); Vector x(20); Vector y(10);
///   Scalar alpha; Scalar beta;
///   y = alpha * A * x + beta * y;
/// \endcode
///
/// Vectors are column vectors; transposition is the postfix tick
/// (`x' * A * y` is a 1×1 dot-like BLAC). Multiplication binds tighter
/// than addition and is left-associative; parentheses group as usual.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_LL_PARSER_H
#define LGEN_LL_PARSER_H

#include "ll/AST.h"

#include <string>

namespace lgen {
namespace ll {

/// Parses \p Source into \p P and runs dimension inference. On failure
/// returns false and describes the problem in \p Err.
bool parseProgram(const std::string &Source, Program &P, std::string &Err);

/// Convenience wrapper that aborts on parse errors — for tests and
/// examples with known-good inputs.
Program parseProgramOrDie(const std::string &Source);

} // namespace ll
} // namespace lgen

#endif // LGEN_LL_PARSER_H

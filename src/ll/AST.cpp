//===- AST.cpp - The LL linear algebra language ----------------*- C++ -*-===//

#include "ll/AST.h"

#include <sstream>

using namespace lgen;
using namespace lgen::ll;

const char *ll::exprKindName(ExprKind K) {
  switch (K) {
  case ExprKind::Ref:
    return "ref";
  case ExprKind::Add:
    return "add";
  case ExprKind::Mul:
    return "mul";
  case ExprKind::SMul:
    return "smul";
  case ExprKind::Trans:
    return "trans";
  case ExprKind::MVH:
    return "mvh";
  case ExprKind::RR:
    return "rr";
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

ExprPtr Expr::ref(std::string Name) {
  ExprPtr E(new Expr(ExprKind::Ref));
  E->RefName = std::move(Name);
  return E;
}

ExprPtr Expr::add(ExprPtr L, ExprPtr R) {
  ExprPtr E(new Expr(ExprKind::Add));
  E->Children.push_back(std::move(L));
  E->Children.push_back(std::move(R));
  return E;
}

ExprPtr Expr::mul(ExprPtr L, ExprPtr R) {
  ExprPtr E(new Expr(ExprKind::Mul));
  E->Children.push_back(std::move(L));
  E->Children.push_back(std::move(R));
  return E;
}

ExprPtr Expr::smul(ExprPtr Scalar, ExprPtr M) {
  ExprPtr E(new Expr(ExprKind::SMul));
  E->Children.push_back(std::move(Scalar));
  E->Children.push_back(std::move(M));
  return E;
}

ExprPtr Expr::trans(ExprPtr A) {
  ExprPtr E(new Expr(ExprKind::Trans));
  E->Children.push_back(std::move(A));
  return E;
}

ExprPtr Expr::mvh(ExprPtr A, ExprPtr X) {
  ExprPtr E(new Expr(ExprKind::MVH));
  E->Children.push_back(std::move(A));
  E->Children.push_back(std::move(X));
  return E;
}

ExprPtr Expr::rr(ExprPtr A) {
  ExprPtr E(new Expr(ExprKind::RR));
  E->Children.push_back(std::move(A));
  return E;
}

ExprPtr Expr::swapChild(unsigned I, ExprPtr New) {
  assert(I < Children.size() && "child index out of range");
  ExprPtr Old = std::move(Children[I]);
  Children[I] = std::move(New);
  return Old;
}

ExprPtr Expr::clone() const {
  ExprPtr E(new Expr(Kind));
  E->RefName = RefName;
  E->Rows = Rows;
  E->Cols = Cols;
  for (const ExprPtr &Child : Children)
    E->Children.push_back(Child->clone());
  return E;
}

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::Ref:
    return RefName;
  case ExprKind::Add:
    return "(" + child(0).str() + " + " + child(1).str() + ")";
  case ExprKind::Mul:
    return "(" + child(0).str() + " * " + child(1).str() + ")";
  case ExprKind::SMul:
    return "(" + child(0).str() + " * " + child(1).str() + ")";
  case ExprKind::Trans:
    return child(0).str() + "'";
  case ExprKind::MVH:
    return "(" + child(0).str() + " (.) " + child(1).str() + ")";
  case ExprKind::RR:
    return "(+)" + child(0).str();
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

const Operand *Program::findOperand(const std::string &Name) const {
  for (const Operand &O : Operands)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

const Operand &Program::outputOperand() const {
  const Operand *O = findOperand(OutputName);
  assert(O && "output operand not declared");
  return *O;
}

namespace {

bool mentionsName(const Expr &E, const std::string &Name) {
  if (E.getKind() == ExprKind::Ref)
    return E.getRefName() == Name;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    if (mentionsName(E.child(I), Name))
      return true;
  return false;
}

} // namespace

bool Program::outputIsInput() const {
  return Rhs && mentionsName(*Rhs, OutputName);
}

Program Program::clone() const {
  Program P;
  P.Operands = Operands;
  P.OutputName = OutputName;
  P.Rhs = Rhs ? Rhs->clone() : nullptr;
  return P;
}

std::string Program::str() const {
  std::ostringstream OS;
  for (const Operand &O : Operands) {
    switch (O.Kind) {
    case OperandKind::Matrix:
      OS << "Matrix " << O.Name << "(" << O.Rows << ", " << O.Cols << "); ";
      break;
    case OperandKind::Vector:
      OS << "Vector " << O.Name << "(" << O.Rows << "); ";
      break;
    case OperandKind::Scalar:
      OS << "Scalar " << O.Name << "; ";
      break;
    }
  }
  OS << OutputName << " = " << (Rhs ? Rhs->str() : "<null>");
  return OS.str();
}

namespace {

bool inferExpr(const Program &P, Expr &E, std::string &Err) {
  if (E.getKind() == ExprKind::Ref) {
    const Operand *O = P.findOperand(E.getRefName());
    if (!O) {
      Err = "unknown operand '" + E.getRefName() + "'";
      return false;
    }
    E.setDims(O->Rows, O->Cols);
    return true;
  }
  for (unsigned I = 0; I != E.numChildren(); ++I)
    if (!inferExpr(P, E.child(I), Err))
      return false;

  const Expr *L = E.numChildren() > 0 ? &E.child(0) : nullptr;
  const Expr *R = E.numChildren() > 1 ? &E.child(1) : nullptr;
  switch (E.getKind()) {
  case ExprKind::Ref:
    LGEN_UNREACHABLE("handled above");
  case ExprKind::Add:
    if (L->rows() != R->rows() || L->cols() != R->cols()) {
      Err = "operand size mismatch in addition: " + L->str() + " is " +
            std::to_string(L->rows()) + "x" + std::to_string(L->cols()) +
            ", " + R->str() + " is " + std::to_string(R->rows()) + "x" +
            std::to_string(R->cols());
      return false;
    }
    E.setDims(L->rows(), L->cols());
    return true;
  case ExprKind::Mul:
    // Scalar factors classify the node as a scalar multiplication.
    if (L->isScalarShaped() || R->isScalarShaped()) {
      Err = "scalar factor in Mul node; parser should have built SMul";
      return false;
    }
    if (L->cols() != R->rows()) {
      Err = "operand size mismatch in product " + E.str();
      return false;
    }
    E.setDims(L->rows(), R->cols());
    return true;
  case ExprKind::SMul:
    if (!L->isScalarShaped()) {
      Err = "left operand of scalar multiplication is not scalar";
      return false;
    }
    E.setDims(R->rows(), R->cols());
    return true;
  case ExprKind::Trans:
    E.setDims(L->cols(), L->rows());
    return true;
  case ExprKind::MVH:
    if (R->cols() != 1 || R->rows() != L->cols()) {
      Err = "MVH operand mismatch in " + E.str();
      return false;
    }
    E.setDims(L->rows(), L->cols());
    return true;
  case ExprKind::RR:
    E.setDims(L->rows(), 1);
    return true;
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

} // namespace

bool ll::inferDims(Program &P, std::string &Err) {
  if (!P.Rhs) {
    Err = "program has no right-hand side";
    return false;
  }
  const Operand *Out = P.findOperand(P.OutputName);
  if (!Out) {
    Err = "undeclared output operand '" + P.OutputName + "'";
    return false;
  }
  if (!inferExpr(P, *P.Rhs, Err))
    return false;
  if (P.Rhs->rows() != Out->Rows || P.Rhs->cols() != Out->Cols) {
    Err = "right-hand side is " + std::to_string(P.Rhs->rows()) + "x" +
          std::to_string(P.Rhs->cols()) + " but output '" + P.OutputName +
          "' is " + std::to_string(Out->Rows) + "x" +
          std::to_string(Out->Cols);
    return false;
  }
  return true;
}

namespace {

double flopsOf(const Expr &E) {
  double F = 0;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    F += flopsOf(E.child(I));
  switch (E.getKind()) {
  case ExprKind::Ref:
  case ExprKind::Trans:
    return F;
  case ExprKind::Add:
  case ExprKind::SMul:
  case ExprKind::MVH:
    return F + static_cast<double>(E.rows()) * E.cols();
  case ExprKind::Mul:
    return F + 2.0 * E.rows() * E.cols() * E.child(0).cols();
  case ExprKind::RR:
    return F + static_cast<double>(E.rows()) *
                   std::max<int64_t>(0, E.child(0).cols() - 1);
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

} // namespace

double ll::flopCount(const Program &P) {
  assert(P.Rhs && "flop count of an empty program");
  return flopsOf(*P.Rhs);
}

//===- Reference.cpp - Naive reference evaluation of BLACs -----*- C++ -*-===//

#include "ll/Reference.h"

#include <cmath>

using namespace lgen;
using namespace lgen::ll;

namespace {

MatrixValue evalExpr(const Program &P, const Expr &E, const Bindings &In) {
  switch (E.getKind()) {
  case ExprKind::Ref: {
    auto It = In.find(E.getRefName());
    if (It == In.end())
      reportFatalError("reference evaluation: operand '" + E.getRefName() +
                       "' not bound");
    const MatrixValue &V = It->second;
    assert(V.Rows == E.rows() && V.Cols == E.cols() &&
           "bound value has wrong dimensions");
    return V;
  }
  case ExprKind::Add: {
    MatrixValue L = evalExpr(P, E.child(0), In);
    MatrixValue R = evalExpr(P, E.child(1), In);
    for (size_t I = 0; I != L.Data.size(); ++I)
      L.Data[I] += R.Data[I];
    return L;
  }
  case ExprKind::Mul: {
    MatrixValue L = evalExpr(P, E.child(0), In);
    MatrixValue R = evalExpr(P, E.child(1), In);
    MatrixValue Out(L.Rows, R.Cols);
    for (int64_t I = 0; I != L.Rows; ++I)
      for (int64_t J = 0; J != R.Cols; ++J) {
        float S = 0.0f;
        for (int64_t K = 0; K != L.Cols; ++K)
          S += L.at(I, K) * R.at(K, J);
        Out.at(I, J) = S;
      }
    return Out;
  }
  case ExprKind::SMul: {
    MatrixValue S = evalExpr(P, E.child(0), In);
    MatrixValue M = evalExpr(P, E.child(1), In);
    for (float &V : M.Data)
      V *= S.Data[0];
    return M;
  }
  case ExprKind::Trans: {
    MatrixValue A = evalExpr(P, E.child(0), In);
    MatrixValue Out(A.Cols, A.Rows);
    for (int64_t I = 0; I != A.Rows; ++I)
      for (int64_t J = 0; J != A.Cols; ++J)
        Out.at(J, I) = A.at(I, J);
    return Out;
  }
  case ExprKind::MVH: {
    MatrixValue A = evalExpr(P, E.child(0), In);
    MatrixValue X = evalExpr(P, E.child(1), In);
    for (int64_t I = 0; I != A.Rows; ++I)
      for (int64_t J = 0; J != A.Cols; ++J)
        A.at(I, J) *= X.Data[J];
    return A;
  }
  case ExprKind::RR: {
    MatrixValue A = evalExpr(P, E.child(0), In);
    MatrixValue Out(A.Rows, 1);
    for (int64_t I = 0; I != A.Rows; ++I) {
      float S = 0.0f;
      for (int64_t J = 0; J != A.Cols; ++J)
        S += A.at(I, J);
      Out.at(I, 0) = S;
    }
    return Out;
  }
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

} // namespace

MatrixValue ll::evaluate(const Program &P, const Bindings &Inputs) {
  assert(P.Rhs && "evaluating an empty program");
  return evalExpr(P, *P.Rhs, Inputs);
}

void ll::fillRandom(MatrixValue &M, Rng &Rng) {
  for (float &V : M.Data)
    V = static_cast<float>(Rng.nextDouble() * 2.0 - 1.0);
}

float ll::maxAbsDiff(const MatrixValue &A, const MatrixValue &B) {
  assert(A.Rows == B.Rows && A.Cols == B.Cols && "dimension mismatch");
  float Max = 0.0f;
  for (size_t I = 0; I != A.Data.size(); ++I)
    Max = std::max(Max, std::fabs(A.Data[I] - B.Data[I]));
  return Max;
}

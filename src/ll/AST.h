//===- AST.h - The LL linear algebra language ------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LL (thesis §2.1.2) is the input language of LGen: expressions over
/// fixed-size matrices, vectors, and scalars built from matrix addition,
/// matrix multiplication, transposition, and scalar multiplication, e.g.
/// `y = alpha*A*x + beta*y`. Internally every entity is a matrix — vectors
/// are n×1 (or 1×n when transposed) and scalars are 1×1.
///
/// Two additional operators exist at this level for the new matrix-vector
/// multiplication approach of §3.3: the matrix-vector Hadamard product MVH
/// (C = A ⊙ x, C[i][j] = A[i][j]·x[j]) and the row reduction RR
/// (x = ⊕A, x[i] = Σ_j A[i][j]). They are introduced by a rewrite inside
/// the compiler, never written by the user.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_LL_AST_H
#define LGEN_LL_AST_H

#include "support/Support.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lgen {
namespace ll {

/// Kind of a declared operand, as written by the user.
enum class OperandKind {
  Matrix,
  Vector, ///< Column vector (n×1).
  Scalar, ///< 1×1.
};

struct Operand {
  std::string Name;
  OperandKind Kind = OperandKind::Matrix;
  int64_t Rows = 1;
  int64_t Cols = 1;

  bool isScalar() const { return Rows == 1 && Cols == 1; }
  int64_t numElements() const { return Rows * Cols; }
};

enum class ExprKind {
  Ref,   ///< Reference to a declared operand.
  Add,   ///< Matrix addition.
  Mul,   ///< Matrix multiplication (includes MVM, dot, and outer products).
  SMul,  ///< Scalar × matrix.
  Trans, ///< Transposition.
  MVH,   ///< Matrix-vector Hadamard product (§3.3).
  RR,    ///< Row reduction (§3.3).
};

const char *exprKindName(ExprKind K);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A node of an LL expression tree, annotated with its inferred dimensions.
class Expr {
public:
  static ExprPtr ref(std::string Name);
  static ExprPtr add(ExprPtr L, ExprPtr R);
  static ExprPtr mul(ExprPtr L, ExprPtr R);
  static ExprPtr smul(ExprPtr Scalar, ExprPtr M);
  static ExprPtr trans(ExprPtr A);
  static ExprPtr mvh(ExprPtr A, ExprPtr X);
  static ExprPtr rr(ExprPtr A);

  ExprKind getKind() const { return Kind; }
  const std::string &getRefName() const {
    assert(Kind == ExprKind::Ref && "not a reference");
    return RefName;
  }
  const Expr &child(unsigned I) const {
    assert(I < Children.size() && "child index out of range");
    return *Children[I];
  }
  Expr &child(unsigned I) {
    assert(I < Children.size() && "child index out of range");
    return *Children[I];
  }
  unsigned numChildren() const { return Children.size(); }

  /// Replaces child \p I, returning the old subtree.
  ExprPtr swapChild(unsigned I, ExprPtr New);

  int64_t rows() const { return Rows; }
  int64_t cols() const { return Cols; }
  bool isScalarShaped() const { return Rows == 1 && Cols == 1; }

  void setDims(int64_t R, int64_t C) {
    Rows = R;
    Cols = C;
  }

  ExprPtr clone() const;
  std::string str() const;

private:
  Expr(ExprKind Kind) : Kind(Kind) {}

  ExprKind Kind;
  std::string RefName;
  std::vector<ExprPtr> Children;
  int64_t Rows = 0;
  int64_t Cols = 0;
};

/// A complete BLAC: operand declarations plus `Output = Rhs`.
struct Program {
  std::vector<Operand> Operands;
  std::string OutputName;
  ExprPtr Rhs;

  const Operand *findOperand(const std::string &Name) const;
  const Operand &outputOperand() const;

  /// True if the output operand also appears in the right-hand side
  /// (e.g. y = αAx + βy), making it an in/out kernel parameter.
  bool outputIsInput() const;

  Program clone() const;
  std::string str() const;
};

/// Infers and checks dimensions over the whole tree. Returns false and
/// fills \p Err on a shape error or an unknown operand name.
bool inferDims(Program &P, std::string &Err);

/// Number of floating point operations the BLAC performs, following the
/// thesis' convention (§5.1.4: "flops are deduced from the BLAC ... and the
/// size of the matrices involved"): 2mnk per m×k·k×n product, mn per
/// addition or scaling, m(n−1) per row reduction.
double flopCount(const Program &P);

} // namespace ll
} // namespace lgen

#endif // LGEN_LL_AST_H

//===- Lowering.cpp - Σ-LL → C-IR lowering ---------------------*- C++ -*-===//

#include "sll/Lowering.h"

#include "cir/Builder.h"
#include "support/Trace.h"

#include <map>

using namespace lgen;
using namespace lgen::sll;
using namespace lgen::cir;

namespace {

class KernelEmitter {
public:
  KernelEmitter(const SProgram &P, isa::NuBLACs &NB, bool Specialized,
                const std::string &Name)
      : P(P), NB(NB), Specialized(Specialized), Result{Kernel(Name), {}, {}},
        B(Result.K) {}

  LoweredKernel run() {
    for (const MatInfo &M : P.Mats) {
      ArrayKind Kind = ArrayKind::Temp;
      switch (M.Role) {
      case MatRole::Input:
        Kind = ArrayKind::Input;
        break;
      case MatRole::Output:
        Kind = ArrayKind::Output;
        break;
      case MatRole::InOut:
        Kind = ArrayKind::InOut;
        break;
      case MatRole::Temp:
        Kind = ArrayKind::Temp;
        break;
      }
      [[maybe_unused]] ArrayId Id =
          Result.K.addArray(M.Name, M.numElements(), Kind);
      assert(Id + 1 == Result.K.getNumArrays() && "array ids match mat ids");
    }
    emitNest(P.Root, 0);
    if (support::Trace *T = support::Trace::active()) {
      T->addCounter("sll.lower.nublacs", NuBlacExpansions);
      T->addCounter("sll.lower.tileops", TileOps);
      T->addCounter("sll.lower.loops", Result.Loops.size());
    }
    return std::move(Result);
  }

private:
  void emitNest(const Nest &N, unsigned Depth) {
    emitSums(N, 0, Depth);
  }

  void emitSums(const Nest &N, size_t SumIdxPos, unsigned Depth) {
    if (SumIdxPos == N.Sums.size()) {
      for (const NestItem &It : N.Items) {
        if (It.Child)
          emitNest(*It.Child, Depth);
        else
          emitOp(*It.Op);
      }
      return;
    }
    const SumIdx &Sum = N.Sums[SumIdxPos];
    B.forLoop(0, Sum.Extent, Sum.Step, [&](LoopId Id) {
      SumToLoop[Sum.Id] = Id;
      Result.Loops.push_back({Sum.tripCount(), Depth});
      Result.LoopIds.push_back(Id);
      emitSums(N, SumIdxPos + 1, Depth + 1);
    });
  }

  /// Translates a Σ-LL affine expression (over summation ids) into a C-IR
  /// affine expression (over loop ids).
  AffineExpr translateExpr(const AffineExpr &E) const {
    AffineExpr Out(E.getConstant());
    for (const auto &[SumId, Coeff] : E.getTerms()) {
      auto It = SumToLoop.find(SumId);
      assert(It != SumToLoop.end() && "summation index not in scope");
      Out = Out + AffineExpr::loopIndex(It->second, Coeff);
    }
    return Out;
  }

  isa::TileRef refOf(const TileAccess &A) const {
    const MatInfo &M = P.Mats[A.Mat];
    isa::TileRef R;
    R.Base.Array = A.Mat;
    R.Base.Offset = translateExpr(A.Row) * M.Cols + translateExpr(A.Col);
    R.RowStride = M.Cols;
    return R;
  }

  void emitOp(const TileOp &Op) {
    isa::TileRef Out = refOf(Op.Out);
    unsigned R = Op.Out.TileRows, C = Op.Out.TileCols;
    ++TileOps;
    // Everything below Copy/ZeroTile expands a ν-BLAC codelet; the two
    // exceptions are Loader/Storer-only data movement.
    if (Op.Kind != OpKind::Copy && Op.Kind != OpKind::ZeroTile)
      ++NuBlacExpansions;
    switch (Op.Kind) {
    case OpKind::Copy:
      emitCopy(refOf(Op.In[0]), Out, R, C);
      return;
    case OpKind::ZeroTile: {
      unsigned Lanes = NB.nu();
      if (C == 1 && R > 1) {
        isa::storeTileCol(B, B.zero(Lanes), Out, 0, R);
        return;
      }
      RegId Z = B.zero(Lanes);
      for (unsigned I = 0; I != R; ++I)
        isa::storeTileRow(B, Z, Out, I, C);
      return;
    }
    case OpKind::Add:
      NB.emitAdd(B, refOf(Op.In[0]), refOf(Op.In[1]), Out, R, C, Specialized);
      return;
    case OpKind::SMul:
      NB.emitScalarMul(B, refOf(Op.In[0]), refOf(Op.In[1]), Out, R, C,
                       Specialized);
      return;
    case OpKind::MatMul:
    case OpKind::MatMulAcc:
      NB.emitMatMul(B, refOf(Op.In[0]), refOf(Op.In[1]), Out, R,
                    Op.In[0].TileCols, C, Op.Kind == OpKind::MatMulAcc,
                    Specialized);
      return;
    case OpKind::Trans:
      NB.emitTranspose(B, refOf(Op.In[0]), Out, Op.In[0].TileRows,
                       Op.In[0].TileCols, Specialized);
      return;
    case OpKind::MVH:
    case OpKind::MVHAcc:
      NB.emitMVH(B, refOf(Op.In[0]), refOf(Op.In[1]), Out, R, C,
                 Op.Kind == OpKind::MVHAcc, Specialized);
      return;
    case OpKind::RR:
    case OpKind::RRAcc:
      NB.emitRR(B, refOf(Op.In[0]), Out, R, Op.In[0].TileCols,
                Op.Kind == OpKind::RRAcc, Specialized);
      return;
    case OpKind::MVM:
    case OpKind::MVMAcc:
      NB.emitMVM(B, refOf(Op.In[0]), refOf(Op.In[1]), Out, R,
                 Op.In[0].TileCols, Op.Kind == OpKind::MVMAcc, Specialized);
      return;
    }
    LGEN_UNREACHABLE("unknown tile op kind");
  }

  /// Tile copy through the Loader/Storer helpers.
  void emitCopy(isa::TileRef From, isa::TileRef To, unsigned R, unsigned C) {
    unsigned Lanes = std::max(1u, NB.nu());
    if (C == 1 && R > 1) {
      RegId V = isa::loadTileCol(B, From, 0, R, Lanes);
      isa::storeTileCol(B, V, To, 0, R);
      return;
    }
    for (unsigned I = 0; I != R; ++I) {
      RegId V = isa::loadTileRow(B, From, I, C, Lanes);
      isa::storeTileRow(B, V, To, I, C);
    }
  }

  const SProgram &P;
  isa::NuBLACs &NB;
  bool Specialized;
  LoweredKernel Result;
  Builder B;
  std::map<unsigned, LoopId> SumToLoop;
  uint64_t NuBlacExpansions = 0;
  uint64_t TileOps = 0;
};

} // namespace

LoweredKernel sll::lowerToCIR(const SProgram &P, isa::NuBLACs &NB,
                              bool Specialized,
                              const std::string &KernelName) {
  KernelEmitter E(P, NB, Specialized, KernelName);
  return E.run();
}

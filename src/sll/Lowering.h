//===- Lowering.h - Σ-LL → C-IR lowering -----------------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering of a Σ-LL program into C-IR (thesis §2.1.4): summations become
/// counted loops, tile operations become ν-BLAC codelet expansions (with
/// Loader/Storer packing via generic memory instructions), and the loops
/// introduced are recorded so the tiling layer can later unroll them.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SLL_LOWERING_H
#define LGEN_SLL_LOWERING_H

#include "cir/CIR.h"
#include "isa/NuBLACs.h"
#include "sll/SigmaLL.h"
#include "tiling/Tiling.h"

namespace lgen {
namespace sll {

struct LoweredKernel {
  cir::Kernel K;
  /// Tile loops in discovery order; parallel arrays.
  std::vector<tiling::LoopDesc> Loops;
  std::vector<cir::LoopId> LoopIds;
};

/// Lowers \p P using the ν-BLAC library \p NB. \p Specialized selects the
/// §3.4 leftover codelets where the ISA has them.
LoweredKernel lowerToCIR(const SProgram &P, isa::NuBLACs &NB,
                         bool Specialized, const std::string &KernelName);

} // namespace sll
} // namespace lgen

#endif // LGEN_SLL_LOWERING_H

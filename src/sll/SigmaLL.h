//===- SigmaLL.h - The Σ-LL intermediate language --------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Σ-LL (thesis §2.1.3) makes loops and access patterns explicit: a tiled
/// LL expression becomes nested summations whose bodies apply tile-level
/// operators to submatrices extracted by gather matrices and written back
/// by scatter matrices. We represent a Σ-LL computation as a tree of
/// *nests*: each nest introduces summation indices, and its items are
/// either tile operations (the eventual ν-BLAC invocations, with gather and
/// scatter coordinates affine in the summation indices) or child nests.
///
/// The Σ-LL level transformations of the thesis live here as well:
///  * loop fusion (merging sibling nests with identical summations, which
///    is what lets scalar replacement later remove inter-codelet arrays —
///    Figs. 2.3/2.4);
///  * loop exchange (reordering summations of a nest).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SLL_SIGMALL_H
#define LGEN_SLL_SIGMALL_H

#include "cir/CIR.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lgen {
namespace sll {

/// A summation index: iterates 0, Step, 2·Step, ... while < Extent.
struct SumIdx {
  unsigned Id = 0;
  int64_t Extent = 0;
  int64_t Step = 1;

  int64_t tripCount() const {
    return Extent <= 0 ? 0 : ceilDiv(Extent, Step);
  }
  bool operator==(const SumIdx &O) const {
    return Extent == O.Extent && Step == O.Step;
  }
};

/// Role of a matrix in the Σ-LL program.
enum class MatRole { Input, Output, InOut, Temp };

struct MatInfo {
  std::string Name;
  int64_t Rows = 1;
  int64_t Cols = 1;
  MatRole Role = MatRole::Temp;

  int64_t numElements() const { return Rows * Cols; }
  bool isParam() const { return Role != MatRole::Temp; }
};

/// Gather/scatter coordinates of a tile: the element position of its
/// top-left corner (affine in summation indices) plus its extent.
struct TileAccess {
  unsigned Mat = 0;
  cir::AffineExpr Row; ///< Affine over SumIdx ids.
  cir::AffineExpr Col;
  unsigned TileRows = 1;
  unsigned TileCols = 1;
};

/// Tile-level operators, mirroring the ν-BLAC library plus accumulating
/// variants (the peeled-first-term + accumulate structure of summations).
enum class OpKind {
  Copy,      ///< Out = In0.
  ZeroTile,  ///< Out = 0 (initialization of a reduction target).
  Add,       ///< Out = In0 + In1.
  SMul,      ///< Out = In0[0,0] * In1.
  MatMul,    ///< Out = In0 · In1.
  MatMulAcc, ///< Out += In0 · In1.
  Trans,     ///< Out = In0^T.
  MVH,       ///< Out = In0 ⊙ In1 (§3.3).
  MVHAcc,    ///< Out += In0 ⊙ In1.
  RR,        ///< Out = ⊕In0 (§3.3).
  RRAcc,     ///< Out += ⊕In0.
  MVM,       ///< Out = In0 · In1 (In1 a column tile).
  MVMAcc,    ///< Out += In0 · In1.
};

const char *opKindName(OpKind K);

struct TileOp {
  OpKind Kind = OpKind::Copy;
  std::vector<TileAccess> In;
  TileAccess Out;
};

struct Nest;

/// Either a tile operation or a nested summation.
struct NestItem {
  std::optional<TileOp> Op;
  std::unique_ptr<Nest> Child;

  /*implicit*/ NestItem(TileOp O) : Op(std::move(O)) {}
  /*implicit*/ NestItem(std::unique_ptr<Nest> N) : Child(std::move(N)) {}
};

struct Nest {
  std::vector<SumIdx> Sums;
  std::vector<NestItem> Items;
};

/// A whole Σ-LL computation.
struct SProgram {
  std::vector<MatInfo> Mats;
  Nest Root; ///< Root nest; its Sums list is empty.
  unsigned NextSumId = 0;

  unsigned addMat(std::string Name, int64_t Rows, int64_t Cols, MatRole Role);
  SumIdx newSum(int64_t Extent, int64_t Step);

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Σ-LL transformations
//===----------------------------------------------------------------------===//

/// Loop fusion: merges sibling nests with identical summation signatures
/// when no dependence is violated, recursively. Returns the number of
/// merges performed.
unsigned fuseNests(SProgram &P);

/// Loop exchange: permutes the summations of every nest that carries more
/// than one summation index according to \p OuterFirst (true keeps the
/// construction order, false reverses it). Tile-op bodies are oblivious to
/// the order, so any permutation is legal at this level.
void exchangeLoops(SProgram &P, bool Reverse);

} // namespace sll
} // namespace lgen

#endif // LGEN_SLL_SIGMALL_H

//===- Translate.h - LL → Σ-LL translation (tiling + Σ rules) --*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation of a tiled LL program into Σ-LL (thesis §2.1.2–2.1.3): each
/// LL operator becomes summations over ν-tiles with gather/scatter
/// accesses. Dimensions split into a full-tile region (a summation) and at
/// most one leftover region (fixed coordinates), honoring the restriction
/// that leftovers appear in at most one tiling level. Reductions follow the
/// peel-first-term-then-accumulate scheme, which is how the "sum over k"
/// of expression (2.4) materializes without a separate zero-initialization.
///
/// When the new matrix-vector multiplication approach of §3.3 is enabled,
/// A·x products are lowered according to equation (3.8): an outer summation
/// over row tiles whose body accumulates matrix-vector Hadamard products
/// into a ν×ν scratch and applies one row reduction per row tile — moving
/// the expensive horizontal adds out of the inner summation.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_SLL_TRANSLATE_H
#define LGEN_SLL_TRANSLATE_H

#include "ll/AST.h"
#include "sll/SigmaLL.h"

namespace lgen {
namespace sll {

struct TranslateOptions {
  /// Vector tile size (1 generates scalar tiling for ISA-less targets).
  unsigned Nu = 4;
  /// Lower A·x via MVH + RR (§3.3) instead of the classic MVM ν-BLAC.
  bool NewMVM = false;
};

/// Translates \p P (dimensions already inferred) into a Σ-LL program.
/// Kernel parameter matrices appear first in the result's matrix table, in
/// the declaration order of \p P.
SProgram translate(const ll::Program &P, const TranslateOptions &Opts);

} // namespace sll
} // namespace lgen

#endif // LGEN_SLL_TRANSLATE_H

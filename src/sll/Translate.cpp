//===- Translate.cpp - LL → Σ-LL translation (tiling + Σ rules) ----------===//

#include "sll/Translate.h"

#include "support/Trace.h"
#include "tiling/Tiling.h"

#include <functional>
#include <map>

using namespace lgen;
using namespace lgen::sll;
using cir::AffineExpr;

namespace {

/// A region of one tiled dimension: either the full-tile part (iterated by
/// a summation of Extent elements with step ν) or the fixed leftover part.
struct Region {
  bool IsLoop = false;
  int64_t Begin = 0;   ///< Fixed regions: element coordinate.
  int64_t Extent = 0;  ///< Loop regions: total elements covered.
  unsigned Tile = 1;   ///< Tile extent in this dimension.
};

std::vector<Region> regionsOf(int64_t Dim, unsigned Nu) {
  tiling::DimSplit S = tiling::splitDim(Dim, Nu);
  std::vector<Region> Rs;
  // A full-tile loop region exists only when there is at least one full
  // tile: a dimension below ν (FullTiles == 0) contributes the leftover
  // region alone, so no empty summation is ever constructed for it. The
  // leftover tile still reaches the vector ν-BLACs — its partial extent
  // lowers through the masked/lane memory-map path, not scalar code.
  if (S.FullTiles > 0)
    Rs.push_back({true, 0, S.FullTiles * Nu, Nu});
  if (S.Leftover > 0)
    Rs.push_back({false, S.FullTiles * Nu, 0,
                  static_cast<unsigned>(S.Leftover)});
  assert((!Rs.empty() || Dim == 0) && "non-empty dimension lost its regions");
  return Rs;
}

/// Σ-LL rule-application counts for the trace (thesis §2.1.2/§2.1.3: each
/// tile op is one application of an operator's tiling rule).
void countNest(const Nest &N, uint64_t &Ops, uint64_t &Nests,
               uint64_t &Sums) {
  Sums += N.Sums.size();
  for (const NestItem &It : N.Items) {
    if (It.Child) {
      ++Nests;
      countNest(*It.Child, Ops, Nests, Sums);
    } else {
      ++Ops;
    }
  }
}

class Translator {
public:
  Translator(const ll::Program &P, const TranslateOptions &Opts)
      : P(P), Nu(Opts.Nu), NewMVM(Opts.NewMVM && Opts.Nu > 1) {}

  SProgram run() {
    // Parameter matrices first, in declaration order.
    const ll::Operand &Out = P.outputOperand();
    for (const ll::Operand &O : P.Operands) {
      MatRole Role;
      if (O.Name == Out.Name)
        Role = P.outputIsInput() ? MatRole::InOut : MatRole::Output;
      else
        Role = MatRole::Input;
      OperandMat[O.Name] = S.addMat(O.Name, O.Rows, O.Cols, Role);
    }
    int Target = static_cast<int>(OperandMat[Out.Name]);
    lowerExpr(*P.Rhs, Target);
    if (support::Trace *T = support::Trace::active()) {
      uint64_t Ops = 0, Nests = 0, Sums = 0;
      countNest(S.Root, Ops, Nests, Sums);
      T->addCounter("sll.translate.tileops", Ops);
      T->addCounter("sll.translate.nests", Nests);
      T->addCounter("sll.translate.sums", Sums);
    }
    return std::move(S);
  }

private:
  unsigned newTemp(int64_t Rows, int64_t Cols) {
    return S.addMat("t" + std::to_string(TempCounter++), Rows, Cols,
                    MatRole::Temp);
  }

  /// Appends a single-op nest: loops over the loop regions in \p Sums.
  void appendNest(std::vector<SumIdx> Sums, TileOp Op) {
    if (Sums.empty()) {
      S.Root.Items.push_back(NestItem(std::move(Op)));
      return;
    }
    auto N = std::make_unique<Nest>();
    N->Sums = std::move(Sums);
    N->Items.push_back(NestItem(std::move(Op)));
    S.Root.Items.push_back(NestItem(std::move(N)));
  }

  /// Coordinate expression of a region: the summation index or a constant.
  static AffineExpr coordOf(const Region &R, const SumIdx &Sum) {
    return R.IsLoop ? AffineExpr::loopIndex(Sum.Id) : AffineExpr(R.Begin);
  }

  bool mentions(const ll::Expr &E, unsigned Mat) const {
    if (E.getKind() == ll::ExprKind::Ref) {
      auto It = OperandMat.find(E.getRefName());
      return It != OperandMat.end() && It->second == Mat;
    }
    for (unsigned I = 0; I != E.numChildren(); ++I)
      if (mentions(E.child(I), Mat))
        return true;
    return false;
  }

  //===------------------------------------------------------------------===//
  // Expression lowering
  //===------------------------------------------------------------------===//

  /// Lowers \p E; returns the matrix holding its value. When \p Target is
  /// non-negative the value is written there.
  unsigned lowerExpr(const ll::Expr &E, int Target) {
    using ll::ExprKind;
    switch (E.getKind()) {
    case ExprKind::Ref: {
      unsigned M = OperandMat.at(E.getRefName());
      if (Target < 0 || static_cast<unsigned>(Target) == M)
        return M;
      emitCopy(M, Target, E.rows(), E.cols());
      return Target;
    }
    case ExprKind::Add: {
      unsigned L = lowerExpr(E.child(0), -1);
      unsigned R = lowerExpr(E.child(1), -1);
      unsigned D = destFor(E, Target);
      emitElementwise(OpKind::Add, {L, R}, D, E.rows(), E.cols());
      return D;
    }
    case ExprKind::SMul: {
      unsigned Sc = lowerExpr(E.child(0), -1);
      unsigned M = lowerExpr(E.child(1), -1);
      unsigned D = destFor(E, Target);
      emitSMul(Sc, M, D, E.rows(), E.cols());
      return D;
    }
    case ExprKind::Trans: {
      unsigned A = lowerExpr(E.child(0), -1);
      unsigned D = destForNonAliased(E, Target, A);
      emitTrans(A, D, E.child(0).rows(), E.child(0).cols());
      finishInto(D, Target, E.rows(), E.cols());
      return Target >= 0 ? static_cast<unsigned>(Target) : D;
    }
    case ExprKind::Mul: {
      unsigned A = lowerExpr(E.child(0), -1);
      unsigned B = lowerExpr(E.child(1), -1);
      unsigned D = destForNonAliased(E, Target, ~0u);
      if (E.child(1).cols() == 1 && E.child(0).cols() > 1 && NewMVM)
        emitMVMNew(A, B, D, E.rows(), E.child(0).cols());
      else if (E.child(1).cols() == 1 && Nu > 1)
        emitMVMOld(A, B, D, E.rows(), E.child(0).cols());
      else
        emitMatMul(A, B, D, E.rows(), E.child(0).cols(), E.cols());
      finishInto(D, Target, E.rows(), E.cols());
      return Target >= 0 ? static_cast<unsigned>(Target) : D;
    }
    case ExprKind::MVH: {
      unsigned A = lowerExpr(E.child(0), -1);
      unsigned X = lowerExpr(E.child(1), -1);
      unsigned D = destFor(E, Target);
      emitMVHStandalone(A, X, D, E.rows(), E.cols());
      return D;
    }
    case ExprKind::RR: {
      unsigned A = lowerExpr(E.child(0), -1);
      unsigned D = destForNonAliased(E, Target, A);
      emitRRStandalone(A, D, E.child(0).rows(), E.child(0).cols());
      finishInto(D, Target, E.rows(), E.cols());
      return Target >= 0 ? static_cast<unsigned>(Target) : D;
    }
    }
    LGEN_UNREACHABLE("unknown expression kind");
  }

  unsigned destFor(const ll::Expr &E, int Target) {
    return Target >= 0 ? static_cast<unsigned>(Target)
                       : newTemp(E.rows(), E.cols());
  }

  /// Reductions and transposes must not write a matrix their own inputs
  /// read; fall back to a temporary when the target aliases the subtree.
  unsigned destForNonAliased(const ll::Expr &E, int &Target, unsigned) {
    if (Target >= 0 && mentions(E, static_cast<unsigned>(Target))) {
      PendingCopyTarget = Target;
      Target = -1;
      return newTemp(E.rows(), E.cols());
    }
    PendingCopyTarget = -1;
    return destFor(E, Target);
  }

  void finishInto(unsigned D, int &Target, int64_t Rows, int64_t Cols) {
    if (PendingCopyTarget >= 0) {
      emitCopy(D, static_cast<unsigned>(PendingCopyTarget), Rows, Cols);
      Target = PendingCopyTarget;
      PendingCopyTarget = -1;
    }
  }

  //===------------------------------------------------------------------===//
  // Operator rules
  //===------------------------------------------------------------------===//

  void emitCopy(unsigned From, unsigned To, int64_t Rows, int64_t Cols) {
    emitElementwise(OpKind::Copy, {From}, To, Rows, Cols);
  }

  void emitElementwise(OpKind Kind, const std::vector<unsigned> &Ins,
                       unsigned D, int64_t Rows, int64_t Cols) {
    for (const Region &RI : regionsOf(Rows, Nu))
      for (const Region &RJ : regionsOf(Cols, Nu)) {
        std::vector<SumIdx> Sums;
        SumIdx SI{}, SJ{};
        if (RI.IsLoop)
          Sums.push_back(SI = S.newSum(RI.Extent, Nu));
        if (RJ.IsLoop)
          Sums.push_back(SJ = S.newSum(RJ.Extent, Nu));
        AffineExpr Row = coordOf(RI, SI), Col = coordOf(RJ, SJ);
        TileOp Op;
        Op.Kind = Kind;
        for (unsigned In : Ins)
          Op.In.push_back({In, Row, Col, RI.Tile, RJ.Tile});
        Op.Out = {D, Row, Col, RI.Tile, RJ.Tile};
        appendNest(std::move(Sums), std::move(Op));
      }
  }

  void emitSMul(unsigned Scalar, unsigned M, unsigned D, int64_t Rows,
                int64_t Cols) {
    for (const Region &RI : regionsOf(Rows, Nu))
      for (const Region &RJ : regionsOf(Cols, Nu)) {
        std::vector<SumIdx> Sums;
        SumIdx SI{}, SJ{};
        if (RI.IsLoop)
          Sums.push_back(SI = S.newSum(RI.Extent, Nu));
        if (RJ.IsLoop)
          Sums.push_back(SJ = S.newSum(RJ.Extent, Nu));
        AffineExpr Row = coordOf(RI, SI), Col = coordOf(RJ, SJ);
        TileOp Op;
        Op.Kind = OpKind::SMul;
        Op.In.push_back({Scalar, AffineExpr(0), AffineExpr(0), 1, 1});
        Op.In.push_back({M, Row, Col, RI.Tile, RJ.Tile});
        Op.Out = {D, Row, Col, RI.Tile, RJ.Tile};
        appendNest(std::move(Sums), std::move(Op));
      }
  }

  void emitTrans(unsigned A, unsigned D, int64_t ARows, int64_t ACols) {
    for (const Region &RI : regionsOf(ARows, Nu))
      for (const Region &RJ : regionsOf(ACols, Nu)) {
        std::vector<SumIdx> Sums;
        SumIdx SI{}, SJ{};
        if (RI.IsLoop)
          Sums.push_back(SI = S.newSum(RI.Extent, Nu));
        if (RJ.IsLoop)
          Sums.push_back(SJ = S.newSum(RJ.Extent, Nu));
        AffineExpr Row = coordOf(RI, SI), Col = coordOf(RJ, SJ);
        TileOp Op;
        Op.Kind = OpKind::Trans;
        Op.In.push_back({A, Row, Col, RI.Tile, RJ.Tile});
        // Scatter to the transposed position with transposed extents.
        Op.Out = {D, Col, Row, RJ.Tile, RI.Tile};
        appendNest(std::move(Sums), std::move(Op));
      }
  }

  /// Builds the peel-then-accumulate reduction over the K dimension.
  /// \p MakeOp creates the tile op for one K region given (coordinate
  /// expression of k, tile extent in k, accumulate flag). The items are
  /// appended to \p Items; loop K regions become child nests.
  /// When the reduction starts with a fixed (leftover-only) region, the
  /// first term plainly assigns. When it starts with a summation, the
  /// target is zero-initialized and every term accumulates: peeling the
  /// first iteration would leave the loop with ⌊K/ν⌋−1 trips and destroy
  /// the divisibility structure the outer tiling restriction relies on
  /// (§2.1.2: the n = 695/893 dips happen at *prime tile counts*, not at
  /// prime tile counts minus one).
  void buildReduction(
      std::vector<NestItem> &Items, int64_t K, const TileAccess &ZeroOut,
      const std::function<TileOp(AffineExpr, unsigned, bool)> &MakeOp) {
    bool First = true;
    for (const Region &RK : regionsOf(K, Nu)) {
      if (!RK.IsLoop) {
        Items.push_back(
            NestItem(MakeOp(AffineExpr(RK.Begin), RK.Tile, !First)));
        First = false;
        continue;
      }
      if (First) {
        TileOp Zero;
        Zero.Kind = OpKind::ZeroTile;
        Zero.Out = ZeroOut;
        Items.push_back(NestItem(std::move(Zero)));
        First = false;
      }
      auto KN = std::make_unique<Nest>();
      SumIdx SK = S.newSum(RK.Extent, Nu);
      KN->Sums.push_back(SK);
      KN->Items.push_back(
          NestItem(MakeOp(AffineExpr::loopIndex(SK.Id), RK.Tile, true)));
      Items.push_back(NestItem(std::move(KN)));
    }
  }

  /// Scalar tiling (ν = 1): a zero-initialization sweep over (i, j)
  /// followed by a single (k, i, j) accumulation nest. Keeping k outermost
  /// interleaves the per-element accumulator chains of different output
  /// elements once i/j are unrolled — the instruction-level parallelism an
  /// in-order scalar pipe (ARM1176, §5.5) needs.
  void emitMatMulScalar(unsigned A, unsigned B, unsigned D, int64_t M,
                        int64_t K, int64_t N) {
    {
      SumIdx SI = S.newSum(M, 1), SJ = S.newSum(N, 1);
      AffineExpr Row = AffineExpr::loopIndex(SI.Id);
      AffineExpr Col = AffineExpr::loopIndex(SJ.Id);
      TileOp Zero;
      Zero.Kind = OpKind::ZeroTile;
      Zero.Out = {D, Row, Col, 1, 1};
      appendNest({SI, SJ}, std::move(Zero));
    }
    SumIdx SK = S.newSum(K, 1), SI = S.newSum(M, 1), SJ = S.newSum(N, 1);
    AffineExpr KExpr = AffineExpr::loopIndex(SK.Id);
    AffineExpr Row = AffineExpr::loopIndex(SI.Id);
    AffineExpr Col = AffineExpr::loopIndex(SJ.Id);
    TileOp Op;
    Op.Kind = OpKind::MatMulAcc;
    Op.In.push_back({A, Row, KExpr, 1, 1});
    Op.In.push_back({B, KExpr, Col, 1, 1});
    Op.Out = {D, Row, Col, 1, 1};
    auto NAcc = std::make_unique<Nest>();
    NAcc->Sums = {SK, SI, SJ};
    NAcc->Items.push_back(NestItem(std::move(Op)));
    S.Root.Items.push_back(NestItem(std::move(NAcc)));
  }

  void emitMatMul(unsigned A, unsigned B, unsigned D, int64_t M, int64_t K,
                  int64_t N) {
    if (Nu == 1) {
      emitMatMulScalar(A, B, D, M, K, N);
      return;
    }
    for (const Region &RI : regionsOf(M, Nu))
      for (const Region &RJ : regionsOf(N, Nu)) {
        std::vector<SumIdx> Sums;
        SumIdx SI{}, SJ{};
        if (RI.IsLoop)
          Sums.push_back(SI = S.newSum(RI.Extent, Nu));
        if (RJ.IsLoop)
          Sums.push_back(SJ = S.newSum(RJ.Extent, Nu));
        AffineExpr Row = coordOf(RI, SI), Col = coordOf(RJ, SJ);

        std::vector<NestItem> Items;
        TileAccess OutTile{D, Row, Col, RI.Tile, RJ.Tile};
        buildReduction(Items, K, OutTile,
                       [&](AffineExpr KExpr, unsigned KTile, bool Acc) {
          TileOp Op;
          Op.Kind = Acc ? OpKind::MatMulAcc : OpKind::MatMul;
          Op.In.push_back({A, Row, KExpr, RI.Tile, KTile});
          Op.In.push_back({B, KExpr, Col, KTile, RJ.Tile});
          Op.Out = OutTile;
          return Op;
        });
        wrapAndAppend(std::move(Sums), std::move(Items));
      }
  }

  void emitMVMOld(unsigned A, unsigned X, unsigned D, int64_t M, int64_t K) {
    for (const Region &RI : regionsOf(M, Nu)) {
      std::vector<SumIdx> Sums;
      SumIdx SI{};
      if (RI.IsLoop)
        Sums.push_back(SI = S.newSum(RI.Extent, Nu));
      AffineExpr Row = coordOf(RI, SI);

      std::vector<NestItem> Items;
      TileAccess OutTile{D, Row, AffineExpr(0), RI.Tile, 1};
      buildReduction(Items, K, OutTile,
                     [&](AffineExpr KExpr, unsigned KTile, bool Acc) {
        TileOp Op;
        Op.Kind = Acc ? OpKind::MVMAcc : OpKind::MVM;
        Op.In.push_back({A, Row, KExpr, RI.Tile, KTile});
        Op.In.push_back({X, KExpr, AffineExpr(0), KTile, 1});
        Op.Out = OutTile;
        return Op;
      });
      wrapAndAppend(std::move(Sums), std::move(Items));
    }
  }

  /// Equation (3.8): y_i = ⊕( Σ_k (A(i,k) ⊙ x(k)) ), with the inner
  /// summation accumulating into a ν×ν scratch.
  void emitMVMNew(unsigned A, unsigned X, unsigned D, int64_t M, int64_t K) {
    unsigned T = newTemp(Nu, Nu);
    tiling::DimSplit KS = tiling::splitDim(K, Nu);
    unsigned RRCols = KS.FullTiles > 0 ? Nu : static_cast<unsigned>(KS.Leftover);
    for (const Region &RI : regionsOf(M, Nu)) {
      std::vector<SumIdx> Sums;
      SumIdx SI{};
      if (RI.IsLoop)
        Sums.push_back(SI = S.newSum(RI.Extent, Nu));
      AffineExpr Row = coordOf(RI, SI);

      std::vector<NestItem> Items;
      TileAccess ScratchFull{T, AffineExpr(0), AffineExpr(0), RI.Tile,
                             RRCols};
      buildReduction(Items, K, ScratchFull,
                     [&](AffineExpr KExpr, unsigned KTile, bool Acc) {
        TileOp Op;
        Op.Kind = Acc ? OpKind::MVHAcc : OpKind::MVH;
        Op.In.push_back({A, Row, KExpr, RI.Tile, KTile});
        Op.In.push_back({X, KExpr, AffineExpr(0), KTile, 1});
        Op.Out = {T, AffineExpr(0), AffineExpr(0), RI.Tile, KTile};
        return Op;
      });
      TileOp RROp;
      RROp.Kind = OpKind::RR;
      RROp.In.push_back({T, AffineExpr(0), AffineExpr(0), RI.Tile, RRCols});
      RROp.Out = {D, Row, AffineExpr(0), RI.Tile, 1};
      Items.push_back(NestItem(std::move(RROp)));
      wrapAndAppend(std::move(Sums), std::move(Items));
    }
  }

  void emitMVHStandalone(unsigned A, unsigned X, unsigned D, int64_t Rows,
                         int64_t Cols) {
    for (const Region &RI : regionsOf(Rows, Nu))
      for (const Region &RJ : regionsOf(Cols, Nu)) {
        std::vector<SumIdx> Sums;
        SumIdx SI{}, SJ{};
        if (RI.IsLoop)
          Sums.push_back(SI = S.newSum(RI.Extent, Nu));
        if (RJ.IsLoop)
          Sums.push_back(SJ = S.newSum(RJ.Extent, Nu));
        AffineExpr Row = coordOf(RI, SI), Col = coordOf(RJ, SJ);
        TileOp Op;
        Op.Kind = OpKind::MVH;
        Op.In.push_back({A, Row, Col, RI.Tile, RJ.Tile});
        Op.In.push_back({X, Col, AffineExpr(0), RJ.Tile, 1});
        Op.Out = {D, Row, Col, RI.Tile, RJ.Tile};
        appendNest(std::move(Sums), std::move(Op));
      }
  }

  void emitRRStandalone(unsigned A, unsigned D, int64_t ARows,
                        int64_t ACols) {
    for (const Region &RI : regionsOf(ARows, Nu)) {
      std::vector<SumIdx> Sums;
      SumIdx SI{};
      if (RI.IsLoop)
        Sums.push_back(SI = S.newSum(RI.Extent, Nu));
      AffineExpr Row = coordOf(RI, SI);
      std::vector<NestItem> Items;
      TileAccess OutTile{D, Row, AffineExpr(0), RI.Tile, 1};
      buildReduction(Items, ACols, OutTile,
                     [&](AffineExpr KExpr, unsigned KTile, bool Acc) {
        TileOp Op;
        Op.Kind = Acc ? OpKind::RRAcc : OpKind::RR;
        Op.In.push_back({A, Row, KExpr, RI.Tile, KTile});
        Op.Out = OutTile;
        return Op;
      });
      wrapAndAppend(std::move(Sums), std::move(Items));
    }
  }

  /// Wraps \p Items in a nest with \p Sums (or splices them into the root
  /// when there are no summations).
  void wrapAndAppend(std::vector<SumIdx> Sums, std::vector<NestItem> Items) {
    if (Sums.empty()) {
      for (NestItem &It : Items)
        S.Root.Items.push_back(std::move(It));
      return;
    }
    auto N = std::make_unique<Nest>();
    N->Sums = std::move(Sums);
    N->Items = std::move(Items);
    S.Root.Items.push_back(NestItem(std::move(N)));
  }

  const ll::Program &P;
  unsigned Nu;
  bool NewMVM;
  SProgram S;
  std::map<std::string, unsigned> OperandMat;
  unsigned TempCounter = 0;
  int PendingCopyTarget = -1;
};

} // namespace

SProgram sll::translate(const ll::Program &P, const TranslateOptions &Opts) {
  assert(Opts.Nu >= 1 && "invalid tile size");
  Translator T(P, Opts);
  return T.run();
}

//===- SigmaLL.cpp - The Σ-LL intermediate language ------------*- C++ -*-===//

#include "sll/SigmaLL.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace lgen;
using namespace lgen::sll;

const char *sll::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Copy:
    return "copy";
  case OpKind::ZeroTile:
    return "zero";
  case OpKind::Add:
    return "add";
  case OpKind::SMul:
    return "smul";
  case OpKind::MatMul:
    return "matmul";
  case OpKind::MatMulAcc:
    return "matmul+";
  case OpKind::Trans:
    return "trans";
  case OpKind::MVH:
    return "mvh";
  case OpKind::MVHAcc:
    return "mvh+";
  case OpKind::RR:
    return "rr";
  case OpKind::RRAcc:
    return "rr+";
  case OpKind::MVM:
    return "mvm";
  case OpKind::MVMAcc:
    return "mvm+";
  }
  LGEN_UNREACHABLE("unknown tile op kind");
}

unsigned SProgram::addMat(std::string Name, int64_t Rows, int64_t Cols,
                          MatRole Role) {
  Mats.push_back({std::move(Name), Rows, Cols, Role});
  return Mats.size() - 1;
}

SumIdx SProgram::newSum(int64_t Extent, int64_t Step) {
  return SumIdx{NextSumId++, Extent, Step};
}

namespace {

void printAccess(std::ostringstream &OS, const SProgram &P,
                 const TileAccess &A) {
  OS << P.Mats[A.Mat].Name << "[" << A.Row.str() << ", " << A.Col.str()
     << "; " << A.TileRows << "x" << A.TileCols << "]";
}

void printNest(std::ostringstream &OS, const SProgram &P, const Nest &N,
               int Indent) {
  auto Pad = [&] {
    for (int I = 0; I != Indent; ++I)
      OS << "  ";
  };
  for (const SumIdx &S : N.Sums) {
    Pad();
    OS << "sum s" << S.Id << " < " << S.Extent << " step " << S.Step << "\n";
    ++Indent;
  }
  for (const NestItem &It : N.Items) {
    if (It.Child) {
      printNest(OS, P, *It.Child, Indent);
      continue;
    }
    Pad();
    const TileOp &Op = *It.Op;
    printAccess(OS, P, Op.Out);
    OS << " = " << opKindName(Op.Kind) << "(";
    for (size_t I = 0; I != Op.In.size(); ++I) {
      if (I)
        OS << ", ";
      printAccess(OS, P, Op.In[I]);
    }
    OS << ")\n";
  }
}

} // namespace

std::string SProgram::str() const {
  std::ostringstream OS;
  for (const MatInfo &M : Mats)
    OS << (M.isParam() ? "param " : "temp ") << M.Name << "(" << M.Rows
       << "x" << M.Cols << ")\n";
  printNest(OS, *this, Root, 0);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Fusion
//===----------------------------------------------------------------------===//

namespace {

void collectMats(const Nest &N, std::set<unsigned> &Reads,
                 std::set<unsigned> &Writes) {
  for (const NestItem &It : N.Items) {
    if (It.Child) {
      collectMats(*It.Child, Reads, Writes);
      continue;
    }
    for (const TileAccess &A : It.Op->In)
      Reads.insert(A.Mat);
    Writes.insert(It.Op->Out.Mat);
    // Accumulating ops also read their output.
    switch (It.Op->Kind) {
    case OpKind::MatMulAcc:
    case OpKind::MVHAcc:
    case OpKind::RRAcc:
    case OpKind::MVMAcc:
      Reads.insert(It.Op->Out.Mat);
      break;
    default:
      break;
    }
  }
}

/// True if nest \p B may be reordered before nest \p A (no data dependence
/// between them).
bool independent(const Nest &A, const Nest &B) {
  std::set<unsigned> RA, WA, RB, WB;
  collectMats(A, RA, WA);
  collectMats(B, RB, WB);
  for (unsigned W : WA) {
    if (RB.count(W) || WB.count(W))
      return false;
  }
  for (unsigned W : WB)
    if (RA.count(W))
      return false;
  return true;
}

/// Remaps the sum-index ids used by \p N (recursively) according to
/// \p Map (old id -> new id).
void remapSums(Nest &N, const std::vector<std::pair<unsigned, unsigned>> &Map) {
  auto RemapExpr = [&](cir::AffineExpr &E) {
    cir::AffineExpr Result(E.getConstant());
    for (const auto &[Id, Coeff] : E.getTerms()) {
      unsigned NewId = Id;
      for (const auto &[From, To] : Map)
        if (From == Id)
          NewId = To;
      Result = Result + cir::AffineExpr::loopIndex(NewId, Coeff);
    }
    E = Result;
  };
  for (NestItem &It : N.Items) {
    if (It.Child) {
      remapSums(*It.Child, Map);
      continue;
    }
    for (TileAccess &A : It.Op->In) {
      RemapExpr(A.Row);
      RemapExpr(A.Col);
    }
    RemapExpr(It.Op->Out.Row);
    RemapExpr(It.Op->Out.Col);
  }
}

/// Fusing \p Cand (already remapped onto \p Prev's indices) into \p Prev is
/// semantics-preserving when every tile Cand reads of a matrix Prev writes
/// is produced *pointwise*: the read coordinates coincide with some write of
/// Prev in the same iteration. Matrix-level independence covers the rest.
bool fusionSafe(const Nest &Prev, const Nest &Cand) {
  std::set<unsigned> PrevWrites;
  std::vector<const TileOp *> PrevOps;
  for (const NestItem &It : Prev.Items) {
    if (It.Child) {
      // Conservatively refuse when the producer has inner structure.
      std::set<unsigned> R, W;
      collectMats(*It.Child, R, W);
      if (!W.empty())
        return independent(Prev, Cand);
      continue;
    }
    PrevWrites.insert(It.Op->Out.Mat);
    PrevOps.push_back(&*It.Op);
  }
  auto ProducedPointwise = [&](const TileAccess &Read) {
    for (const TileOp *Op : PrevOps)
      if (Op->Out.Mat == Read.Mat && Op->Out.Row == Read.Row &&
          Op->Out.Col == Read.Col && Op->Out.TileRows == Read.TileRows &&
          Op->Out.TileCols == Read.TileCols)
        return true;
    return false;
  };
  for (const NestItem &It : Cand.Items) {
    if (It.Child)
      return false; // Keep hierarchical candidates unfused for simplicity.
    for (const TileAccess &A : It.Op->In)
      if (PrevWrites.count(A.Mat) && !ProducedPointwise(A))
        return false;
    if (PrevWrites.count(It.Op->Out.Mat) &&
        !ProducedPointwise(It.Op->Out))
      return false;
  }
  return true;
}

unsigned fuseChildren(Nest &N) {
  unsigned Merges = 0;
  for (NestItem &It : N.Items)
    if (It.Child)
      Merges += fuseChildren(*It.Child);

  // Try to merge each child nest into an earlier sibling nest with the same
  // summation signature, provided it can be moved past everything between.
  std::vector<NestItem> Result;
  for (NestItem &It : N.Items) {
    if (!It.Child) {
      Result.push_back(std::move(It));
      continue;
    }
    Nest &Cand = *It.Child;
    bool Fused = false;
    // Walk backwards over already-placed items; stop at the first barrier.
    for (size_t RI = Result.size(); RI-- > 0;) {
      if (!Result[RI].Child)
        break; // A bare tile op at this level is a barrier.
      Nest &Prev = *Result[RI].Child;
      if (Prev.Sums == Cand.Sums && !Prev.Sums.empty()) {
        std::vector<std::pair<unsigned, unsigned>> Map;
        for (size_t S = 0; S != Cand.Sums.size(); ++S)
          Map.push_back({Cand.Sums[S].Id, Prev.Sums[S].Id});
        remapSums(Cand, Map);
        if (fusionSafe(Prev, Cand)) {
          for (NestItem &Sub : Cand.Items)
            Prev.Items.push_back(std::move(Sub));
          ++Merges;
          Fused = true;
        } else {
          // Undo the remap and give up on this candidate.
          std::vector<std::pair<unsigned, unsigned>> Undo;
          for (const auto &[From, To] : Map)
            Undo.push_back({To, From});
          remapSums(Cand, Undo);
        }
        break;
      }
      if (!independent(Prev, Cand))
        break;
    }
    if (!Fused)
      Result.push_back(std::move(It));
  }
  N.Items = std::move(Result);
  return Merges;
}

void exchangeNest(Nest &N, bool Reverse) {
  if (Reverse && N.Sums.size() > 1)
    std::reverse(N.Sums.begin(), N.Sums.end());
  for (NestItem &It : N.Items)
    if (It.Child)
      exchangeNest(*It.Child, Reverse);
}

} // namespace

unsigned sll::fuseNests(SProgram &P) { return fuseChildren(P.Root); }

void sll::exchangeLoops(SProgram &P, bool Reverse) {
  exchangeNest(P.Root, Reverse);
}

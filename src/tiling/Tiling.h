//===- Tiling.h - Tiling decisions and legality (§2.1.2) -------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiling support (thesis §2.1.2). The first level of tiling targets
/// vectorization and is fixed to ν by the ISA; this module handles the
/// bookkeeping around it (full tiles vs. leftovers) and the *outer* levels,
/// which in LGen materialize as unrolling of the tile loops for register
/// reuse and instruction-level parallelism.
///
/// The central restriction is that leftovers may be introduced in at most
/// one level of tiling: an outer level must evenly divide the number of
/// inner tiles. When ⌊n/ν⌋ is prime and larger than any allowed factor, no
/// outer tiling is possible (the 1×1 "pseudo-tiling"), which is the cause
/// of the performance dips at n = 695 and n = 893 discussed in §5.2.1.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_TILING_TILING_H
#define LGEN_TILING_TILING_H

#include "support/Support.h"

#include <cstdint>
#include <vector>

namespace lgen {
namespace tiling {

/// Decomposition of a dimension into ν-tiles: N = FullTiles·ν + Leftover.
struct DimSplit {
  int64_t FullTiles = 0;
  int64_t Leftover = 0;
  unsigned Nu = 1;

  /// True when the dimension is covered by the leftover alone (N < ν).
  /// Such dimensions must produce no full-tile loop at all — the leftover
  /// region still vectorizes through the partial-map (masked/lane) path.
  bool leftoverOnly() const { return FullTiles == 0 && Leftover > 0; }
};

DimSplit splitDim(int64_t N, unsigned Nu);

/// Legal outer unroll factors for a tile loop with \p TripCount full tiles:
/// the divisors of TripCount not exceeding \p MaxFactor (leftover-free by
/// construction), always including 1.
std::vector<int64_t> legalUnrollFactors(int64_t TripCount, int64_t MaxFactor);

/// One point in the tiling search space: the per-loop outer unroll factors
/// (indexed by discovery order of the tile loops), whether loops are
/// exchanged, and the full-unroll budget for small kernels.
struct TilingPlan {
  std::vector<int64_t> UnrollFactors;
  bool ExchangeLoops = false;
  /// Loops with trip count at most this are fully unrolled.
  int64_t FullUnrollTrip = 4;

  int64_t factorFor(size_t LoopIdx) const {
    return LoopIdx < UnrollFactors.size() ? UnrollFactors[LoopIdx] : 1;
  }

  /// Compact one-line form, e.g. "unroll=[4,2] exchange=0 full=4" — the
  /// plan description the autotuner trace records with each measured cost.
  std::string str() const;
};

/// Description of a tile loop discovered while lowering, used to build the
/// search space.
struct LoopDesc {
  int64_t TripCount = 0;
  unsigned Depth = 0;
};

/// Draws a random plan for the given loops (thesis §5.1.5: "LGen was
/// configured to use a random search over the search space").
TilingPlan randomPlan(const std::vector<LoopDesc> &Loops, Rng &Rng,
                      int64_t MaxFactor = 8);

/// A deterministic default plan: unroll every loop by the largest legal
/// factor not exceeding 4, preferring deeper loops.
TilingPlan defaultPlan(const std::vector<LoopDesc> &Loops);

} // namespace tiling
} // namespace lgen

#endif // LGEN_TILING_TILING_H

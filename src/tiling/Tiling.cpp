//===- Tiling.cpp - Tiling decisions and legality (§2.1.2) ----------------===//

#include "tiling/Tiling.h"

#include <algorithm>
#include <sstream>

using namespace lgen;
using namespace lgen::tiling;

DimSplit tiling::splitDim(int64_t N, unsigned Nu) {
  assert(N >= 0 && Nu >= 1 && "invalid dimension split");
  DimSplit S;
  S.Nu = Nu;
  S.FullTiles = N / Nu;
  S.Leftover = N % Nu;
  assert(S.FullTiles * static_cast<int64_t>(Nu) + S.Leftover == N &&
         "split must cover the dimension exactly");
  assert((S.FullTiles > 0 || S.Leftover == N) &&
         "a dimension below nu is leftover-only");
  return S;
}

std::vector<int64_t> tiling::legalUnrollFactors(int64_t TripCount,
                                                int64_t MaxFactor) {
  // Degenerate trip counts (0 or 1, e.g. a leftover-only dimension that
  // produced no full-tile loop) admit only the identity factor: there is
  // nothing to unroll, and factor 1 keeps unrollLoopBy a no-op.
  std::vector<int64_t> Factors = {1};
  for (int64_t F = 2; F <= MaxFactor && F <= TripCount; ++F)
    if (TripCount % F == 0)
      Factors.push_back(F);
  return Factors;
}

TilingPlan tiling::randomPlan(const std::vector<LoopDesc> &Loops, Rng &Rng,
                              int64_t MaxFactor) {
  TilingPlan Plan;
  Plan.ExchangeLoops = Rng.nextBelow(2) == 1;
  Plan.FullUnrollTrip = 2 + static_cast<int64_t>(Rng.nextBelow(5));
  for (const LoopDesc &L : Loops) {
    std::vector<int64_t> Factors = legalUnrollFactors(L.TripCount, MaxFactor);
    Plan.UnrollFactors.push_back(Factors[Rng.nextBelow(Factors.size())]);
  }
  return Plan;
}

TilingPlan tiling::defaultPlan(const std::vector<LoopDesc> &Loops) {
  TilingPlan Plan;
  for (const LoopDesc &L : Loops) {
    std::vector<int64_t> Factors = legalUnrollFactors(L.TripCount, 4);
    Plan.UnrollFactors.push_back(Factors.back());
  }
  return Plan;
}

std::string TilingPlan::str() const {
  std::ostringstream OS;
  OS << "unroll=[";
  for (size_t I = 0; I != UnrollFactors.size(); ++I)
    OS << (I ? "," : "") << UnrollFactors[I];
  OS << "] exchange=" << (ExchangeLoops ? 1 : 0) << " full=" << FullUnrollTrip;
  return OS.str();
}

//===- lgen-verify.cpp - Differential verification driver -----------------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler-verification CLI over the verify:: subsystem:
///
///   lgen-verify [options] ["<BLAC>" ...]
///
///   --shapes SPEC       dimension pool for generated BLACs: a range
///                       ("1..8") or a comma list ("1,2,4,9"); default 1..8
///   --plans=all|winner  check every enumerated tiling plan (default) or
///                       only the autotuner's winner
///   --trials N          random BLACs to generate when none are given
///                       (default 20)
///   --seed N            base seed for BLAC generation, plan search, and
///                       input data (default 1)
///   --targets LIST      comma list of atom,a8,a9,arm1176,sandybridge
///                       (default atom,a8 — one SSE-, one NEON-style)
///   --samples N         random plans drawn per configuration (default 4)
///   --input-sets N      random input sets per compiled variant (default 2)
///   --inject=MODE       inject a fault (flip-add, drop-store) into every
///                       compile — the tool must then FAIL; verifies the
///                       verifier
///   --exec=sim|native|both
///                       execution backend(s): sim (default) runs the
///                       machine::Executor only; native/both additionally
///                       compile every variant with the host toolchain and
///                       cross-check the real run against both the
///                       reference and the simulated result. Targets the
///                       host cannot run (e.g. NEON on x86) are skipped
///                       cleanly and reported as such.
///   --reduce            on failure, shrink the BLAC to a minimal failing
///                       reproducer before exiting
///   --profile           after each BLAC verifies, compile it once for the
///                       first target, run it natively under measure(), and
///                       print a runtime::PerfReport (static FLOPs, measured
///                       cycles + hw counters, achieved f/c vs. ν-peak).
///                       Hosts that cannot run the target ISA (or have no
///                       toolchain) skip the profile cleanly; verification
///                       still counts.
///   --no-misaligned     skip the misaligned-base executions
///   --no-verify-ir      skip the Σ-LL/C-IR invariant checkers
///   --no-opt-sweep      check only base and full optimization configs
///
/// Every value flag also accepts the --flag=value spelling. Exit status: 0
/// when everything matches the reference, 1 on any mismatch (the failing
/// seed, BLAC, and — with --reduce — the minimal reproducer are printed),
/// 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "verify/DiffCheck.h"
#include "verify/RandomBlac.h"
#include "verify/Reduce.h"

#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "machine/Executor.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"
#include "runtime/NativeKernel.h"
#include "runtime/PerfReport.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace lgen;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--shapes SPEC] [--plans=all|winner] [--trials N]\n"
               "          [--seed N] [--targets atom,a8,a9,arm1176,"
               "sandybridge]\n"
               "          [--samples N] [--input-sets N] [--inject=MODE]\n"
               "          [--exec=sim|native|both] [--reduce] [--profile]\n"
               "          [--no-misaligned] [--no-verify-ir]\n"
               "          [--no-opt-sweep] [\"<BLAC>\" ...]\n",
               Argv0);
  return 2;
}

bool parseTargets(const std::string &List,
                  std::vector<machine::UArch> &Targets) {
  Targets.clear();
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string Name = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "atom")
      Targets.push_back(machine::UArch::Atom);
    else if (Name == "a8")
      Targets.push_back(machine::UArch::CortexA8);
    else if (Name == "a9")
      Targets.push_back(machine::UArch::CortexA9);
    else if (Name == "arm1176")
      Targets.push_back(machine::UArch::ARM1176);
    else if (Name == "sandybridge")
      Targets.push_back(machine::UArch::SandyBridge);
    else
      return false;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return !Targets.empty();
}

/// Profiles one verified BLAC: compiles it once (autotuner winner) for
/// \p Target, runs it natively under measure(), and prints the PerfReport.
/// Every failure mode short of a crash degrades to a printed skip note —
/// profiling is a bonus on top of verification, never a verdict on it.
void profileBlac(const std::string &Source, machine::UArch Target,
                 uint64_t Seed) {
  std::unique_ptr<compiler::CompiledKernel> CK;
  try {
    compiler::Compiler C(
        compiler::Options::builder(Target).searchSeed(Seed).build());
    Expected<compiler::CompiledKernel> R = C.compile(Source);
    if (!R) {
      std::fprintf(stderr, "  profile skipped: %s\n", R.error().c_str());
      return;
    }
    CK = std::make_unique<compiler::CompiledKernel>(std::move(*R));
  } catch (const std::exception &E) {
    std::fprintf(stderr, "  profile skipped: %s\n", E.what());
    return;
  }

  Expected<runtime::NativeKernel> NK = runtime::NativeKernel::load(*CK);
  if (!NK) {
    isa::ISAKind ISA =
        CK->Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar : CK->Opts.ISA;
    std::fprintf(stderr, "  profile skipped (%s): %s\n",
                 runtime::CpuInfo::host().supports(ISA)
                     ? "native load failed"
                     : "host cannot run target ISA",
                 NK.error().c_str());
    return;
  }

  const ll::Program &P = CK->Blac;
  std::vector<machine::Buffer> Storage;
  std::vector<machine::Buffer *> Params;
  Rng R(Seed ^ 0x70f11eULL);
  for (const ll::Operand &Op : P.Operands) {
    Storage.emplace_back(Op.numElements(), 0.0f, 0);
    for (float &V : Storage.back().Data)
      V = static_cast<float>(R.next() % 1000) / 250.0f - 2.0f;
  }
  for (machine::Buffer &B : Storage)
    Params.push_back(&B);

  runtime::MeasureResult M = runtime::measure(*NK, Params, {});
  std::printf("%s", runtime::makeReport(*CK, M).str().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  verify::GrammarOptions Grammar;
  verify::PlanSpaceOptions Plan;
  std::string ShapeSpec = "1..8";
  unsigned Trials = 20;
  uint64_t Seed = 1;
  bool Reduce = false;
  bool Profile = false;
  std::vector<std::string> Sources;

  // Value flags accept both "--flag=value" and "--flag value".
  auto valueOf = [&](const std::string &Arg, const char *Name, int &I,
                     std::string &Out) -> bool {
    std::string Prefix = std::string(Name) + "=";
    if (Arg.rfind(Prefix, 0) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg == Name && I + 1 < Argc) {
      Out = Argv[++I];
      return true;
    }
    return false;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string Val;
    if (valueOf(Arg, "--shapes", I, Val)) {
      ShapeSpec = Val;
    } else if (valueOf(Arg, "--plans", I, Val)) {
      if (Val == "all")
        Plan.AllPlans = true;
      else if (Val == "winner")
        Plan.AllPlans = false;
      else
        return usage(Argv[0]);
    } else if (valueOf(Arg, "--trials", I, Val)) {
      Trials = static_cast<unsigned>(std::atoi(Val.c_str()));
    } else if (valueOf(Arg, "--seed", I, Val)) {
      Seed = static_cast<uint64_t>(std::atoll(Val.c_str()));
    } else if (valueOf(Arg, "--targets", I, Val)) {
      if (!parseTargets(Val, Plan.Targets))
        return usage(Argv[0]);
    } else if (valueOf(Arg, "--samples", I, Val)) {
      Plan.SearchSamples = static_cast<unsigned>(std::atoi(Val.c_str()));
    } else if (valueOf(Arg, "--input-sets", I, Val)) {
      Plan.InputSets = static_cast<unsigned>(std::atoi(Val.c_str()));
    } else if (valueOf(Arg, "--inject", I, Val)) {
      if (Val != "flip-add" && Val != "drop-store")
        return usage(Argv[0]);
      Plan.Inject = Val;
    } else if (valueOf(Arg, "--exec", I, Val)) {
      if (Val == "sim")
        Plan.Exec = verify::ExecBackend::Simulated;
      else if (Val == "native")
        Plan.Exec = verify::ExecBackend::Native;
      else if (Val == "both")
        Plan.Exec = verify::ExecBackend::Both;
      else
        return usage(Argv[0]);
    } else if (Arg == "--reduce") {
      Reduce = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--no-misaligned") {
      Plan.Misaligned = false;
    } else if (Arg == "--no-verify-ir") {
      Plan.VerifyIR = false;
    } else if (Arg == "--no-opt-sweep") {
      Plan.SweepOptSubsets = false;
    } else if (Arg.rfind("--", 0) == 0) {
      return usage(Argv[0]);
    } else {
      Sources.push_back(Arg);
    }
  }

  std::string Err;
  Grammar.Dims = verify::parseShapeSpec(ShapeSpec, Err);
  if (Grammar.Dims.empty()) {
    std::fprintf(stderr, "error: bad --shapes '%s': %s\n", ShapeSpec.c_str(),
                 Err.c_str());
    return 2;
  }
  Plan.Seed = Seed;

  // Explicit BLACs verify as given; otherwise generate --trials random
  // ones, each reproducible from (base seed, trial index).
  struct Trial {
    std::string Source;
    uint64_t Seed;
  };
  std::vector<Trial> Work;
  if (!Sources.empty()) {
    for (const std::string &S : Sources)
      Work.push_back({S, Seed});
  } else {
    for (unsigned T = 0; T != Trials; ++T) {
      uint64_t TrialSeed = Seed + 0x9e3779b97f4a7c15ULL * (T + 1);
      Rng R(TrialSeed);
      verify::RandomBlac Gen(R, Grammar);
      Work.push_back({Gen.build(), TrialSeed});
    }
  }

  unsigned Configs = 0, Plans = 0, Execs = 0;
  unsigned NativeExecs = 0, NativeSkips = 0;
  std::string NativeSkipReason;
  for (size_t T = 0; T != Work.size(); ++T) {
    std::fprintf(stderr, "[%zu/%zu] %s\n", T + 1, Work.size(),
                 Work[T].Source.c_str());
    verify::DiffResult D = verify::checkSource(Work[T].Source, Plan);
    Configs += D.ConfigsChecked;
    Plans += D.PlansChecked;
    Execs += D.ExecutionsChecked;
    NativeExecs += D.NativeChecked;
    NativeSkips += D.NativeSkips;
    if (NativeSkipReason.empty())
      NativeSkipReason = D.NativeSkipReason;
    if (D.ok()) {
      if (Profile)
        profileBlac(Work[T].Source, Plan.Targets.front(), Work[T].Seed);
      continue;
    }

    std::printf("FAIL: BLAC diverges from reference\n"
                "  source: %s\n"
                "  seed:   %llu (trial %zu)\n%s",
                Work[T].Source.c_str(),
                static_cast<unsigned long long>(Work[T].Seed), T, D.str().c_str());

    if (Reduce) {
      ll::Program P;
      std::string ParseErr;
      if (ll::parseProgram(Work[T].Source, P, ParseErr)) {
        verify::ReduceResult R = verify::reduce(P, [&](const ll::Program &Q) {
          return !verify::checkProgram(Q, Plan).ok();
        });
        std::printf("  reduced (%lld operator%s, %u candidates tried): %s\n",
                    static_cast<long long>(verify::countOperators(R.Reduced)),
                    verify::countOperators(R.Reduced) == 1 ? "" : "s",
                    R.CandidatesTried,
                    verify::programSource(R.Reduced).c_str());
      }
    }
    return 1;
  }

  std::printf("verified %zu BLAC%s on %zu target%s: %u configuration%s, "
              "%u plan compile%s, %u execution%s, all matching the "
              "reference\n",
              Work.size(), Work.size() == 1 ? "" : "s", Plan.Targets.size(),
              Plan.Targets.size() == 1 ? "" : "s", Configs,
              Configs == 1 ? "" : "s", Plans, Plans == 1 ? "" : "s", Execs,
              Execs == 1 ? "" : "s");
  if (Plan.Exec != verify::ExecBackend::Simulated) {
    std::printf("native: %u run%s cross-checked against the reference and "
                "the simulated executor",
                NativeExecs, NativeExecs == 1 ? "" : "s");
    if (NativeSkips)
      std::printf("; %u variant%s skipped (%s)", NativeSkips,
                  NativeSkips == 1 ? "" : "s", NativeSkipReason.c_str());
    std::printf("\n");
  }
  return 0;
}

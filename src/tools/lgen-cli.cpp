//===- lgen-cli.cpp - Command-line driver for the LGen compiler -----------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CLI around the compiler, for exploring kernels interactively:
///
///   lgen-cli [options] "<BLAC>"
///
///   --target=atom|a8|a9|arm1176|sandybridge   (default atom)
///   --full            enable the target's full optimization set
///   --samples=N       autotuning random-search sample size (default 10)
///   --emit=c|ir|stats|time|all                what to print (default all)
///
/// Example:
///   lgen-cli --target=a9 --full \
///     "Matrix A(4,16); Vector x(16); Vector y(4); y = A*x;"
///
//===----------------------------------------------------------------------===//

#include "cir/Passes.h"
#include "codegen/CUnparser.h"
#include "compiler/Compiler.h"
#include "ll/Parser.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace lgen;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--target=atom|a8|a9|arm1176|sandybridge] "
               "[--full] [--samples=N] [--emit=c|ir|stats|time|all] "
               "\"<BLAC>\"\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  machine::UArch Target = machine::UArch::Atom;
  bool Full = false;
  unsigned Samples = 10;
  std::string Emit = "all";
  std::string Source;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--target=", 0) == 0) {
      std::string T = Arg.substr(9);
      if (T == "atom")
        Target = machine::UArch::Atom;
      else if (T == "a8")
        Target = machine::UArch::CortexA8;
      else if (T == "a9")
        Target = machine::UArch::CortexA9;
      else if (T == "arm1176")
        Target = machine::UArch::ARM1176;
      else if (T == "sandybridge")
        Target = machine::UArch::SandyBridge;
      else
        return usage(Argv[0]);
    } else if (Arg == "--full") {
      Full = true;
    } else if (Arg.rfind("--samples=", 0) == 0) {
      Samples = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    } else if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg.rfind("--", 0) == 0) {
      return usage(Argv[0]);
    } else {
      Source = Arg;
    }
  }
  if (Source.empty())
    return usage(Argv[0]);

  ll::Program P;
  std::string Err;
  if (!ll::parseProgram(Source, P, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  compiler::Options O = Full ? compiler::Options::lgenFull(Target)
                             : compiler::Options::lgenBase(Target);
  O.SearchSamples = Samples;
  compiler::Compiler C(O);
  compiler::CompiledKernel CK = C.compile(P);
  machine::Microarch M = machine::Microarch::get(Target);

  if (Emit == "ir" || Emit == "all") {
    std::printf("// --- C-IR (%s) ---\n%s\n",
                CK.HasVersions ? "aligned version 0" : "single version",
                CK.kernelFor({}).str().c_str());
  }
  if (Emit == "c" || Emit == "all")
    std::printf("// --- C ---\n%s\n", codegen::unparseCompiled(CK).c_str());
  if (Emit == "stats" || Emit == "all") {
    cir::KernelStats S = cir::computeStats(CK.kernelFor({}));
    std::printf("// --- stats ---\n"
                "insts=%u loads=%u stores=%u shuffles=%u arith=%u loops=%u "
                "versions=%u\n",
                S.NumInsts, S.NumLoads, S.NumStores, S.NumShuffles,
                S.NumArith, S.NumLoops,
                CK.HasVersions ? CK.Versioned.numVersions() : 1);
  }
  if (Emit == "time" || Emit == "all") {
    machine::TimingResult T = CK.time(M);
    std::printf("// --- timing on %s ---\n"
                "cycles=%.1f flops=%.0f perf=%.3f f/c (peak %.0f) "
                "energy=%.1f nJ\n",
                M.Name.c_str(), T.Cycles, CK.Flops, CK.Flops / T.Cycles,
                M.PeakFlopsPerCycle, T.EnergyNJ);
  }
  return 0;
}

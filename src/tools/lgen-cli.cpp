//===- lgen-cli.cpp - Command-line driver for the LGen compiler -----------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CLI around the compile API, for exploring kernels interactively:
///
///   lgen-cli [options] "<BLAC>" ["<BLAC>" ...]
///
///   --target=atom|a8|a9|arm1176|sandybridge   (default atom)
///   --config=LGen|LGen-Align|LGen-MVM|LGen-Full  named configuration
///   --full                 shorthand for --config=LGen-Full
///   --search-samples=N     autotuning sample size (default 10)
///   --search-seed=N        autotuning RNG seed
///   --guided-search        hill-climb instead of random sampling
///   --objective=cycles|energy|edp
///   --tune-backend=model|native
///                          score candidate plans with the timing model
///                          (default) or with real measured cycles on the
///                          host (falls back to the model when the host
///                          cannot run the target ISA)
///   --tuner-threads=N      parallel search lanes (0 = all cores)
///   --cache-dir=PATH       persistent kernel cache ($LGEN_CACHE_DIR too)
///   --cache-stats          print cache hit/miss/eviction counters
///   --emit=c|ir|stats|time|all|none           what to print (default all)
///   --trace[=FILE]         record a pipeline trace; JSON to FILE (or
///                          stdout), human-readable summary to stderr.
///                          Bare --trace defaults --emit to none so stdout
///                          stays pure JSON.
///   --dump-ir=STAGE        print IR at a stage boundary: ll, sll,
///                          sll-opt, cir, cir-final, or all
///   --run[=N]              compile the emitted C with the host toolchain,
///                          execute it natively N times (default 1) over
///                          deterministic random inputs, and print an
///                          output checksum. Exits 1 on toolchain or load
///                          failure; a target ISA the host cannot run is
///                          an explicit skip, not an error.
///   --bench                like --run, but measure: print median ticks
///                          per invocation, flops/cycle, and the counter
///                          and unit used (§5.1.5 protocol)
///   --profile              like --bench, plus a full per-kernel perf
///                          report: static FLOP counts from the C-IR,
///                          hardware counters (instructions, cache and
///                          branch misses — absent, clearly labeled, on
///                          counter-restricted hosts), achieved f/c
///                          against the target's ν-peak, and a memory- vs.
///                          compute-bound verdict
///   --measure-reps=N       timed repetitions for --bench/--profile and
///                          native tuning (default 7)
///   --metrics[=FILE]       after the run, export the process-wide
///                          support::Metrics snapshot as JSON to FILE (or
///                          stdout) and a human summary to stderr
///   --trace-format=json|chrome
///                          trace serialization: the native schema
///                          (default) or Chrome trace events for
///                          Perfetto / chrome://tracing
///
/// Flag names follow the Options::Builder methods one-to-one. Several
/// BLACs compile as one batch over the shared pool and cache.
///
/// Example:
///   lgen-cli --target=a9 --full \
///     "Matrix A(4,16); Vector x(16); Vector y(4); y = A*x;"
///
//===----------------------------------------------------------------------===//

#include "lgen/LGen.h"

#include "cir/Passes.h"
#include "support/Json.h"
#include "runtime/PerfReport.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

using namespace lgen;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--target=atom|a8|a9|arm1176|sandybridge]\n"
      "          [--config=LGen|LGen-Align|LGen-MVM|LGen-Full] [--full]\n"
      "          [--search-samples=N] [--search-seed=N] [--guided-search]\n"
      "          [--objective=cycles|energy|edp] [--tuner-threads=N]\n"
      "          [--tune-backend=model|native] [--cache-dir=PATH]\n"
      "          [--cache-stats]\n"
      "          [--emit=c|ir|stats|time|all|none] [--trace[=FILE]]\n"
      "          [--trace-format=json|chrome] [--metrics[=FILE]]\n"
      "          [--dump-ir=ll|sll|sll-opt|cir|cir-final|all]\n"
      "          [--run[=N]] [--bench] [--profile] [--measure-reps=N]\n"
      "          \"<BLAC>\" [\"<BLAC>\" ...]\n",
      Argv0);
  return 2;
}

bool validStage(const std::string &S) {
  return S == "ll" || S == "sll" || S == "sll-opt" || S == "cir" ||
         S == "cir-final" || S == "all";
}

/// FNV-1a over the output buffer's bytes: a stable one-line fingerprint of
/// a native run's result (bitwise-deterministic for a fixed host/target).
uint64_t checksum(const std::vector<float> &Data) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (float V : Data) {
    unsigned char Bytes[sizeof(float)];
    std::memcpy(Bytes, &V, sizeof(float));
    for (unsigned char B : Bytes) {
      H ^= B;
      H *= 0x100000001b3ULL;
    }
  }
  return H;
}

/// Executes (and with \p Bench, measures) \p CK natively. Returns 0 on
/// success, 1 on toolchain/load failure, and 0 with a printed skip note
/// when the host cannot run the target ISA.
int runNative(const compiler::CompiledKernel &CK, unsigned Runs, bool Bench,
              bool Profile, unsigned MeasureReps) {
  Expected<runtime::NativeKernel> NK = runtime::NativeKernel::load(CK);
  if (!NK) {
    isa::ISAKind ISA = CK.Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar
                                                  : CK.Opts.ISA;
    if (!runtime::CpuInfo::host().supports(ISA)) {
      std::printf("// --- native run skipped ---\n%s\n", NK.error().c_str());
      return 0;
    }
    std::fprintf(stderr, "error: native execution failed: %s\n",
                 NK.error().c_str());
    return 1;
  }

  const ll::Program &P = CK.Blac;
  std::vector<machine::Buffer> Storage;
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  Rng R(0x5eed);
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    const ll::Operand &Op = P.Operands[I];
    Storage.emplace_back(Op.numElements(), 0.0f, 0);
    for (float &V : Storage.back().Data)
      V = static_cast<float>(R.next() % 1000) / 250.0f - 2.0f;
    if (Op.Name == P.OutputName)
      OutIdx = I;
  }
  for (machine::Buffer &B : Storage)
    Params.push_back(&B);

  if (Bench || Profile) {
    runtime::MeasureOptions MO;
    MO.Reps = MeasureReps;
    runtime::MeasureResult M = runtime::measure(*NK, Params, MO);
    if (Bench)
      std::printf("// --- native bench ---\n"
                  "%s=%.1f (median of %u, x%u inner) perf=%.3f f/%s "
                  "counter=%s checksum=%016llx\n",
                  M.Unit.c_str(), M.MedianCycles,
                  static_cast<unsigned>(M.Samples.size()), M.InnerIters,
                  M.MedianCycles > 0 ? CK.Flops / M.MedianCycles : 0.0,
                  M.Unit == "cycles" ? "c" : M.Unit.c_str(),
                  M.Counter.c_str(),
                  (unsigned long long)checksum(Storage[OutIdx].Data));
    if (Profile)
      std::printf("%s", runtime::makeReport(CK, M).str().c_str());
    return 0;
  }

  // --run=N: N independent executions over the same inputs (each run
  // re-marshals, so an InOut output does not accumulate across runs).
  std::vector<std::vector<float>> Pristine;
  for (const machine::Buffer &B : Storage)
    Pristine.push_back(B.Data);
  for (unsigned I = 0; I != Runs; ++I) {
    for (size_t J = 0; J != Storage.size(); ++J)
      Storage[J].Data = Pristine[J];
    NK->execute(Params);
  }
  std::printf("// --- native run (x%u) ---\nchecksum=%016llx\n", Runs,
              (unsigned long long)checksum(Storage[OutIdx].Data));
  return 0;
}

void printKernel(const compiler::CompiledKernel &CK,
                 const machine::Microarch &M, const std::string &Emit) {
  if (Emit == "ir" || Emit == "all") {
    std::printf("// --- C-IR (%s) ---\n%s\n",
                CK.HasVersions ? "aligned version 0" : "single version",
                CK.kernelFor({}).str().c_str());
  }
  if (Emit == "c" || Emit == "all")
    std::printf("// --- C ---\n%s\n", codegen::unparseCompiled(CK).c_str());
  if (Emit == "stats" || Emit == "all") {
    cir::KernelStats S = cir::computeStats(CK.kernelFor({}));
    std::printf("// --- stats ---\n"
                "insts=%u loads=%u stores=%u shuffles=%u arith=%u loops=%u "
                "versions=%u\n",
                S.NumInsts, S.NumLoads, S.NumStores, S.NumShuffles,
                S.NumArith, S.NumLoops,
                CK.HasVersions ? CK.Versioned.numVersions() : 1);
  }
  if (Emit == "time" || Emit == "all") {
    machine::TimingResult T = CK.time(M);
    std::printf("// --- timing on %s ---\n"
                "cycles=%.1f flops=%.0f perf=%.3f f/c (peak %.0f) "
                "energy=%.1f nJ\n",
                M.Name.c_str(), T.Cycles, CK.Flops, CK.Flops / T.Cycles,
                M.PeakFlopsPerCycle, T.EnergyNJ);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  machine::UArch Target = machine::UArch::Atom;
  std::string Config = "LGen";
  unsigned SearchSamples = 10;
  uint64_t SearchSeed = 1;
  bool GuidedSearch = false;
  compiler::TuneObjective Objective = compiler::TuneObjective::Cycles;
  unsigned TunerThreads = 1;
  std::string CacheDir = compiler::KernelCache::defaultDir();
  bool CacheStats = false;
  std::string Emit = "all";
  bool EmitSet = false;
  bool TraceOn = false;
  std::string TraceFile;
  std::string DumpIr;
  compiler::TuneBackend Backend = compiler::TuneBackend::Model;
  unsigned Runs = 0;
  bool Bench = false;
  bool Profile = false;
  unsigned MeasureReps = 7;
  bool MetricsOn = false;
  std::string MetricsFile;
  std::string TraceFormat = "json";
  std::vector<std::string> Sources;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--target=", 0) == 0) {
      std::string T = Arg.substr(9);
      if (T == "atom")
        Target = machine::UArch::Atom;
      else if (T == "a8")
        Target = machine::UArch::CortexA8;
      else if (T == "a9")
        Target = machine::UArch::CortexA9;
      else if (T == "arm1176")
        Target = machine::UArch::ARM1176;
      else if (T == "sandybridge")
        Target = machine::UArch::SandyBridge;
      else
        return usage(Argv[0]);
    } else if (Arg.rfind("--config=", 0) == 0) {
      Config = Arg.substr(9);
    } else if (Arg == "--full") {
      Config = "LGen-Full";
    } else if (Arg.rfind("--search-samples=", 0) == 0) {
      SearchSamples = static_cast<unsigned>(std::atoi(Arg.c_str() + 17));
    } else if (Arg.rfind("--search-seed=", 0) == 0) {
      SearchSeed = static_cast<uint64_t>(std::atoll(Arg.c_str() + 14));
    } else if (Arg == "--guided-search") {
      GuidedSearch = true;
    } else if (Arg.rfind("--objective=", 0) == 0) {
      std::string Obj = Arg.substr(12);
      if (Obj == "cycles")
        Objective = compiler::TuneObjective::Cycles;
      else if (Obj == "energy")
        Objective = compiler::TuneObjective::Energy;
      else if (Obj == "edp")
        Objective = compiler::TuneObjective::EDP;
      else
        return usage(Argv[0]);
    } else if (Arg.rfind("--tune-backend=", 0) == 0) {
      std::string B = Arg.substr(15);
      if (B == "model")
        Backend = compiler::TuneBackend::Model;
      else if (B == "native")
        Backend = compiler::TuneBackend::Native;
      else
        return usage(Argv[0]);
    } else if (Arg == "--run") {
      Runs = 1;
    } else if (Arg.rfind("--run=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + 6);
      if (N < 1)
        return usage(Argv[0]);
      Runs = static_cast<unsigned>(N);
    } else if (Arg == "--bench") {
      Bench = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg.rfind("--measure-reps=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + 15);
      if (N < 1)
        return usage(Argv[0]);
      MeasureReps = static_cast<unsigned>(N);
    } else if (Arg.rfind("--tuner-threads=", 0) == 0) {
      TunerThreads = static_cast<unsigned>(std::atoi(Arg.c_str() + 16));
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      CacheDir = Arg.substr(12);
    } else if (Arg == "--cache-stats") {
      CacheStats = true;
    } else if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
      EmitSet = true;
      if (Emit != "c" && Emit != "ir" && Emit != "stats" && Emit != "time" &&
          Emit != "all" && Emit != "none")
        return usage(Argv[0]);
    } else if (Arg == "--trace") {
      TraceOn = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceOn = true;
      TraceFile = Arg.substr(8);
      if (TraceFile.empty())
        return usage(Argv[0]);
    } else if (Arg.rfind("--trace-format=", 0) == 0) {
      TraceFormat = Arg.substr(15);
      if (TraceFormat != "json" && TraceFormat != "chrome")
        return usage(Argv[0]);
    } else if (Arg == "--metrics") {
      MetricsOn = true;
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      MetricsOn = true;
      MetricsFile = Arg.substr(10);
      if (MetricsFile.empty())
        return usage(Argv[0]);
    } else if (Arg.rfind("--dump-ir=", 0) == 0) {
      DumpIr = Arg.substr(10);
      if (!validStage(DumpIr))
        return usage(Argv[0]);
    } else if (Arg.rfind("--", 0) == 0) {
      return usage(Argv[0]);
    } else {
      Sources.push_back(Arg);
    }
  }
  if (Sources.empty())
    return usage(Argv[0]);
  // Bare --trace / --metrics stream JSON to stdout; suppress kernel output
  // there so the result stays machine-parseable unless the user asked for
  // both.
  if (((TraceOn && TraceFile.empty()) || (MetricsOn && MetricsFile.empty())) &&
      !EmitSet)
    Emit = "none";

  Expected<compiler::Options> Named = compiler::Options::named(Config, Target);
  if (!Named) {
    std::fprintf(stderr, "error: %s\n", Named.error().c_str());
    return 2;
  }
  compiler::Options O = *Named;
  O.SearchSamples = SearchSamples;
  O.SearchSeed = SearchSeed;
  O.GuidedSearch = GuidedSearch;
  O.Objective = Objective;
  O.Backend = Backend;
  O.MeasureReps = MeasureReps;
  O.TunerThreads = TunerThreads;
  O.CacheDir = CacheDir;

  compiler::Compiler C(O);
  if (CacheStats && !C.kernelCache())
    C.setKernelCache(std::make_shared<compiler::KernelCache>(""));
  machine::Microarch M = machine::Microarch::get(Target);

  // The trace sink outlives the batch; installed only on request so the
  // untraced CLI path exercises the zero-cost configuration.
  support::Trace Trace;
  bool Tracing = TraceOn || !DumpIr.empty();
  if (Tracing) {
    if (!DumpIr.empty())
      Trace.setSnapshotStages(DumpIr);
    support::Trace::setActive(&Trace);
  }

  std::vector<Expected<compiler::CompiledKernel>> Kernels;
  try {
    Kernels = C.compileBatch(Sources);
  } catch (const std::exception &E) {
    support::Trace::setActive(nullptr);
    std::fprintf(stderr, "error: internal compiler error: %s\n", E.what());
    return 1;
  }
  support::Trace::setActive(nullptr);

  int Rc = 0;
  for (size_t I = 0; I != Kernels.size(); ++I) {
    if (Sources.size() > 1 && Emit != "none")
      std::printf("// ===== BLAC %zu: %s =====\n", I, Sources[I].c_str());
    if (!Kernels[I]) {
      std::fprintf(stderr, "error: %s\n", Kernels[I].error().c_str());
      Rc = 1;
      continue;
    }
    printKernel(*Kernels[I], M, Emit);
    if (Runs || Bench || Profile)
      if (runNative(*Kernels[I], Runs ? Runs : 1, Bench, Profile,
                    MeasureReps))
        Rc = 1;
  }

  if (!DumpIr.empty())
    for (const support::TraceSnapshot &S : Trace.snapshots())
      std::printf("// --- %s IR (%s) ---\n%s\n", S.Stage.c_str(),
                  S.Kernel.c_str(), S.Text.c_str());

  if (TraceOn) {
    std::string Json = (TraceFormat == "chrome" ? Trace.toChromeJson()
                                                : Trace.toJson())
                           .serialize();
    if (TraceFile.empty()) {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(TraceFile, std::ios::trunc);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     TraceFile.c_str());
        Rc = 1;
      } else {
        Out << Json << "\n";
      }
    }
    std::fprintf(stderr, "%s", Trace.summary().c_str());
    // Cache activity belongs in the trace-side summary too, but the single
    // source of truth for it is the Metrics registry, not trace counters.
    std::fprintf(stderr, "%s",
                 support::Metrics::global()
                     .snapshot()
                     .str("kernelcache.")
                     .c_str());
  }

  if (MetricsOn) {
    support::Metrics::Snapshot Snap = support::Metrics::global().snapshot();
    std::string Json = Snap.toJson().serialize();
    if (MetricsFile.empty()) {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(MetricsFile, std::ios::trunc);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write metrics to %s\n",
                     MetricsFile.c_str());
        Rc = 1;
      } else {
        Out << Json << "\n";
      }
    }
    std::fprintf(stderr, "%s", Snap.str().c_str());
  }

  if (CacheStats && C.kernelCache()) {
    // Two scopes, labeled: the first line is *this instance's* activity
    // (what this compile did), the second the process-cumulative
    // kernelcache.* metrics — they differ whenever a process holds more
    // than one cache (the service does), which used to double-count.
    const compiler::KernelCache &KC = *C.kernelCache();
    compiler::CacheStats S = KC.instanceStats();
    compiler::CacheStats G = compiler::KernelCache::stats();
    std::printf("// --- cache (%s, %u shards, this instance) ---\n"
                "hits=%llu (memory=%llu plan=%llu native=%llu) misses=%llu "
                "evictions=%llu stores=%llu entries=%zu\n"
                "// process-cumulative (all caches): hits=%llu misses=%llu "
                "evictions=%llu stores=%llu\n",
                KC.directory().empty() ? "in-memory"
                                       : KC.directory().c_str(),
                KC.numShards(), (unsigned long long)S.hits(),
                (unsigned long long)S.MemoryHits,
                (unsigned long long)S.PlanHits,
                (unsigned long long)S.NativeHits,
                (unsigned long long)S.Misses,
                (unsigned long long)S.Evictions,
                (unsigned long long)S.Stores, KC.numPlans(),
                (unsigned long long)G.hits(), (unsigned long long)G.Misses,
                (unsigned long long)G.Evictions,
                (unsigned long long)G.Stores);
  }
  return Rc;
}

//===- lgen-serve.cpp - The LGen compile service daemon -------------------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone daemon hosting the compile service (src/service/): binds an
/// HTTP port and serves the Mediator protocol v1 — POST /rpc for job.*,
/// compile.* and service.* methods, GET /healthz and GET /metrics for
/// operational snapshots. A simulated device ("local") is registered with
/// the embedded Mediator so job.* requests work out of the box; compile.*
/// requests run through the async, batched, admission-controlled queue.
///
/// Prints "listening on HOST:PORT" once ready (CI and scripts wait for
/// that line), then runs until SIGINT/SIGTERM.
///
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "machine/Microarch.h"
#include "mediator/Mediator.h"
#include "service/Service.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

using namespace lgen;

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested = true; }

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host ADDR          bind address (default 127.0.0.1)\n"
      "  --port N             port; 0 picks an ephemeral one (default 8790)\n"
      "  --conn-workers N     connection worker lanes (default 8)\n"
      "  --conn-queue N       accepted-connection queue cap (default 1024)\n"
      "  --queue-workers N    compile worker threads (default 2)\n"
      "  --batch-max N        max requests coalesced per batch (default 32)\n"
      "  --high-water N       queued-request admission cap (default 4096)\n"
      "  --cache-dir DIR      persistent kernel cache ('' = in-memory)\n"
      "  --recv-timeout-ms N  per-socket receive timeout (default 10000)\n"
      "  --device-cores N     cores of the simulated 'local' device "
      "(default 2)\n",
      Argv0);
}

bool parseUnsigned(const char *S, long &Out) {
  char *End = nullptr;
  Out = std::strtol(S, &End, 10);
  return End && *End == '\0' && Out >= 0;
}

/// The simulated device backing job.* requests: compiles each experiment's
/// BLAC for the Atom model and reports model-timed cycles (the same shape
/// the examples and tests use).
json::Value runExperiment(const json::Value &Exp, unsigned /*Core*/) {
  const json::Value &Cmds = Exp["execCommands"];
  if (!Cmds.isArray() || Cmds.asArray().empty())
    throw std::runtime_error("experiment has no execCommands");
  compiler::Compiler C(
      compiler::Options::builder(machine::UArch::Atom).full().build());
  auto Compiled = C.compile(Cmds.asArray()[0].asString());
  if (!Compiled)
    throw std::runtime_error(Compiled.error());
  auto CK = std::move(*Compiled);
  auto T = CK.time(machine::Microarch::get(machine::UArch::Atom));
  json::Object R;
  R["cycles"] = T.Cycles;
  R["flops"] = CK.Flops;
  R["flopsPerCycle"] = T.Cycles > 0 ? CK.Flops / T.Cycles : 0.0;
  return json::Value(std::move(R));
}

} // namespace

int main(int Argc, char **Argv) {
  service::ServiceConfig Config;
  Config.Port = 8790;
  long DeviceCores = 2;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    long N = 0;
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (Arg == "--host") {
      Config.Host = needValue();
    } else if (Arg == "--port") {
      if (!parseUnsigned(needValue(), N) || N > 65535) {
        std::fprintf(stderr, "bad --port\n");
        return 2;
      }
      Config.Port = static_cast<uint16_t>(N);
    } else if (Arg == "--conn-workers") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.ConnWorkers = static_cast<unsigned>(N);
    } else if (Arg == "--conn-queue") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.ConnQueueMax = static_cast<size_t>(N);
    } else if (Arg == "--queue-workers") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.Queue.Workers = static_cast<unsigned>(N);
    } else if (Arg == "--batch-max") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.Queue.BatchMax = static_cast<unsigned>(N);
    } else if (Arg == "--high-water") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.Queue.HighWater = static_cast<size_t>(N);
    } else if (Arg == "--cache-dir") {
      Config.Queue.CacheDir = needValue();
    } else if (Arg == "--recv-timeout-ms") {
      if (!parseUnsigned(needValue(), N))
        return 2;
      Config.RecvTimeoutMs = static_cast<int>(N);
    } else if (Arg == "--device-cores") {
      if (!parseUnsigned(needValue(), N) || N < 1)
        return 2;
      DeviceCores = N;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 2;
    }
  }

  mediator::Mediator Med;
  Med.registerDevice("local", static_cast<unsigned>(DeviceCores),
                     runExperiment);

  service::Service Svc(Config, &Med);
  std::string Err;
  if (!Svc.start(Err)) {
    std::fprintf(stderr, "lgen-serve: %s\n", Err.c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", Config.Host.c_str(),
              static_cast<unsigned>(Svc.port()));
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!StopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Orderly shutdown: stop the HTTP front end first (no new submits),
  // then let queued compiles finish and persist the shared cache — a kill
  // mid-batch must not discard plans tuned on real measured cycles.
  std::printf("shutting down: draining compile queue\n");
  std::fflush(stdout);
  Svc.stop();
  Svc.drain();
  std::printf("shutdown complete\n");
  return 0;
}

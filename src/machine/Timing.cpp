//===- Timing.cpp - Greedy scoreboard timing simulation --------*- C++ -*-===//

#include "machine/Timing.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace lgen;
using namespace lgen::machine;
using namespace lgen::cir;

namespace {

/// Static per-region spill estimate: the number of vector values
/// simultaneously live inside each straight-line region beyond the
/// architectural register file.
class SpillAnalysis {
public:
  SpillAnalysis(const Kernel &K, unsigned NumVecRegs) : K(K) {
    // Last syntactic use of every register.
    unsigned Pos = 0;
    K.forEachInst([&](const Inst &I) {
      I.forEachUse([&](RegId R) { LastUse[R] = Pos; });
      ++Pos;
    });
    Counter = 0;
    analyze(K.getBody(), NumVecRegs);
  }

  /// Excess live vector values for the region identified by its body
  /// address.
  unsigned excessFor(const std::vector<Node> *Body) const {
    auto It = Excess.find(Body);
    return It == Excess.end() ? 0 : It->second;
  }

private:
  void analyze(const std::vector<Node> &Body, unsigned NumVecRegs) {
    unsigned Live = 0, MaxLive = 0;
    std::map<unsigned, unsigned> DeathsAt; // position -> dying vec regs
    for (const Node &N : Body) {
      if (N.isLoop()) {
        analyze(N.loop().Body, NumVecRegs);
        continue;
      }
      const Inst &I = N.inst();
      unsigned Pos = Counter++;
      auto DIt = DeathsAt.begin();
      while (DIt != DeathsAt.end() && DIt->first <= Pos) {
        Live -= DIt->second;
        DIt = DeathsAt.erase(DIt);
      }
      if (I.Dest != NoReg && K.lanesOf(I.Dest) > 1) {
        ++Live;
        MaxLive = std::max(MaxLive, Live);
        auto LU = LastUse.find(I.Dest);
        unsigned Death = LU == LastUse.end() ? Pos + 1 : LU->second + 1;
        ++DeathsAt[Death];
      }
    }
    if (MaxLive > NumVecRegs)
      Excess[&Body] = MaxLive - NumVecRegs;
  }

  const Kernel &K;
  std::map<RegId, unsigned> LastUse;
  std::map<const std::vector<Node> *, unsigned> Excess;
  unsigned Counter = 0;
};

class Scoreboard {
public:
  Scoreboard(const Kernel &K, const Microarch &M, double MemPenalty)
      : K(K), M(M), MemPenalty(MemPenalty), Spills(K, M.NumVecRegs) {
    RegReady.resize(K.getNumRegs(), 0.0);
    PortFree.resize(M.NumPorts, 0.0);
  }

  TimingResult run() {
    replay(K.getBody());
    TimingResult R;
    R.Cycles = Frontier;
    for (double P : PortFree)
      R.Cycles = std::max(R.Cycles, P);
    R.InstsIssued = Issued;
    R.SpillCycles = SpillCycles;
    R.MemPenalty = MemPenalty;
    R.EnergyNJ = DynamicEnergy + R.Cycles * M.EnergyPerCycleNJ;
    return R;
  }

private:
  void replay(const std::vector<Node> &Body) {
    // Spill traffic for over-long straight-line regions: one store+reload
    // round trip per excess live value, charged as frontend occupancy.
    if (unsigned Excess = Spills.excessFor(&Body)) {
      double Penalty = 3.0 * Excess * MemPenalty;
      Fetch += Penalty;
      SpillCycles += Penalty;
    }
    for (const Node &N : Body) {
      if (N.isLoop()) {
        const Loop &L = N.loop();
        for (int64_t V = L.Start; V < L.End; V += L.Step) {
          // Loop bookkeeping consumes frontend slots each iteration.
          Fetch += static_cast<double>(M.LoopOverheadCycles) /
                   (M.InOrder ? 1.0 : M.IssueWidth);
          replay(L.Body);
        }
        continue;
      }
      issue(N.inst());
    }
  }

  void issue(const Inst &I) {
    ++Issued;
    DynamicEnergy += M.energyOf(K, I);
    InstCost Cost = M.costOf(K, I);
    double Occupancy = Cost.RecipThroughput;
    double Latency = Cost.Latency;
    if (isMemoryOpcode(I.Op)) {
      // Past the L1 capacity both the issue occupancy and the load-to-use
      // latency stretch (misses take longer, not just more bandwidth).
      Occupancy *= MemPenalty;
      if (I.isLoad())
        Latency *= MemPenalty;
    }

    double OpsReady = 0.0;
    I.forEachUse(
        [&](RegId R) { OpsReady = std::max(OpsReady, RegReady[R]); });

    // Earliest admissible port among the choices.
    unsigned BestPort = 0;
    double BestFree = std::numeric_limits<double>::max();
    for (unsigned P = 0; P != M.NumPorts; ++P) {
      if (!(Cost.PortChoices & (1u << P)))
        continue;
      if (PortFree[P] < BestFree) {
        BestFree = PortFree[P];
        BestPort = P;
      }
    }
    assert(BestFree != std::numeric_limits<double>::max() &&
           "instruction has no admissible port on this microarchitecture");

    double Start = std::max(BestFree, Fetch);
    if (M.InOrder) {
      // The whole stream stalls until operands are ready.
      Start = std::max(Start, OpsReady);
      Fetch = std::max(Fetch + 1.0 / M.IssueWidth, Start);
    } else {
      // Out of order: dataflow still binds this instruction, but the fetch
      // stream advances independently.
      Start = std::max(Start, OpsReady);
      Fetch += 1.0 / M.IssueWidth;
    }

    if (Cost.BlocksAllPorts) {
      for (double &P : PortFree)
        P = std::max(P, Start + Occupancy);
    } else {
      PortFree[BestPort] = Start + Occupancy;
    }
    if (I.Dest != NoReg)
      RegReady[I.Dest] = Start + Latency;
    Frontier = std::max(Frontier, Start + Occupancy);
  }

  const Kernel &K;
  const Microarch &M;
  double MemPenalty;
  SpillAnalysis Spills;
  std::vector<double> RegReady;
  std::vector<double> PortFree;
  double Fetch = 0.0;
  double Frontier = 0.0;
  double SpillCycles = 0.0;
  double DynamicEnergy = 0.0;
  uint64_t Issued = 0;
};

size_t kernelFootprintBytes(const Kernel &K) {
  // Only arrays the kernel actually touches count (dead temporaries may
  // survive as declarations after DCE).
  std::vector<bool> Accessed(K.getNumArrays(), false);
  K.forEachInst([&](const Inst &I) {
    if (isMemoryOpcode(I.Op))
      Accessed[I.Address.Array] = true;
  });
  size_t Bytes = 0;
  for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id)
    if (Accessed[Id])
      Bytes += static_cast<size_t>(K.getArray(Id).NumElements) *
               sizeof(float);
  return Bytes;
}

} // namespace

TimingResult machine::simulate(const Kernel &K, const Microarch &M,
                               double ExtraOverheadCycles) {
  double MemPenalty = M.cachePenalty(kernelFootprintBytes(K));
  Scoreboard SB(K, M, MemPenalty);
  TimingResult R = SB.run();
  R.OverheadCycles = ExtraOverheadCycles;
  R.Cycles += ExtraOverheadCycles;
  return R;
}

//===- Microarch.cpp - Embedded microarchitecture timing models ----------===//

#include "machine/Microarch.h"

#include <algorithm>

using namespace lgen;
using namespace lgen::machine;
using namespace lgen::cir;

const char *machine::uarchName(UArch U) {
  switch (U) {
  case UArch::Atom:
    return "Intel Atom";
  case UArch::CortexA8:
    return "ARM Cortex-A8";
  case UArch::CortexA9:
    return "ARM Cortex-A9";
  case UArch::ARM1176:
    return "ARM1176";
  case UArch::SandyBridge:
    return "Intel Sandy Bridge";
  }
  LGEN_UNREACHABLE("unknown microarchitecture");
}

Microarch Microarch::get(UArch U) {
  Microarch M;
  M.Kind = U;
  M.Name = uarchName(U);
  switch (U) {
  case UArch::Atom:
    // Table 2.2: in-order, 2-wide, 24 KB L1D, SSSE3, peak 6 flops/cycle.
    M.IssueWidth = 2;
    M.InOrder = true;
    M.NumPorts = 2;
    M.L1DataBytes = 24 * 1024;
    M.NumVecRegs = 16;
    M.LoopOverheadCycles = 2;
    M.PeakFlopsPerCycle = 6.0;
    break;
  case UArch::CortexA8:
    // Table 2.3: in-order; NEON issues one load/store and one
    // data-processing instruction per cycle (§2.2.2); peak 4 flops/cycle.
    M.IssueWidth = 2;
    M.InOrder = true;
    M.NumPorts = 2; // Port 0: NEON LS, port 1: NEON DP (and scalar FP).
    M.L1DataBytes = 32 * 1024;
    M.NumVecRegs = 16;
    M.LoopOverheadCycles = 2;
    M.PeakFlopsPerCycle = 4.0;
    break;
  case UArch::CortexA9:
    // Table 2.4: out-of-order, but the NEON pipeline issues only one
    // instruction per cycle and memory accesses share that port (§2.2.3).
    M.IssueWidth = 2;
    M.InOrder = false;
    M.NumPorts = 3; // Port 0: NEON (all), port 1: VFP, port 2: scalar LS.
    M.L1DataBytes = 32 * 1024;
    M.NumVecRegs = 16;
    M.LoopOverheadCycles = 1;
    M.PeakFlopsPerCycle = 4.0;
    break;
  case UArch::ARM1176:
    // Table 2.5: scalar VFP with FMAC/DS/LS pipelines, peak 1 flop/cycle.
    M.IssueWidth = 1;
    M.InOrder = true;
    M.NumPorts = 3; // Port 0: FMAC, port 1: DS, port 2: LS.
    M.L1DataBytes = 16 * 1024;
    M.NumVecRegs = 16;
    M.LoopOverheadCycles = 3;
    M.PeakFlopsPerCycle = 1.0;
    break;
  case UArch::SandyBridge:
    // Out-of-order desktop core with AVX: one 8-wide add and one 8-wide
    // multiply per cycle → peak 16 flops/cycle; two load ports.
    M.IssueWidth = 4;
    M.InOrder = false;
    M.NumPorts = 4; // P0: mul, P1: add, P2/P3: loads; stores share P2.
    M.L1DataBytes = 32 * 1024;
    M.NumVecRegs = 16;
    M.LoopOverheadCycles = 1;
    M.PeakFlopsPerCycle = 16.0;
    break;
  }
  return M;
}

namespace {

InstCost make(unsigned Latency, unsigned RecipThroughput, uint8_t Ports,
              bool BlocksAll = false) {
  return InstCost{Latency, RecipThroughput, Ports, BlocksAll};
}

bool isVecArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Neg:
  case Opcode::FMA:
  case Opcode::MulLane:
  case Opcode::FMALane:
    return true;
  default:
    return false;
  }
}

bool isShuffleLike(Opcode Op) {
  switch (Op) {
  case Opcode::Shuffle:
  case Opcode::Insert:
  case Opcode::Extract:
  case Opcode::Broadcast:
  case Opcode::Combine:
    return true;
  default:
    return false;
  }
}

bool isRegAlias(Opcode Op) {
  // Register moves and half-register views are (almost) free renames.
  switch (Op) {
  case Opcode::Mov:
  case Opcode::GetLow:
  case Opcode::GetHigh:
  case Opcode::Zero:
  case Opcode::FConst:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Intel Atom: ports {P0 = 0x1, P1 = 0x2}. Loads/stores and multiplies share
// P0 with part of the ALU traffic; addition can go to either port; the
// horizontal add is microcoded, occupying both ports for 7 cycles
// (Table 3.1: addps 5/1, haddps 8/7).
//===----------------------------------------------------------------------===//

InstCost atomCost(const Inst &I, unsigned Lanes) {
  constexpr uint8_t P0 = 0x1, P1 = 0x2, Any = 0x3;
  if (I.Op == Opcode::HAdd)
    return make(8, 7, Any, /*BlocksAll=*/true);
  if (I.Op == Opcode::DotPS) // No SSE4.1 on Atom; microcoded stand-in.
    return make(12, 10, Any, /*BlocksAll=*/true);
  if (I.Op == Opcode::Div)
    return make(31, 31, P0);
  if (I.Op == Opcode::FMA) // No FMA on SSSE3: models a mul+add pair.
    return make(10, 3, P0);
  if (isVecArith(I.Op)) {
    if (I.Op == Opcode::Mul)
      return make(5, 2, P0);
    return make(5, 1, Lanes > 1 ? P1 : Any);
  }
  if (isShuffleLike(I.Op))
    return make(1, 1, P0);
  if (isRegAlias(I.Op))
    return make(1, 1, Any);
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::GLoad:
    if (Lanes > 1 && !I.Aligned)
      return make(7, 5, P0); // movups is microcoded on Atom.
    return make(3, 1, P0);
  case Opcode::Store:
  case Opcode::GStore:
    if (Lanes > 1 && !I.Aligned)
      return make(7, 6, P0);
    return make(3, 1, P0);
  case Opcode::LoadBroadcast:
    return make(4, 1, P0);
  case Opcode::LoadLane:
  case Opcode::StoreLane:
    return make(4, 2, P0);
  default:
    return make(1, 1, Any);
  }
}

//===----------------------------------------------------------------------===//
// Cortex-A8: port 0 = NEON load/store, port 1 = NEON data processing.
// Doubleword DP runs twice as fast as quadword (§2.2.2); scalar floating
// point executes on the NEON unit with a minimum of ~7 cycles per
// instruction, which is what makes compiler-generated scalar code so slow
// on this core (§5.3.1).
//===----------------------------------------------------------------------===//

InstCost a8Cost(const Inst &I, unsigned Lanes) {
  constexpr uint8_t LS = 0x1, DP = 0x2;
  bool Quad = Lanes > 2;
  if (isVecArith(I.Op)) {
    if (Lanes == 1)
      return make(9, 7, DP); // Scalar FP on the NEON unit.
    bool Acc = I.Op == Opcode::FMA || I.Op == Opcode::FMALane;
    // Accumulator forwarding keeps back-to-back multiply-accumulates fast.
    unsigned Lat = Acc ? (Quad ? 4 : 2) : (Quad ? 6 : 4);
    return make(Lat, Quad ? 2 : 1, DP);
  }
  if (I.Op == Opcode::HAdd) // vpadd, doubleword only.
    return make(4, 1, DP);
  if (I.Op == Opcode::Div)
    return make(25, 20, DP);
  if (isShuffleLike(I.Op))
    return make(2, 1, DP);
  if (isRegAlias(I.Op))
    return make(1, 1, DP);
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::GLoad:
  case Opcode::LoadBroadcast:
    return make(3, 1, LS);
  case Opcode::Store:
  case Opcode::GStore:
    return make(3, 1, LS);
  case Opcode::LoadLane:
  case Opcode::StoreLane:
    return make(4, 1, LS);
  default:
    return make(1, 1, DP);
  }
}

//===----------------------------------------------------------------------===//
// Cortex-A9: one NEON issue port shared by data processing *and* vector
// memory accesses (§2.2.3); doubleword DP again twice as fast; pipelined
// VFP makes scalar code far more palatable than on the A8.
//===----------------------------------------------------------------------===//

InstCost a9Cost(const Inst &I, unsigned Lanes) {
  constexpr uint8_t NEON = 0x1, VFP = 0x2, SLS = 0x4;
  bool Quad = Lanes > 2;
  if (isVecArith(I.Op)) {
    if (Lanes == 1) {
      // Pipelined VFP — far better than the A8's NEON-unit scalar path,
      // but nowhere near one op per cycle in practice (§5.4.1 keeps every
      // scalar competitor below LGen's NEON code); the MAC pipe iterates.
      bool Mac = I.Op == Opcode::FMA;
      return make(Mac ? 9 : 5, Mac ? 4 : 2, VFP);
    }
    bool Acc = I.Op == Opcode::FMA || I.Op == Opcode::FMALane;
    unsigned Lat = Acc ? (Quad ? 4 : 3) : (Quad ? 5 : 3);
    return make(Lat, Quad ? 2 : 1, NEON);
  }
  if (I.Op == Opcode::HAdd)
    return make(3, 1, NEON);
  if (I.Op == Opcode::Div)
    return make(15, 10, VFP);
  if (isShuffleLike(I.Op))
    return make(2, 1, NEON);
  if (isRegAlias(I.Op))
    return make(1, 1, NEON);
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::GLoad:
  case Opcode::LoadBroadcast:
    return Lanes > 1 ? make(4, Quad ? 2 : 1, NEON) : make(3, 1, SLS);
  case Opcode::Store:
  case Opcode::GStore:
    return Lanes > 1 ? make(3, Quad ? 2 : 1, NEON) : make(2, 1, SLS);
  case Opcode::LoadLane:
  case Opcode::StoreLane:
    return make(4, 2, NEON);
  default:
    return make(1, 1, NEON);
  }
}

//===----------------------------------------------------------------------===//
// ARM1176: scalar VFP11. FMAC pipeline for arithmetic, DS for divides, LS
// for memory. Vector instructions never reach this model.
//===----------------------------------------------------------------------===//

InstCost arm1176Cost(const Inst &I, unsigned Lanes) {
  constexpr uint8_t FMAC = 0x1, DS = 0x2, LS = 0x4;
  assert(Lanes <= 1 && "vector instruction on ARM1176");
  (void)Lanes;
  if (isVecArith(I.Op)) {
    if (I.Op == Opcode::FMA)
      return make(9, 2, FMAC);
    return make(8, 1, FMAC);
  }
  if (I.Op == Opcode::Div)
    return make(19, 19, DS);
  if (isRegAlias(I.Op) || isShuffleLike(I.Op))
    return make(1, 1, FMAC);
  if (isMemoryOpcode(I.Op))
    return make(4, 1, LS);
  return make(1, 1, FMAC);
}

//===----------------------------------------------------------------------===//
// Sandy Bridge: out-of-order, AVX. Table 3.1 row: addps 3/1, haddps 5/2;
// unaligned accesses cost (almost) the same as aligned ones ("in many
// modern microarchitectures", §3.2.1).
//===----------------------------------------------------------------------===//

InstCost sbCost(const Inst &I, unsigned Lanes) {
  constexpr uint8_t PMul = 0x1, PAdd = 0x2, PLd0 = 0x4, PLd1 = 0x8;
  constexpr uint8_t PLoads = PLd0 | PLd1;
  (void)Lanes;
  if (I.Op == Opcode::HAdd)
    return make(5, 2, PMul); // Table 3.1: 5/2, one port.
  if (I.Op == Opcode::DotPS)
    return make(12, 2, PMul); // dpps: long latency, decent throughput.
  if (I.Op == Opcode::Div)
    return make(21, 14, PMul);
  if (I.Op == Opcode::FMA)
    return make(8, 2, PMul); // mul+add pair; no FMA before Haswell.
  if (isVecArith(I.Op)) {
    if (I.Op == Opcode::Mul || I.Op == Opcode::MulLane)
      return make(5, 1, PMul);
    return make(3, 1, PAdd);
  }
  if (isShuffleLike(I.Op))
    return make(1, 1, PMul);
  if (isRegAlias(I.Op))
    return make(1, 1, PMul | PAdd);
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::GLoad:
  case Opcode::LoadBroadcast:
    return make(4, 1, PLoads);
  case Opcode::Store:
  case Opcode::GStore:
    return make(4, 1, PLd0);
  case Opcode::LoadLane:
  case Opcode::StoreLane:
    return make(5, 2, PLd0);
  default:
    return make(1, 1, PAdd);
  }
}

} // namespace

InstCost Microarch::costOf(const Kernel &K, const Inst &I) const {
  unsigned Lanes = 1;
  if (I.Dest != NoReg)
    Lanes = K.lanesOf(I.Dest);
  else if (I.A != NoReg)
    Lanes = K.lanesOf(I.A);
  switch (Kind) {
  case UArch::Atom:
    return atomCost(I, Lanes);
  case UArch::CortexA8:
    return a8Cost(I, Lanes);
  case UArch::CortexA9:
    return a9Cost(I, Lanes);
  case UArch::ARM1176:
    return arm1176Cost(I, Lanes);
  case UArch::SandyBridge:
    return sbCost(I, Lanes);
  }
  LGEN_UNREACHABLE("unknown microarchitecture");
}

double Microarch::cachePenalty(size_t FootprintBytes) const {
  double Ratio =
      static_cast<double>(FootprintBytes) / static_cast<double>(L1DataBytes);
  if (Ratio <= 1.0)
    return 1.0;
  return 1.0 + 0.8 * std::min(3.0, Ratio - 1.0);
}

double Microarch::energyOf(const Kernel &K, const Inst &I) const {
  unsigned Lanes = 1;
  if (I.Dest != NoReg)
    Lanes = K.lanesOf(I.Dest);
  else if (I.A != NoReg)
    Lanes = K.lanesOf(I.A);
  double Width = 0.5 + 0.5 * (static_cast<double>(Lanes) / 4.0);
  double Base = 0.08; // Fetch/decode/retire per instruction.
  if (isMemoryOpcode(I.Op))
    return Base + 0.45 * Width; // Cache array + TLB access.
  if (isVecArith(I.Op))
    return Base + 0.25 * Width;
  if (isShuffleLike(I.Op))
    return Base + 0.12 * Width;
  return Base;
}

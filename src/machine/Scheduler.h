//===- Scheduler.h - Latency-aware list scheduling -------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction scheduling of straight-line C-IR regions. LGen "relies
/// completely on the instruction reordering done by the underlying
/// compiler" (§2.2.1); since our kernels never pass through gcc/icc/clang,
/// this pass plays that role: a classic critical-path list scheduler
/// reorders independent instructions to hide latencies, which is decisive
/// on the in-order pipelines (Atom, Cortex-A8, ARM1176).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MACHINE_SCHEDULER_H
#define LGEN_MACHINE_SCHEDULER_H

#include "cir/CIR.h"
#include "machine/Microarch.h"

namespace lgen {
namespace machine {

/// Reorders the instructions of every straight-line region of \p K (loops
/// are barriers) by critical-path list scheduling against \p M's latencies.
/// Register dataflow and (conservative, per-array) memory dependences are
/// preserved.
void scheduleKernel(cir::Kernel &K, const Microarch &M);

} // namespace machine
} // namespace lgen

#endif // LGEN_MACHINE_SCHEDULER_H

//===- Executor.cpp - Functional C-IR interpreter --------------*- C++ -*-===//

#include "machine/Executor.h"

#include <array>
#include <cmath>

using namespace lgen;
using namespace lgen::machine;
using namespace lgen::cir;

namespace {

using Lanes = std::array<float, MaxLanes>;

class Interp {
public:
  Interp(const Kernel &K, const std::vector<Buffer *> &Params) : K(K) {
    Regs.resize(K.getNumRegs());
    LoopVals.resize(K.getNumLoopIds(), 0);
    // Reserve up front: Storage holds pointers into OwnedTemps, which must
    // therefore never reallocate.
    OwnedTemps.reserve(K.getNumArrays());
    unsigned ParamIdx = 0;
    for (ArrayId Id = 0; Id != K.getNumArrays(); ++Id) {
      const ArrayInfo &A = K.getArray(Id);
      if (A.isParam()) {
        assert(ParamIdx < Params.size() && "missing parameter buffer");
        Buffer *B = Params[ParamIdx++];
        assert(B && static_cast<int64_t>(B->size()) >= A.NumElements &&
               "parameter buffer too small");
        Storage.push_back(B);
        OwnedTemps.emplace_back(); // Placeholder keeps indices parallel.
      } else {
        OwnedTemps.emplace_back(A.NumElements, 0.0f, /*AlignOffset=*/0);
        Storage.push_back(&OwnedTemps.back());
      }
    }
    assert(ParamIdx == Params.size() && "too many parameter buffers");
  }

  void run() { runBody(K.getBody()); }

private:
  void runBody(const std::vector<Node> &Body) {
    for (const Node &N : Body) {
      if (N.isLoop()) {
        const Loop &L = N.loop();
        for (int64_t V = L.Start; V < L.End; V += L.Step) {
          LoopVals[L.Id] = V;
          runBody(L.Body);
        }
        continue;
      }
      exec(N.inst());
    }
  }

  int64_t addrOf(const Addr &A) const {
    return A.Offset.evaluate([&](LoopId Id) { return LoopVals[Id]; });
  }

  float loadElem(ArrayId Array, int64_t Offset) const {
    const Buffer &B = *Storage[Array];
    assert(Offset >= 0 && Offset < static_cast<int64_t>(B.size()) &&
           "out-of-bounds load");
    return B[Offset];
  }

  void storeElem(ArrayId Array, int64_t Offset, float V) {
    Buffer &B = *Storage[Array];
    assert(Offset >= 0 && Offset < static_cast<int64_t>(B.size()) &&
           "out-of-bounds store");
    assert(K.getArray(Array).Kind != ArrayKind::Input &&
           "store to const input array");
    B[Offset] = V;
  }

  void checkAligned(const Inst &I, unsigned AccessLanes) const {
    if (!I.Aligned || AccessLanes <= 1)
      return;
    const Buffer &B = *Storage[I.Address.Array];
    int64_t Effective = B.AlignOffset + addrOf(I.Address);
    if (floorMod(Effective, AccessLanes) != 0)
      reportFatalError("aligned access to misaligned address in kernel '" +
                       K.getName() + "' (array " +
                       K.getArray(I.Address.Array).Name + ")");
  }

  void exec(const Inst &I) {
    unsigned L = I.Dest != NoReg ? K.lanesOf(I.Dest)
                                 : (I.A != NoReg ? K.lanesOf(I.A) : 1);
    Lanes R = {};
    switch (I.Op) {
    case Opcode::FConst:
      for (unsigned J = 0; J != L; ++J)
        R[J] = static_cast<float>(I.Imm);
      break;
    case Opcode::Mov:
      R = Regs[I.A];
      break;
    case Opcode::Add:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] + Regs[I.B][J];
      break;
    case Opcode::Sub:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] - Regs[I.B][J];
      break;
    case Opcode::Mul:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] * Regs[I.B][J];
      break;
    case Opcode::Div:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] / Regs[I.B][J];
      break;
    case Opcode::Neg:
      for (unsigned J = 0; J != L; ++J)
        R[J] = -Regs[I.A][J];
      break;
    case Opcode::FMA:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] * Regs[I.B][J] + Regs[I.C][J];
      break;
    case Opcode::HAdd: {
      // SSE semantics for 4 lanes; NEON vpadd for 2; AVX per-128-bit-lane
      // semantics for 8 (_mm256_hadd_ps).
      const Lanes &A = Regs[I.A], &B = Regs[I.B];
      if (L == 8) {
        R[0] = A[0] + A[1];
        R[1] = A[2] + A[3];
        R[2] = B[0] + B[1];
        R[3] = B[2] + B[3];
        R[4] = A[4] + A[5];
        R[5] = A[6] + A[7];
        R[6] = B[4] + B[5];
        R[7] = B[6] + B[7];
      } else if (L == 4) {
        R[0] = A[0] + A[1];
        R[1] = A[2] + A[3];
        R[2] = B[0] + B[1];
        R[3] = B[2] + B[3];
      } else {
        assert(L == 2 && "hadd lanes");
        R[0] = A[0] + A[1];
        R[1] = B[0] + B[1];
      }
      break;
    }
    case Opcode::DotPS: {
      float S = 0.0f;
      for (unsigned J = 0; J != L; ++J)
        S += Regs[I.A][J] * Regs[I.B][J];
      R[0] = S; // Remaining lanes stay zero (imm8 = 0xF1).
      break;
    }
    case Opcode::MulLane:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J] * Regs[I.B][I.Lane];
      break;
    case Opcode::FMALane:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.C][J] + Regs[I.A][J] * Regs[I.B][I.Lane];
      break;
    case Opcode::Broadcast:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][I.Lane];
      break;
    case Opcode::Shuffle: {
      unsigned SrcLanes = K.lanesOf(I.A);
      for (unsigned J = 0; J != L; ++J) {
        uint8_t P = I.Pattern[J];
        R[J] = P < SrcLanes ? Regs[I.A][P] : Regs[I.B][P - SrcLanes];
      }
      break;
    }
    case Opcode::Insert:
      R = Regs[I.A];
      R[I.Lane] = Regs[I.B][0];
      break;
    case Opcode::Extract:
      R[0] = Regs[I.A][I.Lane];
      break;
    case Opcode::GetLow:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J];
      break;
    case Opcode::GetHigh:
      for (unsigned J = 0; J != L; ++J)
        R[J] = Regs[I.A][J + L];
      break;
    case Opcode::Combine: {
      unsigned Half = L / 2;
      for (unsigned J = 0; J != Half; ++J) {
        R[J] = Regs[I.A][J];
        R[J + Half] = Regs[I.B][J];
      }
      break;
    }
    case Opcode::Zero:
      break;
    case Opcode::Load: {
      checkAligned(I, L);
      int64_t Base = addrOf(I.Address);
      for (unsigned J = 0; J != L; ++J)
        R[J] = loadElem(I.Address.Array, Base + J);
      break;
    }
    case Opcode::Store: {
      checkAligned(I, K.lanesOf(I.A));
      int64_t Base = addrOf(I.Address);
      for (unsigned J = 0; J != K.lanesOf(I.A); ++J)
        storeElem(I.Address.Array, Base + J, Regs[I.A][J]);
      return;
    }
    case Opcode::LoadBroadcast: {
      int64_t Base = addrOf(I.Address);
      float V = loadElem(I.Address.Array, Base);
      for (unsigned J = 0; J != L; ++J)
        R[J] = V;
      break;
    }
    case Opcode::LoadLane: {
      R = Regs[I.A];
      R[I.Lane] = loadElem(I.Address.Array, addrOf(I.Address));
      break;
    }
    case Opcode::StoreLane:
      storeElem(I.Address.Array, addrOf(I.Address), Regs[I.A][I.Lane]);
      return;
    case Opcode::GLoad: {
      checkAligned(I, I.Map.isFullContiguous() ? L : 1);
      int64_t Base = addrOf(I.Address);
      for (unsigned J = 0; J != L; ++J) {
        int64_t O = I.Map.LaneOffsets[J];
        R[J] = O == MemMap::None ? 0.0f : loadElem(I.Address.Array, Base + O);
      }
      break;
    }
    case Opcode::GStore: {
      checkAligned(I, I.Map.isFullContiguous() ? K.lanesOf(I.A) : 1);
      int64_t Base = addrOf(I.Address);
      for (unsigned J = 0; J != K.lanesOf(I.A); ++J) {
        int64_t O = I.Map.LaneOffsets[J];
        if (O != MemMap::None)
          storeElem(I.Address.Array, Base + O, Regs[I.A][J]);
      }
      return;
    }
    }
    if (I.Dest != NoReg)
      Regs[I.Dest] = R;
  }

  const Kernel &K;
  std::vector<Lanes> Regs;
  std::vector<int64_t> LoopVals;
  std::vector<Buffer *> Storage;
  std::vector<Buffer> OwnedTemps;
};

} // namespace

void machine::execute(const Kernel &K, const std::vector<Buffer *> &Params) {
  Interp I(K, Params);
  I.run();
}

//===- Microarch.h - Embedded microarchitecture timing models --*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing models of the four processors evaluated in the thesis (§2.2):
/// Intel Atom (in-order, dual-issue, SSSE3, expensive horizontal adds and
/// unaligned accesses), ARM Cortex-A8 (in-order, parallel NEON load/store
/// and data-processing issue, doubleword ops twice as fast as quadword,
/// very slow scalar floating point), ARM Cortex-A9 (out-of-order, single
/// NEON issue port, pipelined VFP), and ARM1176 (scalar VFP only).
///
/// These models substitute for the boards + hardware cycle counters of the
/// thesis: each C-IR instruction is assigned a latency, a reciprocal
/// throughput, and a set of admissible issue ports, and a greedy scoreboard
/// (Timing.h) replays kernels against them. The headline cost asymmetries
/// the evaluation depends on — Table 3.1's add vs. hadd numbers, Atom's
/// aligned vs. unaligned moves, NEON's doubleword vs. quadword — are
/// encoded directly in the tables.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MACHINE_MICROARCH_H
#define LGEN_MACHINE_MICROARCH_H

#include "cir/CIR.h"

#include <string>

namespace lgen {
namespace machine {

enum class UArch {
  Atom,        ///< Intel Atom D2550 (Table 2.2).
  CortexA8,    ///< ARM Cortex-A8 (Table 2.3).
  CortexA9,    ///< ARM Cortex-A9 (Table 2.4).
  ARM1176,     ///< ARM1176JZF-S (Table 2.5).
  SandyBridge, ///< Desktop Core i7 with AVX — the CGO'14 LGen target.
};

const char *uarchName(UArch U);

/// Cost of one instruction on a concrete microarchitecture.
struct InstCost {
  unsigned Latency = 1;
  /// Cycles the chosen issue port stays busy (1 == fully pipelined).
  unsigned RecipThroughput = 1;
  /// Bitmask of ports able to execute the instruction.
  uint8_t PortChoices = 0x1;
  /// True for instructions that occupy *every* issue port while executing
  /// (Atom's horizontal add, §3.3).
  bool BlocksAllPorts = false;
};

class Microarch {
public:
  static Microarch get(UArch U);

  UArch Kind = UArch::Atom;
  std::string Name;
  unsigned IssueWidth = 2;
  bool InOrder = true;
  unsigned NumPorts = 2;
  size_t L1DataBytes = 32 * 1024;
  unsigned NumVecRegs = 16;
  /// Serial loop bookkeeping cycles per iteration (index update, compare,
  /// branch) for in-order pipelines.
  unsigned LoopOverheadCycles = 2;
  /// Peak performance in flops/cycle (Tables 2.2–2.5), used by the bench
  /// harness for reporting.
  double PeakFlopsPerCycle = 1.0;

  /// Cost of instruction \p I of kernel \p K.
  InstCost costOf(const cir::Kernel &K, const cir::Inst &I) const;

  /// Estimated dynamic energy of one execution of \p I, in nanojoules.
  /// A deliberately simple model for the §6 "energy metrics in the
  /// autotuning feedback loop" extension: memory accesses cost several
  /// times an ALU operation, wide operations more than narrow ones, and
  /// every issued instruction pays a base amount.
  double energyOf(const cir::Kernel &K, const cir::Inst &I) const;

  /// Static/clock energy per cycle, nanojoules (leakage + clock tree).
  double EnergyPerCycleNJ = 0.05;

  /// Multiplier applied to memory-access throughput once the working set
  /// \p FootprintBytes exceeds the L1 data cache (the performance cliffs of
  /// Figs. 5.1(b), 5.8, 5.16(a), 5.19).
  double cachePenalty(size_t FootprintBytes) const;
};

} // namespace machine
} // namespace lgen

#endif // LGEN_MACHINE_MICROARCH_H

//===- Executor.h - Functional C-IR interpreter ----------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional execution of C-IR kernels. This replaces running the
/// generated C on real silicon: the interpreter implements the semantics of
/// every C-IR instruction (including the SSSE3/NEON-style lane operations
/// and the generic loads/stores) over caller-provided buffers, so kernel
/// correctness can be validated against a naive reference exactly as in the
/// thesis' measuring process (§5.1.4).
///
/// Buffers carry a simulated base-address alignment; executing an *aligned*
/// access against a misaligned effective address aborts, mirroring the
/// runtime fault that aligned SSE instructions raise on unaligned data
/// (§3.2.1).
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MACHINE_EXECUTOR_H
#define LGEN_MACHINE_EXECUTOR_H

#include "cir/CIR.h"

#include <vector>

namespace lgen {
namespace machine {

/// A float buffer with a simulated base alignment. \c AlignOffset is the
/// element offset of Data[0] from the previous ν-aligned boundary; 0 means
/// the buffer base is aligned (the thesis' experiments allocate at "an
/// aligned memory address plus an offset", §5.2.4).
struct Buffer {
  std::vector<float> Data;
  unsigned AlignOffset = 0;

  Buffer() = default;
  explicit Buffer(size_t N, float Fill = 0.0f, unsigned AlignOffset = 0)
      : Data(N, Fill), AlignOffset(AlignOffset) {}

  float &operator[](size_t I) { return Data[I]; }
  float operator[](size_t I) const { return Data[I]; }
  size_t size() const { return Data.size(); }
};

/// Executes \p K over \p Params, which must supply one buffer per kernel
/// parameter array, in declaration order. Temporaries are allocated
/// internally (aligned and zero-initialized).
void execute(const cir::Kernel &K, const std::vector<Buffer *> &Params);

} // namespace machine
} // namespace lgen

#endif // LGEN_MACHINE_EXECUTOR_H

//===- Timing.h - Greedy scoreboard timing simulation ----------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle estimation for C-IR kernels against a Microarch model. Kernels are
/// replayed in execution order through a greedy scoreboard that tracks
/// per-port occupancy, register ready times, and the frontend issue stream:
///
///  * in-order cores (Atom, A8, ARM1176) stall the whole issue stream when
///    an instruction's operands are not ready;
///  * the out-of-order A9 lets independent instructions overtake stalled
///    ones but still respects dataflow, port conflicts, and fetch order;
///  * per-iteration loop bookkeeping consumes frontend slots;
///  * straight-line regions whose live vector values exceed the register
///    file incur spill traffic (the pressure that makes the autotuner's
///    unrolling decisions non-trivial);
///  * a working-set larger than the L1 data cache inflates memory-access
///    occupancy (the capacity cliffs visible throughout Chapter 5).
///
/// This substitutes for the thesis' hardware cycle counters: absolute
/// numbers are model estimates, but the first-order effects the evaluation
/// compares are represented mechanically.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_MACHINE_TIMING_H
#define LGEN_MACHINE_TIMING_H

#include "cir/CIR.h"
#include "machine/Microarch.h"

namespace lgen {
namespace machine {

struct TimingResult {
  double Cycles = 0.0;
  uint64_t InstsIssued = 0;
  /// Estimated energy of the invocation in nanojoules (dynamic per
  /// instruction plus static per cycle) — the §6 future-work metric.
  double EnergyNJ = 0.0;
  /// Energy-delay product, nJ·cycles.
  double edp() const { return EnergyNJ * Cycles; }
  double SpillCycles = 0.0;
  double MemPenalty = 1.0;
  /// Fixed invocation overhead added on top of the replayed body (call,
  /// alignment dispatch, ...).
  double OverheadCycles = 0.0;
};

/// Estimates the cycles of one invocation of \p K on \p M.
/// \p ExtraOverheadCycles is added to the result (used for the runtime
/// alignment-dispatch checks of versioned kernels, §3.2.4).
TimingResult simulate(const cir::Kernel &K, const Microarch &M,
                      double ExtraOverheadCycles = 0.0);

} // namespace machine
} // namespace lgen

#endif // LGEN_MACHINE_TIMING_H

//===- Scheduler.cpp - Latency-aware list scheduling -----------*- C++ -*-===//

#include "machine/Scheduler.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace lgen;
using namespace lgen::machine;
using namespace lgen::cir;

namespace {

/// Conservative may-overlap test between two memory instructions.
bool memConflict(const Kernel &K, const Inst &A, const Inst &B) {
  if (A.Address.Array != B.Address.Array)
    return false;
  if (!A.isStore() && !B.isStore())
    return false; // Two loads never conflict.
  const AffineExpr &EA = A.Address.Offset;
  const AffineExpr &EB = B.Address.Offset;
  // When both addresses share the same loop terms (the common case inside
  // an unrolled body), the symbolic parts cancel and the constant parts
  // decide overlap exactly; otherwise stay conservative.
  if (EA.getTerms() != EB.getTerms())
    return true;
  // Compare the accessed element ranges.
  auto Range = [&K](const Inst &I) -> std::pair<int64_t, int64_t> {
    int64_t Base = I.Address.Offset.getConstant();
    if (I.Op == Opcode::GLoad || I.Op == Opcode::GStore) {
      int64_t Lo = 0, Hi = 0;
      bool Any = false;
      for (int64_t O : I.Map.LaneOffsets) {
        if (O == MemMap::None)
          continue;
        if (!Any) {
          Lo = Hi = O;
          Any = true;
        } else {
          Lo = std::min(Lo, O);
          Hi = std::max(Hi, O);
        }
      }
      return {Base + Lo, Base + Hi};
    }
    if (I.Op == Opcode::LoadLane || I.Op == Opcode::StoreLane ||
        I.Op == Opcode::LoadBroadcast)
      return {Base, Base};
    unsigned Lanes =
        I.Op == Opcode::Store ? K.lanesOf(I.A) : K.lanesOf(I.Dest);
    return {Base, Base + Lanes - 1};
  };
  auto [ALo, AHi] = Range(A);
  auto [BLo, BHi] = Range(B);
  return ALo <= BHi && BLo <= AHi;
}

void scheduleRegion(Kernel &K, const Microarch &M, std::vector<Node> &Body,
                    size_t Begin, size_t End) {
  size_t N = End - Begin;
  if (N < 3)
    return;
  // Very large straight-line regions are left in program order, like the
  // window limits of production schedulers; the quadratic dependence
  // analysis would otherwise dominate compile time.
  if (N > 768)
    return;

  // Build the dependence DAG.
  std::vector<std::vector<unsigned>> Succs(N);
  std::vector<unsigned> PredCount(N, 0);
  std::map<RegId, unsigned> DefAt;
  for (size_t I = 0; I != N; ++I) {
    const Inst &Cur = Body[Begin + I].inst();
    std::vector<unsigned> Preds;
    Cur.forEachUse([&](RegId R) {
      auto It = DefAt.find(R);
      if (It != DefAt.end())
        Preds.push_back(It->second);
    });
    if (isMemoryOpcode(Cur.Op))
      for (size_t J = 0; J != I; ++J) {
        const Inst &Prev = Body[Begin + J].inst();
        if (isMemoryOpcode(Prev.Op) && memConflict(K, Prev, Cur))
          Preds.push_back(J);
      }
    std::sort(Preds.begin(), Preds.end());
    Preds.erase(std::unique(Preds.begin(), Preds.end()), Preds.end());
    for (unsigned P : Preds) {
      Succs[P].push_back(I);
      ++PredCount[I];
    }
    if (Cur.Dest != NoReg)
      DefAt[Cur.Dest] = I;
  }

  // Critical path priorities (latency to the end of the region).
  std::vector<double> Priority(N, 0.0);
  for (size_t I = N; I-- > 0;) {
    const Inst &Cur = Body[Begin + I].inst();
    double Lat = M.costOf(K, Cur).Latency;
    double Best = Lat;
    for (unsigned S : Succs[I])
      Best = std::max(Best, Lat + Priority[S]);
    Priority[I] = Best;
  }

  // Greedy list scheduling: repeatedly pick the ready instruction with the
  // longest critical path (ties broken by original order for determinism).
  std::vector<unsigned> Order;
  Order.reserve(N);
  std::vector<bool> Scheduled(N, false);
  std::vector<unsigned> Remaining = PredCount;
  for (size_t Step = 0; Step != N; ++Step) {
    int Best = -1;
    for (size_t I = 0; I != N; ++I) {
      if (Scheduled[I] || Remaining[I] != 0)
        continue;
      if (Best < 0 || Priority[I] > Priority[Best])
        Best = static_cast<int>(I);
    }
    assert(Best >= 0 && "dependence cycle in straight-line code");
    Scheduled[Best] = true;
    Order.push_back(Best);
    for (unsigned S : Succs[Best])
      --Remaining[S];
  }

  std::vector<Node> Reordered;
  Reordered.reserve(N);
  for (unsigned I : Order)
    Reordered.push_back(std::move(Body[Begin + I]));
  for (size_t I = 0; I != N; ++I)
    Body[Begin + I] = std::move(Reordered[I]);
}

void scheduleBody(Kernel &K, const Microarch &M, std::vector<Node> &Body) {
  size_t RegionStart = 0;
  for (size_t I = 0; I <= Body.size(); ++I) {
    if (I == Body.size() || Body[I].isLoop()) {
      scheduleRegion(K, M, Body, RegionStart, I);
      if (I != Body.size())
        scheduleBody(K, M, Body[I].loop().Body);
      RegionStart = I + 1;
    }
  }
}

} // namespace

void machine::scheduleKernel(Kernel &K, const Microarch &M) {
  scheduleBody(K, M, K.getBody());
}

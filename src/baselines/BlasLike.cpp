//===- BlasLike.cpp - MKL/ATLAS/IPP-style library baselines ---------------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BLAS-library competitors (§5.1.2). The generator pattern-matches a BLAC
/// against the BLAS surface exactly as the thesis maps its experiments
/// (§5.1.5):
///
///  * `y = αx + y`                → one saxpy pass;
///  * `y = αAx + βy` (and `Ax`)   → one sgemv call, scaling fused;
///  * `C = αAB + βC` (and `AB`)   → one sgemm call;
///  * anything else               → a sequence of calls with materialized
///    temporaries (e.g. `αAx + βBx` as two sgemv calls, `xᵀAy` as
///    sgemv + sdot, `α(A0+A1)ᵀB + βC` as add/omatadd + sgemm).
///
/// Kernels are generic runtime-size code (no size specialization — the
/// thesis' point about MKL "optimized for large scale problems, providing
/// little support for small sizes"), and every call pays a fixed dispatch
/// overhead that differs per flavor.
///
//===----------------------------------------------------------------------===//

#include "baselines/BaselineCommon.h"

#include "cir/Passes.h"
#include "machine/Scheduler.h"

using namespace lgen;
using namespace lgen::baselines;
using namespace lgen::cir;

namespace {

struct FlavorTraits {
  const char *Name;
  double CallOverhead; ///< Cycles per BLAS call.
};

FlavorTraits flavorTraits(BlasFlavor F) {
  switch (F) {
  case BlasFlavor::MKL:
    // Heavy dispatch (CPU detection, threading checks) per call.
    return {"MKL 11.1", 140.0};
  case BlasFlavor::ATLAS:
    return {"ATLAS 3.10.1", 60.0};
  case BlasFlavor::IPP:
    // IPP's small-scale entry points are lean.
    return {"IPP 8.0", 30.0};
  }
  LGEN_UNREACHABLE("unknown BLAS flavor");
}

/// Match result for the fused α·(A·B) + β·C forms.
struct GemMatch {
  const ll::Expr *Alpha = nullptr; ///< Scalar ref or null (α = 1).
  const ll::Expr *A = nullptr;
  const ll::Expr *B = nullptr;
  const ll::Expr *Beta = nullptr;
  bool HasC = false; ///< β·Out term present.
};

const ll::Expr *stripScalar(const ll::Expr &E, const ll::Expr *&Scalar) {
  if (E.getKind() == ll::ExprKind::SMul &&
      E.child(0).getKind() == ll::ExprKind::Ref) {
    Scalar = &E.child(0);
    return &E.child(1);
  }
  Scalar = nullptr;
  return &E;
}

/// Matches E against α·(A·B) [+ β·Out]. \p OutName is the BLAC output (the
/// C/y operand of the BLAS call).
bool matchGem(const ll::Expr &E, const std::string &OutName, GemMatch &M) {
  const ll::Expr *ProdTerm = &E;
  if (E.getKind() == ll::ExprKind::Add) {
    // One side must be (β·)Out, the other (α·)(A·B).
    for (int Side = 0; Side != 2; ++Side) {
      const ll::Expr *Scaled = &E.child(Side);
      const ll::Expr *Other = &E.child(1 - Side);
      const ll::Expr *Beta = nullptr;
      const ll::Expr *Base = stripScalar(*Scaled, Beta);
      if (Base->getKind() == ll::ExprKind::Ref &&
          Base->getRefName() == OutName) {
        M.Beta = Beta;
        M.HasC = true;
        ProdTerm = Other;
        break;
      }
      if (Side == 1)
        return false;
    }
  }
  const ll::Expr *Alpha = nullptr;
  const ll::Expr *Prod = stripScalar(*ProdTerm, Alpha);
  if (Prod->getKind() != ll::ExprKind::Mul)
    return false;
  if (Prod->child(0).getKind() != ll::ExprKind::Ref ||
      Prod->child(1).getKind() != ll::ExprKind::Ref)
    return false;
  M.Alpha = Alpha;
  M.A = &Prod->child(0);
  M.B = &Prod->child(1);
  return true;
}

class BlasLike : public BaselineBase {
public:
  BlasLike(machine::UArch Target, BlasFlavor Flavor)
      : BaselineBase(Target), Flavor(flavorTraits(Flavor)),
        ISA(baselineISA(Target)), Nu(isa::traits(ISA).Nu) {}

  std::string name() const override { return Flavor.Name; }

  compiler::CompiledKernel compile(const ll::Program &P) const override {
    Calls = 0;
    // Whole-BLAC gemv/gemm fusion (the single-call mappings of §5.1.5).
    GemMatch M;
    if (matchGem(*P.Rhs, P.OutputName, M)) {
      Ctx C(P.OutputName + "_blas");
      const ll::Operand &Out = P.outputOperand();
      for (const ll::Operand &O : P.Operands) {
        ArrayKind Kind;
        if (O.Name == Out.Name)
          Kind = M.HasC ? ArrayKind::InOut : ArrayKind::Output;
        else
          Kind = ArrayKind::Input;
        C.OperandArray[O.Name] = C.K.addArray(O.Name, O.numElements(), Kind);
      }
      auto ArrOf = [&](const ll::Expr *E) {
        return E ? static_cast<int>(C.OperandArray.at(E->getRefName())) : -1;
      };
      int64_t MDim = M.A->rows(), KDim = M.A->cols(), NDim = M.B->cols();
      ArrayId OutArr = C.OperandArray.at(Out.Name);
      if (NDim == 1)
        emitVectorGemv(C.B, C.OperandArray.at(M.A->getRefName()), MDim, KDim,
                       C.OperandArray.at(M.B->getRefName()), OutArr,
                       ArrOf(M.Alpha), M.HasC ? ArrOf(M.Beta) : -1, Nu, ISA,
                       useFMA());
      else
        emitVectorGemm(C.B, C.OperandArray.at(M.A->getRefName()), MDim, KDim,
                       C.OperandArray.at(M.B->getRefName()), NDim, OutArr,
                       ArrOf(M.Alpha), M.HasC ? ArrOf(M.Beta) : -1, Nu,
                       useFMA());
      Calls = 1;
      compiler::CompiledKernel CK;
      CK.Blac = P.clone();
      CK.Flops = ll::flopCount(P);
      CK.Plain = std::move(C.K);
      finalize(CK.Plain);
      CK.Plain.verify();
      CK.DispatchOverheadCycles = Flavor.CallOverhead;
      return CK;
    }
    // Multi-call decomposition through the generic driver.
    return BaselineBase::compile(P);
  }

protected:
  void genElementwise(Ctx &C, EwKind Kind, ArrayId Out, ArrayId In0,
                      ArrayId In1, int64_t N) const override {
    ++Calls; // saxpy / sscal / scopy / omatadd pass.
    if (Nu > 1 && N >= Nu)
      emitVectorElementwise(C.B, Kind, Out, In0, In1, N, Nu, 0, false);
    else
      emitScalarElementwise(C.B, Kind, Out, In0, In1, N);
  }

  void genMMM(Ctx &C, ArrayId A, int64_t M, int64_t K, ArrayId B, int64_t N,
              ArrayId Out) const override {
    ++Calls; // sgemv / sgemm / sdot.
    if (N == 1)
      emitVectorGemv(C.B, A, M, K, B, Out, -1, -1, Nu, ISA, useFMA());
    else
      emitVectorGemm(C.B, A, M, K, B, N, Out, -1, -1, Nu, useFMA());
  }

  void genTrans(Ctx &C, ArrayId A, int64_t M, int64_t N,
                ArrayId Out) const override {
    ++Calls; // omatcopy-style pass.
    emitScalarTrans(C.B, A, M, N, Out);
  }

  double invocationOverhead(const ll::Program &) const override {
    return Flavor.CallOverhead * std::max(1u, Calls);
  }

private:
  bool useFMA() const { return ISA == isa::ISAKind::NEON; }

  FlavorTraits Flavor;
  isa::ISAKind ISA;
  unsigned Nu;
  mutable unsigned Calls = 0;
};

} // namespace

std::unique_ptr<Generator> baselines::makeBlasLike(machine::UArch Target,
                                                   BlasFlavor Flavor) {
  return std::make_unique<BlasLike>(Target, Flavor);
}

//===----------------------------------------------------------------------===//
// Competitor sets (§5.1.2 / §5.1.3)
//===----------------------------------------------------------------------===//

std::vector<std::unique_ptr<Generator>>
baselines::competitorsFor(machine::UArch Target) {
  std::vector<std::unique_ptr<Generator>> Gens;
  switch (Target) {
  case machine::UArch::SandyBridge:
  case machine::UArch::Atom:
    Gens.push_back(makeHandwritten(Target, iccModel(), /*FixedSizes=*/true));
    Gens.push_back(makeHandwritten(Target, iccModel(), /*FixedSizes=*/false));
    Gens.push_back(makeBlasLike(Target, BlasFlavor::MKL));
    Gens.push_back(makeEigenLike(Target));
    Gens.push_back(makeBlasLike(Target, BlasFlavor::IPP));
    Gens.push_back(makeBlasLike(Target, BlasFlavor::ATLAS));
    break;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    Gens.push_back(makeHandwritten(Target, gccModel(), true));
    Gens.push_back(makeHandwritten(Target, gccModel(), false));
    Gens.push_back(makeHandwritten(Target, clangModel(), true));
    Gens.push_back(makeHandwritten(Target, clangModel(), false));
    Gens.push_back(makeEigenLike(Target));
    Gens.push_back(makeBlasLike(Target, BlasFlavor::ATLAS));
    break;
  case machine::UArch::ARM1176:
    Gens.push_back(makeHandwritten(Target, gccModel(), true));
    Gens.push_back(makeHandwritten(Target, gccModel(), false));
    Gens.push_back(makeHandwritten(Target, clangModel(), true));
    Gens.push_back(makeHandwritten(Target, clangModel(), false));
    Gens.push_back(makeEigenLike(Target));
    Gens.push_back(makeBlasLike(Target, BlasFlavor::ATLAS));
    break;
  }
  return Gens;
}

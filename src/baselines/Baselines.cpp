//===- Baselines.cpp - Shared driver for competitor generators -----------===//

#include "baselines/BaselineCommon.h"

#include "cir/Passes.h"
#include "machine/Scheduler.h"

using namespace lgen;
using namespace lgen::baselines;
using namespace lgen::cir;

Generator::~Generator() = default;

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

compiler::CompiledKernel BaselineBase::compile(const ll::Program &P) const {
  Ctx C(P.OutputName + "_" + name());
  const ll::Operand &Out = P.outputOperand();
  for (const ll::Operand &O : P.Operands) {
    ArrayKind Kind;
    if (O.Name == Out.Name)
      Kind = P.outputIsInput() ? ArrayKind::InOut : ArrayKind::Output;
    else
      Kind = ArrayKind::Input;
    C.OperandArray[O.Name] = C.K.addArray(O.Name, O.numElements(), Kind);
  }
  lowerNode(C, *P.Rhs, P, static_cast<int>(C.OperandArray[Out.Name]));

  compiler::CompiledKernel CK;
  CK.Blac = P.clone();
  CK.Flops = ll::flopCount(P);
  CK.Plain = std::move(C.K);
  finalize(CK.Plain);
  CK.Plain.verify();
  CK.DispatchOverheadCycles = invocationOverhead(P);
  return CK;
}

namespace {

bool subtreeMentions(const ll::Expr &E, const std::string &Name) {
  if (E.getKind() == ll::ExprKind::Ref)
    return E.getRefName() == Name;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    if (subtreeMentions(E.child(I), Name))
      return true;
  return false;
}

bool isElementwiseTree(const ll::Expr &E) {
  switch (E.getKind()) {
  case ll::ExprKind::Ref:
    return true;
  case ll::ExprKind::Add:
    return isElementwiseTree(E.child(0)) && isElementwiseTree(E.child(1));
  case ll::ExprKind::SMul:
    return E.child(0).getKind() == ll::ExprKind::Ref &&
           isElementwiseTree(E.child(1));
  default:
    return false;
  }
}

} // namespace

ArrayId BaselineBase::lowerNode(Ctx &C, const ll::Expr &E,
                                const ll::Program &P, int Target) const {
  using ll::ExprKind;
  auto DestOf = [&](const ll::Expr &Node) {
    return Target >= 0 ? static_cast<ArrayId>(Target)
                       : C.newTemp(Node.rows() * Node.cols());
  };

  // Fusible elementwise subtree (Eigen-style expression templates).
  if (Target >= 0 && isElementwiseTree(E) &&
      E.getKind() != ExprKind::Ref &&
      tryFusedElementwise(C, E, static_cast<ArrayId>(Target), P))
    return static_cast<ArrayId>(Target);

  switch (E.getKind()) {
  case ExprKind::Ref: {
    ArrayId Src = C.OperandArray.at(E.getRefName());
    if (Target < 0 || static_cast<ArrayId>(Target) == Src)
      return Src;
    genElementwise(C, EwKind::Copy, static_cast<ArrayId>(Target), Src, Src,
                   E.rows() * E.cols());
    return static_cast<ArrayId>(Target);
  }
  case ExprKind::Add: {
    ArrayId L = lowerNode(C, E.child(0), P, -1);
    ArrayId R = lowerNode(C, E.child(1), P, -1);
    ArrayId D = DestOf(E);
    genElementwise(C, EwKind::Add, D, L, R, E.rows() * E.cols());
    return D;
  }
  case ExprKind::SMul: {
    ArrayId S = lowerNode(C, E.child(0), P, -1);
    ArrayId M = lowerNode(C, E.child(1), P, -1);
    ArrayId D = DestOf(E);
    genElementwise(C, EwKind::SMul, D, S, M, E.rows() * E.cols());
    return D;
  }
  case ExprKind::Mul: {
    ArrayId A = lowerNode(C, E.child(0), P, -1);
    ArrayId B = lowerNode(C, E.child(1), P, -1);
    // Writing a product in place while its inputs still read the target
    // would be wrong; detour through a temporary.
    bool Aliased = Target >= 0 &&
                   C.OperandArray.count(P.OutputName) &&
                   static_cast<int>(C.OperandArray.at(P.OutputName)) ==
                       Target &&
                   subtreeMentions(E, P.OutputName);
    ArrayId D = Aliased ? C.newTemp(E.rows() * E.cols()) : DestOf(E);
    genMMM(C, A, E.child(0).rows(), E.child(0).cols(), B, E.cols(), D);
    if (Aliased) {
      genElementwise(C, EwKind::Copy, static_cast<ArrayId>(Target), D, D,
                     E.rows() * E.cols());
      return static_cast<ArrayId>(Target);
    }
    return D;
  }
  case ExprKind::Trans: {
    ArrayId A = lowerNode(C, E.child(0), P, -1);
    ArrayId D = DestOf(E);
    genTrans(C, A, E.child(0).rows(), E.child(0).cols(), D);
    return D;
  }
  case ExprKind::MVH:
  case ExprKind::RR:
    reportFatalError("baseline generators do not accept internal operators");
  }
  LGEN_UNREACHABLE("unknown expression kind");
}

void BaselineBase::finalize(Kernel &K) const {
  cir::scalarReplacement(K);
  machine::scheduleKernel(K, machine::Microarch::get(Target));
}

//===----------------------------------------------------------------------===//
// Shared emission helpers
//===----------------------------------------------------------------------===//

void baselines::emitScalarElementwise(Builder &B, EwKind Kind, ArrayId Out,
                                      ArrayId In0, ArrayId In1, int64_t N) {
  RegId Scalar = NoReg;
  if (Kind == EwKind::SMul)
    Scalar = B.load(1, Addr{In0, AffineExpr(0)});
  B.forLoop(0, N, 1, [&](LoopId I) {
    AffineExpr Idx = AffineExpr::loopIndex(I);
    if (Kind == EwKind::SMul) {
      RegId V = B.load(1, Addr{In1, Idx});
      B.store(B.mul(Scalar, V), Addr{Out, Idx});
      return;
    }
    RegId V0 = B.load(1, Addr{In0, Idx});
    RegId R = Kind == EwKind::Copy ? V0 : B.add(V0, B.load(1, Addr{In1, Idx}));
    B.store(R, Addr{Out, Idx});
  });
}

void baselines::emitVectorElementwise(Builder &B, EwKind Kind, ArrayId Out,
                                      ArrayId In0, ArrayId In1, int64_t N,
                                      unsigned Nu, int64_t Peel,
                                      bool AlignedBody) {
  assert(Nu > 1 && "vector width must exceed 1");
  Peel = std::min<int64_t>(Peel, N);
  RegId ScalarS = NoReg, VecS = NoReg;
  if (Kind == EwKind::SMul) {
    ScalarS = B.load(1, Addr{In0, AffineExpr(0)});
    VecS = B.loadBroadcast(Nu, Addr{In0, AffineExpr(0)});
  }
  auto ScalarAt = [&](AffineExpr Idx) {
    if (Kind == EwKind::SMul) {
      RegId V = B.load(1, Addr{In1, Idx});
      B.store(B.mul(ScalarS, V), Addr{Out, Idx});
      return;
    }
    RegId V0 = B.load(1, Addr{In0, Idx});
    RegId R = Kind == EwKind::Copy ? V0 : B.add(V0, B.load(1, Addr{In1, Idx}));
    B.store(R, Addr{Out, Idx});
  };
  // Scalar alignment prologue.
  for (int64_t I = 0; I != Peel; ++I)
    ScalarAt(AffineExpr(I));
  int64_t VecEnd = Peel + ((N - Peel) / Nu) * Nu;
  if (VecEnd > Peel)
    B.forLoop(Peel, VecEnd, Nu, [&](LoopId L) {
      AffineExpr Idx = AffineExpr::loopIndex(L);
      if (Kind == EwKind::SMul) {
        RegId V = B.load(Nu, Addr{In1, Idx}, AlignedBody);
        B.store(B.mul(VecS, V), Addr{Out, Idx}, AlignedBody);
        return;
      }
      RegId V0 = B.load(Nu, Addr{In0, Idx}, AlignedBody);
      RegId R = Kind == EwKind::Copy
                    ? V0
                    : B.add(V0, B.load(Nu, Addr{In1, Idx}, AlignedBody));
      B.store(R, Addr{Out, Idx}, AlignedBody);
    });
  // Scalar tail.
  for (int64_t I = VecEnd; I < N; ++I)
    ScalarAt(AffineExpr(I));
}

void baselines::emitScalarMMM(Builder &B, ArrayId A, int64_t M, int64_t K,
                              ArrayId Bm, int64_t N, ArrayId Out,
                              bool UseFMA) {
  // The accumulator lives in a stack slot; once loops are unrolled, scalar
  // replacement forwards it exactly like a register-allocated local.
  ArrayId Acc = B.kernel().addArray("acc", 1, ArrayKind::Temp);
  B.forLoop(0, M, 1, [&](LoopId I) {
    B.forLoop(0, N, 1, [&](LoopId J) {
      AffineExpr Iv = AffineExpr::loopIndex(I);
      AffineExpr Jv = AffineExpr::loopIndex(J);
      {
        RegId Av = B.load(1, Addr{A, Iv * K});
        RegId Bv = B.load(1, Addr{Bm, Jv});
        B.store(B.mul(Av, Bv), Addr{Acc, AffineExpr(0)});
      }
      B.forLoop(1, K, 1, [&](LoopId Kl) {
        AffineExpr Kv = AffineExpr::loopIndex(Kl);
        RegId Av = B.load(1, Addr{A, Iv * K + Kv});
        RegId Bv = B.load(1, Addr{Bm, Kv * N + Jv});
        RegId Cur = B.load(1, Addr{Acc, AffineExpr(0)});
        RegId Next = UseFMA ? B.fma(Av, Bv, Cur)
                            : B.add(Cur, B.mul(Av, Bv));
        B.store(Next, Addr{Acc, AffineExpr(0)});
      });
      RegId Fin = B.load(1, Addr{Acc, AffineExpr(0)});
      B.store(Fin, Addr{Out, Iv * N + Jv});
    });
  });
}

void baselines::emitScalarTrans(Builder &B, ArrayId A, int64_t M, int64_t N,
                                ArrayId Out) {
  B.forLoop(0, M, 1, [&](LoopId I) {
    B.forLoop(0, N, 1, [&](LoopId J) {
      AffineExpr Iv = AffineExpr::loopIndex(I);
      AffineExpr Jv = AffineExpr::loopIndex(J);
      RegId V = B.load(1, Addr{A, Iv * N + Jv});
      B.store(V, Addr{Out, Jv * M + Iv});
    });
  });
}

//===----------------------------------------------------------------------===//
// Vectorized library-style kernels shared by Eigen-like and BLAS-like
//===----------------------------------------------------------------------===//

isa::ISAKind baselines::baselineISA(machine::UArch Target) {
  switch (Target) {
  case machine::UArch::Atom:
    return isa::ISAKind::SSSE3;
  case machine::UArch::CortexA8:
  case machine::UArch::CortexA9:
    return isa::ISAKind::NEON;
  case machine::UArch::ARM1176:
    return isa::ISAKind::Scalar;
  case machine::UArch::SandyBridge:
    return isa::ISAKind::AVX;
  }
  LGEN_UNREACHABLE("unknown microarchitecture");
}

RegId baselines::reduceLanes(Builder &B, RegId V, isa::ISAKind Kind) {
  unsigned Lanes = B.kernel().lanesOf(V);
  if (Lanes == 1)
    return V;
  if (Kind == isa::ISAKind::AVX && Lanes == 8) {
    // Fold the YMM halves, then finish like SSE.
    RegId Folded = B.add(B.getLow(V), B.getHigh(V));
    RegId H = B.hadd(Folded, Folded);
    RegId H2 = B.hadd(H, H);
    return B.extract(H2, 0);
  }
  if ((Kind == isa::ISAKind::SSSE3 || Kind == isa::ISAKind::SSE41 ||
       Kind == isa::ISAKind::AVX) &&
      Lanes == 4) {
    RegId H = B.hadd(V, V);
    RegId H2 = B.hadd(H, H);
    return B.extract(H2, 0);
  }
  if (Kind == isa::ISAKind::NEON && Lanes == 4) {
    RegId S = B.add(B.getLow(V), B.getHigh(V));
    RegId P = B.hadd(S, S);
    return B.extract(P, 0);
  }
  if (Lanes == 2) {
    RegId P = B.hadd(V, V);
    return B.extract(P, 0);
  }
  // Generic fallback: extract and add.
  RegId Sum = B.extract(V, 0);
  for (unsigned L = 1; L != Lanes; ++L)
    Sum = B.add(Sum, B.extract(V, L));
  return Sum;
}

namespace {

/// Loads a scalar coefficient array or materializes the constant 1.
RegId loadCoeff(Builder &B, int Arr) {
  assert(Arr >= 0 && "coefficient array required");
  return B.load(1, Addr{static_cast<ArrayId>(Arr), AffineExpr(0)});
}

} // namespace

void baselines::emitVectorGemv(Builder &B, ArrayId A, int64_t M, int64_t K,
                               ArrayId X, ArrayId Y, int Alpha, int Beta,
                               unsigned Nu, isa::ISAKind Kind, bool UseFMA,
                               int RowPeelOffset) {
  RegId AlphaReg = Alpha >= 0 ? loadCoeff(B, Alpha) : NoReg;
  RegId BetaReg = Beta >= 0 ? loadCoeff(B, Beta) : NoReg;

  // Eigen-style peeling only helps when every row has the same alignment.
  int64_t Peel = 0;
  bool AlignedBody = false;
  if (Nu > 1 && RowPeelOffset >= 0 && K % Nu == 0) {
    Peel = (Nu - RowPeelOffset % Nu) % Nu;
    AlignedBody = true;
  }
  int64_t VecEnd = Nu > 1 ? Peel + ((K - Peel) / Nu) * Nu : Peel;

  ArrayId AccSlot = B.kernel().addArray("gemv_acc", Nu, ArrayKind::Temp);
  B.forLoop(0, M, 1, [&](LoopId I) {
    AffineExpr Iv = AffineExpr::loopIndex(I);
    RegId Scalar = NoReg; // Scalar partial sum (peel + tail).
    auto ScalarStep = [&](AffineExpr KExpr) {
      RegId Av = B.load(1, Addr{A, Iv * K + KExpr});
      RegId Xv = B.load(1, Addr{X, KExpr});
      if (Scalar == NoReg)
        Scalar = B.mul(Av, Xv);
      else if (UseFMA)
        Scalar = B.fma(Av, Xv, Scalar);
      else
        Scalar = B.add(Scalar, B.mul(Av, Xv));
    };
    for (int64_t P = 0; P != Peel; ++P)
      ScalarStep(AffineExpr(P));

    RegId RowSum;
    if (Nu > 1 && VecEnd > Peel) {
      // Vector loop with a stack-slot accumulator (runtime-size code
      // cannot unroll, so the slot round-trips through memory).
      {
        RegId Av = B.load(Nu, Addr{A, Iv * K + AffineExpr(Peel)},
                          AlignedBody);
        RegId Xv = B.load(Nu, Addr{X, AffineExpr(Peel)});
        B.store(B.mul(Av, Xv), Addr{AccSlot, AffineExpr(0)});
      }
      if (VecEnd > Peel + Nu)
        B.forLoop(Peel + Nu, VecEnd, Nu, [&](LoopId KL) {
          AffineExpr Kv = AffineExpr::loopIndex(KL);
          RegId Av = B.load(Nu, Addr{A, Iv * K + Kv}, AlignedBody);
          RegId Xv = B.load(Nu, Addr{X, Kv});
          RegId Cur = B.load(Nu, Addr{AccSlot, AffineExpr(0)});
          RegId Next = UseFMA ? B.fma(Av, Xv, Cur)
                              : B.add(Cur, B.mul(Av, Xv));
          B.store(Next, Addr{AccSlot, AffineExpr(0)});
        });
      RegId AccV = B.load(Nu, Addr{AccSlot, AffineExpr(0)});
      RowSum = reduceLanes(B, AccV, Kind);
      if (Scalar != NoReg)
        RowSum = B.add(RowSum, Scalar);
    } else {
      if (Scalar == NoReg)
        Scalar = B.fconst(1, 0.0);
      RowSum = Scalar;
    }
    // Scalar tail continues accumulating onto the running row sum.
    Scalar = RowSum;
    for (int64_t T = VecEnd; T < K; ++T)
      ScalarStep(AffineExpr(T));
    RowSum = Scalar;

    if (AlphaReg != NoReg)
      RowSum = B.mul(AlphaReg, RowSum);
    if (BetaReg != NoReg) {
      RegId Old = B.load(1, Addr{Y, Iv});
      RowSum = B.add(RowSum, B.mul(BetaReg, Old));
    }
    B.store(RowSum, Addr{Y, Iv});
  });
}

void baselines::emitVectorGemm(Builder &B, ArrayId A, int64_t M, int64_t K,
                               ArrayId Bm, int64_t N, ArrayId C, int Alpha,
                               int Beta, unsigned Nu, bool UseFMA) {
  RegId AlphaReg = Alpha >= 0 ? loadCoeff(B, Alpha) : NoReg;
  RegId BetaReg = Beta >= 0 ? loadCoeff(B, Beta) : NoReg;
  RegId AlphaVec = NoReg, BetaVec = NoReg;
  if (Nu > 1 && Alpha >= 0)
    AlphaVec = B.loadBroadcast(Nu, Addr{static_cast<ArrayId>(Alpha),
                                        AffineExpr(0)});
  if (Nu > 1 && Beta >= 0)
    BetaVec = B.loadBroadcast(Nu, Addr{static_cast<ArrayId>(Beta),
                                       AffineExpr(0)});

  int64_t VecN = Nu > 1 ? (N / Nu) * Nu : 0;
  ArrayId AccSlot = B.kernel().addArray("gemm_acc", std::max<unsigned>(Nu, 1),
                                        ArrayKind::Temp);
  B.forLoop(0, M, 1, [&](LoopId I) {
    AffineExpr Iv = AffineExpr::loopIndex(I);
    if (VecN > 0)
      B.forLoop(0, VecN, Nu, [&](LoopId J) {
        AffineExpr Jv = AffineExpr::loopIndex(J);
        {
          RegId Av = B.loadBroadcast(Nu, Addr{A, Iv * K});
          RegId Bv = B.load(Nu, Addr{Bm, Jv});
          B.store(B.mul(Av, Bv), Addr{AccSlot, AffineExpr(0)});
        }
        if (K > 1)
          B.forLoop(1, K, 1, [&](LoopId KL) {
            AffineExpr Kv = AffineExpr::loopIndex(KL);
            RegId Av = B.loadBroadcast(Nu, Addr{A, Iv * K + Kv});
            RegId Bv = B.load(Nu, Addr{Bm, Kv * N + Jv});
            RegId Cur = B.load(Nu, Addr{AccSlot, AffineExpr(0)});
            RegId Next = UseFMA ? B.fma(Av, Bv, Cur)
                                : B.add(Cur, B.mul(Av, Bv));
            B.store(Next, Addr{AccSlot, AffineExpr(0)});
          });
        RegId Acc = B.load(Nu, Addr{AccSlot, AffineExpr(0)});
        if (AlphaVec != NoReg)
          Acc = B.mul(AlphaVec, Acc);
        if (BetaVec != NoReg) {
          RegId Old = B.load(Nu, Addr{C, Iv * N + Jv});
          Acc = B.add(Acc, B.mul(BetaVec, Old));
        }
        B.store(Acc, Addr{C, Iv * N + Jv});
      });
    // Scalar tail columns.
    for (int64_t J = VecN; J < N; ++J) {
      AffineExpr Jv(J);
      RegId Acc = NoReg;
      {
        RegId Av = B.load(1, Addr{A, Iv * K});
        RegId Bv = B.load(1, Addr{Bm, Jv});
        Acc = B.mul(Av, Bv);
        B.store(Acc, Addr{AccSlot, AffineExpr(0)});
      }
      if (K > 1)
        B.forLoop(1, K, 1, [&](LoopId KL) {
          AffineExpr Kv = AffineExpr::loopIndex(KL);
          RegId Av = B.load(1, Addr{A, Iv * K + Kv});
          RegId Bv = B.load(1, Addr{Bm, Kv * N + Jv});
          RegId Cur = B.load(1, Addr{AccSlot, AffineExpr(0)});
          RegId Next = UseFMA ? B.fma(Av, Bv, Cur)
                              : B.add(Cur, B.mul(Av, Bv));
          B.store(Next, Addr{AccSlot, AffineExpr(0)});
        });
      RegId Fin = B.load(1, Addr{AccSlot, AffineExpr(0)});
      if (AlphaReg != NoReg)
        Fin = B.mul(AlphaReg, Fin);
      if (BetaReg != NoReg) {
        RegId Old = B.load(1, Addr{C, Iv * N + Jv});
        Fin = B.add(Fin, B.mul(BetaReg, Old));
      }
      B.store(Fin, Addr{C, Iv * N + Jv});
    }
  });
}

//===----------------------------------------------------------------------===//
// Fused elementwise tree evaluation
//===----------------------------------------------------------------------===//

namespace {

using Coeffs = std::map<std::string, std::pair<RegId, RegId>>;

void hoistScalarLeaves(BaselineBase::Ctx &C, const ll::Expr &E, unsigned Nu,
                       Coeffs &Out) {
  if (E.getKind() == ll::ExprKind::Ref) {
    if (E.isScalarShaped() && !Out.count(E.getRefName())) {
      ArrayId Arr = C.OperandArray.at(E.getRefName());
      RegId S = C.B.load(1, Addr{Arr, AffineExpr(0)});
      RegId V = Nu > 1 ? C.B.loadBroadcast(Nu, Addr{Arr, AffineExpr(0)}) : S;
      Out[E.getRefName()] = {S, V};
    }
    return;
  }
  for (unsigned I = 0; I != E.numChildren(); ++I)
    hoistScalarLeaves(C, E.child(I), Nu, Out);
}

RegId evalTreeAt(BaselineBase::Ctx &C, const ll::Expr &E, const Coeffs &Cs,
                 AffineExpr Idx, unsigned Lanes, bool Aligned) {
  switch (E.getKind()) {
  case ll::ExprKind::Ref: {
    if (E.isScalarShaped()) {
      const auto &P = Cs.at(E.getRefName());
      return Lanes > 1 ? P.second : P.first;
    }
    ArrayId Arr = C.OperandArray.at(E.getRefName());
    return C.B.load(Lanes, Addr{Arr, Idx}, Aligned && Lanes > 1);
  }
  case ll::ExprKind::Add:
    return C.B.add(evalTreeAt(C, E.child(0), Cs, Idx, Lanes, Aligned),
                   evalTreeAt(C, E.child(1), Cs, Idx, Lanes, Aligned));
  case ll::ExprKind::SMul:
    return C.B.mul(evalTreeAt(C, E.child(0), Cs, Idx, Lanes, Aligned),
                   evalTreeAt(C, E.child(1), Cs, Idx, Lanes, Aligned));
  default:
    LGEN_UNREACHABLE("non-elementwise node in fused tree");
  }
}

} // namespace

void baselines::emitFusedElementwiseTree(BaselineBase::Ctx &C,
                                         const ll::Expr &E, ArrayId Out,
                                         unsigned Nu, int64_t Peel,
                                         bool AlignedBody) {
  int64_t N = E.rows() * E.cols();
  Coeffs Cs;
  hoistScalarLeaves(C, E, Nu, Cs);
  if (Nu <= 1) {
    C.B.forLoop(0, N, 1, [&](LoopId L) {
      AffineExpr Idx = AffineExpr::loopIndex(L);
      C.B.store(evalTreeAt(C, E, Cs, Idx, 1, false), Addr{Out, Idx});
    });
    return;
  }
  Peel = std::min<int64_t>(Peel, N);
  int64_t VecEnd = Peel + ((N - Peel) / Nu) * Nu;
  for (int64_t I = 0; I != Peel; ++I)
    C.B.store(evalTreeAt(C, E, Cs, AffineExpr(I), 1, false),
              Addr{Out, AffineExpr(I)});
  if (VecEnd > Peel)
    C.B.forLoop(Peel, VecEnd, Nu, [&](LoopId L) {
      AffineExpr Idx = AffineExpr::loopIndex(L);
      C.B.store(evalTreeAt(C, E, Cs, Idx, Nu, AlignedBody), Addr{Out, Idx},
                AlignedBody);
    });
  for (int64_t I = VecEnd; I < N; ++I)
    C.B.store(evalTreeAt(C, E, Cs, AffineExpr(I), 1, false),
              Addr{Out, AffineExpr(I)});
}

//===- Baselines.h - Competitor code generators ----------------*- C++ -*-===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The competitor series of the thesis evaluation (§5.1.2), reimplemented
/// as C-IR generators so every series runs through the same functional
/// executor and timing models as LGen:
///
///  * Handwritten + compiler: naive scalar loop nests; the \c fixed variant
///    models compile-time-known sizes (small-loop unrolling, elementwise
///    auto-vectorization where the compiler model supports it), the \c gen
///    variant runtime sizes (no specialization).
///  * Eigen-like: per-expression vectorized passes with elementwise fusion,
///    alignment loop peeling, and scalar leftovers — the behaviors §5.2.4
///    observes for Eigen 3.2.
///  * BLAS-like (MKL / ATLAS / IPP): generic runtime-size blocked kernels
///    behind a per-call overhead; BLACs that need several BLAS calls
///    execute as multiple passes with materialized temporaries, per the
///    §5.1.5 mapping.
///
/// Substitution note (no proprietary binaries on this machine): these
/// models reproduce the *mechanisms* the thesis credits for each
/// competitor's behavior — single-accumulator dependence chains for
/// unsurrounded loops, per-call overheads for libraries, peeling for Eigen
/// — not vendor code.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_BASELINES_BASELINES_H
#define LGEN_BASELINES_BASELINES_H

#include "compiler/Compiler.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lgen {
namespace baselines {

/// A competitor series: compiles a BLAC into a kernel comparable with
/// LGen's output.
class Generator {
public:
  virtual ~Generator();
  virtual std::string name() const = 0;
  virtual compiler::CompiledKernel compile(const ll::Program &P) const = 0;
};

/// Compiler model used by the handwritten baselines.
struct CompilerModel {
  std::string Name;       ///< "icc", "gcc", "clang".
  bool AutoVectorize;     ///< Vectorizes simple elementwise loops.
  bool GoodScheduling;    ///< Applies list scheduling.
  unsigned UnrollSmall;   ///< Full-unroll trip bound for fixed sizes.
};

CompilerModel iccModel();
CompilerModel gccModel();
CompilerModel clangModel();

/// Handwritten naive code through a compiler model. \p FixedSizes selects
/// the `fixed` series (sizes known at compile time) vs `gen`.
std::unique_ptr<Generator> makeHandwritten(machine::UArch Target,
                                           CompilerModel Model,
                                           bool FixedSizes);

/// Eigen-like template-library generator. \p AssumedOffsets models Eigen's
/// runtime peeling decisions for misaligned inputs (operand name → element
/// offset of the buffer base from a ν boundary).
std::unique_ptr<Generator>
makeEigenLike(machine::UArch Target,
              std::map<std::string, unsigned> AssumedOffsets = {});

/// Flavor of BLAS-like library.
enum class BlasFlavor { MKL, ATLAS, IPP };

std::unique_ptr<Generator> makeBlasLike(machine::UArch Target,
                                        BlasFlavor Flavor);

/// The thesis' competitor set for \p Target (§5.1.2): MKL/IPP only on
/// Atom, Eigen and ATLAS everywhere, handwritten fixed/gen with the
/// compilers used per platform (§5.1.3).
std::vector<std::unique_ptr<Generator>>
competitorsFor(machine::UArch Target);

} // namespace baselines
} // namespace lgen

#endif // LGEN_BASELINES_BASELINES_H

//===- BaselineCommon.h - Shared driver for competitor generators --------===//
//
// Part of the LGen reproduction library (internal header).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the competitor generators: a recursive driver that
/// walks an LL expression materializing one pass per operation (the way
/// straightforward library/handwritten code computes a compound BLAC),
/// with hooks each baseline overrides for its own loop styles.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_BASELINES_BASELINECOMMON_H
#define LGEN_BASELINES_BASELINECOMMON_H

#include "baselines/Baselines.h"
#include "cir/Builder.h"

#include <map>

namespace lgen {
namespace baselines {

enum class EwKind { Copy, Add, SMul };

/// Base driver: array management, expression walk, finalization.
class BaselineBase : public Generator {
public:
  explicit BaselineBase(machine::UArch Target) : Target(Target) {}

  compiler::CompiledKernel compile(const ll::Program &P) const override;

  struct Ctx {
    cir::Kernel K;
    cir::Builder B;
    std::map<std::string, cir::ArrayId> OperandArray;
    unsigned TempCounter = 0;

    explicit Ctx(std::string Name) : K(std::move(Name)), B(K) {}
    cir::ArrayId newTemp(int64_t Elems) {
      return K.addArray("t" + std::to_string(TempCounter++), Elems,
                        cir::ArrayKind::Temp);
    }
  };

protected:

  /// Out[i] = op(In0[i], In1[i]) over \p N contiguous elements. For SMul,
  /// In0 is a 1-element scalar array.
  virtual void genElementwise(Ctx &C, EwKind Kind, cir::ArrayId Out,
                              cir::ArrayId In0, cir::ArrayId In1,
                              int64_t N) const = 0;

  /// C = A(M×K) · B(K×N), row-major, no accumulation into prior C.
  virtual void genMMM(Ctx &C, cir::ArrayId A, int64_t M, int64_t K,
                      cir::ArrayId B, int64_t N, cir::ArrayId Out) const = 0;

  /// Out(N×M) = A(M×N)^T.
  virtual void genTrans(Ctx &C, cir::ArrayId A, int64_t M, int64_t N,
                        cir::ArrayId Out) const = 0;

  /// Hook for generators that fuse elementwise expression trees (Eigen).
  /// Returns true if it handled \p E writing into \p Target.
  virtual bool tryFusedElementwise(Ctx &, const ll::Expr &, cir::ArrayId,
                                   const ll::Program &) const {
    return false;
  }

  /// Post-processing ("the compiler"): unrolling/scheduling per baseline.
  virtual void finalize(cir::Kernel &K) const;

  /// Per-invocation fixed overhead in cycles (library call dispatch).
  virtual double invocationOverhead(const ll::Program &P) const {
    (void)P;
    return 0.0;
  }

  machine::UArch Target;

private:
  cir::ArrayId lowerNode(Ctx &C, const ll::Expr &E, const ll::Program &P,
                         int Target) const;
};

//===----------------------------------------------------------------------===//
// Shared loop emission helpers
//===----------------------------------------------------------------------===//

/// Plain scalar elementwise loop (optionally fully unrolled later).
void emitScalarElementwise(cir::Builder &B, EwKind Kind, cir::ArrayId Out,
                           cir::ArrayId In0, cir::ArrayId In1, int64_t N);

/// Vectorized elementwise loop of width \p Nu with scalar prologue of
/// \p Peel elements (alignment peeling) and a scalar tail; the vector body
/// uses aligned accesses iff \p AlignedBody.
void emitVectorElementwise(cir::Builder &B, EwKind Kind, cir::ArrayId Out,
                           cir::ArrayId In0, cir::ArrayId In1, int64_t N,
                           unsigned Nu, int64_t Peel, bool AlignedBody);

/// Naive scalar triple loop MMM, accumulator carried through a stack slot
/// (forwardable by scalar replacement once unrolled).
void emitScalarMMM(cir::Builder &B, cir::ArrayId A, int64_t M, int64_t K,
                   cir::ArrayId Bm, int64_t N, cir::ArrayId Out,
                   bool UseFMA);

/// Scalar transpose loops.
void emitScalarTrans(cir::Builder &B, cir::ArrayId A, int64_t M, int64_t N,
                     cir::ArrayId Out);

/// The SIMD extension the competitors use on \p Target (SSE family on
/// Atom, NEON on the Cortex-A cores, none on ARM1176).
isa::ISAKind baselineISA(machine::UArch Target);

/// Emits a single fused pass evaluating the elementwise expression tree
/// \p E (Add/SMul/Ref nodes only) into \p Out over its N contiguous
/// elements — the loop a human (or Eigen's expression templates) writes.
/// \p Nu == 1 emits a scalar loop; otherwise a vector loop with \p Peel
/// leading scalar elements and aligned accesses iff \p AlignedBody, plus a
/// scalar tail. Scalar leaves are hoisted out of the loop.
void emitFusedElementwiseTree(BaselineBase::Ctx &C, const ll::Expr &E,
                              cir::ArrayId Out, unsigned Nu, int64_t Peel,
                              bool AlignedBody);

/// Reduces all lanes of \p V to a scalar register: an hadd tree on the SSE
/// family, vget/vpadd on NEON, extract+add otherwise.
cir::RegId reduceLanes(cir::Builder &B, cir::RegId V, isa::ISAKind Kind);

/// Vectorized row-wise gemv: Y[i] = α·dot(A row i, X) + β·Y[i], with the
/// vector accumulator carried through a stack slot (runtime-size loop).
/// \p Alpha / \p Beta are scalar array ids or -1 for the implicit 1/0.
/// \p RowPeelOffset >= 0 enables Eigen-style per-row peeling: assuming the
/// base of A sits at that element offset from a ν boundary and K ≡ 0 mod ν,
/// each row is peeled to aligned accesses.
void emitVectorGemv(cir::Builder &B, cir::ArrayId A, int64_t M, int64_t K,
                    cir::ArrayId X, cir::ArrayId Y, int Alpha, int Beta,
                    unsigned Nu, isa::ISAKind Kind, bool UseFMA,
                    int RowPeelOffset = -1);

/// Vectorized gemm: C = α·A·B + β·C, j-vectorized with a k-inner loop and
/// a stack-slot accumulator; scalar tail columns.
void emitVectorGemm(cir::Builder &B, cir::ArrayId A, int64_t M, int64_t K,
                    cir::ArrayId Bm, int64_t N, cir::ArrayId C, int Alpha,
                    int Beta, unsigned Nu, bool UseFMA);

} // namespace baselines
} // namespace lgen

#endif // LGEN_BASELINES_BASELINECOMMON_H

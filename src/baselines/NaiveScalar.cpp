//===- NaiveScalar.cpp - Handwritten-code-through-compiler baselines -----===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "handwritten" competitor series (§5.1.2–5.1.3): straightforward
/// scalar loop nests, processed by a *compiler model*. The `fixed` variant
/// assumes compile-time sizes: small loops are fully unrolled (which lets
/// store-load forwarding register-allocate the accumulators) and, when the
/// compiler model auto-vectorizes, simple elementwise loops become vector
/// loops. The `gen` variant keeps the runtime-size loops untouched, whose
/// single-accumulator dependence chains are what cap naive code on the
/// in-order cores.
///
/// The compiler models encode the thesis' observations (§5.3): gcc
/// auto-vectorizes for the NEON cores but schedules worse; clang schedules
/// and allocates better but vectorizes less; icc does both on x86.
///
//===----------------------------------------------------------------------===//

#include "baselines/BaselineCommon.h"

#include "cir/Passes.h"
#include "machine/Scheduler.h"

using namespace lgen;
using namespace lgen::baselines;
using namespace lgen::cir;

CompilerModel baselines::iccModel() { return {"icc", true, true, 8}; }
CompilerModel baselines::gccModel() { return {"gcc", true, false, 6}; }
CompilerModel baselines::clangModel() { return {"clang", false, true, 8}; }

namespace {

class Handwritten : public BaselineBase {
public:
  Handwritten(machine::UArch Target, CompilerModel Model, bool Fixed)
      : BaselineBase(Target), Model(std::move(Model)), Fixed(Fixed) {}

  std::string name() const override {
    return "Handwritten " + std::string(Fixed ? "fixed" : "gen") + " (" +
           Model.Name + ")";
  }

protected:
  void genElementwise(Ctx &C, EwKind Kind, ArrayId Out, ArrayId In0,
                      ArrayId In1, int64_t N) const override {
    unsigned Nu = isa::traits(baselineISA(Target)).Nu;
    // Auto-vectorization fires on simple, countable elementwise loops —
    // and only with compile-time trip counts (the `fixed` series).
    if (Fixed && Model.AutoVectorize && Nu > 1 && N >= Nu) {
      emitVectorElementwise(C.B, Kind, Out, In0, In1, N, Nu, /*Peel=*/0,
                            /*AlignedBody=*/false);
      return;
    }
    emitScalarElementwise(C.B, Kind, Out, In0, In1, N);
  }

  void genMMM(Ctx &C, ArrayId A, int64_t M, int64_t K, ArrayId B, int64_t N,
              ArrayId Out) const override {
    emitScalarMMM(C.B, A, M, K, B, N, Out, useFMA());
  }

  void genTrans(Ctx &C, ArrayId A, int64_t M, int64_t N,
                ArrayId Out) const override {
    emitScalarTrans(C.B, A, M, N, Out);
  }

  bool tryFusedElementwise(Ctx &C, const ll::Expr &E, ArrayId Out,
                           const ll::Program &) const override {
    // A human writes elementwise BLACs as one loop; auto-vectorization
    // fires for compile-time trip counts with unaligned accesses.
    unsigned Nu = isa::traits(baselineISA(Target)).Nu;
    bool Vectorize = Fixed && Model.AutoVectorize && Nu > 1;
    emitFusedElementwiseTree(C, E, Out, Vectorize ? Nu : 1, /*Peel=*/0,
                             /*AlignedBody=*/false);
    return true;
  }

  void finalize(Kernel &K) const override {
    if (Fixed) {
      // Compile-time trip counts: full unrolling of small loops plus
      // partial unrolling of the rest (-O3 behavior).
      cir::unrollLoops(K, Model.UnrollSmall);
      cir::unrollAllLoopsBy(K, 4);
      cir::scalarReplacement(K);
    }
    cir::scalarReplacement(K);
    if (Model.GoodScheduling)
      machine::scheduleKernel(K, machine::Microarch::get(Target));
  }

private:
  bool useFMA() const {
    // Scalar FMA exists on the VFP/NEON cores; SSE has none.
    return Target != machine::UArch::Atom;
  }

  CompilerModel Model;
  bool Fixed;
};

} // namespace

std::unique_ptr<Generator> baselines::makeHandwritten(machine::UArch Target,
                                                      CompilerModel Model,
                                                      bool FixedSizes) {
  return std::make_unique<Handwritten>(Target, std::move(Model), FixedSizes);
}

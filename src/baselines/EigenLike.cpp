//===- EigenLike.cpp - Eigen-style template library baseline --------------===//
//
// Part of the LGen reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator reproducing the behaviors the thesis attributes to
/// Eigen 3.2 (§5.1.2, §5.2.4):
///
///  * elementwise expression trees fuse into a single vectorized pass
///    (expression templates);
///  * loop peeling raises the fraction of aligned accesses — for uniformly
///    misaligned data Eigen "peels the part of the loop that corresponds to
///    the first 3 columns ... and uses aligned accesses for the remaining";
///  * products materialize and use runtime-size loops, whose stack-carried
///    accumulators leave performance on the table on the in-order cores;
///  * leftovers are handled by scalar tails (mixing scalar and vector code,
///    the §5.3.1 weakness on Cortex-A8).
///
/// The \c AssumedOffsets map models Eigen's *runtime* peeling decisions in
/// our static IR: the bench harness passes the operand offsets it is about
/// to run with.
///
//===----------------------------------------------------------------------===//

#include "baselines/BaselineCommon.h"

#include "cir/Passes.h"
#include "machine/Scheduler.h"

using namespace lgen;
using namespace lgen::baselines;
using namespace lgen::cir;

namespace {

class EigenLike : public BaselineBase {
public:
  EigenLike(machine::UArch Target, std::map<std::string, unsigned> Offsets)
      : BaselineBase(Target), Offsets(std::move(Offsets)),
        ISA(baselineISA(Target)), Nu(isa::traits(ISA).Nu) {}

  std::string name() const override { return "Eigen-like"; }

protected:
  /// Base-address offset (elements mod ν) assumed for an array.
  unsigned offsetOf(Ctx &C, ArrayId Arr) const {
    for (const auto &[Name, Id] : C.OperandArray)
      if (Id == Arr) {
        auto It = Offsets.find(Name);
        return It == Offsets.end() ? 0 : It->second % std::max(1u, Nu);
      }
    return 0; // Temporaries are allocated aligned.
  }

  void genElementwise(Ctx &C, EwKind Kind, ArrayId Out, ArrayId In0,
                      ArrayId In1, int64_t N) const override {
    if (Nu == 1 || N < Nu) {
      emitScalarElementwise(C.B, Kind, Out, In0, In1, N);
      return;
    }
    // Peel until the *output* is aligned; the body is aligned only if all
    // participating arrays then agree.
    unsigned OutOff = offsetOf(C, Out);
    int64_t Peel = (Nu - OutOff) % Nu;
    bool Aligned = true;
    for (ArrayId Arr : {In0, In1})
      if (Kind != EwKind::SMul || Arr != In0) // Scalar factor is lane 0.
        Aligned &= offsetOf(C, Arr) == OutOff;
    emitVectorElementwise(C.B, Kind, Out, In0, In1, N, Nu,
                          Aligned ? Peel : 0, Aligned);
  }

  bool tryFusedElementwise(Ctx &C, const ll::Expr &E, ArrayId Out,
                           const ll::Program &) const override {
    // Aligned body only when every non-scalar leaf shares the output's
    // base offset; Eigen then peels to the common boundary.
    unsigned OutOff = offsetOf(C, Out);
    bool Aligned = Nu > 1;
    std::vector<const ll::Expr *> Stack = {&E};
    while (!Stack.empty()) {
      const ll::Expr *Cur = Stack.back();
      Stack.pop_back();
      if (Cur->getKind() == ll::ExprKind::Ref) {
        if (!Cur->isScalarShaped())
          Aligned &= offsetOf(C, C.OperandArray.at(Cur->getRefName())) ==
                     OutOff;
        continue;
      }
      for (unsigned I = 0; I != Cur->numChildren(); ++I)
        Stack.push_back(&Cur->child(I));
    }
    int64_t Peel = (Nu > 1 && Aligned) ? (Nu - OutOff) % Nu : 0;
    emitFusedElementwiseTree(C, E, Out, Nu, Aligned ? Peel : 0, Aligned);
    return true;
  }

  void genMMM(Ctx &C, ArrayId A, int64_t M, int64_t K, ArrayId B, int64_t N,
              ArrayId Out) const override {
    if (N == 1) {
      // Row-major gemv with per-row alignment peeling when the row stride
      // keeps every row at the same offset (§5.2.4 discussion).
      int RowPeel = -1;
      if (Nu > 1 && K % Nu == 0)
        RowPeel = static_cast<int>(offsetOf(C, A));
      emitVectorGemv(C.B, A, M, K, B, Out, /*Alpha=*/-1, /*Beta=*/-1, Nu,
                     ISA, useFMA(), RowPeel);
      return;
    }
    emitVectorGemm(C.B, A, M, K, B, N, Out, -1, -1, Nu, useFMA());
  }

  void genTrans(Ctx &C, ArrayId A, int64_t M, int64_t N,
                ArrayId Out) const override {
    emitScalarTrans(C.B, A, M, N, Out);
  }

  void finalize(Kernel &K) const override {
    cir::scalarReplacement(K);
    machine::scheduleKernel(K, machine::Microarch::get(Target));
  }

private:
  bool useFMA() const { return ISA == isa::ISAKind::NEON; }

  std::map<std::string, unsigned> Offsets;
  isa::ISAKind ISA;
  unsigned Nu;
};

} // namespace

std::unique_ptr<Generator>
baselines::makeEigenLike(machine::UArch Target,
                         std::map<std::string, unsigned> AssumedOffsets) {
  return std::make_unique<EigenLike>(Target, std::move(AssumedOffsets));
}

//===- TraceTest.cpp - Pipeline tracing and diagnostics -------------------===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage for the support::Trace observability layer: span nesting and
/// exception safety, counter facts pinned to known pipeline behavior,
/// autotuner plan logging, IR snapshots, the JSON schema round-trip through
/// the mediator JSON implementation, and the zero-cost guarantee that a
/// traced compile emits byte-identical kernels to an untraced one.
///
//===----------------------------------------------------------------------===//

#include "lgen/LGen.h"

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <limits>
#include <stdexcept>

using namespace lgen;
using namespace lgen::compiler;
using namespace lgen::support;

namespace {

const char *Mmm4Src =
    "Matrix A(4, 4); Matrix B(4, 4); Matrix C(4, 4); C = A*B;";
const char *GemvSrc =
    "Matrix A(8, 8); Vector x(8); Vector y(8); Scalar alpha; Scalar beta; "
    "y = alpha*A*x + beta*y;";

/// Installs a trace sink for the enclosing scope and always uninstalls it,
/// so a failing assertion cannot leak the sink into other tests.
struct ScopedTrace {
  Trace T;
  ScopedTrace() { Trace::setActive(&T); }
  ~ScopedTrace() { Trace::setActive(nullptr); }
};

std::string kernelText(const CompiledKernel &CK) {
  return CK.kernelFor({}).str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(TraceSpans, NestAndCloseInOrder) {
  ScopedTrace S;
  {
    TraceSpan Outer("outer");
    {
      TraceSpan Inner("inner");
    }
  }
  auto Spans = S.T.spans();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[1].Name, "inner");
  EXPECT_EQ(Spans[0].Parent, 0u);
  EXPECT_EQ(Spans[1].Parent, Spans[0].Id);
  EXPECT_GE(Spans[0].DurUs, 0.0);
  EXPECT_GE(Spans[1].DurUs, 0.0);
  EXPECT_GE(Spans[0].DurUs, Spans[1].DurUs);
  EXPECT_EQ(S.T.openSpans(), 0u);
}

TEST(TraceSpans, CloseWhenUnwindingThroughException) {
  ScopedTrace S;
  EXPECT_THROW(
      {
        TraceSpan Outer("outer");
        TraceSpan Inner("inner");
        throw std::runtime_error("boom");
      },
      std::runtime_error);
  EXPECT_EQ(S.T.openSpans(), 0u) << "RAII must close spans during unwinding";
  for (const TraceSpanRecord &R : S.T.spans())
    EXPECT_GE(R.DurUs, 0.0) << "span '" << R.Name << "' left open";
}

TEST(TraceSpans, NoSinkMeansNoRecording) {
  ASSERT_EQ(Trace::active(), nullptr);
  TraceSpan Span("ignored"); // must be safe with no sink installed
  traceCounter("ignored.counter");
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Counters pinned to pipeline facts
//===----------------------------------------------------------------------===//

TEST(TraceCounters, FourByFourMmmFacts) {
  // A 4x4 = 4x4 * 4x4 MMM on Atom (SSSE3, nu = 4) tiles into exactly one
  // full tile: the Σ-LL program is one ZeroTile plus one accumulating
  // matmul tile op, of which only the matmul expands a ν-BLAC.
  ScopedTrace S;
  Compiler C(Options::builder(machine::UArch::Atom).searchSamples(0).build());
  CompiledKernel CK = C.compile(Mmm4Src).valueOrDie();
  EXPECT_EQ(S.T.counter("sll.translate.tileops"), 2u);
  EXPECT_EQ(S.T.counter("sll.lower.tileops"), 2u);
  EXPECT_EQ(S.T.counter("sll.lower.nublacs"), 1u);
  // All three 4/4/4 dimensions are single full tiles: no residual loops.
  EXPECT_EQ(S.T.counter("sll.lower.loops"), 3u);
  EXPECT_GT(S.T.counter("cir.scalarrepl.forwarded"), 0u);
}

TEST(TraceCounters, SearchEvaluationsAreMuted) {
  // With a 6-sample search the pipeline runs 8 times (discovery + 7
  // evaluations) but counters must describe exactly one final build, so
  // they equal the counters of a search-free compile of the same plan...
  ScopedTrace S;
  Compiler C(Options::builder(machine::UArch::Atom)
                 .searchSamples(6)
                 .searchSeed(3)
                 .build());
  (void)C.compile(Mmm4Src).valueOrDie();
  EXPECT_EQ(S.T.counter("sll.translate.tileops"), 2u);
  EXPECT_EQ(S.T.counter("sll.lower.nublacs"), 1u);
  // ...while the span log keeps the full search visible.
  uint64_t EvalSpans = 0;
  for (const TraceSpanRecord &R : S.T.spans())
    if (R.Name == "autotune.evaluate-plan")
      ++EvalSpans;
  EXPECT_EQ(EvalSpans, 7u) << "default plan + 6 samples";
  EXPECT_EQ(S.T.openSpans(), 0u);
}

TEST(TraceCounters, MuteScopeIsThreadLocalAndNested) {
  ScopedTrace S;
  S.T.addCounter("a");
  {
    TraceMuteScope M1;
    EXPECT_TRUE(Trace::muted());
    {
      TraceMuteScope M2;
      S.T.addCounter("a");
      S.T.snapshot("cir", "k", "text");
    }
    EXPECT_TRUE(Trace::muted()) << "outer mute survives inner scope exit";
    S.T.addCounter("a");
  }
  EXPECT_FALSE(Trace::muted());
  S.T.addCounter("a");
  EXPECT_EQ(S.T.counter("a"), 2u);
  EXPECT_TRUE(S.T.snapshots().empty());
}

//===----------------------------------------------------------------------===//
// Autotuner plan log
//===----------------------------------------------------------------------===//

TEST(TracePlans, EveryEvaluationLoggedOneChosen) {
  ScopedTrace S;
  Compiler C(Options::builder(machine::UArch::Atom)
                 .searchSamples(5)
                 .searchSeed(7)
                 .build());
  (void)C.compile(GemvSrc).valueOrDie();
  auto Evals = S.T.planEvals();
  ASSERT_EQ(Evals.size(), 6u) << "default plan + 5 samples";
  unsigned Chosen = 0;
  double BestCost = std::numeric_limits<double>::infinity();
  for (const TracePlanEval &E : Evals) {
    EXPECT_FALSE(E.Plan.empty());
    BestCost = std::min(BestCost, E.Cost);
    Chosen += E.Chosen;
  }
  EXPECT_EQ(Chosen, 1u);
  for (const TracePlanEval &E : Evals)
    if (E.Chosen)
      EXPECT_DOUBLE_EQ(E.Cost, BestCost) << "winner must have minimal cost";
  EXPECT_EQ(S.T.counter("autotuner.plans.evaluated"), 6u);
  EXPECT_EQ(S.T.counter("autotuner.plans.pruned"), 5u);
}

TEST(TracePlans, GuidedSearchLogsItsWalk) {
  ScopedTrace S;
  Compiler C(Options::builder(machine::UArch::Atom)
                 .searchSamples(8)
                 .guidedSearch()
                 .build());
  (void)C.compile(GemvSrc).valueOrDie();
  auto Evals = S.T.planEvals();
  ASSERT_FALSE(Evals.empty());
  ASSERT_LE(Evals.size(), 8u) << "budget caps the walk";
  unsigned Chosen = 0;
  for (const TracePlanEval &E : Evals)
    Chosen += E.Chosen;
  EXPECT_EQ(Chosen, 1u);
  EXPECT_EQ(S.T.counter("autotuner.plans.evaluated"), Evals.size());
}

//===----------------------------------------------------------------------===//
// IR snapshots
//===----------------------------------------------------------------------===//

TEST(TraceSnapshots, OffByDefaultAllStagesOnRequest) {
  {
    ScopedTrace S;
    Compiler C(Options::builder(machine::UArch::Atom).searchSamples(2).build());
    (void)C.compile(Mmm4Src).valueOrDie();
    EXPECT_TRUE(S.T.snapshots().empty()) << "snapshots must be opt-in";
  }
  ScopedTrace S;
  S.T.setSnapshotStages("all");
  Compiler C(Options::builder(machine::UArch::Atom).searchSamples(2).build());
  (void)C.compile(Mmm4Src).valueOrDie();
  auto Snaps = S.T.snapshots();
  // One snapshot per stage: search evaluations are muted, so only the
  // final build dumps.
  ASSERT_EQ(Snaps.size(), 5u);
  const char *Order[] = {"ll", "sll", "sll-opt", "cir", "cir-final"};
  for (size_t I = 0; I != 5; ++I) {
    EXPECT_EQ(Snaps[I].Stage, Order[I]);
    EXPECT_FALSE(Snaps[I].Text.empty());
  }
  // The LL dump is the program, the C-IR dumps are kernels.
  EXPECT_NE(Snaps[0].Text.find("C = "), std::string::npos);
  EXPECT_NE(Snaps[3].Text.find("kernel"), std::string::npos);
}

TEST(TraceSnapshots, SingleStageFilter) {
  ScopedTrace S;
  S.T.setSnapshotStages("sll");
  EXPECT_TRUE(S.T.wantsSnapshot("sll"));
  EXPECT_FALSE(S.T.wantsSnapshot("cir"));
  Compiler C(Options::builder(machine::UArch::Atom).searchSamples(0).build());
  (void)C.compile(Mmm4Src).valueOrDie();
  auto Snaps = S.T.snapshots();
  ASSERT_EQ(Snaps.size(), 1u);
  EXPECT_EQ(Snaps[0].Stage, "sll");
  EXPECT_NE(Snaps[0].Text.find("sum"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON schema round-trip
//===----------------------------------------------------------------------===//

TEST(TraceJson, RoundTripsThroughMediatorJson) {
  ScopedTrace S;
  S.T.setSnapshotStages("cir-final");
  Compiler C(Options::builder(machine::UArch::Atom)
                 .searchSamples(3)
                 .searchSeed(11)
                 .build());
  (void)C.compile(GemvSrc).valueOrDie();
  Trace::setActive(nullptr);

  std::string Text = S.T.toJson().serialize();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Parsed, Err)) << Err;
  EXPECT_EQ(Parsed.getNumber("version"), 1);

  Trace Rebuilt;
  ASSERT_TRUE(Trace::fromJson(Parsed, Rebuilt, Err)) << Err;
  EXPECT_EQ(Rebuilt.toJson().serialize(), Text)
      << "toJson(fromJson(x)) must equal x";
  EXPECT_EQ(Rebuilt.spans().size(), S.T.spans().size());
  EXPECT_EQ(Rebuilt.counters(), S.T.counters());
  EXPECT_EQ(Rebuilt.planEvals().size(), S.T.planEvals().size());
  ASSERT_EQ(Rebuilt.snapshots().size(), 1u);
  EXPECT_EQ(Rebuilt.snapshots()[0].Text, S.T.snapshots()[0].Text);
}

TEST(TraceJson, ChromeExportCarriesEverySpanAndCounter) {
  ScopedTrace S;
  Compiler C(Options::builder(machine::UArch::Atom)
                 .searchSamples(2)
                 .searchSeed(5)
                 .build());
  (void)C.compile(Mmm4Src).valueOrDie();
  Trace::setActive(nullptr);

  json::Value V = S.T.toChromeJson();
  ASSERT_TRUE(V["traceEvents"].isArray());
  size_t SpanEvents = 0, CounterEvents = 0;
  for (const json::Value &Ev : V["traceEvents"].asArray()) {
    std::string Ph = Ev.getString("ph");
    ASSERT_TRUE(Ph == "X" || Ph == "C") << Ph;
    EXPECT_FALSE(Ev.getString("name").empty());
    if (Ph == "X") {
      ++SpanEvents;
      EXPECT_GE(Ev.getNumber("dur", -1.0), 0.0);
    } else {
      ++CounterEvents;
      EXPECT_TRUE(Ev["args"].isObject());
    }
  }
  EXPECT_EQ(SpanEvents, S.T.spans().size());
  EXPECT_EQ(CounterEvents, S.T.counters().size());
  EXPECT_EQ(V.getString("displayTimeUnit"), "ms");
}

TEST(TraceJson, RejectsMalformedTraces) {
  auto Refused = [](const char *Text) {
    json::Value V;
    std::string Err;
    EXPECT_TRUE(json::parse(Text, V, Err)) << Err;
    Trace T;
    return !Trace::fromJson(V, T, Err) && !Err.empty();
  };
  EXPECT_TRUE(Refused("[1,2,3]"));
  EXPECT_TRUE(Refused("{\"version\": 2}"));
  EXPECT_TRUE(Refused("{\"version\": 1, \"spans\": 3, \"counters\": {}, "
                      "\"plans\": [], \"snapshots\": []}"));
  EXPECT_TRUE(Refused("{\"version\": 1, \"spans\": [], "
                      "\"counters\": {\"x\": \"NaN\"}, "
                      "\"plans\": [], \"snapshots\": []}"));
}

//===----------------------------------------------------------------------===//
// Zero-cost guarantee: tracing must never change the generated code
//===----------------------------------------------------------------------===//

TEST(TraceZeroCost, TracedCompileIsByteIdentical) {
  Options O = Options::builder(machine::UArch::Atom)
                  .full()
                  .searchSamples(6)
                  .searchSeed(2)
                  .build();
  ASSERT_EQ(Trace::active(), nullptr);
  Compiler Untraced(O);
  CompiledKernel Plain = Untraced.compile(GemvSrc).valueOrDie();

  std::string TracedText, TracedC;
  {
    ScopedTrace S;
    S.T.setSnapshotStages("all");
    Compiler Traced(O);
    CompiledKernel CK = Traced.compile(GemvSrc).valueOrDie();
    TracedText = kernelText(CK);
    TracedC = codegen::unparseCompiled(CK);
  }
  EXPECT_EQ(TracedText, kernelText(Plain));
  EXPECT_EQ(TracedC, codegen::unparseCompiled(Plain));
}

TEST(TraceZeroCost, MetricsAndChromeExportLeaveCodegenByteIdentical) {
  Options O = Options::builder(machine::UArch::Atom)
                  .full()
                  .searchSamples(4)
                  .searchSeed(7)
                  .build();
  ASSERT_EQ(Trace::active(), nullptr);
  Compiler Untraced(O);
  CompiledKernel Plain = Untraced.compile(GemvSrc).valueOrDie();

  // Compile again with tracing active, the Metrics registry counting, and
  // the Chrome exporter running mid-flight: none of it may perturb the
  // generated code.
  // These Compilers run cache-less, so the bypass counter is the Metrics
  // signal their compiles leave behind.
  uint64_t BypassedBefore =
      Metrics::global().snapshot().counter("kernelcache.bypassed");
  std::string TracedText, TracedC, Chrome;
  {
    ScopedTrace S;
    Compiler Traced(O);
    CompiledKernel CK = Traced.compile(GemvSrc).valueOrDie();
    TracedText = kernelText(CK);
    TracedC = codegen::unparseCompiled(CK);
    Chrome = S.T.toChromeJson().serialize();
  }
  EXPECT_EQ(TracedText, kernelText(Plain));
  EXPECT_EQ(TracedC, codegen::unparseCompiled(Plain));
  EXPECT_NE(Chrome.find("\"traceEvents\""), std::string::npos);
  // The instrumented compile really did report into the global registry.
  EXPECT_GT(Metrics::global().snapshot().counter("kernelcache.bypassed"),
            BypassedBefore);
}

//===- VerifySlowTest.cpp - Full plan-space differential sweeps -----------===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slow (ctest label "slow") half of the verification suite: complete
/// plan-space sweeps — every enumerated tiling plan under every
/// optimization subset, with misaligned bases and the IR invariant
/// checkers armed — over the paper's kernels and a batch of random BLACs.
/// The fast suite (VerifyTest.cpp) runs trimmed versions of the same
/// checks; this one is the thorough lane CI samples from.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "verify/DiffCheck.h"
#include "verify/RandomBlac.h"

#include <gtest/gtest.h>

using namespace lgen;
using namespace lgen::testutil;

TEST(VerifySlow, PaperKernelsSurviveFullPlanSpace) {
  // The BLACs of the evaluation chapter, swept across an SSE-style and a
  // NEON-style target under every plan and optimization subset.
  const char *Kernels[] = {
      "Matrix A(8, 8); Vector x(8); Vector y(8); y = A * x;",
      "Matrix A(4, 4); Matrix B(4, 4); Matrix C(4, 4); C = A * B;",
      "Vector x(8); Vector y(8); Scalar a; a = x' * y;",
      "Scalar a; Vector x(7); Vector y(7); y = (a * x) + y;",
      "Matrix A(5, 3); Matrix B(5, 3); Matrix C(3, 3); C = (A + B)' * A;",
  };
  verify::PlanSpaceOptions PO; // defaults: all plans, full sweep, Atom + A8
  for (const char *Src : Kernels) {
    verify::DiffResult D = verify::checkSource(Src, PO);
    EXPECT_TRUE(D.ok()) << Src << "\n" << D.str();
  }
}

TEST(VerifySlow, RandomBlacsSurviveFullPlanSpace) {
  verify::PlanSpaceOptions PO;
  PO.InputSets = 1;
  for (int Trial = 0; Trial != 6; ++Trial) {
    uint64_t Seed = 0x51000 + 0x9e3779b97f4a7c15ULL * (Trial + 1);
    Rng R(Seed);
    verify::RandomBlac Gen(R);
    std::string Src = Gen.build();
    PO.Seed = Seed;
    verify::DiffResult D = verify::checkSource(Src, PO);
    EXPECT_TRUE(D.ok()) << "seed " << Seed << ": " << Src << "\n" << D.str();
  }
}

TEST(VerifySlow, WinnerPlansMatchOnEveryTarget) {
  // Autotuner winners (the plans users actually get) across all five
  // modeled microarchitectures.
  verify::PlanSpaceOptions PO;
  PO.Targets = {machine::UArch::Atom, machine::UArch::CortexA8,
                machine::UArch::CortexA9, machine::UArch::ARM1176,
                machine::UArch::SandyBridge};
  PO.AllPlans = false;
  PO.SearchSamples = 6;
  for (int Trial = 0; Trial != 8; ++Trial) {
    uint64_t Seed = 0x77000 + 0x9e3779b97f4a7c15ULL * (Trial + 1);
    Rng R(Seed);
    verify::RandomBlac Gen(R);
    std::string Src = Gen.build();
    PO.Seed = Seed;
    verify::DiffResult D = verify::checkSource(Src, PO);
    EXPECT_TRUE(D.ok()) << "seed " << Seed << ": " << Src << "\n" << D.str();
  }
}

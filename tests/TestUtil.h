//===- TestUtil.h - Shared helpers for LGen tests --------------*- C++ -*-===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers implementing the thesis' correctness methodology (§5.1.4):
/// execute a compiled kernel over randomized inputs and compare against the
/// naive reference evaluator with a small ε threshold.
///
//===----------------------------------------------------------------------===//

#ifndef LGEN_TESTS_TESTUTIL_H
#define LGEN_TESTS_TESTUTIL_H

#include "compiler/Compiler.h"
#include "ll/Parser.h"
#include "ll/Reference.h"
#include "machine/Executor.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace lgen {
namespace testutil {

/// Random bindings for every declared operand.
inline ll::Bindings randomBindings(const ll::Program &P, Rng &Rng) {
  ll::Bindings B;
  for (const ll::Operand &O : P.Operands) {
    ll::MatrixValue V(O.Rows, O.Cols);
    ll::fillRandom(V, Rng);
    B[O.Name] = V;
  }
  return B;
}

/// Executes \p CK over \p Inputs. \p AlignOffsets optionally misaligns the
/// buffer bases (element offset from a ν boundary, §5.2.4). Returns the
/// output operand's value after execution.
inline ll::MatrixValue
runCompiled(const compiler::CompiledKernel &CK, const ll::Bindings &Inputs,
            const std::map<std::string, unsigned> &AlignOffsets = {}) {
  const ll::Program &P = CK.Blac;
  std::vector<machine::Buffer> Storage(P.Operands.size());
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    const ll::Operand &O = P.Operands[I];
    auto AIt = AlignOffsets.find(O.Name);
    unsigned Offset = AIt == AlignOffsets.end() ? 0 : AIt->second;
    Storage[I] = machine::Buffer(O.numElements(), 0.0f, Offset);
    auto BIt = Inputs.find(O.Name);
    if (BIt != Inputs.end())
      Storage[I].Data = BIt->second.Data;
    if (O.Name == P.OutputName)
      OutIdx = I;
    Params.push_back(&Storage[I]);
  }
  CK.execute(Params);
  ll::MatrixValue Out(P.Operands[OutIdx].Rows, P.Operands[OutIdx].Cols);
  Out.Data = Storage[OutIdx].Data;
  return Out;
}

/// Compiles \p Source with \p Opts, runs it on random inputs, and returns
/// the maximum deviation from the reference evaluation.
inline float compileAndCompare(const std::string &Source,
                               const compiler::Options &Opts,
                               uint64_t Seed = 1,
                               const std::map<std::string, unsigned>
                                   &AlignOffsets = {}) {
  ll::Program P = ll::parseProgramOrDie(Source);
  compiler::Compiler C(Opts);
  compiler::CompiledKernel CK = C.compile(P);

  Rng R(Seed);
  ll::Bindings In = randomBindings(P, R);
  ll::MatrixValue Expected = ll::evaluate(P, In);
  ll::MatrixValue Actual = runCompiled(CK, In, AlignOffsets);
  return ll::maxAbsDiff(Expected, Actual);
}

/// ε for float comparisons; generous enough for reassociated reductions.
inline float epsilonFor(const ll::Program &P) {
  double F = ll::flopCount(P);
  return static_cast<float>(1e-4 * std::max(1.0, std::sqrt(F)));
}

} // namespace testutil
} // namespace lgen

#endif // LGEN_TESTS_TESTUTIL_H

//===- SupportTest.cpp - Unit tests for support utilities ------*- C++ -*-===//

#include "support/Support.h"

#include <gtest/gtest.h>

using namespace lgen;

TEST(Support, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(Support, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
  EXPECT_EQ(lcm64(3, 3), 3);
}

TEST(Support, FloorMod) {
  EXPECT_EQ(floorMod(7, 4), 3);
  EXPECT_EQ(floorMod(-1, 4), 3);
  EXPECT_EQ(floorMod(-8, 4), 0);
  EXPECT_EQ(floorMod(5, -4), 1);
}

TEST(Support, IsPrime) {
  EXPECT_FALSE(isPrime(0));
  EXPECT_FALSE(isPrime(1));
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(173)); // floor(695/4): the §5.2.1 tiling dip.
  EXPECT_TRUE(isPrime(223)); // floor(893/4).
  EXPECT_FALSE(isPrime(174));
}

TEST(Support, RngDeterminism) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(43);
  EXPECT_NE(A.next(), C.next());
}

TEST(Support, RngBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Support, JoinStrings) {
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"a"}, ","), "a");
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

//===- ThreadPoolTest.cpp - support::ThreadPool unit tests ----------------===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using lgen::support::ThreadPool;

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(Pool.concurrency(), Threads);
    const size_t N = 1000;
    std::vector<std::atomic<int>> Counts(N);
    Pool.parallelFor(N, [&](size_t I) { Counts[I].fetch_add(1); });
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(Counts[I].load(), 1) << "index " << I << ", " << Threads
                                     << " threads";
  }
}

TEST(ThreadPoolTest, ResultsBySlotAreDeterministic) {
  // The pattern the autotuner relies on: write to slot I, reduce serially.
  ThreadPool Pool(4);
  std::vector<int> Squares(64, -1);
  Pool.parallelFor(Squares.size(),
                   [&](size_t I) { Squares[I] = static_cast<int>(I * I); });
  for (size_t I = 0; I != Squares.size(); ++I)
    EXPECT_EQ(Squares[I], static_cast<int>(I * I));
}

TEST(ThreadPoolTest, EmptyAndSingleElementRanges) {
  ThreadPool Pool(4);
  Pool.parallelFor(0, [&](size_t) { FAIL() << "no elements to run"; });
  int Ran = 0;
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Ran;
  });
  EXPECT_EQ(Ran, 1);
}

TEST(ThreadPoolTest, NestedParallelForDegradesToSerial) {
  // A parallelFor from inside a pool task must complete (serially) instead
  // of deadlocking on the pool's own workers — the compileBatch-calls-
  // choosePlan shape.
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(16 * 8);
  Pool.parallelFor(16, [&](size_t Outer) {
    EXPECT_TRUE(ThreadPool::insideParallelRegion());
    Pool.parallelFor(8, [&](size_t Inner) {
      Counts[Outer * 8 + Inner].fetch_add(1);
    });
  });
  EXPECT_FALSE(ThreadPool::insideParallelRegion());
  for (auto &C : Counts)
    EXPECT_EQ(C.load(), 1);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I) {
                                  if (I == 42)
                                    throw std::runtime_error("boom");
                                  Completed.fetch_add(1);
                                }),
               std::runtime_error);
  // All other indices still ran: a failure poisons the result, not the
  // schedule.
  EXPECT_EQ(Completed.load(), 99);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool Pool(3);
  long Total = 0;
  for (int Round = 0; Round != 50; ++Round) {
    std::vector<long> Parts(10, 0);
    Pool.parallelFor(Parts.size(),
                     [&](size_t I) { Parts[I] = static_cast<long>(I); });
    Total += std::accumulate(Parts.begin(), Parts.end(), 0L);
  }
  EXPECT_EQ(Total, 50L * 45L);
}

//===- RuntimeTest.cpp - Native execution & measurement tests --*- C++ -*-===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native runtime against the §5.1.4 methodology: kernels compiled by
/// the host toolchain and executed as real machine code must agree with
/// the ll::Reference evaluation (and hence with the simulated executor)
/// within the documented ULP tolerance — on every target ISA this host can
/// run, including with misaligned parameter bases. ISAs the host lacks
/// SKIP cleanly; broken toolchains and unloadable objects come back as
/// errors, never crashes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/CUnparser.h"
#include "compiler/KernelCache.h"
#include "support/Json.h"
#include "runtime/CpuInfo.h"
#include "runtime/Measure.h"
#include "runtime/NativeKernel.h"
#include "verify/Ulp.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace lgen;
using namespace lgen::compiler;
using namespace lgen::testutil;

namespace {

namespace fs = std::filesystem;

/// Native twin of testutil::runCompiled: same marshaling contract, but the
/// kernel executes as loaded host machine code.
ll::MatrixValue
runNative(const runtime::NativeKernel &NK, const compiler::CompiledKernel &CK,
          const ll::Bindings &Inputs,
          const std::map<std::string, unsigned> &AlignOffsets = {}) {
  const ll::Program &P = CK.Blac;
  std::vector<machine::Buffer> Storage(P.Operands.size());
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    const ll::Operand &O = P.Operands[I];
    auto AIt = AlignOffsets.find(O.Name);
    unsigned Offset = AIt == AlignOffsets.end() ? 0 : AIt->second;
    Storage[I] = machine::Buffer(O.numElements(), 0.0f, Offset);
    auto BIt = Inputs.find(O.Name);
    if (BIt != Inputs.end())
      Storage[I].Data = BIt->second.Data;
    if (O.Name == P.OutputName)
      OutIdx = I;
    Params.push_back(&Storage[I]);
  }
  NK.execute(Params);
  ll::MatrixValue Out(P.Operands[OutIdx].Rows, P.Operands[OutIdx].Cols);
  Out.Data = Storage[OutIdx].Data;
  return Out;
}

/// Loads \p CK natively, skipping the calling test when this host cannot
/// run it (missing ISA or toolchain) and failing it on any other error.
/// Returns nullptr after recording the skip.
std::unique_ptr<runtime::NativeKernel>
loadOrSkip(const compiler::CompiledKernel &CK) {
  Expected<runtime::NativeKernel> NK = runtime::NativeKernel::load(CK);
  if (NK)
    return std::make_unique<runtime::NativeKernel>(std::move(*NK));
  isa::ISAKind ISA =
      CK.Opts.effectiveNu() == 1 ? isa::ISAKind::Scalar : CK.Opts.ISA;
  if (!runtime::CpuInfo::host().supports(ISA) ||
      !runtime::ToolchainDriver::host().available())
    return nullptr;
  ADD_FAILURE() << "native load failed on a runnable target: " << NK.error();
  return nullptr;
}

struct TargetCase {
  const char *Name;
  machine::UArch U;
  isa::ISAKind ISA;
};

const TargetCase Targets[] = {
    {"atom_ssse3", machine::UArch::Atom, isa::ISAKind::SSSE3},
    {"atom_sse41", machine::UArch::Atom, isa::ISAKind::SSE41},
    {"sandybridge_avx", machine::UArch::SandyBridge, isa::ISAKind::AVX},
    {"a8_neon", machine::UArch::CortexA8, isa::ISAKind::NEON},
    {"arm1176_scalar", machine::UArch::ARM1176, isa::ISAKind::Scalar},
};

class NativeTargetTest : public ::testing::TestWithParam<TargetCase> {
protected:
  Options optionsFor() const {
    const TargetCase &TC = GetParam();
    return Options::builder(TC.U).full().isa(TC.ISA).build();
  }

  // A skip from SetUp prevents the test body from running at all, so
  // host-unrunnable targets report SKIPPED, never FAILED.
  void SetUp() override {
    const TargetCase &TC = GetParam();
    if (!runtime::ToolchainDriver::host().available())
      GTEST_SKIP() << runtime::ToolchainDriver::host().error();
    if (!runtime::CpuInfo::host().supports(TC.ISA))
      GTEST_SKIP() << "host (" << runtime::CpuInfo::host().str()
                   << ") cannot run " << isa::isaName(TC.ISA);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CpuInfo
//===----------------------------------------------------------------------===//

TEST(CpuInfoTest, ScalarAlwaysRunnable) {
  EXPECT_TRUE(runtime::CpuInfo::host().supports(isa::ISAKind::Scalar));
  EXPECT_FALSE(runtime::CpuInfo::host().str().empty());
}

TEST(CpuInfoTest, ExclusiveIsaFamilies) {
  // No real CPU implements both SSE and NEON; the probe must never claim
  // an ISA from the other architecture's family.
  const runtime::CpuInfo &I = runtime::CpuInfo::host();
  if (I.HasNEON) {
    EXPECT_FALSE(I.HasSSSE3 || I.HasSSE41 || I.HasAVX);
  }
  if (I.HasSSSE3 || I.HasSSE41 || I.HasAVX) {
    EXPECT_FALSE(I.HasNEON);
  }
}

//===----------------------------------------------------------------------===//
// ToolchainDriver and SharedLibrary error paths
//===----------------------------------------------------------------------===//

TEST(ToolchainTest, ScratchDirIsPerProcess) {
  Expected<std::string> Dir = runtime::scratchDir();
  ASSERT_TRUE(bool(Dir)) << Dir.error();
  EXPECT_NE(Dir->find("lgen-runtime-"), std::string::npos);
  EXPECT_TRUE(fs::exists(*Dir));
}

TEST(ToolchainTest, BrokenCompilerReportsErrorNotCrash) {
  Expected<std::string> Scratch = runtime::scratchDir();
  ASSERT_TRUE(bool(Scratch)) << Scratch.error();
  std::string Fake = *Scratch + "/fake-cc.sh";
  {
    std::ofstream Out(Fake);
    Out << "#!/bin/sh\necho 'fake-cc: deliberate failure' >&2\nexit 1\n";
  }
  fs::permissions(Fake, fs::perms::owner_all);

  runtime::ToolchainDriver TD(Fake);
  ASSERT_TRUE(TD.available());
  Expected<std::string> So =
      TD.compileSharedObject("void f(void) {}\n", isa::ISAKind::Scalar);
  ASSERT_FALSE(bool(So));
  EXPECT_NE(So.error().find("toolchain failure"), std::string::npos);
  EXPECT_NE(So.error().find("deliberate failure"), std::string::npos);
}

TEST(ToolchainTest, GarbageSharedObjectFailsToLoad) {
  Expected<std::string> Scratch = runtime::scratchDir();
  ASSERT_TRUE(bool(Scratch)) << Scratch.error();
  std::string Garbage = *Scratch + "/garbage.so";
  {
    std::ofstream Out(Garbage, std::ios::binary);
    Out << "this is not an ELF shared object";
  }
  Expected<runtime::SharedLibrary> Lib = runtime::SharedLibrary::open(Garbage);
  ASSERT_FALSE(bool(Lib));
  EXPECT_NE(Lib.error().find("dlopen"), std::string::npos);
}

TEST(ToolchainTest, MissingSymbolReturnsNull) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Expected<std::string> So = runtime::ToolchainDriver::host().compileSharedObject(
      "void lgen_test_present(void) {}\n", isa::ISAKind::Scalar);
  ASSERT_TRUE(bool(So)) << So.error();
  Expected<runtime::SharedLibrary> Lib = runtime::SharedLibrary::open(*So);
  ASSERT_TRUE(bool(Lib)) << Lib.error();
  EXPECT_NE(Lib->symbol("lgen_test_present"), nullptr);
  EXPECT_EQ(Lib->symbol("lgen_test_absent"), nullptr);
}

TEST(ToolchainTest, SharedObjectCacheHitsOnRecompile) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  runtime::ToolchainDriver &TD = runtime::ToolchainDriver::host();
  std::string Src = "void lgen_cache_probe(void) {}\n";
  Expected<std::string> A = TD.compileSharedObject(Src, isa::ISAKind::Scalar);
  Expected<std::string> B = TD.compileSharedObject(Src, isa::ISAKind::Scalar);
  ASSERT_TRUE(bool(A)) << A.error();
  ASSERT_TRUE(bool(B)) << B.error();
  EXPECT_EQ(*A, *B);
}

//===----------------------------------------------------------------------===//
// Native execution vs. the reference, across host-runnable targets
//===----------------------------------------------------------------------===//

TEST_P(NativeTargetTest, MatchesReference) {
  const char *Blacs[] = {
      "Scalar a; Vector x(9); Vector y(9); y = a*x + y;",
      "Vector x(8); Vector y(8); Scalar a; a = x' * y;",
      "Matrix A(4, 10); Vector x(10); Vector y(4); y = A*x;",
      "Matrix A(6, 5); Matrix B(5, 6); Matrix C(6, 6); Scalar alpha; "
      "Scalar beta; C = alpha*(A*B) + beta*C;",
  };
  Compiler C(optionsFor());
  for (const char *Src : Blacs) {
    SCOPED_TRACE(Src);
    ll::Program P = ll::parseProgramOrDie(Src);
    CompiledKernel CK = C.compile(P);
    std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
    ASSERT_NE(NK, nullptr); // SetUp skipped unrunnable hosts, so failure-to-load is a FAIL

    Rng R(42);
    ll::Bindings In = randomBindings(P, R);
    ll::MatrixValue Want = ll::evaluate(P, In);
    ll::MatrixValue Sim = runCompiled(CK, In);
    ll::MatrixValue Nat = runNative(*NK, CK, In);

    verify::Tolerance Tol = verify::toleranceFor(P);
    EXPECT_TRUE(Tol.accepts(verify::compareValues(Want, Nat)))
        << "native diverges from reference";
    EXPECT_TRUE(Tol.accepts(verify::compareValues(Sim, Nat)))
        << "native diverges from the simulated executor";
  }
}

TEST_P(NativeTargetTest, MisalignedBasesMatchReference) {
  Options O = Options::builder(GetParam().U)
                  .full()
                  .isa(GetParam().ISA)
                  .alignmentDetection()
                  .build();
  Compiler C(O);
  std::string Src = "Vector x(12); Vector y(12); Scalar a; y = a*x + y;";
  ll::Program P = ll::parseProgramOrDie(Src);
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  Rng R(7);
  ll::Bindings In = randomBindings(P, R);
  ll::MatrixValue Want = ll::evaluate(P, In);
  verify::Tolerance Tol = verify::toleranceFor(P);
  // Offset 1 exercises the unaligned fallback (and, for versioned
  // kernels, the runtime dispatch on real pointer bits).
  for (unsigned Offset : {0u, 1u}) {
    SCOPED_TRACE("offset " + std::to_string(Offset));
    std::map<std::string, unsigned> Offsets{{"x", Offset}, {"y", Offset}};
    ll::MatrixValue Nat = runNative(*NK, CK, In, Offsets);
    EXPECT_TRUE(Tol.accepts(verify::compareValues(Want, Nat)));
  }
}

TEST_P(NativeTargetTest, ScalarOnlyBlacWithAlignmentVersioningCompiles) {
  // Every parameter is a scalar, so alignment versioning has no arrays to
  // dispatch on: VersionedArrays is empty and there is exactly one
  // version. The emitted C must call it unconditionally — an empty check
  // chain once unparsed as `if ()`, which no toolchain accepts.
  Options O = Options::builder(GetParam().U)
                  .full()
                  .isa(GetParam().ISA)
                  .alignmentDetection()
                  .build();
  Compiler C(O);
  std::string Src = "Scalar m0; Scalar m1; Scalar out; out = (m1 * m0)';";
  ll::Program P = ll::parseProgramOrDie(Src);
  CompiledKernel CK = C.compile(P);
  EXPECT_EQ(codegen::unparseCompiled(CK).find("if ()"), std::string::npos);

  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);
  Rng R(3);
  ll::Bindings In = randomBindings(P, R);
  ll::MatrixValue Want = ll::evaluate(P, In);
  ll::MatrixValue Nat = runNative(*NK, CK, In);
  EXPECT_TRUE(verify::toleranceFor(P).accepts(
      verify::compareValues(Want, Nat)));
}

INSTANTIATE_TEST_SUITE_P(Targets, NativeTargetTest,
                         ::testing::ValuesIn(Targets),
                         [](const ::testing::TestParamInfo<TargetCase> &I) {
                           return std::string(I.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Measurement protocol
//===----------------------------------------------------------------------===//

TEST(MeasureTest, ProtocolShapeAndMonotonicity) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P = ll::parseProgramOrDie(
      "Matrix A(8, 8); Vector x(8); Vector y(8); y = A*x;");
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  std::vector<machine::Buffer> Storage;
  std::vector<machine::Buffer *> Params;
  for (const ll::Operand &Op : P.Operands)
    Storage.emplace_back(Op.numElements(), 1.0f, 0);
  for (machine::Buffer &B : Storage)
    Params.push_back(&B);

  runtime::MeasureOptions MO;
  MO.Reps = 5;
  runtime::MeasureResult M = runtime::measure(*NK, Params, MO);
  EXPECT_EQ(M.Samples.size(), 5u);
  EXPECT_GT(M.MedianCycles, 0.0);
  EXPECT_LE(M.MinCycles, M.MedianCycles);
  EXPECT_LE(M.MedianCycles, M.MaxCycles);
  EXPECT_GE(M.InnerIters, 1u);
  EXPECT_FALSE(M.Counter.empty());
  EXPECT_STREQ(M.Counter.c_str(), runtime::cycleCounterName());

  // The unit label must match what the counter actually produces: "cycles"
  // for perf_event/rdtsc, "ns" for the steady-clock fallback — never a
  // bare mislabeled number.
  EXPECT_STREQ(M.Unit.c_str(), runtime::cycleCounterUnit());
  EXPECT_TRUE(M.Unit == "cycles" || M.Unit == "ns") << M.Unit;

  // Hardware counters degrade gracefully: on a host without perf_event
  // access the vector is empty; when present, every reading is a real
  // (named, non-zero-defaulted) event. An unsupported event must be
  // absent, not reported as zero.
  runtime::PerfCounterGroup &G = runtime::PerfCounterGroup::forThread();
  if (!G.any()) {
    EXPECT_TRUE(M.HwCounters.empty())
        << "no perf_event access, yet counters were reported";
  } else {
    for (const runtime::HwCounterReading &R : M.HwCounters) {
      EXPECT_FALSE(R.Name.empty());
      EXPECT_GT(R.RunningRatio, 0.0);
      EXPECT_LE(R.RunningRatio, 1.0 + 1e-9);
    }
    // The instruction counter, when the kernel really ran, cannot be zero.
    for (const runtime::HwCounterReading &R : M.HwCounters)
      if (R.Name == "instructions")
        EXPECT_GT(R.Value, 0.0);
  }
}

TEST(MeasureTest, ColdCacheVariantTimesSingleInvocations) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P = ll::parseProgramOrDie(
      "Matrix A(8, 8); Vector x(8); Vector y(8); y = A*x;");
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  std::vector<machine::Buffer> Storage;
  std::vector<machine::Buffer *> Params;
  for (const ll::Operand &Op : P.Operands)
    // Offset 1 gives each allocation a head pad, so the eviction pass
    // covers base + offset window + tail pad, not just NumElements.
    Storage.emplace_back(Op.numElements(), 1.0f, 1);
  for (machine::Buffer &B : Storage)
    Params.push_back(&B);

  runtime::MeasureOptions MO;
  MO.Reps = 3;
  MO.ColdCache = true;
  runtime::MeasureResult M = runtime::measure(*NK, Params, MO);
  EXPECT_EQ(M.Samples.size(), 3u);
  EXPECT_EQ(M.InnerIters, 1u); // cold-cache never batches invocations
  EXPECT_GT(M.MedianCycles, 0.0);
}

TEST(MeasureTest, MeasuredRunIsAValidExecution) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  std::string Src = "Scalar a; Vector x(6); Vector y(6); y = a*x + y;";
  ll::Program P = ll::parseProgramOrDie(Src);
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  Rng R(3);
  ll::Bindings In = randomBindings(P, R);
  ll::MatrixValue Want = ll::evaluate(P, In);

  std::vector<machine::Buffer> Storage(P.Operands.size());
  std::vector<machine::Buffer *> Params;
  size_t OutIdx = 0;
  for (size_t I = 0; I != P.Operands.size(); ++I) {
    Storage[I] = machine::Buffer(P.Operands[I].numElements(), 0.0f, 0);
    Storage[I].Data = In[P.Operands[I].Name].Data;
    if (P.Operands[I].Name == P.OutputName)
      OutIdx = I;
    Params.push_back(&Storage[I]);
  }
  // The InOut output must hold exactly ONE application of the kernel even
  // though the measurement loop invoked it warmup+reps*inner times.
  runtime::measure(*NK, Params);
  ll::MatrixValue Got(Want.Rows, Want.Cols);
  Got.Data = Storage[OutIdx].Data;
  EXPECT_TRUE(verify::toleranceFor(P).accepts(
      verify::compareValues(Want, Got)));
}

//===----------------------------------------------------------------------===//
// Autotuning on measured cycles
//===----------------------------------------------------------------------===//

TEST(NativeTuneTest, NativeAndModelBackendsBothProduceValidKernels) {
  std::string Src = "Matrix A(8, 8); Matrix B(8, 8); Matrix C(8, 8); "
                    "C = A*B;";
  ll::Program P = ll::parseProgramOrDie(Src);
  Rng R(11);
  ll::Bindings In = randomBindings(P, R);
  ll::MatrixValue Want = ll::evaluate(P, In);
  verify::Tolerance Tol = verify::toleranceFor(P);

  for (TuneBackend B : {TuneBackend::Model, TuneBackend::Native}) {
    SCOPED_TRACE(B == TuneBackend::Model ? "model" : "native");
    Options O = Options::builder(machine::UArch::Atom)
                    .full()
                    .searchSamples(4)
                    .tunerThreads(2)
                    .tuneBackend(B)
                    .measureReps(3)
                    .build();
    // The native backend degrades to the model on hosts that cannot run
    // the target, so this passes (without skipping) everywhere.
    Compiler C(O);
    CompiledKernel CK = C.compile(P);
    EXPECT_GT(CK.Flops, 0.0);
    EXPECT_TRUE(Tol.accepts(verify::compareValues(Want, runCompiled(CK, In))));
  }
}

//===----------------------------------------------------------------------===//
// Mediator measure endpoint
//===----------------------------------------------------------------------===//

TEST(NativeDeviceTest, ExecutorMeasuresOrSkipsCleanly) {
  mediator::DeviceExecutor Exec = runtime::nativeDeviceExecutor();

  json::Object Exp;
  Exp["source"] = "Matrix A(4, 8); Vector x(8); Vector y(4); y = A*x;";
  Exp["target"] = "arm1176"; // scalar: host-runnable wherever cc exists
  Exp["reps"] = 3;
  json::Value R = Exec(json::Value(Exp), 0);
  ASSERT_TRUE(R.isObject());
  if (!runtime::ToolchainDriver::host().available()) {
    EXPECT_FALSE(R.getBool("supported"));
    return;
  }
  EXPECT_TRUE(R.getBool("supported"));
  EXPECT_GT(R.getNumber("cycles"), 0.0);
  EXPECT_GT(R.getNumber("flops"), 0.0);
  EXPECT_FALSE(R["counter"].asString().empty());
  // Result JSON labels its unit (measure() labeling satellite) and
  // reports the min/max spread alongside the median.
  EXPECT_STREQ(R.getString("unit").c_str(), runtime::cycleCounterUnit());
  EXPECT_LE(R.getNumber("minCycles"), R.getNumber("cycles"));
  EXPECT_LE(R.getNumber("cycles"), R.getNumber("maxCycles"));

  // An ISA the host lacks is a clean {supported: false}, not a throw.
  const runtime::CpuInfo &Host = runtime::CpuInfo::host();
  json::Object Other = Exp;
  Other["target"] = Host.HasNEON ? "atom" : "a8";
  if (!Host.supports(Host.HasNEON ? isa::ISAKind::SSSE3
                                  : isa::ISAKind::NEON)) {
    json::Value S = Exec(json::Value(Other), 0);
    EXPECT_FALSE(S.getBool("supported"));
    EXPECT_FALSE(S["reason"].asString().empty());
  }
}

TEST(NativeDeviceTest, MalformedExperimentThrows) {
  mediator::DeviceExecutor Exec = runtime::nativeDeviceExecutor();
  json::Object Empty;
  EXPECT_THROW(Exec(json::Value(Empty), 0), std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Argument marshaling
//===----------------------------------------------------------------------===//

TEST(ArgPackTest, HonorsAlignOffsets) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P =
      ll::parseProgramOrDie("Vector x(8); Vector y(8); y = x + y;");
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  machine::Buffer X(8, 1.0f, 1), Y(8, 2.0f, 3);
  std::vector<machine::Buffer *> Params{&X, &Y};
  runtime::ArgPack Args(*NK, Params);
  // Base allocations are 64-byte aligned; the handed-out pointer sits
  // exactly AlignOffset floats past that boundary.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Args.argv()[0]) % 64,
            1 * sizeof(float));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Args.argv()[1]) % 64,
            3 * sizeof(float));
  EXPECT_EQ(Args.footprintBytes(), 2 * 8 * sizeof(float));
}

TEST(ArgPackTest, DirectEligibilityRules) {
  // Pure predicate, no kernel needed. The vectorized rules: aligned base
  // advertised AND actually ν-aligned AND ν elements of tail headroom.
  runtime::NativeParam P;
  P.NumElements = 8;

  machine::Buffer Padded(8 + 4, 0.0f);   // headroom for ν=4
  machine::Buffer Exact(8, 0.0f);        // no headroom
  machine::Buffer Misaligned(8 + 4, 0.0f, /*AlignOffset=*/2);

  // A buffer that advertises a misaligned base is never eligible: the
  // versioned kernel may round down to the aligned base, and only the
  // copy path allocates storage before the pointer.
  EXPECT_FALSE(runtime::ArgPack::directEligible(P, 4, Misaligned));
  EXPECT_FALSE(runtime::ArgPack::directEligible(P, 1, Misaligned));

  // Vector kernels need ν elements of tail headroom for their aligned
  // full-vector stores to a partial trailing tile.
  EXPECT_FALSE(runtime::ArgPack::directEligible(P, 4, Exact));

  // Scalar kernels need no headroom and no base alignment beyond the
  // element size: an exact-size buffer passes straight through.
  EXPECT_TRUE(runtime::ArgPack::directEligible(P, 1, Exact));

  // With headroom the ν=4 case hinges on the actual storage alignment
  // (operator new aligns to 16 on this ABI, enough for 4 floats).
  bool Aligned16 =
      reinterpret_cast<uintptr_t>(Padded.Data.data()) % 16 == 0;
  EXPECT_EQ(runtime::ArgPack::directEligible(P, 4, Padded), Aligned16);

  // An undersized buffer can never be handed to the kernel.
  machine::Buffer Short(4, 0.0f);
  EXPECT_FALSE(runtime::ArgPack::directEligible(P, 1, Short));
}

TEST(ArgPackTest, ZeroCopyPassesUserStorageAndComputesTheSameResult) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  // Scalar target: every aligned exact-size buffer is direct-eligible, so
  // the test is deterministic on any host with a toolchain.
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P =
      ll::parseProgramOrDie("Vector x(8); Vector y(8); Scalar a; y = a*x + y;");
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  auto fill = [](machine::Buffer &B, float Seed) {
    for (size_t I = 0; I != B.Data.size(); ++I)
      B.Data[I] = Seed + 0.25f * static_cast<float>(I);
  };

  // Copy-path reference run.
  std::vector<machine::Buffer> Ref;
  std::vector<machine::Buffer> Zc;
  for (const runtime::NativeParam &NP : NK->params()) {
    Ref.emplace_back(static_cast<size_t>(NP.NumElements), 0.0f);
    Zc.emplace_back(static_cast<size_t>(NP.NumElements), 0.0f);
    fill(Ref.back(), static_cast<float>(Ref.size()));
    fill(Zc.back(), static_cast<float>(Zc.size()));
  }
  std::vector<machine::Buffer *> RefP, ZcP;
  for (auto &B : Ref)
    RefP.push_back(&B);
  for (auto &B : Zc)
    ZcP.push_back(&B);

  {
    runtime::ArgPack Copy(*NK, RefP, runtime::Marshal::Copy);
    EXPECT_EQ(Copy.numDirect(), 0u);
    NK->entry()(Copy.argv());
    Copy.copyBack();
  }
  {
    runtime::ArgPack Direct(*NK, ZcP, runtime::Marshal::ZeroCopy);
    // Scalar ν=1: every parameter rides the fast path, argv IS the user
    // storage, and there is nothing to allocate or copy back.
    EXPECT_EQ(Direct.numDirect(), ZcP.size());
    EXPECT_EQ(Direct.numAllocations(), 0u);
    for (size_t I = 0; I != ZcP.size(); ++I)
      EXPECT_EQ(Direct.argv()[I], ZcP[I]->Data.data());
    NK->entry()(Direct.argv());
    Direct.copyBack(); // must be a no-op for direct params
  }
  for (size_t I = 0; I != Ref.size(); ++I)
    EXPECT_EQ(Ref[I].Data, Zc[I].Data) << "param " << I;
}

TEST(ArgPackTest, ZeroCopyFallsBackForMisalignedBuffers) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P =
      ll::parseProgramOrDie("Vector x(8); Vector y(8); y = x + y;");
  CompiledKernel CK = C.compile(P);
  std::unique_ptr<runtime::NativeKernel> NK = loadOrSkip(CK);
  ASSERT_NE(NK, nullptr);

  // Even under ZeroCopy, a misaligned-base buffer takes the staging path
  // (AlignOffset honored via a fresh allocation) — mixed packs work.
  machine::Buffer X(8, 1.0f, /*AlignOffset=*/3), Y(8, 2.0f);
  std::vector<machine::Buffer *> Params{&X, &Y};
  runtime::ArgPack Args(*NK, Params, runtime::Marshal::ZeroCopy);
  EXPECT_EQ(Args.numDirect(), 1u);
  EXPECT_NE(Args.argv()[0], X.Data.data());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Args.argv()[0]) % 64,
            3 * sizeof(float));
  EXPECT_EQ(Args.argv()[1], Y.Data.data());

  NK->entry()(Args.argv());
  Args.copyBack();
  for (size_t I = 0; I != 8; ++I)
    EXPECT_FLOAT_EQ(Y.Data[I], 3.0f) << "element " << I;
}

TEST(NativeKernelTest, AcquireServesPreResolvedHandles) {
  if (!runtime::ToolchainDriver::host().available())
    GTEST_SKIP() << runtime::ToolchainDriver::host().error();
  Options O = Options::builder(machine::UArch::ARM1176).full().build();
  Compiler C(O);
  ll::Program P =
      ll::parseProgramOrDie("Vector x(4); Vector y(4); y = x + y;");
  CompiledKernel CK = C.compile(P);
  uint64_t Key = compiler::KernelCache::fingerprint(P.str(), O);
  compiler::KernelCache Cache("", /*MaxKernels=*/8);

  // First acquire loads and registers; the second must return the very
  // same object out of the cache (pointer identity — no reload, no dlsym).
  auto First = runtime::NativeKernel::acquire(&Cache, Key, CK);
  ASSERT_TRUE(First) << First.error();
  auto Second = runtime::NativeKernel::acquire(&Cache, Key, CK);
  ASSERT_TRUE(Second) << Second.error();
  EXPECT_EQ(First->get(), Second->get());
  EXPECT_EQ(Cache.instanceStats().NativeHits, 1u);

  // Null cache degrades to a plain load.
  auto Uncached = runtime::NativeKernel::acquire(nullptr, Key, CK);
  ASSERT_TRUE(Uncached) << Uncached.error();
  EXPECT_NE(Uncached->get(), First->get());
}

//===- CacheStressTest.cpp - Sharded cache under concurrent load ----------===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hammers the lock-striped KernelCache from a ThreadPool with mixed
/// lookup/store/evict/native traffic and asserts the invariants the
/// dispatch fast path depends on:
///
///  * LRU bound: the kernel tier never exceeds its configured capacity,
///    no matter how the stores interleave across shards;
///  * hit accounting: per-instance counters add up exactly (every
///    lookupPlan is a PlanHit or a Miss, every store() is a Store);
///  * no torn entries: a kernel, plan, or native handle read back under
///    contention always carries the value stored under that key, never a
///    mix of two writers.
///
/// Run under ThreadSanitizer (-DLGEN_SANITIZE=thread) this doubles as the
/// data-race proof for the shard locking and the lock-free persist flag.
///
//===----------------------------------------------------------------------===//

#include "lgen/LGen.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <filesystem>
#include <memory>

using namespace lgen;
using namespace lgen::compiler;

namespace {

/// A kernel whose payload identifies its key: torn or crossed entries
/// surface as a Flops mismatch on read-back.
std::shared_ptr<CompiledKernel> kernelTagged(uint64_t Key) {
  auto CK = std::make_shared<CompiledKernel>();
  CK->Flops = static_cast<double>(Key);
  return CK;
}

/// A tagged native-handle stand-in (the cache stores it type-erased, like
/// the real pre-resolved NativeKernel handles).
std::shared_ptr<const void> nativeTagged(uint64_t Key) {
  return std::make_shared<const uint64_t>(Key);
}

tiling::TilingPlan planTagged(uint64_t Key) {
  tiling::TilingPlan P;
  P.FullUnrollTrip = static_cast<int64_t>(Key % 1000) + 1;
  return P;
}

} // namespace

TEST(CacheStressTest, MixedTrafficKeepsInvariants) {
  // 8 shards, 64-kernel bound, in-memory (persistence is exercised by the
  // SharedDir test below; here every cycle goes to the striped tiers).
  KernelCache Cache("", /*MaxKernels=*/64, /*Shards=*/8);
  ASSERT_EQ(Cache.numShards(), 8u);

  const unsigned Lanes = 8;
  const unsigned OpsPerLane = 20000;
  const uint64_t KeySpace = 256; // 4x the LRU bound: constant churn
  Options O = Options::builder(machine::UArch::Atom).build();

  std::atomic<uint64_t> PlanLookups{0}, StoreCalls{0}, TornReads{0};

  support::ThreadPool Pool(Lanes);
  Pool.parallelFor(Lanes, [&](size_t Lane) {
    uint64_t PlanLookupsLocal = 0, StoresLocal = 0, TornLocal = 0;
    // Per-lane LCG so lanes collide on keys but not in lockstep.
    uint64_t Rng = 0x9e3779b97f4a7c15ULL * (Lane + 1);
    for (unsigned I = 0; I != OpsPerLane; ++I) {
      Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
      uint64_t Key = (Rng >> 16) % KeySpace + 1;
      switch ((Rng >> 60) % 6) {
      case 0: { // full store: plan + kernel, counts once
        Cache.store(Key, planTagged(Key), "src", O, kernelTagged(Key));
        ++StoresLocal;
        break;
      }
      case 1:
        Cache.storeKernel(Key, kernelTagged(Key));
        break;
      case 2:
        Cache.storeNative(Key, nativeTagged(Key));
        break;
      case 3: {
        if (auto Hit = Cache.lookupKernel(Key))
          if (Hit->Flops != static_cast<double>(Key))
            ++TornLocal;
        break;
      }
      case 4: {
        tiling::TilingPlan P;
        ++PlanLookupsLocal;
        if (Cache.lookupPlan(Key, P))
          if (P.FullUnrollTrip != static_cast<int64_t>(Key % 1000) + 1)
            ++TornLocal;
        break;
      }
      default: {
        if (std::shared_ptr<const void> H = Cache.lookupNative(Key))
          if (*static_cast<const uint64_t *>(H.get()) != Key)
            ++TornLocal;
        break;
      }
      }
    }
    PlanLookups += PlanLookupsLocal;
    StoreCalls += StoresLocal;
    TornReads += TornLocal;
  });

  EXPECT_EQ(TornReads.load(), 0u) << "torn or crossed cache entries";

  // LRU bound: the kernel tier never outgrows its configured capacity.
  EXPECT_LE(Cache.numKernels(), Cache.maxKernels());
  // The plan tier is bounded by the key space (plans are never evicted).
  EXPECT_LE(Cache.numPlans(), KeySpace);

  // Hit accounting adds up exactly on the per-instance counters.
  CacheStats S = Cache.instanceStats();
  EXPECT_EQ(S.PlanHits + S.Misses, PlanLookups.load());
  EXPECT_EQ(S.Stores, StoreCalls.load());
  // Churn across a 4x-oversubscribed key space must evict, and can never
  // evict more slots than were ever inserted.
  EXPECT_GT(S.Evictions, 0u);
}

TEST(CacheStressTest, EvictionChurnHoldsTheBound) {
  // A tiny cache under maximal churn: 512 distinct keys through 8 slots.
  KernelCache Cache("", /*MaxKernels=*/8, /*Shards=*/4);
  support::ThreadPool Pool(4);
  Pool.parallelFor(4, [&](size_t Lane) {
    for (uint64_t I = 0; I != 512; ++I) {
      uint64_t Key = Lane * 1000 + I + 1;
      Cache.storeKernel(Key, kernelTagged(Key));
      Cache.storeNative(Key, nativeTagged(Key));
      // Read something right back; under churn this is usually already
      // evicted, which must read as a clean miss, not a crash or a stale
      // entry from another lane.
      if (auto Hit = Cache.lookupKernel(Key))
        EXPECT_EQ(Hit->Flops, static_cast<double>(Key));
    }
  });
  EXPECT_LE(Cache.numKernels(), Cache.maxKernels());
  CacheStats S = Cache.instanceStats();
  EXPECT_GT(S.Evictions, 0u);
}

TEST(CacheStressTest, NativeHandleSurvivesEviction) {
  // An in-flight dispatch holds the handle while churn evicts its slot:
  // the shared_ptr must keep the payload alive, and the cache must serve
  // a clean miss afterwards.
  KernelCache Cache("", /*MaxKernels=*/2, /*Shards=*/1);
  Cache.storeNative(1, nativeTagged(1));
  std::shared_ptr<const void> InFlight = Cache.lookupNative(1);
  ASSERT_TRUE(InFlight);
  Cache.storeNative(2, nativeTagged(2));
  Cache.storeNative(3, nativeTagged(3)); // evicts key 1
  EXPECT_EQ(Cache.lookupNative(1), nullptr);
  EXPECT_EQ(*static_cast<const uint64_t *>(InFlight.get()), 1u);
}

TEST(CacheStressTest, ConcurrentStoreAndFlushShareADir) {
  // Stores (which persist on every call) racing explicit flush() calls
  // and a second instance over the same directory: the merge-on-save +
  // temp-file + rename protocol must never lose a plan or tear the file.
  std::string Dir = ::testing::TempDir() + "lgen_cache_stress_dir";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  Options O = Options::builder(machine::UArch::Atom).build();
  const uint64_t KeysPerLane = 24;
  {
    KernelCache A(Dir, 16, 2);
    KernelCache B(Dir, 16, 2);
    support::ThreadPool Pool(4);
    Pool.parallelFor(4, [&](size_t Lane) {
      KernelCache &C = Lane % 2 ? A : B;
      for (uint64_t I = 0; I != KeysPerLane; ++I) {
        uint64_t Key = Lane * 100 + I + 1;
        C.store(Key, planTagged(Key), "src", O, nullptr);
        if (I % 8 == 0)
          C.flush();
      }
    });
  } // both destructors flush

  KernelCache Reloaded(Dir, 16);
  EXPECT_EQ(Reloaded.numPlans(), 4 * KeysPerLane);
  tiling::TilingPlan P;
  ASSERT_TRUE(Reloaded.lookupPlan(101, P));
  EXPECT_EQ(P.FullUnrollTrip, static_cast<int64_t>(101 % 1000) + 1);
  std::filesystem::remove_all(Dir);
}

TEST(CacheStressTest, InstanceStatsStayLocalAcrossInstances) {
  // The double-counting regression: two caches in one process used to be
  // indistinguishable through the static stats(). Per-instance counters
  // must attribute traffic to the cache that served it.
  KernelCache A("", 8);
  KernelCache B("", 8);
  A.storeKernel(1, kernelTagged(1));
  ASSERT_TRUE(A.lookupKernel(1));
  tiling::TilingPlan P;
  EXPECT_FALSE(B.lookupPlan(1, P)); // B's miss, not A's

  CacheStats SA = A.instanceStats();
  CacheStats SB = B.instanceStats();
  EXPECT_EQ(SA.MemoryHits, 1u);
  EXPECT_EQ(SA.Misses, 0u);
  EXPECT_EQ(SB.MemoryHits, 0u);
  EXPECT_EQ(SB.Misses, 1u);
  // The process-cumulative registry merges both (the pre-fix behavior,
  // still the right scope for /metrics).
  CacheStats G = KernelCache::stats();
  EXPECT_GE(G.MemoryHits, SA.MemoryHits);
  EXPECT_GE(G.Misses, SB.Misses);
}

TEST(CacheStressTest, ShardCountRules) {
  // Tiny caches stay single-shard (strict global LRU — CacheTest depends
  // on exact eviction order); service-sized caches stripe.
  EXPECT_EQ(KernelCache("", 2).numShards(), 1u);
  EXPECT_EQ(KernelCache("", 64).numShards(), 4u);
  EXPECT_EQ(KernelCache("", 256).numShards(), 16u);
  // Explicit counts round up to a power of two.
  EXPECT_EQ(KernelCache("", 64, 3).numShards(), 4u);
  EXPECT_EQ(KernelCache("", 64, 8).numShards(), 8u);
}

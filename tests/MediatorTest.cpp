//===- MediatorTest.cpp - Mediator middleware tests ------------*- C++ -*-===//
//
// Part of the LGen reproduction test suite.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Mediator reimplementation (thesis Ch. 4, Appendix A):
/// JSON round-trips, the request/response contract, per-core mutual
/// exclusion, load balancing, async polling, error reporting, and result
/// expiry.
///
//===----------------------------------------------------------------------===//

#include "mediator/Json.h"
#include "mediator/Mediator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace lgen;
using namespace lgen::json;
using namespace lgen::mediator;

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(Json, ParseRoundTrip) {
  const char *Text = R"({"apiVersion":"1.0","async":"True",)"
                     R"("experiments":[{"device":{"hostname":"pi","port":22},)"
                     R"("execCommands":["./run 1","./run 2"],)"
                     R"("repetitions":15}]})";
  Value V;
  std::string Err;
  ASSERT_TRUE(parse(Text, V, Err)) << Err;
  EXPECT_EQ(V.getString("apiVersion"), "1.0");
  EXPECT_TRUE(V.getBool("async"));
  const Array &Exps = V["experiments"].asArray();
  ASSERT_EQ(Exps.size(), 1u);
  EXPECT_EQ(Exps[0]["device"].getString("hostname"), "pi");
  EXPECT_EQ(Exps[0].getNumber("repetitions"), 15);
  EXPECT_EQ(Exps[0]["execCommands"].asArray().size(), 2u);

  // Round trip.
  Value V2;
  ASSERT_TRUE(parse(V.serialize(), V2, Err)) << Err;
  EXPECT_EQ(V.serialize(), V2.serialize());
}

TEST(Json, ParseScalarsAndEscapes) {
  Value V;
  std::string Err;
  ASSERT_TRUE(parse(R"(["a\nb", -2.5, 1e3, true, false, null])", V, Err));
  const Array &A = V.asArray();
  EXPECT_EQ(A[0].asString(), "a\nb");
  EXPECT_DOUBLE_EQ(A[1].asNumber(), -2.5);
  EXPECT_DOUBLE_EQ(A[2].asNumber(), 1000.0);
  EXPECT_TRUE(A[3].asBool());
  EXPECT_FALSE(A[4].asBool());
  EXPECT_TRUE(A[5].isNull());
}

TEST(Json, RejectsMalformed) {
  Value V;
  std::string Err;
  EXPECT_FALSE(parse("{", V, Err));
  EXPECT_FALSE(parse("[1,]", V, Err));
  EXPECT_FALSE(parse("{\"a\" 1}", V, Err));
  EXPECT_FALSE(parse("tru", V, Err));
  EXPECT_FALSE(parse("1 2", V, Err));
}

//===----------------------------------------------------------------------===//
// Mediator
//===----------------------------------------------------------------------===//

namespace {

std::string
makeJobRequest(const std::string &Host, unsigned NumExps, bool Async,
               const std::vector<unsigned> &Affinity = {}) {
  Array Exps;
  for (unsigned I = 0; I != NumExps; ++I) {
    Object Dev;
    Dev["hostname"] = Host;
    if (!Affinity.empty()) {
      Array Aff;
      for (unsigned A : Affinity)
        Aff.push_back(Value(static_cast<int64_t>(A)));
      Dev["affinity"] = Value(std::move(Aff));
    }
    Object Exp;
    Exp["device"] = Value(std::move(Dev));
    Exp["execCommands"] = Value(Array{Value("exp" + std::to_string(I))});
    Exps.push_back(Value(std::move(Exp)));
  }
  Object Req;
  Req["apiVersion"] = "1.0";
  Req["async"] = Async;
  Req["experiments"] = Value(std::move(Exps));
  return Value(std::move(Req)).serialize();
}

Value parseOrDie(const std::string &Text) {
  Value V;
  std::string Err;
  if (!parse(Text, V, Err))
    reportFatalError("bad JSON in test: " + Err);
  return V;
}

} // namespace

TEST(Mediator, SynchronousJobReturnsResults) {
  Mediator M;
  M.registerDevice("beaglebone", 1, [](const Value &Exp, unsigned Core) {
    Object R;
    R["output"] = Exp["execCommands"].asArray()[0].asString();
    R["core"] = static_cast<int64_t>(Core);
    return Value(std::move(R));
  });
  Value Resp =
      parseOrDie(M.handleNewJobRequest(makeJobRequest("beaglebone", 3,
                                                      /*Async=*/false)));
  ASSERT_TRUE(Resp["data"].isArray());
  const Array &Data = Resp["data"].asArray();
  ASSERT_EQ(Data.size(), 3u);
  // Order of results matches the order of experiments in the request.
  for (unsigned I = 0; I != 3; ++I) {
    EXPECT_EQ(Data[I].getString("output"), "exp" + std::to_string(I));
    EXPECT_EQ(Data[I].getString("deviceHostname"), "beaglebone");
  }
}

TEST(Mediator, AsyncJobPolling) {
  Mediator M;
  std::atomic<bool> Release{false};
  M.registerDevice("kayla", 1, [&](const Value &, unsigned) {
    while (!Release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Object R;
    R["output"] = "done";
    return Value(std::move(R));
  });
  Value Submitted =
      parseOrDie(M.handleNewJobRequest(makeJobRequest("kayla", 1, true)));
  EXPECT_EQ(Submitted.getString("jobState"), "SUBMITTED");
  std::string JobId = Submitted.getString("jobID");
  ASSERT_FALSE(JobId.empty());

  Object Poll;
  Poll["apiVersion"] = "1.0";
  Poll["jobID"] = JobId;
  std::string PollReq = Value(Poll).serialize();

  Value Pending = parseOrDie(M.handleJobResultsRequest(PollReq));
  EXPECT_EQ(Pending.getString("jobState"), "PENDING");

  Release = true;
  M.drain();
  Value Finished = parseOrDie(M.handleJobResultsRequest(PollReq));
  EXPECT_EQ(Finished.getString("jobState"), "FINISHED");
  EXPECT_EQ(Finished["data"].asArray()[0].getString("output"), "done");
}

TEST(Mediator, MutualExclusionPerCore) {
  // With one core, experiments must never overlap, no matter how many are
  // submitted concurrently.
  Mediator M;
  std::atomic<int> Running{0};
  std::atomic<int> MaxRunning{0};
  M.registerDevice("zotac", 1, [&](const Value &, unsigned) {
    int Now = ++Running;
    int Expected = MaxRunning.load();
    while (Now > Expected &&
           !MaxRunning.compare_exchange_weak(Expected, Now))
      ;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    --Running;
    return Value(Object{});
  });
  std::vector<std::thread> Clients;
  for (int I = 0; I != 4; ++I)
    Clients.emplace_back([&] {
      M.handleNewJobRequest(makeJobRequest("zotac", 3, false));
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(MaxRunning.load(), 1) << "two experiments overlapped on a core";
}

TEST(Mediator, ParallelAcrossCoresAndLoadBalancing) {
  Mediator M;
  std::mutex CoresMutex;
  std::set<unsigned> CoresUsed;
  std::atomic<int> Running{0};
  std::atomic<int> MaxRunning{0};
  M.registerDevice("quad", 4, [&](const Value &, unsigned Core) {
    {
      std::lock_guard<std::mutex> L(CoresMutex);
      CoresUsed.insert(Core);
    }
    int Now = ++Running;
    int Expected = MaxRunning.load();
    while (Now > Expected &&
           !MaxRunning.compare_exchange_weak(Expected, Now))
      ;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    --Running;
    return Value(Object{});
  });
  // 8 experiments allowed on all 4 cores: the balancer must spread them.
  M.handleNewJobRequest(makeJobRequest("quad", 8, false, {0, 1, 2, 3}));
  EXPECT_EQ(CoresUsed.size(), 4u);
  EXPECT_GT(MaxRunning.load(), 1) << "no cross-core parallelism";
}

TEST(Mediator, ErrorsForBadRequests) {
  Mediator M;
  M.registerDevice("dev", 1,
                   [](const Value &, unsigned) { return Value(Object{}); });
  // Malformed JSON.
  Value R1 = parseOrDie(M.handleNewJobRequest("{nope"));
  EXPECT_EQ(R1["error"].getNumber("code"), 400);
  EXPECT_EQ(R1["error"].getString("reason"), "BadRequest");
  // Missing experiments.
  Value R2 = parseOrDie(M.handleNewJobRequest(R"({"apiVersion":"1.0"})"));
  EXPECT_EQ(R2["error"].getNumber("code"), 400);
  // Unknown device.
  Value R3 =
      parseOrDie(M.handleNewJobRequest(makeJobRequest("missing", 1, false)));
  EXPECT_EQ(R3["error"].getString("reason"), "SSHError");
  // Invalid affinity.
  Value R4 = parseOrDie(
      M.handleNewJobRequest(makeJobRequest("dev", 1, false, {7})));
  EXPECT_EQ(R4["error"].getNumber("code"), 400);
  // Unknown job id.
  Value R5 = parseOrDie(
      M.handleJobResultsRequest(R"({"apiVersion":"1.0","jobID":"zzz"})"));
  EXPECT_EQ(R5.getString("jobState"), "NOT_FOUND");
}

TEST(Mediator, ExecutorExceptionsBecomeExperimentErrors) {
  Mediator M;
  M.registerDevice("flaky", 1, [](const Value &, unsigned) -> Value {
    throw std::runtime_error("compilation failed");
  });
  Value Resp =
      parseOrDie(M.handleNewJobRequest(makeJobRequest("flaky", 1, false)));
  const Value &ExpResult = Resp["data"].asArray()[0];
  EXPECT_EQ(ExpResult["error"].getNumber("code"), 405);
  EXPECT_EQ(ExpResult["error"].getString("reason"),
            "InstructionExecutionError");
}

TEST(Mediator, ResultsExpireFromCache) {
  MediatorConfig Cfg;
  Cfg.ResultsExpiry = std::chrono::milliseconds(10);
  Mediator M(Cfg);
  M.registerDevice("dev", 1,
                   [](const Value &, unsigned) { return Value(Object{}); });
  Value Submitted =
      parseOrDie(M.handleNewJobRequest(makeJobRequest("dev", 1, true)));
  std::string JobId = Submitted.getString("jobID");
  M.drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Object Poll;
  Poll["apiVersion"] = "1.0";
  Poll["jobID"] = JobId;
  Value After = parseOrDie(M.handleJobResultsRequest(Value(Poll).serialize()));
  EXPECT_EQ(After.getString("jobState"), "NOT_FOUND");
}
